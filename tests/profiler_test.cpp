// Activity-profiler tests, ending in the full closed loop the paper lists
// as future work: simulate the hardwired design, derive profiles, let the
// advisor pick the DRCF group, transform, and verify the result still runs.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "dse/profiler.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "soc/soc_lib.hpp"
#include "transform/transform.hpp"

namespace adriatic::dse {
namespace {

using namespace kern::literals;

void start_acc(soc::Cpu& c, bus::addr_t base, u32 len) {
  c.write(base + soc::HwAccel::kSrc, 0x1000);
  c.write(base + soc::HwAccel::kDst, 0x1100);
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
}
void finish_acc(soc::Cpu& c, bus::addr_t base) {
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

TEST(Profiler, RecordsIntervalsAndDutyCycle) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory ram(top, "ram", 0x1000, 1024);
  b.bind_slave(ram);
  soc::HwAccel acc(top, "crc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(b);
  b.bind_slave(acc);

  ActivityProfiler prof(sim);
  prof.watch(top, acc);

  soc::Processor cpu(top, "cpu", {}, [&](soc::Cpu& c) {
    for (int i = 0; i < 3; ++i) {
      start_acc(c, 0x100, 64);
      finish_acc(c, 0x100);
      c.delay(10_us);  // idle gap
    }
  });
  cpu.mst_port.bind(b);
  sim.run();

  ASSERT_EQ(prof.watched_count(), 1u);
  ASSERT_EQ(prof.intervals(0).size(), 3u);
  for (const auto& iv : prof.intervals(0)) EXPECT_GT(iv.end, iv.start);
  const double duty = prof.duty_cycle(0);
  EXPECT_GT(duty, 0.01);
  EXPECT_LT(duty, 0.5);  // the 10 us gaps dominate
}

TEST(Profiler, DetectsConcurrencyOnlyWhenOverlapping) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory ram(top, "ram", 0x1000, 1024);
  b.bind_slave(ram);
  soc::HwAccel a1(top, "a1", 0x100, accel::make_crc_spec());
  soc::HwAccel a2(top, "a2", 0x200, accel::make_crc_spec());
  soc::HwAccel a3(top, "a3", 0x300, accel::make_crc_spec());
  for (auto* a : {&a1, &a2, &a3}) {
    a->mst_port.bind(b);
    b.bind_slave(*a);
  }
  ActivityProfiler prof(sim);
  prof.watch(top, a1);
  prof.watch(top, a2);
  prof.watch(top, a3);

  soc::Processor cpu(top, "cpu", {}, [&](soc::Cpu& c) {
    // a1 and a2 run together; a3 runs alone afterwards.
    start_acc(c, 0x100, 512);
    start_acc(c, 0x200, 512);
    finish_acc(c, 0x100);
    finish_acc(c, 0x200);
    c.delay(1_us);
    start_acc(c, 0x300, 64);
    finish_acc(c, 0x300);
  });
  cpu.mst_port.bind(b);
  sim.run();

  EXPECT_TRUE(prof.overlapped(0, 1));
  EXPECT_FALSE(prof.overlapped(0, 2));
  EXPECT_FALSE(prof.overlapped(1, 2));

  const auto profiles = prof.profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "a1");
  EXPECT_EQ(profiles[0].concurrent_with, (std::vector<usize>{1}));
  EXPECT_TRUE(profiles[2].concurrent_with.empty());
  EXPECT_EQ(profiles[0].gates, accel::make_crc_spec().gate_count);
}

TEST(Profiler, ClosedLoopProfileAdviseTransform) {
  // Phase 1: simulate the hardwired design under the profiler.
  netlist::Design d;
  netlist::BusDecl bus_decl;
  d.add("system_bus", bus_decl);
  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 2048;
  ram.bus = "system_bus";
  d.add("ram", ram);
  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  const char* names[3] = {"fir", "quant", "crc"};
  const accel::KernelSpec specs[3] = {
      accel::make_fir_spec(accel::fir_lowpass_taps(8)),
      accel::make_quant_spec(75), accel::make_crc_spec()};
  for (int i = 0; i < 3; ++i) {
    netlist::HwAccelDecl a;
    a.base = 0x100 + static_cast<bus::addr_t>(i) * 0x100;
    a.spec = specs[i];
    a.slave_bus = a.master_bus = "system_bus";
    d.add(names[i], a);
  }
  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    for (int round = 0; round < 2; ++round)
      for (int i = 0; i < 3; ++i) {  // strictly sequential phases
        const auto base = static_cast<bus::addr_t>(0x100 + i * 0x100);
        start_acc(c, base, 64);
        finish_acc(c, base);
        c.delay(5_us);
      }
  };
  d.add("cpu", cpu);

  std::vector<BlockProfile> profiles;
  {
    kern::Simulation sim;
    netlist::Elaborated e(sim, d);
    ActivityProfiler prof(sim);
    for (const char* n : names) prof.watch(e.top(), e.get_hwacc(n));
    sim.run();
    profiles = prof.profiles();
  }

  // Phase 2: the advisor groups all three (sequential, similar size).
  const auto advice = advise_partitioning(profiles);
  ASSERT_EQ(advice.drcf_groups.size(), 1u);
  EXPECT_EQ(advice.drcf_groups[0].size(), 3u);

  // Phase 3: transform exactly the advised group and re-simulate.
  std::vector<std::string> candidates;
  for (const usize idx : advice.drcf_groups[0])
    candidates.push_back(profiles[idx].name);
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = "cfg_mem";
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  ASSERT_TRUE(report.ok);

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  EXPECT_TRUE(e.get_processor("cpu").finished());
  EXPECT_EQ(e.get_drcf("drcf1").stats().switches, 6u);  // 2 rounds x 3
}

}  // namespace
}  // namespace adriatic::dse
