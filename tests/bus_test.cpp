// Bus and memory substrate tests.
#include <gtest/gtest.h>

#include <vector>

#include "bus/bus_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;
using bus::BusStatus;

struct Fixture {
  kern::Simulation sim;
  kern::Module top{sim, "top"};
};

TEST(Memory, ReadWriteRoundTrip) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0x100, 64);
  bool ok = true;
  f.top.spawn_thread("t", [&] {
    bus::word w = 42;
    ok &= m.write(0x100, &w);
    w = 43;
    ok &= m.write(0x13F, &w);
    bus::word r = 0;
    ok &= m.read(0x100, &r);
    EXPECT_EQ(r, 42);
    ok &= m.read(0x13F, &r);
    EXPECT_EQ(r, 43);
  });
  f.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(m.stats().reads, 2u);
  EXPECT_EQ(m.stats().writes, 2u);
}

TEST(Memory, OutOfRangeFails) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0x100, 64);
  f.top.spawn_thread("t", [&] {
    bus::word w = 1;
    EXPECT_FALSE(m.write(0x0FF, &w));
    EXPECT_FALSE(m.read(0x140, &w));
    EXPECT_FALSE(m.read(0x100, nullptr));
  });
  f.sim.run();
  EXPECT_EQ(m.stats().errors, 3u);
}

TEST(Memory, LatencyConsumesTime) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0, 16, 5_ns, 3_ns);
  f.top.spawn_thread("t", [&] {
    bus::word w = 7;
    m.write(0, &w);
    EXPECT_EQ(f.sim.now(), 3_ns);
    m.read(0, &w);
    EXPECT_EQ(f.sim.now(), 8_ns);
  });
  f.sim.run();
}

TEST(Memory, BackdoorAccessors) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0x10, 4);
  const bus::word init[] = {1, 2, 3};
  m.load(0x10, init);
  EXPECT_EQ(m.peek(0x11), 2);
  m.poke(0x13, 9);
  EXPECT_EQ(m.peek(0x13), 9);
  EXPECT_THROW(m.peek(0x14), std::out_of_range);
  EXPECT_THROW(m.load(0x12, std::vector<bus::word>(5)), std::out_of_range);
  EXPECT_THROW((mem::Memory{f.top, "bad", 0, 0}), std::invalid_argument);
}

TEST(Memory, RomRejectsWrites) {
  Fixture f;
  const bus::word image[] = {10, 20, 30};
  mem::Rom rom(f.top, "rom", 0x200, image);
  f.top.spawn_thread("t", [&] {
    bus::word w = 0;
    EXPECT_TRUE(rom.read(0x201, &w));
    EXPECT_EQ(w, 20);
    w = 99;
    EXPECT_FALSE(rom.write(0x201, &w));
    EXPECT_TRUE(rom.read(0x201, &w));
    EXPECT_EQ(w, 20);
  });
  f.sim.run();
}

// ---------------------------------------------------------------------------

TEST(BusTest, DecodeAndTransfer) {
  Fixture f;
  bus::Bus b(f.top, "bus");
  mem::Memory m1(f.top, "m1", 0x000, 16);
  mem::Memory m2(f.top, "m2", 0x100, 16);
  b.bind_slave(m1);
  b.bind_slave(m2);
  f.top.spawn_thread("t", [&] {
    bus::word w = 5;
    EXPECT_EQ(b.write(0x001, &w), BusStatus::kOk);
    w = 6;
    EXPECT_EQ(b.write(0x101, &w), BusStatus::kOk);
    bus::word r = 0;
    EXPECT_EQ(b.read(0x001, &r), BusStatus::kOk);
    EXPECT_EQ(r, 5);
    EXPECT_EQ(b.read(0x101, &r), BusStatus::kOk);
    EXPECT_EQ(r, 6);
    EXPECT_EQ(b.read(0x500, &r), BusStatus::kUnmapped);
  });
  f.sim.run();
  EXPECT_EQ(b.stats().reads, 2u);
  EXPECT_EQ(b.stats().writes, 2u);
  EXPECT_EQ(b.stats().unmapped, 1u);
}

TEST(BusTest, OverlappingSlavesRejectedAtElaboration) {
  Fixture f;
  bus::Bus b(f.top, "bus");
  mem::Memory m1(f.top, "m1", 0x000, 32);
  mem::Memory m2(f.top, "m2", 0x010, 32);  // overlaps m1
  b.bind_slave(m1);
  b.bind_slave(m2);
  EXPECT_THROW(f.sim.elaborate(), std::logic_error);
}

TEST(BusTest, TransferTiming) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  cfg.address_cycles = 1;
  cfg.data_cycles = 1;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    bus::word w = 1;
    b.write(0, &w);
    // 1 address cycle + 1 data beat = 2 cycles = 20 ns.
    EXPECT_EQ(f.sim.now(), 20_ns);
  });
  f.sim.run();
}

TEST(BusTest, NarrowBusNeedsMoreBeats) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  cfg.data_width_bits = 8;  // 4 beats per 32-bit word
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    bus::word w = 1;
    b.write(0, &w);
    EXPECT_EQ(f.sim.now(), 50_ns);  // 1 addr + 4 beats
  });
  f.sim.run();
  EXPECT_EQ(b.stats().beats, 4u);
}

TEST(BusTest, BurstChunksByMaxBurst) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.max_burst = 4;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    std::vector<bus::word> out(10, 7);
    EXPECT_EQ(b.burst_write(0, out, 0), BusStatus::kOk);
    std::vector<bus::word> in(10, 0);
    EXPECT_EQ(b.burst_read(0, in, 0), BusStatus::kOk);
    for (auto v : in) EXPECT_EQ(v, 7);
  });
  f.sim.run();
  // 10 words in chunks of 4+4+2, read and write: 6 bursts... chunks of size
  // >1 count as bursts: 3 per direction.
  EXPECT_EQ(b.stats().bursts, 6u);
  EXPECT_EQ(b.stats().beats, 20u);
}

TEST(BusTest, BurstBeyondSlaveRangeUnmapped) {
  Fixture f;
  bus::Bus b(f.top, "bus");
  mem::Memory m(f.top, "m", 0, 8);
  b.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    std::vector<bus::word> data(16, 0);
    EXPECT_EQ(b.burst_read(4, data, 0), BusStatus::kUnmapped);
  });
  f.sim.run();
}

// Burst semantics at slave boundaries, table-driven: a burst chunk that
// would cross a slave's get_high_add() moves only the mapped prefix, and
// the burst loop re-decodes the remainder — landing in the adjacent slave
// (fresh address phase, kOk) or in unmapped space (prefix moved, then
// kUnmapped). The timed arbitrated path and the loose direct-call path
// must agree on BusStatus and beat counts for every shape.
TEST(BusTest, BurstAcrossSlaveBoundaries) {
  struct Shape {
    const char* name;
    bus::addr_t start;
    usize len;
    BusStatus expect;
    u64 expect_beats;  ///< Words actually moved (32-bit bus: 1 beat/word).
  };
  // Address map: m1 = 0x00..0x0F, m2 = 0x10..0x1F, unmapped from 0x20.
  const Shape shapes[] = {
      {"within_one_slave", 0x00, 8, BusStatus::kOk, 8},
      {"up_to_boundary", 0x08, 8, BusStatus::kOk, 8},
      {"cross_into_adjacent", 0x0C, 8, BusStatus::kOk, 8},
      {"cross_at_last_word", 0x0F, 2, BusStatus::kOk, 2},
      {"cross_into_unmapped", 0x1C, 8, BusStatus::kUnmapped, 4},
      {"start_unmapped", 0x20, 4, BusStatus::kUnmapped, 0},
  };
  for (const bool loose : {false, true}) {
    for (const auto& sh : shapes) {
      SCOPED_TRACE(std::string(sh.name) + (loose ? " loose" : " timed"));
      Fixture f;
      if (loose) f.sim.set_timing_mode(kern::TimingMode::kLoose);
      bus::Bus b(f.top, "bus");
      mem::Memory m1(f.top, "m1", 0x00, 16);
      mem::Memory m2(f.top, "m2", 0x10, 16);
      b.bind_slave(m1);
      b.bind_slave(m2);
      BusStatus wr{}, rd{};
      std::vector<bus::word> back(sh.len, 0);
      f.top.spawn_thread("t", [&] {
        std::vector<bus::word> data(sh.len);
        for (usize i = 0; i < sh.len; ++i)
          data[i] = static_cast<bus::word>(0xA0 + i);
        wr = b.burst_write(sh.start, data, 0);
        rd = b.burst_read(sh.start, back, 0);
      });
      f.sim.run();
      EXPECT_EQ(wr, sh.expect);
      EXPECT_EQ(rd, sh.expect);
      // Both directions moved the same number of beats.
      EXPECT_EQ(b.stats().beats, 2 * sh.expect_beats);
      if (sh.expect == BusStatus::kOk) {
        // The full payload landed, split across the two slaves' ranges.
        for (usize i = 0; i < sh.len; ++i) {
          const auto a = sh.start + static_cast<bus::addr_t>(i);
          const auto& owner = a <= 0x0F ? m1 : m2;
          EXPECT_EQ(owner.peek(a), 0xA0 + i) << "address " << a;
          EXPECT_EQ(back[i], 0xA0 + i) << "address " << a;
        }
      } else if (sh.expect_beats > 0) {
        // The mapped prefix was written before the unmapped decode failed.
        for (u64 i = 0; i < sh.expect_beats; ++i)
          EXPECT_EQ(m2.peek(sh.start + static_cast<bus::addr_t>(i)),
                    0xA0 + i);
      }
      // An unmapped start never reaches either path (decode fails first),
      // so only shapes that moved data prove the direct path engaged.
      if (!loose) {
        EXPECT_EQ(b.stats().direct_calls, 0u);
      } else if (sh.expect_beats > 0) {
        EXPECT_GT(b.stats().direct_calls, 0u);
      }
    }
  }
}

TEST(BusTest, LooseDirectPathMatchesTimedResults) {
  // The same single-master traffic, timed vs loose: identical data and
  // identical per-transfer occupancy (charged to the local offset instead
  // of the timed queue), so the end-to-end simulated time matches too.
  u64 timed_ps = 0, loose_ps = 0;
  std::vector<bus::word> timed_data, loose_data;
  for (const bool loose : {false, true}) {
    Fixture f;
    if (loose) f.sim.set_timing_mode(kern::TimingMode::kLoose);
    bus::Bus b(f.top, "bus");
    mem::Memory m(f.top, "ram", 0x100, 64);
    b.bind_slave(m);
    std::vector<bus::word>& out = loose ? loose_data : timed_data;
    f.top.spawn_thread("t", [&] {
      std::vector<bus::word> data(40);
      for (usize i = 0; i < data.size(); ++i)
        data[i] = static_cast<bus::word>(7 * i + 3);
      EXPECT_EQ(b.burst_write(0x110, data, 0), BusStatus::kOk);
      out.resize(data.size());
      EXPECT_EQ(b.burst_read(0x110, out, 0), BusStatus::kOk);
      bus::word w = 0;
      EXPECT_EQ(b.read(0x110, &w, 0), BusStatus::kOk);
      EXPECT_EQ(w, 3u);
    });
    f.sim.run();
    (loose ? loose_ps : timed_ps) = f.sim.now().picoseconds();
    if (loose) {
      EXPECT_GT(b.stats().direct_calls, 0u);
      EXPECT_GT(b.stats().dmi_words, 0u);  // Memory grants DMI
    }
  }
  EXPECT_EQ(loose_data, timed_data);
  EXPECT_EQ(loose_ps, timed_ps);
}

TEST(BusTest, PriorityArbitration) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  cfg.arbitration = bus::ArbPolicy::kPriority;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  std::vector<int> completion_order;
  // Master 0 grabs the bus; masters 1 (low prio) and 2 (high prio) contend.
  f.top.spawn_thread("m0", [&] {
    std::vector<bus::word> d(8, 0);
    b.burst_read(0, d, 0);
    completion_order.push_back(0);
  });
  f.top.spawn_thread("m1", [&] {
    kern::wait(1_ns);  // arrive while m0 holds the bus
    bus::word w = 0;
    b.read(0, &w, /*priority=*/1);
    completion_order.push_back(1);
  });
  f.top.spawn_thread("m2", [&] {
    kern::wait(2_ns);  // arrives after m1 but with higher priority
    bus::word w = 0;
    b.read(0, &w, /*priority=*/5);
    completion_order.push_back(2);
  });
  f.sim.run();
  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 0);
  EXPECT_EQ(completion_order[1], 2);  // high priority jumps the queue
  EXPECT_EQ(completion_order[2], 1);
  EXPECT_EQ(b.arbiter().contended_grants(), 2u);
  EXPECT_GT(b.stats().wait_time.picoseconds(), 0u);
}

TEST(BusTest, FifoArbitrationPreservesArrival) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.arbitration = bus::ArbPolicy::kFifo;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  std::vector<int> order;
  f.top.spawn_thread("m0", [&] {
    std::vector<bus::word> d(8, 0);
    b.burst_read(0, d, 0);
    order.push_back(0);
  });
  for (int i = 1; i <= 3; ++i) {
    f.top.spawn_thread("m" + std::to_string(i), [&, i] {
      kern::wait(kern::Time::ns(static_cast<u64>(i)));
      bus::word w = 0;
      b.read(0, &w, /*priority=*/static_cast<u32>(10 - i));
      order.push_back(i);
    });
  }
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BusTest, UtilizationTracksBusyFraction) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    bus::word w = 1;
    b.write(0, &w);       // busy 20ns
    kern::wait(80_ns);    // idle
  });
  f.sim.run();
  EXPECT_NEAR(b.utilization(), 0.2, 1e-9);
}

TEST(BusTest, SlaveErrorPropagates) {
  Fixture f;
  bus::Bus b(f.top, "bus");
  const bus::word image[] = {1};
  mem::Rom rom(f.top, "rom", 0, image);
  b.bind_slave(rom);
  f.top.spawn_thread("t", [&] {
    bus::word w = 9;
    EXPECT_EQ(b.write(0, &w), BusStatus::kSlaveError);
  });
  f.sim.run();
  EXPECT_EQ(b.stats().slave_errors, 1u);
}

// ---------------------------------------------------------------------------

TEST(DirectLinkTest, TransfersWithoutContention) {
  Fixture f;
  bus::DirectLink link(f.top, "link", 5_ns);
  mem::Memory m(f.top, "cfg_mem", 0x1000, 32);
  link.bind_slave(m);
  f.top.spawn_thread("t", [&] {
    std::vector<bus::word> data{1, 2, 3, 4};
    EXPECT_EQ(link.burst_write(0x1000, data, 0), BusStatus::kOk);
    std::vector<bus::word> in(4, 0);
    EXPECT_EQ(link.burst_read(0x1000, in, 0), BusStatus::kOk);
    EXPECT_EQ(in[3], 4);
    bus::word w = 0;
    EXPECT_EQ(link.read(0x2000, &w, 0), BusStatus::kUnmapped);
  });
  f.sim.run();
  EXPECT_EQ(link.transfers(), 8u);
}

TEST(BridgeTest, ForwardsAcrossBuses) {
  Fixture f;
  bus::Bus sys(f.top, "sys_bus");
  bus::Bus periph(f.top, "periph_bus");
  // Peripheral memory lives at 0x0 downstream, exposed at 0x8000 upstream.
  mem::Memory pm(f.top, "pmem", 0x0, 64);
  periph.bind_slave(pm);
  bus::Bridge bridge(f.top, "bridge", 0x8000, 0x803F, -0x8000);
  bridge.mst_port.bind(periph);
  sys.bind_slave(bridge);
  f.top.spawn_thread("t", [&] {
    bus::word w = 77;
    EXPECT_EQ(sys.write(0x8005, &w), BusStatus::kOk);
    bus::word r = 0;
    EXPECT_EQ(sys.read(0x8005, &r), BusStatus::kOk);
    EXPECT_EQ(r, 77);
  });
  f.sim.run();
  EXPECT_EQ(pm.peek(0x5), 77);
  EXPECT_EQ(bridge.forwarded(), 2u);
  EXPECT_EQ(periph.stats().reads, 1u);
}

const bus::MasterGrantStats* find_master(
    const std::vector<bus::MasterGrantStats>& stats,
    const std::string& name) {
  for (const auto& m : stats)
    if (m.master == name) return &m;
  return nullptr;
}

TEST(BusTest, ArbiterTracksPerMasterGrants) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("m0", [&] {
    bus::word w = 0;
    b.read(0, &w);
    kern::wait(500_ns);  // idle gap between this master's grants
    b.read(0, &w);
  });
  f.top.spawn_thread("m1", [&] {
    kern::wait(1_ns);  // contends with m0's first transfer
    bus::word w = 0;
    b.read(0, &w);
  });
  f.sim.run();
  const auto stats = b.arbiter().master_stats();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by name for deterministic reports.
  EXPECT_EQ(stats[0].master, "top.m0");
  EXPECT_EQ(stats[1].master, "top.m1");
  const auto* m0 = find_master(stats, "top.m0");
  const auto* m1 = find_master(stats, "top.m1");
  EXPECT_EQ(m0->grants, 2u);
  EXPECT_GE(m0->max_grant_gap, kern::Time::ns(500));
  EXPECT_EQ(m0->master_id, kern::sched_name_hash("top.m0"));
  EXPECT_EQ(m1->grants, 1u);
  EXPECT_GT(m1->max_wait.picoseconds(), 0u);  // waited behind m0
  EXPECT_EQ(m1->total_wait, m1->max_wait);
}

TEST(BusTest, StarvationThresholdFlagsLongWaits) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  cfg.starvation_threshold = 50_ns;  // flag any arbitration wait > 50 ns
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("hog", [&] {
    std::vector<bus::word> d(8, 0);  // 8 beats x 10 ns holds the bus ~80 ns
    b.burst_read(0, d, 0);
  });
  f.top.spawn_thread("victim", [&] {
    kern::wait(1_ns);
    bus::word w = 0;
    b.read(0, &w);  // waits out the hog's whole burst
  });
  f.sim.run();
  EXPECT_EQ(b.arbiter().starvation_threshold(), 50_ns);
  const auto starved = b.arbiter().starved_masters();
  ASSERT_EQ(starved.size(), 1u);
  EXPECT_EQ(starved[0].master, "top.victim");
  EXPECT_EQ(starved[0].starved_grants, 1u);
  EXPECT_GT(starved[0].max_wait, kern::Time::ns(50));
}

TEST(BusTest, StarvationDisabledByDefault) {
  Fixture f;
  bus::BusConfig cfg;
  cfg.cycle_time = 10_ns;
  bus::Bus b(f.top, "bus", cfg);
  mem::Memory m(f.top, "m", 0, 64);
  b.bind_slave(m);
  f.top.spawn_thread("hog", [&] {
    std::vector<bus::word> d(8, 0);
    b.burst_read(0, d, 0);
  });
  f.top.spawn_thread("victim", [&] {
    kern::wait(1_ns);
    bus::word w = 0;
    b.read(0, &w);
  });
  f.sim.run();
  // Accounting still runs; flagging does not.
  EXPECT_TRUE(b.arbiter().starved_masters().empty());
  EXPECT_EQ(b.arbiter().master_stats().size(), 2u);
}

TEST(BusTest, DmiRevokedOnCowSplitAndRegranted) {
  // Loose-mode fast path against a COW-shared page: the first grant is
  // read-only (writing through it would bypass the split), the write goes
  // through the slave path and splits the page — revoking the cached
  // pointer — and the re-request gets a writable grant into the private
  // copy. Data stays coherent throughout.
  Fixture f;
  f.sim.set_timing_mode(kern::TimingMode::kLoose);
  bus::Bus b(f.top, "bus");
  mem::Memory m(f.top, "ram", 0, mem::kPageWords);
  b.bind_slave(m);
  std::vector<bus::word> image(mem::kPageWords);
  for (usize i = 0; i < image.size(); ++i)
    image[i] = static_cast<bus::word>(0xD3110000u + i);
  m.attach_image(mem::ImageRegistry::instance().intern(image), 0);
  ASSERT_TRUE(m.backing().page_shared(0));
  f.top.spawn_thread("t", [&] {
    std::vector<bus::word> r(16, 0);
    // Reads against the shared page run through a read-only DMI grant.
    EXPECT_EQ(b.burst_read(0x10, r, 0), BusStatus::kOk);
    EXPECT_EQ(r[0], image[0x10]);
    // The write COW-splits the page; the RO pointer is revoked mid-flight.
    std::vector<bus::word> w(4, 0xBEEF);
    EXPECT_EQ(b.burst_write(0x10, w, 0), BusStatus::kOk);
    // Back to reads: the bus re-requests and gets a writable grant into the
    // now-private page, observing the new data.
    EXPECT_EQ(b.burst_read(0x10, r, 0), BusStatus::kOk);
    EXPECT_EQ(r[0], 0xBEEF);
    EXPECT_EQ(r[4], image[0x14]);  // untouched words kept the image values
  });
  f.sim.run();
  EXPECT_FALSE(m.backing().page_shared(0));
  EXPECT_EQ(m.backing().stats().cow_splits, 1u);
  EXPECT_GE(m.backing().stats().revocations, 1u);
  EXPECT_GT(b.stats().dmi_words, 0u);
}

TEST(BusTest, DmiPageMissRegrantsInsteadOfFallingBack) {
  // Page-granular DMI: a burst that leaves the granted page behind must
  // replace the cached region with the next page's grant, not silently
  // fall back to per-word slave calls.
  Fixture f;
  f.sim.set_timing_mode(kern::TimingMode::kLoose);
  bus::Bus b(f.top, "bus");
  mem::Memory m(f.top, "ram", 0, 2 * mem::kPageWords);
  b.bind_slave(m);
  // Materialize both pages privately so every grant is writable.
  m.poke(0, 1);
  m.poke(mem::kPageWords, 2);
  f.top.spawn_thread("t", [&] {
    bus::word w = 0;
    EXPECT_EQ(b.read(0, &w, 0), BusStatus::kOk);  // grant for page 0
    EXPECT_EQ(w, 1u);
    EXPECT_EQ(b.read(mem::kPageWords, &w, 0), BusStatus::kOk);  // page miss
    EXPECT_EQ(w, 2u);
  });
  f.sim.run();
  EXPECT_EQ(b.stats().dmi_regrants, 1u);
  EXPECT_EQ(b.stats().dmi_words, 2u);  // both reads used a direct pointer
}

}  // namespace
}  // namespace adriatic
