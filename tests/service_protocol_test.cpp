// Protocol battery for the campaign service (service/protocol.hpp): codec
// round-trips, a table of framing/semantic violations through the
// incremental LineParser, and a live in-process campaignd answering each
// malformed request with a structured ERROR frame — never a crash, never a
// silent drop. Framing violations (torn line, bad checksum, oversize frame)
// latch the parser and end the connection; semantic violations (unknown
// verb, stale version, duplicate id, unknown kind, bad params) are answered
// and the connection keeps serving.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

using namespace adriatic;
using namespace adriatic::service;

namespace {

/// Short unique socket paths (sun_path caps at ~107 bytes, so no deep
/// build-tree temp dirs).
std::string temp_socket(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/adriatic_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A checksummed wire line with full control over the version token —
/// encode_wire_line() always stamps kProtocolVersion, so stale-version
/// frames must be built by hand.
std::string raw_line(const std::string& content) {
  return content + campaign::checksum_suffix(content) + "\n";
}

}  // namespace

// -- Codec round-trips --------------------------------------------------------

TEST(ServiceProtocolTest, WireLineRoundTripsHostileValues) {
  WireLine line;
  line.verb = "SUBMIT";
  line.add("id", "42");
  line.add("label", "has spaces\tand\ttabs");
  line.add("detail", "percent % newline \n cr \r null-ish");
  line.add("empty", "");
  const std::string encoded = encode_wire_line(line);
  ASSERT_EQ(encoded.back(), '\n');
  // One line on the wire, no embedded newlines.
  EXPECT_EQ(encoded.find('\n'), encoded.size() - 1);

  const auto ev = parse_wire_line(encoded.substr(0, encoded.size() - 1));
  ASSERT_TRUE(ev.line.has_value()) << encoded;
  EXPECT_FALSE(ev.error.has_value());
  EXPECT_EQ(ev.line->verb, "SUBMIT");
  ASSERT_EQ(ev.line->fields.size(), line.fields.size());
  for (usize i = 0; i < line.fields.size(); ++i) {
    EXPECT_EQ(ev.line->fields[i].first, line.fields[i].first);
    EXPECT_EQ(ev.line->fields[i].second, line.fields[i].second);
  }
}

TEST(ServiceProtocolTest, ParamsRoundTrip) {
  ParamMap params;
  params["plain"] = "123";
  params["spacey value"] = "a b c";
  params["empty"] = "";
  params["pct"] = "100%";
  EXPECT_EQ(decode_params(encode_params(params)), params);
  EXPECT_EQ(decode_params(encode_params(ParamMap{})), ParamMap{});
}

TEST(ServiceProtocolTest, RequestRoundTrips) {
  Request req;
  req.verb = Verb::kSubmit;
  req.id = 7;
  req.spec = 0xdeadbeefcafef00dULL;
  req.kind = "fault_point";
  req.label = "fail_fast/r10 with space";
  ParamMap params;
  params["rate_pct"] = "10";
  req.params = encode_params(params);

  const std::string wire = encode_request(req);
  const auto ev = parse_wire_line(wire.substr(0, wire.size() - 1));
  ASSERT_TRUE(ev.line.has_value());
  const auto rev = to_request(*ev.line);
  ASSERT_TRUE(rev.request.has_value())
      << (rev.error.has_value() ? rev.error->detail : "");
  EXPECT_EQ(rev.request->verb, Verb::kSubmit);
  EXPECT_EQ(rev.request->id, 7u);
  EXPECT_EQ(rev.request->spec, req.spec);
  EXPECT_EQ(rev.request->kind, req.kind);
  EXPECT_EQ(rev.request->label, req.label);
  EXPECT_EQ(decode_params(rev.request->params), params);

  for (const Verb verb : {Verb::kWatch, Verb::kStats, Verb::kDrain}) {
    Request simple;
    simple.verb = verb;
    simple.id = 9;
    const std::string w = encode_request(simple);
    const auto e = parse_wire_line(w.substr(0, w.size() - 1));
    ASSERT_TRUE(e.line.has_value());
    const auto r = to_request(*e.line);
    ASSERT_TRUE(r.request.has_value());
    EXPECT_EQ(r.request->verb, verb);
    EXPECT_EQ(r.request->id, 9u);
  }
}

TEST(ServiceProtocolTest, ResponseRoundTrips) {
  // OK
  {
    const std::string w = encode_ok(3, 17, true);
    const auto ev = parse_wire_line(w.substr(0, w.size() - 1));
    ASSERT_TRUE(ev.line.has_value());
    const auto r = to_response(*ev.line);
    ASSERT_TRUE(r.response.has_value());
    EXPECT_EQ(r.response->type, ResponseType::kOk);
    EXPECT_EQ(r.response->id, 3u);
    EXPECT_EQ(r.response->index, 17u);
    EXPECT_TRUE(r.response->cached);
  }
  // RESULT carries a full encode_job_stats tail, byte-exactly.
  {
    campaign::JobStats stats;
    stats.index = 5;
    stats.label = "golden 42";
    stats.done = true;
    stats.attempts = 2;
    stats.wall_seconds = 0.25;
    stats.digest = 0x1234'5678'9abc'def0ULL;
    stats.user_data = "fold\t123\tsecond cell";
    const std::string w = encode_result(11, 0xfeedULL, stats);
    const auto ev = parse_wire_line(w.substr(0, w.size() - 1));
    ASSERT_TRUE(ev.line.has_value());
    const auto r = to_response(*ev.line);
    ASSERT_TRUE(r.response.has_value())
        << (r.error.has_value() ? r.error->detail : "");
    EXPECT_EQ(r.response->type, ResponseType::kResult);
    EXPECT_EQ(r.response->id, 11u);
    EXPECT_EQ(r.response->spec, 0xfeedULL);
    EXPECT_EQ(r.response->index, 5u);
    EXPECT_EQ(campaign::encode_job_stats(r.response->stats),
              campaign::encode_job_stats(stats));
  }
  // ERROR
  {
    const std::string w =
        encode_error(0, ErrorCode::kBadChecksum, "detail with spaces");
    const auto ev = parse_wire_line(w.substr(0, w.size() - 1));
    ASSERT_TRUE(ev.line.has_value());
    const auto r = to_response(*ev.line);
    ASSERT_TRUE(r.response.has_value());
    EXPECT_EQ(r.response->type, ResponseType::kError);
    EXPECT_EQ(r.response->code, ErrorCode::kBadChecksum);
    EXPECT_EQ(r.response->detail, "detail with spaces");
  }
  // STATS + DRAINED
  {
    const std::string w =
        encode_stats_reply(2, {{"requests", "10"}, {"dedup_hits", "4"}});
    const auto ev = parse_wire_line(w.substr(0, w.size() - 1));
    ASSERT_TRUE(ev.line.has_value());
    const auto r = to_response(*ev.line);
    ASSERT_TRUE(r.response.has_value());
    EXPECT_EQ(r.response->type, ResponseType::kStats);
    bool saw = false;
    for (const auto& [k, v] : r.response->fields)
      if (k == "dedup_hits") {
        EXPECT_EQ(v, "4");
        saw = true;
      }
    EXPECT_TRUE(saw);

    const std::string d = encode_drained(8);
    const auto de = parse_wire_line(d.substr(0, d.size() - 1));
    ASSERT_TRUE(de.line.has_value());
    const auto dr = to_response(*de.line);
    ASSERT_TRUE(dr.response.has_value());
    EXPECT_EQ(dr.response->type, ResponseType::kDrained);
    EXPECT_EQ(dr.response->id, 8u);
  }
}

TEST(ServiceProtocolTest, ErrorCodeNamesRoundTrip) {
  for (const ErrorCode code :
       {ErrorCode::kTornLine, ErrorCode::kBadChecksum, ErrorCode::kOversizeFrame,
        ErrorCode::kUnknownVerb, ErrorCode::kStaleVersion,
        ErrorCode::kDuplicateId, ErrorCode::kBadRequest, ErrorCode::kUnknownKind,
        ErrorCode::kShutdown}) {
    const auto parsed = parse_error_code(error_code_name(code));
    ASSERT_TRUE(parsed.has_value()) << error_code_name(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(parse_error_code("no-such-code").has_value());
}

// -- LineParser violation table -----------------------------------------------

TEST(ServiceProtocolTest, ParserViolationTable) {
  struct Case {
    const char* name;
    std::string bytes;      ///< Fed verbatim.
    ErrorCode expect;       ///< Code of the first event.
    bool fatal;             ///< Parser must latch afterwards.
  };
  const std::vector<Case> cases = {
      {"torn line (no checksum)", "SUBMIT v1 id=1\n", ErrorCode::kTornLine,
       true},
      {"bad checksum", "STATS v1 id=1 cks=0123456789abcdef\n",
       ErrorCode::kBadChecksum, true},
      {"oversize frame", std::string(kMaxLineBytes + 2, 'a'),
       ErrorCode::kOversizeFrame, true},
      {"stale version", raw_line("STATS v0 id=1"), ErrorCode::kStaleVersion,
       false},
      {"checksummed but empty content", raw_line(""), ErrorCode::kBadRequest,
       false},
  };
  for (const auto& c : cases) {
    LineParser parser;
    parser.feed(c.bytes.data(), c.bytes.size());
    const auto ev = parser.next();
    ASSERT_TRUE(ev.has_value()) << c.name;
    ASSERT_TRUE(ev->error.has_value()) << c.name;
    EXPECT_EQ(ev->error->code, c.expect) << c.name;
    EXPECT_EQ(parser.fatal(), c.fatal) << c.name;
    EXPECT_EQ(is_fatal(ev->error->code), c.fatal) << c.name;
    if (c.fatal) {
      // A latched parser yields nothing more, even for valid input.
      const std::string good = encode_request({Verb::kStats, 1});
      parser.feed(good.data(), good.size());
      EXPECT_FALSE(parser.next().has_value()) << c.name;
    }
  }
}

TEST(ServiceProtocolTest, SemanticViolationTable) {
  // Violations below the wire layer: the line parses, to_request() rejects.
  struct Case {
    const char* name;
    std::string content;  ///< Pre-checksum line content.
    ErrorCode expect;
  };
  const std::vector<Case> cases = {
      {"unknown verb", "FROB v1 id=3", ErrorCode::kUnknownVerb},
      {"zero id", "STATS v1 id=0", ErrorCode::kBadRequest},
      {"missing id", "STATS v1", ErrorCode::kBadRequest},
      {"non-numeric id", "STATS v1 id=abc", ErrorCode::kBadRequest},
      {"overflow id", "STATS v1 id=99999999999999999999",
       ErrorCode::kBadRequest},
      {"submit without spec", "SUBMIT v1 id=1 kind=golden label=x",
       ErrorCode::kBadRequest},
      {"submit without kind", "SUBMIT v1 id=1 spec=00000000000000ff label=x",
       ErrorCode::kBadRequest},
  };
  for (const auto& c : cases) {
    LineParser parser;
    const std::string bytes = raw_line(c.content);
    parser.feed(bytes.data(), bytes.size());
    const auto ev = parser.next();
    ASSERT_TRUE(ev.has_value()) << c.name;
    ASSERT_TRUE(ev->line.has_value()) << c.name;
    const auto rev = to_request(*ev->line);
    ASSERT_TRUE(rev.error.has_value()) << c.name;
    EXPECT_EQ(rev.error->code, c.expect) << c.name;
    EXPECT_FALSE(parser.fatal()) << c.name;
  }
}

TEST(ServiceProtocolTest, ParserHandlesChunksBlanksAndCrlf) {
  LineParser parser;
  const std::string wire =
      "\n" + encode_request({Verb::kStats, 5}) + "\r\n" +
      encode_request({Verb::kDrain, 6});
  // Byte-at-a-time feeding must produce exactly the same two events.
  std::vector<WireEvent> events;
  for (const char byte : wire) {
    parser.feed(&byte, 1);
    while (auto ev = parser.next()) events.push_back(*ev);
  }
  ASSERT_EQ(events.size(), 2u);
  ASSERT_TRUE(events[0].line.has_value());
  EXPECT_EQ(events[0].line->verb, "STATS");
  ASSERT_TRUE(events[1].line.has_value());
  EXPECT_EQ(events[1].line->verb, "DRAIN");
  EXPECT_FALSE(parser.fatal());
}

// -- Live server: every violation answered with a typed ERROR frame ----------

namespace {

struct LiveServer {
  ServerOptions opt;
  std::unique_ptr<CampaignServer> server;

  explicit LiveServer(const char* tag) {
    opt.socket_path = temp_socket(tag);
    opt.threads = 1;
    server = std::make_unique<CampaignServer>(opt);
  }
  ~LiveServer() { server->stop(); }
};

}  // namespace

TEST(ServiceProtocolTest, ServerAnswersFramingViolationsAndCloses) {
  struct Case {
    const char* name;
    std::string bytes;
    ErrorCode expect;
  };
  const std::vector<Case> cases = {
      {"torn line", "SUBMIT v1 id=1\n", ErrorCode::kTornLine},
      {"bad checksum", "STATS v1 id=1 cks=0123456789abcdef\n",
       ErrorCode::kBadChecksum},
  };
  LiveServer live("proto_fatal");
  ASSERT_TRUE(live.server->start());
  for (const auto& c : cases) {
    auto client = ServiceClient::connect(live.opt.socket_path);
    ASSERT_NE(client, nullptr) << c.name;
    ASSERT_TRUE(client->send_raw(c.bytes)) << c.name;
    const auto resp = client->next_response();
    ASSERT_TRUE(resp.has_value()) << c.name;
    EXPECT_EQ(resp->type, ResponseType::kError) << c.name;
    EXPECT_EQ(resp->code, c.expect) << c.name;
    EXPECT_EQ(resp->id, 0u) << c.name;  // no trustworthy id on a torn frame
    // Framing violations end the connection: EOF, not more frames.
    EXPECT_FALSE(client->next_response().has_value()) << c.name;
    EXPECT_FALSE(client->wire_error().has_value()) << c.name;
  }
  EXPECT_GE(live.server->counters().errors, cases.size());
}

TEST(ServiceProtocolTest, ServerAnswersSemanticViolationsAndKeepsServing) {
  LiveServer live("proto_sem");
  ASSERT_TRUE(live.server->start());
  auto client = ServiceClient::connect(live.opt.socket_path);
  ASSERT_NE(client, nullptr);

  struct Case {
    const char* name;
    std::string bytes;
    ErrorCode expect;
    u64 id;  ///< Expected id echoed in the ERROR frame.
  };
  const std::vector<Case> cases = {
      {"unknown verb", raw_line("FROB v1 id=3"), ErrorCode::kUnknownVerb, 3},
      {"stale version", raw_line("STATS v0 id=4"), ErrorCode::kStaleVersion,
       0},
      {"bad request", raw_line("STATS v1 id=0"), ErrorCode::kBadRequest, 0},
  };
  for (const auto& c : cases) {
    ASSERT_TRUE(client->send_raw(c.bytes)) << c.name;
    const auto resp = client->next_response();
    ASSERT_TRUE(resp.has_value()) << c.name;
    EXPECT_EQ(resp->type, ResponseType::kError) << c.name;
    EXPECT_EQ(resp->code, c.expect) << c.name;
    EXPECT_EQ(resp->id, c.id) << c.name;
  }

  // Unknown kind and invalid params, through the regular client encoder.
  ASSERT_TRUE(client->submit(20, 0x1234, "no_such_kind", "x", {}));
  auto resp = client->next_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, ResponseType::kError);
  EXPECT_EQ(resp->code, ErrorCode::kUnknownKind);
  EXPECT_EQ(resp->id, 20u);

  ASSERT_TRUE(client->submit(21, 0x1235, "golden", "golden", {}));  // no seed
  resp = client->next_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, ResponseType::kError);
  EXPECT_EQ(resp->code, ErrorCode::kBadRequest);
  EXPECT_EQ(resp->id, 21u);

  // Duplicate request id on the same connection.
  ASSERT_TRUE(client->stats(30));
  resp = client->next_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, ResponseType::kStats);
  ASSERT_TRUE(client->stats(30));
  resp = client->next_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, ResponseType::kError);
  EXPECT_EQ(resp->code, ErrorCode::kDuplicateId);

  // The connection survived every semantic violation above.
  ASSERT_TRUE(client->stats(40));
  resp = client->next_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->type, ResponseType::kStats);
  u64 errors = 0;
  for (const auto& [k, v] : resp->fields)
    if (k == "errors") errors = std::strtoull(v.c_str(), nullptr, 10);
  EXPECT_GE(errors, 6u);
}
