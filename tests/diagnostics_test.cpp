// Hang-diagnostics tests: quiescent-deadlock reports, the sim-time progress
// watchdog (livelock), daemon exclusion, and report formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "util/json.hpp"

namespace adriatic::kern {
namespace {

using namespace adriatic::kern::literals;

const BlockedWaiter* find_waiter(const DeadlockReport& r,
                                 const std::string& process) {
  for (const BlockedWaiter& w : r.waiters)
    if (w.process == process) return &w;
  return nullptr;
}

TEST(DeadlockReportTest, MutualDeadlockNamesBothProcessesAndEvents) {
  Simulation sim;
  Module top(sim, "top");
  Event ev_a(sim, "ev_a");
  Event ev_b(sim, "ev_b");
  // The paper's classic two-party deadlock: each side waits for the other's
  // event before it would produce its own — neither notification ever fires.
  top.spawn_thread("alice", [&] {
    wait(ev_b);
    ev_a.notify();
  });
  top.spawn_thread("bob", [&] {
    wait(ev_a);
    ev_b.notify();
  });

  int handler_calls = 0;
  DeadlockReport seen;
  sim.set_deadlock_handler([&](const DeadlockReport& r) {
    ++handler_calls;
    seen = r;
  });

  // The return value stays kNoActivity — callers that key on it (tests,
  // tools) are unaffected; the report carries the diagnosis.
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const DeadlockReport& r = *sim.deadlock_report();
  EXPECT_EQ(r.kind, DeadlockReport::Kind::kDeadlock);
  ASSERT_EQ(r.waiters.size(), 2u);

  const BlockedWaiter* alice = find_waiter(r, "top.alice");
  const BlockedWaiter* bob = find_waiter(r, "top.bob");
  ASSERT_NE(alice, nullptr);
  ASSERT_NE(bob, nullptr);
  EXPECT_TRUE(alice->is_thread);
  ASSERT_EQ(alice->awaited.size(), 1u);
  EXPECT_EQ(alice->awaited[0], "ev_b");
  ASSERT_EQ(bob->awaited.size(), 1u);
  EXPECT_EQ(bob->awaited[0], "ev_a");
  // Ids are the scheduler-trace name hashes, so reports join against traces.
  EXPECT_EQ(alice->process_id, sched_name_hash("top.alice"));
  EXPECT_EQ(alice->awaited_ids[0], sched_name_hash("ev_b"));

  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(seen.waiters.size(), 2u);
}

TEST(DeadlockReportTest, CleanFinishLeavesNoReport) {
  Simulation sim;
  Module top(sim, "top");
  top.spawn_thread("worker", [&] { wait(10_ns); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  EXPECT_FALSE(sim.deadlock_report().has_value());
}

TEST(DeadlockReportTest, DaemonWaitersAreExcluded) {
  Simulation sim;
  Module top(sim, "top");
  Event never(sim, "never");
  // A blocked daemon (infrastructure, e.g. a monitor) is not a deadlock:
  // quiescence with only daemons waiting is a normal end of simulation.
  auto& d = top.spawn_thread("monitor", [&] { wait(never); });
  d.set_daemon();
  top.spawn_thread("worker", [&] { wait(5_ns); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  EXPECT_FALSE(sim.deadlock_report().has_value());
}

TEST(DeadlockReportTest, WaitTimesAreMeasuredFromBlockStart) {
  Simulation sim;
  Module top(sim, "top");
  Event never(sim, "never");
  top.spawn_thread("stuck", [&] {
    wait(50_ns);
    wait(never);  // blocks at t = 50 ns
  });
  top.spawn_thread("background", [&] { wait(200_ns); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const DeadlockReport& r = *sim.deadlock_report();
  EXPECT_EQ(r.at, Time::ns(200));
  const BlockedWaiter* stuck = find_waiter(r, "top.stuck");
  ASSERT_NE(stuck, nullptr);
  EXPECT_EQ(stuck->blocked_since, Time::ns(50));
  EXPECT_EQ(stuck->wait_duration, Time::ns(150));
}

TEST(DeadlockReportTest, WaitAnyListsEveryAwaitedEvent) {
  Simulation sim;
  Module top(sim, "top");
  Event e1(sim, "e1");
  Event e2(sim, "e2");
  top.spawn_thread("chooser", [&] {
    const std::array<Event*, 2> evs{&e1, &e2};
    wait_any(evs);
  });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const BlockedWaiter* w = find_waiter(*sim.deadlock_report(), "top.chooser");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->awaited.size(), 2u);
  EXPECT_NE(std::find(w->awaited.begin(), w->awaited.end(), "e1"),
            w->awaited.end());
  EXPECT_NE(std::find(w->awaited.begin(), w->awaited.end(), "e2"),
            w->awaited.end());
}

TEST(DeadlockReportTest, ReportIsClearedByTheNextRun) {
  Simulation sim;
  Module top(sim, "top");
  Event wake(sim, "wake");
  Event never(sim, "never");
  top.spawn_thread("stuck", [&] { wait(wake); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  // Wake the waiter and continue: the stale report must not survive a run
  // that ends cleanly.
  wake.notify(1_ns);
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  EXPECT_FALSE(sim.deadlock_report().has_value());
}

TEST(DeadlockReportTest, DestroyedProcessesNeverAppearInTheReport) {
  // Regression: a process destroyed mid-run (the EventQueue teardown
  // pattern) stayed in the scheduler's process list because ~Object()'s
  // dynamic_cast ran after the Process subobject was gone; the quiescence
  // report walk then dereferenced the freed process. Unregistration now
  // happens in ~Process() itself.
  Simulation sim;
  Module top(sim, "top");
  Event never(sim, "never");
  auto q = std::make_unique<EventQueue>(sim, "q");
  top.spawn_thread("reaper", [&] {
    wait(Time::ns(10));
    q.reset();
  });
  top.spawn_thread("stuck", [&] { wait(never); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const DeadlockReport& r = *sim.deadlock_report();
  ASSERT_EQ(r.waiters.size(), 1u);
  EXPECT_EQ(r.waiters[0].process, "top.stuck");
}

TEST(LivelockWatchdogTest, ClockOnlyActivityTripsTheWatchdog) {
  Simulation sim;
  Module top(sim, "top");
  // The clock ticks forever (its tick process is a daemon), so time keeps
  // advancing — but no model process runs: the definition of a livelock.
  Clock clk(top, "clk", 10_ns);
  Event never(sim, "never");
  top.spawn_thread("stuck", [&] { wait(never); });

  sim.set_max_quiet_time(1_us);
  const auto reason = sim.run(Time::ms(100));
  EXPECT_EQ(reason, StopReason::kStalled);
  // Stopped at (last progress) + max_quiet_time, not after the full 100 ms.
  EXPECT_LE(sim.now(), Time::us(2));
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const DeadlockReport& r = *sim.deadlock_report();
  EXPECT_EQ(r.kind, DeadlockReport::Kind::kLivelock);
  EXPECT_NE(find_waiter(r, "top.stuck"), nullptr);
}

TEST(LivelockWatchdogTest, ProgressingModelDoesNotTrip) {
  Simulation sim;
  Module top(sim, "top");
  Clock clk(top, "clk", 10_ns);
  // A real (non-daemon) consumer keeps making progress well inside the
  // quiet-time budget: the watchdog must stay silent for the whole run.
  int ticks = 0;
  top.spawn_thread("consumer", [&] {
    for (;;) {
      wait(clk.posedge_event());
      ++ticks;
    }
  });
  sim.set_max_quiet_time(1_us);
  EXPECT_EQ(sim.run(Time::us(2)), StopReason::kTimeLimit);
  EXPECT_GT(ticks, 100);
  EXPECT_FALSE(sim.deadlock_report().has_value());
}

TEST(LivelockWatchdogTest, DisabledByDefault) {
  Simulation sim;
  Module top(sim, "top");
  Clock clk(top, "clk", 10_ns);
  Event never(sim, "never");
  top.spawn_thread("stuck", [&] { wait(never); });
  // No max_quiet_time: the run simply exhausts its duration.
  EXPECT_EQ(sim.run(Time::us(5)), StopReason::kTimeLimit);
  EXPECT_FALSE(sim.deadlock_report().has_value());
}

TEST(DeadlockReportTest, ToStringAndJsonCarryTheDiagnosis) {
  Simulation sim;
  Module top(sim, "top");
  Event missing(sim, "missing_ack");
  top.spawn_thread("initiator", [&] { wait(missing); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_TRUE(sim.deadlock_report().has_value());
  const DeadlockReport& r = *sim.deadlock_report();

  const std::string text = r.to_string();
  EXPECT_NE(text.find("deadlock"), std::string::npos);
  EXPECT_NE(text.find("top.initiator"), std::string::npos);
  EXPECT_NE(text.find("missing_ack"), std::string::npos);

  JsonWriter w;
  r.to_json(w);
  const std::string json = w.str();
  EXPECT_TRUE(w.balanced());
  EXPECT_NE(json.find("\"kind\":\"deadlock\""), std::string::npos);
  EXPECT_NE(json.find("top.initiator"), std::string::npos);
}

}  // namespace
}  // namespace adriatic::kern
