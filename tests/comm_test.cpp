// Channel model, interleaver and end-to-end link tests.
#include <gtest/gtest.h>

#include "comm/channel.hpp"
#include "comm/link.hpp"
#include "comm/ofdm.hpp"
#include "util/random.hpp"

namespace adriatic::comm {
namespace {

TEST(Bsc, ErrorRateConverges) {
  BscChannel ch(0.1, 42);
  std::vector<u8> bits(20'000, 0);
  const auto rx = ch.transmit(bits);
  usize flipped = 0;
  for (const auto b : rx) flipped += b;
  EXPECT_NEAR(static_cast<double>(flipped) / 20'000.0, 0.1, 0.01);
  EXPECT_EQ(ch.errors_injected(), flipped);
}

TEST(Bsc, ZeroRateIsTransparent) {
  BscChannel ch(0.0, 1);
  std::vector<u8> bits{1, 0, 1, 1, 0};
  EXPECT_EQ(ch.transmit(bits), bits);
  EXPECT_EQ(ch.errors_injected(), 0u);
}

TEST(GilbertElliott, AverageRateMatchesStationary) {
  GilbertElliottParams p;
  p.p_good_to_bad = 0.02;
  p.p_bad_to_good = 0.2;
  p.error_rate_good = 0.001;
  p.error_rate_bad = 0.4;
  GilbertElliottChannel ch(p, 7);
  std::vector<u8> bits(200'000, 0);
  const auto rx = ch.transmit(bits);
  usize flipped = 0;
  for (const auto b : rx) flipped += b;
  EXPECT_NEAR(static_cast<double>(flipped) / 200'000.0,
              ch.average_error_rate(), 0.01);
}

TEST(GilbertElliott, ErrorsComeInBursts) {
  GilbertElliottParams p;
  p.p_good_to_bad = 0.005;
  p.p_bad_to_good = 0.25;
  p.error_rate_good = 0.0;
  p.error_rate_bad = 0.5;
  GilbertElliottChannel ch(p, 3);
  std::vector<u8> bits(100'000, 0);
  const auto rx = ch.transmit(bits);
  // Count error-gap statistics: burst errors cluster, so the fraction of
  // errors whose predecessor-within-4-bits is also an error must far
  // exceed the memoryless expectation.
  usize errors = 0, clustered = 0;
  i64 last_error = -1000;
  for (usize i = 0; i < rx.size(); ++i) {
    if (rx[i]) {
      ++errors;
      if (static_cast<i64>(i) - last_error <= 4) ++clustered;
      last_error = static_cast<i64>(i);
    }
  }
  ASSERT_GT(errors, 100u);
  const double cluster_fraction =
      static_cast<double>(clustered) / static_cast<double>(errors);
  EXPECT_GT(cluster_fraction, 0.3);  // memoryless at this rate would be ~5%
}

TEST(Interleaver, RoundTripExact) {
  std::vector<u8> bits(1000);
  for (usize i = 0; i < bits.size(); ++i) bits[i] = static_cast<u8>(i % 2);
  const auto inter = interleave(bits, 16, 24);
  EXPECT_EQ(inter.size(), 3u * 16 * 24);  // padded to 3 blocks
  const auto back = deinterleave(inter, 16, 24, bits.size());
  EXPECT_EQ(back, bits);
  EXPECT_THROW(interleave(bits, 0, 8), std::invalid_argument);
  EXPECT_THROW(deinterleave(bits, 8, 0, 10), std::invalid_argument);
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of 8 consecutive errors must land >= rows apart after
  // deinterleaving.
  const usize rows = 16, cols = 24;
  std::vector<u8> zeros(rows * cols, 0);
  auto inter = interleave(zeros, rows, cols);
  for (usize i = 100; i < 108; ++i) inter[i] ^= 1;  // channel burst
  const auto back = deinterleave(inter, rows, cols, zeros.size());
  std::vector<usize> error_positions;
  for (usize i = 0; i < back.size(); ++i)
    if (back[i]) error_positions.push_back(i);
  ASSERT_EQ(error_positions.size(), 8u);
  for (usize i = 1; i < error_positions.size(); ++i)
    EXPECT_GE(error_positions[i] - error_positions[i - 1], rows);
}

TEST(BitErrorRate, CountsMismatches) {
  const std::vector<u8> a{1, 0, 1, 0};
  const std::vector<u8> b{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(bit_error_rate(a, b), 0.5);
  EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.0);
}

TEST(Link, CleanChannelIsErrorFree) {
  BscChannel ch(0.0, 1);
  LinkConfig cfg;
  const auto r = run_link(ch, cfg, 5);
  EXPECT_EQ(r.bit_errors, 0u);
  EXPECT_EQ(r.frame_errors, 0u);
  EXPECT_EQ(r.frames, 5u);
  EXPECT_EQ(r.payload_bits, 5u * cfg.frame_bits);
}

TEST(Link, CodingGainOnBsc) {
  // At 2% channel BER, the K=7 code must reduce the residual BER by orders
  // of magnitude vs uncoded transmission.
  LinkConfig coded;
  LinkConfig uncoded;
  uncoded.coded = false;
  BscChannel ch_coded(0.02, 11);
  BscChannel ch_uncoded(0.02, 11);
  const auto r_coded = run_link(ch_coded, coded, 20);
  const auto r_uncoded = run_link(ch_uncoded, uncoded, 20);
  EXPECT_NEAR(r_uncoded.ber(), 0.02, 0.005);
  EXPECT_LT(r_coded.ber(), r_uncoded.ber() / 20.0);
}

TEST(Link, InterleaverHelpsOnBurstChannel) {
  GilbertElliottParams p;
  p.p_good_to_bad = 0.004;
  p.p_bad_to_good = 0.12;   // mean burst ~8 bits
  p.error_rate_good = 0.001;
  p.error_rate_bad = 0.45;
  LinkConfig plain;
  LinkConfig inter;
  inter.interleave = true;
  inter.interleave_rows = 32;
  inter.interleave_cols = 61;
  GilbertElliottChannel ch1(p, 5);
  GilbertElliottChannel ch2(p, 5);
  const auto r_plain = run_link(ch1, plain, 30);
  const auto r_inter = run_link(ch2, inter, 30);
  // The code alone chokes on bursts; spreading them across codewords must
  // cut the residual BER substantially.
  EXPECT_LT(r_inter.ber(), r_plain.ber() * 0.5);
}

// ---------------------------------------------------------------------------
// OFDM modem.

TEST(Ofdm, QpskMapDemapRoundTrip) {
  OfdmParams p;
  Xoshiro256 rng(3);
  std::vector<u8> bits(2 * p.n_subcarriers);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  const auto freq = qpsk_map(bits, p);
  ASSERT_EQ(freq.size(), p.n_subcarriers);
  const auto back = qpsk_demap(freq, p);
  for (usize i = 0; i < bits.size(); ++i) EXPECT_EQ(back[i], bits[i]) << i;
}

TEST(Ofdm, ModulateDemodulateNoiselessRoundTrip) {
  OfdmParams p;
  Xoshiro256 rng(9);
  std::vector<u8> bits(2 * p.n_subcarriers);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  const auto freq = qpsk_map(bits, p);
  const auto tx = ofdm_modulate(freq, p);
  EXPECT_EQ(tx.size(), p.n_subcarriers + p.cyclic_prefix);
  const auto demod = ofdm_demodulate(tx, p);
  // Hard decisions must survive the fixed-point IFFT/FFT round trip.
  EXPECT_EQ(qpsk_demap(demod, p), bits);
}

TEST(Ofdm, CyclicPrefixIsSymbolTail) {
  OfdmParams p;
  const auto freq = qpsk_map(std::vector<u8>(128, 1), p);
  const auto tx = ofdm_modulate(freq, p);
  for (usize i = 0; i < p.cyclic_prefix; ++i)
    EXPECT_EQ(tx[i], tx[p.n_subcarriers + i]);
}

TEST(Ofdm, ParameterValidation) {
  OfdmParams bad;
  bad.n_subcarriers = 48;  // not a power of two
  EXPECT_THROW(qpsk_map(std::vector<u8>{1}, bad), std::invalid_argument);
  OfdmParams bad_cp;
  bad_cp.cyclic_prefix = 64;
  EXPECT_THROW(qpsk_map(std::vector<u8>{1}, bad_cp), std::invalid_argument);
  OfdmParams p;
  EXPECT_THROW(ofdm_modulate(std::vector<i32>(10), p),
               std::invalid_argument);
  EXPECT_THROW(ofdm_demodulate(std::vector<i32>(10), p),
               std::invalid_argument);
}

TEST(Ofdm, AwgnSnrModel) {
  EXPECT_NEAR(AwgnChannel::snr_db(8192, 8192.0), 0.0, 1e-9);
  EXPECT_NEAR(AwgnChannel::snr_db(8192, 819.2), 20.0, 1e-9);
}

TEST(Ofdm, LinkCleanAtHighSnrErroredAtLowSnr) {
  OfdmParams p;
  Xoshiro256 rng(77);
  std::vector<u8> bits(2048);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);

  // Time-domain RMS per component is amplitude/sqrt(N) smaller than the
  // constellation; pick sigmas relative to that.
  AwgnChannel quiet(10.0, 1);   // far below the decision distance
  const auto rx_quiet = ofdm_link(bits, p, quiet);
  EXPECT_EQ(rx_quiet, bits);

  AwgnChannel loud(2000.0, 1);  // swamps the time-domain signal
  const auto rx_loud = ofdm_link(bits, p, loud);
  const double ber = bit_error_rate(bits, rx_loud);
  EXPECT_GT(ber, 0.05);
  EXPECT_LT(ber, 0.6);
}

TEST(Ofdm, BerDecreasesWithSnr) {
  OfdmParams p;
  Xoshiro256 rng(5);
  std::vector<u8> bits(4096);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  double last_ber = 1.0;
  bool monotone = true;
  for (const double sigma : {1500.0, 800.0, 400.0, 100.0}) {
    AwgnChannel ch(sigma, 2);
    const double ber = bit_error_rate(bits, ofdm_link(bits, p, ch));
    if (ber > last_ber + 0.01) monotone = false;
    last_ber = ber;
  }
  EXPECT_TRUE(monotone);
  EXPECT_LT(last_ber, 0.001);  // essentially clean at the quiet end
}

}  // namespace
}  // namespace adriatic::comm
