// Channel tests: signals, clocks, FIFOs, mutexes, semaphores, VCD tracing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "kernel/kernel.hpp"

namespace adriatic::kern {
namespace {

TEST(Signal, WriteVisibleNextDelta) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s(top, "s", 5);
  std::vector<int> observed;
  top.spawn_thread("t", [&] {
    s.write(7);
    observed.push_back(s.read());  // still old value in this evaluation
    wait(s.value_changed_event());
    observed.push_back(s.read());
  });
  sim.run();
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0], 5);
  EXPECT_EQ(observed[1], 7);
}

TEST(Signal, NoEventOnSameValueWrite) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s(top, "s", 5);
  bool woke = false;
  top.spawn_thread("waiter", [&] {
    wait(s.value_changed_event());
    woke = true;
  });
  top.spawn_thread("writer", [&] { s.write(5); });
  sim.run();
  EXPECT_FALSE(woke);
  EXPECT_EQ(s.change_count(), 0u);
}

TEST(Signal, LastWriteInDeltaWins) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s(top, "s");
  top.spawn_thread("t", [&] {
    s.write(1);
    s.write(2);
    s.write(3);
  });
  sim.run();
  EXPECT_EQ(s.read(), 3);
  EXPECT_EQ(s.change_count(), 1u);
}

TEST(Signal, PosedgeNegedgeForBool) {
  Simulation sim;
  Module top(sim, "top");
  Signal<bool> s(top, "s", false);
  int pos = 0, neg = 0;
  SpawnOptions p_opts, n_opts;
  p_opts.sensitivity = {&s.posedge_event()};
  p_opts.dont_initialize = true;
  n_opts.sensitivity = {&s.negedge_event()};
  n_opts.dont_initialize = true;
  top.spawn_method("pos", [&] { ++pos; }, p_opts);
  top.spawn_method("neg", [&] { ++neg; }, n_opts);
  top.spawn_thread("drv", [&] {
    s.write(true);
    wait(Time::ns(1));
    s.write(false);
    wait(Time::ns(1));
    s.write(true);
    wait(Time::ns(1));
  });
  sim.run();
  EXPECT_EQ(pos, 2);
  EXPECT_EQ(neg, 1);
}

TEST(Signal, OperatorSugar) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s(top, "s");
  top.spawn_thread("t", [&] {
    s = 9;
    wait(s.value_changed_event());
  });
  sim.run();
  const int v = s;
  EXPECT_EQ(v, 9);
}

TEST(Signal, PortAccess) {
  Simulation sim;
  Module top(sim, "top");
  Signal<u32> s(top, "s", 3);
  In<u32> in(top, "in");
  Out<u32> out(top, "out");
  in.bind(s);
  out.bind(s);
  top.spawn_thread("t", [&] {
    EXPECT_EQ(in.read(), 3u);
    out.write(11);
    wait(in.value_changed_event());
    EXPECT_EQ(in.read(), 11u);
  });
  sim.run();
}

// ---------------------------------------------------------------------------

TEST(ClockTest, GeneratesEdges) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  int pos = 0, neg = 0;
  Module top(sim, "top");
  SpawnOptions p_opts, n_opts;
  p_opts.sensitivity = {&clk.posedge_event()};
  p_opts.dont_initialize = true;
  n_opts.sensitivity = {&clk.negedge_event()};
  n_opts.dont_initialize = true;
  top.spawn_method("pos", [&] { ++pos; }, p_opts);
  top.spawn_method("neg", [&] { ++neg; }, n_opts);
  sim.run(Time::ns(100));
  // Edges at 0(delta),10,20,...: ten full periods.
  EXPECT_GE(pos, 9);
  EXPECT_LE(pos, 11);
  EXPECT_GE(neg, 9);
  EXPECT_LE(neg, 11);
}

TEST(ClockTest, DutyCycle) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10), 0.3);
  Module top(sim, "top");
  std::vector<u64> neg_times;
  SpawnOptions opts;
  opts.sensitivity = {&clk.negedge_event()};
  opts.dont_initialize = true;
  top.spawn_method("neg", [&] { neg_times.push_back(sim.now().picoseconds()); },
                   opts);
  sim.run(Time::ns(25));
  ASSERT_GE(neg_times.size(), 2u);
  // First rising edge ~0; falling at 3ns, next at 13ns.
  EXPECT_EQ(neg_times[0], 3000u);
  EXPECT_EQ(neg_times[1], 13000u);
}

TEST(ClockTest, StartDelay) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10), 0.5, Time::ns(100));
  Module top(sim, "top");
  std::vector<u64> pos_times;
  SpawnOptions opts;
  opts.sensitivity = {&clk.posedge_event()};
  opts.dont_initialize = true;
  top.spawn_method("pos", [&] { pos_times.push_back(sim.now().picoseconds()); },
                   opts);
  sim.run(Time::ns(125));
  ASSERT_GE(pos_times.size(), 2u);
  EXPECT_EQ(pos_times[0], 100000u);
  EXPECT_EQ(pos_times[1], 110000u);
}

TEST(ClockTest, FrequencyQuery) {
  Simulation sim;
  Clock clk(sim, "clk", Time::ns(10));
  EXPECT_NEAR(clk.frequency_mhz(), 100.0, 1e-9);
}

TEST(ClockTest, BadParamsThrow) {
  Simulation sim;
  EXPECT_THROW(Clock(sim, "c1", Time::zero()), std::invalid_argument);
  EXPECT_THROW(Clock(sim, "c2", Time::ns(10), 0.0), std::invalid_argument);
  EXPECT_THROW(Clock(sim, "c3", Time::ns(10), 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(FifoTest, ProducerConsumer) {
  Simulation sim;
  Module top(sim, "top");
  Fifo<int> fifo(top, "fifo", 4);
  std::vector<int> received;
  top.spawn_thread("producer", [&] {
    for (int i = 0; i < 20; ++i) fifo.write(i);
  });
  top.spawn_thread("consumer", [&] {
    for (int i = 0; i < 20; ++i) received.push_back(fifo.read());
  });
  sim.run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(FifoTest, BlockingWriteWhenFull) {
  Simulation sim;
  Module top(sim, "top");
  Fifo<int> fifo(top, "fifo", 2);
  Time producer_done;
  top.spawn_thread("producer", [&] {
    fifo.write(1);
    fifo.write(2);
    fifo.write(3);  // blocks until consumer reads
    producer_done = sim.now();
  });
  top.spawn_thread("consumer", [&] {
    wait(Time::ns(50));
    (void)fifo.read();
  });
  sim.run();
  EXPECT_EQ(producer_done, Time::ns(50));
}

TEST(FifoTest, NonBlockingVariants) {
  Simulation sim;
  Module top(sim, "top");
  Fifo<int> fifo(top, "fifo", 1);
  top.spawn_thread("t", [&] {
    int v = 0;
    EXPECT_FALSE(fifo.nb_read(v));
    EXPECT_TRUE(fifo.nb_write(42));
    EXPECT_FALSE(fifo.nb_write(43));  // full
    EXPECT_EQ(fifo.num_available(), 1u);
    EXPECT_EQ(fifo.num_free(), 0u);
    EXPECT_TRUE(fifo.nb_read(v));
    EXPECT_EQ(v, 42);
  });
  sim.run();
}

TEST(FifoTest, ZeroCapacityThrows) {
  Simulation sim;
  EXPECT_THROW(Fifo<int>(sim, "f", 0), std::invalid_argument);
}

TEST(FifoTest, InterfacePorts) {
  Simulation sim;
  Module top(sim, "top");
  Fifo<int> fifo(top, "fifo", 4);
  Port<FifoInIf<int>> in(top, "in");
  Port<FifoOutIf<int>> out(top, "out");
  in.bind(fifo);
  out.bind(fifo);
  int got = -1;
  top.spawn_thread("w", [&] { out->write(5); });
  top.spawn_thread("r", [&] { got = in->read(); });
  sim.run();
  EXPECT_EQ(got, 5);
}

// ---------------------------------------------------------------------------

TEST(MutexTest, MutualExclusion) {
  Simulation sim;
  Module top(sim, "top");
  Mutex m(top, "m");
  std::vector<std::string> trace;
  auto worker = [&](const std::string& id, Time hold) {
    return [&, id, hold] {
      m.lock();
      trace.push_back(id + ":in");
      wait(hold);
      trace.push_back(id + ":out");
      m.unlock();
    };
  };
  top.spawn_thread("a", worker("a", Time::ns(10)));
  top.spawn_thread("b", worker("b", Time::ns(10)));
  sim.run();
  ASSERT_EQ(trace.size(), 4u);
  // Critical sections must not interleave.
  EXPECT_EQ(trace[0].substr(2), "in");
  EXPECT_EQ(trace[1].substr(2), "out");
  EXPECT_EQ(trace[0][0], trace[1][0]);
  EXPECT_EQ(trace[2][0], trace[3][0]);
  EXPECT_EQ(m.acquisitions(), 2u);
}

TEST(MutexTest, TryLock) {
  Simulation sim;
  Module top(sim, "top");
  Mutex m(top, "m");
  top.spawn_thread("t", [&] {
    EXPECT_TRUE(m.try_lock());
    EXPECT_TRUE(m.is_locked());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_FALSE(m.is_locked());
  });
  sim.run();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulation sim;
  Module top(sim, "top");
  Semaphore sem(top, "sem", 2);
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 5; ++i) {
    top.spawn_thread("w" + std::to_string(i), [&] {
      sem.acquire();
      ++inside;
      max_inside = std::max(max_inside, inside);
      wait(Time::ns(10));
      --inside;
      sem.release();
    });
  }
  sim.run();
  EXPECT_EQ(max_inside, 2);
  EXPECT_EQ(sem.value(), 2u);
}

TEST(SemaphoreTest, TryAcquire) {
  Simulation sim;
  Module top(sim, "top");
  Semaphore sem(top, "sem", 1);
  top.spawn_thread("t", [&] {
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_EQ(sem.value(), 1u);
  });
  sim.run();
}

// ---------------------------------------------------------------------------

TEST(Vcd, WritesHeaderAndChanges) {
  const std::string path = "/tmp/adriatic_vcd_test.vcd";
  {
    Simulation sim;
    Module top(sim, "top");
    Signal<bool> s(top, "s", false);
    Signal<u16> w(top, "w", 0);
    TraceFile tf(sim, path);
    tf.trace(s, "s");
    tf.trace(w, "w");
    top.spawn_thread("drv", [&] {
      for (int i = 1; i <= 3; ++i) {
        s.write(i % 2 == 1);
        w.write(static_cast<u16>(i * 10));
        wait(Time::ns(10));
      }
    });
    sim.run();
    EXPECT_GT(tf.samples_written(), 0u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string vcd = ss.str();
  EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! s $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 16 \" w $end"), std::string::npos);
  EXPECT_NE(vcd.find("#10000"), std::string::npos);
  EXPECT_NE(vcd.find("b0000000000011110 "), std::string::npos);  // 30
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adriatic::kern
