// Randomized end-to-end property test over the conformance library's
// FuzzCase generator: every seed becomes a random valid design
// (accelerator count, kernel mix, candidate subset, technology, slots,
// driver schedule) that is transformed, simulated and checked against the
// system-level invariants (no deadlock, functional equivalence with the
// hardwired reference, accounting closure).
//
// On failure the case is delta-debugged to a minimal reproducer and written
// to a replay file, so the bug can be re-run deterministically — in any
// build mode — via  ./build/examples/conformance_replay <file>.
#include <gtest/gtest.h>

#include <string>

#include "conformance/fuzz_case.hpp"
#include "conformance/shrink.hpp"

namespace adriatic::conformance {
namespace {

class SystemFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(SystemFuzz, InvariantsHoldUnderRandomDesigns) {
  const auto fc = make_case(GetParam());
  const auto res = run_case(fc);
  if (res.ok) return;

  // Shrink to a minimal case that violates the SAME invariant, then emit a
  // replay file before failing.
  const std::string original_failure = res.failure;
  const auto shrunk = shrink_case(fc, [&](const FuzzCase& c) {
    const auto r = run_case(c);
    return !r.ok && r.failure == original_failure;
  });
  const std::string path = ::testing::TempDir() + "/fuzz_seed_" +
                           std::to_string(GetParam()) + ".fuzzcase";
  const bool wrote = write_replay_file(path, shrunk.minimal);
  FAIL() << "seed " << GetParam() << ": " << original_failure
         << "\nminimal reproducer (" << shrunk.minimal.schedule.size()
         << " schedule steps, " << shrunk.oracle_calls
         << " shrink runs):\n"
         << serialize(shrunk.minimal)
         << (wrote ? "replay file: " + path
                   : std::string("(could not write replay file)"))
         << "\nreplay with: ./build/examples/conformance_replay "
         << (wrote ? path : "<file>");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Range<u64>(1, 21));  // 20 random systems

}  // namespace
}  // namespace adriatic::conformance
