// Randomized end-to-end property test over the conformance library's
// FuzzCase generator: every seed becomes a random valid design
// (accelerator count, kernel mix, candidate subset, technology, slots,
// driver schedule) that is transformed, simulated and checked against the
// system-level invariants (no deadlock, functional equivalence with the
// hardwired reference, accounting closure).
//
// On failure the case is delta-debugged to a minimal reproducer and written
// to a replay file, so the bug can be re-run deterministically — in any
// build mode — via  ./build/examples/conformance_replay <file>.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "conformance/fuzz_case.hpp"
#include "conformance/shrink.hpp"
#include "service/protocol.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"

namespace adriatic::conformance {
namespace {

class SystemFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(SystemFuzz, InvariantsHoldUnderRandomDesigns) {
  const auto fc = make_case(GetParam());
  const auto res = run_case(fc);
  if (res.ok) return;

  // Shrink to a minimal case that violates the SAME invariant, then emit a
  // replay file before failing.
  const std::string original_failure = res.failure;
  const auto shrunk = shrink_case(fc, [&](const FuzzCase& c) {
    const auto r = run_case(c);
    return !r.ok && r.failure == original_failure;
  });
  const std::string path = ::testing::TempDir() + "/fuzz_seed_" +
                           std::to_string(GetParam()) + ".fuzzcase";
  const bool wrote = write_replay_file(path, shrunk.minimal);
  FAIL() << "seed " << GetParam() << ": " << original_failure
         << "\nminimal reproducer (" << shrunk.minimal.schedule.size()
         << " schedule steps, " << shrunk.oracle_calls
         << " shrink runs):\n"
         << serialize(shrunk.minimal)
         << (wrote ? "replay file: " + path
                   : std::string("(could not write replay file)"))
         << "\nreplay with: ./build/examples/conformance_replay "
         << (wrote ? path : "<file>");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Range<u64>(1, 21));  // 20 random systems

// The migration knobs are drawn for ~a fifth of seeds; pin a few directed
// cases so both destinations are exercised every run regardless of which
// random seeds happen to draw them.
class MigrationFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(MigrationFuzz, InvariantsHoldWithMigrationKnobs) {
  FuzzCase fc = make_case(3);  // any historical seed: deterministic shape
  fc.migrate_at_step = 1 + GetParam() % static_cast<u32>(fc.schedule.size());
  fc.dest_fabric = GetParam() % 2;
  ASSERT_TRUE(valid(fc));
  const auto res = run_case(fc);
  EXPECT_TRUE(res.ok) << res.failure;
}

INSTANTIATE_TEST_SUITE_P(Knobs, MigrationFuzz, ::testing::Range<u32>(0, 6));

TEST(FuzzCaseMigrationKnobs, ReplayRoundTripPreservesKnobs) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 2;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  const auto parsed = parse_case(serialize(fc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fc);
}

TEST(FuzzCaseMigrationKnobs, KnobFreeSerializationIsUnchanged) {
  // Migration keys only appear when set, so replay files written before the
  // knobs existed — and files for migration-free cases — stay byte-identical.
  const FuzzCase fc = make_case(11);
  if (fc.migrate_at_step == 0) {
    EXPECT_EQ(serialize(fc).find("migrate_at_step"), std::string::npos);
    EXPECT_EQ(serialize(fc).find("dest_fabric"), std::string::npos);
  }
}

TEST(FuzzCaseMigrationKnobs, ValidityCrossChecks) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = static_cast<u32>(fc.schedule.size());
  fc.dest_fabric = 1;
  EXPECT_TRUE(valid(fc));
  fc.migrate_at_step = static_cast<u32>(fc.schedule.size()) + 1;
  EXPECT_FALSE(valid(fc));  // handover past the end of the schedule
  fc.migrate_at_step = 1;
  fc.dest_fabric = 2;
  EXPECT_FALSE(valid(fc));  // only two fabrics exist
  fc.migrate_at_step = 0;
  fc.dest_fabric = 1;
  EXPECT_FALSE(valid(fc));  // a destination without a migration
}

TEST(FuzzCaseMigrationKnobs, ShrinkDropsMigrationWhenIrrelevant) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 3;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  // An oracle that fails regardless of the migration knobs: the shrinker
  // must remove them (and then keep shrinking the schedule beneath them).
  const auto shrunk = shrink_case(fc, [](const FuzzCase&) { return true; });
  EXPECT_EQ(shrunk.minimal.migrate_at_step, 0u);
  EXPECT_EQ(shrunk.minimal.dest_fabric, 0u);
  EXPECT_TRUE(valid(shrunk.minimal));
}

TEST(FuzzCaseMigrationKnobs, ShrinkKeepsMigrationWhenLoadBearing) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 3;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  // An oracle that only fails while a twin-fabric migration is present: the
  // knobs must survive, minimized (earliest handover), and stay valid.
  const auto shrunk = shrink_case(fc, [](const FuzzCase& c) {
    return c.migrate_at_step > 0 && c.dest_fabric == 1;
  });
  EXPECT_EQ(shrunk.minimal.migrate_at_step, 1u);
  EXPECT_EQ(shrunk.minimal.dest_fabric, 1u);
  EXPECT_TRUE(valid(shrunk.minimal));
}

// -- Service request-parser fuzz ---------------------------------------------
// Hostile byte streams — valid frames, mutated frames, raw garbage — through
// the campaign service's LineParser + to_request. The invariants a server
// stakes its connections on: parsing never crashes, chunk boundaries never
// change the event stream, and every complete non-blank line yields exactly
// one typed event until a framing violation latches the parser. A violated
// invariant is delta-debugged (ddmin over the byte string, the byte-level
// analogue of conformance/shrink.hpp) to a minimal reproducer before failing.

struct ParseSummary {
  std::vector<std::string> events;
  bool fatal = false;
  bool operator==(const ParseSummary&) const = default;
};

/// Feeds `bytes` in `chunk`-sized slices and folds every event to a stable
/// tag: "error:<code>" for wire-layer violations, "line:<verb>:<outcome>"
/// for parsed lines (outcome = "request" or the to_request error code).
ParseSummary parse_stream(const std::string& bytes, usize chunk) {
  ParseSummary sum;
  service::LineParser parser;
  const auto drain = [&] {
    while (const auto ev = parser.next()) {
      if (ev->error.has_value()) {
        sum.events.push_back(std::string("error:") +
                             service::error_code_name(ev->error->code));
        continue;
      }
      const service::RequestEvent rev = service::to_request(*ev->line);
      sum.events.push_back(
          "line:" + ev->line->verb + ":" +
          (rev.request.has_value()
               ? std::string("request")
               : std::string(service::error_code_name(rev.error->code))));
    }
  };
  for (usize off = 0; off < bytes.size(); off += chunk) {
    parser.feed(bytes.data() + off, std::min(chunk, bytes.size() - off));
    drain();
  }
  drain();
  sum.fatal = parser.fatal();
  return sum;
}

/// Newline-terminated lines that the parser does not skip as blank
/// keepalives (mirrors LineParser's CR stripping).
usize complete_lines(const std::string& bytes) {
  usize n = 0;
  usize start = 0;
  for (;;) {
    const usize nl = bytes.find('\n', start);
    if (nl == std::string::npos) return n;
    usize len = nl - start;
    if (len > 0 && bytes[start + len - 1] == '\r') --len;
    if (len > 0) ++n;
    start = nl + 1;
  }
}

/// The fuzz oracle: empty string when every invariant holds, else a stable
/// description of the first violated one (stable so the shrinker can
/// preserve the SAME violation).
std::string parser_violation(const std::string& bytes) {
  const usize whole_chunk = bytes.empty() ? 1 : bytes.size();
  const ParseSummary whole = parse_stream(bytes, whole_chunk);
  if (parse_stream(bytes, 1) != whole)
    return "byte-at-a-time parse diverges from whole-buffer parse";
  if (parse_stream(bytes, 7) != whole)
    return "7-byte-chunk parse diverges from whole-buffer parse";
  if (parse_stream(bytes, whole_chunk) != whole)
    return "re-parse of identical bytes diverges";
  const usize lines = complete_lines(bytes);
  if (whole.events.size() > lines)
    return "more events than complete lines";
  if (!whole.fatal && whole.events.size() != lines)
    return "a complete line was silently dropped";
  if (whole.fatal) {
    if (whole.events.empty()) return "fatal latch with no error event";
    const std::string& last = whole.events.back();
    if (last != "error:torn-line" && last != "error:bad-checksum" &&
        last != "error:oversize-frame")
      return "fatal latch without a framing-error event";
  }
  return {};
}

std::string hostile_string(Xoshiro256& rng) {
  // Characters that exercise percent-encoding, token splitting and CR
  // stripping inside field values.
  static constexpr char kPool[] = "abcXYZ019 %\t=\r/";
  std::string s;
  const usize len = rng.next_below(12);
  for (usize i = 0; i < len; ++i)
    s += kPool[rng.next_below(sizeof(kPool) - 1)];
  return s;
}

std::string random_frame(Xoshiro256& rng) {
  service::Request req;
  switch (rng.next_below(4)) {
    case 0: req.verb = service::Verb::kSubmit; break;
    case 1: req.verb = service::Verb::kWatch; break;
    case 2: req.verb = service::Verb::kStats; break;
    default: req.verb = service::Verb::kDrain; break;
  }
  req.id = 1 + rng.next_below(1u << 16);
  if (req.verb == service::Verb::kSubmit) {
    static constexpr const char* kKinds[] = {"golden", "fault_point",
                                             "dse_point", "no-such-kind"};
    req.spec = rng.next();
    req.kind = kKinds[rng.next_below(4)];
    req.label = "fuzz" + hostile_string(rng);
    service::ParamMap params;
    const usize n = rng.next_below(4);
    for (usize i = 0; i < n; ++i)
      params["k" + std::to_string(i)] = hostile_string(rng);
    req.params = service::encode_params(params);
  }
  return service::encode_request(req);
}

std::string mutated_frame(Xoshiro256& rng) {
  std::string s = random_frame(rng);
  if (s.empty()) return s;
  const usize pos = rng.next_below(s.size());
  switch (rng.next_below(5)) {
    case 0:  // corrupt one byte (checksum must catch it or parsing survives)
      s[pos] = static_cast<char>(rng.next_below(256));
      break;
    case 1:  // torn tail: the frame ends mid-write
      s = s.substr(0, pos) + "\n";
      break;
    case 2:
      s.insert(pos, 1, static_cast<char>(rng.next_below(256)));
      break;
    case 3:
      s.erase(pos, 1);
      break;
    default:  // split the frame across an extra line boundary
      s.insert(pos, "\n");
      break;
  }
  return s;
}

std::string random_garbage(Xoshiro256& rng) {
  std::string s;
  const usize len = rng.next_below(48);
  for (usize i = 0; i < len; ++i)
    s += static_cast<char>(rng.next_below(256));
  if (rng.next_bool(0.7)) s += '\n';
  return s;
}

std::string random_stream(u64 seed) {
  Xoshiro256 rng(seed);
  std::string bytes;
  const usize segments = 2 + rng.next_below(7);
  for (usize i = 0; i < segments; ++i) {
    switch (rng.next_below(4)) {
      case 0:
      case 1:
        bytes += random_frame(rng);
        break;
      case 2:
        bytes += mutated_frame(rng);
        break;
      default:
        bytes += random_garbage(rng);
        break;
    }
  }
  return bytes;
}

struct DdminResult {
  std::string minimal;
  usize oracle_calls = 0;
};

/// Classic delta debugging over a byte string: removes complement chunks at
/// doubling granularity while `failing` keeps reproducing; terminates
/// 1-minimal (no single byte can be removed without losing the failure).
DdminResult ddmin_bytes(std::string input,
                        const std::function<bool(const std::string&)>& failing) {
  DdminResult res;
  usize granularity = 2;
  while (input.size() >= 2) {
    const usize chunk = std::max<usize>(1, input.size() / granularity);
    bool reduced = false;
    for (usize start = 0; start < input.size() && !reduced; start += chunk) {
      std::string candidate = input.substr(0, start);
      if (start + chunk < input.size()) candidate += input.substr(start + chunk);
      ++res.oracle_calls;
      if (failing(candidate)) {
        input = std::move(candidate);
        granularity = std::max<usize>(2, granularity - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // 1-minimal
      granularity = std::min(input.size(), granularity * 2);
    }
  }
  res.minimal = std::move(input);
  return res;
}

std::string escape_bytes(const std::string& s) {
  std::string out;
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c >= 0x20 && c < 0x7f) {
      out += static_cast<char>(c);
    } else {
      out += strfmt("\\x%02x", c);
    }
  }
  return out;
}

class ServiceRequestFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ServiceRequestFuzz, ParserInvariantsHoldUnderHostileBytes) {
  const std::string bytes = random_stream(GetParam());
  const std::string failure = parser_violation(bytes);
  if (failure.empty()) return;

  const auto shrunk = ddmin_bytes(bytes, [&](const std::string& candidate) {
    return parser_violation(candidate) == failure;
  });
  FAIL() << "seed " << GetParam() << ": " << failure
         << "\nminimal reproducer (" << shrunk.minimal.size() << " bytes, "
         << shrunk.oracle_calls << " shrink runs):\n"
         << escape_bytes(shrunk.minimal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceRequestFuzz,
                         ::testing::Range<u64>(1, 41));  // 40 random streams

TEST(ServiceRequestFuzzOracle, ValidFramesAllParseAsRequests) {
  Xoshiro256 rng(12345);
  std::string bytes;
  constexpr usize kFrames = 25;
  for (usize i = 0; i < kFrames; ++i) bytes += random_frame(rng);
  const ParseSummary sum = parse_stream(bytes, 3);
  EXPECT_FALSE(sum.fatal);
  ASSERT_EQ(sum.events.size(), kFrames);
  for (const std::string& ev : sum.events)
    EXPECT_EQ(ev.substr(ev.rfind(':') + 1), "request") << ev;
}

TEST(ServiceRequestFuzzOracle, DdminShrinksToAOneMinimalReproducer) {
  // A stream whose interesting property is a bad-checksum event buried
  // between healthy traffic; the shrinker must isolate it. (The bad line
  // must be the first framing violation — any earlier one latches the
  // parser and masks it.)
  Xoshiro256 rng(6);
  const std::string bytes = random_frame(rng) + random_frame(rng) +
                            "STATS v1 id=9 cks=0000000000000000\n" +
                            random_frame(rng);
  const auto failing = [](const std::string& candidate) {
    const ParseSummary sum =
        parse_stream(candidate, candidate.empty() ? 1 : candidate.size());
    for (const std::string& ev : sum.events)
      if (ev == "error:bad-checksum") return true;
    return false;
  };
  ASSERT_TRUE(failing(bytes));

  const auto shrunk = ddmin_bytes(bytes, failing);
  EXPECT_TRUE(failing(shrunk.minimal));
  EXPECT_LT(shrunk.minimal.size(), bytes.size());
  // 1-minimality: removing any single byte loses the violation.
  for (usize i = 0; i < shrunk.minimal.size(); ++i) {
    std::string candidate = shrunk.minimal;
    candidate.erase(i, 1);
    EXPECT_FALSE(failing(candidate))
        << "byte " << i << " of '" << escape_bytes(shrunk.minimal)
        << "' is removable";
  }
}

}  // namespace
}  // namespace adriatic::conformance
