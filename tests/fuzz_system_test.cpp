// Randomized end-to-end property test over the conformance library's
// FuzzCase generator: every seed becomes a random valid design
// (accelerator count, kernel mix, candidate subset, technology, slots,
// driver schedule) that is transformed, simulated and checked against the
// system-level invariants (no deadlock, functional equivalence with the
// hardwired reference, accounting closure).
//
// On failure the case is delta-debugged to a minimal reproducer and written
// to a replay file, so the bug can be re-run deterministically — in any
// build mode — via  ./build/examples/conformance_replay <file>.
#include <gtest/gtest.h>

#include <string>

#include "conformance/fuzz_case.hpp"
#include "conformance/shrink.hpp"

namespace adriatic::conformance {
namespace {

class SystemFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(SystemFuzz, InvariantsHoldUnderRandomDesigns) {
  const auto fc = make_case(GetParam());
  const auto res = run_case(fc);
  if (res.ok) return;

  // Shrink to a minimal case that violates the SAME invariant, then emit a
  // replay file before failing.
  const std::string original_failure = res.failure;
  const auto shrunk = shrink_case(fc, [&](const FuzzCase& c) {
    const auto r = run_case(c);
    return !r.ok && r.failure == original_failure;
  });
  const std::string path = ::testing::TempDir() + "/fuzz_seed_" +
                           std::to_string(GetParam()) + ".fuzzcase";
  const bool wrote = write_replay_file(path, shrunk.minimal);
  FAIL() << "seed " << GetParam() << ": " << original_failure
         << "\nminimal reproducer (" << shrunk.minimal.schedule.size()
         << " schedule steps, " << shrunk.oracle_calls
         << " shrink runs):\n"
         << serialize(shrunk.minimal)
         << (wrote ? "replay file: " + path
                   : std::string("(could not write replay file)"))
         << "\nreplay with: ./build/examples/conformance_replay "
         << (wrote ? path : "<file>");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Range<u64>(1, 21));  // 20 random systems

// The migration knobs are drawn for ~a fifth of seeds; pin a few directed
// cases so both destinations are exercised every run regardless of which
// random seeds happen to draw them.
class MigrationFuzz : public ::testing::TestWithParam<u32> {};

TEST_P(MigrationFuzz, InvariantsHoldWithMigrationKnobs) {
  FuzzCase fc = make_case(3);  // any historical seed: deterministic shape
  fc.migrate_at_step = 1 + GetParam() % static_cast<u32>(fc.schedule.size());
  fc.dest_fabric = GetParam() % 2;
  ASSERT_TRUE(valid(fc));
  const auto res = run_case(fc);
  EXPECT_TRUE(res.ok) << res.failure;
}

INSTANTIATE_TEST_SUITE_P(Knobs, MigrationFuzz, ::testing::Range<u32>(0, 6));

TEST(FuzzCaseMigrationKnobs, ReplayRoundTripPreservesKnobs) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 2;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  const auto parsed = parse_case(serialize(fc));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fc);
}

TEST(FuzzCaseMigrationKnobs, KnobFreeSerializationIsUnchanged) {
  // Migration keys only appear when set, so replay files written before the
  // knobs existed — and files for migration-free cases — stay byte-identical.
  const FuzzCase fc = make_case(11);
  if (fc.migrate_at_step == 0) {
    EXPECT_EQ(serialize(fc).find("migrate_at_step"), std::string::npos);
    EXPECT_EQ(serialize(fc).find("dest_fabric"), std::string::npos);
  }
}

TEST(FuzzCaseMigrationKnobs, ValidityCrossChecks) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = static_cast<u32>(fc.schedule.size());
  fc.dest_fabric = 1;
  EXPECT_TRUE(valid(fc));
  fc.migrate_at_step = static_cast<u32>(fc.schedule.size()) + 1;
  EXPECT_FALSE(valid(fc));  // handover past the end of the schedule
  fc.migrate_at_step = 1;
  fc.dest_fabric = 2;
  EXPECT_FALSE(valid(fc));  // only two fabrics exist
  fc.migrate_at_step = 0;
  fc.dest_fabric = 1;
  EXPECT_FALSE(valid(fc));  // a destination without a migration
}

TEST(FuzzCaseMigrationKnobs, ShrinkDropsMigrationWhenIrrelevant) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 3;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  // An oracle that fails regardless of the migration knobs: the shrinker
  // must remove them (and then keep shrinking the schedule beneath them).
  const auto shrunk = shrink_case(fc, [](const FuzzCase&) { return true; });
  EXPECT_EQ(shrunk.minimal.migrate_at_step, 0u);
  EXPECT_EQ(shrunk.minimal.dest_fabric, 0u);
  EXPECT_TRUE(valid(shrunk.minimal));
}

TEST(FuzzCaseMigrationKnobs, ShrinkKeepsMigrationWhenLoadBearing) {
  FuzzCase fc = make_case(11);
  fc.migrate_at_step = 3;
  fc.dest_fabric = 1;
  ASSERT_TRUE(valid(fc));
  // An oracle that only fails while a twin-fabric migration is present: the
  // knobs must survive, minimized (earliest handover), and stay valid.
  const auto shrunk = shrink_case(fc, [](const FuzzCase& c) {
    return c.migrate_at_step > 0 && c.dest_fabric == 1;
  });
  EXPECT_EQ(shrunk.minimal.migrate_at_step, 1u);
  EXPECT_EQ(shrunk.minimal.dest_fabric, 1u);
  EXPECT_TRUE(valid(shrunk.minimal));
}

}  // namespace
}  // namespace adriatic::conformance
