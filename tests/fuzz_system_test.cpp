// Randomized end-to-end property test: generate random valid designs
// (accelerator count, kernel mix, candidate subsets, technology, slots,
// driver schedule), transform, simulate, and check global invariants:
//   * the processor always finishes (split bus => no deadlock)
//   * hits + misses == forwarded accesses
//   * fetched configuration words == switches' context sizes
//   * per-context activations sum to total switches
//   * functional results equal the hardwired architecture's
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;

accel::KernelSpec kernel_by_index(usize i) {
  switch (i % 5) {
    case 0:
      return accel::make_crc_spec();
    case 1:
      return accel::make_quant_spec(60);
    case 2:
      return accel::make_rle_spec();
    case 3:
      return accel::make_fir_spec(accel::fir_lowpass_taps(8));
    default:
      return accel::make_fft_spec(32);
  }
}

struct FuzzCase {
  usize n_accels;
  usize n_candidates;
  u32 slots;
  drcf::ReconfigTechnology tech;
  std::vector<usize> schedule;  // accelerator index per step
};

FuzzCase make_case(u64 seed) {
  Xoshiro256 rng(seed);
  FuzzCase fc;
  fc.n_accels = 2 + rng.next_below(3);             // 2..4
  fc.n_candidates = 2 + rng.next_below(fc.n_accels - 1);
  fc.slots = 1 + static_cast<u32>(rng.next_below(2));
  const u64 t = rng.next_below(3);
  fc.tech = t == 0   ? drcf::morphosys_like()
            : t == 1 ? drcf::varicore_like()
                     : drcf::virtex2pro_like();
  // Keep fine-grain contexts small enough for quick runs.
  fc.tech.bits_per_gate = std::min(fc.tech.bits_per_gate, 2.0);
  const usize steps = 6 + rng.next_below(10);
  for (usize s = 0; s < steps; ++s)
    fc.schedule.push_back(rng.next_below(fc.n_accels));
  return fc;
}

netlist::Design build_design(const FuzzCase& fc) {
  netlist::Design d;
  d.add("system_bus", netlist::BusDecl{});
  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 2048;
  ram.bus = "system_bus";
  d.add("ram", ram);
  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  for (usize i = 0; i < fc.n_accels; ++i) {
    netlist::HwAccelDecl acc;
    acc.base = static_cast<bus::addr_t>(0x100 + i * 0x100);
    acc.spec = kernel_by_index(i);
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add("acc" + std::to_string(i), acc);
  }
  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [schedule = fc.schedule](soc::Cpu& c) {
    std::vector<bus::word> data(32);
    for (usize i = 0; i < data.size(); ++i)
      data[i] = static_cast<bus::word>(3 * i + 1);
    c.burst_write(0x1000, data);
    for (const usize idx : schedule) {
      const auto base = static_cast<bus::addr_t>(0x100 + idx * 0x100);
      c.write(base + soc::HwAccel::kSrc, 0x1000);
      c.write(base + soc::HwAccel::kDst,
              static_cast<bus::word>(0x1100 + idx * 0x100));
      c.write(base + soc::HwAccel::kLen, 32);
      c.write(base + soc::HwAccel::kCtrl, 1);
      c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   200_ns);
      c.write(base + soc::HwAccel::kStatus, 0);
    }
  };
  d.add("cpu", cpu);
  return d;
}

std::vector<bus::word> snapshot_outputs(netlist::Elaborated& e,
                                        const FuzzCase& fc) {
  std::vector<bus::word> snapshot;
  auto& ram = e.get_memory("ram");
  for (usize i = 0; i < fc.n_accels; ++i)
    for (u32 w = 0; w < 40; ++w)
      snapshot.push_back(
          ram.peek(static_cast<bus::addr_t>(0x1100 + i * 0x100 + w)));
  return snapshot;
}

class SystemFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(SystemFuzz, InvariantsHoldUnderRandomDesigns) {
  const auto fc = make_case(GetParam());

  // Hardwired reference.
  std::vector<bus::word> ref_out;
  {
    auto ref_design = build_design(fc);
    kern::Simulation ref_sim;
    netlist::Elaborated ref_e(ref_sim, ref_design);
    ref_sim.run();
    ASSERT_TRUE(ref_e.get_processor("cpu").finished());
    ref_out = snapshot_outputs(ref_e, fc);
  }

  // Transformed design: first n_candidates accelerators share a DRCF.
  auto d = build_design(fc);
  std::vector<std::string> candidates;
  for (usize i = 0; i < fc.n_candidates; ++i)
    candidates.push_back("acc" + std::to_string(i));
  transform::TransformOptions opt;
  opt.drcf_config.technology = fc.tech;
  opt.drcf_config.slots = fc.slots;
  opt.config_memory = "cfg_mem";
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  ASSERT_TRUE(report.ok) << (report.diagnostics.empty()
                                 ? std::string("?")
                                 : report.diagnostics[0]);

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  const auto out = snapshot_outputs(e, fc);

  // Invariant 1: no deadlock on a split bus.
  ASSERT_TRUE(e.get_processor("cpu").finished())
      << "seed " << GetParam() << " deadlocked";
  EXPECT_TRUE(sim.starved_processes().empty());

  // Invariant 2: functional equivalence with the hardwired reference.
  EXPECT_EQ(out, ref_out) << "seed " << GetParam();

  // Invariants 3-5: accounting closes.
  auto& fabric = e.get_drcf("drcf1");
  const auto& s = fabric.stats();
  u64 accesses = 0;
  u64 activations = 0;
  u64 expected_words = 0;
  for (usize i = 0; i < fabric.context_count(); ++i) {
    const auto cs = fabric.context_stats(i);
    accesses += cs.accesses;
    activations += cs.activations;
    expected_words += cs.activations * fabric.context_params(i).size_words;
  }
  EXPECT_EQ(s.hits + s.misses, accesses);
  EXPECT_EQ(activations, s.switches);
  EXPECT_EQ(s.config_words_fetched, expected_words);
  EXPECT_EQ(s.fetch_errors, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Range<u64>(1, 21));  // 20 random systems

}  // namespace
}  // namespace adriatic
