// Tests for the DRCF context-prefetch scheduler and configuration cache:
// a plain-C++ reference model (PrefetchPredictor + ContextCache + SlotTable
// replicas) replayed against the live fabric's counters for every policy,
// plus targeted edge cases — stop requests mid-prefetch, hybrid aborts,
// faulted background fills under each recovery policy, and the latency
// hiding the prefetcher exists to provide.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "fault/plan.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "util/random.hpp"

namespace adriatic::drcf {
namespace {

using namespace kern::literals;
using bus::BusStatus;

constexpr u64 kCtxWords = 16;

// A trivially observable slave: reads return (base_value + offset).
class TestSlave : public kern::Module, public bus::BusSlaveIf {
 public:
  TestSlave(kern::Object& parent, std::string name, bus::addr_t low,
            bus::addr_t high, bus::word base_value)
      : Module(parent, std::move(name)),
        low_(low),
        high_(high),
        base_value_(base_value) {}

  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override { return high_; }

  bool read(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    *data = base_value_ + static_cast<bus::word>(add - low_);
    return true;
  }
  bool write(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    last_write_ = *data;
    return true;
  }

  bus::word last_write_ = 0;

 private:
  bus::addr_t low_;
  bus::addr_t high_;
  bus::word base_value_;
};

// N candidate slaves behind a DRCF, with a dedicated configuration bus so
// forwarded calls never contend with background fetch traffic (the caller's
// slot touch always orders ahead of a later prefetch install, which is what
// the offline replay below assumes).
struct PrefetchRig {
  PrefetchRig(DrcfConfig cfg, usize n_contexts, u64 ctx_words = kCtxWords)
      : sys_bus(top, "bus", make_bus()),
        cfg_bus(top, "cfg_bus", make_bus()),
        cfg_mem(top, "cfg_mem", 0x10000, 4096),
        fabric(top, "drcf1", std::move(cfg)) {
    for (usize i = 0; i < n_contexts; ++i) {
      const auto base = static_cast<bus::addr_t>(0x100 + i * 0x100);
      slaves.push_back(std::make_unique<TestSlave>(
          top, "s" + std::to_string(i), base, base + 0xF,
          static_cast<bus::word>(1000 * (i + 1))));
      fabric.add_context(
          *slaves.back(),
          {.config_address = static_cast<bus::addr_t>(0x10000 + i * ctx_words),
           .size_words = ctx_words});
    }
    fabric.mst_port.bind(cfg_bus);
    cfg_bus.bind_slave(cfg_mem);
    sys_bus.bind_slave(fabric);
  }

  /// Pokes a synthetic bitstream per context and arms the integrity check
  /// with the matching digest (as elaborate.cpp does).
  void arm_digests(u64 ctx_words = kCtxWords) {
    for (usize i = 0; i < slaves.size(); ++i) {
      const auto base = static_cast<bus::addr_t>(0x10000 + i * ctx_words);
      u64 digest = kConfigDigestSeed;
      for (u64 w = 0; w < ctx_words; ++w) {
        const auto word = static_cast<bus::word>(0xB1750000u | i);
        cfg_mem.poke(base + static_cast<bus::addr_t>(w), word);
        digest = config_digest_step(digest, word);
      }
      fabric.set_expected_digest(i, digest);
    }
  }

  static DrcfConfig make_cfg() {
    DrcfConfig c;
    c.technology = varicore_like();
    c.technology.per_switch_overhead = kern::Time::zero();  // pure bus cost
    return c;
  }
  static bus::BusConfig make_bus() {
    bus::BusConfig b;
    b.cycle_time = 10_ns;
    b.split_transactions = true;
    return b;
  }

  [[nodiscard]] static bus::addr_t access_addr(usize ctx) {
    return static_cast<bus::addr_t>(0x100 + ctx * 0x100 + 5);
  }
  [[nodiscard]] static bus::word expected_value(usize ctx) {
    return static_cast<bus::word>(1000 * (ctx + 1) + 5);
  }

  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  bus::Bus cfg_bus;
  mem::Memory cfg_mem;
  std::vector<std::unique_ptr<TestSlave>> slaves;
  Drcf fabric;
};

// ---------------------------------------------------------------------------
// Reference-model oracle: replay an access pattern against the scheduler's
// plain-C++ components and predict every prefetch/cache counter.

struct OracleCounters {
  u64 hits = 0;
  u64 misses = 0;
  u64 switches = 0;
  u64 prefetches = 0;
  u64 prefetch_hits = 0;
  u64 prefetch_misses = 0;
  u64 cache_hits = 0;
  u64 cache_evictions = 0;
  u64 words_fetched = 0;
  u64 words_skipped = 0;
  u64 words_prefetched = 0;
};

// Mirrors the live scheduler under one simplifying assumption the driver
// below enforces: accesses are spaced far enough apart that any background
// prefetch settles before the next access (so loads are never joined and
// hybrid never aborts). The call order per step matches the live fabric:
// the demanded install and its cache insert, then the woken caller's slot
// touch, then the prefetch decision (whose install, if any, lands last).
OracleCounters replay_reference(const PrefetchConfig& pc, u32 slots,
                                usize n_ctx, u64 ctx_words,
                                const std::vector<usize>& seq) {
  SlotTable slot_table(slots, ReplacementPolicy::kLru);
  ContextCache cache(pc.cache_slots);
  PrefetchPredictor predictor(pc.policy, pc.static_next);
  std::vector<bool> loaded_by_prefetch(n_ctx, false);
  std::optional<usize> last_demand;
  OracleCounters o;
  const auto residents = [&] {
    std::vector<usize> r;
    for (u32 s = 0; s < slot_table.slots(); ++s)
      if (slot_table.resident(s).has_value())
        r.push_back(*slot_table.resident(s));
    return r;
  };
  for (const usize c : seq) {
    if (const auto hit = slot_table.lookup(c); hit.has_value()) {
      ++o.hits;
      if (loaded_by_prefetch[c]) {
        loaded_by_prefetch[c] = false;
        ++o.prefetch_hits;
      }
      slot_table.touch(*hit);
      continue;
    }
    ++o.misses;
    const bool covered = cache.contains(c);  // expected digests unset
    if (!covered && pc.policy != PrefetchPolicy::kOnDemand)
      ++o.prefetch_misses;
    const auto victim = slot_table.choose(c);
    if (victim.evicted.has_value()) slot_table.evict(victim.slot);
    if (covered) {
      ++o.cache_hits;
      cache.touch(c);
      o.words_skipped += ctx_words;
      if (cache.was_prefetched(c)) {
        ++o.prefetch_hits;
        cache.consume_prefetched(c);
      }
    } else {
      o.words_fetched += ctx_words;
    }
    ++o.switches;
    slot_table.install(victim.slot, c);
    if (!covered && cache.enabled() &&
        cache.insert(c, 0, /*prefetched=*/false, residents())
            .evicted.has_value())
      ++o.cache_evictions;
    loaded_by_prefetch[c] = false;
    slot_table.touch(*slot_table.lookup(c));  // the woken caller forwards

    // Prediction learns from — and reacts to — demand switches only.
    if (pc.policy == PrefetchPolicy::kOnDemand) continue;
    if (last_demand.has_value()) predictor.observe_switch(*last_demand, c);
    last_demand = c;
    const auto predicted = predictor.predict(c);
    if (!predicted.has_value()) continue;
    const usize p = *predicted;
    if (p >= n_ctx || p == c || slot_table.lookup(p).has_value()) continue;
    if (cache.enabled()) {
      if (cache.contains(p)) continue;  // already staged
      ++o.prefetches;
      o.words_fetched += ctx_words;
      o.words_prefetched += ctx_words;
      if (cache.insert(p, 0, /*prefetched=*/true, residents())
              .evicted.has_value())
        ++o.cache_evictions;
    } else {
      const auto stage = slot_table.choose(p);
      if (stage.evicted.has_value()) continue;  // no free slot: skip
      ++o.prefetches;
      o.words_fetched += ctx_words;
      slot_table.install(stage.slot, p);
      ++o.switches;
      loaded_by_prefetch[p] = true;
    }
  }
  return o;
}

// Policy variants the property test sweeps (index into the Combine below):
// 0 on-demand, 1 static-next ring, 2 history, 3 hybrid with a static ring
// annotation, 4 hybrid falling back to its history predictor.
PrefetchConfig variant_config(int variant, u32 cache_slots, usize n_ctx) {
  PrefetchConfig pc;
  pc.cache_slots = cache_slots;
  std::vector<usize> ring(n_ctx);
  for (usize i = 0; i < n_ctx; ++i) ring[i] = (i + 1) % n_ctx;
  switch (variant) {
    case 0:
      pc.policy = PrefetchPolicy::kOnDemand;
      break;
    case 1:
      pc.policy = PrefetchPolicy::kStaticNext;
      pc.static_next = ring;
      break;
    case 2:
      pc.policy = PrefetchPolicy::kHistory;
      break;
    case 3:
      pc.policy = PrefetchPolicy::kHybrid;
      pc.static_next = ring;
      break;
    default:
      pc.policy = PrefetchPolicy::kHybrid;
      break;
  }
  return pc;
}

class PrefetchOracleProperty
    : public ::testing::TestWithParam<std::tuple<int, u32, u32, u64>> {};

TEST_P(PrefetchOracleProperty, CountersMatchReferenceReplay) {
  const auto [variant, slots, cache_slots, seed] = GetParam();
  constexpr usize kContexts = 4;
  constexpr int kAccesses = 40;
  const PrefetchConfig pc = variant_config(variant, cache_slots, kContexts);

  Xoshiro256 rng(seed);
  std::vector<usize> pattern;
  for (int i = 0; i < kAccesses; ++i)
    pattern.push_back(rng.next_below(kContexts));

  const OracleCounters o =
      replay_reference(pc, slots, kContexts, kCtxWords, pattern);

  DrcfConfig cfg = PrefetchRig::make_cfg();
  cfg.slots = slots;
  cfg.prefetch = pc;
  PrefetchRig rig(cfg, kContexts);
  rig.top.spawn_thread("driver", [&] {
    for (const usize ctx : pattern) {
      bus::word r = 0;
      EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(ctx), &r),
                BusStatus::kOk);
      EXPECT_EQ(r, PrefetchRig::expected_value(ctx));
      kern::wait(2_us);  // let any background prefetch settle
    }
  });
  rig.sim.run();

  const DrcfStats& s = rig.fabric.stats();
  EXPECT_EQ(s.hits, o.hits);
  EXPECT_EQ(s.misses, o.misses);
  EXPECT_EQ(s.switches, o.switches);
  EXPECT_EQ(s.prefetches, o.prefetches);
  EXPECT_EQ(s.prefetch_hits, o.prefetch_hits);
  EXPECT_EQ(s.prefetch_misses, o.prefetch_misses);
  EXPECT_EQ(s.prefetch_aborts, 0u);  // spaced accesses: nothing to abort
  EXPECT_EQ(s.cache_hits, o.cache_hits);
  EXPECT_EQ(s.cache_evictions, o.cache_evictions);
  EXPECT_EQ(s.config_words_fetched, o.words_fetched);
  EXPECT_EQ(s.config_words_skipped, o.words_skipped);
  EXPECT_EQ(s.config_words_prefetched, o.words_prefetched);
  EXPECT_EQ(s.hits + s.misses, static_cast<u64>(kAccesses));
  // Accounting closure: every installed context's words were either fetched
  // or skipped, and background fills are the only traffic beyond installs.
  EXPECT_EQ(s.config_words_fetched + s.config_words_skipped,
            s.switches * kCtxWords + s.config_words_prefetched);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PrefetchOracleProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 2u),
                       ::testing::Values(101u, 202u)));

// ---------------------------------------------------------------------------
// Manual prefetch API: redundant hints are free.

TEST(DrcfPrefetchApi, RedundantPrefetchIsNoOp) {
  PrefetchRig rig(PrefetchRig::make_cfg(), 2);
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(0), &r),
              BusStatus::kOk);
    rig.fabric.prefetch(0);  // already resident: no-op, no counter
    rig.fabric.prefetch(1);  // staged in the background
    rig.fabric.prefetch(1);  // already loading: no-op, no counter
    kern::wait(5_us);
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(1), &r),
              BusStatus::kOk);
    EXPECT_EQ(r, PrefetchRig::expected_value(1));
  });
  rig.sim.run();

  const DrcfStats& s = rig.fabric.stats();
  EXPECT_EQ(s.prefetches, 1u);  // the two redundant hints did not count
  EXPECT_EQ(s.prefetch_hits, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.switches, 2u);
  // The second context's whole fetch happened off the demand path.
  EXPECT_GT(s.hidden_latency.picoseconds(), 0u);
  EXPECT_THROW(rig.fabric.prefetch(99), std::out_of_range);
}

TEST(DrcfPrefetchApi, RequestStopMidPrefetchStopsCleanly) {
  PrefetchRig rig(PrefetchRig::make_cfg(), 2);
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(0), &r),
              BusStatus::kOk);
    rig.fabric.prefetch(1);
    kern::wait(50_ns);  // the background load is now mid-fetch
    rig.sim.request_stop();
  });
  EXPECT_EQ(rig.sim.run(), kern::StopReason::kExplicitStop);

  const DrcfStats& s = rig.fabric.stats();
  EXPECT_EQ(s.prefetches, 1u);
  EXPECT_EQ(s.switches, 1u);  // the prefetch never completed
  EXPECT_GE(s.config_words_fetched, kCtxWords);
  EXPECT_LT(s.config_words_fetched, 2 * kCtxWords);
}

// ---------------------------------------------------------------------------
// Hybrid retargeting: a demand load aborts an in-flight background fill.

class PrefetchRecordCounter : public kern::SchedulerObserver {
 public:
  void on_record(const kern::SchedRecord& r) override {
    if (r.kind == kern::SchedRecord::Kind::kPrefetch) ++records;
  }
  u64 records = 0;
};

TEST(DrcfPrefetchHybrid, DemandAbortsInFlightFill) {
  DrcfConfig cfg = PrefetchRig::make_cfg();
  cfg.slots = 1;
  cfg.fetch_burst = 4;  // several chunk boundaries to abort at
  cfg.prefetch.policy = PrefetchPolicy::kHybrid;
  cfg.prefetch.static_next = {1, 2, 0};
  cfg.prefetch.cache_slots = 2;
  PrefetchRig rig(cfg, 3);
  PrefetchRecordCounter trace;
  rig.sim.set_observer(&trace);
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(0), &r),
              BusStatus::kOk);
    // The fill of context 1 is now in flight; demanding context 2 must
    // abort it at the next chunk boundary instead of waiting it out.
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(2), &r),
              BusStatus::kOk);
    EXPECT_EQ(r, PrefetchRig::expected_value(2));
    kern::wait(5_us);
    EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(2), &r),
              BusStatus::kOk);  // still resident
  });
  rig.sim.run();

  const DrcfStats& s = rig.fabric.stats();
  EXPECT_EQ(s.prefetch_aborts, 1u);
  EXPECT_EQ(s.prefetches, 1u);  // ctx 0 stayed cached, so no second fill
  EXPECT_EQ(s.prefetch_hits, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.switches, 2u);
  // The abandoned fill moved at least one chunk but never the full context.
  EXPECT_GE(s.config_words_prefetched, 4u);
  EXPECT_LE(s.config_words_prefetched, 12u);
  // Trace: one prefetch-start record and one abort record.
  EXPECT_EQ(trace.records, 2u);
}

// ---------------------------------------------------------------------------
// Faulted background fills under each recovery policy: a fill failure is
// silent (no give-up, no degraded context) unless its policy recovers it,
// in which case the later demand switch installs straight from the cache.

TEST(DrcfPrefetchFaults, FilledPrefetchFaultsUnderEachRecoveryPolicy) {
  struct FaultCase {
    const char* name;
    RecoveryPolicy policy;
    fault::FaultKind kind;
    u64 fetch_errors;
    u64 fetch_retries;
    u64 scrubs;
    u64 cache_hits;
    u64 prefetch_hits;
    u64 prefetch_misses;
  };
  const FaultCase cases[] = {
      {"fail-fast drops the fill silently", RecoveryPolicy::kFailFast,
       fault::FaultKind::kError, 1, 0, 0, 0, 0, 2},
      {"retry-backoff recovers the fill", RecoveryPolicy::kRetryBackoff,
       fault::FaultKind::kError, 1, 1, 0, 1, 1, 1},
      {"scrub refetches the corrupted fill", RecoveryPolicy::kScrub,
       fault::FaultKind::kCorrupt, 1, 0, 1, 1, 1, 1},
      {"fallback never degrades a failed fill",
       RecoveryPolicy::kFallbackContext, fault::FaultKind::kError, 1, 0, 0, 0,
       0, 2},
  };
  for (const auto& tc : cases) {
    SCOPED_TRACE(tc.name);
    DrcfConfig cfg = PrefetchRig::make_cfg();
    cfg.slots = 1;
    cfg.prefetch.policy = PrefetchPolicy::kStaticNext;
    cfg.prefetch.static_next = {1, 0};
    cfg.prefetch.cache_slots = 2;
    cfg.recovery.policy = tc.policy;
    if (tc.policy == RecoveryPolicy::kRetryBackoff) {
      cfg.recovery.max_attempts = 3;
      cfg.recovery.backoff = 100_ns;
    }
    if (tc.policy == RecoveryPolicy::kScrub) cfg.recovery.scrub_refetches = 2;
    if (tc.policy == RecoveryPolicy::kFallbackContext)
      cfg.recovery.fallback_context = 0;
    // Fault exactly one transaction of context 1's configuration — the one
    // the background fill fetches.
    fault::ScriptedFault shot;
    shot.kind = tc.kind;
    shot.window_low = static_cast<bus::addr_t>(0x10000 + kCtxWords);
    shot.window_high = static_cast<bus::addr_t>(0x10000 + 2 * kCtxWords - 1);
    cfg.fetch_faults.scripted.push_back(shot);

    PrefetchRig rig(cfg, 2);
    rig.arm_digests();  // integrity check catches the corrupted fill
    rig.top.spawn_thread("driver", [&] {
      bus::word r = 0;
      EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(0), &r),
                BusStatus::kOk);
      kern::wait(20_us);  // the faulted fill (and any recovery) runs
      EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(1), &r),
                BusStatus::kOk);
      EXPECT_EQ(r, PrefetchRig::expected_value(1));
    });
    rig.sim.run();

    const DrcfStats& s = rig.fabric.stats();
    EXPECT_EQ(s.prefetches, 1u);
    EXPECT_EQ(s.fetch_errors, tc.fetch_errors);
    EXPECT_EQ(s.fetch_retries, tc.fetch_retries);
    EXPECT_EQ(s.scrubs, tc.scrubs);
    EXPECT_EQ(s.cache_hits, tc.cache_hits);
    EXPECT_EQ(s.prefetch_hits, tc.prefetch_hits);
    EXPECT_EQ(s.prefetch_misses, tc.prefetch_misses);
    // A failed fill has no takers: nothing gives up, nothing degrades.
    EXPECT_EQ(s.load_give_ups, 0u);
    EXPECT_EQ(s.fallback_forwards, 0u);
    EXPECT_EQ(s.switches, 2u);
  }
}

// ---------------------------------------------------------------------------
// The point of the whole layer: on the paper's repeated-switch workload the
// hybrid prefetcher with a context cache keeps >= 30% of the reconfiguration
// fetch latency off the demand path.

TEST(DrcfPrefetchHybrid, HidesThirtyPercentOfFetchLatency) {
  const auto run_policy = [](PrefetchPolicy policy, u32 cache_slots,
                             DrcfStats* out) {
    DrcfConfig cfg = PrefetchRig::make_cfg();
    cfg.slots = 1;
    cfg.prefetch.policy = policy;
    if (policy != PrefetchPolicy::kOnDemand)
      cfg.prefetch.static_next = {1, 2, 0};
    cfg.prefetch.cache_slots = cache_slots;
    PrefetchRig rig(cfg, 3);
    rig.top.spawn_thread("driver", [&] {
      for (int lap = 0; lap < 6; ++lap)
        for (usize ctx = 0; ctx < 3; ++ctx) {
          bus::word r = 0;
          EXPECT_EQ(rig.sys_bus.read(PrefetchRig::access_addr(ctx), &r),
                    BusStatus::kOk);
          EXPECT_EQ(r, PrefetchRig::expected_value(ctx));
          kern::wait(2_us);
        }
    });
    rig.sim.run();
    *out = rig.fabric.stats();
  };

  DrcfStats hybrid{};
  DrcfStats on_demand{};
  run_policy(PrefetchPolicy::kHybrid, 3, &hybrid);
  run_policy(PrefetchPolicy::kOnDemand, 0, &on_demand);

  // After the first lap every switch installs from the cache: 17 of the 18
  // ring accesses miss the single-slot fabric but skip the bus fetch.
  EXPECT_EQ(hybrid.misses, 18u);
  EXPECT_EQ(hybrid.cache_hits, 17u);
  EXPECT_EQ(hybrid.prefetches, 2u);
  EXPECT_EQ(hybrid.prefetch_hits, 2u);
  EXPECT_EQ(hybrid.cache_evictions, 0u);
  EXPECT_EQ(hybrid.config_words_skipped, 17 * kCtxWords);

  const u64 hidden = hybrid.hidden_latency.picoseconds();
  const u64 busy = hybrid.reconfig_busy_time.picoseconds();
  ASSERT_GT(hidden + busy, 0u);
  // The acceptance bar: at least 30% of the total reconfiguration fetch
  // latency is hidden (the workload actually hides far more).
  EXPECT_GE(hidden * 10, (hidden + busy) * 3);
  // And the demand path is strictly cheaper than the on-demand scheduler's.
  EXPECT_LT(busy, on_demand.reconfig_busy_time.picoseconds());
  EXPECT_LT(hybrid.config_words_fetched, on_demand.config_words_fetched);
}

}  // namespace
}  // namespace adriatic::drcf
