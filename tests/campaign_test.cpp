// Campaign engine tests: N independent simulations across a worker pool
// must produce bit-exact the same results as running them serially on one
// thread, metrics must come back in submission order, and a throwing job
// must reach its future without harming the pool.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/worker_pool.hpp"
#include "conformance/migration_harness.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "util/random.hpp"

namespace adriatic::campaign {
namespace {

using kern::Time;

// A seed-parameterised mini system: a producer drives a signal with random
// timed writes, an observer folds every change into a digest, and the final
// digest also covers the kernel's own counters — any scheduling divergence
// between runs of the same seed shows up bit-exactly.
std::vector<u64> run_seeded_sim(u64 seed) {
  Xoshiro256 rng(seed);
  kern::Simulation sim;
  kern::Module top(sim, "top");
  kern::Signal<u32> sig(top, "sig");
  std::vector<u64> digest;

  kern::SpawnOptions opts;
  opts.sensitivity = {&sig.value_changed_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] {
    digest.push_back(sim.now().picoseconds() ^ (u64{sig.read()} << 32));
  }, opts);
  top.spawn_thread("producer", [&] {
    const int steps = 50 + static_cast<int>(rng.next_below(50));
    for (int i = 0; i < steps; ++i) {
      kern::wait(Time::ns(1 + rng.next_below(20)));
      sig.write(static_cast<u32>(rng.next_below(1u << 30)));
    }
  });
  // Exercise the cancel/renotify (compaction) path inside campaign jobs too.
  kern::Event scratch(sim, "scratch");
  top.spawn_thread("canceller", [&] {
    for (int i = 0; i < 200; ++i) {
      scratch.notify(Time::us(10));
      kern::wait(Time::ns(3));
      scratch.cancel();
    }
  });
  sim.run();
  digest.push_back(sim.now().picoseconds());
  digest.push_back(sim.delta_count());
  digest.push_back(sim.activations());
  return digest;
}

TEST(CampaignTest, ParallelMatchesSerialBitExact) {
  constexpr usize kJobs = 32;
  constexpr usize kThreads = 4;

  // Serial reference: same factories, main thread, in order.
  std::vector<std::vector<u64>> serial;
  for (usize j = 0; j < kJobs; ++j) serial.push_back(run_seeded_sim(j + 1));

  CampaignRunner runner(kThreads);
  ASSERT_EQ(runner.thread_count(), kThreads);
  std::vector<std::future<std::vector<u64>>> futures;
  for (usize j = 0; j < kJobs; ++j) {
    futures.push_back(runner.submit("seed" + std::to_string(j + 1),
                                    [j] { return run_seeded_sim(j + 1); }));
  }
  for (usize j = 0; j < kJobs; ++j) {
    EXPECT_EQ(futures[j].get(), serial[j]) << "job " << j << " diverged";
  }
}

TEST(CampaignTest, StatsComeBackInSubmissionOrder) {
  CampaignRunner runner(3);
  std::vector<std::future<u64>> futures;
  for (usize j = 0; j < 9; ++j) {
    futures.push_back(
        runner.submit("job" + std::to_string(j), [j](JobContext& ctx) {
          kern::Simulation sim;
          kern::Module top(sim, "top");
          top.spawn_thread("t", [&, j] {
            for (usize i = 0; i <= j; ++i) kern::wait(Time::ns(10));
          });
          sim.run();
          ctx.record(sim);
          return sim.delta_count();
        }));
  }
  for (auto& f : futures) f.get();
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 9u);
  for (usize j = 0; j < 9; ++j) {
    EXPECT_EQ(stats[j].index, j);
    EXPECT_EQ(stats[j].label, "job" + std::to_string(j));
    EXPECT_TRUE(stats[j].done);
    EXPECT_FALSE(stats[j].failed);
    // Each job waited (j+1) x 10 ns of simulated time.
    EXPECT_EQ(stats[j].sim_time, Time::ns(10 * (j + 1)));
    EXPECT_GT(stats[j].delta_count, 0u);
  }
}

TEST(CampaignTest, JobFailureDoesNotTakeDownThePool) {
  CampaignRunner runner(4);
  auto bad = runner.submit("bad", []() -> int {
    throw std::runtime_error("boom at elaboration");
  });
  std::vector<std::future<int>> good;
  for (int j = 0; j < 12; ++j) {
    good.push_back(runner.submit("good" + std::to_string(j), [j] {
      kern::Simulation sim;
      kern::Module top(sim, "top");
      int wakes = 0;
      top.spawn_thread("t", [&] {
        for (int i = 0; i < 5; ++i) {
          kern::wait(Time::ns(1));
          ++wakes;
        }
      });
      sim.run();
      return wakes * (j + 1);
    }));
  }
  EXPECT_THROW(bad.get(), std::runtime_error);
  for (int j = 0; j < 12; ++j)
    EXPECT_EQ(good[static_cast<usize>(j)].get(), 5 * (j + 1));
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 13u);
  EXPECT_TRUE(stats[0].failed);
  EXPECT_EQ(stats[0].error, "boom at elaboration");
  for (usize j = 1; j < stats.size(); ++j) EXPECT_FALSE(stats[j].failed);
}

TEST(CampaignTest, ReportJsonIsBalancedAndComplete) {
  CampaignRunner runner(2);
  std::vector<std::future<int>> futures;
  for (int j = 0; j < 4; ++j)
    futures.push_back(runner.submit("j" + std::to_string(j), [j] {
      kern::Simulation sim;
      kern::Module top(sim, "top");
      top.spawn_thread("t", [] { kern::wait(Time::ns(5)); });
      sim.run();
      return j;
    }));
  for (auto& f : futures) f.get();
  runner.wait_idle();
  const std::string json =
      report_json("unit", runner.thread_count(), runner.stats());
  EXPECT_NE(json.find("\"campaign\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"j3\""), std::string::npos);
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  // Crude balance check: equal numbers of braces/brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(CampaignTest, RunInlineMatchesWorkerBookkeeping) {
  // The serial path (dse_explorer --serial) must produce the same records a
  // pool worker would: label, submission index, kernel counters, done flag.
  std::vector<JobStats> records;
  const auto digest = run_inline("seeded", records, [](JobContext& ctx) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    top.spawn_thread("t", [] { kern::wait(Time::ns(7)); });
    sim.run();
    ctx.record(sim);
    return sim.now().picoseconds();
  });
  EXPECT_EQ(digest, 7'000u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].index, 0u);
  EXPECT_EQ(records[0].label, "seeded");
  EXPECT_TRUE(records[0].done);
  EXPECT_FALSE(records[0].failed);
  EXPECT_EQ(records[0].sim_time, Time::ns(7));
  EXPECT_GT(records[0].delta_count, 0u);

  // A throwing job is recorded (done + failed) and the exception escapes.
  EXPECT_THROW(run_inline("boom", records,
                          [] { throw std::runtime_error("inline boom"); }),
               std::runtime_error);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].index, 1u);
  EXPECT_TRUE(records[1].done);
  EXPECT_TRUE(records[1].failed);
  EXPECT_EQ(records[1].error, "inline boom");
}

TEST(CampaignTest, RecordedDigestAppearsInReport) {
  // A job that records a scheduler-trace digest gets it into JobStats and
  // the JSON report (16 hex digits); jobs that record none emit no field.
  std::vector<JobStats> records;
  run_inline("traced", records, [](JobContext& ctx) {
    ctx.record_digest(0x00ab'cdef'0123'4567ull);
  });
  run_inline("untraced", records, [] {});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].digest, 0x00ab'cdef'0123'4567ull);
  EXPECT_EQ(records[1].digest, 0u);
  const std::string json = report_json("unit", 1, records);
  EXPECT_NE(json.find("\"digest\":\"00abcdef01234567\""), std::string::npos);
  EXPECT_EQ(json.find("\"digest\""), json.rfind("\"digest\""));
}

TEST(CampaignTest, ReportFlagsUnfinishedRecords) {
  // stats() taken before wait_idle() can contain placeholder records; the
  // report must flag them instead of presenting their zeros as metrics.
  std::vector<JobStats> stats(2);
  stats[0].index = 0;
  stats[0].label = "finished";
  stats[0].done = true;
  stats[0].wall_seconds = 0.5;
  stats[0].delta_count = 10;
  stats[1].index = 1;
  stats[1].label = "queued";
  const std::string json = report_json("unit", 1, stats);
  EXPECT_NE(json.find("\"label\":\"finished\",\"done\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"label\":\"queued\",\"done\":false"),
            std::string::npos);
  // Totals count only the finished job's metrics.
  EXPECT_NE(json.find("\"jobs\":2,\"done\":1,\"failed\":0,"
                      "\"cpu_seconds\":0.5,\"delta_cycles\":10"),
            std::string::npos);
}

TEST(CampaignTest, RetrySucceedsOnLaterAttempt) {
  CampaignRunner runner(2);
  JobOptions opt;
  opt.max_attempts = 3;
  auto flaky = runner.submit("flaky", opt, [](JobContext& ctx) {
    if (ctx.attempt() < 3) throw std::runtime_error("transient");
    return 42;
  });
  EXPECT_EQ(flaky.get(), 42);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].done);
  EXPECT_FALSE(stats[0].failed);
  EXPECT_FALSE(stats[0].quarantined);
  EXPECT_EQ(stats[0].attempts, 3u);
}

TEST(CampaignTest, RetriesExhaustedReportFinalError) {
  CampaignRunner runner(1);
  JobOptions opt;
  opt.max_attempts = 2;
  auto doomed = runner.submit("doomed", opt,
                              []() -> int { throw std::runtime_error("permanent"); });
  EXPECT_THROW(doomed.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].failed);
  EXPECT_EQ(stats[0].error, "permanent");
  EXPECT_EQ(stats[0].attempts, 2u);
  EXPECT_FALSE(stats[0].quarantined);
}

TEST(CampaignTest, WatchdogQuarantinesHungJob) {
  CampaignRunner runner(2);
  JobOptions opt;
  opt.wall_timeout_seconds = 0.15;
  auto hung = runner.submit("hung", opt, [](JobContext& ctx) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    top.spawn_thread("spin", [] {
      for (;;) kern::wait(Time::us(1));  // simulates forever
    });
    auto g = ctx.guard(sim);
    sim.run();  // only the watchdog's request_stop() can end this
    return ctx.attempt_timed_out() ? -1 : 0;
  });
  // A well-behaved sibling on the same pool is unaffected.
  auto good = runner.submit("good", [] {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    top.spawn_thread("t", [] { kern::wait(Time::ns(5)); });
    sim.run();
    return 7;
  });
  EXPECT_THROW(hung.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].done);  // quarantined records stay unfinished
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "wall-clock timeout");
  EXPECT_TRUE(stats[1].done);
  EXPECT_FALSE(stats[1].quarantined);
}

TEST(CampaignTest, ReportCarriesQuarantineAndFaultFields) {
  std::vector<JobStats> stats(2);
  stats[0].index = 0;
  stats[0].label = "clean";
  stats[0].done = true;
  stats[0].has_faults = true;
  stats[0].fetch_errors = 2;
  stats[0].faults_injected = 3;
  stats[0].fault_events = 5;
  stats[0].fault_digest = 0x0123'4567'89ab'cdefull;
  stats[1].index = 1;
  stats[1].label = "stuck";
  stats[1].attempts = 2;
  stats[1].quarantined = true;
  stats[1].quarantine_reason = "wall-clock timeout";
  const std::string json = report_json("unit", 1, stats);
  EXPECT_NE(json.find("\"faults\":{\"fetch_errors\":2,\"injected\":3,"
                      "\"events\":5,\"ledger_digest\":\"0123456789abcdef\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"quarantined\":true,"
                      "\"quarantine_reason\":\"wall-clock timeout\""),
            std::string::npos);
  EXPECT_NE(json.find("\"quarantined\":1"), std::string::npos);  // totals
  EXPECT_NE(json.find("\"fetch_errors\":2,\"faults_injected\":3"),
            std::string::npos);  // totals tail
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(CampaignTest, RequestStopIsSafeFromAnotherThread) {
  // The watchdog's only interface to a running job: request_stop() from a
  // foreign thread must end an otherwise-unbounded run().
  kern::Simulation sim;
  kern::Module top(sim, "top");
  top.spawn_thread("spin", [] {
    for (;;) kern::wait(Time::us(1));
  });
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sim.request_stop();
  });
  const auto reason = sim.run();
  stopper.join();
  EXPECT_EQ(reason, kern::StopReason::kExplicitStop);
}

/// An unbounded job body: its simulation only ends via request_stop().
int run_forever(JobContext& ctx) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  top.spawn_thread("spin", [] {
    for (;;) kern::wait(Time::us(1));
  });
  auto g = ctx.guard(sim);
  sim.run();
  return 0;
}

TEST(CampaignTest, RealSignalHandlerStopsTheSweep) {
  // End-to-end graceful shutdown: a *real* SIGINT delivered to this process
  // lands in the installed handler, the runner's watchdog observes the flag
  // and broadcasts request_stop() into every guarded simulation.
  install_stop_signal_handlers();
  clear_signal_stop();
  CampaignRunner runner(2);
  runner.enable_signal_stop();
  auto a = runner.submit("a", run_forever);
  auto b = runner.submit("b", run_forever);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_THROW(a.get(), std::runtime_error);
  EXPECT_THROW(b.get(), std::runtime_error);
  runner.wait_idle();
  EXPECT_TRUE(signal_stop_requested());
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const JobStats& s : stats) {
    EXPECT_FALSE(s.done);  // partial results never masquerade as complete
    EXPECT_TRUE(s.quarantined);
    EXPECT_EQ(s.quarantine_reason, "interrupted");
  }
  clear_signal_stop();
}

TEST(CampaignTest, RequestStopAllInterruptsRunningAndPendingJobs) {
  CampaignRunner runner(1);  // one worker: the second job stays queued
  auto running = runner.submit("running", run_forever);
  auto pending = runner.submit("pending", run_forever);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  runner.request_stop_all();
  EXPECT_THROW(running.get(), std::runtime_error);
  EXPECT_THROW(pending.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_TRUE(stats[1].quarantined);
  // The pending job was cancelled before its simulation ever ran.
  EXPECT_EQ(stats[1].sim_time, Time::zero());
}

TEST(CampaignTest, StatsIndexLetsResumedJobsKeepTheirSlot) {
  CampaignRunner runner(1);
  JobOptions opt;
  opt.stats_index = 7;  // this submission is job 7 of some earlier campaign
  auto f = runner.submit("late", opt, [] { return 1; });
  EXPECT_EQ(f.get(), 1);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].index, 7u);
  EXPECT_EQ(stats[0].label, "late");
  EXPECT_TRUE(stats[0].done);
}

TEST(CampaignTest, ReportEmitsNullTotalsWhenNothingCompleted) {
  // All-quarantined sweep: averages would be 0/0, so totals must be an
  // explicit null with a reason — not NaN and not a zero-filled object.
  std::vector<JobStats> stats(2);
  stats[0].index = 0;
  stats[0].label = "a";
  stats[0].quarantined = true;
  stats[0].quarantine_reason = "interrupted";
  stats[1].index = 1;
  stats[1].label = "b";
  stats[1].quarantined = true;
  stats[1].quarantine_reason = "wall-clock timeout";
  const std::string json = report_json("doomed", 2, stats);
  EXPECT_NE(json.find("\"totals\":null"), std::string::npos);
  EXPECT_NE(json.find("\"totals_reason\":\"no completed jobs\""),
            std::string::npos);
  EXPECT_EQ(json.find("jobs_per_cpu_second"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);

  const std::string empty = report_json("empty", 1, {});
  EXPECT_NE(empty.find("\"totals\":null"), std::string::npos);
  EXPECT_NE(empty.find("\"totals_reason\":\"no jobs submitted\""),
            std::string::npos);
}

// -- Migration sweep journaling ----------------------------------------------

/// One migration job: a clean two-fabric task handover whose controller
/// counters land in the job's stats (and therefore in the journal's D
/// record and the report's "migration" object).
u64 run_migration_job(bool faulted, JobContext& ctx) {
  conformance::MigrationSpec spec;
  if (faulted) {
    fault::ScriptedFault f;
    f.kind = fault::FaultKind::kError;
    f.count = 2;
    spec.transfer_faults.seed = 0x516;
    spec.transfer_faults.scripted.push_back(f);
    spec.dst_recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
    spec.dst_recovery.max_attempts = 4;
    spec.dst_recovery.backoff = Time::ns(100);
  }
  const auto r = conformance::run_migration(spec);
  EXPECT_TRUE(r.migration.ok());
  ctx.record_digest(r.scenario.digest);
  ctx.record_migration(r.controller.migrations, r.controller.state_words_moved,
                       r.controller.transfer_faults_recovered);
  return r.controller.state_words_moved;
}

TEST(CampaignTest, MigrationSweepSurvivesSigkillStyleResume) {
  const std::string path =
      testing::TempDir() + "adriatic_campaign_migration.wal";
  std::remove(path.c_str());
  const std::vector<std::string> labels = {"mig_clean", "mig_faulted"};
  const auto job_body = [](usize i) {
    return [i](JobContext& ctx) { return run_migration_job(i == 1, ctx); };
  };

  // The uninterrupted run: both migration jobs complete, journaled.
  std::vector<JobStats> baseline;
  {
    auto journal = CampaignJournal::create(path, "migration_sweep");
    ASSERT_NE(journal, nullptr);
    for (usize i = 0; i < labels.size(); ++i)
      journal->record_planned(i, spec_hash(labels[i]), labels[i]);
    CampaignRunner runner(2);
    runner.set_journal(journal.get());
    std::vector<std::future<u64>> futures;
    for (usize i = 0; i < labels.size(); ++i)
      futures.push_back(runner.submit(labels[i], job_body(i)));
    for (auto& f : futures) EXPECT_GT(f.get(), 0u);
    runner.wait_idle();
    baseline = runner.stats();
  }
  ASSERT_EQ(baseline.size(), 2u);
  for (const JobStats& s : baseline) {
    EXPECT_TRUE(s.has_migration);
    EXPECT_EQ(s.migrations, 1u);
    EXPECT_GT(s.state_words_moved, 0u);
  }
  EXPECT_EQ(baseline[0].transfer_faults_recovered, 0u);
  EXPECT_EQ(baseline[1].transfer_faults_recovered, 1u);

  // Simulate SIGKILL after job 0 committed: keep the journal's header,
  // plan and job-0 records, leave job 1 as a torn half-written D line (the
  // crash cut it off before its checksum).
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<std::string> keep;
    while (std::getline(in, line))
      if (line.rfind("D 1", 0) != 0) keep.push_back(line);
    in.close();
    std::ofstream out(path, std::ios::trunc);
    for (const auto& l : keep) out << l << '\n';
    out << "D 1 label=mig_faulted done=1 migrations=";  // torn mid-append
  }

  // Resume: job 0 restores verbatim from its D record, job 1 re-runs, and
  // the merged migration counters match the uninterrupted run exactly.
  const auto state = read_journal(path);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->campaign, "migration_sweep");
  EXPECT_EQ(state->torn_lines, 1u);
  ASSERT_EQ(state->completed.size(), 1u);
  ASSERT_EQ(state->completed.count(0), 1u);

  std::vector<JobStats> resumed(labels.size());
  resumed[0] = state->completed.at(0);
  {
    auto journal = CampaignJournal::append_to(path);
    ASSERT_NE(journal, nullptr);
    CampaignRunner runner(1);
    runner.set_journal(journal.get());
    JobOptions opt;
    opt.stats_index = 1;  // the re-run keeps its original campaign index
    auto f = runner.submit(labels[1], opt, job_body(1));
    EXPECT_GT(f.get(), 0u);
    runner.wait_idle();
    for (const auto& rec : runner.stats()) resumed[rec.index] = rec;
  }
  for (usize i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(resumed[i].label, baseline[i].label);
    EXPECT_TRUE(resumed[i].has_migration) << labels[i];
    EXPECT_EQ(resumed[i].migrations, baseline[i].migrations);
    EXPECT_EQ(resumed[i].state_words_moved, baseline[i].state_words_moved);
    EXPECT_EQ(resumed[i].transfer_faults_recovered,
              baseline[i].transfer_faults_recovered);
    EXPECT_EQ(resumed[i].digest, baseline[i].digest) << labels[i];
  }

  // The resumed journal now shows both jobs done with the right counters.
  const auto final_state = read_journal(path);
  ASSERT_TRUE(final_state.has_value());
  ASSERT_EQ(final_state->completed.size(), 2u);
  EXPECT_EQ(final_state->completed.at(1).state_words_moved,
            baseline[1].state_words_moved);

  // And the report carries a "migration" object for both jobs.
  const std::string json = report_json("migration_sweep", 2, resumed);
  EXPECT_NE(json.find("\"migration\":{\"migrations\":1"), std::string::npos);
  EXPECT_NE(json.find("\"transfer_faults_recovered\":1"), std::string::npos);
  std::remove(path.c_str());
}

// -- Frame codec (process-isolation wire format) -----------------------------

TEST(WorkerPoolTest, FrameCodecRoundTripsAndToleratesTornReads) {
  const std::string payload = "label=x done=1 digest=00000000000000aa";
  const std::string wire = encode_frame(kFrameResult, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
  EXPECT_EQ(wire[0], kFrameMagic);

  // Feed byte by byte: a torn read never yields a partial frame.
  FrameDecoder dec;
  for (usize i = 0; i + 1 < wire.size(); ++i) {
    dec.feed(&wire[i], 1);
    EXPECT_FALSE(dec.next().has_value()) << "premature frame at byte " << i;
    EXPECT_FALSE(dec.error());
  }
  dec.feed(&wire[wire.size() - 1], 1);
  const auto frame = dec.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, kFrameResult);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(dec.next().has_value());

  // Two frames in one buffer (heartbeat then result) decode in order.
  const std::string both =
      encode_frame(kFrameHeartbeat, "") + encode_frame(kFrameResult, "done=1");
  FrameDecoder dec2;
  dec2.feed(both.data(), both.size());
  const auto hb = dec2.next();
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->type, kFrameHeartbeat);
  EXPECT_TRUE(hb->payload.empty());
  const auto res = dec2.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->payload, "done=1");
}

TEST(WorkerPoolTest, FrameDecoderLatchesErrorOnCorruption) {
  // A flipped payload byte fails the checksum: no frame, stream is dead.
  std::string wire = encode_frame(kFrameResult, "label=x done=1");
  wire[kFrameHeaderSize] ^= 0x20;
  FrameDecoder bad_payload;
  bad_payload.feed(wire.data(), wire.size());
  EXPECT_FALSE(bad_payload.next().has_value());
  EXPECT_TRUE(bad_payload.error());

  // A wrong magic byte is a protocol failure immediately.
  std::string bad_magic = encode_frame(kFrameHeartbeat, "");
  bad_magic[0] = 'Z';
  FrameDecoder dec2;
  dec2.feed(bad_magic.data(), bad_magic.size());
  EXPECT_FALSE(dec2.next().has_value());
  EXPECT_TRUE(dec2.error());

  // An absurd length field is corruption, not a pending 4 GB allocation.
  std::string huge = encode_frame(kFrameResult, "x");
  huge[2] = '\xff';
  huge[3] = '\xff';
  huge[4] = '\xff';
  huge[5] = '\xff';
  FrameDecoder dec3;
  dec3.feed(huge.data(), huge.size());
  EXPECT_FALSE(dec3.next().has_value());
  EXPECT_TRUE(dec3.error());
}

/// Restores the process-wide memory budget limit on scope exit (shared
/// singleton — a failing assertion must not leak a tiny limit into later
/// tests).
struct BudgetLimitGuard {
  u64 saved = mem::MemoryBudget::instance().limit_bytes();
  ~BudgetLimitGuard() { mem::MemoryBudget::instance().set_limit_bytes(saved); }
};

TEST(CampaignTest, OverBudgetJobIsQuarantinedNotFailed) {
  BudgetLimitGuard guard;
  auto& budget = mem::MemoryBudget::instance();
  mem::ImageRegistry::instance().drop_unused();
  // One worker: jobs run serially, so the small job cannot race the big one
  // for the shared budget headroom.
  CampaignRunner runner(1);
  budget.set_limit_bytes(budget.resident_bytes() + 4 * mem::kPageBytes);
  auto fits = runner.submit("fits", [](JobContext& ctx) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    mem::Memory m(top, "small", 0, 2 * mem::kPageWords);
    m.poke(0, 1);  // one resident page: comfortably inside the budget
    sim.run();
    ctx.record(sim);
    ctx.record_memory(mem::MemoryBudget::instance().high_water_bytes(),
                      m.backing().resident_pages(), 0, 0);
    return 1;
  });
  auto over = runner.submit("over", [](JobContext&) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    mem::Memory m(top, "big", 0, 64 * mem::kPageWords);
    for (usize p = 0; p < 64; ++p)
      m.poke(static_cast<bus::addr_t>(p * mem::kPageWords), 1);
    return 2;
  });
  EXPECT_EQ(fits.get(), 1);
  EXPECT_THROW(over.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].done);
  EXPECT_TRUE(stats[0].has_memory);
  EXPECT_EQ(stats[0].mem_pages_resident, 1u);
  // Over budget is a structured verdict, not a failure: the job is
  // quarantined with the reason and its high-water mark, failed stays
  // false, and only one attempt ran (a retry would allocate the same
  // pages again).
  EXPECT_FALSE(stats[1].done);
  EXPECT_FALSE(stats[1].failed);
  EXPECT_TRUE(stats[1].quarantined);
  EXPECT_EQ(stats[1].quarantine_reason, "budget-quarantined");
  EXPECT_EQ(stats[1].attempts, 1u);
  EXPECT_TRUE(stats[1].has_memory);
  EXPECT_GT(stats[1].mem_resident_peak_bytes, 0u);
}

// -- Process isolation (ExecutionMode::kProcesses) ---------------------------

#define ADRIATIC_SKIP_WITHOUT_FORK()                       \
  do {                                                     \
    if (!ProcessWorkerPool::fork_available())              \
      GTEST_SKIP() << "fork-based isolation unavailable "  \
                      "in this build/environment";         \
  } while (0)

TEST(CampaignTest, SegfaultingChildIsQuarantinedWithSignalReason) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  CampaignRunner runner(2, ExecutionMode::kProcesses);
  ASSERT_EQ(runner.mode(), ExecutionMode::kProcesses);
  JobOptions opt;
  opt.debug_failure = DebugFailure::kSegv;
  opt.max_attempts = 2;
  auto crash = runner.submit("crash", opt, [](JobContext&) {});
  // A well-behaved sibling in its own child is untouched by the crash.
  auto good = runner.submit("good", [](JobContext& ctx) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    top.spawn_thread("t", [] { kern::wait(Time::ns(5)); });
    sim.run();
    ctx.record(sim);
  });
  EXPECT_THROW(crash.get(), std::runtime_error);
  good.get();
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].done);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "signal:SIGSEGV");
  EXPECT_EQ(stats[0].worker_deaths, 2u);  // both attempts died by signal
  EXPECT_EQ(stats[0].attempts, 2u);
  EXPECT_TRUE(stats[1].done);
  EXPECT_EQ(stats[1].sim_time, Time::ns(5));
  EXPECT_EQ(stats[1].worker_deaths, 0u);
}

TEST(CampaignTest, SpinningChildIsKilledByWallDeadline) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.debug_failure = DebugFailure::kHangCpu;  // heartbeats keep flowing
  opt.wall_timeout_seconds = 0.3;
  opt.heartbeat_timeout_seconds = 10.0;
  auto hung = runner.submit("hung", opt, [](JobContext&) {});
  EXPECT_THROW(hung.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].done);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "timeout");
  EXPECT_GE(stats[0].worker_deaths, 1u);
}

TEST(CampaignTest, SilentChildIsKilledByHeartbeatTimeout) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.debug_failure = DebugFailure::kHangSleep;  // blocks its heartbeats
  opt.heartbeat_timeout_seconds = 0.3;
  auto silent = runner.submit("silent", opt, [](JobContext&) {});
  EXPECT_THROW(silent.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "heartbeat-lost");
}

TEST(CampaignTest, NonZeroExitChildQuarantinesWithExitReason) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.debug_failure = DebugFailure::kExitCode;
  opt.debug_exit_code = 42;
  auto gone = runner.submit("gone", opt, [](JobContext&) {});
  EXPECT_THROW(gone.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "exit:42");
}

TEST(CampaignTest, RepeatCrasherSpecIsCrashQuarantined) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.spec = spec_hash("crasher");
  opt.debug_failure = DebugFailure::kSegv;
  opt.crash_limit = 2;
  opt.max_attempts = 5;  // quarantine must trip before retries run out
  auto first = runner.submit("crasher", opt, [](JobContext&) {});
  EXPECT_THROW(first.get(), std::runtime_error);
  // The same spec resubmitted never forks again: instant quarantine.
  auto second = runner.submit("crasher again", opt, [](JobContext&) {});
  EXPECT_THROW(second.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "signal:SIGSEGV");
  EXPECT_EQ(stats[0].attempts, 2u);       // crash_limit, not max_attempts
  EXPECT_EQ(stats[0].worker_deaths, 2u);
  EXPECT_TRUE(stats[1].quarantined);
  EXPECT_EQ(stats[1].quarantine_reason, "crash-quarantined");
  EXPECT_EQ(stats[1].worker_deaths, 0u);  // no child was ever forked
}

TEST(CampaignTest, OverBudgetChildCarriesVerdictAcrossThePipe) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  // Same contract as thread mode, but the typed BudgetExceededError is
  // raised inside a forked child: it must come back as the structured
  // `budget-quarantined` verdict (a clean result frame), not as a crash or
  // a worker death.
  BudgetLimitGuard guard;
  auto& budget = mem::MemoryBudget::instance();
  mem::ImageRegistry::instance().drop_unused();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  budget.set_limit_bytes(budget.resident_bytes() + 4 * mem::kPageBytes);
  auto over = runner.submit("over", [](JobContext&) {
    kern::Simulation sim;
    kern::Module top(sim, "top");
    mem::Memory m(top, "big", 0, 64 * mem::kPageWords);
    for (usize p = 0; p < 64; ++p)
      m.poke(static_cast<bus::addr_t>(p * mem::kPageWords), 1);
  });
  EXPECT_THROW(over.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].done);
  EXPECT_FALSE(stats[0].failed);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "budget-quarantined");
  EXPECT_EQ(stats[0].worker_deaths, 0u);  // verdict, not a dead worker
  EXPECT_TRUE(stats[0].has_memory);
  EXPECT_GT(stats[0].mem_resident_peak_bytes, 0u);
}

TEST(CampaignTest, ProcessModeMatchesThreadModeBitExact) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  constexpr u64 kSeeds[] = {3, 7, 11, 13};
  const auto body = [](u64 seed, JobContext& ctx) {
    const auto digest = run_seeded_sim(seed);
    u64 fold = 1469598103934665603ull;
    for (const u64 v : digest) {
      fold ^= v;
      fold *= 1099511628211ull;
    }
    ctx.record_digest(fold);
    ctx.record_user_data(std::to_string(fold));
  };
  const auto sweep = [&](ExecutionMode mode) {
    CampaignRunner runner(2, mode);
    std::vector<std::future<void>> futures;
    for (const u64 seed : kSeeds)
      futures.push_back(runner.submit(
          "seed" + std::to_string(seed),
          [&body, seed](JobContext& ctx) { body(seed, ctx); }));
    for (auto& f : futures) f.get();
    runner.wait_idle();
    return runner.stats();
  };
  const auto threads = sweep(ExecutionMode::kThreads);
  const auto processes = sweep(ExecutionMode::kProcesses);
  ASSERT_EQ(threads.size(), processes.size());
  for (usize i = 0; i < threads.size(); ++i) {
    EXPECT_TRUE(processes[i].done);
    EXPECT_EQ(processes[i].digest, threads[i].digest) << "seed job " << i;
    EXPECT_EQ(processes[i].user_data, threads[i].user_data);
    EXPECT_EQ(processes[i].label, threads[i].label);
  }
}

TEST(CampaignTest, ChildFailureReplaysThreadRetrySemantics) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  // A child whose body *throws* (no crash) reports the failure over the
  // pipe; the parent replays thread-mode retry semantics on it.
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.max_attempts = 3;
  auto flaky = runner.submit("flaky", opt, [](JobContext& ctx) {
    if (ctx.attempt() < 3) throw std::runtime_error("transient");
  });
  flaky.get();
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].done);
  EXPECT_FALSE(stats[0].failed);
  EXPECT_EQ(stats[0].attempts, 3u);
  EXPECT_EQ(stats[0].worker_deaths, 0u);  // clean exits, not crashes
}

TEST(CampaignTest, ForkUnavailableDegradesToThreads) {
  ASSERT_EQ(::setenv("ADRIATIC_NO_FORK", "1", 1), 0);
  EXPECT_FALSE(ProcessWorkerPool::fork_available());
  CampaignRunner runner(2, ExecutionMode::kProcesses);
  EXPECT_EQ(runner.mode(), ExecutionMode::kThreads);  // graceful degrade
  auto f = runner.submit("still-works", [] { return 5; });
  EXPECT_EQ(f.get(), 5);
  runner.wait_idle();
  ASSERT_EQ(::unsetenv("ADRIATIC_NO_FORK"), 0);
}

TEST(CampaignTest, StopHandlersDoNotLeakIntoChildrenAndNoZombiesRemain) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  // Children must reset the parent's SIGINT/SIGTERM dispositions: a leaked
  // handler would swallow this child's self-SIGTERM (setting the global
  // stop flag and completing the job); with SIG_DFL restored the child dies
  // by the signal and the supervisor reports it.
  install_stop_signal_handlers();
  clear_signal_stop();
  CampaignRunner runner(1, ExecutionMode::kProcesses);
  JobOptions opt;
  opt.max_attempts = 1;
  auto f = runner.submit("selfterm", opt, [](JobContext&) {
    std::raise(SIGTERM);
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].quarantined);
  EXPECT_EQ(stats[0].quarantine_reason, "signal:SIGTERM");
  EXPECT_EQ(stats[0].worker_deaths, 1u);
  EXPECT_FALSE(signal_stop_requested());  // the parent's flag stayed clear
  // Every forked child was reaped with waitpid: no zombies left behind.
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
  clear_signal_stop();
}

TEST(CampaignTest, WorkerDeathsLandInJournalAndReport) {
  ADRIATIC_SKIP_WITHOUT_FORK();
  const std::string path = testing::TempDir() + "adriatic_campaign_death.wal";
  std::remove(path.c_str());
  {
    auto journal = CampaignJournal::create(path, "death_sweep");
    ASSERT_NE(journal, nullptr);
    journal->record_planned(0, spec_hash("crash"), "crash");
    CampaignRunner runner(1, ExecutionMode::kProcesses);
    runner.set_journal(journal.get());
    JobOptions opt;
    opt.debug_failure = DebugFailure::kSegv;
    opt.max_attempts = 1;
    auto f = runner.submit("crash", opt, [](JobContext&) {});
    EXPECT_THROW(f.get(), std::runtime_error);
    runner.wait_idle();
    const std::string json =
        report_json("death_sweep", runner.thread_count(), runner.stats());
    EXPECT_NE(json.find("\"worker_deaths\":1"), std::string::npos);
    EXPECT_NE(json.find("\"quarantine_reason\":\"signal:SIGSEGV\""),
              std::string::npos);
  }
  const auto state = read_journal(path);
  ASSERT_TRUE(state.has_value());
  ASSERT_EQ(state->worker_deaths.size(), 1u);
  EXPECT_EQ(state->worker_deaths[0].index, 0u);
  EXPECT_EQ(state->worker_deaths[0].reason, "signal:SIGSEGV");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adriatic::campaign
