// End-to-end tests for the campaign service: an in-process campaignd on a
// temp Unix socket, driven through the real client library.
//
//  * results streamed over the socket are byte-identical (modulo wall clock)
//    to the same jobs run inline in this process — both paths execute
//    service/jobs.cpp, so the wire adds nothing and loses nothing;
//  * repeats dedup: a second client re-submitting a finished grid gets every
//    result from_cache without touching a worker;
//  * concurrent clients and a WATCH subscriber never see a torn frame;
//  * SIGTERM mid-sweep: serve() returns 130, finished jobs are journaled
//    done, interrupted ones quarantined, and a resumed server serves the
//    finished prefix from its journal/cache without re-simulating.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "service/client.hpp"
#include "service/jobs.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace adriatic {
namespace {

using namespace std::chrono_literals;

// sun_path caps at ~107 bytes, so sockets (and their journal/cache
// companions) live under short /tmp names, unique per process and call.
std::string temp_path(const char* tag, const char* ext) {
  static std::atomic<int> counter{0};
  return "/tmp/adriatic_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ext;
}

/// The serialisation used for byte-identity checks: wall clock and the
/// from_cache flag are the only fields a cache/service round trip is allowed
/// to change, so both are normalised out before encoding.
std::string normalized(campaign::JobStats stats) {
  stats.wall_seconds = 0;
  stats.from_cache = false;
  return campaign::encode_job_stats(stats);
}

std::vector<service::ServiceJob> golden_jobs(const std::vector<u64>& seeds,
                                             u32 throttle_ms) {
  std::vector<service::ServiceJob> jobs;
  for (usize i = 0; i < seeds.size(); ++i) {
    service::ServiceJob job;
    job.index = i;
    job.spec = service::golden_spec_hash(seeds[i]);
    job.kind = "golden";
    job.label = "golden" + std::to_string(seeds[i]);
    job.params["seed"] = std::to_string(seeds[i]);
    if (throttle_ms > 0) job.params["throttle_ms"] = std::to_string(throttle_ms);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct LiveServer {
  explicit LiveServer(service::ServerOptions opt)
      : server(std::move(opt)) {}
  ~LiveServer() { server.stop(); }
  service::CampaignServer server;
};

TEST(ServiceTest, ResultsByteIdenticalToInlineAndWarmRepeatsDedup) {
  const std::vector<u64> seeds = {11, 42, 516};

  // Ground truth: the same golden jobs run inline on this thread, with the
  // same bookkeeping a pool worker applies.
  std::vector<campaign::JobStats> truth;
  for (const u64 seed : seeds) {
    campaign::run_inline("golden" + std::to_string(seed), truth,
                         [seed](campaign::JobContext& ctx) {
                           service::run_golden(seed, 0, ctx);
                         });
  }
  ASSERT_EQ(truth.size(), seeds.size());

  service::ServerOptions opt;
  opt.socket_path = temp_path("svc", ".sock");
  opt.threads = 2;
  LiveServer live(opt);
  ASSERT_TRUE(live.server.start());

  const auto jobs = golden_jobs(seeds, 0);
  const auto cold = service::run_jobs_over_service(opt.socket_path, jobs);
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_EQ(cold.stats.size(), seeds.size());
  EXPECT_EQ(cold.totals.service_requests, seeds.size());
  EXPECT_EQ(cold.totals.dedup_hits, 0u);
  EXPECT_FALSE(cold.interrupted);
  for (usize i = 0; i < seeds.size(); ++i) {
    const campaign::JobStats& got = cold.stats.at(i);
    EXPECT_TRUE(got.done);
    EXPECT_FALSE(got.from_cache);
    EXPECT_EQ(got.index, i);
    EXPECT_EQ(got.label, "golden" + std::to_string(seeds[i]));
    EXPECT_NE(got.digest, 0u);
    EXPECT_EQ(got.digest, truth[i].digest);
    // The load-bearing assertion: the streamed record serialises to the
    // exact bytes of the inline one, every field included.
    EXPECT_EQ(normalized(got), normalized(truth[i])) << got.label;
  }

  // Warm repeat on a fresh connection: every result is served from the
  // session's finished map, flagged from_cache, no new simulation.
  const auto warm = service::run_jobs_over_service(opt.socket_path, jobs);
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_EQ(warm.stats.size(), seeds.size());
  EXPECT_EQ(warm.totals.dedup_hits, seeds.size());
  for (usize i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(warm.stats.at(i).from_cache);
    EXPECT_EQ(normalized(warm.stats.at(i)), normalized(truth[i]));
  }

  const service::ServerCounters c = live.server.counters();
  EXPECT_EQ(c.requests, 2 * seeds.size());
  EXPECT_EQ(c.dedup_hits, seeds.size());
  EXPECT_EQ(c.jobs_done, seeds.size());
  EXPECT_EQ(c.jobs_failed, 0u);
  EXPECT_GE(c.connections, 2u);
}

TEST(ServiceTest, ConcurrentClientsAndWatcherSeeCleanFrames) {
  const std::vector<u64> seeds = {7, 99, 2003};

  service::ServerOptions opt;
  opt.socket_path = temp_path("svc", ".sock");
  opt.threads = 2;
  LiveServer live(opt);
  ASSERT_TRUE(live.server.start());

  // Subscribe the watcher before any job can finish, so every fresh
  // completion is broadcast to it.
  auto watcher = service::ServiceClient::connect(opt.socket_path);
  ASSERT_NE(watcher, nullptr);
  ASSERT_TRUE(watcher->watch(1));
  const auto ack = watcher->next_response();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, service::ResponseType::kOk);
  EXPECT_EQ(ack->id, 1u);

  std::vector<service::Response> watched;
  std::thread watch_thread([&] {
    // Drains broadcast frames until the server closes the connection; any
    // torn frame would land in wire_error() instead of a clean EOF.
    while (auto resp = watcher->next_response()) {
      if (resp->type == service::ResponseType::kResult)
        watched.push_back(*resp);
    }
  });

  // Two clients race the same grid; the server must simulate each point
  // once and serve the other submission by dedup (attach or finished map).
  const auto jobs = golden_jobs(seeds, 0);
  service::ServiceRunResult runs[2];
  std::thread clients[2];
  for (int k = 0; k < 2; ++k) {
    clients[k] = std::thread([&, k] {
      runs[k] = service::run_jobs_over_service(opt.socket_path, jobs);
    });
  }
  for (auto& t : clients) t.join();

  for (const auto& run : runs) {
    ASSERT_TRUE(run.ok) << run.error;
    ASSERT_EQ(run.stats.size(), seeds.size());
  }
  // Both clients hold byte-identical records for every point, whichever
  // dedup path served them.
  for (usize i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(runs[0].stats.at(i).done);
    EXPECT_EQ(normalized(runs[0].stats.at(i)), normalized(runs[1].stats.at(i)))
        << "seed " << seeds[i];
  }

  const service::ServerCounters c = live.server.counters();
  EXPECT_EQ(c.requests, 2 * seeds.size());
  EXPECT_EQ(c.dedup_hits, seeds.size());
  EXPECT_EQ(c.jobs_done, seeds.size());
  EXPECT_EQ(c.jobs_failed, 0u);

  live.server.stop();  // closes the watcher's connection -> clean EOF
  watch_thread.join();
  EXPECT_FALSE(watcher->wire_error().has_value());

  // The watcher saw every fresh completion (and possibly dedup re-serves),
  // each a cleanly parsed broadcast frame with the watcher id 0.
  EXPECT_GE(watched.size(), seeds.size());
  std::set<u64> watched_specs;
  for (const auto& resp : watched) {
    EXPECT_EQ(resp.id, 0u);
    EXPECT_TRUE(resp.stats.done);
    watched_specs.insert(resp.spec);
  }
  for (const u64 seed : seeds)
    EXPECT_TRUE(watched_specs.count(service::golden_spec_hash(seed)) > 0)
        << "seed " << seed;
}

TEST(ServiceTest, SigtermJournalsInterruptedAndResumeServesFinishedPrefix) {
  const std::vector<u64> seeds = {901, 902, 903, 904, 905, 906};
  const std::string sock = temp_path("svc_sig", ".sock");
  const std::string journal_path = temp_path("svc_sig", ".journal");
  const std::string cache_path = temp_path("svc_sig", ".cache");

  campaign::clear_signal_stop();
  campaign::install_stop_signal_handlers();

  service::ServerOptions opt;
  opt.socket_path = sock;
  opt.threads = 1;  // serialise jobs so the signal lands mid-sweep
  opt.campaign_name = "svc-sigterm";
  opt.journal_path = journal_path;
  opt.cache_path = cache_path;

  auto server = std::make_unique<service::CampaignServer>(opt);
  int rc = -1;
  std::thread serve_thread([&] { rc = server->serve(); });

  // serve() binds the socket before it blocks; wait for it to appear.
  for (int i = 0; i < 500 && ::access(sock.c_str(), F_OK) != 0; ++i)
    std::this_thread::sleep_for(10ms);
  ASSERT_EQ(::access(sock.c_str(), F_OK), 0);

  // Throttled jobs widen the window: with one worker and ~250 ms per job
  // the sweep is mid-flight for over a second.
  const auto jobs = golden_jobs(seeds, 250);
  service::ServiceRunResult run;
  std::thread client_thread(
      [&] { run = service::run_jobs_over_service(sock, jobs); });

  // Let a prefix finish, then deliver the signal a real operator would.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (server->counters().jobs_done < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  ASSERT_GE(server->counters().jobs_done, 2u);
  ::raise(SIGTERM);

  serve_thread.join();
  EXPECT_EQ(rc, 130);
  client_thread.join();

  // The client got a RESULT for every job — interrupted ones stream out as
  // quarantined records before the server closes connections.
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_EQ(run.stats.size(), seeds.size());
  EXPECT_TRUE(run.interrupted);
  usize done_jobs = 0;
  for (const auto& [index, stats] : run.stats) {
    if (stats.done) {
      ++done_jobs;
    } else {
      EXPECT_TRUE(stats.quarantined) << stats.label;
      EXPECT_EQ(stats.quarantine_reason, "interrupted") << stats.label;
    }
  }
  EXPECT_GE(done_jobs, 2u);
  EXPECT_LT(done_jobs, seeds.size());

  // Journal integrity: readable header, finished jobs restored verbatim as
  // done records, nothing torn by the stop.
  const auto state = campaign::read_journal(journal_path);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->campaign, "svc-sigterm");
  EXPECT_EQ(state->torn_lines, 0u);
  ASSERT_FALSE(state->completed.empty());
  EXPECT_EQ(state->completed.size(), done_jobs);
  std::map<u64, u64> journaled_digest;  // spec -> trace digest
  for (const auto& [index, stats] : state->completed) {
    EXPECT_TRUE(stats.done);
    const auto planned = state->planned.find(index);
    ASSERT_NE(planned, state->planned.end());
    EXPECT_EQ(planned->second.label, stats.label);
    journaled_digest[planned->second.spec] = stats.digest;
  }

  server.reset();
  campaign::clear_signal_stop();

  // Restart against the same journal and cache: the finished prefix must be
  // served from_cache (no re-simulation), the rest simulated fresh.
  service::ServerOptions opt2 = opt;
  opt2.resume = true;
  LiveServer live(opt2);
  ASSERT_TRUE(live.server.start());

  const auto warm = service::run_jobs_over_service(sock, golden_jobs(seeds, 0));
  ASSERT_TRUE(warm.ok) << warm.error;
  ASSERT_EQ(warm.stats.size(), seeds.size());
  EXPECT_FALSE(warm.interrupted);
  usize from_cache = 0;
  for (usize i = 0; i < seeds.size(); ++i) {
    const campaign::JobStats& stats = warm.stats.at(i);
    EXPECT_TRUE(stats.done) << stats.label;
    const u64 spec = service::golden_spec_hash(seeds[i]);
    const auto journaled = journaled_digest.find(spec);
    if (journaled != journaled_digest.end()) {
      ++from_cache;
      EXPECT_TRUE(stats.from_cache) << stats.label;
      EXPECT_EQ(stats.digest, journaled->second) << stats.label;
    }
  }
  EXPECT_EQ(from_cache, journaled_digest.size());
  EXPECT_EQ(warm.totals.dedup_hits, journaled_digest.size());
  EXPECT_EQ(live.server.counters().jobs_done, seeds.size() - done_jobs);

  live.server.stop();
  ::unlink(journal_path.c_str());
  ::unlink(cache_path.c_str());
}

}  // namespace
}  // namespace adriatic
