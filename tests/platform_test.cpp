// Architecture-template tests (paper Fig. 3's "architecture templates"),
// including the bridge decl and multi-DRCF configuration-memory contention.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "netlist/elaborate.hpp"
#include "platform/templates.hpp"
#include "transform/transform.hpp"

namespace adriatic::platform {
namespace {

using namespace kern::literals;

TEST(Platform, DefaultTemplateIsValidAndBuilds) {
  auto d = make_soc_platform();
  EXPECT_TRUE(d.validate().empty());
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  EXPECT_NO_THROW(e.get_bus(PlatformNames::kBus));
  EXPECT_NO_THROW(e.get_memory(PlatformNames::kRam));
  EXPECT_NO_THROW(e.get_irq(PlatformNames::kIrq));
}

TEST(Platform, OptionsAddComponents) {
  PlatformOptions opt;
  opt.dedicated_config_link = true;
  opt.peripheral_bus = true;
  opt.dma = true;
  auto d = make_soc_platform(opt);
  EXPECT_TRUE(d.validate().empty()) << d.validate()[0];
  EXPECT_TRUE(d.contains(PlatformNames::kCfgLink));
  EXPECT_TRUE(d.contains(PlatformNames::kPeriphBus));
  EXPECT_TRUE(d.contains(PlatformNames::kBridge));
  EXPECT_TRUE(d.contains(PlatformNames::kDma));
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  EXPECT_NO_THROW(e.get_link(PlatformNames::kCfgLink));
}

TEST(Platform, BridgeDeclForwardsAcrossBuses) {
  PlatformOptions opt;
  opt.peripheral_bus = true;
  auto d = make_soc_platform(opt);
  // A memory on the peripheral bus, reachable through the bridge window.
  netlist::MemoryDecl pm;
  pm.low = 0x10;
  pm.words = 64;
  pm.bus = PlatformNames::kPeriphBus;
  d.add("periph_mem", pm);
  add_software(d, [](soc::Cpu& c) {
    c.write(PlatformMap::kPeriphWindow + 0x10, 1234);
    EXPECT_EQ(c.read(PlatformMap::kPeriphWindow + 0x10), 1234);
  });
  ASSERT_TRUE(d.validate().empty());
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  EXPECT_TRUE(e.get_processor(PlatformNames::kCpu).finished());
  EXPECT_EQ(e.get_memory("periph_mem").peek(0x10), 1234);
}

TEST(Platform, BridgeValidation) {
  netlist::Design d;
  d.add("bus", netlist::BusDecl{});
  netlist::BridgeDecl b;
  b.low = 10;
  b.high = 5;  // inverted
  b.upstream_bus = "bus";
  b.downstream_bus = "bus";  // loopback
  d.add("bad_bridge", b);
  const auto problems = d.validate();
  EXPECT_EQ(problems.size(), 2u);
}

TEST(Platform, AcceleratorSlotsAllocateAndWireIrqs) {
  auto d = make_soc_platform();
  const auto b0 = add_accelerator(d, "crc", accel::make_crc_spec());
  const auto b1 = add_accelerator(d, "quant", accel::make_quant_spec(75));
  const auto b2 = add_accelerator(d, "fir",
                                  accel::make_fir_spec({1 << 15}));
  EXPECT_EQ(b0, 0x100u);
  EXPECT_EQ(b1, 0x200u);
  EXPECT_EQ(b2, 0x300u);
  EXPECT_THROW(add_accelerator(d, "overflow", accel::make_crc_spec()),
               std::out_of_range);
  const auto* irq = d.get_if<netlist::IrqControllerDecl>(PlatformNames::kIrq);
  ASSERT_NE(irq, nullptr);
  ASSERT_EQ(irq->lines.size(), 3u);
  EXPECT_EQ(irq->lines[1].second, "quant");
  EXPECT_TRUE(d.validate().empty());
}

TEST(Platform, FullFlowOnTemplate) {
  // Template -> accelerators -> software -> transform -> run.
  auto d = make_soc_platform();
  add_accelerator(d, "crc", accel::make_crc_spec());
  add_accelerator(d, "quant", accel::make_quant_spec(75));
  add_software(d, [](soc::Cpu& c) {
    std::vector<bus::word> data(32, 120);
    c.burst_write(PlatformMap::kRam, data);
    for (const bus::addr_t base : {0x100u, 0x200u}) {
      c.write(base + soc::HwAccel::kSrc, PlatformMap::kRam);
      c.write(base + soc::HwAccel::kDst, PlatformMap::kRam + 0x100);
      c.write(base + soc::HwAccel::kLen, 32);
      c.write(base + soc::HwAccel::kCtrl, 1);
      c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   100_ns);
      c.write(base + soc::HwAccel::kStatus, 0);
    }
  });
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = PlatformNames::kCfg;
  const std::vector<std::string> candidates{"crc", "quant"};
  ASSERT_TRUE(transform::transform_to_drcf(d, candidates, opt).ok);
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  EXPECT_TRUE(e.get_processor(PlatformNames::kCpu).finished());
  EXPECT_EQ(e.get_drcf("drcf1").stats().switches, 2u);
}

TEST(Platform, TwoDrcfsShareConfigMemory) {
  // Two independent fabrics fetching from the same configuration memory:
  // their loaders contend on the bus but must not interfere functionally.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory cfg_mem(top, "cfg", 0x100000, 4096);
  b.bind_slave(cfg_mem);
  mem::Memory ram(top, "ram", 0x1000, 512);
  b.bind_slave(ram);

  soc::HwAccel a1(top, "a1", 0x100, accel::make_crc_spec());
  soc::HwAccel a2(top, "a2", 0x200, accel::make_crc_spec());
  a1.mst_port.bind(b);
  a2.mst_port.bind(b);
  drcf::Drcf f1(top, "drcf_a", {});
  drcf::Drcf f2(top, "drcf_b", {});
  f1.add_context(a1, {.config_address = 0x100000, .size_words = 512});
  f2.add_context(a2, {.config_address = 0x100400, .size_words = 512});
  f1.mst_port.bind(b);
  f2.mst_port.bind(b);
  b.bind_slave(f1);
  b.bind_slave(f2);

  int done = 0;
  auto driver = [&](bus::addr_t base) {
    return [&, base] {
      bus::word w = 0x1000;
      b.write(base + soc::HwAccel::kSrc, &w);
      w = 0x1040;
      b.write(base + soc::HwAccel::kDst, &w);
      w = 8;
      b.write(base + soc::HwAccel::kLen, &w);
      w = 1;
      b.write(base + soc::HwAccel::kCtrl, &w);
      ++done;
    };
  };
  top.spawn_thread("m1", driver(0x100));
  top.spawn_thread("m2", driver(0x200));
  sim.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(f1.stats().switches, 1u);
  EXPECT_EQ(f2.stats().switches, 1u);
  EXPECT_EQ(a1.stats().invocations, 1u);
  EXPECT_EQ(a2.stats().invocations, 1u);
  // Both loaders really moved their bitstreams over the shared bus.
  EXPECT_EQ(cfg_mem.stats().reads, 1024u);
}

}  // namespace
}  // namespace adriatic::platform
