// MorphoSys substrate tests: RC array semantics, the three interconnect
// layers, the assembler, and the double-context-plane overlap property.
#include <gtest/gtest.h>

#include "morphosys/morphosys_lib.hpp"

namespace adriatic::morphosys {
namespace {

Context broadcast_all(ContextWord w) {
  Context c;
  c.rows.fill(w);
  return c;
}

TEST(RcArrayTest, AddImmediateAllCells) {
  RcArray a;
  FrameBuffer fb;
  ContextWord w;
  w.op = RcOp::kAdd;
  w.src_a = MuxSel::kReg0;
  w.src_b = MuxSel::kImm;
  w.imm = 7;
  w.dst_reg = 0;
  const auto ctx = broadcast_all(w);
  a.step(ctx, BroadcastMode::kRow, fb, 0, 0);
  a.step(ctx, BroadcastMode::kRow, fb, 0, 0);
  for (usize r = 0; r < kArrayDim; ++r)
    for (usize c = 0; c < kArrayDim; ++c)
      EXPECT_EQ(a.cell(r, c).regs[0], 14);
  EXPECT_EQ(a.cycles_executed(), 2u);
  EXPECT_EQ(a.active_cell_ops(), 2u * kArrayCells);
}

TEST(RcArrayTest, FrameBufferStreaming) {
  RcArray a;
  FrameBuffer fb(512);
  for (usize i = 0; i < kArrayCells; ++i)
    fb.write(i, static_cast<i16>(i * 2));
  ContextWord w;
  w.op = RcOp::kMov;
  w.src_a = MuxSel::kFrameBuf;
  w.dst_reg = 1;
  w.write_fb = false;
  a.step(broadcast_all(w), BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(a.cell(0, 0).regs[1], 0);
  EXPECT_EQ(a.cell(0, 3).regs[1], 6);
  EXPECT_EQ(a.cell(7, 7).regs[1], 126);
}

TEST(RcArrayTest, WriteBackToFrameBuffer) {
  RcArray a;
  FrameBuffer fb(512);
  for (usize i = 0; i < kArrayCells; ++i) fb.write(i, static_cast<i16>(i));
  ContextWord w;
  w.op = RcOp::kAdd;
  w.src_a = MuxSel::kFrameBuf;
  w.src_b = MuxSel::kImm;
  w.imm = 100;
  w.write_fb = true;
  a.step(broadcast_all(w), BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(fb.read(0), 100);
  EXPECT_EQ(fb.read(63), 163);
}

TEST(RcArrayTest, MeshLayerMovesNeighborOutputs) {
  RcArray a;
  FrameBuffer fb;
  // Cycle 1: every cell outputs its column index.
  ContextWord init;
  init.op = RcOp::kMov;
  init.src_a = MuxSel::kFrameBuf;
  for (usize i = 0; i < kArrayCells; ++i)
    fb.write(i, static_cast<i16>(i % kArrayDim));
  a.step(broadcast_all(init), BroadcastMode::kRow, fb, 0, 0);
  // Cycle 2: read the west neighbour.
  ContextWord west;
  west.op = RcOp::kMov;
  west.src_a = MuxSel::kWest;
  west.dst_reg = 2;
  a.step(broadcast_all(west), BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(a.cell(0, 1).regs[2], 0);
  EXPECT_EQ(a.cell(3, 5).regs[2], 4);
  EXPECT_EQ(a.cell(2, 0).regs[2], 7);  // torus wrap
}

TEST(RcArrayTest, QuadrantRowLayer) {
  RcArray a;
  FrameBuffer fb;
  ContextWord init;
  init.op = RcOp::kMov;
  init.src_a = MuxSel::kFrameBuf;
  for (usize i = 0; i < kArrayCells; ++i) fb.write(i, static_cast<i16>(i));
  a.step(broadcast_all(init), BroadcastMode::kRow, fb, 0, 0);
  // Every cell reads lane 2 of its row quadrant.
  ContextWord lane;
  lane.op = RcOp::kMov;
  lane.src_a = MuxSel::kRowQuad;
  lane.imm = 2;
  lane.dst_reg = 3;
  a.step(broadcast_all(lane), BroadcastMode::kRow, fb, 0, 0);
  // Row 0, left quadrant lane 2 = previous output of cell (0,2) = 2.
  EXPECT_EQ(a.cell(0, 0).regs[3], 2);
  EXPECT_EQ(a.cell(0, 1).regs[3], 2);
  // Right quadrant of row 0: lane 2 of cols 4..7 = cell (0,6) = 6.
  EXPECT_EQ(a.cell(0, 5).regs[3], 6);
  // Row 3: 3*8 + 2 = 26 (left), 3*8+6 = 30 (right).
  EXPECT_EQ(a.cell(3, 0).regs[3], 26);
  EXPECT_EQ(a.cell(3, 7).regs[3], 30);
}

TEST(RcArrayTest, InterQuadrantExpressLane) {
  RcArray a;
  FrameBuffer fb;
  ContextWord init;
  init.op = RcOp::kMov;
  init.src_a = MuxSel::kFrameBuf;
  for (usize i = 0; i < kArrayCells; ++i) fb.write(i, static_cast<i16>(i));
  a.step(broadcast_all(init), BroadcastMode::kRow, fb, 0, 0);
  ContextWord x;
  x.op = RcOp::kMov;
  x.src_a = MuxSel::kXQuad;
  x.dst_reg = 1;
  a.step(broadcast_all(x), BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(a.cell(0, 0).regs[1], 4);  // (0,4)
  EXPECT_EQ(a.cell(0, 5).regs[1], 1);  // (0,1)
}

TEST(RcArrayTest, MacAccumulates) {
  RcArray a;
  FrameBuffer fb;
  ContextWord w;
  w.op = RcOp::kMac;
  w.src_a = MuxSel::kImm;
  w.src_b = MuxSel::kImm;  // imm * imm added to reg3
  w.imm = 3;
  w.dst_reg = 3;
  const auto ctx = broadcast_all(w);
  for (int i = 0; i < 4; ++i) a.step(ctx, BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(a.cell(4, 4).regs[3], 36);  // 4 * 9
}

TEST(RcArrayTest, SaturationArithmetic) {
  RcArray a;
  FrameBuffer fb;
  ContextWord w;
  w.op = RcOp::kMul;
  w.src_a = MuxSel::kImm;
  w.src_b = MuxSel::kImm;
  w.imm = 30000;
  w.dst_reg = 0;
  a.step(broadcast_all(w), BroadcastMode::kRow, fb, 0, 0);
  EXPECT_EQ(a.cell(0, 0).regs[0], 32767);  // saturated
}

TEST(RcArrayTest, ColumnBroadcastMode) {
  RcArray a;
  FrameBuffer fb;
  Context ctx;  // column c adds c (via per-group imm)
  for (usize c = 0; c < kArrayDim; ++c) {
    ctx.rows[c].op = RcOp::kAdd;
    ctx.rows[c].src_a = MuxSel::kReg0;
    ctx.rows[c].src_b = MuxSel::kImm;
    ctx.rows[c].imm = static_cast<i16>(c);
    ctx.rows[c].dst_reg = 0;
  }
  a.step(ctx, BroadcastMode::kColumn, fb, 0, 0);
  EXPECT_EQ(a.cell(5, 3).regs[0], 3);
  EXPECT_EQ(a.cell(2, 7).regs[0], 7);
}

// ---------------------------------------------------------------------------

TEST(AssemblerTest, BasicProgram) {
  const auto prog = assemble(R"(
    ; a comment
    ADDI r1, r0, 10
    loop:
    ADDI r1, r1, -1
    BNE  r1, r0, loop
    HALT
  )");
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog[0].op, Opcode::kAddi);
  EXPECT_EQ(prog[2].op, Opcode::kBne);
  EXPECT_EQ(prog[2].target, 1u);
  EXPECT_EQ(prog[3].op, Opcode::kHalt);
}

TEST(AssemblerTest, Errors) {
  EXPECT_THROW(assemble("BOGUS r1"), std::invalid_argument);
  EXPECT_THROW(assemble("ADDI r1, r0"), std::invalid_argument);
  EXPECT_THROW(assemble("ADDI r99, r0, 1"), std::invalid_argument);
  EXPECT_THROW(assemble("JMP nowhere"), std::invalid_argument);
  EXPECT_THROW(assemble("x:\nx:\nHALT"), std::invalid_argument);
  EXPECT_THROW(assemble("RAMODE diag"), std::invalid_argument);
  EXPECT_THROW(assemble("ADDI r1, r0, zz"), std::invalid_argument);
}

TEST(MachineTest, RiscLoopRuns) {
  Machine m;
  const auto prog = assemble(R"(
    ADDI r1, r0, 0     ; acc
    ADDI r2, r0, 10    ; count
    loop:
    ADD  r1, r1, r2
    ADDI r2, r2, -1
    BNE  r2, r0, loop
    ADDI r3, r0, 100
    STW  r3, 0, r1
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  EXPECT_EQ(m.mem_read(100), 55);  // sum 1..10
  EXPECT_GT(m.stats().risc_instructions, 30u);
}

TEST(MachineTest, DmaRoundTrip) {
  Machine m;
  std::vector<i32> data{5, 6, 7, 8};
  m.mem_load(200, data);
  const auto prog = assemble(R"(
    ADDI r1, r0, 200   ; src
    ADDI r2, r0, 16    ; fb addr
    DMALD r1, r2, 4
    WAITDMA
    ADDI r3, r0, 300   ; dst
    DMAST r2, r3, 4
    WAITDMA
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  for (usize i = 0; i < 4; ++i)
    EXPECT_EQ(m.mem_read(300 + i), data[i]);
  EXPECT_GT(m.stats().dma_busy_cycles, 0u);
}

TEST(MachineTest, ArrayKernelVectorScale) {
  // Scale 64 values by 3 using one context: out = fb * 3, written back.
  Machine m;
  std::vector<i32> input(64);
  for (usize i = 0; i < 64; ++i) input[i] = static_cast<i32>(i);
  m.mem_load(0x100, input);

  ContextWord w;
  w.op = RcOp::kMul;
  w.src_a = MuxSel::kFrameBuf;
  w.src_b = MuxSel::kImm;
  w.imm = 3;
  w.write_fb = true;
  Context ctx;
  ctx.rows.fill(w);
  m.store_context_image(0x800, ctx);

  const auto prog = assemble(R"(
    ADDI r1, r0, 0x100
    ADDI r2, r0, 0      ; fb base
    DMALD r1, r2, 64
    WAITDMA
    ADDI r4, r0, 0x800
    DMACL 0, r4, 1      ; one context into plane 0
    WAITDMA
    RAMODE row
    RAEXEC 0, 0, r2, 1  ; one SIMD cycle over 64 cells
    ADDI r5, r0, 0x200
    DMAST r2, r5, 64
    WAITDMA
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  for (usize i = 0; i < 64; ++i)
    EXPECT_EQ(m.mem_read(0x200 + i), static_cast<i32>(i * 3)) << i;
  EXPECT_EQ(m.stats().contexts_loaded, 1u);
  EXPECT_EQ(m.stats().ra_cycles, 1u);
  EXPECT_NEAR(m.array_utilization(), 1.0, 1e-9);
}

TEST(MachineTest, BackgroundReloadOverlaps) {
  // Load plane 1 while executing from plane 0: no RA stalls, overlap > 0.
  Machine m;
  ContextWord w;
  w.op = RcOp::kAdd;
  w.src_a = MuxSel::kReg0;
  w.src_b = MuxSel::kImm;
  w.imm = 1;
  Context ctx;
  ctx.rows.fill(w);
  for (usize i = 0; i < 8; ++i)
    m.store_context_image(0x800 + i * 8, ctx);

  const auto prog = assemble(R"(
    ADDI r4, r0, 0x800
    DMACL 0, r4, 1
    WAITDMA
    DMACL 1, r4, 8      ; reload the OTHER plane...
    RAEXEC 0, 0, r0, 60 ; ...while executing from plane 0
    WAITDMA
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  EXPECT_EQ(m.stats().ra_stall_cycles, 0u);
  EXPECT_GT(m.stats().overlapped_cycles, 0u);
  EXPECT_EQ(m.stats().contexts_loaded, 9u);
}

TEST(MachineTest, SamePlaneReloadStalls) {
  Machine m;
  ContextWord w;
  w.op = RcOp::kAdd;
  w.src_a = MuxSel::kReg0;
  w.src_b = MuxSel::kImm;
  w.imm = 1;
  Context ctx;
  ctx.rows.fill(w);
  for (usize i = 0; i < 8; ++i) m.store_context_image(0x800 + i * 8, ctx);

  const auto prog = assemble(R"(
    ADDI r4, r0, 0x800
    DMACL 0, r4, 8      ; load plane 0...
    RAEXEC 0, 0, r0, 4  ; ...and immediately execute from plane 0: stall
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  EXPECT_GT(m.stats().ra_stall_cycles, 0u);
}

TEST(MachineTest, ContextImageRoundTrip) {
  Machine m;
  Context ctx;
  for (usize r = 0; r < 8; ++r) {
    ctx.rows[r].op = RcOp::kMac;
    ctx.rows[r].src_a = MuxSel::kNorth;
    ctx.rows[r].src_b = MuxSel::kFrameBuf;
    ctx.rows[r].dst_reg = 3;
    ctx.rows[r].imm = static_cast<i16>(-5 - static_cast<i16>(r));
    ctx.rows[r].write_fb = (r % 2) == 0;
  }
  m.store_context_image(64, ctx);
  const auto prog = assemble(R"(
    ADDI r4, r0, 64
    DMACL 1, r4, 1
    WAITDMA
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  const Context& got = m.context_memory().at(1, 0);
  for (usize r = 0; r < 8; ++r) {
    EXPECT_EQ(got.rows[r].op, ctx.rows[r].op);
    EXPECT_EQ(got.rows[r].src_a, ctx.rows[r].src_a);
    EXPECT_EQ(got.rows[r].src_b, ctx.rows[r].src_b);
    EXPECT_EQ(got.rows[r].dst_reg, ctx.rows[r].dst_reg);
    EXPECT_EQ(got.rows[r].imm, ctx.rows[r].imm);
    EXPECT_EQ(got.rows[r].write_fb, ctx.rows[r].write_fb);
  }
}

// ---------------------------------------------------------------------------
// Kernel library (context-program builders).

TEST(KernelsTest, ScaleShiftTile) {
  Machine m;
  std::vector<i32> in(192);
  for (usize i = 0; i < in.size(); ++i) in[i] = static_cast<i32>(i);
  m.mem_load(0x100, in);
  ASSERT_TRUE(run_tile_kernel(m, scale_shift_contexts(12, 2), 0x100, 0x900,
                              in.size()));
  for (usize i = 0; i < in.size(); ++i)
    EXPECT_EQ(m.mem_read(0x900 + i), (static_cast<i32>(i) * 12) >> 2) << i;
}

TEST(KernelsTest, AddBiasTile) {
  Machine m;
  std::vector<i32> in(64, 100);
  m.mem_load(0x100, in);
  ASSERT_TRUE(run_tile_kernel(m, add_bias_contexts(-30), 0x100, 0x900, 64));
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(m.mem_read(0x900 + i), 70);
}

TEST(KernelsTest, AbsDiffAgainstRegister) {
  // Preload reg1 of every cell with 50 via an add-bias pass into registers,
  // then stream and take |x - 50|.
  Machine m;
  std::vector<i32> in(64);
  for (usize i = 0; i < 64; ++i) in[i] = static_cast<i32>(i * 2);
  m.mem_load(0x100, in);
  // Seed reg1: context that moves an immediate into reg1.
  ContextWord seed;
  seed.op = RcOp::kMov;
  seed.src_a = MuxSel::kImm;
  seed.imm = 50;
  seed.dst_reg = 1;
  Context seed_ctx;
  seed_ctx.rows.fill(seed);
  std::vector<Context> prog{seed_ctx, absdiff_contexts()[0]};
  ASSERT_TRUE(run_tile_kernel(m, prog, 0x100, 0x900, 64));
  for (usize i = 0; i < 64; ++i)
    EXPECT_EQ(m.mem_read(0x900 + i), std::abs(static_cast<i32>(i * 2) - 50));
}

TEST(KernelsTest, ColumnMacUsesColumnBroadcast) {
  Machine m;
  std::vector<i32> in(64, 1);
  m.mem_load(0x100, in);
  std::array<i16, 8> coeffs{1, 2, 3, 4, 5, 6, 7, 8};
  const auto contexts = column_mac_contexts(coeffs);
  for (usize i = 0; i < contexts.size(); ++i)
    m.store_context_image(0x6000 + i * 8, contexts[i]);
  const auto prog = assemble(R"(
    ADDI r1, r0, 0x100
    ADDI r2, r0, 0
    ADDI r4, r0, 0x6000
    DMACL 0, r4, 1
    DMALD r1, r2, 64
    WAITDMA
    RAMODE col
    RAEXEC 0, 0, r2, 1
    RAEXEC 0, 0, r2, 1   ; accumulate twice
    HALT
  )");
  ASSERT_TRUE(m.run(prog));
  // Cell (r,c): reg3 = 2 * (1 * coeff[c]).
  EXPECT_EQ(m.array().cell(0, 0).regs[3], 2);
  EXPECT_EQ(m.array().cell(3, 4).regs[3], 10);
  EXPECT_EQ(m.array().cell(7, 7).regs[3], 16);
}

TEST(KernelsTest, DriverAsmShape) {
  const auto s = tile_driver_asm(0x100, 0x900, 128, 0x6000, 1, 2);
  EXPECT_NE(s.find("DMACL 1, r4, 2"), std::string::npos);
  EXPECT_NE(s.find("RAEXEC 1, 0, r2, 1"), std::string::npos);
  EXPECT_NE(s.find("RAEXEC 1, 1, r2, 1"), std::string::npos);
  EXPECT_NE(s.find("DMAST r2, r5, 128"), std::string::npos);
  // 128 words = 2 chunks.
  EXPECT_NE(s.find("ADDI r6, r0, 2"), std::string::npos);
  EXPECT_NO_THROW(assemble(s));
}

TEST(MachineTest, CycleBudgetExhaustion) {
  Machine m;
  const auto prog = assemble(R"(
    loop:
    JMP loop
  )");
  EXPECT_FALSE(m.run(prog, 1000));
  EXPECT_GE(m.stats().cycles, 1000u);
}

TEST(MachineTest, TooManyContextsThrows) {
  Machine m;
  const auto prog = assemble(R"(
    ADDI r4, r0, 0
    DMACL 0, r4, 17
    HALT
  )");
  EXPECT_THROW(m.run(prog), std::invalid_argument);
}

}  // namespace
}  // namespace adriatic::morphosys
