// Scheduler-semantics tests: events, processes, delta cycles, timing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/kernel.hpp"

namespace adriatic::kern {
namespace {

using namespace adriatic::kern::literals;

TEST(Time, UnitsAndArithmetic) {
  EXPECT_EQ(Time::ns(1).picoseconds(), 1000u);
  EXPECT_EQ(Time::us(1), Time::ns(1000));
  EXPECT_EQ(Time::ms(1), Time::us(1000));
  EXPECT_EQ(Time::sec(1), Time::ms(1000));
  EXPECT_EQ((Time::ns(3) + Time::ns(4)).picoseconds(), 7000u);
  EXPECT_EQ(Time::ns(10) - Time::ns(4), Time::ns(6));
  EXPECT_EQ(Time::ns(3) * 4, Time::ns(12));
  EXPECT_EQ(Time::ns(10) / Time::ns(3), 3u);
  EXPECT_LT(Time::ns(1), Time::us(1));
  EXPECT_TRUE(Time::zero().is_zero());
}

TEST(Time, Literals) {
  EXPECT_EQ(5_ns, Time::ns(5));
  EXPECT_EQ(2_us, Time::us(2));
  EXPECT_EQ(1_ms, Time::ms(1));
  EXPECT_EQ(7_ps, Time::ps(7));
}

TEST(Time, Str) {
  EXPECT_EQ(Time::zero().str(), "0 s");
  EXPECT_EQ(Time::ns(5).str(), "5 ns");
  EXPECT_EQ(Time::us(3).str(), "3 us");
  EXPECT_EQ(Time::ps(1500).str(), "1500 ps");
  EXPECT_EQ(Time::sec(2).str(), "2 s");
}

TEST(Object, HierarchyNaming) {
  Simulation sim;
  Module top(sim, "top");
  Module child(top, "child");
  Module grand(child, "leaf");
  EXPECT_EQ(top.name(), "top");
  EXPECT_EQ(child.name(), "top.child");
  EXPECT_EQ(grand.name(), "top.child.leaf");
  EXPECT_EQ(grand.basename(), "leaf");
  EXPECT_EQ(child.parent(), &top);
  EXPECT_EQ(sim.find_object("top.child.leaf"), &grand);
  EXPECT_EQ(sim.find_object("nope"), nullptr);
  ASSERT_EQ(top.children().size(), 1u);
  EXPECT_EQ(top.children()[0], &child);
}

TEST(Object, DuplicateNameThrows) {
  Simulation sim;
  Module top(sim, "top");
  Module a(top, "x");
  EXPECT_THROW(Module(top, "x"), std::invalid_argument);
}

TEST(Object, EmptyNameThrows) {
  Simulation sim;
  EXPECT_THROW(Module(sim, ""), std::invalid_argument);
}

TEST(Object, TopLevelList) {
  Simulation sim;
  Module a(sim, "a");
  Module b(sim, "b");
  auto tops = sim.top_level_objects();
  EXPECT_EQ(tops.size(), 2u);
}

// ---------------------------------------------------------------------------

TEST(Scheduler, ThreadRunsAtInitialization) {
  Simulation sim;
  Module top(sim, "top");
  bool ran = false;
  top.spawn_thread("t", [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, DontInitializeSkipsFirstRun) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  int runs = 0;
  SpawnOptions opts;
  opts.sensitivity = {&ev};
  opts.dont_initialize = true;
  top.spawn_method("m", [&] { ++runs; }, opts);
  sim.run();
  EXPECT_EQ(runs, 0);
  ev.notify(Time::ns(1));
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, WaitTimeAdvancesClock) {
  Simulation sim;
  Module top(sim, "top");
  std::vector<u64> stamps;
  top.spawn_thread("t", [&] {
    stamps.push_back(sim.now().picoseconds());
    wait(Time::ns(10));
    stamps.push_back(sim.now().picoseconds());
    wait(Time::ns(5));
    stamps.push_back(sim.now().picoseconds());
  });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0u);
  EXPECT_EQ(stamps[1], 10000u);
  EXPECT_EQ(stamps[2], 15000u);
}

TEST(Scheduler, RunDurationBounds) {
  Simulation sim;
  Module top(sim, "top");
  int ticks = 0;
  top.spawn_thread("t", [&] {
    for (;;) {
      wait(Time::ns(10));
      ++ticks;
    }
  });
  EXPECT_EQ(sim.run(Time::ns(35)), StopReason::kTimeLimit);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.now(), Time::ns(35));
  // Resume where we left off.
  EXPECT_EQ(sim.run(Time::ns(10)), StopReason::kTimeLimit);
  EXPECT_EQ(ticks, 4);
}

TEST(Scheduler, ExplicitStop) {
  Simulation sim;
  Module top(sim, "top");
  int ticks = 0;
  top.spawn_thread("t", [&] {
    for (;;) {
      wait(Time::ns(1));
      if (++ticks == 5) sim.stop();
    }
  });
  EXPECT_EQ(sim.run(), StopReason::kExplicitStop);
  EXPECT_EQ(ticks, 5);
}

TEST(Scheduler, TwoThreadsInterleaveByTime) {
  Simulation sim;
  Module top(sim, "top");
  std::vector<int> order;
  top.spawn_thread("a", [&] {
    wait(Time::ns(10));
    order.push_back(1);
    wait(Time::ns(20));  // t=30
    order.push_back(3);
  });
  top.spawn_thread("b", [&] {
    wait(Time::ns(20));
    order.push_back(2);
    wait(Time::ns(20));  // t=40
    order.push_back(4);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Event, DeltaNotifyWakesWaiter) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  bool woke = false;
  top.spawn_thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  top.spawn_thread("notifier", [&] { ev.notify_delta(); });
  sim.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(sim.now(), Time::zero());  // all in delta cycles at t=0
}

TEST(Event, TimedNotify) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  Time woke_at;
  top.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  ev.notify(Time::ns(42));
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(42));
}

TEST(Event, EarlierNotificationWins) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  std::vector<u64> wakes;
  top.spawn_thread("waiter", [&] {
    for (int i = 0; i < 1; ++i) {
      wait(ev);
      wakes.push_back(sim.now().picoseconds());
    }
  });
  ev.notify(Time::ns(100));
  ev.notify(Time::ns(10));  // overrides: earlier
  sim.run();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 10000u);
}

TEST(Event, LaterNotificationDiscarded) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  Time woke_at;
  top.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  ev.notify(Time::ns(10));
  ev.notify(Time::ns(100));  // discarded: later than pending
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(10));
  EXPECT_FALSE(ev.has_pending());
}

TEST(Event, CancelPendingNotification) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  bool woke = false;
  top.spawn_thread("waiter", [&] {
    wait(ev);
    woke = true;
  });
  ev.notify(Time::ns(10));
  ev.cancel();
  sim.run();
  EXPECT_FALSE(woke);
  // The waiter is starved: visible in the diagnostic list.
  EXPECT_EQ(sim.starved_processes().size(), 1u);
}

TEST(Event, DestroyAfterCancelledDeltaNotification) {
  // Regression: the delta queue removes entries lazily, so after
  // notify_delta() + cancel() a stale slot still names the event while
  // pending_ is back to kNone. Destroying the event in that window must
  // purge the slot, or the next delta dispatch dereferences freed memory.
  Simulation sim;
  auto ev = std::make_unique<Event>(sim, "ev");
  ev->notify_delta();
  ev->cancel();
  ev.reset();
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
}

TEST(Event, DestroyAfterImmediateNotifyOverridingDelta) {
  Simulation sim;
  Module top(sim, "top");
  auto ev = std::make_unique<Event>(sim, "ev");
  bool woke = false;
  top.spawn_thread("t", [&] {
    ev->notify_delta();
    ev->notify();  // immediate: fires now, leaves the queued slot stale
    ev.reset();    // destroyed with a stale delta-queue slot outstanding
    wait(Time::ns(1));
    woke = true;
  });
  sim.run();
  EXPECT_TRUE(woke);
}

TEST(Event, LocalEventOfFinishingThreadDoesNotDangle) {
  // The review-found shape: an Event local to a thread process dies when
  // the thread returns, mid-simulation, with its retracted delta
  // notification still queued for this very delta round.
  Simulation sim;
  Module top(sim, "top");
  bool other_ran = false;
  top.spawn_thread("maker", [&] {
    Event local(sim, "local");
    local.notify_delta();
    local.cancel();
  });
  top.spawn_thread("other", [&] {
    wait(Time::ns(1));
    other_ran = true;
  });
  sim.run();
  EXPECT_TRUE(other_ran);
}

TEST(Event, DeltaOverridesTimed) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  Time woke_at = Time::max();
  top.spawn_thread("waiter", [&] {
    wait(ev);
    woke_at = sim.now();
  });
  top.spawn_thread("notifier", [&] {
    wait(Time::ns(5));
    ev.notify(Time::ns(50));  // pending timed at t=55
    ev.notify_delta();        // overrides: fires at t=5 (next delta)
  });
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(5));
}

TEST(Event, ImmediateNotifyWakesInSameEvaluation) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  u64 deltas_at_wake = 123456;
  top.spawn_thread("waiter", [&] {
    wait(ev);
    deltas_at_wake = sim.delta_count();
  });
  top.spawn_thread("notifier", [&] {
    wait(Time::ns(1));
    ev.notify();  // immediate
  });
  sim.run();
  EXPECT_NE(deltas_at_wake, 123456u);
}

TEST(Event, WaitWithTimeoutTimesOut) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  bool was_timeout = false;
  top.spawn_thread("waiter", [&] {
    wait(Time::ns(10), ev);
    was_timeout = timed_out();
  });
  sim.run();
  EXPECT_TRUE(was_timeout);
  EXPECT_EQ(sim.now(), Time::ns(10));
}

TEST(Event, WaitWithTimeoutEventWins) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  bool was_timeout = true;
  Time woke_at;
  top.spawn_thread("waiter", [&] {
    wait(Time::ns(100), ev);
    was_timeout = timed_out();
    woke_at = sim.now();
  });
  ev.notify(Time::ns(7));
  sim.run();
  EXPECT_FALSE(was_timeout);
  EXPECT_EQ(woke_at, Time::ns(7));
  // No stale timeout should fire later.
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  EXPECT_EQ(sim.now(), Time::ns(7));
}

TEST(Event, WaitAnyWakesOnFirst) {
  Simulation sim;
  Module top(sim, "top");
  Event a(sim, "a"), b(sim, "b");
  Time woke_at;
  top.spawn_thread("waiter", [&] {
    std::vector<Event*> evs{&a, &b};
    wait_any(evs);
    woke_at = sim.now();
  });
  a.notify(Time::ns(30));
  b.notify(Time::ns(10));
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(10));
}

TEST(Event, WaitAllNeedsEvery) {
  Simulation sim;
  Module top(sim, "top");
  Event a(sim, "a"), b(sim, "b"), c(sim, "c");
  Time woke_at;
  top.spawn_thread("waiter", [&] {
    std::vector<Event*> evs{&a, &b, &c};
    wait_all(evs);
    woke_at = sim.now();
  });
  a.notify(Time::ns(5));
  b.notify(Time::ns(15));
  c.notify(Time::ns(10));
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(15));
}

TEST(Process, TerminatedEventFires) {
  Simulation sim;
  Module top(sim, "top");
  bool joined = false;
  auto& worker = top.spawn_thread("worker", [&] { wait(Time::ns(10)); });
  top.spawn_thread("joiner", [&] {
    wait(worker.terminated_event());
    joined = true;
  });
  sim.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(worker.state(), Process::State::kTerminated);
}

TEST(Process, MethodStaticSensitivity) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  int count = 0;
  SpawnOptions opts;
  opts.sensitivity = {&ev};
  opts.dont_initialize = true;
  top.spawn_method("m", [&] { ++count; }, opts);
  ev.notify(Time::ns(1));
  sim.run();
  EXPECT_EQ(count, 1);
  ev.notify(Time::ns(1));
  sim.run();
  EXPECT_EQ(count, 2);
}

TEST(Process, MethodNextTriggerOverridesStatic) {
  Simulation sim;
  Module top(sim, "top");
  Event stat(sim, "stat"), dyn(sim, "dyn");
  std::vector<u64> runs;
  SpawnOptions opts;
  opts.sensitivity = {&stat};
  opts.dont_initialize = true;
  MethodProcess* mp = nullptr;
  auto& m = top.spawn_method(
      "m",
      [&] {
        runs.push_back(sim.now().picoseconds());
        if (runs.size() == 1) mp->next_trigger(dyn);
      },
      opts);
  mp = &m;
  stat.notify(Time::ns(1));   // first run at 1ns, arms next_trigger(dyn)
  stat.notify(Time::ns(2));   // discarded: pending earlier... use separate runs
  sim.run();
  stat.notify(Time::ns(1));   // at 2ns: should NOT trigger (dynamic override)
  sim.run();
  dyn.notify(Time::ns(1));    // at 3ns: triggers
  sim.run();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], 1000u);
  EXPECT_EQ(runs[1], 3000u);
}

TEST(Process, ThreadStaticSensitivityLoop) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  int wakes = 0;
  SpawnOptions opts;
  opts.sensitivity = {&ev};
  top.spawn_thread(
      "t",
      [&] {
        for (;;) {
          wait();  // static
          ++wakes;
        }
      },
      opts);
  ev.notify(Time::ns(1));
  sim.run();
  EXPECT_EQ(wakes, 1);
  ev.notify(Time::ns(1));
  ev.notify(Time::ns(1));  // same pending, single trigger
  sim.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Scheduler, DeltaCountAdvances) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  top.spawn_thread("t", [&] {
    for (int i = 0; i < 5; ++i) {
      ev.notify_delta();
      wait(ev);
    }
  });
  sim.run();
  EXPECT_GE(sim.delta_count(), 5u);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(Scheduler, ActivationsCounted) {
  Simulation sim;
  Module top(sim, "top");
  top.spawn_thread("t", [&] {
    for (int i = 0; i < 9; ++i) wait(Time::ns(1));
  });
  sim.run();
  EXPECT_GE(sim.activations(), 10u);
}

TEST(Scheduler, StarvedProcessesReported) {
  Simulation sim;
  Module top(sim, "top");
  Event never(sim, "never");
  top.spawn_thread("blocked", [&] { wait(never); });
  top.spawn_thread("fine", [&] { wait(Time::ns(1)); });
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
  auto starved = sim.starved_processes();
  ASSERT_EQ(starved.size(), 1u);
  EXPECT_EQ(starved[0]->basename(), "blocked");
}

TEST(Scheduler, WaitFromNonThreadThrows) {
  Simulation sim;
  Module top(sim, "top");
  bool threw = false;
  top.spawn_method("m", [&] {
    try {
      wait(Time::ns(1));
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  sim.run();
  EXPECT_TRUE(threw);
}

TEST(Scheduler, DynamicallySpawnedThreadRuns) {
  // sc_spawn-style: a running process creates a new thread mid-simulation.
  Simulation sim;
  Module top(sim, "top");
  Time child_ran_at = Time::max();
  top.spawn_thread("parent", [&] {
    wait(Time::ns(50));
    top.spawn_thread("child", [&] {
      wait(Time::ns(10));
      child_ran_at = sim.now();
    });
  });
  sim.run();
  EXPECT_EQ(child_ran_at, Time::ns(60));
}

TEST(Scheduler, DynamicSpawnHonoursDontInitialize) {
  Simulation sim;
  Module top(sim, "top");
  Event ev(sim, "ev");
  int runs = 0;
  top.spawn_thread("parent", [&] {
    wait(Time::ns(5));
    SpawnOptions opts;
    opts.sensitivity = {&ev};
    opts.dont_initialize = true;
    top.spawn_method("dyn", [&] { ++runs; }, opts);
    wait(Time::ns(5));     // the method must NOT have run yet
    EXPECT_EQ(runs, 0);
    ev.notify_delta();
  });
  sim.run();
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, DynamicallySpawnedModuleWithClockTicks) {
  // A whole sub-system (clock + counter) constructed mid-simulation.
  Simulation sim;
  Module top(sim, "top");
  std::unique_ptr<Clock> clk;
  std::unique_ptr<Module> sub;
  int ticks = 0;
  top.spawn_thread("builder", [&] {
    wait(Time::ns(100));
    clk = std::make_unique<Clock>(top, "late_clk", Time::ns(10));
    sub = std::make_unique<Module>(top, "late_mod");
    SpawnOptions opts;
    opts.sensitivity = {&clk->posedge_event()};
    opts.dont_initialize = true;
    sub->spawn_method("count", [&] { ++ticks; }, opts);
  });
  sim.run(Time::ns(200));
  EXPECT_GE(ticks, 9);
  EXPECT_LE(ticks, 11);
}

TEST(Port, UnboundPortFailsElaboration) {
  Simulation sim;
  Module top(sim, "top");
  Port<SignalInIf<int>> p(top, "p");
  EXPECT_THROW(sim.elaborate(), std::logic_error);
}

TEST(Port, OptionalPortPassesUnbound) {
  Simulation sim;
  Module top(sim, "top");
  Port<SignalInIf<int>> p(top, "p", /*min_bindings=*/0);
  EXPECT_NO_THROW(sim.elaborate());
  EXPECT_EQ(p.binding_count(), 0u);
}

TEST(Port, RecordsBindings) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s(top, "sig");
  Port<SignalInIf<int>> p(top, "p");
  p.bind(s);
  ASSERT_EQ(p.bound_channel_names().size(), 1u);
  EXPECT_EQ(p.bound_channel_names()[0], "top.sig");
  EXPECT_EQ(p.binding_count(), 1u);
}

TEST(Port, MultiportIndexing) {
  Simulation sim;
  Module top(sim, "top");
  Signal<int> s1(top, "s1"), s2(top, "s2");
  Port<SignalInIf<int>> p(top, "p");
  p.bind(s1);
  p.bind(s2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(&p[1], static_cast<SignalInIf<int>*>(&s2));
}

TEST(Port, UseBeforeBindThrows) {
  Simulation sim;
  Module top(sim, "top");
  Port<SignalInIf<int>> p(top, "p");
  EXPECT_THROW(p->read(), std::logic_error);
}

}  // namespace
}  // namespace adriatic::kern
