// Tests for the DRCF core: context scheduling, configuration bus traffic,
// suspension semantics, instrumentation, and the Sec. 5.4 deadlock case.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "util/random.hpp"

namespace adriatic::drcf {
namespace {

using namespace kern::literals;
using bus::BusStatus;

// A trivially observable slave: reads return (base_value + offset), writes
// are recorded.
class TestSlave : public kern::Module, public bus::BusSlaveIf {
 public:
  TestSlave(kern::Object& parent, std::string name, bus::addr_t low,
            bus::addr_t high, bus::word base_value)
      : Module(parent, std::move(name)),
        low_(low),
        high_(high),
        base_value_(base_value) {}

  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override { return high_; }

  bool read(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    *data = base_value_ + static_cast<bus::word>(add - low_);
    ++reads_;
    return true;
  }
  bool write(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    last_write_ = *data;
    ++writes_;
    return true;
  }

  u64 reads_ = 0;
  u64 writes_ = 0;
  bus::word last_write_ = 0;

 private:
  bus::addr_t low_;
  bus::addr_t high_;
  bus::word base_value_;
};

// Standard fixture: split-transaction bus, config memory at 0x10000,
// two candidate slaves wrapped into a DRCF.
struct DrcfFixture {
  explicit DrcfFixture(DrcfConfig cfg = make_default_cfg(),
                       bus::BusConfig bus_cfg = make_default_bus())
      : drcf_cfg(cfg),
        sys_bus(top, "bus", bus_cfg),
        cfg_mem(top, "cfg_mem", 0x10000, 4096),
        slave_a(top, "hwa", 0x100, 0x10F, 1000),
        slave_b(top, "hwb", 0x200, 0x20F, 2000),
        drcf(top, "drcf1", cfg) {
    ctx_a = drcf.add_context(slave_a, {.config_address = 0x10000,
                                       .size_words = 64,
                                       .extra_delay = kern::Time::zero(),
                                       .gates = 10'000});
    ctx_b = drcf.add_context(slave_b, {.config_address = 0x10400,
                                       .size_words = 64,
                                       .extra_delay = kern::Time::zero(),
                                       .gates = 10'000});
    drcf.mst_port.bind(sys_bus);
    sys_bus.bind_slave(cfg_mem);
    sys_bus.bind_slave(drcf);
  }

  static DrcfConfig make_default_cfg() {
    DrcfConfig c;
    c.technology = varicore_like();
    c.technology.per_switch_overhead = kern::Time::zero();  // pure bus cost
    return c;
  }
  static bus::BusConfig make_default_bus() {
    bus::BusConfig b;
    b.cycle_time = 10_ns;
    b.split_transactions = true;
    return b;
  }

  kern::Simulation sim;
  kern::Module top{sim, "top"};
  DrcfConfig drcf_cfg;
  bus::Bus sys_bus;
  mem::Memory cfg_mem;
  TestSlave slave_a;
  TestSlave slave_b;
  Drcf drcf;
  usize ctx_a = 0;
  usize ctx_b = 0;
};

TEST(SlotTableTest, SingleSlotReplaces) {
  SlotTable t(1, ReplacementPolicy::kLru);
  EXPECT_FALSE(t.lookup(0).has_value());
  auto v = t.choose(0);
  EXPECT_EQ(v.slot, 0u);
  EXPECT_FALSE(v.evicted.has_value());
  t.install(0, 0);
  EXPECT_EQ(t.lookup(0), 0u);
  v = t.choose(1);
  EXPECT_EQ(v.slot, 0u);
  ASSERT_TRUE(v.evicted.has_value());
  EXPECT_EQ(*v.evicted, 0u);
}

TEST(SlotTableTest, PrefersFreeSlot) {
  SlotTable t(3, ReplacementPolicy::kLru);
  t.install(0, 10);
  const auto v = t.choose(11);
  EXPECT_EQ(v.slot, 1u);
  EXPECT_FALSE(v.evicted.has_value());
}

TEST(SlotTableTest, LruEvictsColdest) {
  SlotTable t(2, ReplacementPolicy::kLru);
  t.install(0, 10);
  t.install(1, 11);
  t.touch(0);  // 10 is now warmer than 11
  const auto v = t.choose(12);
  EXPECT_EQ(v.slot, 1u);
  EXPECT_EQ(*v.evicted, 11u);
}

TEST(SlotTableTest, FifoIgnoresTouches) {
  SlotTable t(2, ReplacementPolicy::kFifo);
  t.install(0, 10);
  t.install(1, 11);
  t.touch(0);
  const auto v = t.choose(12);
  EXPECT_EQ(v.slot, 0u);  // 10 installed first, evicted despite the touch
  EXPECT_EQ(*v.evicted, 10u);
}

TEST(SlotTableTest, MruEvictsWarmest) {
  SlotTable t(2, ReplacementPolicy::kMru);
  t.install(0, 10);
  t.install(1, 11);
  t.touch(0);
  const auto v = t.choose(12);
  EXPECT_EQ(v.slot, 0u);
  EXPECT_EQ(*v.evicted, 10u);
}

TEST(SlotTableTest, EvictFreesSlot) {
  SlotTable t(1, ReplacementPolicy::kLru);
  t.install(0, 5);
  t.evict(0);
  EXPECT_FALSE(t.lookup(5).has_value());
  EXPECT_FALSE(t.resident(0).has_value());
  EXPECT_THROW(SlotTable(0, ReplacementPolicy::kLru), std::invalid_argument);
}

TEST(TechnologyTest, PresetsAreOrdered) {
  const auto fine = virtex2pro_like();
  const auto embedded = varicore_like();
  const auto coarse = morphosys_like();
  // Configuration density: coarse grained needs far fewer bits per gate.
  EXPECT_GT(fine.bits_per_gate, embedded.bits_per_gate);
  EXPECT_GT(embedded.bits_per_gate, coarse.bits_per_gate);
  // MorphoSys has the double context plane.
  EXPECT_EQ(coarse.context_planes, 2u);
  EXPECT_EQ(fine.context_planes, 1u);
  // The paper's VariCore power figure.
  EXPECT_DOUBLE_EQ(embedded.uw_per_gate_mhz, 0.075);
}

TEST(TechnologyTest, ContextWordsScaleWithGates) {
  const auto t = varicore_like();
  EXPECT_EQ(t.context_words(0), 0u);
  const u64 w1 = t.context_words(1000);
  const u64 w2 = t.context_words(2000);
  EXPECT_NEAR(static_cast<double>(w2), 2.0 * static_cast<double>(w1), 2.0);
  // 1000 gates * 24 bits / 32 = 750 words.
  EXPECT_EQ(w1, 750u);
}

// ---------------------------------------------------------------------------

TEST(DrcfTest, FirstAccessLoadsContext) {
  DrcfFixture f;
  bus::word r = 0;
  f.top.spawn_thread("master", [&] {
    EXPECT_EQ(f.sys_bus.read(0x105, &r), BusStatus::kOk);
  });
  f.sim.run();
  EXPECT_EQ(r, 1005);
  EXPECT_EQ(f.drcf.stats().switches, 1u);
  EXPECT_EQ(f.drcf.stats().misses, 1u);
  EXPECT_EQ(f.drcf.stats().config_words_fetched, 64u);
  // The configuration reads really hit the memory model.
  EXPECT_EQ(f.cfg_mem.stats().reads, 64u);
  EXPECT_TRUE(f.drcf.is_resident(f.ctx_a));
}

TEST(DrcfTest, SecondAccessIsHit) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
    f.sys_bus.read(0x101, &r);
    f.sys_bus.read(0x102, &r);
  });
  f.sim.run();
  EXPECT_EQ(f.drcf.stats().switches, 1u);
  EXPECT_EQ(f.drcf.stats().hits, 2u);
  EXPECT_EQ(f.slave_a.reads_, 3u);
}

TEST(DrcfTest, PingPongReloadsEachTime) {
  DrcfFixture f;  // slots = 1
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    for (int i = 0; i < 3; ++i) {
      f.sys_bus.read(0x100, &r);
      EXPECT_EQ(r, 1000);
      f.sys_bus.read(0x200, &r);
      EXPECT_EQ(r, 2000);
    }
  });
  f.sim.run();
  EXPECT_EQ(f.drcf.stats().switches, 6u);
  EXPECT_EQ(f.drcf.stats().config_words_fetched, 6u * 64u);
  EXPECT_EQ(f.drcf.context_stats(f.ctx_a).activations, 3u);
  EXPECT_EQ(f.drcf.context_stats(f.ctx_b).activations, 3u);
}

TEST(DrcfTest, TwoSlotsKeepBothResident) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.slots = 2;
  DrcfFixture f(cfg);
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    for (int i = 0; i < 4; ++i) {
      f.sys_bus.read(0x100, &r);
      f.sys_bus.read(0x200, &r);
    }
  });
  f.sim.run();
  EXPECT_EQ(f.drcf.stats().switches, 2u);  // one load each, then hits
  EXPECT_EQ(f.drcf.stats().hits, 6u);
  EXPECT_TRUE(f.drcf.is_resident(f.ctx_a));
  EXPECT_TRUE(f.drcf.is_resident(f.ctx_b));
}

TEST(DrcfTest, SwitchTimeMatchesBusTraffic) {
  DrcfFixture f;
  kern::Time elapsed;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    const kern::Time t0 = f.sim.now();
    f.sys_bus.read(0x100, &r);
    elapsed = f.sim.now() - t0;
  });
  f.sim.run();
  // Master transaction: 2 cycles (addr+data) = 20ns. Context fetch: 64 words
  // in bursts of 16 (bus max_burst): 4 bursts x (1 + 16) cycles = 68 cycles
  // = 680 ns. The fetch happens inside the master's slave call window.
  EXPECT_GE(elapsed.picoseconds(), (680_ns).picoseconds());
  EXPECT_LE(elapsed.picoseconds(), (760_ns).picoseconds());
  const auto st = f.drcf.context_stats(f.ctx_a);
  EXPECT_GE(st.reconfig_time, 680_ns);
  EXPECT_GT(st.blocked_time, kern::Time::zero());
}

TEST(DrcfTest, ExtraDelayAddsToSwitch) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  DrcfFixture f(cfg);
  // Re-register a third slave with a big extra delay.
  TestSlave slow(f.top, "slow", 0x300, 0x30F, 3000);
  const usize ctx = f.drcf.add_context(
      slow, {.config_address = 0x10800, .size_words = 1,
             .extra_delay = 5_us, .gates = 1});
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x300, &r);
  });
  f.sim.run();
  EXPECT_GE(f.drcf.context_stats(ctx).reconfig_time, 5_us);
}

TEST(DrcfTest, TechnologyOverheadAddsToSwitch) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.technology.per_switch_overhead = 2_us;
  DrcfFixture f(cfg);
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
  });
  f.sim.run();
  EXPECT_GE(f.drcf.context_stats(f.ctx_a).reconfig_time, 2_us);
  EXPECT_GT(f.drcf.stats().reconfig_energy_j, 0.0);
}

TEST(DrcfTest, ActiveTimeAccounting) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);  // load A
    kern::wait(10_us);          // A resident
    f.sys_bus.read(0x200, &r);  // load B, evict A
    kern::wait(5_us);
  });
  f.sim.run();
  const auto sa = f.drcf.context_stats(f.ctx_a);
  const auto sb = f.drcf.context_stats(f.ctx_b);
  // A was resident for ~10us plus B's load window.
  EXPECT_GE(sa.active_time, 10_us);
  EXPECT_GE(sb.active_time, 5_us);
  EXPECT_LT(sa.active_time, 12_us);
}

TEST(DrcfTest, PrefetchHidesSwitchLatency) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.slots = 2;
  DrcfFixture f(cfg);
  kern::Time access_time;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);  // A resident
    f.drcf.prefetch(f.ctx_b);   // load B in the background
    kern::wait(10_us);          // plenty of time for the prefetch
    const kern::Time t0 = f.sim.now();
    f.sys_bus.read(0x200, &r);  // should be a hit
    access_time = f.sim.now() - t0;
  });
  f.sim.run();
  EXPECT_EQ(f.drcf.stats().prefetches, 1u);
  EXPECT_EQ(f.drcf.stats().misses, 1u);  // only the first A access
  // Hit latency = plain bus transaction (2 cycles = 20 ns).
  EXPECT_EQ(access_time, 20_ns);
}

TEST(DrcfTest, ResidentContextBlockedDuringReload) {
  // Single-slot fabric: while B is loading, even calls to A (the context
  // being evicted) must wait — the fabric is physically reconfiguring.
  DrcfFixture f;
  kern::Event a_loaded(f.sim, "a_loaded");
  kern::Time b_read_start;
  kern::Time a_done_at;
  f.top.spawn_thread("m1", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);  // load A
    a_loaded.notify_delta();
    kern::wait(1_us);
    b_read_start = f.sim.now();
    f.sys_bus.read(0x200, &r);  // triggers reload with B
  });
  f.top.spawn_thread("m2", [&] {
    bus::word r = 0;
    kern::wait(a_loaded);
    kern::wait(1_us + 50_ns);   // arrive just after the B switch started
    f.sys_bus.read(0x100, &r);  // A: must wait for fabric, then reload A
    a_done_at = f.sim.now();
  });
  f.sim.run();
  // m2 completes only after B's load plus A's re-load (2 full fetches of
  // 680 ns each, fetched over a contended bus).
  EXPECT_GT(a_done_at, b_read_start + 2 * 680_ns);
  EXPECT_EQ(f.drcf.stats().switches, 3u);
}

TEST(DrcfTest, UnmappedAddressFails) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    // 0x150 is inside the DRCF's union range [0x100,0x20F] but belongs to
    // no context — the multiplexer rejects it.
    EXPECT_EQ(f.sys_bus.read(0x150, &r), BusStatus::kSlaveError);
  });
  f.sim.run();
}

TEST(DrcfTest, UnionAddressRange) {
  DrcfFixture f;
  EXPECT_EQ(f.drcf.get_low_add(), 0x100u);
  EXPECT_EQ(f.drcf.get_high_add(), 0x20Fu);
  EXPECT_EQ(f.drcf.context_count(), 2u);
}

TEST(DrcfTest, OverlappingContextsRejected) {
  DrcfFixture f;
  TestSlave overlap(f.top, "overlap", 0x10A, 0x11F, 0);
  EXPECT_THROW(f.drcf.add_context(overlap, {.config_address = 0,
                                            .size_words = 4}),
               std::logic_error);
}

TEST(DrcfTest, ContextSizeDerivedFromGates) {
  DrcfFixture f;
  TestSlave s(f.top, "derived", 0x300, 0x30F, 0);
  const usize ctx =
      f.drcf.add_context(s, {.config_address = 0x10800, .gates = 1000});
  // varicore: 1000 gates * 24 bits / 32 = 750 words.
  EXPECT_EQ(f.drcf.context_params(ctx).size_words, 750u);
  TestSlave s2(f.top, "zero", 0x400, 0x40F, 0);
  EXPECT_THROW(f.drcf.add_context(s2, {}), std::invalid_argument);
}

TEST(DrcfTest, WritesForwardToActiveContext) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word w = 777;
    EXPECT_EQ(f.sys_bus.write(0x20A, &w), BusStatus::kOk);
  });
  f.sim.run();
  EXPECT_EQ(f.slave_b.writes_, 1u);
  EXPECT_EQ(f.slave_b.last_write_, 777);
  EXPECT_EQ(f.slave_a.writes_, 0u);
}

TEST(DrcfTest, ResidentPowerModel) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
  });
  f.sim.run();
  // 10k gates * 0.075 uW/gate/MHz * 100 MHz = 75 mW.
  EXPECT_NEAR(f.drcf.resident_power_mw(100.0), 75.0, 1e-9);
  EXPECT_THROW(f.drcf.prefetch(99), std::out_of_range);
}

TEST(DrcfTest, FailedConfigFetchFailsCallNotDeadlocks) {
  // Context whose bitstream address decodes to nothing: the fetch fails, the
  // suspended caller's transaction errors out, the simulation stays live.
  DrcfFixture f;
  TestSlave orphan(f.top, "orphan", 0x300, 0x30F, 3000);
  const usize ctx = f.drcf.add_context(
      orphan, {.config_address = 0xDEAD0000, .size_words = 16});
  bool done = false;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    EXPECT_EQ(f.sys_bus.read(0x305, &r), BusStatus::kSlaveError);
    // The fabric is still fully usable for healthy contexts.
    EXPECT_EQ(f.sys_bus.read(0x100, &r), BusStatus::kOk);
    EXPECT_EQ(r, 1000);
    done = true;
  });
  f.sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.sim.starved_processes().empty());
  EXPECT_EQ(f.drcf.stats().fetch_errors, 1u);
  EXPECT_FALSE(f.drcf.is_resident(ctx));
  EXPECT_EQ(f.drcf.context_stats(ctx).activations, 0u);
}

TEST(DrcfTest, AnalyticalModeGeneratesNoBusTraffic) {
  // The OCAPI-XL-style ablation (paper Sec. 4 [8]): switches cost only an
  // analytical delay and never touch the configuration memory.
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.model_config_traffic = false;
  cfg.assumed_fetch_words_per_us = 64.0;  // 64-word context -> 1 us
  DrcfFixture f(cfg);
  kern::Time elapsed;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    const kern::Time t0 = f.sim.now();
    f.sys_bus.read(0x100, &r);
    elapsed = f.sim.now() - t0;
    EXPECT_EQ(r, 1000);
  });
  f.sim.run();
  EXPECT_EQ(f.cfg_mem.stats().reads, 0u);  // no traffic at all
  EXPECT_EQ(f.drcf.stats().config_words_fetched, 0u);
  EXPECT_EQ(f.drcf.stats().switches, 1u);
  // 1 us analytical delay + the master's own 20 ns bus transaction.
  EXPECT_EQ(elapsed, 1_us + 20_ns);
}

TEST(DrcfTest, ActiveContextTraceSignal) {
  DrcfFixture f;
  auto& sig = f.drcf.trace_active_context();
  std::vector<u32> history;
  kern::SpawnOptions opts;
  opts.sensitivity = {&sig.value_changed_event()};
  opts.dont_initialize = true;
  f.top.spawn_method("observer", [&] { history.push_back(sig.read()); },
                     opts);
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);  // -> ctx 0
    f.sys_bus.read(0x200, &r);  // -> ctx 1
    f.sys_bus.read(0x100, &r);  // -> ctx 0 again
  });
  f.sim.run();
  EXPECT_EQ(history, (std::vector<u32>{0, 1, 0}));
}

TEST(DrcfTest, ResetStatsClearsCounters) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
    f.sys_bus.read(0x200, &r);
  });
  f.sim.run();
  EXPECT_EQ(f.drcf.stats().switches, 2u);
  f.drcf.reset_stats();
  EXPECT_EQ(f.drcf.stats().switches, 0u);
  EXPECT_EQ(f.drcf.context_stats(f.ctx_a).accesses, 0u);
  // Residency restarts at now: active time is zero right after reset.
  EXPECT_EQ(f.drcf.context_stats(f.ctx_b).active_time, kern::Time::zero());
}

TEST(DrcfTest, TotalEnergyCombinesActiveAndReconfig) {
  DrcfFixture f;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
    kern::wait(100_us);  // accumulate active energy
  });
  f.sim.run();
  const double reconfig_j = f.drcf.stats().reconfig_energy_j;
  EXPECT_GT(reconfig_j, 0.0);
  const double total_j = f.drcf.total_energy_j(100.0);
  // Active: 10k gates * 0.075 uW/gate/MHz * 100 MHz = 75 mW over ~100 us
  // of residency = ~7.5 uJ, on top of the reconfiguration energy.
  EXPECT_GT(total_j, reconfig_j);
  EXPECT_NEAR(total_j - reconfig_j, 7.5e-6, 1.0e-6);
}

TEST(PowerTracerTest, ProfilesActiveAndReconfigPower) {
  DrcfFixture f;
  PowerTracer tracer(f.top, "ptrace", f.drcf, /*clock_mhz=*/100.0,
                     /*interval=*/200_ns, /*window=*/20_us);
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);  // switch -> reconfig power visible
    kern::wait(5_us);           // resident -> active power visible
    f.sys_bus.read(0x200, &r);  // second switch
    kern::wait(5_us);
  });
  f.sim.run();
  ASSERT_GT(tracer.samples().size(), 50u);
  // 10k gates * 0.075 uW/gate/MHz * 100 MHz = 75 mW active plateau.
  bool saw_active = false, saw_reconfig = false, saw_idle = false;
  for (const auto& s : tracer.samples()) {
    if (s.active_mw > 70.0) saw_active = true;
    if (s.reconfig_mw > 0.0) saw_reconfig = true;
    if (s.total_mw() == 0.0) saw_idle = true;
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_reconfig);
  EXPECT_TRUE(saw_idle);  // before the first switch the fabric is empty
  EXPECT_GT(tracer.peak_mw(), 75.0);
  EXPECT_GT(tracer.mean_mw(), 0.0);
  EXPECT_GT(tracer.energy_mj(), 0.0);
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_NE(os.str().find("time_us,active_mw,reconfig_mw"),
            std::string::npos);
  EXPECT_THROW(
      PowerTracer(f.top, "bad", f.drcf, 100.0, kern::Time::zero()),
      std::invalid_argument);
}

// Property test: under any access pattern, the live DRCF's switch count and
// per-context activations must match an offline replay of the same pattern
// against a bare SlotTable (the scheduler's reference model).
class DrcfOracleProperty
    : public ::testing::TestWithParam<std::tuple<u32, ReplacementPolicy, u64>> {
};

TEST_P(DrcfOracleProperty, SwitchCountsMatchSlotTableReplay) {
  const auto [slots, policy, seed] = GetParam();
  constexpr usize kContexts = 5;
  constexpr int kAccesses = 80;

  // Generate the access pattern up front.
  Xoshiro256 rng(seed);
  std::vector<usize> pattern;
  for (int i = 0; i < kAccesses; ++i)
    pattern.push_back(rng.next_below(kContexts));

  // Offline oracle replay.
  SlotTable oracle(slots, policy);
  u64 expected_switches = 0;
  std::vector<u64> expected_activations(kContexts, 0);
  for (const usize ctx : pattern) {
    auto slot = oracle.lookup(ctx);
    if (!slot.has_value()) {
      const auto v = oracle.choose(ctx);
      if (v.evicted.has_value()) oracle.evict(v.slot);
      oracle.install(v.slot, ctx);
      ++expected_switches;
      ++expected_activations[ctx];
      slot = v.slot;
    }
    oracle.touch(*slot);
  }

  // Live system: strictly sequential accesses, so the live SlotTable sees
  // the identical request order.
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.slots = slots;
  cfg.replacement = policy;
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus sys_bus(top, "bus", DrcfFixture::make_default_bus());
  mem::Memory cfg_mem(top, "cfg_mem", 0x10000, 4096);
  Drcf fabric(top, "drcf1", cfg);
  std::vector<std::unique_ptr<TestSlave>> slaves;
  for (usize i = 0; i < kContexts; ++i) {
    const auto base = static_cast<bus::addr_t>(0x100 + i * 0x100);
    slaves.push_back(std::make_unique<TestSlave>(
        top, "s" + std::to_string(i), base, base + 0xF, 0));
    fabric.add_context(*slaves.back(),
                       {.config_address =
                            0x10000 + static_cast<bus::addr_t>(i * 16),
                        .size_words = 16});
  }
  fabric.mst_port.bind(sys_bus);
  sys_bus.bind_slave(cfg_mem);
  sys_bus.bind_slave(fabric);
  top.spawn_thread("driver", [&] {
    bus::word r = 0;
    for (const usize ctx : pattern)
      sys_bus.read(static_cast<bus::addr_t>(0x100 + ctx * 0x100), &r);
  });
  sim.run();

  EXPECT_EQ(fabric.stats().switches, expected_switches);
  for (usize i = 0; i < kContexts; ++i)
    EXPECT_EQ(fabric.context_stats(i).activations, expected_activations[i])
        << "context " << i;
  EXPECT_EQ(fabric.stats().hits + fabric.stats().misses,
            static_cast<u64>(kAccesses));
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, DrcfOracleProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(ReplacementPolicy::kLru,
                                         ReplacementPolicy::kFifo,
                                         ReplacementPolicy::kMru),
                       ::testing::Values(11u, 22u, 33u)));

// ---------------------------------------------------------------------------
// Paper Sec. 5.4 limitation 3: blocking interface methods on a shared
// configuration bus deadlock the DRCF.

TEST(DrcfDeadlock, BlockingSharedBusDeadlocks) {
  bus::BusConfig bus_cfg = DrcfFixture::make_default_bus();
  bus_cfg.split_transactions = false;  // the dangerous configuration
  DrcfFixture f(DrcfFixture::make_default_cfg(), bus_cfg);
  bool completed = false;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
    completed = true;
  });
  EXPECT_EQ(f.sim.run(), kern::StopReason::kNoActivity);
  EXPECT_FALSE(completed);
  // Both the master (suspended call) and arb_and_instr (starved of the bus)
  // are reported as deadlocked.
  ASSERT_GE(f.sim.starved_processes().size(), 1u);
  EXPECT_EQ(f.sim.starved_processes()[0]->basename(), "master");
}

TEST(DrcfDeadlock, SplitBusAvoidsDeadlock) {
  DrcfFixture f;  // split_transactions = true by default
  bool completed = false;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    f.sys_bus.read(0x100, &r);
    completed = true;
  });
  f.sim.run();
  EXPECT_TRUE(completed);
}

TEST(DrcfDeadlock, DedicatedConfigPortAvoidsDeadlock) {
  // Blocking system bus, but the DRCF fetches configurations over a private
  // link to a dedicated configuration memory: no deadlock.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::BusConfig bus_cfg;
  bus_cfg.split_transactions = false;
  bus::Bus sys_bus(top, "bus", bus_cfg);
  mem::Memory cfg_mem(top, "cfg_mem", 0x10000, 1024);
  bus::DirectLink link(top, "cfg_link", 10_ns);
  link.bind_slave(cfg_mem);
  TestSlave slave(top, "hwa", 0x100, 0x10F, 1000);
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  Drcf drcf(top, "drcf1", cfg);
  drcf.add_context(slave, {.config_address = 0x10000, .size_words = 32});
  drcf.mst_port.bind(link);
  sys_bus.bind_slave(drcf);
  bool completed = false;
  top.spawn_thread("master", [&] {
    bus::word r = 0;
    EXPECT_EQ(sys_bus.read(0x105, &r), BusStatus::kOk);
    EXPECT_EQ(r, 1005);
    completed = true;
  });
  sim.run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(link.transfers(), 32u);
}

// ---------------------------------------------------------------------------
// Context-thrash detector

TEST(DrcfThrashTest, FruitlessPingPongRaisesAlert) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.thrash_window = 1_ms;  // wide window: every switch below lands in it
  cfg.thrash_switches = 4;
  DrcfFixture f(cfg);
  f.top.spawn_thread("churn", [&] {
    // Reconfigure back and forth with no forwarded transaction in between:
    // pure configuration churn, zero useful work.
    for (int i = 0; i < 4; ++i) {
      f.drcf.prefetch(f.ctx_a);
      kern::wait(2_us);  // let the load finish
      f.drcf.prefetch(f.ctx_b);
      kern::wait(2_us);
    }
  });
  f.sim.run();
  EXPECT_GE(f.drcf.stats().switches, 8u);
  EXPECT_GE(f.drcf.stats().thrash_alerts, 1u);
  // The alert is also on the fault ledger, joined by kind.
  bool ledgered = false;
  for (const auto& rec : f.drcf.fault_ledger().records())
    if (rec.kind == fault::FaultEventKind::kThrash) ledgered = true;
  EXPECT_TRUE(ledgered);
}

TEST(DrcfThrashTest, UsefulWorkBetweenSwitchesSuppressesAlert) {
  DrcfConfig cfg = DrcfFixture::make_default_cfg();
  cfg.thrash_window = 1_ms;
  cfg.thrash_switches = 4;
  DrcfFixture f(cfg);
  f.top.spawn_thread("worker", [&] {
    // Same ping-pong rate, but every residency does real transactions:
    // these switches are the workload's natural behaviour, not thrash.
    for (int i = 0; i < 6; ++i) {
      bus::word r = 0;
      EXPECT_EQ(f.sys_bus.read(0x105, &r), BusStatus::kOk);
      EXPECT_EQ(f.sys_bus.read(0x205, &r), BusStatus::kOk);
    }
  });
  f.sim.run();
  EXPECT_GE(f.drcf.stats().switches, 12u);
  EXPECT_EQ(f.drcf.stats().thrash_alerts, 0u);
}

TEST(DrcfThrashTest, DisabledByDefault) {
  DrcfFixture f;  // default config: thrash_window == 0
  f.top.spawn_thread("churn", [&] {
    for (int i = 0; i < 6; ++i) {
      f.drcf.prefetch(f.ctx_a);
      kern::wait(2_us);
      f.drcf.prefetch(f.ctx_b);
      kern::wait(2_us);
    }
  });
  f.sim.run();
  EXPECT_GE(f.drcf.stats().switches, 12u);
  EXPECT_EQ(f.drcf.stats().thrash_alerts, 0u);
}

// ---------------------------------------------------------------------------
// Stopping mid-reconfiguration

TEST(DrcfTest, RequestStopDuringFetchThenResume) {
  // A 64-word fetch over a 10 ns/word bus takes ~640 ns; stop the run from
  // inside while the fetch is in flight, then resume: the fetch completes
  // and the suspended caller's transaction succeeds. This is the kernel
  // contract the campaign watchdog and SIGINT broadcast rely on.
  DrcfFixture f;
  bool call_done = false;
  f.top.spawn_thread("master", [&] {
    bus::word r = 0;
    EXPECT_EQ(f.sys_bus.read(0x105, &r), BusStatus::kOk);
    EXPECT_EQ(r, 1005);
    call_done = true;
  });
  f.top.spawn_thread("stopper", [&] {
    kern::wait(100_ns);  // well inside the configuration fetch
    f.sim.request_stop();
  });
  EXPECT_EQ(f.sim.run(), kern::StopReason::kExplicitStop);
  EXPECT_FALSE(call_done);  // stopped mid-fetch
  EXPECT_FALSE(f.drcf.is_resident(f.ctx_a));
  // Resuming the same simulation finishes the interrupted reconfiguration.
  EXPECT_EQ(f.sim.run(), kern::StopReason::kNoActivity);
  EXPECT_TRUE(call_done);
  EXPECT_TRUE(f.drcf.is_resident(f.ctx_a));
  EXPECT_EQ(f.drcf.stats().switches, 1u);
}

}  // namespace
}  // namespace adriatic::drcf
