// SoC building-block tests: hardware accelerator, processor model, DMA.
#include <gtest/gtest.h>

#include <vector>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic::soc {
namespace {

using namespace kern::literals;
using bus::BusStatus;

struct SocFixture {
  SocFixture() : sys_bus(top, "bus", make_bus()), ram(top, "ram", 0x1000, 1024) {
    sys_bus.bind_slave(ram);
  }
  static bus::BusConfig make_bus() {
    bus::BusConfig c;
    c.cycle_time = 10_ns;
    return c;
  }
  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  mem::Memory ram;
};

TEST(HwAccelTest, RunsKernelOverBus) {
  SocFixture f;
  HwAccel acc(f.top, "crc_acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(acc);

  const std::vector<bus::word> payload{10, 20, 30, 40};
  f.ram.load(0x1000, payload);

  f.top.spawn_thread("driver", [&] {
    bus::word w;
    w = 0x1000;
    f.sys_bus.write(0x100 + HwAccel::kSrc, &w);
    w = 0x1100;
    f.sys_bus.write(0x100 + HwAccel::kDst, &w);
    w = 4;
    f.sys_bus.write(0x100 + HwAccel::kLen, &w);
    w = 1;
    f.sys_bus.write(0x100 + HwAccel::kCtrl, &w);
    kern::wait(acc.done_event());
    bus::word status = 0;
    f.sys_bus.read(0x100 + HwAccel::kStatus, &status);
    EXPECT_EQ(status, HwAccel::kDone);
    bus::word outlen = 0;
    f.sys_bus.read(0x100 + HwAccel::kOutLen, &outlen);
    EXPECT_EQ(outlen, 5);
  });
  f.sim.run();
  // Results landed in memory: payload + CRC.
  for (usize i = 0; i < 4; ++i)
    EXPECT_EQ(f.ram.peek(0x1100 + static_cast<bus::addr_t>(i)),
              payload[i]);
  EXPECT_EQ(static_cast<u32>(f.ram.peek(0x1104)), accel::crc32_words(payload));
  EXPECT_EQ(acc.stats().invocations, 1u);
  EXPECT_EQ(acc.stats().words_in, 4u);
  EXPECT_EQ(acc.stats().words_out, 5u);
  EXPECT_GT(acc.stats().compute_time, kern::Time::zero());
}

TEST(HwAccelTest, StatusLifecycle) {
  SocFixture f;
  HwAccel acc(f.top, "acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(acc);
  f.top.spawn_thread("driver", [&] {
    bus::word w = 0;
    f.sys_bus.read(0x100 + HwAccel::kStatus, &w);
    EXPECT_EQ(w, HwAccel::kIdle);
    w = 2;
    f.sys_bus.write(0x100 + HwAccel::kSrc, &w);
    w = 0x1100;
    f.sys_bus.write(0x100 + HwAccel::kDst, &w);
    w = 0;  // zero-length run is legal
    f.sys_bus.write(0x100 + HwAccel::kLen, &w);
    w = 1;
    f.sys_bus.write(0x100 + HwAccel::kCtrl, &w);
    kern::wait(acc.done_event());
    w = 0;  // clear done
    f.sys_bus.write(0x100 + HwAccel::kStatus, &w);
    bus::word status = 99;
    f.sys_bus.read(0x100 + HwAccel::kStatus, &status);
    EXPECT_EQ(status, HwAccel::kIdle);
  });
  f.sim.run();
}

TEST(HwAccelTest, StartWhileBusyFails) {
  SocFixture f;
  auto spec = accel::make_crc_spec();
  HwAccel acc(f.top, "acc", 0x100, spec);
  acc.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(acc);
  f.top.spawn_thread("driver", [&] {
    bus::word w = 0x1000;
    f.sys_bus.write(0x100 + HwAccel::kSrc, &w);
    w = 0x1100;
    f.sys_bus.write(0x100 + HwAccel::kDst, &w);
    w = 64;
    f.sys_bus.write(0x100 + HwAccel::kLen, &w);
    w = 1;
    EXPECT_EQ(f.sys_bus.write(0x100 + HwAccel::kCtrl, &w), BusStatus::kOk);
    // Immediately restarting while busy is rejected by the device.
    w = 1;
    EXPECT_EQ(f.sys_bus.write(0x100 + HwAccel::kCtrl, &w),
              BusStatus::kSlaveError);
  });
  f.sim.run();
  EXPECT_EQ(acc.stats().invocations, 1u);
}

TEST(HwAccelTest, InvalidSpecThrows) {
  SocFixture f;
  accel::KernelSpec bad;  // empty
  EXPECT_THROW(HwAccel(f.top, "bad", 0x100, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------

TEST(ProcessorTest, ComputeAdvancesTimeByCpi) {
  SocFixture f;
  ProcessorConfig cfg;
  cfg.cycle_time = 10_ns;
  cfg.cpi = 2.0;
  kern::Time end_time;
  Processor cpu(f.top, "cpu", cfg, [&](Cpu& c) {
    c.compute(100);  // 100 instr * 2 cpi * 10ns = 2us
    end_time = c.now();
  });
  cpu.mst_port.bind(f.sys_bus);
  f.sim.run();
  EXPECT_EQ(end_time, 2_us);
  EXPECT_EQ(cpu.stats().instructions, 100u);
  EXPECT_TRUE(cpu.finished());
}

TEST(ProcessorTest, BusAccessAndStats) {
  SocFixture f;
  ProcessorConfig cfg;
  Processor cpu(f.top, "cpu", cfg, [&](Cpu& c) {
    c.write(0x1000, 42);
    EXPECT_EQ(c.read(0x1000), 42);
    std::vector<bus::word> buf{1, 2, 3, 4};
    c.burst_write(0x1010, buf);
    std::vector<bus::word> in(4, 0);
    c.burst_read(0x1010, in);
    EXPECT_EQ(in, buf);
  });
  cpu.mst_port.bind(f.sys_bus);
  f.sim.run();
  EXPECT_EQ(cpu.stats().bus_reads, 5u);
  EXPECT_EQ(cpu.stats().bus_writes, 5u);
}

TEST(ProcessorTest, PollUntil) {
  SocFixture f;
  ProcessorConfig cfg;
  kern::Time done_at;
  Processor cpu(f.top, "cpu", cfg, [&](Cpu& c) {
    c.poll_until(0x1000, 7, 100_ns);
    done_at = c.now();
  });
  cpu.mst_port.bind(f.sys_bus);
  f.top.spawn_thread("setter", [&] {
    kern::wait(1_us);
    f.ram.poke(0x1000, 7);
  });
  f.sim.run();
  EXPECT_GE(done_at, 1_us);
  EXPECT_LT(done_at, 2_us);
}

TEST(ProcessorTest, FaultThrowsOutOfProgram) {
  SocFixture f;
  bool caught = false;
  Processor cpu(f.top, "cpu", {}, [&](Cpu& c) {
    try {
      (void)c.read(0xDEAD);  // unmapped
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  cpu.mst_port.bind(f.sys_bus);
  f.sim.run();
  EXPECT_TRUE(caught);
  EXPECT_THROW(Processor(f.top, "cpu2", {}, nullptr), std::invalid_argument);
}

TEST(ProcessorTest, FinishedEventFires) {
  SocFixture f;
  Processor cpu(f.top, "cpu", {}, [&](Cpu& c) { c.delay(500_ns); });
  cpu.mst_port.bind(f.sys_bus);
  bool joined = false;
  f.top.spawn_thread("joiner", [&] {
    kern::wait(cpu.finished_event());
    joined = true;
  });
  f.sim.run();
  EXPECT_TRUE(joined);
}

// ---------------------------------------------------------------------------

TEST(DmaTest, MovesDataBetweenRegions) {
  SocFixture f;
  Dma dma(f.top, "dma", 0x200, /*chunk=*/8);
  dma.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(dma);
  std::vector<bus::word> src(20);
  for (usize i = 0; i < src.size(); ++i) src[i] = static_cast<bus::word>(i * 3);
  f.ram.load(0x1000, src);

  f.top.spawn_thread("driver", [&] {
    bus::word w;
    w = 0x1000;
    f.sys_bus.write(0x200 + Dma::kSrc, &w);
    w = 0x1200;
    f.sys_bus.write(0x200 + Dma::kDst, &w);
    w = 20;
    f.sys_bus.write(0x200 + Dma::kLen, &w);
    w = 1;
    f.sys_bus.write(0x200 + Dma::kCtrl, &w);
    kern::wait(dma.done_event());
  });
  f.sim.run();
  for (usize i = 0; i < src.size(); ++i)
    EXPECT_EQ(f.ram.peek(0x1200 + static_cast<bus::addr_t>(i)), src[i]);
  EXPECT_EQ(dma.stats().transfers, 1u);
  EXPECT_EQ(dma.stats().words_moved, 20u);
}

TEST(DmaTest, RegisterReadback) {
  SocFixture f;
  Dma dma(f.top, "dma", 0x200);
  dma.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(dma);
  f.top.spawn_thread("driver", [&] {
    bus::word w = 0xABC;
    f.sys_bus.write(0x200 + Dma::kSrc, &w);
    bus::word r = 0;
    f.sys_bus.read(0x200 + Dma::kSrc, &r);
    EXPECT_EQ(r, 0xABC);
    f.sys_bus.read(0x200 + Dma::kStatus, &r);
    EXPECT_EQ(r, Dma::kIdle);
  });
  f.sim.run();
}

TEST(DmaTest, ProcessorDrivesDmaEndToEnd) {
  SocFixture f;
  Dma dma(f.top, "dma", 0x200, 16);
  dma.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(dma);
  f.ram.load(0x1000, std::vector<bus::word>{11, 22, 33});
  Processor cpu(f.top, "cpu", {}, [&](Cpu& c) {
    c.write(0x200 + Dma::kSrc, 0x1000);
    c.write(0x200 + Dma::kDst, 0x1300);
    c.write(0x200 + Dma::kLen, 3);
    c.write(0x200 + Dma::kCtrl, 1);
    c.poll_until(0x200 + Dma::kStatus, Dma::kDone, 50_ns);
  });
  cpu.mst_port.bind(f.sys_bus);
  f.sim.run();
  EXPECT_EQ(f.ram.peek(0x1302), 33);
  EXPECT_TRUE(cpu.finished());
}

}  // namespace
}  // namespace adriatic::soc
