// Interrupt-controller tests: latching, masking, acknowledge, and the
// interrupt-driven (vs polled) accelerator completion flow.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic::soc {
namespace {

using namespace kern::literals;

struct IrqFixture {
  IrqFixture()
      : sys_bus(top, "bus"),
        ram(top, "ram", 0x1000, 1024),
        irq_ctrl(top, "irq", 0x400) {
    sys_bus.bind_slave(ram);
    sys_bus.bind_slave(irq_ctrl);
  }
  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  mem::Memory ram;
  InterruptController irq_ctrl;
};

TEST(IrqTest, LatchesAndMasks) {
  IrqFixture f;
  kern::Event source(f.sim, "source");
  f.irq_ctrl.connect(3, source);
  f.top.spawn_thread("t", [&] {
    bus::word v = 0;
    // Line disabled: raises RAW but not STATUS, no irq_event.
    source.notify_delta();
    kern::wait(10_ns);
    f.sys_bus.read(0x400 + InterruptController::kRaw, &v);
    EXPECT_EQ(v, 1 << 3);
    f.sys_bus.read(0x400 + InterruptController::kStatus, &v);
    EXPECT_EQ(v, 0);
    // Enable line 3: pending becomes visible and irq_event fires.
    bus::word en = 1 << 3;
    f.sys_bus.write(0x400 + InterruptController::kEnable, &en);
    f.sys_bus.read(0x400 + InterruptController::kStatus, &v);
    EXPECT_EQ(v, 1 << 3);
    // Acknowledge clears.
    bus::word ack = 1 << 3;
    f.sys_bus.write(0x400 + InterruptController::kAck, &ack);
    f.sys_bus.read(0x400 + InterruptController::kStatus, &v);
    EXPECT_EQ(v, 0);
  });
  f.sim.run();
  EXPECT_EQ(f.irq_ctrl.interrupts_latched(), 1u);
}

TEST(IrqTest, EnableOfPendingLineFiresEvent) {
  IrqFixture f;
  kern::Event source(f.sim, "source");
  f.irq_ctrl.connect(0, source);
  bool woke = false;
  f.top.spawn_thread("waiter", [&] {
    kern::wait(f.irq_ctrl.irq_event());
    woke = true;
  });
  f.top.spawn_thread("driver", [&] {
    source.notify_delta();  // latched but masked
    kern::wait(100_ns);
    EXPECT_FALSE(woke);
    bus::word en = 1;
    f.sys_bus.write(0x400 + InterruptController::kEnable, &en);
  });
  f.sim.run();
  EXPECT_TRUE(woke);
}

TEST(IrqTest, RegisterAccessErrors) {
  IrqFixture f;
  f.top.spawn_thread("t", [&] {
    bus::word v = 1;
    // STATUS is read-only.
    EXPECT_EQ(f.sys_bus.write(0x400 + InterruptController::kStatus, &v),
              bus::BusStatus::kSlaveError);
  });
  f.sim.run();
  EXPECT_THROW(f.irq_ctrl.connect(32, f.irq_ctrl.irq_event()),
               std::out_of_range);
}

TEST(IrqTest, InterruptDrivenAcceleratorCompletion) {
  // The interrupt-driven flow produces far fewer bus reads than polling —
  // the system-level effect interrupts exist for.
  IrqFixture f;
  HwAccel acc(f.top, "acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(acc);
  f.irq_ctrl.connect(0, acc.done_event());

  ProcessorConfig cfg;
  Processor cpu(f.top, "cpu", cfg, [&](Cpu& c) {
    c.write(0x400 + InterruptController::kEnable, 1);
    c.write(0x100 + HwAccel::kSrc, 0x1000);
    c.write(0x100 + HwAccel::kDst, 0x1100);
    c.write(0x100 + HwAccel::kLen, 32);
    c.write(0x100 + HwAccel::kCtrl, 1);
    c.wait_for(f.irq_ctrl.irq_event());     // no polling
    EXPECT_EQ(c.read(0x400 + InterruptController::kStatus), 1);
    c.write(0x400 + InterruptController::kAck, 1);
    EXPECT_EQ(c.read(0x100 + HwAccel::kStatus), HwAccel::kDone);
  });
  cpu.mst_port.bind(f.sys_bus);
  f.sim.run();
  EXPECT_TRUE(cpu.finished());
  // Two status-ish reads total instead of a poll loop.
  EXPECT_EQ(cpu.stats().bus_reads, 2u);
  EXPECT_EQ(f.irq_ctrl.pending(), 0u);
}

TEST(IrqTest, MultipleSourcesDistinguished) {
  IrqFixture f;
  kern::Event s0(f.sim, "s0"), s5(f.sim, "s5");
  f.irq_ctrl.connect(0, s0);
  f.irq_ctrl.connect(5, s5);
  f.top.spawn_thread("t", [&] {
    bus::word en = 0xFF;
    f.sys_bus.write(0x400 + InterruptController::kEnable, &en);
    s5.notify_delta();
    kern::wait(f.irq_ctrl.irq_event());
    bus::word v = 0;
    f.sys_bus.read(0x400 + InterruptController::kStatus, &v);
    EXPECT_EQ(v, 1 << 5);
    s0.notify_delta();
    kern::wait(10_ns);
    f.sys_bus.read(0x400 + InterruptController::kStatus, &v);
    EXPECT_EQ(v, (1 << 5) | 1);
  });
  f.sim.run();
  EXPECT_EQ(f.irq_ctrl.interrupts_latched(), 2u);
}

}  // namespace
}  // namespace adriatic::soc
