// Sparse copy-on-write paged store tests: lazy zero pages, image interning
// and COW divergence, end-to-end integrity (torn pages, golden restore,
// scrubbing), the process-wide memory budget, and the paged-vs-flat
// differential across timing modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "fault/ledger.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;
using bus::BusStatus;
using mem::kPageBytes;
using mem::kPageWords;

struct Fixture {
  kern::Simulation sim;
  kern::Module top{sim, "top"};
};

/// Restores the process-wide budget limit after a test — the singleton
/// outlives every test in this binary.
struct BudgetGuard {
  u64 saved = mem::MemoryBudget::instance().limit_bytes();
  ~BudgetGuard() { mem::MemoryBudget::instance().set_limit_bytes(saved); }
};

/// Deterministic nonzero contents; distinct salts keep the process-wide
/// ImageRegistry from aliasing images across tests.
std::vector<bus::word> pattern(usize n, u32 salt) {
  std::vector<bus::word> v(n);
  for (usize i = 0; i < n; ++i)
    v[i] = static_cast<bus::word>(salt ^ (17 * static_cast<u32>(i) + 1));
  return v;
}

TEST(PagedStore, ZeroPagesServeReadsWithoutMaterializing) {
  mem::PagedStore s(4 * kPageWords, "lazy");
  EXPECT_EQ(s.page_count(), 4u);
  EXPECT_EQ(s.resident_pages(), 0u);
  EXPECT_EQ(s.read(0), 0);
  EXPECT_EQ(s.read(4 * kPageWords - 1), 0);  // last word of the last page
  EXPECT_EQ(s.peek(2 * kPageWords), 0);
  EXPECT_EQ(s.resident_pages(), 0u);
  EXPECT_EQ(s.stats().zero_page_reads, 2u);
  EXPECT_THROW((void)s.read(4 * kPageWords), std::out_of_range);
  EXPECT_THROW(s.write(4 * kPageWords, 1), std::out_of_range);

  // A write materializes exactly its page; neighbors stay lazy.
  s.write(kPageWords, 7);
  EXPECT_EQ(s.resident_pages(), 1u);
  EXPECT_EQ(s.resident_bytes(), static_cast<u64>(kPageBytes));
  EXPECT_TRUE(s.page_resident(1));
  EXPECT_FALSE(s.page_resident(0));
  EXPECT_EQ(s.read(kPageWords), 7);
  EXPECT_EQ(s.read(kPageWords - 1), 0);  // page 0 still lazy
}

TEST(PagedStore, BurstsStraddlePageBoundariesViaBus) {
  Fixture f;
  bus::Bus b(f.top, "bus");
  mem::Memory m(f.top, "ram", 0, 3 * kPageWords);
  b.bind_slave(m);
  const auto data = pattern(48, 0x57A4D000);
  f.top.spawn_thread("t", [&] {
    // 48 words centred on the page-0/page-1 boundary.
    std::vector<bus::word> d = data;
    EXPECT_EQ(b.burst_write(static_cast<bus::addr_t>(kPageWords - 24), d, 0),
              BusStatus::kOk);
    std::vector<bus::word> r(48, -1);
    EXPECT_EQ(b.burst_read(static_cast<bus::addr_t>(kPageWords - 24), r, 0),
              BusStatus::kOk);
    EXPECT_EQ(r, data);
  });
  f.sim.run();
  EXPECT_EQ(m.backing().resident_pages(), 2u);
  EXPECT_FALSE(m.backing().page_resident(2));
  // The straddle materialized both halves with the right words.
  EXPECT_EQ(m.peek(static_cast<bus::addr_t>(kPageWords - 24)), data[0]);
  EXPECT_EQ(m.peek(static_cast<bus::addr_t>(kPageWords + 23)), data[47]);
}

TEST(PagedStore, ImageRegistryInternsAndDeduplicatesPages) {
  auto& reg = mem::ImageRegistry::instance();
  const auto before = reg.stats();
  const auto contents = pattern(kPageWords + 5, 0xA11CE000);
  auto i1 = reg.intern(contents);
  ASSERT_NE(i1, nullptr);
  EXPECT_EQ(i1->digest(), mem::image_digest(contents));
  EXPECT_EQ(i1->size_words(), contents.size());
  EXPECT_EQ(i1->page_count(), 2u);
  EXPECT_EQ(i1->word_at(3), contents[3]);
  EXPECT_EQ(i1->word_at(kPageWords + 17), 0);  // zero-padded tail

  // Same contents: the same canonical image, counted as a hit.
  auto i2 = reg.intern(contents);
  EXPECT_EQ(i2.get(), i1.get());
  EXPECT_EQ(reg.stats().image_hits, before.image_hits + 1);
  EXPECT_EQ(reg.stats().interned, before.interned + 1);
  EXPECT_EQ(reg.find(i1->digest()).get(), i1.get());

  // A different image whose first page is identical shares that page via
  // the secondary pool.
  const std::vector<bus::word> prefix(contents.begin(),
                                      contents.begin() + kPageWords);
  auto i3 = reg.intern(prefix);
  EXPECT_NE(i3.get(), i1.get());
  EXPECT_EQ(i3->page(0).get(), i1->page(0).get());
  EXPECT_EQ(reg.stats().page_hits, before.page_hits + 1);
}

TEST(PagedStore, AttachedImagesShareUntilDivergence) {
  const auto contents = pattern(2 * kPageWords + 17, 0xC0FFEE00);
  auto img = mem::ImageRegistry::instance().intern(contents);
  mem::PagedStore a(4 * kPageWords, "a");
  mem::PagedStore b(4 * kPageWords, "b");
  EXPECT_TRUE(a.pages_untouched(0, contents.size()));
  a.attach_image(img, 0);
  EXPECT_FALSE(a.pages_untouched(0, 1));
  EXPECT_TRUE(a.pages_untouched(3 * kPageWords, kPageWords));
  b.attach_image(img, 0);
  EXPECT_EQ(a.resident_pages(), 3u);
  EXPECT_EQ(a.stats().pages_attached, 3u);
  EXPECT_TRUE(a.page_shared(0));
  EXPECT_EQ(a.shared_pages(), 3u);

  // Misaligned or out-of-range attaches are refused.
  EXPECT_THROW(a.attach_image(img, 3), std::invalid_argument);
  EXPECT_THROW(a.attach_image(img, 3 * kPageWords), std::out_of_range);

  // b diverges in its middle page: one COW split, a is unscathed, and the
  // written page loses its golden link (reverting it would be data loss).
  b.write(kPageWords + 3, 0x5EED);
  EXPECT_EQ(b.stats().cow_splits, 1u);
  EXPECT_FALSE(b.page_shared(1));
  EXPECT_TRUE(b.page_shared(0));
  EXPECT_FALSE(b.page_has_golden(1));
  EXPECT_TRUE(b.page_has_golden(0));
  EXPECT_EQ(a.read(kPageWords + 3), img->word_at(kPageWords + 3));
  EXPECT_EQ(b.read(kPageWords + 3), 0x5EED);

  // Flat reference: the same operations on an eager, never-shared backing
  // must leave bit-identical contents.
  const bool prev = mem::PagedStore::debug_set_flat_backing(true);
  mem::PagedStore flat(4 * kPageWords, "flat");
  mem::PagedStore::debug_set_flat_backing(prev);
  ASSERT_TRUE(flat.flat_backing());
  EXPECT_EQ(flat.resident_pages(), 4u);
  flat.attach_image(img, 0);
  flat.write(kPageWords + 3, 0x5EED);
  EXPECT_EQ(flat.shared_pages(), 0u);
  for (usize i = 0; i < 4 * kPageWords; ++i)
    ASSERT_EQ(b.peek(i), flat.peek(i)) << "word " << i;
}

TEST(PagedStore, AttachElidesAllZeroPages) {
  // Pages 0 and 2 carry data, page 1 is all zeros: the image (and any store
  // attaching it) pays for two pages, not three.
  std::vector<bus::word> contents(3 * kPageWords, 0);
  const auto filler = pattern(kPageWords, 0xD1CE0000);
  std::copy(filler.begin(), filler.end(), contents.begin());
  std::copy(filler.begin(), filler.end(),
            contents.begin() + static_cast<std::ptrdiff_t>(2 * kPageWords));
  auto img = mem::ImageRegistry::instance().intern(contents);
  EXPECT_EQ(img->page_count(), 3u);
  EXPECT_EQ(img->resident_pages(), 2u);

  mem::PagedStore s(3 * kPageWords, "holes");
  s.attach_image(img, 0);
  EXPECT_EQ(s.resident_pages(), 2u);
  EXPECT_FALSE(s.page_resident(1));
  EXPECT_TRUE(s.page_has_golden(1));  // golden, just elided
  EXPECT_EQ(s.read(kPageWords + 9), 0);
  s.write(kPageWords + 9, 3);  // materializes the hole, zero-filled
  EXPECT_EQ(s.resident_pages(), 3u);
  EXPECT_EQ(s.peek(kPageWords + 8), 0);
  EXPECT_EQ(s.peek(kPageWords + 9), 3);
}

TEST(PagedStore, SharingAndReclaimAreBudgetAccurate) {
  auto& budget = mem::MemoryBudget::instance();
  auto& reg = mem::ImageRegistry::instance();
  reg.drop_unused();  // clear leftovers from earlier tests in this binary
  const u64 base = budget.resident_bytes();

  auto img = reg.intern(pattern(kPageWords, 0xB0D6E700));
  EXPECT_EQ(budget.resident_bytes(), base + kPageBytes);
  {
    mem::PagedStore a(kPageWords, "a");
    mem::PagedStore b(kPageWords, "b");
    a.attach_image(img, 0);
    b.attach_image(img, 0);
    // Two attaches, still one physical copy.
    EXPECT_EQ(budget.resident_bytes(), base + kPageBytes);
    b.write(3, 9);  // COW split: now two
    EXPECT_EQ(budget.resident_bytes(), base + 2 * kPageBytes);
  }
  // Stores gone: the split copy was credited back; the image remains.
  EXPECT_EQ(budget.resident_bytes(), base + kPageBytes);
  img.reset();
  EXPECT_GE(reg.drop_unused(), 1u);
  EXPECT_EQ(budget.resident_bytes(), base);
}

TEST(PagedStore, BudgetExhaustionMidLoadThrowsTypedAndKeepsState) {
  BudgetGuard guard;
  auto& budget = mem::MemoryBudget::instance();
  mem::PagedStore s(4 * kPageWords, "tight");
  budget.set_limit_bytes(budget.resident_bytes() + 2 * kPageBytes);
  const auto data = pattern(3 * kPageWords, 0xFEED0000);
  try {
    s.load(0, data);
    FAIL() << "load over budget did not throw";
  } catch (const mem::BudgetExceededError& e) {
    EXPECT_EQ(e.limit_bytes(), budget.limit_bytes());
    EXPECT_EQ(e.requested_bytes(), static_cast<u64>(kPageBytes));
    EXPECT_GE(e.high_water_bytes(), e.resident_bytes());
  }
  // The first two pages landed intact; the third was refused atomically.
  EXPECT_EQ(s.resident_pages(), 2u);
  EXPECT_EQ(s.peek(0), data[0]);
  EXPECT_EQ(s.peek(2 * kPageWords - 1), data[2 * kPageWords - 1]);
  EXPECT_FALSE(s.page_resident(2));
  // Degradation is graceful: raise the budget and continue where it stopped.
  budget.set_limit_bytes(0);
  s.load(2 * kPageWords,
         std::span<const bus::word>(data).subspan(2 * kPageWords));
  EXPECT_EQ(s.peek(3 * kPageWords - 1), data[3 * kPageWords - 1]);
}

TEST(PagedStore, TornPageFailsFirstReadUntilScrubbed) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0x100, kPageWords);
  fault::FaultLedger led;
  m.set_fault_ledger(&led);
  auto img = mem::ImageRegistry::instance().intern(
      pattern(kPageWords, 0x7EA40000));
  m.attach_image(img, 0x100);
  // Torn behind the API before the first read: checksum maintenance never
  // saw this flip, so the first-read gate must.
  m.backing().corrupt_stored(7, 0x10);
  f.top.spawn_thread("t", [&] {
    bus::word r = 0;
    EXPECT_FALSE(m.read(0x107, &r));  // first-read integrity gate
    EXPECT_FALSE(m.read(0x100, &r));  // any word of the torn page fails
    EXPECT_EQ(m.scrub_now(), 1u);     // golden restore
    EXPECT_TRUE(m.read(0x107, &r));
    EXPECT_EQ(r, img->word_at(7));
  });
  f.sim.run();
  EXPECT_EQ(m.stats().errors, 2u);
  EXPECT_EQ(led.count(fault::FaultEventKind::kEccUncorrectable), 2u);
  EXPECT_EQ(led.records()[0].arg, 0u);  // arg 0 = torn page, not an upset
  EXPECT_EQ(led.count(fault::FaultEventKind::kEccScrub), 1u);
  EXPECT_GE(m.backing().stats().checksum_failures, 2u);
  EXPECT_EQ(m.backing().stats().golden_restores, 1u);
}

TEST(PagedStore, GoldenRestoreResharesTheImagePage) {
  auto img = mem::ImageRegistry::instance().intern(
      pattern(kPageWords, 0x60D60000));
  mem::PagedStore s(kPageWords, "golden");
  s.attach_image(img, 0);
  EXPECT_TRUE(s.page_shared(0));
  s.corrupt_stored(3, 1);
  EXPECT_FALSE(s.page_shared(0));  // the upset split into a private copy
  EXPECT_TRUE(s.page_has_golden(0));
  EXPECT_FALSE(s.verify_page(0));
  EXPECT_TRUE(s.restore_from_golden(0));
  EXPECT_TRUE(s.page_shared(0));  // re-adopted the golden page itself
  EXPECT_TRUE(s.verify_page(0));
  EXPECT_EQ(s.peek(3), img->word_at(3));
  // API-write divergence drops the link: restore must refuse, not revert.
  s.write(3, 42);
  EXPECT_FALSE(s.page_has_golden(0));
  EXPECT_FALSE(s.restore_from_golden(0));
  EXPECT_EQ(s.peek(3), 42);
  EXPECT_TRUE(s.scrub_page(0));  // clean page: scrub is a no-op success
}

TEST(PagedStore, FlatVsPagedDifferentialAcrossTimingModes) {
  // The same traffic over {paged, flat} x {timed, loose} must produce
  // identical data and identical end-to-end simulated time — the paged
  // backing and its DMI games are performance shape, not behavior.
  const auto img_words = pattern(kPageWords, 0xD1FF0000);
  std::vector<bus::word> ref_data;
  u64 ref_ps = 0;
  bool have_ref = false;
  for (const bool flat : {false, true}) {
    for (const bool loose : {false, true}) {
      Fixture f;
      if (loose) f.sim.set_timing_mode(kern::TimingMode::kLoose);
      bus::Bus b(f.top, "bus");
      const bool prev = mem::PagedStore::debug_set_flat_backing(flat);
      mem::Memory m(f.top, "ram", 0, 3 * kPageWords, 2_ns, 1_ns);
      mem::PagedStore::debug_set_flat_backing(prev);
      b.bind_slave(m);
      m.attach_image(mem::ImageRegistry::instance().intern(img_words), 0);
      std::vector<bus::word> out(96, -1);
      f.top.spawn_thread("t", [&] {
        auto d = pattern(64, 0x0DD00000);
        // Writes straddling the attached page's end trigger a COW split in
        // paged mode and plain stores in flat mode.
        EXPECT_EQ(b.burst_write(static_cast<bus::addr_t>(kPageWords - 32), d,
                                0),
                  BusStatus::kOk);
        EXPECT_EQ(b.burst_read(static_cast<bus::addr_t>(kPageWords - 48), out,
                               0),
                  BusStatus::kOk);
        bus::word w = 0;
        EXPECT_EQ(b.read(5, &w, 0), BusStatus::kOk);
        EXPECT_EQ(w, img_words[5]);
      });
      f.sim.run();
      if (!have_ref) {
        ref_data = out;
        ref_ps = f.sim.now().picoseconds();
        have_ref = true;
      } else {
        EXPECT_EQ(out, ref_data) << "flat=" << flat << " loose=" << loose;
        EXPECT_EQ(f.sim.now().picoseconds(), ref_ps)
            << "flat=" << flat << " loose=" << loose;
      }
    }
  }
}

TEST(PagedStore, BackgroundScrubberRepairsOnItsPeriod) {
  Fixture f;
  mem::Memory m(f.top, "ram", 0, kPageWords);
  fault::FaultLedger led;
  m.set_fault_ledger(&led);
  auto img = mem::ImageRegistry::instance().intern(
      pattern(kPageWords, 0x5C4B0000));
  m.attach_image(img, 0);
  mem::EccConfig ec;  // empty plan: no upsets, but the scrubber still sweeps
  ec.scrub_period = 100_ns;
  m.set_ecc(std::move(ec));
  f.top.spawn_thread("t", [&] {
    bus::word r = 0;
    EXPECT_TRUE(m.read(3, &r));  // first read verifies the page
    m.backing().corrupt_stored(3, 0x8);  // latent upset after verification
    EXPECT_FALSE(m.backing().verify_page(0));
    kern::wait(250_ns);  // two scrubber periods pass
    EXPECT_TRUE(m.backing().verify_page(0));
    EXPECT_TRUE(m.read(3, &r));
    EXPECT_EQ(r, img->word_at(3));
  });
  // Bounded: the scrubber daemon keeps the timed queue populated forever
  // (same contract as a Clock).
  f.sim.run(300_ns);
  ASSERT_NE(m.ecc(), nullptr);
  EXPECT_GE(m.ecc()->stats().scrub_sweeps, 2u);
  EXPECT_EQ(m.ecc()->stats().scrub_repairs, 1u);
  EXPECT_EQ(led.count(fault::FaultEventKind::kEccScrub), 1u);
}

TEST(PagedStore, EccRecoveryLadderConvergesOnGoldenRepair) {
  // End to end: a double-bit storage upset fails a DRCF configuration
  // fetch, the poisoned word keeps the retry failing until repair-on-detect
  // restores the page from its golden image, and the next retry completes.
  Fixture f;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  bc.split_transactions = true;
  bus::Bus sys_bus(f.top, "bus", bc);
  mem::Memory cfg_mem(f.top, "cfg_mem", 0x10000, 4096);
  mem::Memory ctx_mem(f.top, "ctx_mem", 0x100, 16);
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  dc.recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
  dc.recovery.max_attempts = 4;
  dc.recovery.backoff = 50_ns;
  drcf::Drcf fabric(f.top, "drcf", dc);
  const usize id = fabric.add_context(
      ctx_mem, {.config_address = 0x10000, .size_words = 64, .gates = 10'000});
  const auto bits = pattern(64, 0xB1750000);
  u64 digest = drcf::kConfigDigestSeed;
  for (const bus::word w : bits) digest = drcf::config_digest_step(digest, w);
  cfg_mem.attach_image(mem::ImageRegistry::instance().intern(bits), 0x10000);
  fabric.set_expected_digest(id, digest);
  fabric.mst_port.bind(sys_bus);
  sys_bus.bind_slave(cfg_mem);
  sys_bus.bind_slave(fabric);

  fault::FaultLedger led;
  cfg_mem.set_fault_ledger(&led);
  mem::EccConfig ec;
  fault::ScriptedFault shot;  // exactly one double-bit upset, first fetch
  shot.kind = fault::FaultKind::kCorrupt;
  shot.corrupt_bits = 2;
  ec.upsets.scripted.push_back(shot);
  cfg_mem.set_ecc(std::move(ec));

  BusStatus st{};
  bus::word r = 0;
  f.top.spawn_thread("m", [&] { st = sys_bus.read(0x105, &r); });
  f.sim.run();
  EXPECT_EQ(st, BusStatus::kOk);
  EXPECT_GE(fabric.stats().fetch_errors, 1u);
  EXPECT_GE(fabric.stats().fetch_retries, 1u);
  EXPECT_EQ(fabric.stats().load_give_ups, 0u);
  ASSERT_NE(cfg_mem.ecc(), nullptr);
  EXPECT_EQ(cfg_mem.ecc()->stats().uncorrectable, 1u);
  EXPECT_EQ(cfg_mem.ecc()->stats().repairs, 1u);
  // Upset + poisoned re-read both ledgered; the repair is a scrub event.
  EXPECT_GE(led.count(fault::FaultEventKind::kEccUncorrectable), 2u);
  EXPECT_EQ(led.count(fault::FaultEventKind::kEccScrub), 1u);
  EXPECT_GE(fabric.fault_ledger().count(fault::FaultEventKind::kRetry), 1u);
  EXPECT_EQ(fabric.fault_ledger().count(fault::FaultEventKind::kRecovered),
            1u);
}

}  // namespace
}  // namespace adriatic
