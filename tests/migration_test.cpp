// Differential checkpoint-equivalence suite for task migration: running a
// chunked job to completion on fabric A must be functionally identical to
// running it halfway, checkpointing, migrating the state over the bus and
// resuming on fabric B — across timing modes, loose quanta, prefetch
// policies and fault plans that interrupt the transfer. Plus table-driven
// negative restore tests (a bad state is rejected loudly and never corrupts
// a running context), preemptive-checkpoint parking, and the heterogeneous
// DRCF-to-MorphoSys handoff.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "accel/accel_lib.hpp"
#include "conformance/migration_harness.hpp"
#include "conformance/scenarios.hpp"
#include "drcf/task_state.hpp"
#include "kernel/sched_trace.hpp"
#include "kernel/simulation.hpp"
#include "morphosys/kernels.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "soc/hwacc.hpp"
#include "soc/migration.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;
using conformance::MigrationRunResult;
using conformance::MigrationSpec;
using conformance::ScenarioOptions;
using conformance::run_migration;

struct TimingPoint {
  kern::TimingMode mode;
  kern::Time quantum;
  const char* label;
};

std::vector<TimingPoint> timing_points() {
  return {{kern::TimingMode::kTimed, kern::Time::zero(), "timed"},
          {kern::TimingMode::kLoose, 10_ns, "loose_10ns"},
          {kern::TimingMode::kLoose, 100_ns, "loose_100ns"},
          {kern::TimingMode::kLoose, 10_us, "loose_10us"}};
}

/// Two scripted bus errors on the transfer path; the destination ladder
/// (retry with backoff) must absorb both.
void arm_transfer_faults(MigrationSpec* spec) {
  fault::ScriptedFault shot;
  shot.kind = fault::FaultKind::kError;
  shot.count = 2;
  spec->transfer_faults.seed = 0x516;
  spec->transfer_faults.scripted.push_back(shot);
  spec->dst_recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
  spec->dst_recovery.max_attempts = 4;
  spec->dst_recovery.backoff = 100_ns;
}

// --- the differential suite -------------------------------------------------

TEST(MigrationDifferentialTest, CheckpointEquivalenceSweep) {
  const drcf::PrefetchPolicy policies[] = {
      drcf::PrefetchPolicy::kOnDemand, drcf::PrefetchPolicy::kStaticNext,
      drcf::PrefetchPolicy::kHistory, drcf::PrefetchPolicy::kHybrid};
  for (const bool faulted : {false, true}) {
    for (const auto policy : policies) {
      std::optional<MigrationRunResult> timed_migrated;
      for (const auto& tp : timing_points()) {
        SCOPED_TRACE(std::string(faulted ? "faulted" : "clean") + " policy " +
                     std::to_string(static_cast<int>(policy)) + " " +
                     tp.label);
        ScenarioOptions opt;
        opt.timing_mode = tp.mode;
        opt.quantum = tp.quantum;

        MigrationSpec spec;
        spec.prefetch_policy = policy;
        spec.cache_slots = 2;
        if (faulted) arm_transfer_faults(&spec);

        MigrationSpec straight_spec = spec;
        straight_spec.migrate = false;
        const auto straight = run_migration(straight_spec, opt);
        const auto migrated = run_migration(spec, opt);

        ASSERT_TRUE(straight.cpu_finished);
        ASSERT_TRUE(migrated.cpu_finished);
        ASSERT_TRUE(migrated.migration.ok())
            << soc::to_string(migrated.migration.status);

        // The headline equivalence: identical functional outputs, identical
        // fabric fault-ledger functional digests.
        EXPECT_EQ(migrated.scenario.output_digest,
                  straight.scenario.output_digest);
        EXPECT_EQ(migrated.src_ledger_digest, straight.src_ledger_digest);
        EXPECT_EQ(migrated.dst_ledger_digest, straight.dst_ledger_digest);

        // Migration accounting fires exactly once — and never on the
        // straight run.
        EXPECT_EQ(straight.controller.migrations, 0u);
        EXPECT_EQ(straight.controller.state_words_moved, 0u);
        EXPECT_EQ(straight.src_stats.checkpoints, 0u);
        EXPECT_EQ(migrated.controller.migrations, 1u);
        EXPECT_EQ(migrated.controller.checkpoints, 1u);
        EXPECT_EQ(migrated.controller.restores, 1u);
        EXPECT_EQ(migrated.src_stats.checkpoints, 1u);
        EXPECT_EQ(migrated.dst_stats.restores, 1u);
        EXPECT_GT(migrated.controller.state_words_moved,
                  static_cast<u64>(drcf::TaskState::kHeaderWords));
        EXPECT_EQ(migrated.migration.words_moved,
                  migrated.controller.state_words_moved);

        if (faulted) {
          EXPECT_EQ(migrated.controller.transfer_faults_recovered, 1u);
          // The transfer faults land in the controller's own ledger, not the
          // fabrics' — and they did land.
          EXPECT_NE(migrated.controller_ledger_digest,
                    straight.controller_ledger_digest);
        } else {
          EXPECT_EQ(migrated.controller.transfer_faults_recovered, 0u);
          EXPECT_EQ(migrated.controller_ledger_digest,
                    straight.controller_ledger_digest);
        }

        // Cross-timing-mode invariance of the migrated run itself.
        if (tp.mode == kern::TimingMode::kTimed) {
          EXPECT_EQ(migrated.scenario.loose_syncs, 0u);
          timed_migrated = migrated;
        } else {
          ASSERT_TRUE(timed_migrated.has_value());
          EXPECT_GT(migrated.scenario.loose_syncs, 0u);
          EXPECT_EQ(migrated.scenario.output_digest,
                    timed_migrated->scenario.output_digest);
          EXPECT_EQ(migrated.scenario.fault_ledger_digest,
                    timed_migrated->scenario.fault_ledger_digest);
          EXPECT_EQ(migrated.controller_ledger_digest,
                    timed_migrated->controller_ledger_digest);
        }
      }
    }
  }
}

TEST(MigrationPreemptTest, ParkedSnapshotMigratesAndMatchesStraightRun) {
  MigrationSpec spec;
  spec.preempt = true;
  spec.cache_slots = 2;
  MigrationSpec straight_spec = spec;
  straight_spec.migrate = false;
  for (const auto& tp : timing_points()) {
    SCOPED_TRACE(tp.label);
    ScenarioOptions opt;
    opt.timing_mode = tp.mode;
    opt.quantum = tp.quantum;
    const auto straight = run_migration(straight_spec, opt);
    const auto migrated = run_migration(spec, opt);
    ASSERT_TRUE(straight.cpu_finished);
    ASSERT_TRUE(migrated.cpu_finished);
    ASSERT_TRUE(migrated.migration.ok())
        << soc::to_string(migrated.migration.status);
    EXPECT_EQ(migrated.scenario.output_digest,
              straight.scenario.output_digest);
    // The state came from the scheduler's eviction-time park, not from a
    // live checkpoint by the controller.
    EXPECT_GE(migrated.src_stats.preempt_parks, 1u);
    EXPECT_GE(migrated.src_stats.checkpoints, 1u);
    EXPECT_EQ(migrated.controller.checkpoints, 0u);
    EXPECT_EQ(migrated.controller.migrations, 1u);
    EXPECT_EQ(migrated.controller.restores, 1u);
    EXPECT_EQ(migrated.dst_stats.restores, 1u);
  }
}

// --- negative restore tests -------------------------------------------------

/// A minimal single-fabric rig the restore tests poke at directly (the
/// checkpoint/restore side-door needs no running simulation).
struct RestoreRig {
  kern::Simulation sim;
  std::unique_ptr<netlist::Elaborated> e;
  drcf::Drcf* fabric = nullptr;

  RestoreRig() {
    netlist::Design d;
    netlist::BusDecl bus_decl;
    bus_decl.config.cycle_time = 10_ns;
    d.add("system_bus", bus_decl);
    netlist::MemoryDecl ram;
    ram.low = 0x1000;
    ram.words = 1024;
    ram.bus = "system_bus";
    d.add("ram", ram);
    netlist::MemoryDecl cfg;
    cfg.low = 0x100000;
    cfg.words = 1u << 16;
    cfg.bus = "system_bus";
    d.add("cfg_mem", cfg);
    netlist::HwAccelDecl acc;
    acc.base = 0x100;
    acc.spec = accel::make_crc_spec();
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add("acc", acc);
    transform::TransformOptions topt;
    topt.drcf_config.technology = drcf::varicore_like();
    topt.config_memory = "cfg_mem";
    const std::vector<std::string> candidates{"acc"};
    const auto report = transform::transform_to_drcf(d, candidates, topt);
    if (!report.ok) throw std::runtime_error("transform failed");
    e = std::make_unique<netlist::Elaborated>(sim, d);
    fabric = &e->get_drcf(report.drcf_name);
  }
};

TEST(MigrationRestoreNegativeTest, BadStatesAreRejectedLoudlyAndHarmlessly) {
  RestoreRig rig;
  auto base = rig.fabric->checkpoint_task(0);
  ASSERT_TRUE(base.has_value());
  ASSERT_NE(base->config_digest, 0u)
      << "elaboration should have armed the context's expected digest";

  struct Case {
    const char* name;
    usize ctx;
    std::function<void(drcf::TaskState&)> corrupt;
    drcf::RestoreError want;
  };
  const Case cases[] = {
      {"digest_mismatch", 0,
       [](drcf::TaskState& s) { s.config_digest ^= 0xDEADBEEFu; },
       drcf::RestoreError::kDigestMismatch},
      {"truncated_image", 0,
       [](drcf::TaskState& s) { s.image.pop_back(); },
       drcf::RestoreError::kTruncatedImage},
      {"geometry_mismatch", 0,
       [](drcf::TaskState& s) {
         s.window_words += 4;
         s.image.resize(s.window_words, 0);
       },
       drcf::RestoreError::kGeometryMismatch},
      {"unknown_context", 7, [](drcf::TaskState&) {},
       drcf::RestoreError::kUnknownContext},
  };

  u64 rejects = 0;
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    drcf::TaskState bad = *base;
    c.corrupt(bad);
    EXPECT_EQ(rig.fabric->restore_task(c.ctx, bad), c.want);
    ++rejects;
    // Loud: a typed error plus a ledger entry plus a stats bump.
    EXPECT_EQ(rig.fabric->stats().restore_rejects, rejects);
    EXPECT_EQ(rig.fabric->fault_ledger().count(
                  fault::FaultEventKind::kMigrateError),
              rejects);
    // Harmless: the live context is untouched by a rejected restore.
    auto after = rig.fabric->checkpoint_task(0);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->image, base->image);
  }

  // The untampered state still restores cleanly afterwards.
  EXPECT_EQ(rig.fabric->restore_task(0, *base), drcf::RestoreError::kNone);
  EXPECT_EQ(rig.fabric->stats().restores, 1u);
}

TEST(MigrationTraceTest, CheckpointAndRestoreEmitMigrateRecords) {
  struct Collector : kern::SchedulerObserver {
    u64 migrates = 0;
    void on_record(const kern::SchedRecord& r) override {
      if (r.kind == kern::SchedRecord::Kind::kMigrate) ++migrates;
    }
  };
  RestoreRig rig;
  Collector obs;
  rig.sim.set_observer(&obs);
  auto snap = rig.fabric->checkpoint_task(0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(obs.migrates, 1u);
  EXPECT_EQ(rig.fabric->restore_task(0, *snap), drcf::RestoreError::kNone);
  EXPECT_EQ(obs.migrates, 2u);
}

// --- serialized-form negatives ----------------------------------------------

TEST(TaskStateSerializationTest, RoundTripAndNegatives) {
  drcf::TaskState s;
  s.context_id = 3;
  s.config_digest = 0x1234'5678'9ABC'DEF0ULL;
  s.window_words = 8;
  s.progress_cursor = 99;
  s.image = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto words = s.to_words();
  ASSERT_EQ(words.size(), drcf::TaskState::kHeaderWords + 8);

  drcf::TaskState out;
  ASSERT_EQ(drcf::TaskState::parse(words, &out), drcf::RestoreError::kNone);
  EXPECT_EQ(out.context_id, s.context_id);
  EXPECT_EQ(out.config_digest, s.config_digest);
  EXPECT_EQ(out.window_words, s.window_words);
  EXPECT_EQ(out.progress_cursor, s.progress_cursor);
  EXPECT_EQ(out.image, s.image);

  auto bad = words;
  bad[0] ^= 1;  // wrong magic
  EXPECT_EQ(drcf::TaskState::parse(bad, &out),
            drcf::RestoreError::kBadHeader);

  const std::vector<bus::word> shorty(words.begin(), words.begin() + 4);
  EXPECT_EQ(drcf::TaskState::parse(shorty, &out),
            drcf::RestoreError::kBadHeader);

  bad = words;
  bad.pop_back();  // payload shorter than the header promises
  EXPECT_EQ(drcf::TaskState::parse(bad, &out),
            drcf::RestoreError::kTruncatedImage);

  bad = words;
  bad[drcf::TaskState::kHeaderWords] ^= 4;  // one flipped payload bit
  EXPECT_EQ(drcf::TaskState::parse(bad, &out),
            drcf::RestoreError::kDigestMismatch);
}

// --- heterogeneous handoff --------------------------------------------------

TEST(MigrationMorphosysTest, HandoffRunsKernelOverCheckpointedData) {
  constexpr bus::addr_t kAcc = 0x100;
  constexpr bus::addr_t kSrc = 0x1000;
  constexpr bus::addr_t kDst = 0x1400;
  constexpr usize kWords = 32;

  std::vector<bus::word> data(kWords);
  Xoshiro256 rng(21);
  for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 999));

  struct Hook {
    std::function<void()> fire;
  };
  auto hook = std::make_shared<Hook>();
  hook->fire = [] {};

  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);
  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 4096;
  ram.bus = "system_bus";
  d.add("ram", ram);
  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  netlist::HwAccelDecl acc;
  acc.base = kAcc;
  acc.spec = accel::make_crc_spec();
  acc.slave_bus = acc.master_bus = "system_bus";
  d.add("acc", acc);
  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [data, hook](soc::Cpu& c) {
    c.burst_write(kSrc, data);
    // Program the task's registers but never start it on the DRCF side:
    // the MorphoSys machine takes over from the checkpointed registers.
    c.write(kAcc + soc::HwAccel::kSrc, kSrc);
    c.write(kAcc + soc::HwAccel::kDst, kDst);
    c.write(kAcc + soc::HwAccel::kLen, kWords);
    hook->fire();
  };
  d.add("cpu", cpu);

  transform::TransformOptions topt;
  topt.drcf_config.technology = drcf::varicore_like();
  topt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"acc"};
  const auto report = transform::transform_to_drcf(d, candidates, topt);
  ASSERT_TRUE(report.ok);

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  soc::MigrationConfig mcfg;
  mcfg.staging_base = 0x100000 + (1u << 16) - 0x100;
  soc::MigrationController ctrl(e.top(), "migrator", mcfg);
  ctrl.mst_port.bind(e.get_bus("system_bus"));

  morphosys::Machine machine;
  const auto contexts = morphosys::scale_shift_contexts(3, 1);
  auto& fabric = e.get_drcf(report.drcf_name);
  soc::MigrationResult res;
  hook->fire = [&] {
    soc::MorphosysHandoff handoff;
    handoff.machine = &machine;
    handoff.contexts = contexts;
    res = ctrl.migrate_to_morphosys(fabric, 0, handoff);
  };
  sim.run();

  ASSERT_TRUE(res.ok()) << soc::to_string(res.status);
  EXPECT_EQ(ctrl.stats().morphosys_handoffs, 1u);
  EXPECT_EQ(ctrl.stats().checkpoints, 1u);
  EXPECT_EQ(ctrl.stats().migrations, 0u);  // a handoff is not a DRCF restore
  // State + input + output all crossed the bus.
  EXPECT_GT(res.words_moved, static_cast<u64>(2 * kWords));

  // Reference: the same kernel over the same data on a second machine.
  morphosys::Machine ref;
  std::vector<i32> in(data.begin(), data.end());
  ref.mem_load(0x1000, in);
  ASSERT_TRUE(morphosys::run_tile_kernel(ref, contexts, 0x1000, 0x2000,
                                         kWords));
  auto& ram_mem = e.get_memory("ram");
  for (usize i = 0; i < kWords; ++i) {
    EXPECT_EQ(ram_mem.peek(kDst + static_cast<bus::addr_t>(i)),
              ref.mem_read(0x2000 + i))
        << "word " << i;
  }
}

// --- registry wiring --------------------------------------------------------

TEST(MigrationScenarioTest, GoldenScenariosAreRegisteredAndRun) {
  const auto& names = conformance::scenario_names();
  ASSERT_GE(names.size(), 3u);
  // Appended strictly after every pre-existing scenario, so the golden
  // file's earlier lines never move.
  EXPECT_EQ(names[names.size() - 3], "migrate_clean");
  EXPECT_EQ(names[names.size() - 2], "migrate_preempt");
  EXPECT_EQ(names[names.size() - 1], "migrate_faulted_transfer");
  for (const auto& name :
       {"migrate_clean", "migrate_preempt", "migrate_faulted_transfer"}) {
    SCOPED_TRACE(name);
    const auto r = conformance::run_scenario(name);
    ASSERT_TRUE(r.has_value());
    EXPECT_GT(r->records, 0u);
    EXPECT_NE(r->output_digest, 0u);
    EXPECT_NE(r->fault_ledger_digest, 0u);
  }
}

}  // namespace
}  // namespace adriatic
