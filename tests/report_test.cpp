// JSON writer and system-report tests, plus a full WLAN-style integration
// test that pushes frames through a DRCF pipeline and checks bit-exactness
// against the pure functional kernels.
#include <gtest/gtest.h>

#include <sstream>

#include "accel/accel_lib.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/report.hpp"
#include "transform/transform.hpp"
#include "util/json.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;

TEST(Json, ScalarsAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.field("a", static_cast<u64>(42));
  w.field("b", "text");
  w.field("c", true);
  w.field("pi", 3.5);
  w.key("list");
  w.begin_array();
  w.value(static_cast<u64>(1));
  w.value(static_cast<u64>(2));
  w.end();
  w.end();
  EXPECT_TRUE(w.balanced());
  EXPECT_EQ(w.str(),
            R"({"a":42,"b":"text","c":true,"pi":3.5,"list":[1,2]})");
}

TEST(Json, EscapesSpecials) {
  JsonWriter w;
  w.begin_object();
  w.field("k", "line\nquote\"back\\slash\ttab");
  w.end();
  EXPECT_EQ(w.str(), "{\"k\":\"line\\nquote\\\"back\\\\slash\\ttab\"}");
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_array();
  w.begin_object();
  w.end();
  w.begin_array();
  w.end();
  w.end();
  EXPECT_EQ(w.str(), "[{},[]]");
  EXPECT_TRUE(w.balanced());
}

// ---------------------------------------------------------------------------

netlist::Design make_wlan_design() {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x4000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl fft;
  fft.base = 0x100;
  fft.spec = accel::make_fft_spec(64);
  fft.slave_bus = fft.master_bus = "system_bus";
  d.add("fft", fft);

  netlist::HwAccelDecl crc;
  crc.base = 0x200;
  crc.spec = accel::make_crc_spec();
  crc.slave_bus = crc.master_bus = "system_bus";
  d.add("crc", crc);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(314);
    for (int frame = 0; frame < 3; ++frame) {
      std::vector<bus::word> sym(64);
      for (auto& s : sym)
        s = accel::pack_cplx(static_cast<i16>(rng.next_range(-6000, 6000)),
                             static_cast<i16>(rng.next_range(-6000, 6000)));
      c.burst_write(0x1000, sym);
      c.write(0x100 + soc::HwAccel::kSrc, 0x1000);
      c.write(0x100 + soc::HwAccel::kDst, 0x1100);
      c.write(0x100 + soc::HwAccel::kLen, 64);
      c.write(0x100 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x100 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   100_ns);
      c.write(0x100 + soc::HwAccel::kStatus, 0);
      c.write(0x200 + soc::HwAccel::kSrc, 0x1100);
      c.write(0x200 + soc::HwAccel::kDst, 0x1200);
      c.write(0x200 + soc::HwAccel::kLen, 64);
      c.write(0x200 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x200 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   100_ns);
      c.write(0x200 + soc::HwAccel::kStatus, 0);
    }
  };
  d.add("cpu", cpu);
  return d;
}

TEST(Integration, WlanPipelineBitExactThroughDrcf) {
  auto d = make_wlan_design();
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"fft", "crc"};
  ASSERT_TRUE(transform::transform_to_drcf(d, candidates, opt).ok);

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  ASSERT_TRUE(e.get_processor("cpu").finished());

  // Recompute the last frame's expected output from the pure kernels.
  Xoshiro256 rng(314);
  std::vector<bus::word> sym(64);
  for (int frame = 0; frame < 3; ++frame)
    for (auto& s : sym)
      s = accel::pack_cplx(static_cast<i16>(rng.next_range(-6000, 6000)),
                           static_cast<i16>(rng.next_range(-6000, 6000)));
  const auto spectrum = accel::fft_q15(sym);
  auto expect = spectrum;
  expect.push_back(static_cast<i32>(accel::crc32_words(spectrum)));

  auto& ram = e.get_memory("ram");
  for (usize i = 0; i < expect.size(); ++i)
    EXPECT_EQ(ram.peek(0x1200 + static_cast<u32>(i)), expect[i]) << i;

  // Pipeline stats make sense: 3 frames x 2 stages, alternating contexts.
  auto& fabric = e.get_drcf("drcf1");
  EXPECT_EQ(fabric.stats().switches, 6u);
}

TEST(Integration, SystemReportTablesAndJson) {
  auto d = make_wlan_design();
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"fft", "crc"};
  ASSERT_TRUE(transform::transform_to_drcf(d, candidates, opt).ok);

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();

  netlist::SystemReport report(d, e);
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("=== system report"), std::string::npos);
  EXPECT_NE(text.find("system_bus"), std::string::npos);
  EXPECT_NE(text.find("drcf1"), std::string::npos);
  EXPECT_NE(text.find("cfg_mem"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"kind\":\"drcf\""), std::string::npos);
  EXPECT_NE(json.find("\"switches\":6"), std::string::npos);
  EXPECT_NE(json.find("\"finished\":true"), std::string::npos);
  EXPECT_NE(json.find("\"contexts\":[{"), std::string::npos);
  // Crude structural sanity: balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace adriatic
