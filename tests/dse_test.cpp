// Tests for the efficiency ladder (Fig. 2), area estimators, partitioning
// advisor (Sec. 5.1 rules of thumb) and Pareto extraction.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "dse/advisor.hpp"
#include "dse/pareto.hpp"
#include "estimate/area.hpp"
#include "estimate/efficiency.hpp"

namespace adriatic {
namespace {

using estimate::ArchStyle;

TEST(Efficiency, LadderIsMonotone) {
  const auto spec = accel::make_fir_spec(accel::fir_lowpass_taps(32));
  const auto ladder =
      estimate::efficiency_ladder(spec, 4096, drcf::varicore_like());
  ASSERT_EQ(ladder.size(), 5u);
  // Efficiency strictly increases from GPP to ASIC (Fig. 2's diagonal)...
  for (usize i = 1; i < ladder.size(); ++i)
    EXPECT_GT(ladder[i].mops_per_mw, ladder[i - 1].mops_per_mw)
        << ladder[i].name << " vs " << ladder[i - 1].name;
  // ...while flexibility strictly decreases.
  for (usize i = 1; i < ladder.size(); ++i)
    EXPECT_LT(ladder[i].flexibility, ladder[i - 1].flexibility);
}

TEST(Efficiency, AsicGppGapIsTwoToThreeOrders) {
  // Fig. 2: "Factor of 100-1000" between dedicated hardware and GPP.
  for (const auto& spec :
       {accel::make_fft_spec(64), accel::make_viterbi_spec(),
        accel::make_dct_spec()}) {
    const auto ladder =
        estimate::efficiency_ladder(spec, 4096, drcf::varicore_like());
    const double gap = ladder.back().mops_per_mw / ladder.front().mops_per_mw;
    EXPECT_GE(gap, 100.0) << spec.name;
    EXPECT_LE(gap, 20000.0) << spec.name;
  }
}

TEST(Efficiency, BandsMatchFigure2) {
  const auto spec = accel::make_fft_spec(64);
  const auto ladder =
      estimate::efficiency_ladder(spec, 4096, drcf::varicore_like());
  // GPP band: 0.1-1 MIPS/mW (we allow a little slack at the edges).
  EXPECT_GE(ladder[0].mops_per_mw, 0.05);
  EXPECT_LE(ladder[0].mops_per_mw, 2.0);
  // Reconfigurable sits an order above the instruction-set styles (our
  // conservative VariCore power figure places it below Fig. 2's optimistic
  // 100-1000 band; the ordering is what the figure asserts).
  EXPECT_GE(ladder[3].mops_per_mw, 5.0);
  // Reconfigurable sits between ASIP and ASIC.
  EXPECT_GT(ladder[3].mops_per_mw, ladder[2].mops_per_mw);
  EXPECT_LT(ladder[3].mops_per_mw, ladder[4].mops_per_mw);
}

TEST(Efficiency, ReconfigurableSlowerThanAsic) {
  const auto spec = accel::make_crc_spec();
  const auto recon = estimate::evaluate_style(ArchStyle::kReconfigurable,
                                              spec, 1024,
                                              drcf::virtex2pro_like());
  const auto asic = estimate::evaluate_style(ArchStyle::kAsic, spec, 1024,
                                             drcf::virtex2pro_like());
  EXPECT_GT(recon.exec_time_us, asic.exec_time_us);
  accel::KernelSpec bad;
  EXPECT_THROW(
      estimate::evaluate_style(ArchStyle::kGpp, bad, 1, drcf::varicore_like()),
      std::invalid_argument);
}

TEST(Area, HardwiredSumsGates) {
  const u64 gates[] = {1000, 2000, 3000};
  EXPECT_EQ(estimate::hardwired_gates(gates), 6000u);
}

TEST(Area, DrcfSharesFabric) {
  const u64 gates[] = {10'000, 12'000, 9'000, 11'000};
  const auto tech = drcf::varicore_like();
  const auto one_slot = estimate::drcf_area(gates, tech, 1);
  // Fabric sized for the largest context only.
  EXPECT_EQ(one_slot.fabric_gates,
            static_cast<u64>(12'000 * tech.area_factor));
  EXPECT_GT(one_slot.config_store_words, 0u);
  const auto two_slot = estimate::drcf_area(gates, tech, 2);
  EXPECT_EQ(two_slot.fabric_gates,
            static_cast<u64>((12'000 + 11'000) * tech.area_factor));
  EXPECT_GT(two_slot.total_gate_equivalents(),
            one_slot.total_gate_equivalents() - 1);
}

TEST(Area, DrcfBeatsHardwiredForManySimilarKernels) {
  // The economic core of the paper's rule 1: with enough same-sized,
  // non-concurrent kernels, one shared fabric is smaller than N copies.
  std::vector<u64> gates(6, 20'000);
  const auto tech = drcf::morphosys_like();  // low area factor
  const auto drcf = estimate::drcf_area(gates, tech, 1);
  EXPECT_LT(drcf.total_gate_equivalents(),
            estimate::hardwired_gates(gates));
}

// ---------------------------------------------------------------------------

TEST(Advisor, GroupsSimilarNonConcurrentBlocks) {
  std::vector<dse::BlockProfile> blocks{
      {"fft", 20'000, 0.3, {}, false, false},
      {"viterbi", 45'000, 0.3, {}, false, false},
      {"crc", 18'000, 0.1, {}, false, false},
      {"aes", 28'000, 0.2, {}, false, false},
  };
  const auto advice = dse::advise_partitioning(blocks);
  ASSERT_EQ(advice.drcf_groups.size(), 1u);
  // fft, crc, aes are within 4x of each other; viterbi (45k vs 18k) joins
  // only if compatible with every member — 45/18 = 2.5 < 4, so all four.
  EXPECT_EQ(advice.drcf_groups[0].size(), 4u);
}

TEST(Advisor, ConcurrencySplitsGroups) {
  std::vector<dse::BlockProfile> blocks{
      {"rx_fft", 20'000, 0.3, {1}, false, false},   // concurrent with 1
      {"rx_viterbi", 22'000, 0.3, {0}, false, false},
      {"tx_fft", 21'000, 0.2, {}, false, false},
  };
  const auto advice = dse::advise_partitioning(blocks);
  // rx_fft+rx_viterbi cannot share; the greedy pass pairs rx_fft with
  // tx_fft instead, leaving rx_viterbi dedicated.
  ASSERT_EQ(advice.drcf_groups.size(), 1u);
  EXPECT_EQ(advice.drcf_groups[0], (std::vector<usize>{0, 2}));
  ASSERT_EQ(advice.dedicated.size(), 1u);
  EXPECT_EQ(advice.dedicated[0].first, 1u);
}

TEST(Advisor, HighDutyCycleStaysDedicated) {
  std::vector<dse::BlockProfile> blocks{
      {"always_on", 20'000, 0.95, {}, false, false},
      {"sometimes", 20'000, 0.2, {}, false, false},
  };
  const auto advice = dse::advise_partitioning(blocks);
  EXPECT_TRUE(advice.drcf_groups.empty());
  ASSERT_EQ(advice.dedicated.size(), 2u);
  EXPECT_NE(advice.dedicated[0].second.find("duty cycle"),
            std::string::npos);
}

TEST(Advisor, Rules2And3FlagSingletons) {
  std::vector<dse::BlockProfile> blocks{
      {"wlan_mac", 60'000, 0.3, {}, true, false},   // evolving standard
      {"codec", 9'000, 0.3, {}, false, true},       // next-gen growth
  };
  // 60k vs 9k exceeds the size-ratio limit, so rule 1 cannot pair them.
  const auto advice = dse::advise_partitioning(blocks);
  EXPECT_TRUE(advice.drcf_groups.empty());
  EXPECT_EQ(advice.reconfigurable_singletons.size(), 2u);
  ASSERT_EQ(advice.rationale.size(), 2u);
  EXPECT_NE(advice.rationale[0].find("rule 2"), std::string::npos);
  EXPECT_NE(advice.rationale[1].find("rule 3"), std::string::npos);
}

TEST(Advisor, SizeRatioLimitRespected) {
  std::vector<dse::BlockProfile> blocks{
      {"tiny", 1'000, 0.2, {}, false, false},
      {"huge", 50'000, 0.2, {}, false, false},
  };
  const auto advice = dse::advise_partitioning(blocks);
  EXPECT_TRUE(advice.drcf_groups.empty());
  EXPECT_EQ(advice.dedicated.size(), 2u);
}

// ---------------------------------------------------------------------------

TEST(Pareto, DominationBasics) {
  const dse::DesignPoint a{"a", {1.0, 1.0}};
  const dse::DesignPoint b{"b", {2.0, 2.0}};
  const dse::DesignPoint c{"c", {1.0, 2.0}};
  EXPECT_TRUE(dse::dominates(a, b));
  EXPECT_FALSE(dse::dominates(b, a));
  EXPECT_TRUE(dse::dominates(a, c));
  EXPECT_FALSE(dse::dominates(c, a));
  EXPECT_FALSE(dse::dominates(a, a));  // no strict improvement
  const dse::DesignPoint bad{"bad", {1.0}};
  EXPECT_THROW(dse::dominates(a, bad), std::invalid_argument);
}

TEST(Pareto, FrontExtraction) {
  std::vector<dse::DesignPoint> pts{
      {"fast_big", {1.0, 10.0}},
      {"slow_small", {10.0, 1.0}},
      {"balanced", {4.0, 4.0}},
      {"dominated", {5.0, 5.0}},
      {"worst", {20.0, 20.0}},
  };
  const auto front = dse::pareto_front(pts);
  EXPECT_EQ(front, (std::vector<usize>{0, 1, 2}));
}

TEST(Pareto, AllEqualAllOnFront) {
  std::vector<dse::DesignPoint> pts{
      {"a", {1.0, 2.0}}, {"b", {1.0, 2.0}}, {"c", {1.0, 2.0}}};
  EXPECT_EQ(dse::pareto_front(pts).size(), 3u);
  EXPECT_TRUE(dse::pareto_front({}).empty());
}

}  // namespace
}  // namespace adriatic
