// Failure-injection tests: the faulty memory model and end-to-end fault
// observability — corrupted inter-stage buffers must be caught by the CRC
// stage, with or without the DRCF in the path.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/faulty_memory.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;

TEST(FaultyMemory, NoErrorsAtZeroRate) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64, {.read_error_rate = 0.0});
  top.spawn_thread("t", [&] {
    bus::word w = 1234;
    m.write(5, &w);
    bus::word r = 0;
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(m.read(5, &r));
      EXPECT_EQ(r, 1234);
    }
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), 0u);
}

TEST(FaultyMemory, InjectsAtConfiguredRate) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 0.25, .bits_per_error = 1});
  u64 corrupted = 0;
  top.spawn_thread("t", [&] {
    bus::word w = 0;
    m.write(3, &w);
    for (int i = 0; i < 2000; ++i) {
      bus::word r = 0;
      m.read(3, &r);
      if (r != 0) ++corrupted;
    }
  });
  sim.run();
  // ~25% +- noise; a flipped bit always changes a zero word.
  EXPECT_NEAR(static_cast<double>(corrupted), 500.0, 80.0);
  EXPECT_EQ(m.injected_errors(), corrupted);
}

TEST(FaultyMemory, WindowRestrictsInjection) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 1.0,
                       .bits_per_error = 1,
                       .window_low = 10,
                       .window_high = 19});
  top.spawn_thread("t", [&] {
    bus::word w = 0, r = 0;
    m.write(5, &w);
    m.write(15, &w);
    m.read(5, &r);
    EXPECT_EQ(r, 0);  // outside the window: clean
    m.read(15, &r);
    EXPECT_NE(r, 0);  // inside: always corrupted at rate 1.0
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), 1u);
}

TEST(FaultInjection, CrcCatchesCorruptedPipelineBuffer) {
  // FIR writes into a faulty buffer; the CRC accelerator reads it back.
  // Frames whose buffer reads were corrupted must fail the CRC check
  // computed on the original data — no silent masking anywhere in the
  // bus/accelerator path.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  // Inject only in the staging buffer region.
  mem::FaultyMemory ram(top, "ram", 0x1000, 2048,
                        {.read_error_rate = 0.02,
                         .bits_per_error = 1,
                         .seed = 7,
                         .window_low = 0x1400,
                         .window_high = 0x14FF});
  b.bind_slave(ram);
  soc::HwAccel crc_acc(top, "crc", 0x100, accel::make_crc_spec());
  crc_acc.mst_port.bind(b);
  b.bind_slave(crc_acc);

  int frames_checked = 0;
  int crc_mismatches = 0;
  top.spawn_thread("driver", [&] {
    Xoshiro256 rng(42);
    for (int frame = 0; frame < 40; ++frame) {
      std::vector<bus::word> payload(64);
      for (auto& v : payload) v = static_cast<bus::word>(rng.next());
      const u32 golden = accel::crc32_words(payload);
      // Stage the payload in the fault window.
      b.burst_write(0x1400, payload, 0);
      // CRC accelerator reads it (possibly corrupted) and appends its CRC.
      bus::word w = 0x1400;
      b.write(0x100 + soc::HwAccel::kSrc, &w);
      w = 0x1500;
      b.write(0x100 + soc::HwAccel::kDst, &w);
      w = 64;
      b.write(0x100 + soc::HwAccel::kLen, &w);
      w = 1;
      b.write(0x100 + soc::HwAccel::kCtrl, &w);
      kern::wait(crc_acc.done_event());
      w = 0;
      b.write(0x100 + soc::HwAccel::kStatus, &w);
      bus::word crc_out = 0;
      b.read(0x1500 + 64, &crc_out, 0);
      ++frames_checked;
      if (static_cast<u32>(crc_out) != golden) ++crc_mismatches;
    }
  });
  sim.run();
  EXPECT_EQ(frames_checked, 40);
  // 64 reads/frame at 2%: virtually every frame sees >=1 corrupt word...
  // but allow for lucky clean frames. Mismatches must match injections
  // being nonzero, and a CRC mismatch requires at least one injection.
  EXPECT_GT(ram.injected_errors(), 0u);
  EXPECT_GT(crc_mismatches, 10);
  EXPECT_LE(static_cast<u64>(crc_mismatches), ram.injected_errors());
}

TEST(FaultInjection, DrcfForwardingDoesNotMaskFaults) {
  // Same pipeline but the CRC accelerator lives inside a DRCF: corruption
  // still surfaces, and the DRCF's own config fetches from a clean region
  // are unaffected.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::FaultyMemory ram(top, "ram", 0x1000, 2048,
                        {.read_error_rate = 1.0,  // always corrupt
                         .bits_per_error = 1,
                         .window_low = 0x1400,
                         .window_high = 0x143F});
  mem::Memory cfg_mem(top, "cfg", 0x100000, 256);
  b.bind_slave(ram);
  b.bind_slave(cfg_mem);
  soc::HwAccel crc_acc(top, "crc", 0x100, accel::make_crc_spec());
  crc_acc.mst_port.bind(b);
  drcf::Drcf fabric(top, "drcf", {});
  fabric.add_context(crc_acc, {.config_address = 0x100000, .size_words = 32});
  fabric.mst_port.bind(b);
  b.bind_slave(fabric);

  bool mismatch_detected = false;
  top.spawn_thread("driver", [&] {
    std::vector<bus::word> payload(16, 0x5A5A5A5A);
    const u32 golden = accel::crc32_words(payload);
    b.burst_write(0x1400, payload, 0);
    bus::word w = 0x1400;
    b.write(0x100 + soc::HwAccel::kSrc, &w);
    w = 0x1500;
    b.write(0x100 + soc::HwAccel::kDst, &w);
    w = 16;
    b.write(0x100 + soc::HwAccel::kLen, &w);
    w = 1;
    b.write(0x100 + soc::HwAccel::kCtrl, &w);
    kern::wait(crc_acc.done_event());
    bus::word crc_out = 0;
    b.read(0x1500 + 16, &crc_out, 0);
    mismatch_detected = static_cast<u32>(crc_out) != golden;
  });
  sim.run();
  EXPECT_TRUE(mismatch_detected);
  EXPECT_EQ(fabric.stats().fetch_errors, 0u);
  EXPECT_EQ(fabric.stats().switches, 1u);
}

}  // namespace
}  // namespace adriatic
