// Failure-injection tests: the faulty memory model and end-to-end fault
// observability — corrupted inter-stage buffers must be caught by the CRC
// stage, with or without the DRCF in the path.
#include <gtest/gtest.h>

#include <bit>
#include <string>
#include <vector>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "fault/interposer.hpp"
#include "fault/plan.hpp"
#include "kernel/kernel.hpp"
#include "memory/faulty_memory.hpp"
#include "memory/memory.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic {
namespace {

using namespace kern::literals;
using bus::BusStatus;

TEST(FaultyMemory, NoErrorsAtZeroRate) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64, {.read_error_rate = 0.0});
  top.spawn_thread("t", [&] {
    bus::word w = 1234;
    m.write(5, &w);
    bus::word r = 0;
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(m.read(5, &r));
      EXPECT_EQ(r, 1234);
    }
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), 0u);
}

TEST(FaultyMemory, InjectsAtConfiguredRate) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 0.25, .bits_per_error = 1});
  u64 corrupted = 0;
  top.spawn_thread("t", [&] {
    bus::word w = 0;
    m.write(3, &w);
    for (int i = 0; i < 2000; ++i) {
      bus::word r = 0;
      m.read(3, &r);
      if (r != 0) ++corrupted;
    }
  });
  sim.run();
  // ~25% +- noise; a flipped bit always changes a zero word.
  EXPECT_NEAR(static_cast<double>(corrupted), 500.0, 80.0);
  EXPECT_EQ(m.injected_errors(), corrupted);
}

TEST(FaultyMemory, WindowRestrictsInjection) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 1.0,
                       .bits_per_error = 1,
                       .window_low = 10,
                       .window_high = 19});
  top.spawn_thread("t", [&] {
    bus::word w = 0, r = 0;
    m.write(5, &w);
    m.write(15, &w);
    m.read(5, &r);
    EXPECT_EQ(r, 0);  // outside the window: clean
    m.read(15, &r);
    EXPECT_NE(r, 0);  // inside: always corrupted at rate 1.0
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), 1u);
}

TEST(FaultyMemory, EccCorrectsSingleBitUpsetsSilently) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 0.25, .bits_per_error = 1,
                       .ecc = true});
  top.spawn_thread("t", [&] {
    bus::word w = 0x5A5A5A5A;
    m.write(3, &w);
    for (int i = 0; i < 2000; ++i) {
      bus::word r = 0;
      ASSERT_TRUE(m.read(3, &r));
      EXPECT_EQ(r, 0x5A5A5A5Au);  // every upset corrected before delivery
    }
  });
  sim.run();
  // Upsets still happen (and are drawn from the same RNG stream as the
  // uncorrected configuration) — the ECC just masks them.
  EXPECT_NEAR(static_cast<double>(m.injected_errors()), 500.0, 80.0);
  EXPECT_EQ(m.ecc()->stats().corrected, m.injected_errors());
  EXPECT_EQ(m.ecc()->stats().uncorrectable, 0u);
}

TEST(FaultyMemory, MultiBitUpsetsAreLedgeredUncorrectable) {
  // Double-bit upsets are beyond single-error correction: the corrupted
  // payload is delivered (legacy semantics — downstream CRC must catch it)
  // but each one is detected and lands in the ledger with its bit count.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 1.0, .bits_per_error = 2});
  fault::FaultLedger led;
  m.set_fault_ledger(&led);
  constexpr int kReads = 50;
  top.spawn_thread("t", [&] {
    bus::word w = 0;
    m.write(3, &w);
    for (int i = 0; i < kReads; ++i) {
      bus::word r = 0;
      ASSERT_TRUE(m.read(3, &r));  // delivered, not failed
      // Exactly two bits flipped from the stored zero word.
      EXPECT_EQ(std::popcount(static_cast<u32>(r)), 2);
    }
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), static_cast<u64>(kReads));
  EXPECT_EQ(m.ecc()->stats().uncorrectable, static_cast<u64>(kReads));
  ASSERT_EQ(led.count(fault::FaultEventKind::kEccUncorrectable),
            static_cast<u64>(kReads));
  EXPECT_EQ(led.records()[0].arg, 2u);  // bits per upset, not a torn page
}

TEST(FaultInjection, CrcCatchesCorruptedPipelineBuffer) {
  // FIR writes into a faulty buffer; the CRC accelerator reads it back.
  // Frames whose buffer reads were corrupted must fail the CRC check
  // computed on the original data — no silent masking anywhere in the
  // bus/accelerator path.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  // Inject only in the staging buffer region.
  mem::FaultyMemory ram(top, "ram", 0x1000, 2048,
                        {.read_error_rate = 0.02,
                         .bits_per_error = 1,
                         .seed = 7,
                         .window_low = 0x1400,
                         .window_high = 0x14FF});
  b.bind_slave(ram);
  soc::HwAccel crc_acc(top, "crc", 0x100, accel::make_crc_spec());
  crc_acc.mst_port.bind(b);
  b.bind_slave(crc_acc);

  int frames_checked = 0;
  int crc_mismatches = 0;
  top.spawn_thread("driver", [&] {
    Xoshiro256 rng(42);
    for (int frame = 0; frame < 40; ++frame) {
      std::vector<bus::word> payload(64);
      for (auto& v : payload) v = static_cast<bus::word>(rng.next());
      const u32 golden = accel::crc32_words(payload);
      // Stage the payload in the fault window.
      b.burst_write(0x1400, payload, 0);
      // CRC accelerator reads it (possibly corrupted) and appends its CRC.
      bus::word w = 0x1400;
      b.write(0x100 + soc::HwAccel::kSrc, &w);
      w = 0x1500;
      b.write(0x100 + soc::HwAccel::kDst, &w);
      w = 64;
      b.write(0x100 + soc::HwAccel::kLen, &w);
      w = 1;
      b.write(0x100 + soc::HwAccel::kCtrl, &w);
      kern::wait(crc_acc.done_event());
      w = 0;
      b.write(0x100 + soc::HwAccel::kStatus, &w);
      bus::word crc_out = 0;
      b.read(0x1500 + 64, &crc_out, 0);
      ++frames_checked;
      if (static_cast<u32>(crc_out) != golden) ++crc_mismatches;
    }
  });
  sim.run();
  EXPECT_EQ(frames_checked, 40);
  // 64 reads/frame at 2%: virtually every frame sees >=1 corrupt word...
  // but allow for lucky clean frames. Mismatches must match injections
  // being nonzero, and a CRC mismatch requires at least one injection.
  EXPECT_GT(ram.injected_errors(), 0u);
  EXPECT_GT(crc_mismatches, 10);
  EXPECT_LE(static_cast<u64>(crc_mismatches), ram.injected_errors());
}

TEST(FaultInjection, DrcfForwardingDoesNotMaskFaults) {
  // Same pipeline but the CRC accelerator lives inside a DRCF: corruption
  // still surfaces, and the DRCF's own config fetches from a clean region
  // are unaffected.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::FaultyMemory ram(top, "ram", 0x1000, 2048,
                        {.read_error_rate = 1.0,  // always corrupt
                         .bits_per_error = 1,
                         .window_low = 0x1400,
                         .window_high = 0x143F});
  mem::Memory cfg_mem(top, "cfg", 0x100000, 256);
  b.bind_slave(ram);
  b.bind_slave(cfg_mem);
  soc::HwAccel crc_acc(top, "crc", 0x100, accel::make_crc_spec());
  crc_acc.mst_port.bind(b);
  drcf::Drcf fabric(top, "drcf", {});
  fabric.add_context(crc_acc, {.config_address = 0x100000, .size_words = 32});
  fabric.mst_port.bind(b);
  b.bind_slave(fabric);

  bool mismatch_detected = false;
  top.spawn_thread("driver", [&] {
    std::vector<bus::word> payload(16, 0x5A5A5A5A);
    const u32 golden = accel::crc32_words(payload);
    b.burst_write(0x1400, payload, 0);
    bus::word w = 0x1400;
    b.write(0x100 + soc::HwAccel::kSrc, &w);
    w = 0x1500;
    b.write(0x100 + soc::HwAccel::kDst, &w);
    w = 16;
    b.write(0x100 + soc::HwAccel::kLen, &w);
    w = 1;
    b.write(0x100 + soc::HwAccel::kCtrl, &w);
    kern::wait(crc_acc.done_event());
    bus::word crc_out = 0;
    b.read(0x1500 + 16, &crc_out, 0);
    mismatch_detected = static_cast<u32>(crc_out) != golden;
  });
  sim.run();
  EXPECT_TRUE(mismatch_detected);
  EXPECT_EQ(fabric.stats().fetch_errors, 0u);
  EXPECT_EQ(fabric.stats().switches, 1u);
}

// ---------------------------------------------------------------------------
// Fault-plan primitives.

TEST(FlipDistinctBits, ExactPopcountDeterministicAndClamped) {
  Xoshiro256 rng(1);
  for (u32 n = 1; n <= 8; ++n) {
    const u32 flipped = fault::flip_distinct_bits(0, n, rng);
    EXPECT_EQ(static_cast<u32>(std::popcount(flipped)), n);
  }
  // XOR with a popcount-n mask changes exactly n bits of any value.
  Xoshiro256 r1(7);
  Xoshiro256 r2(7);
  const u32 a = fault::flip_distinct_bits(0xDEADBEEFu, 5, r1);
  EXPECT_EQ(a, fault::flip_distinct_bits(0xDEADBEEFu, 5, r2));
  EXPECT_EQ(std::popcount(a ^ 0xDEADBEEFu), 5);
  Xoshiro256 r3(3);
  EXPECT_EQ(std::popcount(fault::flip_distinct_bits(0u, 0, r3)), 1);
}

TEST(FaultyMemory, MultiBitUpsetsFlipDistinctBits) {
  // Regression: the old XOR loop could draw the same position twice, turning
  // a "2-bit upset" into a 0-bit no-op. Every upset must now flip exactly
  // bits_per_error distinct positions.
  kern::Simulation sim;
  kern::Module top(sim, "top");
  mem::FaultyMemory m(top, "fm", 0, 64,
                      {.read_error_rate = 1.0, .bits_per_error = 2});
  top.spawn_thread("t", [&] {
    bus::word w = 0;
    m.write(3, &w);
    for (int i = 0; i < 50; ++i) {
      bus::word r = 0;
      ASSERT_TRUE(m.read(3, &r));
      EXPECT_EQ(std::popcount(static_cast<u32>(r)), 2) << "read " << i;
    }
  });
  sim.run();
  EXPECT_EQ(m.injected_errors(), 50u);
}

TEST(FaultInjector, SiteStreamsAreDeterministicAndIndependent) {
  fault::FaultPlan plan;
  plan.seed = 99;
  fault::FaultRule rule;
  rule.rate = 0.5;
  plan.rules.push_back(rule);
  fault::FaultInjector a(plan, 1);
  fault::FaultInjector b(plan, 1);
  fault::FaultInjector c(plan, 2);
  int divergent = 0;
  for (int i = 0; i < 200; ++i) {
    const auto t = kern::Time::ns(static_cast<u64>(i));
    const auto da = a.decide(t, 0x10, true);
    const auto db = b.decide(t, 0x10, true);
    const auto dc = c.decide(t, 0x10, true);
    EXPECT_EQ(da.has_value(), db.has_value()) << i;
    if (da.has_value() != dc.has_value()) ++divergent;
  }
  // Same plan, different site id => an independent (but reproducible) stream.
  EXPECT_GT(divergent, 0);
}

TEST(FaultInjector, ScriptedShotsRespectTimeWindowAndCount) {
  fault::FaultPlan plan;
  fault::ScriptedFault shot;
  shot.at = kern::Time::ns(100);
  shot.window_low = 0x200;
  shot.window_high = 0x2FF;
  shot.count = 2;
  plan.scripted.push_back(shot);
  fault::FaultInjector inj(plan, 0);
  EXPECT_FALSE(inj.decide(kern::Time::ns(50), 0x210, true).has_value());
  EXPECT_FALSE(inj.decide(kern::Time::ns(150), 0x100, true).has_value());
  EXPECT_TRUE(inj.decide(kern::Time::ns(150), 0x210, true).has_value());
  EXPECT_TRUE(inj.decide(kern::Time::ns(160), 0x2FF, false).has_value());
  EXPECT_FALSE(inj.decide(kern::Time::ns(170), 0x210, true).has_value());
}

TEST(BusFaultInterposer, InjectsErrorDelayAndCorrupt) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory m(top, "mem", 0, 64);
  b.bind_slave(m);
  m.poke(5, 0);

  fault::FaultPlan plan;
  fault::ScriptedFault err;  // first read fails
  err.kind = fault::FaultKind::kError;
  plan.scripted.push_back(err);
  fault::ScriptedFault stall;  // second is stalled 300 ns
  stall.kind = fault::FaultKind::kDelay;
  stall.delay = 300_ns;
  plan.scripted.push_back(stall);
  fault::ScriptedFault flip;  // third returns a corrupted payload
  flip.kind = fault::FaultKind::kCorrupt;
  flip.corrupt_bits = 4;
  plan.scripted.push_back(flip);

  fault::BusFaultInterposer ip(top, "ip", plan);
  ip.bind(b);
  top.spawn_thread("t", [&] {
    bus::word r = 0;
    EXPECT_EQ(ip.read(5, &r, 0), BusStatus::kSlaveError);
    const auto t0 = sim.now();
    EXPECT_EQ(ip.read(5, &r, 0), BusStatus::kOk);
    EXPECT_GE(sim.now() - t0, 300_ns);
    EXPECT_EQ(r, 0);  // delay is timing-only
    EXPECT_EQ(ip.read(5, &r, 0), BusStatus::kOk);
    EXPECT_EQ(std::popcount(static_cast<u32>(r)), 4);  // memory itself clean
    EXPECT_EQ(ip.read(5, &r, 0), BusStatus::kOk);
    EXPECT_EQ(r, 0);  // plan exhausted; read path clean again
  });
  sim.run();
  EXPECT_EQ(ip.injected(), 3u);
  const auto& ledger = ip.ledger();
  EXPECT_EQ(ledger.count(fault::FaultEventKind::kInjectedError), 1u);
  EXPECT_EQ(ledger.count(fault::FaultEventKind::kInjectedDelay), 1u);
  EXPECT_EQ(ledger.count(fault::FaultEventKind::kInjectedCorrupt), 1u);
  EXPECT_NE(ledger.digest(), 0u);
}

// ---------------------------------------------------------------------------
// DRCF recovery policies. The fixture mirrors drcf_test's: split bus, config
// memory with synthetic bitstreams, two wrapped slaves — plus armed digests
// and a fetch-path fault plan taken from the config under test.

class EchoSlave : public kern::Module, public bus::BusSlaveIf {
 public:
  EchoSlave(kern::Object& parent, std::string name, bus::addr_t low,
            bus::addr_t high, bus::word base,
            kern::Time delay = kern::Time::zero())
      : Module(parent, std::move(name)),
        low_(low),
        high_(high),
        base_(base),
        delay_(delay) {}

  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override { return high_; }
  bool read(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    if (!delay_.is_zero()) kern::wait(delay_);
    *data = base_ + static_cast<bus::word>(add - low_);
    return true;
  }
  bool write(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    last_write = *data;
    return true;
  }

  bus::word last_write = 0;

 private:
  bus::addr_t low_;
  bus::addr_t high_;
  bus::word base_;
  kern::Time delay_;
};

struct RecoveryFixture {
  static constexpr bus::addr_t kCfgA = 0x10000;
  static constexpr bus::addr_t kCfgB = 0x10400;
  static constexpr u64 kWords = 64;

  explicit RecoveryFixture(drcf::DrcfConfig cfg,
                           kern::Time a_delay = kern::Time::zero())
      : sys_bus(top, "bus", make_bus()),
        cfg_mem(top, "cfg_mem", kCfgA, 4096),
        slave_a(top, "hwa", 0x100, 0x10F, 1000, a_delay),
        slave_b(top, "hwb", 0x200, 0x20F, 2000),
        drcf(top, "drcf1", std::move(cfg)) {
    ctx_a = arm(slave_a, kCfgA);
    ctx_b = arm(slave_b, kCfgB);
    drcf.mst_port.bind(sys_bus);
    sys_bus.bind_slave(cfg_mem);
    sys_bus.bind_slave(drcf);
  }

  /// Registers `inner`, pokes its synthetic bitstream and arms the
  /// integrity check with the matching digest (as elaborate.cpp does).
  usize arm(bus::BusSlaveIf& inner, bus::addr_t base) {
    const usize id = drcf.add_context(
        inner,
        {.config_address = base, .size_words = kWords, .gates = 10'000});
    u64 digest = drcf::kConfigDigestSeed;
    for (u64 w = 0; w < kWords; ++w) {
      const auto word = static_cast<bus::word>(0xB1750000u | id);
      cfg_mem.poke(base + static_cast<bus::addr_t>(w), word);
      digest = drcf::config_digest_step(digest, word);
    }
    drcf.set_expected_digest(id, digest);
    return id;
  }

  static drcf::DrcfConfig base_cfg() {
    drcf::DrcfConfig c;
    c.technology = drcf::varicore_like();
    c.technology.per_switch_overhead = kern::Time::zero();
    return c;
  }
  static bus::BusConfig make_bus() {
    bus::BusConfig b;
    b.cycle_time = 10_ns;
    b.split_transactions = true;
    return b;
  }

  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  mem::Memory cfg_mem;
  EchoSlave slave_a;
  EchoSlave slave_b;
  drcf::Drcf drcf;
  usize ctx_a = 0;
  usize ctx_b = 0;
};

TEST(DrcfRecovery, FailFastFailsAffectedTransactionOnly) {
  auto cfg = RecoveryFixture::base_cfg();
  fault::ScriptedFault shot;
  shot.kind = fault::FaultKind::kError;
  cfg.fetch_faults.scripted.push_back(shot);
  RecoveryFixture f(cfg);
  std::vector<BusStatus> st;
  bus::word r = 0;
  f.top.spawn_thread("m", [&] {
    st.push_back(f.sys_bus.read(0x105, &r));
    st.push_back(f.sys_bus.read(0x105, &r));
  });
  f.sim.run();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_EQ(st[0], BusStatus::kSlaveError);
  EXPECT_EQ(st[1], BusStatus::kOk);  // next access reloads cleanly
  EXPECT_EQ(r, 1005);
  EXPECT_EQ(f.drcf.stats().fetch_errors, 1u);
  EXPECT_EQ(f.drcf.stats().fetch_retries, 0u);
  EXPECT_EQ(f.drcf.stats().load_give_ups, 1u);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kFetchError),
            1u);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kGaveUp), 1u);
}

TEST(DrcfRecovery, RetryBackoffRecoversWithExtraTrafficAndTime) {
  // Baseline: the same single load with no faults.
  u64 base_words = 0;
  kern::Time base_busy;
  {
    auto cfg = RecoveryFixture::base_cfg();
    cfg.fetch_burst = 16;
    RecoveryFixture f(cfg);
    f.top.spawn_thread("m", [&] {
      bus::word r = 0;
      EXPECT_EQ(f.sys_bus.read(0x105, &r), BusStatus::kOk);
    });
    f.sim.run();
    base_words = f.drcf.stats().config_words_fetched;
    base_busy = f.drcf.stats().reconfig_busy_time;
  }

  auto cfg = RecoveryFixture::base_cfg();
  cfg.fetch_burst = 16;
  cfg.recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
  cfg.recovery.max_attempts = 3;
  cfg.recovery.backoff = 100_ns;
  fault::ScriptedFault shot;  // fails the *second* chunk of attempt 1
  shot.kind = fault::FaultKind::kError;
  shot.window_low = RecoveryFixture::kCfgA + 16;
  shot.window_high = RecoveryFixture::kCfgA + 31;
  cfg.fetch_faults.scripted.push_back(shot);
  RecoveryFixture f(cfg);
  BusStatus st{};
  bus::word r = 0;
  f.top.spawn_thread("m", [&] { st = f.sys_bus.read(0x105, &r); });
  f.sim.run();
  EXPECT_EQ(st, BusStatus::kOk);
  EXPECT_EQ(r, 1005);
  EXPECT_EQ(f.drcf.stats().fetch_errors, 1u);
  EXPECT_EQ(f.drcf.stats().fetch_retries, 1u);
  EXPECT_EQ(f.drcf.stats().load_give_ups, 0u);
  // The failed attempt's partial fetch and the re-fetch are real traffic,
  // and the backoff plus the extra chunks are real reconfiguration time.
  EXPECT_GT(f.drcf.stats().config_words_fetched, base_words);
  EXPECT_GT(f.drcf.stats().reconfig_busy_time, base_busy);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kRetry), 1u);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kRecovered),
            1u);
}

TEST(DrcfRecovery, FallbackContextDegradesGracefully) {
  auto cfg = RecoveryFixture::base_cfg();
  cfg.recovery.policy = drcf::RecoveryPolicy::kFallbackContext;
  cfg.recovery.fallback_context = 0;
  fault::ScriptedFault shot;  // ctx_b's configuration is permanently broken
  shot.kind = fault::FaultKind::kError;
  shot.window_low = RecoveryFixture::kCfgB;
  shot.window_high = RecoveryFixture::kCfgB + RecoveryFixture::kWords - 1;
  shot.count = 1000;
  cfg.fetch_faults.scripted.push_back(shot);
  RecoveryFixture f(cfg);
  int ok = 0;
  std::vector<bus::word> degraded;
  f.top.spawn_thread("m", [&] {
    bus::word r = 0;
    for (int i = 0; i < 4; ++i) {
      if (f.sys_bus.read(0x100 + static_cast<bus::addr_t>(i), &r) ==
          BusStatus::kOk)
        ++ok;
      if (f.sys_bus.read(0x200 + static_cast<bus::addr_t>(i), &r) ==
          BusStatus::kOk) {
        ++ok;
        degraded.push_back(r);
      }
    }
  });
  f.sim.run();
  EXPECT_EQ(ok, 8);  // every transaction completes
  // Calls to ctx_b were served by ctx_a at the same offset.
  ASSERT_EQ(degraded.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(degraded[static_cast<usize>(i)], 1000 + i);
  EXPECT_EQ(f.drcf.stats().load_give_ups, 1u);
  EXPECT_GE(f.drcf.stats().fallback_forwards, 4u);
  EXPECT_GE(f.drcf.fault_ledger().count(fault::FaultEventKind::kFallback), 4u);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kGaveUp), 1u);
}

TEST(DrcfRecovery, ScrubRefetchesOnDigestMismatch) {
  auto cfg = RecoveryFixture::base_cfg();
  cfg.recovery.policy = drcf::RecoveryPolicy::kScrub;
  fault::ScriptedFault shot;  // one corrupted word in the first fetch
  shot.kind = fault::FaultKind::kCorrupt;
  shot.corrupt_bits = 2;
  cfg.fetch_faults.scripted.push_back(shot);
  RecoveryFixture f(cfg);
  BusStatus st{};
  bus::word r = 0;
  f.top.spawn_thread("m", [&] { st = f.sys_bus.read(0x105, &r); });
  f.sim.run();
  EXPECT_EQ(st, BusStatus::kOk);
  EXPECT_EQ(r, 1005);
  EXPECT_EQ(f.drcf.stats().digest_mismatches, 1u);
  EXPECT_EQ(f.drcf.stats().scrubs, 1u);
  EXPECT_EQ(f.drcf.stats().load_give_ups, 0u);
  EXPECT_EQ(
      f.drcf.fault_ledger().count(fault::FaultEventKind::kDigestMismatch), 1u);
  EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kScrub), 1u);
  EXPECT_EQ(
      f.drcf.fault_ledger().count(fault::FaultEventKind::kInjectedCorrupt),
      1u);
}

TEST(DrcfRecovery, WatchdogAbortsStalledFetch) {
  auto cfg = RecoveryFixture::base_cfg();
  cfg.recovery.watchdog = 1_us;
  fault::FaultRule stall;  // every fetch chunk stalls far past the deadline
  stall.rate = 1.0;
  stall.kind = fault::FaultKind::kDelay;
  stall.delay = 5_us;
  stall.reads_only = true;
  cfg.fetch_faults.rules.push_back(stall);
  RecoveryFixture f(cfg);
  BusStatus st{};
  f.top.spawn_thread("m", [&] {
    bus::word r = 0;
    st = f.sys_bus.read(0x105, &r);
  });
  f.sim.run();
  EXPECT_EQ(st, BusStatus::kSlaveError);
  EXPECT_GE(f.drcf.stats().watchdog_aborts, 1u);
  EXPECT_GE(f.drcf.fault_ledger().count(fault::FaultEventKind::kWatchdogAbort),
            1u);
}

TEST(DrcfRecovery, SameSeedRunsAreBitIdentical) {
  const auto run_once = [](u64* end_ps, u64* ledger_digest, u64* errors) {
    auto cfg = RecoveryFixture::base_cfg();
    cfg.recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
    cfg.recovery.max_attempts = 3;
    fault::FaultRule rule;
    rule.rate = 0.3;
    rule.kind = fault::FaultKind::kError;
    rule.reads_only = true;
    cfg.fetch_faults.seed = 42;
    cfg.fetch_faults.rules.push_back(rule);
    RecoveryFixture f(cfg);
    f.top.spawn_thread("m", [&] {
      bus::word r = 0;
      for (int i = 0; i < 8; ++i) {  // ping-pong: every step reconfigures
        (void)f.sys_bus.read(0x105, &r);
        (void)f.sys_bus.read(0x205, &r);
      }
    });
    f.sim.run();
    *end_ps = f.sim.now().picoseconds();
    *ledger_digest = f.drcf.fault_ledger().digest();
    *errors = f.drcf.stats().fetch_errors;
  };
  u64 t1 = 0, d1 = 0, e1 = 0, t2 = 0, d2 = 0, e2 = 0;
  run_once(&t1, &d1, &e1);
  run_once(&t2, &d2, &e2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(e1, e2);
  EXPECT_GT(e1, 0u);  // the plan actually fired
}

// Fetch-failure edge cases, table-driven: the failure must fail exactly the
// affected transactions and leave the fabric consistent — a later clean
// access to the same context succeeds in every scenario.
TEST(DrcfRecovery, FetchFailureEdgeCases) {
  struct EdgeCase {
    const char* name;
    u32 slots;
    int waiters;          ///< Concurrent first-touch readers of ctx_b.
    bool prefetch;        ///< The failing load is a background prefetch.
    bool pin_ctx_a;       ///< A slow ctx_a forward is in flight meanwhile.
  };
  const EdgeCase cases[] = {
      {"three suspended waiters", 1, 3, false, false},
      {"failure during prefetch", 1, 0, true, false},
      {"failure while another context is pinned", 2, 1, false, true},
  };
  for (const auto& tc : cases) {
    SCOPED_TRACE(tc.name);
    auto cfg = RecoveryFixture::base_cfg();
    cfg.slots = tc.slots;
    // Fail the second fetch chunk: the load is mid-flight long enough for
    // every concurrent caller to pile up as a suspended waiter first.
    cfg.fetch_burst = 16;
    fault::ScriptedFault shot;
    shot.kind = fault::FaultKind::kError;
    shot.window_low = RecoveryFixture::kCfgB + 16;
    shot.window_high = RecoveryFixture::kCfgB + 31;
    cfg.fetch_faults.scripted.push_back(shot);
    RecoveryFixture f(cfg, tc.pin_ctx_a ? 1_us : kern::Time::zero());

    if (tc.pin_ctx_a)
      f.top.spawn_thread("pin", [&] {
        bus::word r = 0;
        EXPECT_EQ(f.sys_bus.read(0x100, &r), BusStatus::kOk);
        EXPECT_EQ(r, 1000);
      });
    if (tc.prefetch)
      f.top.spawn_thread("prefetch", [&] { f.drcf.prefetch(f.ctx_b); });
    std::vector<BusStatus> first(static_cast<usize>(tc.waiters),
                                 BusStatus::kOk);
    for (int i = 0; i < tc.waiters; ++i)
      f.top.spawn_thread("w" + std::to_string(i), [&f, &first, &tc, i] {
        if (tc.pin_ctx_a) kern::wait(1_us);  // land inside the pinned call
        bus::word r = 0;
        first[static_cast<usize>(i)] = f.sys_bus.read(0x205, &r);
      });
    BusStatus late{BusStatus::kSlaveError};
    bus::word late_r = 0;
    f.top.spawn_thread("late", [&] {
      kern::wait(100_us);  // well after the failed load settled
      late = f.sys_bus.read(0x205, &late_r);
    });
    f.sim.run();

    for (int i = 0; i < tc.waiters; ++i)
      EXPECT_EQ(first[static_cast<usize>(i)], BusStatus::kSlaveError) << i;
    EXPECT_EQ(late, BusStatus::kOk);
    EXPECT_EQ(late_r, 2005);
    EXPECT_EQ(f.drcf.stats().fetch_errors, 1u);
    EXPECT_EQ(f.drcf.stats().load_give_ups, 1u);
    EXPECT_TRUE(f.drcf.is_resident(f.ctx_b));
    EXPECT_EQ(f.drcf.fault_ledger().count(fault::FaultEventKind::kFetchError),
              1u);
  }
}

}  // namespace
}  // namespace adriatic
