#include <gtest/gtest.h>

#include <sstream>

#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace adriatic {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(7, 1), 7);
  EXPECT_EQ(ceil_div(7, 0), 0);  // guarded
}

TEST(Types, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(Types, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Random, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Random, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(10), 10u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Random, NextRangeInclusive) {
  Xoshiro256 rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RunningStat, Basics) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(6.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Log2Histogram, Buckets) {
  Log2Histogram h;
  h.add(0);  // bucket 0
  h.add(1);  // bucket 1
  h.add(2);  // bucket 2
  h.add(3);  // bucket 2
  h.add(1024);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_GE(h.buckets().size(), 11u);
}

TEST(Log2Histogram, Quantile) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.add(4);
  EXPECT_EQ(h.quantile(0.5), 8u);  // upper bucket bound for [4,8)
}

TEST(Counter, IncrementAndReset) {
  Counter c("xfers");
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(c.name(), "xfers");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("x=%d", 7), "x=7");
  EXPECT_EQ(strfmt("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
}

TEST(Strings, SplitJoin) {
  auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(join(parts, "/"), "a/b/c");
  EXPECT_EQ(split("", '.').size(), 1u);
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("top.bus", "top"));
  EXPECT_FALSE(starts_with("top", "top.bus"));
}

TEST(Table, PrintAligned) {
  Table t("demo");
  t.header({"k", "value"});
  t.row({"a", "1"});
  t.row({"bb", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| bb"), std::string::npos);
}

TEST(Table, Csv) {
  Table t;
  t.header({"x", "y"}).row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
}

}  // namespace
}  // namespace adriatic
