// Kernel stress and property tests: the event queue channel, deep call
// stacks inside fibers, many concurrent processes, and a randomized
// timed-scheduling property check against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "kernel/kernel.hpp"
#include "util/random.hpp"

namespace adriatic::kern {
namespace {

using namespace literals;

TEST(EventQueueTest, EachNotificationFires) {
  Simulation sim;
  EventQueue q(sim, "q");
  Module top(sim, "top");
  std::vector<u64> fired_at;
  SpawnOptions opts;
  opts.sensitivity = {&q.default_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] { fired_at.push_back(sim.now().picoseconds()); },
                   opts);
  q.notify(Time::ns(30));
  q.notify(Time::ns(10));
  q.notify(Time::ns(20));
  EXPECT_EQ(q.pending_count(), 3u);
  sim.run();
  ASSERT_EQ(fired_at.size(), 3u);
  EXPECT_EQ(fired_at[0], 10'000u);
  EXPECT_EQ(fired_at[1], 20'000u);
  EXPECT_EQ(fired_at[2], 30'000u);
  EXPECT_EQ(q.total_queued(), 3u);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueTest, CoincidentNotificationsDoNotCollapse) {
  // A plain Event collapses same-time notifications; the queue must not.
  Simulation sim;
  EventQueue q(sim, "q");
  Module top(sim, "top");
  int count = 0;
  SpawnOptions opts;
  opts.sensitivity = {&q.default_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] { ++count; }, opts);
  q.notify(Time::ns(5));
  q.notify(Time::ns(5));
  q.notify(Time::ns(5));
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), Time::ns(5));
}

TEST(EventQueueTest, CancelAllDropsPending) {
  Simulation sim;
  EventQueue q(sim, "q");
  Module top(sim, "top");
  int count = 0;
  SpawnOptions opts;
  opts.sensitivity = {&q.default_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] { ++count; }, opts);
  q.notify(Time::ns(5));
  q.notify(Time::ns(15));
  q.cancel_all();
  sim.run();
  EXPECT_EQ(count, 0);
  // The queue remains usable afterwards.
  q.notify(Time::ns(1));
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, CancelThenNotifySameDeltaRearmsPump) {
  // Regression: cancel_all() must retract even a notification that already
  // matured into the output event's delta notification, and a notify() in
  // the same delta must re-arm the pump from scratch.
  Simulation sim;
  EventQueue q(sim, "q");
  Module top(sim, "top");
  std::vector<u64> fired_at;
  SpawnOptions opts;
  opts.sensitivity = {&q.default_event()};
  opts.dont_initialize = true;
  top.spawn_method("obs", [&] { fired_at.push_back(sim.now().picoseconds()); },
                   opts);
  Event kick(sim, "kick");
  top.spawn_thread("driver", [&] {
    q.notify(Time::zero());  // matures immediately
    kick.notify_delta();     // wakes us in the same delta the pump runs in,
    wait(kick);              // right after it (FIFO over the delta queue)
    q.cancel_all();          // out_'s delta notification is in flight: retract
    q.notify(Time::ns(5));   // same delta as cancel_all: pump must re-arm
  });
  sim.run();
  // Only the post-cancel notification fires, at 5 ns; the cancelled
  // zero-time notification must not leak through.
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], 5'000u);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueTest, CancelAllThenDestroyWithInFlightNotification) {
  // Regression: cancel_all() retracts out_'s in-flight delta notification
  // lazily, leaving a stale delta-queue slot naming the output event.
  // Destroying the EventQueue in that window must purge the slot before the
  // next delta dispatch walks the queue.
  Simulation sim;
  auto q = std::make_unique<EventQueue>(sim, "q");
  Module top(sim, "top");
  Event kick(sim, "kick");
  bool survived = false;
  top.spawn_thread("driver", [&] {
    q->notify(Time::zero());  // matures immediately
    kick.notify_delta();      // wakes us right after the pump (FIFO)
    wait(kick);
    q->cancel_all();          // out_'s delta notification is in flight
    q.reset();                // destroyed with the stale slot still queued
    wait(Time::ns(1));
    survived = true;
  });
  sim.run();
  EXPECT_TRUE(survived);
}

TEST(SchedulerProperty, TimedQueueCompactsStaleEntries) {
  // Periodic cancel/renotify (the clock / DRCF prefetch-timer pattern) must
  // not grow the timed queue without bound: stale entries are compacted once
  // they dominate the heap.
  Simulation sim;
  Module top(sim, "top");
  Event deadline(sim, "deadline"), tick(sim, "tick");
  u64 rounds = 0;
  top.spawn_thread("t", [&] {
    for (;;) {
      deadline.notify(Time::us(100));  // will be cancelled before it fires
      tick.notify(Time::ns(1));
      wait(tick);
      deadline.cancel();
      ++rounds;
    }
  });
  // Stop mid-pattern (time limit) so the queue state is observable: ~20k
  // cancelled entries have passed through it by now.
  sim.run(Time::us(20));
  EXPECT_GT(rounds, 10'000u);
  // Without compaction the queue would hold one stale entry per round. The
  // policy bounds it at roughly 2x the live count plus the trigger floor.
  EXPECT_LT(sim.timed_queue_size(), 300u);
}

TEST(FiberStress, DeepCallStackWait) {
  // wait() from deep recursion exercises the fiber's private stack — the
  // property stackless coroutines cannot provide.
  Simulation sim;
  Module top(sim, "top");
  int result = 0;
  std::function<int(int)> deep = [&](int n) -> int {
    if (n == 0) {
      wait(Time::ns(1));
      return 1;
    }
    volatile char pad[512];  // force real stack consumption
    pad[0] = static_cast<char>(n);
    return deep(n - 1) + static_cast<int>(pad[0] != 0);
  };
  SpawnOptions opts;
  opts.stack_bytes = 512 * 1024;
  top.spawn_thread("deep", [&] { result = deep(200); }, opts);
  sim.run();
  EXPECT_EQ(result, 201);
  EXPECT_EQ(sim.now(), Time::ns(1));
}

TEST(FiberStress, ManyThreadsInterleave) {
  Simulation sim;
  Module top(sim, "top");
  constexpr int kThreads = 100;
  constexpr int kSteps = 20;
  std::vector<int> progress(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    top.spawn_thread("t" + std::to_string(t), [&, t] {
      for (int s = 0; s < kSteps; ++s) {
        wait(Time::ns(static_cast<u64>(1 + (t % 7))));
        ++progress[static_cast<usize>(t)];
      }
    });
  }
  sim.run();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(progress[static_cast<usize>(t)], kSteps);
}

TEST(SchedulerProperty, RandomTimedNotificationsFireInOrder) {
  // Reference model: a multimap of (time -> sequence). The simulator must
  // wake a waiting thread at exactly the times a fresh notification is the
  // earliest pending one (Event keeps only the earliest).
  for (u64 seed = 1; seed <= 5; ++seed) {
    Simulation sim;
    Module top(sim, "top");
    Xoshiro256 rng(seed);

    // One event per lane; notify each lane a few times with random delays
    // from t=0; a lane's earliest delay wins (notification override rule).
    constexpr usize kLanes = 8;
    std::vector<std::unique_ptr<Event>> lanes;
    std::vector<u64> expected(kLanes, ~0ULL);
    for (usize l = 0; l < kLanes; ++l) {
      lanes.push_back(
          std::make_unique<Event>(sim, "lane" + std::to_string(l)));
      const int notifications = 1 + static_cast<int>(rng.next_below(4));
      for (int n = 0; n < notifications; ++n) {
        const u64 ps = 1000 * (1 + rng.next_below(50));
        lanes[l]->notify(Time::ps(ps));
        expected[l] = std::min(expected[l], ps);
      }
    }
    std::vector<u64> woke(kLanes, 0);
    for (usize l = 0; l < kLanes; ++l) {
      top.spawn_thread("w" + std::to_string(l), [&, l] {
        wait(*lanes[l]);
        woke[l] = sim.now().picoseconds();
      });
    }
    sim.run();
    for (usize l = 0; l < kLanes; ++l)
      EXPECT_EQ(woke[l], expected[l]) << "seed " << seed << " lane " << l;
  }
}

TEST(SchedulerProperty, FifoFairnessAmongSameTimeWakeups) {
  // Threads scheduled for the same instant run in their notification order
  // (stable FIFO tie-break in the timed queue).
  Simulation sim;
  Module top(sim, "top");
  std::vector<int> order;
  std::vector<std::unique_ptr<Event>> evs;
  for (int i = 0; i < 6; ++i) {
    evs.push_back(std::make_unique<Event>(sim, "e" + std::to_string(i)));
    top.spawn_thread("t" + std::to_string(i), [&, i] {
      wait(*evs[static_cast<usize>(i)]);
      order.push_back(i);
    });
  }
  // Notify in reverse order, all at the same time.
  for (int i = 5; i >= 0; --i) evs[static_cast<usize>(i)]->notify(Time::ns(10));
  sim.run();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<int>{5, 4, 3, 2, 1, 0}));
}

TEST(SchedulerProperty, MixedDeltaAndTimedLoad) {
  // A producer notifies an event queue at random times while consumers also
  // tick on a clock; totals must reconcile exactly.
  Simulation sim;
  EventQueue q(sim, "q");
  Clock clk(sim, "clk", 100_ns);
  Module top(sim, "top");
  u64 queue_fires = 0;
  u64 clock_ticks = 0;
  SpawnOptions q_opts;
  q_opts.sensitivity = {&q.default_event()};
  q_opts.dont_initialize = true;
  top.spawn_method("qobs", [&] { ++queue_fires; }, q_opts);
  SpawnOptions c_opts;
  c_opts.sensitivity = {&clk.posedge_event()};
  c_opts.dont_initialize = true;
  top.spawn_method("cobs", [&] { ++clock_ticks; }, c_opts);

  Xoshiro256 rng(99);
  u64 queued = 0;
  top.spawn_thread("producer", [&] {
    for (int burst = 0; burst < 50; ++burst) {
      const int n = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < n; ++i) {
        q.notify(Time::ns(rng.next_below(500)));
        ++queued;
      }
      wait(Time::ns(200));
    }
  });
  // The clock free-runs forever, so keep every run() bounded. All queue
  // notifications land within the producer's ~10 us activity window.
  sim.run(Time::us(30));
  EXPECT_EQ(queue_fires, queued);
  EXPECT_GE(clock_ticks, 290u);  // ~300 periods in 30 us
}

}  // namespace
}  // namespace adriatic::kern
