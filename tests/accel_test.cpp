// Functional-kernel tests with published reference vectors.
#include <gtest/gtest.h>

#include <complex>

#include "accel/accel_lib.hpp"
#include "util/random.hpp"

namespace adriatic::accel {
namespace {

TEST(Fir, ImpulseResponseIsTaps) {
  const std::vector<i32> taps{1000, 2000, 3000};
  std::vector<i32> x(8, 0);
  x[0] = 1 << 15;  // unit impulse in Q15
  const auto y = fir_filter(taps, x);
  EXPECT_EQ(y[0], 1000);
  EXPECT_EQ(y[1], 2000);
  EXPECT_EQ(y[2], 3000);
  EXPECT_EQ(y[3], 0);
}

TEST(Fir, DcGainEqualsTapSum) {
  const auto taps = fir_lowpass_taps(31);
  i64 tap_sum = 0;
  for (auto t : taps) tap_sum += t;
  std::vector<i32> x(200, 1 << 12);
  const auto y = fir_filter(taps, x);
  // Steady-state output = input * sum(taps) >> 15.
  const i32 expected = static_cast<i32>((static_cast<i64>(1 << 12) * tap_sum) >> 15);
  EXPECT_NEAR(y.back(), expected, 32);
}

TEST(Fir, SpecMatchesFunction) {
  auto spec = make_fir_spec({1 << 15});  // identity filter
  ASSERT_TRUE(spec.valid());
  std::vector<i32> x{5, -7, 123};
  const auto y = spec.fn(x);
  EXPECT_EQ(y, x);
  EXPECT_GT(spec.hw_cycles(100), 100u);
  EXPECT_GT(spec.sw_instructions(100), spec.hw_cycles(100));
  EXPECT_GT(spec.gate_count, 0u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<i32> in(64, 0);
  in[0] = pack_cplx(16384, 0);  // 0.5 in Q15
  const auto out = fft_q15(in);
  // DFT of impulse = constant 0.5 across bins, scaled by 1/N via stages.
  const i32 expect = 16384 >> 6;  // /64
  for (const auto w : out) {
    EXPECT_NEAR(unpack_re(w), expect, 8);
    EXPECT_NEAR(unpack_im(w), 0, 8);
  }
}

TEST(Fft, MatchesReferenceOnRandomInput) {
  Xoshiro256 rng(123);
  const usize n = 128;
  std::vector<i32> packed(n);
  std::vector<std::complex<double>> ref_in(n);
  for (usize i = 0; i < n; ++i) {
    const i16 re = static_cast<i16>(rng.next_range(-8192, 8191));
    const i16 im = static_cast<i16>(rng.next_range(-8192, 8191));
    packed[i] = pack_cplx(re, im);
    ref_in[i] = {static_cast<double>(re), static_cast<double>(im)};
  }
  const auto out = fft_q15(packed);
  const auto ref = fft_ref(ref_in);
  for (usize k = 0; k < n; ++k) {
    // Our FFT scales by 1/N.
    const double er = ref[k].real() / static_cast<double>(n);
    const double ei = ref[k].imag() / static_cast<double>(n);
    EXPECT_NEAR(unpack_re(out[k]), er, 24.0) << "bin " << k;
    EXPECT_NEAR(unpack_im(out[k]), ei, 24.0) << "bin " << k;
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<i32> in(12, 0);
  EXPECT_THROW(fft_q15(in), std::invalid_argument);
  EXPECT_THROW(make_fft_spec(12), std::invalid_argument);
}

TEST(Fft, SineConcentratesInOneBin) {
  const usize n = 64;
  std::vector<i32> in(n);
  for (usize t = 0; t < n; ++t) {
    const double ang = 2.0 * 3.14159265358979 * 4.0 * static_cast<double>(t) /
                       static_cast<double>(n);
    in[t] = pack_cplx(static_cast<i16>(16000 * std::cos(ang)),
                      static_cast<i16>(16000 * std::sin(ang)));
  }
  const auto out = fft_q15(in);
  // Energy should land in bin 4.
  i32 best_bin = -1;
  i64 best_mag = 0;
  for (usize k = 0; k < n; ++k) {
    const i64 re = unpack_re(out[k]);
    const i64 im = unpack_im(out[k]);
    const i64 mag = re * re + im * im;
    if (mag > best_mag) {
      best_mag = mag;
      best_bin = static_cast<i32>(k);
    }
  }
  EXPECT_EQ(best_bin, 4);
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  std::vector<i32> block(64, 100);
  const auto c = dct8x8(block);
  EXPECT_EQ(c[0], 800);  // 100 * 8 (sqrt(1/8)*sqrt(1/8)*64 = 8)
  for (usize i = 1; i < 64; ++i) EXPECT_EQ(c[i], 0) << "coef " << i;
}

TEST(Dct, RoundTripWithinRounding) {
  Xoshiro256 rng(77);
  std::vector<i32> block(64);
  for (auto& v : block) v = static_cast<i32>(rng.next_range(-255, 255));
  const auto c = dct8x8(block);
  const auto r = idct8x8(std::vector<i32>(c.begin(), c.end()));
  for (usize i = 0; i < 64; ++i) EXPECT_NEAR(r[i], block[i], 2) << i;
}

TEST(Dct, QuantMatrixQualityScaling) {
  const auto q50 = quant_matrix(50);
  const auto q90 = quant_matrix(90);
  const auto q10 = quant_matrix(10);
  EXPECT_EQ(q50[0], 16);  // quality 50 = unscaled JPEG table
  EXPECT_LT(q90[0], q50[0]);
  EXPECT_GT(q10[0], q50[0]);
  for (auto v : q90) EXPECT_GE(v, 1);
}

TEST(Dct, QuantiseRoundsToNearest) {
  std::vector<i32> coeffs(64, 0);
  coeffs[0] = 33;
  coeffs[1] = -33;
  std::vector<i32> matrix(64, 10);
  const auto q = quantise(coeffs, matrix);
  EXPECT_EQ(q[0], 3);   // 33/10 rounds to 3
  EXPECT_EQ(q[1], -3);
}

TEST(Dct, SpecHandlesPartialBlocks) {
  auto spec = make_dct_spec();
  std::vector<i32> in(70, 50);
  const auto out = spec.fn(in);
  EXPECT_EQ(out.size(), 128u);  // two blocks
}

TEST(Viterbi, EncodeKnownPrefix) {
  // All-zero input encodes to all-zero output.
  std::vector<u8> zeros(10, 0);
  const auto coded = conv_encode(zeros);
  EXPECT_EQ(coded.size(), 2 * (10 + 6));
  for (auto b : coded) EXPECT_EQ(b, 0);
}

TEST(Viterbi, RoundTripCleanChannel) {
  Xoshiro256 rng(5);
  std::vector<u8> bits(120);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  const auto coded = conv_encode(bits);
  const auto decoded = viterbi_decode(coded);
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

TEST(Viterbi, CorrectsScatteredBitErrors) {
  Xoshiro256 rng(9);
  std::vector<u8> bits(200);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  auto coded = conv_encode(bits);
  // Flip isolated bits, well separated (beyond the free distance window).
  for (usize i = 20; i + 40 < coded.size(); i += 40) coded[i] ^= 1;
  const auto decoded = viterbi_decode(coded);
  ASSERT_EQ(decoded.size(), bits.size());
  EXPECT_EQ(decoded, bits);
}

TEST(Viterbi, PackUnpackBits) {
  std::vector<u8> bits{1, 0, 1, 1, 0, 0, 0, 1};
  const auto words = pack_bits(bits);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0b10001101);
  const auto back = unpack_bits(words, bits.size());
  EXPECT_EQ(back, bits);
}

TEST(Crc, KnownCheckValue) {
  // CRC-32("123456789") = 0xCBF43926 (the standard check value).
  const char* s = "123456789";
  const auto crc =
      crc32(std::span<const u8>(reinterpret_cast<const u8*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc, WordsMatchBytes) {
  const std::vector<i32> words{0x64636261, 0x68676665};  // "abcdefgh" LE
  const char* s = "abcdefgh";
  const auto byte_crc =
      crc32(std::span<const u8>(reinterpret_cast<const u8*>(s), 8));
  EXPECT_EQ(crc32_words(words), byte_crc);
}

TEST(Crc, SpecAppendsCrc) {
  auto spec = make_crc_spec();
  std::vector<i32> in{1, 2, 3};
  const auto out = spec.fn(in);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(static_cast<u32>(out[3]), crc32_words(in));
}

TEST(Aes, Fips197Vector) {
  // FIPS-197 Appendix B.
  const AesKey key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const AesBlock plain{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const AesBlock expect{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                        0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  EXPECT_EQ(aes128_encrypt(plain, key), expect);
}

TEST(Aes, SpecBlocksAndPadding) {
  const AesKey key{};
  auto spec = make_aes_spec(key);
  std::vector<i32> in(6, 0x01020304);  // 1.5 blocks -> padded to 2
  const auto out = spec.fn(in);
  EXPECT_EQ(out.size(), 8u);
  // Deterministic: same input -> same ciphertext.
  EXPECT_EQ(spec.fn(in), out);
  // Different input -> different ciphertext.
  in[0] ^= 1;
  EXPECT_NE(spec.fn(in), out);
}

TEST(Matmul, IdentityTimesMatrix) {
  const usize n = 4;
  std::vector<i32> eye(n * n, 0), m(n * n);
  for (usize i = 0; i < n; ++i) eye[i * n + i] = 1;
  for (usize i = 0; i < n * n; ++i) m[i] = static_cast<i32>(i + 1);
  EXPECT_EQ(matmul(eye, m, n), m);
  EXPECT_EQ(matmul(m, eye, n), m);
}

TEST(Matmul, KnownProduct) {
  const std::vector<i32> a{1, 2, 3, 4};
  const std::vector<i32> b{5, 6, 7, 8};
  const auto c = matmul(a, b, 2);
  EXPECT_EQ(c, (std::vector<i32>{19, 22, 43, 50}));
}

TEST(Matmul, SpecPacksOperands) {
  auto spec = make_matmul_spec(2);
  std::vector<i32> in{1, 2, 3, 4, 5, 6, 7, 8};  // A then B
  const auto out = spec.fn(in);
  EXPECT_EQ(out, (std::vector<i32>{19, 22, 43, 50}));
  EXPECT_THROW(make_matmul_spec(0), std::invalid_argument);
}

TEST(ZigzagRle, ZigzagOrderIsAPermutationStartingDiagonally) {
  const auto& order = zigzag_order();
  std::array<bool, 64> seen{};
  for (const u8 pos : order) {
    ASSERT_LT(pos, 64);
    EXPECT_FALSE(seen[pos]);
    seen[pos] = true;
  }
  // Canonical JPEG prefix: 0, 1, 8, 16, 9, 2, 3, 10 ...
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 8);
  EXPECT_EQ(order[3], 16);
  EXPECT_EQ(order[4], 9);
  EXPECT_EQ(order[5], 2);
  EXPECT_EQ(order[63], 63);
}

TEST(ZigzagRle, ScanUnscanRoundTrip) {
  Xoshiro256 rng(4);
  std::vector<i32> block(64);
  for (auto& v : block) v = static_cast<i32>(rng.next_range(-300, 300));
  const auto scanned = zigzag_scan(block);
  const auto back = zigzag_unscan(scanned);
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(back[i], block[i]);
}

TEST(ZigzagRle, RleRoundTripOnSparseBlock) {
  std::array<i32, 64> scanned{};
  scanned[0] = 120;   // DC
  scanned[3] = -7;
  scanned[10] = 2;
  const auto symbols = rle_encode(scanned);
  // (0,120), (2,-7), (6,2), EOB.
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_EQ(symbols.back(), 0);
  const auto decoded = rle_decode(symbols);
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(decoded[i], scanned[i]) << i;
}

TEST(ZigzagRle, AllZeroBlockIsOneSymbol) {
  std::array<i32, 64> zeros{};
  const auto symbols = rle_encode(zeros);
  ASSERT_EQ(symbols.size(), 1u);
  EXPECT_EQ(symbols[0], 0);
  const auto decoded = rle_decode(symbols);
  for (const i32 v : decoded) EXPECT_EQ(v, 0);
}

TEST(ZigzagRle, DenseBlockNeedsNoEob) {
  std::array<i32, 64> dense{};
  for (usize i = 0; i < 64; ++i) dense[i] = static_cast<i32>(i + 1);
  const auto symbols = rle_encode(dense);
  EXPECT_EQ(symbols.size(), 64u);  // no trailing zeros, no EOB
  const auto decoded = rle_decode(symbols);
  for (usize i = 0; i < 64; ++i) EXPECT_EQ(decoded[i], dense[i]);
}

TEST(ZigzagRle, NegativeValuesSurviveThePacking) {
  std::array<i32, 64> scanned{};
  scanned[5] = -32768;  // i16 extreme
  scanned[6] = 32767;
  const auto decoded = rle_decode(rle_encode(scanned));
  EXPECT_EQ(decoded[5], -32768);
  EXPECT_EQ(decoded[6], 32767);
}

TEST(ZigzagRle, SpecCompressesQuantisedData) {
  auto spec = make_rle_spec();
  // Typical quantised block: DC + a couple of ACs, rest zero.
  std::vector<i32> block(64, 0);
  block[0] = 13;
  block[1] = 4;
  block[8] = -2;
  const auto out = spec.fn(block);
  // count word + 3 symbols + EOB = 5 words for a 64-word block.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], 4);  // symbol count
  EXPECT_LT(out.size(), block.size() / 4);  // real compression
}

TEST(Motion, FindsExactDisplacement) {
  // Build a reference window containing the block at a known offset.
  const int range = 4;
  const usize win = 8 + 2 * static_cast<usize>(range);
  Xoshiro256 rng(17);
  std::vector<i32> block(64);
  for (auto& v : block) v = static_cast<i32>(rng.next_range(0, 255));
  std::vector<i32> ref(win * win);
  for (auto& v : ref) v = static_cast<i32>(rng.next_range(0, 255));
  const int dx = 2, dy = -3;
  for (usize r = 0; r < 8; ++r)
    for (usize c = 0; c < 8; ++c)
      ref[(static_cast<usize>(dy + range) + r) * win +
          static_cast<usize>(dx + range) + c] = block[r * 8 + c];
  const auto mv = full_search(block, ref, range);
  EXPECT_EQ(mv.dx, dx);
  EXPECT_EQ(mv.dy, dy);
  EXPECT_EQ(mv.sad, 0u);
}

TEST(Motion, ZeroDisplacementForIdenticalCenter) {
  const int range = 2;
  const usize win = 8 + 2 * static_cast<usize>(range);
  std::vector<i32> block(64, 50);
  std::vector<i32> ref(win * win, 50);
  const auto mv = full_search(block, ref, range);
  // All positions tie at SAD 0; raster order picks the top-left first.
  EXPECT_EQ(mv.sad, 0u);
  EXPECT_EQ(mv.dx, -range);
  EXPECT_EQ(mv.dy, -range);
}

TEST(Motion, SpecPacksOperandsAndErrors) {
  auto spec = make_motion_spec(2);
  const usize win = 12;
  std::vector<i32> in(64 + win * win, 7);
  const auto out = spec.fn(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 0);  // uniform data: SAD 0
  EXPECT_THROW(make_motion_spec(0), std::invalid_argument);
  std::vector<i32> tiny(10);
  EXPECT_THROW(full_search(tiny, tiny, 2), std::invalid_argument);
  EXPECT_THROW(full_search(std::vector<i32>(64), std::vector<i32>(64), -1),
               std::invalid_argument);
}

// Property sweep: every kernel spec is self-consistent on random inputs.
class KernelSpecProperty : public ::testing::TestWithParam<const char*> {};

KernelSpec spec_by_name(const std::string& name) {
  if (name == "fir") return make_fir_spec(fir_lowpass_taps(16));
  if (name == "fft") return make_fft_spec(64);
  if (name == "dct") return make_dct_spec();
  if (name == "quant") return make_quant_spec(75);
  if (name == "viterbi") return make_viterbi_spec();
  if (name == "crc") return make_crc_spec();
  if (name == "aes") return make_aes_spec(AesKey{1, 2, 3, 4});
  if (name == "matmul") return make_matmul_spec(8);
  if (name == "motion") return make_motion_spec(3);
  throw std::logic_error("unknown spec");
}

TEST_P(KernelSpecProperty, DeterministicAndProfiled) {
  auto spec = spec_by_name(GetParam());
  ASSERT_TRUE(spec.valid());
  Xoshiro256 rng(1234);
  std::vector<i32> in(128);
  for (auto& v : in) v = static_cast<i32>(rng.next_range(-1000, 1000));
  const auto out1 = spec.fn(in);
  const auto out2 = spec.fn(in);
  EXPECT_EQ(out1, out2) << "kernel must be a pure function";
  EXPECT_FALSE(out1.empty());
  // Profiles are monotone in input size and hardware beats software.
  EXPECT_LE(spec.hw_cycles(64), spec.hw_cycles(128));
  EXPECT_LE(spec.sw_instructions(64), spec.sw_instructions(128));
  EXPECT_LT(spec.hw_cycles(128), spec.sw_instructions(128));
  EXPECT_GT(spec.gate_count, 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSpecProperty,
                         ::testing::Values("fir", "fft", "dct", "quant",
                                           "viterbi", "crc", "aes", "matmul",
                                           "motion"));

}  // namespace
}  // namespace adriatic::accel
