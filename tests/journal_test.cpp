// Crash-safe campaign journal tests: append/read round trips, torn-line
// recovery, last-record-wins semantics, and spec-hash identity.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "kernel/time.hpp"

namespace adriatic::campaign {
namespace {

/// Unique temp path per test; removed on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& tag) {
    path_ = testing::TempDir() + "adriatic_journal_" + tag + ".wal";
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

JobStats sample_stats(usize index) {
  JobStats s;
  s.index = index;
  s.label = "policy a/r 5";  // space forces percent-encoding
  s.done = true;
  s.wall_seconds = 0.125;
  s.sim_time = kern::Time::ns(420);
  s.delta_count = 99;
  s.activations = 1234;
  s.digest = 0xdeadbeefcafef00dull;
  s.attempts = 2;
  s.has_faults = true;
  s.fetch_errors = 3;
  s.faults_injected = 4;
  s.fault_events = 7;
  s.fault_digest = 0x0123456789abcdefull;
  s.has_prefetch = true;
  s.prefetch_hits = 11;
  s.cache_hits = 17;
  s.config_words_fetched = 2048;
  s.hidden_latency = kern::Time::ns(640);
  s.has_migration = true;
  s.migrations = 2;
  s.state_words_moved = 68;
  s.transfer_faults_recovered = 1;
  s.has_memory = true;
  s.mem_resident_peak_bytes = 5 * 4096;
  s.mem_pages_resident = 5;
  s.mem_cow_splits = 3;
  s.mem_shared_pages = 2;
  s.ecc_corrected = 9;
  s.ecc_uncorrectable = 1;
  s.worker_deaths = 2;
  s.from_cache = true;
  s.user_data = "cell a\tcell b\x1f" "1.5";  // tool payload, control chars
  return s;
}

TEST(JournalTest, RoundTripRestoresCompletedStats) {
  TempPath tmp("roundtrip");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
    j->record_planned(1, spec_hash("b", 42), "b");
    j->record_begun(0, 1);
    j->record_done(sample_stats(0));
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->campaign, "unit_sweep");
  EXPECT_EQ(state->torn_lines, 0u);
  EXPECT_EQ(state->begun_records, 1u);
  ASSERT_EQ(state->planned.size(), 2u);
  EXPECT_EQ(state->planned.at(0).spec, spec_hash("a"));
  EXPECT_EQ(state->planned.at(1).spec, spec_hash("b", 42));
  EXPECT_EQ(state->planned.at(1).label, "b");

  ASSERT_EQ(state->completed.size(), 1u);
  const JobStats& s = state->completed.at(0);
  const JobStats ref = sample_stats(0);
  EXPECT_EQ(s.label, ref.label);
  EXPECT_TRUE(s.done);
  EXPECT_DOUBLE_EQ(s.wall_seconds, ref.wall_seconds);
  EXPECT_EQ(s.sim_time, ref.sim_time);
  EXPECT_EQ(s.delta_count, ref.delta_count);
  EXPECT_EQ(s.activations, ref.activations);
  EXPECT_EQ(s.digest, ref.digest);
  EXPECT_EQ(s.attempts, ref.attempts);
  EXPECT_TRUE(s.has_faults);
  EXPECT_EQ(s.fetch_errors, ref.fetch_errors);
  EXPECT_EQ(s.faults_injected, ref.faults_injected);
  EXPECT_EQ(s.fault_events, ref.fault_events);
  EXPECT_EQ(s.fault_digest, ref.fault_digest);
  EXPECT_TRUE(s.has_prefetch);
  EXPECT_EQ(s.prefetch_hits, ref.prefetch_hits);
  EXPECT_EQ(s.cache_hits, ref.cache_hits);
  EXPECT_EQ(s.config_words_fetched, ref.config_words_fetched);
  EXPECT_EQ(s.hidden_latency, ref.hidden_latency);
  EXPECT_TRUE(s.has_migration);
  EXPECT_EQ(s.migrations, ref.migrations);
  EXPECT_EQ(s.state_words_moved, ref.state_words_moved);
  EXPECT_EQ(s.transfer_faults_recovered, ref.transfer_faults_recovered);
  EXPECT_TRUE(s.has_memory);
  EXPECT_EQ(s.mem_resident_peak_bytes, ref.mem_resident_peak_bytes);
  EXPECT_EQ(s.mem_pages_resident, ref.mem_pages_resident);
  EXPECT_EQ(s.mem_cow_splits, ref.mem_cow_splits);
  EXPECT_EQ(s.mem_shared_pages, ref.mem_shared_pages);
  EXPECT_EQ(s.ecc_corrected, ref.ecc_corrected);
  EXPECT_EQ(s.ecc_uncorrectable, ref.ecc_uncorrectable);
  EXPECT_EQ(s.worker_deaths, ref.worker_deaths);
  EXPECT_TRUE(s.from_cache);
  EXPECT_EQ(s.user_data, ref.user_data);
}

TEST(JournalTest, PlainStatsEmitNoProcessOrCacheKeys) {
  // Thread-mode jobs that never forked and never hit the cache must keep
  // the pre-process-isolation D-record byte format: the new keys are
  // strictly opt-in, so old readers and golden journals stay valid.
  JobStats s;
  s.index = 0;
  s.label = "plain";
  s.done = true;
  const std::string tail = encode_job_stats(s);
  EXPECT_EQ(tail.find("deaths="), std::string::npos);
  EXPECT_EQ(tail.find("cached="), std::string::npos);
  EXPECT_EQ(tail.find("udata="), std::string::npos);
  // Memory/ECC keys (new in v9) are likewise opt-in via record_memory().
  EXPECT_EQ(tail.find("mem_peak="), std::string::npos);
  EXPECT_EQ(tail.find("ecc_cor="), std::string::npos);
}

TEST(JournalTest, UnfinishedResultStaysRerunnable) {
  TempPath tmp("rerunnable");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
    JobStats s;
    s.index = 0;
    s.label = "a";
    s.done = false;  // interrupted / quarantined: must re-run on resume
    s.quarantined = true;
    s.quarantine_reason = "interrupted";
    j->record_done(s);
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(state->completed.empty());
}

TEST(JournalTest, LastRecordPerJobWins) {
  TempPath tmp("lastwins");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
    JobStats first = sample_stats(0);
    first.digest = 1;
    j->record_done(first);
  }
  {
    // A resume appends; its fresh result supersedes the original one.
    auto j = CampaignJournal::append_to(tmp.str());
    ASSERT_NE(j, nullptr);
    JobStats second = sample_stats(0);
    second.digest = 2;
    j->record_done(second);
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  ASSERT_EQ(state->completed.size(), 1u);
  EXPECT_EQ(state->completed.at(0).digest, 2u);
}

TEST(JournalTest, TornTailLineIsDroppedNotFatal) {
  TempPath tmp("torn");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
    j->record_done(sample_stats(0));
  }
  {
    // Simulate SIGKILL mid-append: a D record cut off before its checksum.
    std::ofstream out(tmp.str(), std::ios::app);
    out << "D 1 label=b done=1 wall=0.5";  // no cks=, no newline
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->torn_lines, 1u);
  ASSERT_EQ(state->completed.size(), 1u);  // intact records all survive
  EXPECT_EQ(state->completed.count(1), 0u);
}

TEST(JournalTest, CorruptedByteFailsTheLineChecksum) {
  TempPath tmp("flip");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
  }
  std::string content;
  {
    std::ifstream in(tmp.str());
    std::getline(in, content, '\0');
  }
  const auto pos = content.find("P 0");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 2] = '7';  // flip the index inside the checksummed region
  {
    std::ofstream out(tmp.str(), std::ios::trunc);
    out << content;
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->torn_lines, 1u);
  EXPECT_TRUE(state->planned.empty());
}

TEST(JournalTest, MissingFileOrMissingHeaderIsNullopt) {
  EXPECT_FALSE(read_journal(testing::TempDir() + "does_not_exist.wal")
                   .has_value());
  TempPath tmp("noheader");
  {
    std::ofstream out(tmp.str());
    out << "not a journal\n";
  }
  EXPECT_FALSE(read_journal(tmp.str()).has_value());
}

TEST(JournalTest, LabelsWithSpacesAndNewlinesRoundTrip) {
  TempPath tmp("encode");
  const std::string label = "odd label\nwith newline % and percent";
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(3, spec_hash(label), label);
    JobStats s;
    s.index = 3;
    s.label = label;
    s.done = true;
    s.failed = true;
    s.error = "exception: bad thing happened";
    j->record_done(s);
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  ASSERT_EQ(state->planned.count(3), 1u);
  EXPECT_EQ(state->planned.at(3).label, label);
  ASSERT_EQ(state->completed.count(3), 1u);
  EXPECT_EQ(state->completed.at(3).label, label);
  EXPECT_EQ(state->completed.at(3).error, "exception: bad thing happened");
}

TEST(JournalTest, SpecHashCoversLabelAndParams) {
  EXPECT_EQ(spec_hash("a"), spec_hash("a"));
  EXPECT_NE(spec_hash("a"), spec_hash("b"));
  EXPECT_NE(spec_hash("a", 1), spec_hash("a", 2));
  EXPECT_NE(spec_hash("a"), spec_hash("a", 1));
}

TEST(JournalTest, WorkerDeathAndCacheHitLinesRoundTrip) {
  TempPath tmp("xc");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("a"), "a");
    j->record_worker_death(0, "signal:SIGSEGV");
    j->record_worker_death(3, "exit code 42 (oom)");  // space-encoding path
    j->record_cache_hit(spec_hash("a"));
    j->record_cache_hit(0x0123456789abcdefull);
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->torn_lines, 0u);
  ASSERT_EQ(state->worker_deaths.size(), 2u);
  EXPECT_EQ(state->worker_deaths[0].index, 0u);
  EXPECT_EQ(state->worker_deaths[0].reason, "signal:SIGSEGV");
  EXPECT_EQ(state->worker_deaths[1].index, 3u);
  EXPECT_EQ(state->worker_deaths[1].reason, "exit code 42 (oom)");
  ASSERT_EQ(state->cache_hits.size(), 2u);
  EXPECT_EQ(state->cache_hits[0], spec_hash("a"));
  EXPECT_EQ(state->cache_hits[1], 0x0123456789abcdefull);
}

TEST(JournalTest, TornWorkerDeathAndCacheLinesAreDroppedNotFatal) {
  TempPath tmp("xctorn");
  {
    auto j = CampaignJournal::create(tmp.str(), "unit_sweep");
    ASSERT_NE(j, nullptr);
    j->record_worker_death(0, "timeout");
    j->record_cache_hit(7);
  }
  {
    // SIGKILL mid-append: an X and a C record cut off before their
    // checksums must drop without losing the intact records above them.
    std::ofstream out(tmp.str(), std::ios::app);
    out << "X 1 signal:SIG\n"
        << "C 0123";  // no cks=, no newline
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->torn_lines, 2u);
  ASSERT_EQ(state->worker_deaths.size(), 1u);
  EXPECT_EQ(state->worker_deaths[0].reason, "timeout");
  ASSERT_EQ(state->cache_hits.size(), 1u);
  EXPECT_EQ(state->cache_hits[0], 7u);
}

TEST(JournalTest, RunnerJournalsEveryJobLifecycle) {
  TempPath tmp("runner");
  {
    auto j = CampaignJournal::create(tmp.str(), "pool");
    ASSERT_NE(j, nullptr);
    j->record_planned(0, spec_hash("ok"), "ok");
    j->record_planned(1, spec_hash("boom"), "boom");
    CampaignRunner runner(2);
    runner.set_journal(j.get());
    auto ok = runner.submit("ok", [] { return 1; });
    auto boom = runner.submit("boom", [] {
      throw std::runtime_error("boom");
      return 0;
    });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(boom.get(), std::runtime_error);
    runner.wait_idle();
  }
  const auto state = read_journal(tmp.str());
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->begun_records, 2u);
  // Both ran to completion (one failed) — both journal as done, and the
  // failure is restored with its message.
  ASSERT_EQ(state->completed.size(), 2u);
  EXPECT_FALSE(state->completed.at(0).failed);
  EXPECT_TRUE(state->completed.at(1).failed);
  EXPECT_EQ(state->completed.at(1).error, "boom");
}

}  // namespace
}  // namespace adriatic::campaign
