// ISS processor tests: encoding, execution from memory, instruction-fetch
// bus traffic, the line-buffer cache, and interaction with accelerators.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "bus/bus_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "morphosys/assembler.hpp"
#include "util/log.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic::soc {
namespace {

using namespace kern::literals;

struct IssFixture {
  explicit IssFixture(IssConfig cfg = make_cfg())
      : sys_bus(top, "bus"),
        code(top, "code", 0x8000, 1024),
        data(top, "data", 0x1000, 1024),
        cpu(top, "iss", cfg) {
    sys_bus.bind_slave(code);
    sys_bus.bind_slave(data);
    cpu.mst_port.bind(sys_bus);
  }
  static IssConfig make_cfg() {
    IssConfig c;
    c.reset_pc = 0x8000;
    return c;
  }
  void load(const std::string& asm_text) {
    const auto image = encode_program(morphosys::assemble(asm_text));
    code.load(0x8000, image);
  }
  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  mem::Memory code;
  mem::Memory data;
  IssProcessor cpu;
};

TEST(IssTest, EncodeDecodeShape) {
  const auto prog = morphosys::assemble("ADDI r1, r2, -7\nHALT\n");
  const auto image = encode_program(prog);
  ASSERT_EQ(image.size(), 4u);
  EXPECT_EQ(static_cast<u32>(image[0]) & 0x3F,
            static_cast<u32>(morphosys::Opcode::kAddi));
  EXPECT_EQ((static_cast<u32>(image[0]) >> 6) & 0xF, 1u);   // rd
  EXPECT_EQ((static_cast<u32>(image[0]) >> 10) & 0xF, 2u);  // rs
  EXPECT_EQ(image[1], -7);
}

TEST(IssTest, ArithmeticLoop) {
  IssFixture f;
  f.load(R"(
    ADDI r1, r0, 0
    ADDI r2, r0, 10
    loop:
    ADD  r1, r1, r2
    ADDI r2, r2, -1
    BNE  r2, r0, loop
    ADDI r3, r0, 0x1000
    STW  r3, 0, r1
    HALT
  )");
  f.sim.run();
  EXPECT_TRUE(f.cpu.stats().halted);
  EXPECT_FALSE(f.cpu.stats().illegal_instruction);
  EXPECT_EQ(f.data.peek(0x1000), 55);
  EXPECT_GT(f.cpu.stats().instructions, 30u);
}

TEST(IssTest, LoadStoreRoundTrip) {
  IssFixture f;
  f.data.poke(0x1010, 777);
  f.load(R"(
    ADDI r1, r0, 0x1000
    LDW  r2, r1, 16
    ADDI r2, r2, 1
    STW  r1, 17, r2
    HALT
  )");
  f.sim.run();
  EXPECT_EQ(f.data.peek(0x1011), 778);
  EXPECT_EQ(f.cpu.stats().data_reads, 1u);
  EXPECT_EQ(f.cpu.stats().data_writes, 1u);
}

TEST(IssTest, FetchTrafficVisibleOnBus) {
  IssFixture f;
  f.load(R"(
    ADDI r1, r0, 1
    ADDI r1, r1, 1
    ADDI r1, r1, 1
    HALT
  )");
  f.sim.run();
  // 4 instructions x 2 words, no cache.
  EXPECT_EQ(f.cpu.stats().ifetch_reads, 8u);
  EXPECT_EQ(f.code.stats().reads, 8u);
  EXPECT_EQ(f.cpu.stats().icache_hits, 0u);
}

TEST(IssTest, LineBufferCutsFetchTraffic) {
  IssConfig cfg = IssFixture::make_cfg();
  cfg.icache_line_words = 16;
  IssFixture f(cfg);
  f.load(R"(
    ADDI r1, r0, 0
    ADDI r2, r0, 50
    loop:
    ADDI r1, r1, 1
    BNE  r1, r2, loop
    HALT
  )");
  f.sim.run();
  EXPECT_TRUE(f.cpu.stats().halted);
  EXPECT_EQ(f.cpu.reg(1), 50);
  // The 2-instruction loop body (4 words) lives in one 16-word line: the
  // ~100 loop iterations hit the line buffer instead of the bus.
  EXPECT_GT(f.cpu.stats().icache_hits, 150u);
  EXPECT_LT(f.cpu.stats().ifetch_reads, 64u);
  EXPECT_LT(f.code.stats().reads, 64u);
}

TEST(IssTest, IllegalOpcodeHalts) {
  IssFixture f;
  f.load("DMALD r1, r2, 4\nHALT\n");  // MorphoSys-only opcode
  adriatic::log::set_level(adriatic::log::Level::kOff);
  f.sim.run();
  adriatic::log::set_level(adriatic::log::Level::kWarn);
  EXPECT_TRUE(f.cpu.stats().halted);
  EXPECT_TRUE(f.cpu.stats().illegal_instruction);
}

TEST(IssTest, HaltedEventFires) {
  IssFixture f;
  f.load("HALT\n");
  bool seen = false;
  f.top.spawn_thread("joiner", [&] {
    kern::wait(f.cpu.halted_event());
    seen = true;
  });
  f.sim.run();
  EXPECT_TRUE(seen);
}

TEST(IssTest, DrivesAcceleratorThroughMmio) {
  // The ISS program starts the CRC accelerator and busy-waits on STATUS —
  // the full software/hardware handshake, all in simulated binary code.
  IssFixture f;
  HwAccel acc(f.top, "acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(f.sys_bus);
  f.sys_bus.bind_slave(acc);
  const std::vector<bus::word> payload{1, 2, 3, 4};
  f.data.load(0x1000, payload);
  f.load(R"(
    ADDI r1, r0, 0x100   ; accelerator base
    ADDI r2, r0, 0x1000
    STW  r1, 2, r2       ; SRC
    ADDI r2, r0, 0x1100
    STW  r1, 3, r2       ; DST
    ADDI r2, r0, 4
    STW  r1, 4, r2       ; LEN
    ADDI r2, r0, 1
    STW  r1, 0, r2       ; CTRL = start
    ADDI r3, r0, 2       ; kDone
    poll:
    LDW  r4, r1, 1       ; STATUS
    BNE  r4, r3, poll
    HALT
  )");
  f.sim.run();
  EXPECT_TRUE(f.cpu.stats().halted);
  EXPECT_EQ(static_cast<u32>(f.data.peek(0x1100 + 4)),
            accel::crc32_words(payload));
  EXPECT_EQ(acc.stats().invocations, 1u);
}

TEST(IssTest, BadConfigThrows) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  IssConfig cfg;
  cfg.icache_line_words = 12;  // not a power of two
  EXPECT_THROW(IssProcessor(top, "iss", cfg), std::invalid_argument);
}

}  // namespace
}  // namespace adriatic::soc
