// Netlist and DRCF-transformation tests, including the paper's Sec. 5.2
// worked example: functional equivalence before/after the transformation and
// the three Sec. 5.4 limitation diagnostics.
#include <gtest/gtest.h>

#include "accel/accel_lib.hpp"
#include "morphosys/assembler.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"

namespace adriatic::transform {
namespace {

using namespace kern::literals;
using netlist::Design;
using netlist::Elaborated;

// The Sec. 5.2 architecture: CPU + bus + two accelerators + memories.
// The CPU program runs CRC over a buffer on HWA, then matmul on HWB.
Design make_reference_design(bool split_bus = true) {
  Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  bus_decl.config.split_transactions = split_bus;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 2048;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl hwa;
  hwa.base = 0x100;
  hwa.spec = accel::make_crc_spec();
  hwa.slave_bus = "system_bus";
  hwa.master_bus = "system_bus";
  d.add("hwa", hwa);

  netlist::HwAccelDecl hwb;
  hwb.base = 0x200;
  hwb.spec = accel::make_matmul_spec(4);
  hwb.slave_bus = "system_bus";
  hwb.master_bus = "system_bus";
  d.add("hwb", hwb);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    // Seed input data.
    std::vector<bus::word> payload{3, 1, 4, 1, 5, 9, 2, 6};
    c.burst_write(0x1000, payload);
    // CRC on HWA.
    c.write(0x100 + soc::HwAccel::kSrc, 0x1000);
    c.write(0x100 + soc::HwAccel::kDst, 0x1100);
    c.write(0x100 + soc::HwAccel::kLen, 8);
    c.write(0x100 + soc::HwAccel::kCtrl, 1);
    c.poll_until(0x100 + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
    // Matmul on HWB: A = B = 4x4 ramp.
    std::vector<bus::word> mats(32);
    for (usize i = 0; i < 16; ++i) mats[i] = mats[16 + i] = static_cast<bus::word>(i);
    c.burst_write(0x1200, mats);
    c.write(0x200 + soc::HwAccel::kSrc, 0x1200);
    c.write(0x200 + soc::HwAccel::kDst, 0x1300);
    c.write(0x200 + soc::HwAccel::kLen, 32);
    c.write(0x200 + soc::HwAccel::kCtrl, 1);
    c.poll_until(0x200 + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  };
  d.add("cpu", cpu);
  return d;
}

TransformOptions make_options() {
  TransformOptions opt;
  opt.drcf_config.technology = drcf::varicore_like();
  opt.config_memory = "cfg_mem";
  return opt;
}

struct RunResult {
  std::vector<bus::word> crc_out;
  std::vector<bus::word> mat_out;
  kern::Time finish_time;
};

RunResult run_design(Design& d) {
  kern::Simulation sim;
  Elaborated e(sim, d);
  sim.run();
  RunResult r;
  auto& ram = e.get_memory("ram");
  for (u32 i = 0; i < 9; ++i) r.crc_out.push_back(ram.peek(0x1100 + i));
  for (u32 i = 0; i < 16; ++i) r.mat_out.push_back(ram.peek(0x1300 + i));
  r.finish_time = sim.now();
  EXPECT_TRUE(e.get_processor("cpu").finished());
  return r;
}

// ---------------------------------------------------------------------------

TEST(DesignTest, DuplicateAndMissingNames) {
  Design d;
  d.add("bus", netlist::BusDecl{});
  EXPECT_THROW(d.add("bus", netlist::BusDecl{}), std::invalid_argument);
  EXPECT_THROW(d.add("", netlist::BusDecl{}), std::invalid_argument);
  EXPECT_THROW(d.at("nope"), std::out_of_range);
  EXPECT_THROW(d.remove("nope"), std::out_of_range);
  EXPECT_TRUE(d.contains("bus"));
  d.remove("bus");
  EXPECT_FALSE(d.contains("bus"));
}

TEST(DesignTest, ValidateCatchesDanglingReferences) {
  Design d;
  netlist::MemoryDecl m;
  m.words = 16;
  m.bus = "ghost_bus";
  d.add("ram", m);
  const auto problems = d.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown component"), std::string::npos);
}

TEST(DesignTest, ValidateCatchesKindMismatch) {
  Design d;
  d.add("bus", netlist::BusDecl{});
  netlist::MemoryDecl m;
  m.words = 16;
  m.bus = "bus";
  d.add("ram", m);
  netlist::DmaDecl dma;
  dma.slave_bus = "ram";  // a memory, not a bus
  dma.master_bus = "bus";
  d.add("dma", dma);
  const auto problems = d.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("expected a bus"), std::string::npos);
}

TEST(DesignTest, ValidateCatchesNullProgramAndBadSpec) {
  Design d;
  d.add("bus", netlist::BusDecl{});
  netlist::ProcessorDecl p;
  p.master_bus = "bus";
  d.add("cpu", p);  // program not set
  netlist::HwAccelDecl h;
  h.master_bus = "bus";
  d.add("acc", h);  // invalid spec
  const auto problems = d.validate();
  EXPECT_EQ(problems.size(), 2u);
}

TEST(DesignTest, ReferenceDesignIsValid) {
  auto d = make_reference_design();
  EXPECT_TRUE(d.validate().empty());
}

TEST(ElaborateTest, RejectsInvalidDesign) {
  kern::Simulation sim;
  Design d;
  netlist::MemoryDecl m;
  m.words = 0;  // invalid
  d.add("ram", m);
  EXPECT_THROW(Elaborated(sim, d), std::invalid_argument);
}

TEST(ElaborateTest, BuildsHierarchyUnderTop) {
  kern::Simulation sim;
  auto d = make_reference_design();
  Elaborated e(sim, d, "soc");
  EXPECT_EQ(e.top().name(), "soc");
  EXPECT_NE(sim.find_object("soc.system_bus"), nullptr);
  EXPECT_NE(sim.find_object("soc.hwa"), nullptr);
  EXPECT_NE(sim.find_object("soc.cpu"), nullptr);
  EXPECT_TRUE(e.has("ram"));
  EXPECT_FALSE(e.has("nonexistent"));
  EXPECT_THROW(e.get_drcf("ram"), std::out_of_range);
  EXPECT_THROW(e.get_bus("nonexistent"), std::out_of_range);
}

TEST(ElaborateTest, ReferenceDesignRunsCorrectly) {
  auto d = make_reference_design();
  auto r = run_design(d);
  // CRC output: payload echoed + CRC word.
  const std::vector<bus::word> payload{3, 1, 4, 1, 5, 9, 2, 6};
  for (usize i = 0; i < 8; ++i) EXPECT_EQ(r.crc_out[i], payload[i]);
  EXPECT_EQ(static_cast<u32>(r.crc_out[8]), accel::crc32_words(payload));
  // Matmul output: ramp^2.
  std::vector<bus::word> ramp(16);
  for (usize i = 0; i < 16; ++i) ramp[i] = static_cast<bus::word>(i);
  EXPECT_EQ(r.mat_out, accel::matmul(ramp, ramp, 4));
}

TEST(ElaborateTest, IssAndIrqDeclsBuildAndRun) {
  // Binary-software SoC from the netlist: an ISS core runs assembled code
  // that starts the CRC accelerator and spins on the interrupt controller's
  // STATUS register instead of the accelerator's.
  Design d;
  d.add("system_bus", netlist::BusDecl{});
  netlist::MemoryDecl code;
  code.low = 0x8000;
  code.words = 1024;
  code.bus = "system_bus";
  d.add("code", code);
  netlist::MemoryDecl data;
  data.low = 0x1000;
  data.words = 1024;
  data.bus = "system_bus";
  d.add("data", data);
  netlist::HwAccelDecl acc;
  acc.base = 0x100;
  acc.spec = accel::make_crc_spec();
  acc.slave_bus = acc.master_bus = "system_bus";
  d.add("acc", acc);
  netlist::IrqControllerDecl irq;
  irq.base = 0x400;
  irq.bus = "system_bus";
  irq.lines = {{0, "acc"}};
  d.add("irq", irq);
  netlist::IssDecl iss;
  iss.master_bus = "system_bus";
  iss.code_memory = "code";
  iss.config.reset_pc = 0x8000;
  iss.config.icache_line_words = 16;
  iss.program = morphosys::assemble(R"(
    ADDI r5, r0, 0x400   ; irq controller
    ADDI r2, r0, 1
    STW  r5, 2, r2       ; ENABLE line 0
    ADDI r1, r0, 0x100   ; accelerator
    ADDI r2, r0, 0x1000
    STW  r1, 2, r2       ; SRC
    ADDI r2, r0, 0x1040
    STW  r1, 3, r2       ; DST
    ADDI r2, r0, 4
    STW  r1, 4, r2       ; LEN
    ADDI r2, r0, 1
    STW  r1, 0, r2       ; CTRL
    wait:
    LDW  r4, r5, 0       ; IRQ STATUS
    BEQ  r4, r0, wait
    ADDI r2, r0, 1
    STW  r5, 3, r2       ; ACK
    HALT
  )");
  d.add("cpu", iss);
  EXPECT_TRUE(d.validate().empty());

  kern::Simulation sim;
  Elaborated e(sim, d);
  e.get_memory("data").load(0x1000, std::vector<bus::word>{9, 8, 7, 6});
  sim.run();
  EXPECT_TRUE(e.get_iss("cpu").stats().halted);
  EXPECT_FALSE(e.get_iss("cpu").stats().illegal_instruction);
  EXPECT_EQ(e.get_irq("irq").pending(), 0u);  // acknowledged
  EXPECT_EQ(static_cast<u32>(e.get_memory("data").peek(0x1040 + 4)),
            accel::crc32_words(std::vector<bus::word>{9, 8, 7, 6}));
}

TEST(DesignTest, IssAndIrqValidation) {
  Design d;
  d.add("bus", netlist::BusDecl{});
  netlist::IssDecl iss;  // empty program, missing code memory
  iss.master_bus = "bus";
  iss.code_memory = "nope";
  d.add("cpu", iss);
  netlist::IrqControllerDecl irq;
  irq.bus = "bus";
  irq.lines = {{40, "ghost"}};  // bad line index, unknown source
  d.add("irq", irq);
  const auto problems = d.validate();
  EXPECT_EQ(problems.size(), 4u);
}

// ---------------------------------------------------------------------------

TEST(TransformTest, ProducesValidTransformedDesign) {
  auto d = make_reference_design();
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  ASSERT_TRUE(report.ok) << (report.diagnostics.empty()
                                 ? "?"
                                 : report.diagnostics[0]);
  EXPECT_TRUE(d.validate().empty());
  EXPECT_TRUE(d.contains("drcf1"));
  const auto* dr = d.get_if<netlist::DrcfDecl>("drcf1");
  ASSERT_NE(dr, nullptr);
  EXPECT_EQ(dr->contexts, candidates);
  EXPECT_EQ(dr->slave_bus, "system_bus");
  // Candidates lost their direct bus binding (phase 4).
  EXPECT_TRUE(d.get_if<netlist::HwAccelDecl>("hwa")->slave_bus.empty());
}

TEST(TransformTest, AnalysisRecordsPaperPhases) {
  auto d = make_reference_design();
  const std::vector<std::string> candidates{"hwa"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  ASSERT_TRUE(report.ok);
  ASSERT_EQ(report.candidates.size(), 1u);
  const auto& a = report.candidates[0];
  EXPECT_EQ(a.instance, "hwa");
  EXPECT_EQ(a.interface, "bus_slv_if");
  EXPECT_EQ(a.ports.size(), 2u);  // clk + mst_port, as in the paper listing
  EXPECT_EQ(a.low, 0x100u);
  EXPECT_GT(a.context_words, 0u);
  EXPECT_GE(a.config_address, 0x100000u);
}

TEST(TransformTest, ListingsMirrorThePaper) {
  auto d = make_reference_design();
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  ASSERT_TRUE(report.ok);
  // Before: the original top instantiates hwa and binds it to the bus.
  EXPECT_NE(report.before_listing.find("hwa = new hwacc(\"hwa\""),
            std::string::npos);
  EXPECT_NE(report.before_listing.find("system_bus->slv_port(*hwa);"),
            std::string::npos);
  // After: top instantiates drcf1 instead; the DRCF template owns hwa and
  // has the arb_and_instr thread.
  EXPECT_NE(report.after_listing.find("drcf1 = new drcf_own(\"drcf1\");"),
            std::string::npos);
  EXPECT_NE(report.after_listing.find("SC_THREAD(arb_and_instr);"),
            std::string::npos);
  EXPECT_NE(report.after_listing.find("hwa = new hwacc(\"hwa\""),
            std::string::npos);
  EXPECT_EQ(report.after_listing.find("system_bus->slv_port(*hwa);"),
            std::string::npos);
}

TEST(TransformTest, TransformedDesignFunctionallyEquivalent) {
  auto original = make_reference_design();
  auto transformed = make_reference_design();
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report =
      transform_to_drcf(transformed, candidates, make_options());
  ASSERT_TRUE(report.ok);

  auto r_orig = run_design(original);
  auto r_drcf = run_design(transformed);
  // Same results...
  EXPECT_EQ(r_orig.crc_out, r_drcf.crc_out);
  EXPECT_EQ(r_orig.mat_out, r_drcf.mat_out);
  // ...but the DRCF version pays reconfiguration time.
  EXPECT_GT(r_drcf.finish_time, r_orig.finish_time);
}

TEST(TransformTest, DrcfInstrumentationAfterRun) {
  auto d = make_reference_design();
  const std::vector<std::string> candidates{"hwa", "hwb"};
  ASSERT_TRUE(transform_to_drcf(d, candidates, make_options()).ok);
  kern::Simulation sim;
  Elaborated e(sim, d);
  sim.run();
  auto& fabric = e.get_drcf("drcf1");
  EXPECT_EQ(fabric.stats().switches, 2u);  // CRC then matmul
  EXPECT_GT(fabric.stats().config_words_fetched, 0u);
  const auto s0 = fabric.context_stats(0);
  EXPECT_EQ(s0.activations, 1u);
  EXPECT_GT(s0.accesses, 0u);
  EXPECT_GT(s0.reconfig_time, kern::Time::zero());
  // The synthetic bitstream was installed in the config memory.
  const auto& params = fabric.context_params(0);
  EXPECT_EQ(static_cast<u32>(
                e.get_memory("cfg_mem").peek(params.config_address)),
            Elaborated::kBitstreamPattern | 0u);
}

TEST(TransformTest, Limitation1DifferentBusesRejected) {
  auto d = make_reference_design();
  netlist::BusDecl other;
  d.add("other_bus", other);
  netlist::HwAccelDecl hwc;
  hwc.base = 0x300;
  hwc.spec = accel::make_crc_spec();
  hwc.slave_bus = "other_bus";
  hwc.master_bus = "other_bus";
  d.add("hwc", hwc);
  const std::vector<std::string> candidates{"hwa", "hwc"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("limitation 1"));
  EXPECT_FALSE(d.contains("drcf1"));  // design untouched
  EXPECT_FALSE(d.get_if<netlist::HwAccelDecl>("hwa")->slave_bus.empty());
}

TEST(TransformTest, Limitation2NonSlaveCandidateRejected) {
  auto d = make_reference_design();
  netlist::TrafficGenDecl t;
  t.master_bus = "system_bus";
  d.add("streamer", t);
  const std::vector<std::string> candidates{"hwa", "streamer"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("limitation 2"));
  EXPECT_TRUE(report.has_warning("get_low_add"));
}

TEST(TransformTest, Limitation3SharedBlockingBusWarns) {
  auto d = make_reference_design(/*split_bus=*/false);
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  EXPECT_TRUE(report.ok);  // a warning, not an error
  EXPECT_TRUE(report.has_warning("limitation 3"));
  EXPECT_TRUE(report.has_warning("deadlock"));
}

TEST(TransformTest, StaticNextOutOfRangeWarns) {
  auto d = make_reference_design();
  TransformOptions opt = make_options();
  opt.drcf_config.prefetch.policy = drcf::PrefetchPolicy::kStaticNext;
  opt.drcf_config.prefetch.static_next = {1, 5};  // 5 >= 2 contexts
  const auto report =
      transform_to_drcf(d, std::vector<std::string>{"hwa", "hwb"}, opt);
  EXPECT_TRUE(report.ok);  // a warning, not an error
  EXPECT_TRUE(report.has_warning("static_next[1] = 5"));
  EXPECT_TRUE(report.has_warning("never fire"));

  auto d2 = make_reference_design();
  TransformOptions opt2 = make_options();
  opt2.drcf_config.prefetch.policy = drcf::PrefetchPolicy::kStaticNext;
  opt2.drcf_config.prefetch.static_next = {1, 0};
  const auto report2 =
      transform_to_drcf(d2, std::vector<std::string>{"hwa", "hwb"}, opt2);
  EXPECT_TRUE(report2.ok);
  EXPECT_FALSE(report2.has_warning("static_next"));
}

TEST(TransformTest, Limitation3DeadlockReallyHappens) {
  auto d = make_reference_design(/*split_bus=*/false);
  const std::vector<std::string> candidates{"hwa", "hwb"};
  ASSERT_TRUE(transform_to_drcf(d, candidates, make_options()).ok);
  kern::Simulation sim;
  Elaborated e(sim, d);
  EXPECT_EQ(sim.run(), kern::StopReason::kNoActivity);
  EXPECT_FALSE(e.get_processor("cpu").finished());
  EXPECT_GE(sim.starved_processes().size(), 1u);
}

TEST(TransformTest, DedicatedConfigLinkCuresLimitation3) {
  auto d = make_reference_design(/*split_bus=*/false);
  // A private link to a dedicated configuration memory.
  netlist::MemoryDecl cfg2;
  cfg2.low = 0x200000;
  cfg2.words = 1u << 16;
  d.add("cfg_mem2", cfg2);
  netlist::DirectLinkDecl link;
  link.slave = "cfg_mem2";
  d.add("cfg_link", link);
  TransformOptions opt = make_options();
  opt.config_memory = "cfg_mem2";
  opt.config_bus = "cfg_link";
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report = transform_to_drcf(d, candidates, opt);
  ASSERT_TRUE(report.ok);
  EXPECT_FALSE(report.has_warning("limitation 3"));
  kern::Simulation sim;
  Elaborated e(sim, d);
  sim.run();
  EXPECT_TRUE(e.get_processor("cpu").finished());
}

TEST(TransformTest, ErrorCases) {
  auto d = make_reference_design();
  TransformOptions opt = make_options();
  // Empty candidate list.
  EXPECT_FALSE(transform_to_drcf(d, {}, opt).ok);
  // Unknown candidate.
  const std::vector<std::string> ghost{"ghost"};
  EXPECT_FALSE(transform_to_drcf(d, ghost, opt).ok);
  // Duplicate candidate.
  const std::vector<std::string> dup{"hwa", "hwa"};
  EXPECT_FALSE(transform_to_drcf(d, dup, opt).ok);
  // Unknown config memory.
  opt.config_memory = "ghost_mem";
  const std::vector<std::string> one{"hwa"};
  EXPECT_FALSE(transform_to_drcf(d, one, opt).ok);
  // Name collision.
  opt = make_options();
  opt.drcf_name = "ram";
  EXPECT_FALSE(transform_to_drcf(d, one, opt).ok);
}

TEST(TransformTest, SandwichedSlaveRejected) {
  // hwa (0x100) and hwc (0x300) as candidates with hwb (0x200) in between:
  // the DRCF's union range would swallow hwb.
  auto d = make_reference_design();
  netlist::HwAccelDecl hwc;
  hwc.base = 0x300;
  hwc.spec = accel::make_crc_spec();
  hwc.slave_bus = hwc.master_bus = "system_bus";
  d.add("hwc", hwc);
  const std::vector<std::string> candidates{"hwa", "hwc"};
  const auto report = transform_to_drcf(d, candidates, make_options());
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("union address range"));
  EXPECT_TRUE(report.has_warning("hwb"));
  // Adjacent candidates are fine.
  const std::vector<std::string> adjacent{"hwa", "hwb"};
  EXPECT_TRUE(transform_to_drcf(d, adjacent, make_options()).ok);
}

// --- edge cases: degenerate candidate sets must be reported, never
// silently mis-transformed ---------------------------------------------------

TEST(TransformEdgeCase, EmptyCandidateSetLeavesDesignUntouched) {
  auto d = make_reference_design();
  const auto report = transform_to_drcf(d, {}, make_options());
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("no candidate instances"));
  EXPECT_TRUE(report.candidates.empty());
  // Nothing was half-applied.
  EXPECT_FALSE(d.contains("drcf1"));
  EXPECT_EQ(d.get_if<netlist::HwAccelDecl>("hwa")->slave_bus, "system_bus");
  EXPECT_EQ(d.get_if<netlist::HwAccelDecl>("hwb")->slave_bus, "system_bus");
}

TEST(TransformEdgeCase, SingleCandidateWarnsButTransformsCorrectly) {
  // A one-context DRCF is legal but pointless (it time-shares nothing);
  // the report must say so instead of transforming silently.
  auto original = make_reference_design();
  auto d = make_reference_design();
  const std::vector<std::string> one{"hwa"};
  const auto report = transform_to_drcf(d, one, make_options());
  ASSERT_TRUE(report.ok);
  EXPECT_TRUE(report.has_warning("single candidate"));
  EXPECT_TRUE(report.has_warning("time-shares nothing"));
  ASSERT_EQ(report.candidates.size(), 1u);

  // And the degenerate fabric still computes the right answers: one cold
  // miss, then every later access hits the resident context.
  const auto r_orig = run_design(original);
  const auto r_one = run_design(d);
  EXPECT_EQ(r_orig.crc_out, r_one.crc_out);
  EXPECT_EQ(r_orig.mat_out, r_one.mat_out);
  kern::Simulation sim;
  Elaborated e(sim, d);
  sim.run();
  auto& fabric = e.get_drcf("drcf1");
  EXPECT_EQ(fabric.context_count(), 1u);
  EXPECT_EQ(fabric.stats().switches, 1u);
  EXPECT_EQ(fabric.stats().misses, 1u);
}

TEST(TransformEdgeCase, DuplicateCandidateNamesTheOffender) {
  auto d = make_reference_design();
  const std::vector<std::string> dup{"hwa", "hwb", "hwa"};
  const auto report = transform_to_drcf(d, dup, make_options());
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("'hwa' listed twice"));
  EXPECT_FALSE(d.contains("drcf1"));
  EXPECT_EQ(d.get_if<netlist::HwAccelDecl>("hwa")->slave_bus, "system_bus");
}

TEST(TransformEdgeCase, DuplicateModuleInstancesStayDistinctContexts) {
  // Two instances of the SAME accelerator spec are distinct components and
  // must become two independent contexts, not be deduplicated.
  auto d = make_reference_design();
  netlist::HwAccelDecl crc2;
  crc2.base = 0x300;
  crc2.spec = accel::make_crc_spec();  // identical spec to hwa
  crc2.slave_bus = crc2.master_bus = "system_bus";
  d.add("hwa_twin", crc2);

  const std::vector<std::string> twins{"hwb", "hwa_twin"};
  const auto report = transform_to_drcf(d, twins, make_options());
  ASSERT_TRUE(report.ok) << (report.diagnostics.empty()
                                 ? "?"
                                 : report.diagnostics[0]);
  ASSERT_EQ(report.candidates.size(), 2u);
  EXPECT_NE(report.candidates[0].config_address,
            report.candidates[1].config_address);

  kern::Simulation sim;
  Elaborated e(sim, d);
  sim.run();
  EXPECT_TRUE(e.get_processor("cpu").finished());
  EXPECT_EQ(e.get_drcf("drcf1").context_count(), 2u);
}

TEST(TransformTest, ConfigMemoryTooSmall) {
  auto d = make_reference_design();
  netlist::MemoryDecl tiny;
  tiny.low = 0x300000;
  tiny.words = 4;  // far too small for kilogate contexts
  tiny.bus = "system_bus";
  d.add("tiny_mem", tiny);
  TransformOptions opt = make_options();
  opt.config_memory = "tiny_mem";
  const std::vector<std::string> candidates{"hwa"};
  const auto report = transform_to_drcf(d, candidates, opt);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has_warning("too small"));
}

}  // namespace
}  // namespace adriatic::transform
