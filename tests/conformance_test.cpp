// Scheduler conformance suite: pins the kernel's deterministic-scheduling
// contract with golden trace digests, proves the digest has teeth (a
// deliberate scheduler-order perturbation changes it), checks digest parity
// between serial and campaign execution and between compaction modes, and
// exercises the fuzz-case shrinker and replay-file round trip.
//
// Golden workflow: the recorded digests live in tests/golden/ (path baked in
// via ADRIATIC_GOLDEN_FILE). After an intentional scheduler-semantics
// change, regenerate with  ADRIATIC_UPDATE_GOLDEN=1 ctest -R conformance
// and commit the diff. See docs/conformance.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "campaign/campaign.hpp"
#include "conformance/digest.hpp"
#include "conformance/fuzz_case.hpp"
#include "conformance/golden.hpp"
#include "conformance/scenarios.hpp"
#include "conformance/shrink.hpp"
#include "fault/interposer.hpp"
#include "fault/plan.hpp"
#include "kernel/module.hpp"
#include "memory/memory.hpp"
#include "util/check.hpp"

#ifndef ADRIATIC_GOLDEN_FILE
#define ADRIATIC_GOLDEN_FILE ""
#endif

namespace adriatic::conformance {
namespace {

// --- digest primitives ------------------------------------------------------

kern::SchedRecord record(kern::SchedRecord::Kind kind, u64 time_ps, u64 delta,
                         u64 id) {
  kern::SchedRecord r;
  r.kind = kind;
  r.time_ps = time_ps;
  r.delta = delta;
  r.id = id;
  return r;
}

TEST(TraceDigestTest, OrderSensitive) {
  const auto a =
      record(kern::SchedRecord::Kind::kDispatch, 100, 1, 0xaaaa);
  const auto b =
      record(kern::SchedRecord::Kind::kDeltaNotify, 100, 1, 0xbbbb);
  TraceDigest ab, ba;
  ab.on_record(a);
  ab.on_record(b);
  ba.on_record(b);
  ba.on_record(a);
  EXPECT_NE(ab.value(), ba.value());  // a swap must change the digest
  EXPECT_EQ(ab.records(), 2u);

  TraceDigest fresh;
  ab.reset();
  EXPECT_EQ(ab.value(), fresh.value());
  EXPECT_EQ(ab.records(), 0u);
}

TEST(TraceDigestTest, EveryFieldContributes) {
  const auto base = record(kern::SchedRecord::Kind::kDispatch, 100, 1, 7);
  for (const auto& variant :
       {record(kern::SchedRecord::Kind::kUpdate, 100, 1, 7),
        record(kern::SchedRecord::Kind::kDispatch, 101, 1, 7),
        record(kern::SchedRecord::Kind::kDispatch, 100, 2, 7),
        record(kern::SchedRecord::Kind::kDispatch, 100, 1, 8)}) {
    TraceDigest d0, d1;
    d0.on_record(base);
    d1.on_record(variant);
    EXPECT_NE(d0.value(), d1.value());
  }
}

TEST(TraceDigestTest, DigestStrIs16HexDigits) {
  EXPECT_EQ(digest_str(0), "0000000000000000");
  EXPECT_EQ(digest_str(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(digest_str(~0ULL), "ffffffffffffffff");
}

TEST(TraceDigestTest, NameHashIsStableFnv1a) {
  // The id of every dispatch/notify record is a name hash, never a pointer:
  // the exact FNV-1a value is part of the digest format.
  EXPECT_EQ(kern::sched_name_hash(""), 14695981039346656037ULL);
  EXPECT_EQ(kern::sched_name_hash("a"),
            (14695981039346656037ULL ^ 'a') * 1099511628211ULL);
  EXPECT_NE(kern::sched_name_hash("top.cpu"), kern::sched_name_hash("top.cpv"));
}

// --- fuzz-case serialization -----------------------------------------------

TEST(FuzzCaseIoTest, SerializeParseRoundTrip) {
  const auto fc = make_case(7);
  ASSERT_TRUE(valid(fc));
  const auto back = parse_case(serialize(fc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fc);
}

TEST(FuzzCaseIoTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_case("").has_value());
  EXPECT_FALSE(parse_case("bogus header\nseed 1\n").has_value());
  const auto fc = make_case(3);
  EXPECT_FALSE(parse_case(serialize(fc) + "mystery 9\n").has_value());
  // Structurally invalid (schedule index out of range) must not parse.
  auto bad = fc;
  bad.schedule.push_back(bad.n_accels);
  EXPECT_FALSE(parse_case(serialize(bad)).has_value());
}

TEST(FuzzCaseIoTest, ReplayFileRoundTrip) {
  const auto fc = make_case(11);
  const std::string path = ::testing::TempDir() + "/roundtrip.fuzzcase";
  ASSERT_TRUE(write_replay_file(path, fc));
  const auto back = read_replay_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fc);
  EXPECT_FALSE(read_replay_file(path + ".missing").has_value());
}

// --- golden-file format ----------------------------------------------------

TEST(GoldenFormatTest, RoundTrip) {
  GoldenMap m{{"alpha", 0x0123456789abcdefULL}, {"beta", 0}};
  const auto back = parse_golden(format_golden(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(GoldenFormatTest, RejectsMalformed) {
  EXPECT_FALSE(parse_golden("name 123\n").has_value());  // not 16 digits
  EXPECT_FALSE(parse_golden("name 00000000deadbeeX\n").has_value());
  EXPECT_FALSE(
      parse_golden("a 0000000000000001\na 0000000000000002\n").has_value());
}

// --- determinism: the tentpole properties ----------------------------------

TEST(DeterminismTest, RepeatedRunsProduceIdenticalDigests) {
  const auto r1 = run_scenario("quickstart");
  const auto r2 = run_scenario("quickstart");
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_GT(r1->records, 0u);
  EXPECT_EQ(r1->digest, r2->digest);
  EXPECT_EQ(r1->sim_time_ps, r2->sim_time_ps);
}

TEST(DeterminismTest, SerialAndCampaignDigestsMatchAcrossSeeds) {
  // The acceptance bar: byte-identical digests between a plain serial run
  // and CampaignRunner workers, across >= 10 seeds.
  constexpr u64 kSeeds = 12;
  std::vector<CaseResult> serial;
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    serial.push_back(run_case(make_case(seed)));
    ASSERT_TRUE(serial.back().ok) << "seed " << seed << ": "
                                  << serial.back().failure;
  }

  campaign::CampaignRunner runner(2);
  std::vector<std::future<CaseResult>> futures;
  for (u64 seed = 1; seed <= kSeeds; ++seed) {
    futures.push_back(runner.submit(
        "conformance_seed_" + std::to_string(seed),
        [seed](campaign::JobContext& ctx) {
          CaseResult r = run_case(make_case(seed));
          ctx.record_digest(r.digest);
          return r;
        }));
  }
  for (u64 i = 0; i < kSeeds; ++i) {
    const auto r = futures[i].get();
    ASSERT_TRUE(r.ok) << "seed " << (i + 1) << ": " << r.failure;
    EXPECT_EQ(digest_str(r.digest), digest_str(serial[i].digest))
        << "seed " << (i + 1)
        << ": campaign worker diverged from the serial run";
    EXPECT_EQ(r.sim_time_ps, serial[i].sim_time_ps);
  }

  // The digests also travel through the campaign's own bookkeeping, so a
  // campaign report can be diffed for determinism without the futures.
  runner.wait_idle();
  const auto stats = runner.stats();
  ASSERT_EQ(stats.size(), kSeeds);
  for (u64 i = 0; i < kSeeds; ++i)
    EXPECT_EQ(digest_str(stats[i].digest), digest_str(serial[i].digest))
        << "seed " << (i + 1) << ": JobStats digest diverged";
}

TEST(DeterminismTest, TimedCompactionDoesNotChangeDigests) {
  // Compaction rebuilds the timed heap around stale entries; live pop order
  // — and therefore the trace — must be unaffected.
  for (const auto& name : scenario_names()) {
    ScenarioOptions off;
    off.timed_compaction = false;
    const auto with = run_scenario(name);
    const auto without = run_scenario(name, off);
    ASSERT_TRUE(with.has_value() && without.has_value()) << name;
    EXPECT_EQ(digest_str(with->digest), digest_str(without->digest))
        << "scenario " << name << ": compaction changed the schedule";
  }
}

TEST(DeterminismTest, InjectedSchedulerPerturbationIsCaught) {
  // The digest must have teeth: evaluating the runnable queue LIFO instead
  // of FIFO (the kernel's test-only perturbation hook) has to show up.
  ScenarioOptions lifo;
  lifo.lifo_perturbation = true;
  for (const auto& name : {std::string("quickstart"),
                           std::string("drcf_thrash_one_slot")}) {
    const auto base = run_scenario(name);
    const auto perturbed = run_scenario(name, lifo);
    ASSERT_TRUE(base.has_value() && perturbed.has_value()) << name;
    EXPECT_NE(base->digest, perturbed->digest)
        << "scenario " << name
        << ": LIFO evaluation went unnoticed by the digest";
  }
}

// --- golden suite -----------------------------------------------------------

TEST(GoldenSuiteTest, ScenarioDigestsMatchGoldenFile) {
  const std::string path = ADRIATIC_GOLDEN_FILE;
  ASSERT_FALSE(path.empty()) << "build did not define ADRIATIC_GOLDEN_FILE";

  GoldenMap current;
  for (const auto& name : scenario_names()) {
    const auto r = run_scenario(name);
    ASSERT_TRUE(r.has_value()) << name;
    ASSERT_GT(r->records, 0u) << name << ": scenario produced no trace";
    current[name] = r->digest;
  }

  if (std::getenv("ADRIATIC_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(write_golden_file(path, current)) << "cannot write " << path;
    GTEST_SKIP() << "golden digests rewritten to " << path;
  }

  const auto golden = read_golden_file(path);
  ASSERT_TRUE(golden.has_value())
      << path << " missing or malformed — regenerate with "
      << "ADRIATIC_UPDATE_GOLDEN=1 ctest -R conformance";
  for (const auto& [name, digest] : current) {
    const auto it = golden->find(name);
    ASSERT_NE(it, golden->end())
        << "scenario " << name << " has no golden digest — regenerate";
    EXPECT_EQ(digest_str(digest), digest_str(it->second))
        << "scenario " << name << " drifted from its golden digest; if the "
        << "scheduler change is intentional, regenerate the golden file";
  }
  EXPECT_EQ(golden->size(), current.size())
      << "golden file lists scenarios that no longer exist — regenerate";
}

// --- prefetch-policy differentials ------------------------------------------

TEST(PrefetchDifferentialTest, ExplicitOnDemandDefaultsAreDigestNeutral) {
  // The prefetch layer's paper-faithful default must be byte-identical to
  // the pre-prefetch scheduler: the prefetch_on_demand scenario sets every
  // knob explicitly (policy, an ignored successor table, zero cache planes)
  // and must reproduce the plain sec53 digest exactly.
  const auto base = run_scenario("sec53_varicore_s1_shared");
  const auto knobs = run_scenario("prefetch_on_demand");
  ASSERT_TRUE(base.has_value() && knobs.has_value());
  EXPECT_EQ(digest_str(knobs->digest), digest_str(base->digest))
      << "explicit on-demand prefetch knobs changed the schedule";
  EXPECT_EQ(knobs->sim_time_ps, base->sim_time_ps);
}

TEST(PrefetchDifferentialTest, PoliciesPreserveFunctionalOutput) {
  // A repeated-switch workload run under every prefetch policy x cache
  // depth: the policies may move configuration traffic off the demand path,
  // but the accelerator results must be byte-identical, and with no fault
  // plan installed no policy may log a fault event.
  FuzzCase base;
  base.n_accels = 3;
  base.n_candidates = 3;
  base.slots = 1;
  base.tech_index = 1;  // varicore: zero-overhead switches, pure bus cost
  base.schedule = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  ASSERT_TRUE(valid(base));
  const auto reference = run_case(base);
  ASSERT_TRUE(reference.ok) << reference.failure;

  for (u32 policy = 0; policy <= 3; ++policy) {
    for (const u32 cache : {0u, 2u}) {
      SCOPED_TRACE("policy " + std::to_string(policy) + " cache " +
                   std::to_string(cache));
      FuzzCase fc = base;
      fc.prefetch_policy = policy;
      fc.cache_slots = cache;
      ASSERT_TRUE(valid(fc));
      const auto r = run_case(fc);
      ASSERT_TRUE(r.ok) << r.failure;
      EXPECT_EQ(r.outputs, reference.outputs);
      EXPECT_EQ(r.fault_ledger_digest, reference.fault_ledger_digest);
    }
  }
}

TEST(PrefetchDifferentialTest, PoliciesPreserveOutputUnderTimingFaults) {
  // Same differential under a timing-only fault plan: injected fetch delays
  // perturb prefetch completion order, but the functional result must still
  // match the fault-free hardwired reference under every policy. (Ledger
  // digests legitimately differ here: each policy fetches a different
  // transaction sequence, so the rate-based plan fires differently.)
  FuzzCase base;
  base.n_accels = 3;
  base.n_candidates = 3;
  base.slots = 1;
  base.tech_index = 1;
  base.schedule = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  base.fault_rate_pct = 30;
  base.recovery = 1;  // retry/backoff
  const auto reference = run_case(base);
  ASSERT_TRUE(reference.ok) << reference.failure;

  for (u32 policy = 1; policy <= 3; ++policy) {
    SCOPED_TRACE("policy " + std::to_string(policy));
    FuzzCase fc = base;
    fc.prefetch_policy = policy;
    fc.cache_slots = 2;
    ASSERT_TRUE(valid(fc));
    const auto r = run_case(fc);
    ASSERT_TRUE(r.ok) << r.failure;
    EXPECT_EQ(r.outputs, reference.outputs);
  }
}

// --- timed-vs-loose differentials -------------------------------------------

TEST(TimingModeDifferentialTest, QuantumSweepPreservesFunctionalResults) {
  // Every golden scenario re-run loosely timed under quanta of 1, 10 and
  // 1000 bus cycles (the registry's buses all run a 10 ns cycle): the
  // functional output fold and the time-independent fault-ledger fold must
  // match the timed run exactly at every quantum. Trace digests are NOT
  // compared — eliding and reordering scheduler activity is the point of
  // loose mode, and the golden digests stay a kTimed-only contract.
  using namespace kern::literals;
  const kern::Time quanta[] = {10_ns, 100_ns, 10_us};
  for (const auto& name : scenario_names()) {
    const auto timed = run_scenario(name);
    ASSERT_TRUE(timed.has_value());
    ASSERT_NE(timed->output_digest, 0u) << name;
    for (const auto q : quanta) {
      SCOPED_TRACE(name + " quantum " + q.str());
      ScenarioOptions opt;
      opt.timing_mode = kern::TimingMode::kLoose;
      opt.quantum = q;
      const auto loose = run_scenario(name, opt);
      ASSERT_TRUE(loose.has_value());
      EXPECT_EQ(loose->output_digest, timed->output_digest);
      EXPECT_EQ(loose->fault_ledger_digest, timed->fault_ledger_digest);
      EXPECT_GT(loose->loose_syncs, 0u);
      EXPECT_EQ(timed->loose_syncs, 0u);
    }
  }
}

TEST(TimingModeDifferentialTest, LooseModeLowersDispatchCount) {
  // The speedup mechanism made observable: at the default quantum the
  // sec53 shared-bus point must take strictly fewer scheduler dispatches
  // loosely timed than timed, with identical functional results. The CI
  // perf-smoke step gates on the same pair via examples/timing_smoke.
  const auto timed = run_scenario("sec53_varicore_s1_shared");
  ScenarioOptions opt;
  opt.timing_mode = kern::TimingMode::kLoose;
  const auto loose = run_scenario("sec53_varicore_s1_shared", opt);
  ASSERT_TRUE(timed.has_value() && loose.has_value());
  EXPECT_LT(loose->dispatches, timed->dispatches);
  EXPECT_EQ(loose->output_digest, timed->output_digest);
}

TEST(TimingModeDifferentialTest, FaultLedgerSequenceMatchesAcrossModes) {
  // A rate-based timing-fault plan on the fetch path, run timed and loose:
  // the injector draws per transaction, so the ledger's event sequence
  // (kinds, sites, addresses, payloads) must be identical across modes —
  // only the timestamps may lag. run_case() additionally proves the loose
  // run functionally equivalent to the timed hardwired reference.
  FuzzCase base;
  base.n_accels = 3;
  base.n_candidates = 3;
  base.slots = 1;
  base.tech_index = 1;
  base.schedule = {0, 1, 2, 0, 1, 2};
  base.fault_rate_pct = 30;
  base.recovery = 1;  // retry/backoff
  ASSERT_TRUE(valid(base));
  const auto timed = run_case(base);
  ASSERT_TRUE(timed.ok) << timed.failure;
  ASSERT_GT(timed.fault_ledger_functional, 0u);

  for (const u32 quantum_ns : {100u, 10000u}) {
    SCOPED_TRACE("quantum_ns " + std::to_string(quantum_ns));
    FuzzCase fc = base;
    fc.timing_mode = 1;
    fc.quantum_ns = quantum_ns;
    ASSERT_TRUE(valid(fc));
    const auto loose = run_case(fc);
    ASSERT_TRUE(loose.ok) << loose.failure;
    EXPECT_EQ(loose.outputs, timed.outputs);
    EXPECT_EQ(loose.fault_ledger_functional, timed.fault_ledger_functional);
    EXPECT_GT(loose.loose_syncs, 0u);
  }
}

TEST(TimingModeDifferentialTest, PrefetchPoliciesPreserveOutputsLoose) {
  // The prefetch-policy differential, repeated loosely timed: every policy
  // x cache point must still match the timed reference outputs, and with
  // no fault plan installed no policy may log a ledger event in either
  // mode.
  FuzzCase base;
  base.n_accels = 3;
  base.n_candidates = 3;
  base.slots = 1;
  base.tech_index = 1;
  base.schedule = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  const auto reference = run_case(base);
  ASSERT_TRUE(reference.ok) << reference.failure;

  for (u32 policy = 0; policy <= 3; ++policy) {
    for (const u32 cache : {0u, 2u}) {
      SCOPED_TRACE("policy " + std::to_string(policy) + " cache " +
                   std::to_string(cache));
      FuzzCase fc = base;
      fc.prefetch_policy = policy;
      fc.cache_slots = cache;
      fc.timing_mode = 1;
      ASSERT_TRUE(valid(fc));
      const auto r = run_case(fc);
      ASSERT_TRUE(r.ok) << r.failure;
      EXPECT_EQ(r.outputs, reference.outputs);
      EXPECT_EQ(r.fault_ledger_functional, reference.fault_ledger_functional);
    }
  }
}

TEST(TimingModeDifferentialTest, DmiInvalidationRestoresFaultVisibility) {
  // DMI lifecycle against fault arming: a disarmed interposer forwards the
  // memory's grant (reads bypass it entirely); set_plan() with a live plan
  // must revoke every forwarded grant so the injector sees the very next
  // access; disarming re-grants lazily.
  kern::Simulation sim;
  sim.set_timing_mode(kern::TimingMode::kLoose);
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory ram(top, "ram", 0x100, 64);
  fault::SlaveFaultInterposer shim(top, "shim", ram, fault::FaultPlan{});
  b.bind_slave(shim);
  top.spawn_thread("t", [&] {
    std::vector<bus::word> data(16, 7);
    EXPECT_EQ(b.burst_write(0x100, data, 0), bus::BusStatus::kOk);
    std::vector<bus::word> back(16);
    EXPECT_EQ(b.burst_read(0x100, back, 0), bus::BusStatus::kOk);
    const u64 dmi_granted = b.stats().dmi_words;
    EXPECT_GT(dmi_granted, 0u);  // disarmed: the inner grant was forwarded
    EXPECT_EQ(shim.ledger().injected_count(), 0u);

    fault::FaultPlan plan;
    plan.seed = 1;
    fault::FaultRule rule;
    rule.rate = 1.0;  // hit every transaction
    rule.kind = fault::FaultKind::kDelay;
    rule.delay = kern::Time::ns(1);
    plan.rules.push_back(rule);
    shim.set_plan(std::move(plan));
    EXPECT_TRUE(shim.armed());
    EXPECT_EQ(b.burst_read(0x100, back, 0), bus::BusStatus::kOk);
    EXPECT_EQ(back, data);
    EXPECT_EQ(b.stats().dmi_words, dmi_granted);  // no DMI while armed
    EXPECT_EQ(shim.ledger().injected_count(), 16u);  // every word was seen

    shim.set_plan(fault::FaultPlan{});  // disarm: DMI engages again
    EXPECT_FALSE(shim.armed());
    EXPECT_EQ(b.burst_read(0x100, back, 0), bus::BusStatus::kOk);
    EXPECT_GT(b.stats().dmi_words, dmi_granted);
    EXPECT_EQ(shim.ledger().injected_count(), 16u);
  });
  sim.run();
}

TEST(FuzzCaseIoTest, TimingKnobsRoundTrip) {
  FuzzCase fc = make_case(7);
  fc.timing_mode = 1;
  fc.quantum_ns = 1000;
  ASSERT_TRUE(valid(fc));
  const auto back = parse_case(serialize(fc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fc);
  // Out-of-range / inconsistent knobs must not validate or parse.
  FuzzCase bad = fc;
  bad.timing_mode = 2;
  EXPECT_FALSE(valid(bad));
  EXPECT_FALSE(parse_case(serialize(bad)).has_value());
  bad = fc;
  bad.timing_mode = 0;  // a quantum without loose mode is meaningless
  EXPECT_FALSE(valid(bad));
  EXPECT_FALSE(parse_case(serialize(bad)).has_value());
}

TEST(FuzzCaseIoTest, PrefetchKnobsRoundTrip) {
  FuzzCase fc = make_case(7);
  fc.prefetch_policy = 3;
  fc.cache_slots = 4;
  ASSERT_TRUE(valid(fc));
  const auto back = parse_case(serialize(fc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, fc);
  // Out-of-range knobs are structurally invalid and must not parse.
  FuzzCase bad = fc;
  bad.prefetch_policy = 4;
  EXPECT_FALSE(valid(bad));
  EXPECT_FALSE(parse_case(serialize(bad)).has_value());
  bad = fc;
  bad.cache_slots = 5;
  EXPECT_FALSE(valid(bad));
  EXPECT_FALSE(parse_case(serialize(bad)).has_value());
}

// --- shrinker ---------------------------------------------------------------

TEST(ShrinkerTest, PassingCaseIsReturnedUnchanged) {
  const auto start = make_case(5);
  const auto res =
      shrink_case(start, [](const FuzzCase&) { return false; });
  EXPECT_EQ(res.minimal, start);
  EXPECT_EQ(res.accepted, 0u);
  EXPECT_EQ(res.oracle_calls, 1u);
}

TEST(ShrinkerTest, ShrinksToMinimalSwitchingCase) {
  // Oracle: "the transformed run performs >= 2 context switches". The
  // unique minimal valid shape is two schedule steps touching two distinct
  // contexts on a single slot — the shrinker must find exactly that.
  const auto oracle = [](const FuzzCase& fc) {
    const auto r = run_case(fc);
    return r.ok && r.context_switches >= 2;
  };
  const auto start = make_case(1);
  ASSERT_TRUE(oracle(start)) << "seed 1 no longer reaches 2 switches";

  const auto res = shrink_case(start, oracle);
  const auto& m = res.minimal;
  EXPECT_TRUE(valid(m));
  EXPECT_GT(res.accepted, 0u);
  ASSERT_EQ(m.schedule.size(), 2u);
  EXPECT_NE(m.schedule[0], m.schedule[1]);  // a repeat would hit, not switch
  EXPECT_EQ(m.n_accels, 2u);
  EXPECT_EQ(m.n_candidates, 2u);
  EXPECT_EQ(m.slots, 1u);
  EXPECT_EQ(m.tech_index, 0u);
  // Locally minimal: the shrunk case still fails, by definition of accept.
  EXPECT_TRUE(oracle(m));
}

// --- replay determinism -----------------------------------------------------

TEST(ReplayTest, ShrunkCaseReplaysDeterministicallyFromFile) {
  FuzzCase minimal;
  minimal.n_accels = 2;
  minimal.n_candidates = 2;
  minimal.slots = 1;
  minimal.tech_index = 0;
  minimal.schedule = {0, 1};
  ASSERT_TRUE(valid(minimal));

  const std::string path = ::testing::TempDir() + "/minimal.fuzzcase";
  ASSERT_TRUE(write_replay_file(path, minimal));
  const auto loaded = read_replay_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, minimal);

  const auto direct = run_case(minimal);
  const auto replayed1 = run_case(*loaded);
  const auto replayed2 = run_case(*loaded);
  ASSERT_TRUE(direct.ok) << direct.failure;
  EXPECT_EQ(digest_str(replayed1.digest), digest_str(direct.digest));
  EXPECT_EQ(digest_str(replayed2.digest), digest_str(direct.digest));
  EXPECT_EQ(replayed1.sim_time_ps, direct.sim_time_ps);
}

// --- build-mode marker ------------------------------------------------------

TEST(CheckedBuildTest, FlagMatchesCompileDefinition) {
#ifdef ADRIATIC_CHECKED
  EXPECT_TRUE(kCheckedBuild);
#else
  EXPECT_FALSE(kCheckedBuild);
#endif
}

}  // namespace
}  // namespace adriatic::conformance
