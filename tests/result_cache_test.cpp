// Digest-keyed result cache tests: store/lookup round trips, persistence
// across reopen, corruption and stale-schema entries degrading to misses
// (never to wrong results), torn tail writes, and the determinism contract —
// a cache-served JobStats must be byte-identical to a re-simulated one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/result_cache.hpp"
#include "kernel/kernel.hpp"
#include "kernel/time.hpp"
#include "util/random.hpp"

namespace adriatic::campaign {
namespace {

using kern::Time;

/// Unique temp path per test; removed on destruction.
class TempPath {
 public:
  explicit TempPath(const std::string& tag) {
    path_ = testing::TempDir() + "adriatic_result_cache_" + tag + ".rc";
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

JobStats finished_stats(const std::string& label, u64 digest) {
  JobStats s;
  s.label = label;
  s.done = true;
  s.wall_seconds = 0.25;
  s.sim_time = Time::ns(100);
  s.delta_count = 12;
  s.activations = 34;
  s.digest = digest;
  s.user_data = "col a\tcol b";
  return s;
}

TEST(ResultCacheTest, StoreThenLookupHitsAndUnknownSpecMisses) {
  TempPath tmp("hit");
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->lookup(spec_hash("a")).has_value());

  cache->store(spec_hash("a"), finished_stats("a", 0xfeed));
  ASSERT_EQ(cache->size(), 1u);
  const auto hit = cache->lookup(spec_hash("a"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->label, "a");
  EXPECT_EQ(hit->digest, 0xfeedu);
  EXPECT_EQ(hit->user_data, "col a\tcol b");
  EXPECT_TRUE(hit->done);
  EXPECT_FALSE(hit->from_cache);  // the caller flags served copies
  EXPECT_FALSE(cache->lookup(spec_hash("b")).has_value());
}

TEST(ResultCacheTest, OnlyCleanlyFinishedResultsAreStored) {
  TempPath tmp("filter");
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);

  JobStats unfinished;
  unfinished.label = "queued";
  cache->store(1, unfinished);

  JobStats failed = finished_stats("failed", 1);
  failed.failed = true;
  failed.error = "boom";
  cache->store(2, failed);

  JobStats quarantined = finished_stats("stuck", 2);
  quarantined.quarantined = true;
  quarantined.quarantine_reason = "timeout";
  cache->store(3, quarantined);

  JobStats served = finished_stats("served", 3);
  served.from_cache = true;  // a served copy must not re-store itself
  cache->store(4, served);

  EXPECT_EQ(cache->size(), 0u);
  EXPECT_FALSE(cache->lookup(1).has_value());
  EXPECT_FALSE(cache->lookup(2).has_value());
  EXPECT_FALSE(cache->lookup(3).has_value());
  EXPECT_FALSE(cache->lookup(4).has_value());
}

TEST(ResultCacheTest, ReopenedCacheServesPersistedEntriesLastWins) {
  TempPath tmp("reopen");
  {
    auto cache = ResultCache::open(tmp.str());
    ASSERT_NE(cache, nullptr);
    cache->store(spec_hash("a"), finished_stats("a", 1));
    cache->store(spec_hash("b"), finished_stats("b", 2));
    // Re-storing the same spec appends; the later entry wins on reload.
    cache->store(spec_hash("a"), finished_stats("a", 3));
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->size(), 2u);
  EXPECT_EQ(cache->dropped_lines(), 0u);
  const auto a = cache->lookup(spec_hash("a"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->digest, 3u);
  const auto b = cache->lookup(spec_hash("b"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->digest, 2u);
}

TEST(ResultCacheTest, CorruptEntryDegradesToAMiss) {
  TempPath tmp("corrupt");
  {
    auto cache = ResultCache::open(tmp.str());
    ASSERT_NE(cache, nullptr);
    cache->store(spec_hash("a"), finished_stats("a", 1));
    cache->store(spec_hash("b"), finished_stats("b", 2));
  }
  // Flip one byte inside spec a's checksummed region.
  std::string content;
  {
    std::ifstream in(tmp.str());
    std::getline(in, content, '\0');
  }
  const auto pos = content.find("digest=0000000000000001");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 22] = '9';
  {
    std::ofstream out(tmp.str(), std::ios::trunc);
    out << content;
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->dropped_lines(), 1u);
  EXPECT_FALSE(cache->lookup(spec_hash("a")).has_value());  // miss, not lies
  const auto b = cache->lookup(spec_hash("b"));
  ASSERT_TRUE(b.has_value());  // the intact sibling entry still serves
  EXPECT_EQ(b->digest, 2u);
}

TEST(ResultCacheTest, StaleEntryVersionIsDropped) {
  TempPath tmp("stale");
  {
    auto cache = ResultCache::open(tmp.str());
    ASSERT_NE(cache, nullptr);
    cache->store(spec_hash("a"), finished_stats("a", 1));
  }
  {
    // A future writer's v2 entry: checksum-valid but schema-unknown, so
    // this binary must skip it rather than misparse its payload.
    const std::string line = "E 00000000000000aa v2 label=zz done=1";
    std::ofstream out(tmp.str(), std::ios::app);
    out << line << checksum_suffix(line) << '\n';
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->dropped_lines(), 1u);
  EXPECT_EQ(cache->size(), 1u);
  EXPECT_FALSE(cache->lookup(0xaa).has_value());
  EXPECT_TRUE(cache->lookup(spec_hash("a")).has_value());
}

TEST(ResultCacheTest, TornTailWriteIsDroppedNotFatal) {
  TempPath tmp("torn");
  {
    auto cache = ResultCache::open(tmp.str());
    ASSERT_NE(cache, nullptr);
    cache->store(spec_hash("a"), finished_stats("a", 1));
  }
  {
    // SIGKILL mid-append: an entry cut off before its checksum.
    std::ofstream out(tmp.str(), std::ios::app);
    out << "E 00000000000000bb v1 label=half done=1";  // no cks, no newline
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->dropped_lines(), 1u);
  EXPECT_FALSE(cache->lookup(0xbb).has_value());
  EXPECT_TRUE(cache->lookup(spec_hash("a")).has_value());
}

TEST(ResultCacheTest, UnreadableHeaderResetsTheFile) {
  TempPath tmp("noheader");
  {
    std::ofstream out(tmp.str());
    out << "not a result cache\n";
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);  // a damaged cache is discarded, not trusted
  EXPECT_EQ(cache->size(), 0u);
  cache->store(7, finished_stats("fresh", 9));
  EXPECT_TRUE(cache->lookup(7).has_value());
}

// -- Determinism contract ----------------------------------------------------

/// One golden job: a seed-parameterised simulation whose JobStats capture
/// kernel counters, a fold of the observed trace, and a tool payload.
JobStats simulate_golden(u64 seed) {
  std::vector<JobStats> records;
  run_inline("golden" + std::to_string(seed), records,
             [seed](JobContext& ctx) {
               Xoshiro256 rng(seed);
               kern::Simulation sim;
               kern::Module top(sim, "top");
               kern::Signal<u32> sig(top, "sig");
               u64 fold = 1469598103934665603ull;
               kern::SpawnOptions opts;
               opts.sensitivity = {&sig.value_changed_event()};
               opts.dont_initialize = true;
               top.spawn_method("obs", [&] {
                 fold ^= sim.now().picoseconds() ^ (u64{sig.read()} << 32);
                 fold *= 1099511628211ull;
               }, opts);
               top.spawn_thread("producer", [&] {
                 for (int i = 0; i < 40; ++i) {
                   kern::wait(Time::ns(1 + rng.next_below(9)));
                   sig.write(static_cast<u32>(rng.next_below(1u << 30)));
                 }
               });
               sim.run();
               ctx.record(sim);
               ctx.record_digest(fold);
               ctx.record_user_data("fold\t" + std::to_string(fold));
             });
  return records.at(0);
}

TEST(ResultCacheTest, CachedStatsAreByteIdenticalToResimulated) {
  TempPath tmp("golden");
  const u64 seeds[] = {11, 42, 516};
  {
    auto cache = ResultCache::open(tmp.str());
    ASSERT_NE(cache, nullptr);
    for (const u64 seed : seeds)
      cache->store(spec_hash("golden", seed), simulate_golden(seed));
  }
  auto cache = ResultCache::open(tmp.str());
  ASSERT_NE(cache, nullptr);
  for (const u64 seed : seeds) {
    auto served = cache->lookup(spec_hash("golden", seed));
    ASSERT_TRUE(served.has_value()) << "seed " << seed;
    JobStats fresh = simulate_golden(seed);
    // Wall-clock time is the one legitimately nondeterministic field; every
    // other byte of the serialised record must match the re-simulation.
    served->wall_seconds = 0;
    fresh.wall_seconds = 0;
    EXPECT_EQ(encode_job_stats(*served), encode_job_stats(fresh))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace adriatic::campaign
