// Object-lifetime regressions, table-driven so every shape runs under the
// plain build, the sanitizer builds and the ADRIATIC_CHECKED build from one
// source of truth. Each shape destroys a kernel object inside the window
// where a lazily-removed scheduler-queue slot still names it; the kernel
// must purge the slot instead of dereferencing freed memory.
//
// Also: the tracer list must tolerate a tracer detaching (or attaching)
// from inside a sample callback — sample_tracers() nulls slots instead of
// erasing mid-walk.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/vcd.hpp"

namespace adriatic::kern {
namespace {

using namespace literals;

// --- table-driven destruction-window shapes --------------------------------

void delta_then_cancel_then_destroy() {
  // notify_delta() + cancel() leaves a stale delta-queue slot; destroying
  // the event in that window must purge it before the next delta dispatch.
  Simulation sim;
  auto ev = std::make_unique<Event>(sim, "ev");
  ev->notify_delta();
  ev->cancel();
  ev.reset();
  EXPECT_EQ(sim.run(), StopReason::kNoActivity);
}

void immediate_notify_overriding_delta() {
  // notify() fires immediately and retracts the queued delta notification
  // lazily; the event dies with the stale slot still outstanding.
  Simulation sim;
  Module top(sim, "top");
  auto ev = std::make_unique<Event>(sim, "ev");
  bool woke = false;
  top.spawn_thread("t", [&] {
    ev->notify_delta();
    ev->notify();
    ev.reset();
    wait(Time::ns(1));
    woke = true;
  });
  sim.run();
  EXPECT_TRUE(woke);
}

void local_event_of_finishing_thread() {
  // An Event local to a thread dies when the thread returns mid-simulation,
  // with its retracted delta notification still queued this delta round.
  Simulation sim;
  Module top(sim, "top");
  bool other_ran = false;
  top.spawn_thread("maker", [&] {
    Event local(sim, "local");
    local.notify_delta();
    local.cancel();
  });
  top.spawn_thread("other", [&] {
    wait(Time::ns(1));
    other_ran = true;
  });
  sim.run();
  EXPECT_TRUE(other_ran);
}

void event_queue_cancel_all_then_destroy() {
  // cancel_all() retracts the queue's in-flight delta notification lazily;
  // the EventQueue is destroyed with the stale slot still queued.
  Simulation sim;
  auto q = std::make_unique<EventQueue>(sim, "q");
  Module top(sim, "top");
  Event kick(sim, "kick");
  bool survived = false;
  top.spawn_thread("driver", [&] {
    q->notify(Time::zero());
    kick.notify_delta();
    wait(kick);
    q->cancel_all();
    q.reset();
    wait(Time::ns(1));
    survived = true;
  });
  sim.run();
  EXPECT_TRUE(survived);
}

struct LifetimeShape {
  const char* name;
  void (*run)();
};

constexpr LifetimeShape kShapes[] = {
    {"DeltaThenCancelThenDestroy", delta_then_cancel_then_destroy},
    {"ImmediateNotifyOverridingDelta", immediate_notify_overriding_delta},
    {"LocalEventOfFinishingThread", local_event_of_finishing_thread},
    {"EventQueueCancelAllThenDestroy", event_queue_cancel_all_then_destroy},
};

class KernelLifetime : public ::testing::TestWithParam<LifetimeShape> {};

TEST_P(KernelLifetime, SurvivesDestructionWindow) { GetParam().run(); }

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelLifetime, ::testing::ValuesIn(kShapes),
    [](const ::testing::TestParamInfo<LifetimeShape>& info) {
      return std::string(info.param.name);
    });

// --- tracer list mutation from inside a sample callback --------------------

/// A signal whose read() runs an arbitrary side effect — the hook through
/// which a tracer's sample callback can mutate the tracer list itself
/// (TraceFile::cycle samples by calling sig.read()).
class SideEffectSignal final : public SignalInIf<u32> {
 public:
  SideEffectSignal(Simulation& sim, std::function<void()> on_read)
      : ev_(sim, "side_effect_ev"), on_read_(std::move(on_read)) {}

  const u32& read() const override {
    if (on_read_) on_read_();
    return value_;
  }
  Event& value_changed_event() override { return ev_; }

 private:
  Event ev_;
  std::function<void()> on_read_;
  u32 value_ = 42;
};

TEST(TracerLifetime, DetachDuringSampleDoesNotSkipOrCrash) {
  // Regression: tracer `a`'s sample callback destroys tracer `b` (which
  // detaches from inside sample_tracers()'s walk). `c` must still be
  // sampled and the walk must not touch the destroyed tracer.
  Simulation sim;
  Module top(sim, "top");
  top.spawn_thread("t", [&] { wait(Time::ns(1)); });

  const std::string dir = ::testing::TempDir();
  auto b = std::make_unique<TraceFile>(sim, dir + "/detach_b.vcd");
  bool killed = false;
  SideEffectSignal killer(sim, [&] {
    if (!killed) {
      killed = true;
      b.reset();  // detaches b from inside a's cycle()
    }
  });
  SideEffectSignal quiet(sim, nullptr);

  TraceFile a(sim, dir + "/detach_a.vcd");
  a.trace(killer, "killer");
  b->trace(quiet, "quiet_b");
  TraceFile c(sim, dir + "/detach_c.vcd");
  c.trace(quiet, "quiet_c");

  sim.run();
  EXPECT_TRUE(killed);
  EXPECT_GE(a.samples_written(), 1u);
  EXPECT_GE(c.samples_written(), 1u);  // not skipped by b's removal
}

TEST(TracerLifetime, AttachDuringSampleDoesNotInvalidateWalk) {
  // A sample callback that attaches a brand-new tracer forces the tracer
  // vector to grow (and possibly reallocate) mid-walk.
  Simulation sim;
  Module top(sim, "top");
  top.spawn_thread("t", [&] {
    wait(Time::ns(1));
    wait(Time::ns(1));
  });

  const std::string dir = ::testing::TempDir();
  std::vector<std::unique_ptr<TraceFile>> spawned;
  SideEffectSignal spawner(sim, [&] {
    if (spawned.empty())
      spawned.push_back(
          std::make_unique<TraceFile>(sim, dir + "/attach_new.vcd"));
  });
  SideEffectSignal quiet(sim, nullptr);

  TraceFile a(sim, dir + "/attach_a.vcd");
  a.trace(spawner, "spawner");
  TraceFile b(sim, dir + "/attach_b.vcd");
  b.trace(quiet, "quiet");

  sim.run();
  ASSERT_EQ(spawned.size(), 1u);
  EXPECT_GE(a.samples_written(), 1u);
  EXPECT_GE(b.samples_written(), 1u);
}

}  // namespace
}  // namespace adriatic::kern
