// campaignctl: command-line client for campaignd (see docs/service.md).
//
//   campaignctl SOCK stats                  -- server counters snapshot
//   campaignctl SOCK drain                  -- block until no job in flight
//   campaignctl SOCK watch [N]              -- print the next N finished
//                                              results (default: forever)
//   campaignctl SOCK submit KIND LABEL [key=value ...]
//                                           -- submit one job, wait for its
//                                              result, print the stats tail
//
// submit computes the job's spec hash the same way the sweep tools do
// (service/jobs.hpp), so a submission dedups against campaignd's cache and
// against fault_sweep/dse_explorer --server traffic for the same point.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "campaign/journal.hpp"
#include "service/client.hpp"
#include "service/jobs.hpp"

using namespace adriatic;

namespace {

int usage() {
  std::cerr << "usage: campaignctl SOCKET stats\n"
               "       campaignctl SOCKET drain\n"
               "       campaignctl SOCKET watch [N]\n"
               "       campaignctl SOCKET submit KIND LABEL [key=value ...]\n";
  return 2;
}

/// Spec hash for a kind+label+params the way the matching sweep tool
/// computes it, so campaignctl submissions share cache entries with
/// fault_sweep / dse_explorer traffic.
u64 spec_for(const std::string& kind, const std::string& label,
             const service::ParamMap& params) {
  if (kind == "fault_point") {
    const auto spec = service::fault_point_from_params(label, params);
    if (spec.has_value()) return service::fault_point_spec_hash(*spec);
  } else if (kind == "dse_point" || kind == "dse_hardwired" ||
             kind == "dse_migration_probe") {
    bool loose = false;
    u32 quantum_ns = 0;
    const auto it = params.find("loose");
    if (it != params.end()) loose = it->second == "1";
    const auto qt = params.find("quantum_ns");
    if (qt != params.end())
      quantum_ns = static_cast<u32>(std::strtoul(qt->second.c_str(), nullptr,
                                                 10));
    return service::dse_spec_hash(label, loose, quantum_ns);
  } else if (kind == "golden") {
    const auto it = params.find("seed");
    if (it != params.end())
      return service::golden_spec_hash(
          std::strtoull(it->second.c_str(), nullptr, 10));
  }
  return campaign::spec_hash(label);
}

void print_result(const service::Response& resp) {
  std::cout << "result index=" << resp.index << " label="
            << resp.stats.label
            << (resp.stats.from_cache ? " [cached]" : "")
            << (resp.stats.failed ? " [failed]" : "")
            << (resp.stats.quarantined
                    ? " [quarantined:" + resp.stats.quarantine_reason + "]"
                    : "")
            << "\n  " << campaign::encode_job_stats(resp.stats) << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string sock = argv[1];
  const std::string cmd = argv[2];

  auto client = service::ServiceClient::connect(sock);
  if (client == nullptr) return 1;

  const auto fail = [&](const char* what) {
    std::cerr << "campaignctl: " << what;
    if (client->wire_error().has_value())
      std::cerr << " (" << service::error_code_name(client->wire_error()->code)
                << ")";
    std::cerr << '\n';
    return 1;
  };

  if (cmd == "stats") {
    if (argc != 3 || !client->stats(1)) return usage();
    const auto resp = client->next_response();
    if (!resp.has_value() || resp->type != service::ResponseType::kStats)
      return fail("no stats reply");
    for (const auto& [k, v] : resp->fields) std::cout << k << '=' << v << '\n';
    return 0;
  }

  if (cmd == "drain") {
    if (argc != 3 || !client->drain(1)) return usage();
    const auto resp = client->next_response();
    if (!resp.has_value() || resp->type != service::ResponseType::kDrained)
      return fail("no drained reply");
    std::cout << "drained\n";
    return 0;
  }

  if (cmd == "watch") {
    if (argc > 4) return usage();
    long remaining = -1;  // forever
    if (argc == 4) remaining = std::strtol(argv[3], nullptr, 10);
    if (!client->watch(1)) return fail("connection lost");
    while (remaining != 0) {
      const auto resp = client->next_response();
      if (!resp.has_value()) {
        if (client->wire_error().has_value()) return fail("bad frame");
        return 0;  // server closed (shutdown): a clean end of the stream
      }
      if (resp->type != service::ResponseType::kResult) continue;
      print_result(*resp);
      if (remaining > 0) --remaining;
    }
    return 0;
  }

  if (cmd == "submit") {
    if (argc < 5) return usage();
    const std::string kind = argv[3];
    const std::string label = argv[4];
    service::ParamMap params;
    for (int i = 5; i < argc; ++i) {
      const std::string tok = argv[i];
      const auto eq = tok.find('=');
      if (eq == std::string::npos || eq == 0) return usage();
      params[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
    const u64 spec = spec_for(kind, label, params);
    if (!client->submit(1, spec, kind, label, params))
      return fail("connection lost");
    for (;;) {
      const auto resp = client->next_response();
      if (!resp.has_value()) return fail("connection lost before the result");
      if (resp->type == service::ResponseType::kError) {
        std::cerr << "campaignctl: server error '"
                  << service::error_code_name(resp->code) << "': "
                  << resp->detail << '\n';
        return 1;
      }
      if (resp->type == service::ResponseType::kOk) {
        std::cout << "accepted index=" << resp->index
                  << (resp->cached ? " [cached]" : "") << '\n';
        continue;
      }
      if (resp->type == service::ResponseType::kResult) {
        print_result(*resp);
        return resp->stats.done && !resp->stats.failed ? 0 : 1;
      }
    }
  }

  return usage();
}
