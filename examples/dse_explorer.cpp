// Design-space explorer: sweeps reconfigurable technology x slot count x
// memory organisation for the WLAN-style three-kernel application, collects
// (latency, area, reconfig energy) for every point, and prints the Pareto
// front — the "true design space exploration at the system level" the paper
// positions the methodology for.
//
// Every design point is an independent simulation, so the sweep runs through
// the campaign engine: one Simulation per worker thread, results printed in
// submission order (output is byte-identical for any thread count).
//
// Build & run:  ./build/examples/dse_explorer [--serial] [--jobs N]
//                                             [--report FILE.json]
#include <cstring>
#include <iostream>
#include <string>

#include "accel/accel_lib.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "dse/pareto.hpp"
#include "estimate/area.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr int kFrames = 4;

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_app(bool dedicated_cfg_link) {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  if (!dedicated_cfg_link) cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  if (dedicated_cfg_link) {
    netlist::DirectLinkDecl link;
    link.word_time = 10_ns;
    link.slave = "cfg_mem";
    d.add("cfg_link", link);
  }

  const std::pair<const char*, accel::KernelSpec> kernels[] = {
      {"fir", accel::make_fir_spec(accel::fir_lowpass_taps(24))},
      {"fft", accel::make_fft_spec(64)},
      {"aes", accel::make_aes_spec(accel::AesKey{1, 2, 3})},
  };
  bus::addr_t base = 0x100;
  for (const auto& [name, spec] : kernels) {
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = spec;
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add(name, acc);
    base += 0x100;
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(11);
    for (int f = 0; f < kFrames; ++f) {
      std::vector<bus::word> data(64);
      for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 4095));
      c.burst_write(0x1000, data);
      run_accelerator(c, 0x100, 0x1000, 0x2000, 64);  // fir
      run_accelerator(c, 0x200, 0x2000, 0x3000, 64);  // fft
      run_accelerator(c, 0x300, 0x3000, 0x4000, 64);  // aes
      c.compute(300);
    }
  };
  d.add("cpu", cpu);
  return d;
}

struct Config {
  std::string label;
  drcf::ReconfigTechnology tech;
  u32 slots;
  bool dedicated_link;
};

/// One design point == one job: builds, transforms, simulates and evaluates
/// a configuration on whichever worker thread picks it up.
struct SweepOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::string> row;  ///< Table cells, print-ready.
  dse::DesignPoint point;
};

SweepOutcome run_config(const Config& cfg,
                        const std::vector<std::string>& candidates,
                        const std::vector<u64>& kernel_gates,
                        campaign::JobContext* ctx) {
  SweepOutcome out;
  auto d = make_app(cfg.dedicated_link);
  transform::TransformOptions opt;
  opt.drcf_config.technology = cfg.tech;
  opt.drcf_config.slots = cfg.slots;
  opt.config_memory = "cfg_mem";
  if (cfg.dedicated_link) opt.config_bus = "cfg_link";
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  if (!report.ok) {
    out.error = "transform failed";
    return out;
  }
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  if (ctx != nullptr) ctx->record(sim);
  if (!e.get_processor("cpu").finished()) {
    out.error = "did not finish";
    return out;
  }
  const auto& fabric = e.get_drcf("drcf1");
  const auto& fs = fabric.stats();
  if (ctx != nullptr) ctx->record_faults(fs.fetch_errors, fabric.fault_ledger());
  const auto area = estimate::drcf_area(kernel_gates, cfg.tech, cfg.slots);
  const double time_us = sim.now().to_us();
  const double energy_uj = fs.reconfig_energy_j * 1e6;
  out.row = {cfg.label, Table::num(time_us, 1),
             Table::integer(static_cast<long long>(fs.switches)),
             Table::integer(static_cast<long long>(fs.config_words_fetched)),
             Table::integer(
                 static_cast<long long>(area.total_gate_equivalents())),
             Table::num(energy_uj, 2)};
  // Fourth objective: inflexibility (0 = field-upgradable fabric, 1 =
  // frozen silicon) — the axis that motivates reconfigurable hardware in
  // the first place (paper Fig. 2).
  out.point = {cfg.label,
               {time_us, static_cast<double>(area.total_gate_equivalents()),
                energy_uj, 0.0}};
  out.ok = true;
  return out;
}

/// The reference architecture (everything hardwired) as its own job.
SweepOutcome run_hardwired(u64 hw_gates, campaign::JobContext* ctx) {
  SweepOutcome out;
  auto d = make_app(false);
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  if (ctx != nullptr) ctx->record(sim);
  out.row = {Table::num(sim.now().to_us(), 1)};
  out.point = {"hardwired",
               {sim.now().to_us(), static_cast<double>(hw_gates), 0.0, 1.0}};
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  usize jobs = 0;  // 0 = default_thread_count()
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = static_cast<usize>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') {
        std::cerr << "dse_explorer: --jobs expects a number, got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::cerr << "usage: dse_explorer [--serial] [--jobs N] "
                   "[--report FILE.json]\n";
      return 2;
    }
  }

  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const std::vector<u64> kernel_gates{
      accel::make_fir_spec(accel::fir_lowpass_taps(24)).gate_count,
      accel::make_fft_spec(64).gate_count,
      accel::make_aes_spec(accel::AesKey{1, 2, 3}).gate_count};

  std::vector<Config> configs;
  for (const auto& tech : {drcf::virtex2pro_like(), drcf::varicore_like(),
                           drcf::morphosys_like()}) {
    for (const u32 slots : {1u, 2u}) {
      for (const bool link : {false, true}) {
        configs.push_back({tech.name + "/s" + std::to_string(slots) +
                               (link ? "/link" : "/shared"),
                           tech, slots, link});
      }
    }
  }
  const u64 hw_gates = estimate::hardwired_gates(kernel_gates);

  // Run every design point; `outcomes` ends up in submission order either
  // way, so all downstream output is byte-identical between modes, and both
  // modes record the JobStats that --report serialises.
  std::vector<SweepOutcome> outcomes;
  std::vector<campaign::JobStats> job_stats;
  usize threads_used = 1;
  if (serial) {
    for (const auto& cfg : configs)
      outcomes.push_back(campaign::run_inline(
          cfg.label, job_stats, [&](campaign::JobContext& ctx) {
            return run_config(cfg, candidates, kernel_gates, &ctx);
          }));
    outcomes.push_back(
        campaign::run_inline("hardwired", job_stats,
                             [&](campaign::JobContext& ctx) {
                               return run_hardwired(hw_gates, &ctx);
                             }));
  } else {
    campaign::CampaignRunner runner(
        jobs != 0 ? jobs : campaign::default_thread_count());
    threads_used = runner.thread_count();
    std::vector<std::future<SweepOutcome>> futures;
    for (const auto& cfg : configs) {
      futures.push_back(
          runner.submit(cfg.label, [&, cfg](campaign::JobContext& ctx) {
            return run_config(cfg, candidates, kernel_gates, &ctx);
          }));
    }
    futures.push_back(
        runner.submit("hardwired", [&](campaign::JobContext& ctx) {
          return run_hardwired(hw_gates, &ctx);
        }));
    for (auto& f : futures) outcomes.push_back(f.get());
    // A future resolves before its worker commits the job's record, so
    // wait_idle() is still required for a fully-populated stats() view.
    runner.wait_idle();
    job_stats = runner.stats();
  }

  Table t("DSE sweep: technology x slots x config-memory organisation (" +
          std::to_string(kFrames) + " frames)");
  t.header({"configuration", "time [us]", "switches", "cfg words",
            "area [gate-eq]", "reconf energy [uJ]"});
  std::vector<dse::DesignPoint> points;
  for (usize i = 0; i < configs.size(); ++i) {
    const auto& out = outcomes[i];
    if (!out.ok) {
      std::cerr << configs[i].label << ": " << out.error << '\n';
      continue;
    }
    t.row(out.row);
    points.push_back(out.point);
  }
  t.print(std::cout);

  const auto& hw = outcomes.back();
  std::cout << "\nhardwired reference: " << hw.row[0] << " us, " << hw_gates
            << " gates, 0 uJ reconfig\n";
  points.push_back(hw.point);

  const auto front = dse::pareto_front(points);
  std::cout
      << "\nPareto-optimal configurations (time, area, energy, "
         "inflexibility):\n";
  for (const usize idx : front)
    std::cout << "  * " << points[idx].label << '\n';

  if (!report_path.empty())
    campaign::write_report_file(report_path, "dse_explorer", threads_used,
                                job_stats);
  return 0;
}
