// Design-space explorer: sweeps reconfigurable technology x slot count x
// memory organisation for the WLAN-style three-kernel application, collects
// (latency, area, reconfig energy) for every point, and prints the Pareto
// front — the "true design space exploration at the system level" the paper
// positions the methodology for.
//
// Build & run:  ./build/examples/dse_explorer
#include <iostream>

#include "accel/accel_lib.hpp"
#include "dse/pareto.hpp"
#include "estimate/area.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr int kFrames = 4;

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_app(bool dedicated_cfg_link) {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  if (!dedicated_cfg_link) cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  if (dedicated_cfg_link) {
    netlist::DirectLinkDecl link;
    link.word_time = 10_ns;
    link.slave = "cfg_mem";
    d.add("cfg_link", link);
  }

  const std::pair<const char*, accel::KernelSpec> kernels[] = {
      {"fir", accel::make_fir_spec(accel::fir_lowpass_taps(24))},
      {"fft", accel::make_fft_spec(64)},
      {"aes", accel::make_aes_spec(accel::AesKey{1, 2, 3})},
  };
  bus::addr_t base = 0x100;
  for (const auto& [name, spec] : kernels) {
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = spec;
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add(name, acc);
    base += 0x100;
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(11);
    for (int f = 0; f < kFrames; ++f) {
      std::vector<bus::word> data(64);
      for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 4095));
      c.burst_write(0x1000, data);
      run_accelerator(c, 0x100, 0x1000, 0x2000, 64);  // fir
      run_accelerator(c, 0x200, 0x2000, 0x3000, 64);  // fft
      run_accelerator(c, 0x300, 0x3000, 0x4000, 64);  // aes
      c.compute(300);
    }
  };
  d.add("cpu", cpu);
  return d;
}

}  // namespace

int main() {
  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const std::vector<u64> kernel_gates{
      accel::make_fir_spec(accel::fir_lowpass_taps(24)).gate_count,
      accel::make_fft_spec(64).gate_count,
      accel::make_aes_spec(accel::AesKey{1, 2, 3}).gate_count};

  struct Config {
    std::string label;
    drcf::ReconfigTechnology tech;
    u32 slots;
    bool dedicated_link;
  };
  std::vector<Config> configs;
  for (const auto& tech : {drcf::virtex2pro_like(), drcf::varicore_like(),
                           drcf::morphosys_like()}) {
    for (const u32 slots : {1u, 2u}) {
      for (const bool link : {false, true}) {
        configs.push_back({tech.name + "/s" + std::to_string(slots) +
                               (link ? "/link" : "/shared"),
                           tech, slots, link});
      }
    }
  }

  Table t("DSE sweep: technology x slots x config-memory organisation (" +
          std::to_string(kFrames) + " frames)");
  t.header({"configuration", "time [us]", "switches", "cfg words",
            "area [gate-eq]", "reconf energy [uJ]"});

  std::vector<dse::DesignPoint> points;
  for (const auto& cfg : configs) {
    auto d = make_app(cfg.dedicated_link);
    transform::TransformOptions opt;
    opt.drcf_config.technology = cfg.tech;
    opt.drcf_config.slots = cfg.slots;
    opt.config_memory = "cfg_mem";
    if (cfg.dedicated_link) opt.config_bus = "cfg_link";
    const auto report = transform::transform_to_drcf(d, candidates, opt);
    if (!report.ok) {
      std::cerr << cfg.label << ": transform failed\n";
      continue;
    }
    kern::Simulation sim;
    netlist::Elaborated e(sim, d);
    sim.run();
    if (!e.get_processor("cpu").finished()) {
      std::cerr << cfg.label << ": did not finish\n";
      continue;
    }
    const auto& fs = e.get_drcf("drcf1").stats();
    const auto area = estimate::drcf_area(kernel_gates, cfg.tech, cfg.slots);
    const double time_us = sim.now().to_us();
    const double energy_uj = fs.reconfig_energy_j * 1e6;
    t.row({cfg.label, Table::num(time_us, 1),
           Table::integer(static_cast<long long>(fs.switches)),
           Table::integer(static_cast<long long>(fs.config_words_fetched)),
           Table::integer(
               static_cast<long long>(area.total_gate_equivalents())),
           Table::num(energy_uj, 2)});
    // Fourth objective: inflexibility (0 = field-upgradable fabric, 1 =
    // frozen silicon) — the axis that motivates reconfigurable hardware in
    // the first place (paper Fig. 2).
    points.push_back(
        {cfg.label,
         {time_us, static_cast<double>(area.total_gate_equivalents()),
          energy_uj, 0.0}});
  }
  t.print(std::cout);

  // Reference architecture: everything hardwired.
  const u64 hw_gates = estimate::hardwired_gates(kernel_gates);
  {
    auto d = make_app(false);
    kern::Simulation sim;
    netlist::Elaborated e(sim, d);
    sim.run();
    std::cout << "\nhardwired reference: " << Table::num(sim.now().to_us(), 1)
              << " us, " << hw_gates << " gates, 0 uJ reconfig\n";
    points.push_back(
        {"hardwired",
         {sim.now().to_us(), static_cast<double>(hw_gates), 0.0, 1.0}});
  }

  const auto front = dse::pareto_front(points);
  std::cout
      << "\nPareto-optimal configurations (time, area, energy, "
         "inflexibility):\n";
  for (const usize idx : front)
    std::cout << "  * " << points[idx].label << '\n';
  return 0;
}
