// Design-space explorer: sweeps reconfigurable technology x slot count x
// memory organisation x context-scheduler policy for the WLAN-style
// three-kernel application, collects (latency, area, reconfig energy,
// inflexibility, fetched config bytes) for every point, and prints the
// Pareto front — the "true design space exploration at the system level"
// the paper positions the methodology for.
//
// Every design point is an independent simulation, so the sweep runs through
// the campaign engine: one Simulation per worker thread, results printed in
// submission order (output is byte-identical for any thread count).
//
// Build & run:  ./build/examples/dse_explorer [--serial] [--jobs N]
//                                             [--report FILE.json]
//                                             [--journal FILE.wal |
//                                              --resume FILE.wal]
//                                             [--processes] [--cache FILE]
//
// --journal write-ahead-logs every job so a killed sweep restarts with
// --resume, re-running only the design points the journal does not show as
// done. SIGINT/SIGTERM stop the sweep gracefully: running simulations get
// request_stop() and --report still emits a valid partial report (exit 130);
// the Pareto front is only printed when every point completed.
//
// --processes forks one child per design point (a crashing point is
// quarantined with a structured reason instead of killing the sweep);
// --cache serves points whose spec hash already has a cached result without
// re-simulating. The spec hash folds the timing mode and quantum, so
// --loose/--quantum variants of a grid point never alias in the journal or
// the cache.
//
// --server SOCKET runs the sweep as a thin client of campaignd
// (docs/service.md): the same design points are submitted over the socket
// as dse_point/dse_hardwired/dse_migration_probe jobs, the daemon schedules
// them on its own pool (consulting its result cache first) and streams back
// per-job results; table, Pareto front and --report match a local run
// modulo timing fields.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/result_cache.hpp"
#include "dse/pareto.hpp"
#include "service/client.hpp"
#include "service/jobs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace adriatic;

namespace {

constexpr int kFrames = 4;  // frames the synthetic app processes (jobs.cpp)

/// One design point; the simulation body lives in service/jobs.cpp
/// (run_dse_point and friends), shared verbatim with campaignd so a
/// --server run executes the same code in another process.
using Config = service::DsePointSpec;
using SweepOutcome = service::DseOutcome;

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  bool loose = false;
  bool processes = false;
  u32 quantum_ns = 0;
  usize jobs = 0;  // 0 = default_thread_count()
  std::string report_path;
  std::string journal_path;
  std::string resume_path;
  std::string cache_path;
  std::string server_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--loose") == 0) {
      loose = true;
    } else if (std::strcmp(argv[i], "--quantum") == 0 && i + 1 < argc) {
      char* end = nullptr;
      quantum_ns = static_cast<u32>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || quantum_ns == 0) {
        std::cerr << "dse_explorer: --quantum expects a nonzero ns count, "
                     "got '" << argv[i] << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = static_cast<usize>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') {
        std::cerr << "dse_explorer: --jobs expects a number, got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      processes = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_path = argv[++i];
    } else {
      std::cerr << "usage: dse_explorer [--serial] [--jobs N] "
                   "[--loose] [--quantum NS] "
                   "[--report FILE.json] [--journal FILE.wal | "
                   "--resume FILE.wal] [--processes] [--cache FILE] "
                   "[--server SOCKET]\n";
      return 2;
    }
  }
  if (!journal_path.empty() && !resume_path.empty()) {
    std::cerr << "dse_explorer: --journal and --resume are exclusive\n";
    return 2;
  }
  if (serial && (!journal_path.empty() || !resume_path.empty())) {
    std::cerr << "dse_explorer: journaling requires the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if (serial && (processes || !cache_path.empty())) {
    std::cerr << "dse_explorer: --processes/--cache require the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if (quantum_ns != 0 && !loose) {
    std::cerr << "dse_explorer: --quantum only applies with --loose\n";
    return 2;
  }
  if (!server_path.empty() &&
      (serial || processes || !journal_path.empty() || !resume_path.empty() ||
       !cache_path.empty())) {
    std::cerr << "dse_explorer: --server delegates execution to campaignd; "
                 "drop the local runner flags\n";
    return 2;
  }

  std::vector<Config> configs;
  for (u32 tech = 0; tech < 3; ++tech) {
    for (const u32 slots : {1u, 2u}) {
      for (const bool link : {false, true}) {
        for (const bool prefetch : {false, true}) {
          Config c;
          c.label = std::string(service::dse_tech_name(tech)) + "/s" +
                    std::to_string(slots) + (link ? "/link" : "/shared") +
                    (prefetch ? "/hybrid" : "/demand");
          c.tech = tech;
          c.slots = slots;
          c.dedicated_link = link;
          c.prefetch = prefetch;
          c.loose = loose;
          c.quantum_ns = quantum_ns;
          configs.push_back(c);
        }
      }
    }
  }

  // The sweep's job list: every design point, the hardwired reference, and
  // the task-migration probe.
  const usize n_jobs = configs.size() + 2;
  const usize hw_index = configs.size();
  const usize probe_index = configs.size() + 1;
  const auto job_label = [&](usize i) {
    if (i < configs.size()) return configs[i].label;
    return std::string(i == hw_index ? "hardwired" : "migration_probe");
  };
  // Spec hash per job: folds the timing axis (mode + quantum) on top of the
  // label, so --loose/--quantum variants of the same grid point never alias
  // in the journal or the result cache (see the ResultCache reuse caveat).
  const auto point_spec = [&](usize i) {
    return service::dse_spec_hash(job_label(i), loose, quantum_ns);
  };

  // Journal / resume setup; --resume refuses a journal whose planned job
  // set does not match this sweep.
  std::unique_ptr<campaign::CampaignJournal> journal;
  std::map<usize, campaign::JobStats> restored;
  std::vector<bool> rerun(n_jobs, true);
  if (!resume_path.empty()) {
    const auto state = campaign::read_journal(resume_path);
    if (!state.has_value()) {
      std::cerr << "dse_explorer: cannot read journal '" << resume_path
                << "'\n";
      return 2;
    }
    if (state->campaign != "dse_explorer") {
      std::cerr << "dse_explorer: journal belongs to campaign '"
                << state->campaign << "', refusing to resume\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i) {
      const auto it = state->planned.find(i);
      if (it == state->planned.end() ||
          it->second.spec != point_spec(i)) {
        std::cerr << "dse_explorer: journal job " << i
                  << " does not match this sweep, refusing to resume\n";
        return 2;
      }
    }
    if (state->torn_lines > 0)
      std::cerr << "dse_explorer: dropped " << state->torn_lines
                << " torn journal line(s) (crash mid-append)\n";
    for (const auto& [idx, stats] : state->completed) {
      if (idx >= n_jobs) continue;
      restored.emplace(idx, stats);
      rerun[idx] = false;
    }
    journal = campaign::CampaignJournal::append_to(resume_path);
    if (journal == nullptr) {
      std::cerr << "dse_explorer: cannot append to journal '" << resume_path
                << "'\n";
      return 2;
    }
  } else if (!journal_path.empty()) {
    journal = campaign::CampaignJournal::create(journal_path, "dse_explorer");
    if (journal == nullptr) {
      std::cerr << "dse_explorer: cannot create journal '" << journal_path
                << "'\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i)
      journal->record_planned(i, point_spec(i), job_label(i));
  }

  // Digest-keyed cross-run cache: a planned job whose spec hash already has
  // a cleanly finished entry is served verbatim instead of re-simulated.
  std::unique_ptr<campaign::ResultCache> cache;
  std::map<usize, campaign::JobStats> cached_results;
  if (!cache_path.empty()) {
    cache = campaign::ResultCache::open(cache_path);
    if (cache == nullptr) {
      std::cerr << "dse_explorer: cannot open cache '" << cache_path << "'\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i) {
      if (!rerun[i]) continue;
      auto hit = cache->lookup(point_spec(i));
      if (!hit.has_value()) continue;
      hit->index = i;
      hit->label = job_label(i);
      hit->from_cache = true;
      cached_results.emplace(i, std::move(*hit));
      rerun[i] = false;
      if (journal != nullptr) journal->record_cache_hit(point_spec(i));
    }
  }

  // Run every design point; `outcomes` ends up in submission order either
  // way, so all downstream output is byte-identical between modes, and both
  // modes record the JobStats that --report serialises.
  std::vector<SweepOutcome> outcomes(n_jobs);
  std::vector<campaign::JobStats> job_stats;
  campaign::ServiceTotals service_totals;
  usize threads_used = 1;
  bool interrupted = false;
  if (!server_path.empty()) {
    // Thin-client mode: ship every job spec to campaignd, stream RESULT
    // frames back, and rebuild the print-ready outcomes from the stats'
    // packed user_data — the same decode path process-mode children and
    // cache hits already use.
    std::vector<service::ServiceJob> sjobs;
    for (usize i = 0; i < configs.size(); ++i)
      sjobs.push_back({i, point_spec(i), "dse_point", configs[i].label,
                       service::dse_point_params(configs[i])});
    service::ParamMap timing_params;
    timing_params["loose"] = loose ? "1" : "0";
    timing_params["quantum_ns"] = std::to_string(quantum_ns);
    sjobs.push_back({hw_index, point_spec(hw_index), "dse_hardwired",
                     "hardwired", timing_params});
    sjobs.push_back({probe_index, point_spec(probe_index),
                     "dse_migration_probe", "migration_probe", timing_params});
    const auto run = service::run_jobs_over_service(server_path, sjobs);
    if (!run.ok && run.stats.empty()) {
      std::cerr << "dse_explorer: " << run.error << '\n';
      return 2;
    }
    if (!run.error.empty())
      std::cerr << "dse_explorer: " << run.error << '\n';
    job_stats.resize(n_jobs);
    for (usize i = 0; i < n_jobs; ++i) {
      job_stats[i].index = i;
      job_stats[i].label = job_label(i);
    }
    for (const auto& [idx, s] : run.stats)
      if (idx < n_jobs) job_stats[idx] = s;
    for (usize i = 0; i < n_jobs; ++i)
      outcomes[i] = service::unpack_dse_outcome(job_stats[i]);
    service_totals = run.totals;
    threads_used = 0;  // the daemon's pool, not ours
    interrupted = run.interrupted;
    if (run.totals.dedup_hits > 0)
      std::cout << run.totals.dedup_hits
                << " job(s) served from the service cache (not "
                   "re-simulated)\n";
  } else if (serial) {
    for (usize i = 0; i < configs.size(); ++i)
      outcomes[i] = campaign::run_inline(
          configs[i].label, job_stats, [&](campaign::JobContext& ctx) {
            return service::run_dse_point(configs[i], &ctx);
          });
    outcomes[hw_index] =
        campaign::run_inline("hardwired", job_stats,
                             [&](campaign::JobContext& ctx) {
                               return service::run_dse_hardwired(
                                   loose, quantum_ns, &ctx);
                             });
    outcomes[probe_index] =
        campaign::run_inline("migration_probe", job_stats,
                             [&](campaign::JobContext& ctx) {
                               return service::run_dse_migration_probe(
                                   loose, quantum_ns, &ctx);
                             });
  } else {
    campaign::CampaignRunner runner(
        jobs != 0 ? jobs : campaign::default_thread_count(),
        processes ? campaign::ExecutionMode::kProcesses
                  : campaign::ExecutionMode::kThreads);
    if (processes && runner.mode() != campaign::ExecutionMode::kProcesses)
      std::cerr << "dse_explorer: fork unavailable, degrading to thread "
                   "workers\n";
    threads_used = runner.thread_count();
    // SIGINT/SIGTERM wind the sweep down gracefully: running simulations
    // are stopped via their guards, pending jobs quarantine as
    // "interrupted", and the partial report stays valid.
    campaign::install_stop_signal_handlers();
    runner.enable_signal_stop();
    if (journal != nullptr) runner.set_journal(journal.get());
    std::vector<std::pair<usize, std::future<SweepOutcome>>> futures;
    for (usize i = 0; i < configs.size(); ++i) {
      if (!rerun[i]) continue;
      campaign::JobOptions o;
      o.stats_index = i;  // resumed jobs keep their original indices
      o.spec = point_spec(i);
      o.heartbeat_timeout_seconds = 10.0;
      const Config cfg = configs[i];
      futures.emplace_back(
          i, runner.submit(cfg.label, o, [cfg](campaign::JobContext& ctx) {
            return service::run_dse_point(cfg, &ctx);
          }));
    }
    if (rerun[hw_index]) {
      campaign::JobOptions o;
      o.stats_index = hw_index;
      o.spec = point_spec(hw_index);
      o.heartbeat_timeout_seconds = 10.0;
      futures.emplace_back(hw_index,
                           runner.submit("hardwired", o,
                                         [&](campaign::JobContext& ctx) {
                                           return service::run_dse_hardwired(
                                               loose, quantum_ns, &ctx);
                                         }));
    }
    if (rerun[probe_index]) {
      campaign::JobOptions o;
      o.stats_index = probe_index;
      o.spec = point_spec(probe_index);
      o.heartbeat_timeout_seconds = 10.0;
      futures.emplace_back(
          probe_index,
          runner.submit("migration_probe", o, [&](campaign::JobContext& ctx) {
            return service::run_dse_migration_probe(loose, quantum_ns, &ctx);
          }));
    }
    for (auto& [i, f] : futures) {
      try {
        outcomes[i] = f.get();
      } catch (const std::exception& e) {
        outcomes[i].error = e.what();
      }
    }
    // A future resolves before its worker commits the job's record, so
    // wait_idle() is still required for a fully-populated stats() view.
    runner.wait_idle();
    if (journal != nullptr) journal->flush();
    interrupted = campaign::signal_stop_requested();

    // Merge: placeholders for every job, journal-restored records under
    // them, cache-served results beside them, fresh records (keyed by their
    // original indices) on top.
    job_stats.resize(n_jobs);
    for (usize i = 0; i < n_jobs; ++i) {
      job_stats[i].index = i;
      job_stats[i].label = job_label(i);
    }
    for (const auto& [idx, stats] : restored) job_stats[idx] = stats;
    for (const auto& [idx, stats] : cached_results) job_stats[idx] = stats;
    for (const auto& rec : runner.stats())
      if (rec.index < job_stats.size()) job_stats[rec.index] = rec;
    // Feed the cache with every cleanly finished fresh result (store()
    // itself ignores failed/quarantined/cache-served stats).
    if (cache != nullptr)
      for (usize i = 0; i < n_jobs; ++i)
        cache->store(point_spec(i), job_stats[i]);
    // Rebuild print-ready outcomes for jobs that did not run in this
    // address space: process-mode children, cache hits and journal
    // restores all carry their SweepOutcome packed in user_data.
    for (usize i = 0; i < n_jobs; ++i)
      if (!outcomes[i].ok)
        outcomes[i] = service::unpack_dse_outcome(job_stats[i]);
  }

  Table t("DSE sweep: technology x slots x config-memory x scheduler policy (" +
          std::to_string(kFrames) + " frames)");
  t.header({"configuration", "time [us]", "switches", "cfg words",
            "hidden [us]", "hide %", "area [gate-eq]", "reconf energy [uJ]"});
  std::vector<dse::DesignPoint> points;
  usize missing = 0;
  for (usize i = 0; i < configs.size(); ++i) {
    const auto& out = outcomes[i];
    if (!out.ok) {
      if (restored.count(i) != 0) {
        ++missing;  // finished in a previous run; only its stats survive
      } else {
        std::cerr << configs[i].label << ": "
                  << (out.error.empty() ? "interrupted" : out.error) << '\n';
      }
      continue;
    }
    t.row(out.row);
    points.push_back(out.point);
  }
  t.print(std::cout);
  if (missing > 0)
    std::cout << missing
              << " design point(s) restored from the journal (metrics in "
                 "--report; not re-run)\n";
  if (!cached_results.empty())
    std::cout << cached_results.size()
              << " job(s) served from the result cache (not re-simulated)\n";

  const auto& hw = outcomes[hw_index];
  if (hw.ok) {
    std::cout << "\nhardwired reference: " << hw.row[0] << " us, "
              << (hw.point.objectives.size() > 1
                      ? static_cast<u64>(hw.point.objectives[1])
                      : 0)
              << " gates, 0 uJ reconfig\n";
    points.push_back(hw.point);
  }

  const auto& probe = outcomes[probe_index];
  if (probe.ok) {
    std::cout << "migration probe: " << probe.row[0] << " migration(s), "
              << probe.row[1] << " state words over the bus, " << probe.row[2]
              << " transfer fault(s) recovered\n";
  } else if (restored.count(probe_index) == 0) {
    std::cerr << "migration_probe: "
              << (probe.error.empty() ? "interrupted" : probe.error) << '\n';
  }

  // The Pareto front is only meaningful over the complete design space
  // (every design point plus the hardwired reference; the migration probe
  // contributes no point): skip it when points are missing (interrupted or
  // journal-restored runs).
  if (points.size() == configs.size() + 1) {
    const auto front = dse::pareto_front(points);
    std::cout
        << "\nPareto-optimal configurations (time, area, energy, "
           "inflexibility, cfg bytes):\n";
    for (const usize idx : front)
      std::cout << "  * " << points[idx].label << '\n';
  } else {
    std::cout << "\nPareto front skipped: only " << points.size() << " of "
              << n_jobs << " design points evaluated in this run\n";
  }

  if (interrupted)
    std::cerr << "dse_explorer: interrupted — report/journal hold partial "
                 "results; resume with --resume\n";
  if (!report_path.empty())
    campaign::write_report_file(
        report_path, "dse_explorer", threads_used, job_stats,
        server_path.empty() ? nullptr : &service_totals);
  return interrupted ? 130 : 0;
}
