// Design-space explorer: sweeps reconfigurable technology x slot count x
// memory organisation x context-scheduler policy for the WLAN-style
// three-kernel application, collects (latency, area, reconfig energy,
// inflexibility, fetched config bytes) for every point, and prints the
// Pareto front — the "true design space exploration at the system level"
// the paper positions the methodology for.
//
// Every design point is an independent simulation, so the sweep runs through
// the campaign engine: one Simulation per worker thread, results printed in
// submission order (output is byte-identical for any thread count).
//
// Build & run:  ./build/examples/dse_explorer [--serial] [--jobs N]
//                                             [--report FILE.json]
//                                             [--journal FILE.wal |
//                                              --resume FILE.wal]
//                                             [--processes] [--cache FILE]
//
// --journal write-ahead-logs every job so a killed sweep restarts with
// --resume, re-running only the design points the journal does not show as
// done. SIGINT/SIGTERM stop the sweep gracefully: running simulations get
// request_stop() and --report still emits a valid partial report (exit 130);
// the Pareto front is only printed when every point completed.
//
// --processes forks one child per design point (a crashing point is
// quarantined with a structured reason instead of killing the sweep);
// --cache serves points whose spec hash already has a cached result without
// re-simulating. The spec hash folds the timing mode and quantum, so
// --loose/--quantum variants of a grid point never alias in the journal or
// the cache.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "accel/accel_lib.hpp"
#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/result_cache.hpp"
#include "conformance/migration_harness.hpp"
#include "dse/pareto.hpp"
#include "estimate/area.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr int kFrames = 4;

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_app(bool dedicated_cfg_link) {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  if (!dedicated_cfg_link) cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  if (dedicated_cfg_link) {
    netlist::DirectLinkDecl link;
    link.word_time = 10_ns;
    link.slave = "cfg_mem";
    d.add("cfg_link", link);
  }

  const std::pair<const char*, accel::KernelSpec> kernels[] = {
      {"fir", accel::make_fir_spec(accel::fir_lowpass_taps(24))},
      {"fft", accel::make_fft_spec(64)},
      {"aes", accel::make_aes_spec(accel::AesKey{1, 2, 3})},
  };
  bus::addr_t base = 0x100;
  for (const auto& [name, spec] : kernels) {
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = spec;
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add(name, acc);
    base += 0x100;
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(11);
    for (int f = 0; f < kFrames; ++f) {
      std::vector<bus::word> data(64);
      for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 4095));
      c.burst_write(0x1000, data);
      run_accelerator(c, 0x100, 0x1000, 0x2000, 64);  // fir
      run_accelerator(c, 0x200, 0x2000, 0x3000, 64);  // fft
      run_accelerator(c, 0x300, 0x3000, 0x4000, 64);  // aes
      c.compute(300);
    }
  };
  d.add("cpu", cpu);
  return d;
}

struct Config {
  std::string label;
  drcf::ReconfigTechnology tech;
  u32 slots;
  bool dedicated_link;
  /// Context-scheduler policy axis: on-demand (paper-faithful) vs hybrid
  /// prefetch into a 2-plane configuration cache. The driver's fir->fft->aes
  /// ring makes the static successor annotation exact, so this axis shows
  /// how much fetch latency prediction can hide on each memory organisation.
  drcf::PrefetchPolicy policy = drcf::PrefetchPolicy::kOnDemand;
  u32 cache_slots = 0;
  /// Timing abstraction the point simulates under (--loose / --quantum):
  /// loose mode trades exact bus-cycle interleaving for wall-clock speed;
  /// the functional objectives (outputs, switches, fetched words) are
  /// preserved, latency/energy become quantum-granular approximations.
  kern::TimingMode timing = kern::TimingMode::kTimed;
  u32 quantum_ns = 0;  ///< 0 = kernel default quantum.
};

void apply_timing(kern::Simulation& sim, kern::TimingMode mode,
                  u32 quantum_ns) {
  sim.set_timing_mode(mode);
  if (quantum_ns != 0) sim.set_quantum(kern::Time::ns(quantum_ns));
}

/// One design point == one job: builds, transforms, simulates and evaluates
/// a configuration on whichever worker thread picks it up.
struct SweepOutcome {
  bool ok = false;
  std::string error;
  std::vector<std::string> row;  ///< Table cells, print-ready.
  dse::DesignPoint point;
};

/// user_data codec for SweepOutcome: the print-ready table row and the
/// Pareto objectives travel inside JobStats, so process-mode children,
/// cache hits and journal restores reproduce the tool output (table,
/// reference lines, Pareto front) without re-simulating. Row cells are
/// '\t'-joined; the design point rides behind a 0x1e record separator with
/// label and objectives 0x1f-split (%.17g round-trips doubles exactly).
std::string pack_outcome(const SweepOutcome& out) {
  std::string s = join(out.row, "\t");
  s += '\x1e';
  s += out.point.label;
  for (const double v : out.point.objectives)
    s += '\x1f' + strfmt("%.17g", v);
  return s;
}

SweepOutcome unpack_outcome(const campaign::JobStats& s) {
  SweepOutcome out;
  if (!s.done || s.failed || s.user_data.empty()) return out;
  const auto sep = s.user_data.find('\x1e');
  if (sep == std::string::npos) return out;
  out.row = split(s.user_data.substr(0, sep), '\t');
  const auto point = split(s.user_data.substr(sep + 1), '\x1f');
  if (!point.empty()) out.point.label = point[0];
  for (usize i = 1; i < point.size(); ++i)
    out.point.objectives.push_back(std::strtod(point[i].c_str(), nullptr));
  out.ok = true;
  return out;
}

SweepOutcome run_config(const Config& cfg,
                        const std::vector<std::string>& candidates,
                        const std::vector<u64>& kernel_gates,
                        campaign::JobContext* ctx) {
  SweepOutcome out;
  auto d = make_app(cfg.dedicated_link);
  transform::TransformOptions opt;
  opt.drcf_config.technology = cfg.tech;
  opt.drcf_config.slots = cfg.slots;
  if (cfg.policy != drcf::PrefetchPolicy::kOnDemand) {
    opt.drcf_config.prefetch.policy = cfg.policy;
    opt.drcf_config.prefetch.cache_slots = cfg.cache_slots;
    for (u32 i = 0; i < 3; ++i)  // fir->fft->aes ring
      opt.drcf_config.prefetch.static_next.push_back((i + 1) % 3);
  }
  opt.config_memory = "cfg_mem";
  if (cfg.dedicated_link) opt.config_bus = "cfg_link";
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  if (!report.ok) {
    out.error = "transform failed";
    return out;
  }
  kern::Simulation sim;
  apply_timing(sim, cfg.timing, cfg.quantum_ns);
  netlist::Elaborated e(sim, d);
  if (ctx != nullptr) {
    // The guard lets a SIGINT/SIGTERM broadcast (or wall-clock watchdog)
    // reach this job's kernel via request_stop().
    const auto g = ctx->guard(sim);
    sim.run();
  } else {
    sim.run();
  }
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_timing(sim);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  if (!e.get_processor("cpu").finished()) {
    out.error = "did not finish";
    return out;
  }
  const auto& fabric = e.get_drcf("drcf1");
  const auto& fs = fabric.stats();
  if (ctx != nullptr) ctx->record_faults(fs.fetch_errors, fabric.fault_ledger());
  if (ctx != nullptr)
    ctx->record_prefetch(fs.prefetch_hits, fs.cache_hits,
                         fs.config_words_fetched, fs.hidden_latency);
  const auto area = estimate::drcf_area(kernel_gates, cfg.tech, cfg.slots);
  const double time_us = sim.now().to_us();
  const double energy_uj = fs.reconfig_energy_j * 1e6;
  const double hidden_us = fs.hidden_latency.to_us();
  const double busy_us = fs.reconfig_busy_time.to_us();
  const double hide_pct =
      hidden_us + busy_us > 0 ? 100.0 * hidden_us / (hidden_us + busy_us) : 0.0;
  out.row = {cfg.label, Table::num(time_us, 1),
             Table::integer(static_cast<long long>(fs.switches)),
             Table::integer(static_cast<long long>(fs.config_words_fetched)),
             Table::num(hidden_us, 2), Table::num(hide_pct, 1),
             Table::integer(
                 static_cast<long long>(area.total_gate_equivalents())),
             Table::num(energy_uj, 2)};
  // Fourth objective: inflexibility (0 = field-upgradable fabric, 1 =
  // frozen silicon) — the axis that motivates reconfigurable hardware in
  // the first place (paper Fig. 2). Fifth: fetched configuration bytes,
  // the config-memory bandwidth bill a prefetching scheduler can lower
  // (cache hits) or raise (mispredicted fills).
  out.point = {cfg.label,
               {time_us, static_cast<double>(area.total_gate_equivalents()),
                energy_uj, 0.0,
                static_cast<double>(fs.config_words_fetched) *
                    sizeof(bus::word)}};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_outcome(out));
  return out;
}

/// The task-migration probe as its own job: a clean two-fabric handover
/// (checkpoint after two chunks, state transfer over the system bus, resume
/// on the destination) whose controller counters land in --report as the
/// job's "migration" object — the state-transfer cost figure next to the
/// sweep's fetch/latency figures.
SweepOutcome run_migration_probe(kern::TimingMode timing, u32 quantum_ns,
                                 campaign::JobContext* ctx) {
  SweepOutcome out;
  conformance::MigrationSpec spec;
  conformance::ScenarioOptions sopt;
  sopt.timing_mode = timing;
  if (quantum_ns != 0) sopt.quantum = kern::Time::ns(quantum_ns);
  const auto r = conformance::run_migration(spec, sopt);
  if (ctx != nullptr) {
    ctx->record_digest(r.scenario.digest);
    ctx->record_migration(r.controller.migrations,
                          r.controller.state_words_moved,
                          r.controller.transfer_faults_recovered);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  if (!r.cpu_finished || !r.migration.ok()) {
    out.error = "migration probe failed: " +
                std::string(soc::to_string(r.migration.status));
    return out;
  }
  out.row = {std::to_string(r.controller.migrations),
             std::to_string(r.controller.state_words_moved),
             std::to_string(r.controller.transfer_faults_recovered)};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_outcome(out));
  return out;
}

/// The reference architecture (everything hardwired) as its own job.
SweepOutcome run_hardwired(u64 hw_gates, kern::TimingMode timing,
                           u32 quantum_ns, campaign::JobContext* ctx) {
  SweepOutcome out;
  auto d = make_app(false);
  kern::Simulation sim;
  apply_timing(sim, timing, quantum_ns);
  netlist::Elaborated e(sim, d);
  if (ctx != nullptr) {
    const auto g = ctx->guard(sim);
    sim.run();
  } else {
    sim.run();
  }
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_timing(sim);
  }
  if (ctx != nullptr && ctx->interrupted()) {
    out.error = "interrupted";
    return out;
  }
  out.row = {Table::num(sim.now().to_us(), 1)};
  out.point = {"hardwired",
               {sim.now().to_us(), static_cast<double>(hw_gates), 0.0, 1.0,
                0.0}};
  out.ok = true;
  if (ctx != nullptr) ctx->record_user_data(pack_outcome(out));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  bool loose = false;
  bool processes = false;
  u32 quantum_ns = 0;
  usize jobs = 0;  // 0 = default_thread_count()
  std::string report_path;
  std::string journal_path;
  std::string resume_path;
  std::string cache_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--loose") == 0) {
      loose = true;
    } else if (std::strcmp(argv[i], "--quantum") == 0 && i + 1 < argc) {
      char* end = nullptr;
      quantum_ns = static_cast<u32>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || quantum_ns == 0) {
        std::cerr << "dse_explorer: --quantum expects a nonzero ns count, "
                     "got '" << argv[i] << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      char* end = nullptr;
      jobs = static_cast<usize>(std::strtoul(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0') {
        std::cerr << "dse_explorer: --jobs expects a number, got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      processes = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else {
      std::cerr << "usage: dse_explorer [--serial] [--jobs N] "
                   "[--loose] [--quantum NS] "
                   "[--report FILE.json] [--journal FILE.wal | "
                   "--resume FILE.wal] [--processes] [--cache FILE]\n";
      return 2;
    }
  }
  if (!journal_path.empty() && !resume_path.empty()) {
    std::cerr << "dse_explorer: --journal and --resume are exclusive\n";
    return 2;
  }
  if (serial && (!journal_path.empty() || !resume_path.empty())) {
    std::cerr << "dse_explorer: journaling requires the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if (serial && (processes || !cache_path.empty())) {
    std::cerr << "dse_explorer: --processes/--cache require the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if (quantum_ns != 0 && !loose) {
    std::cerr << "dse_explorer: --quantum only applies with --loose\n";
    return 2;
  }
  const kern::TimingMode timing =
      loose ? kern::TimingMode::kLoose : kern::TimingMode::kTimed;

  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const std::vector<u64> kernel_gates{
      accel::make_fir_spec(accel::fir_lowpass_taps(24)).gate_count,
      accel::make_fft_spec(64).gate_count,
      accel::make_aes_spec(accel::AesKey{1, 2, 3}).gate_count};

  std::vector<Config> configs;
  for (const auto& tech : {drcf::virtex2pro_like(), drcf::varicore_like(),
                           drcf::morphosys_like()}) {
    for (const u32 slots : {1u, 2u}) {
      for (const bool link : {false, true}) {
        for (const bool prefetch : {false, true}) {
          Config c{tech.name + "/s" + std::to_string(slots) +
                       (link ? "/link" : "/shared") +
                       (prefetch ? "/hybrid" : "/demand"),
                   tech, slots, link};
          if (prefetch) {
            c.policy = drcf::PrefetchPolicy::kHybrid;
            c.cache_slots = 2;
          }
          c.timing = timing;
          c.quantum_ns = quantum_ns;
          configs.push_back(c);
        }
      }
    }
  }
  const u64 hw_gates = estimate::hardwired_gates(kernel_gates);

  // The sweep's job list: every design point, the hardwired reference, and
  // the task-migration probe.
  const usize n_jobs = configs.size() + 2;
  const usize hw_index = configs.size();
  const usize probe_index = configs.size() + 1;
  const auto job_label = [&](usize i) {
    if (i < configs.size()) return configs[i].label;
    return std::string(i == hw_index ? "hardwired" : "migration_probe");
  };
  // Spec hash per job: folds the timing axis (mode + quantum) on top of the
  // label, so --loose/--quantum variants of the same grid point never alias
  // in the journal or the result cache (see the ResultCache reuse caveat).
  const auto point_spec = [&](usize i) {
    u64 p = timing == kern::TimingMode::kLoose ? 1 : 0;
    p = p * 1099511628211ULL + quantum_ns;
    return campaign::spec_hash(job_label(i), p);
  };

  // Journal / resume setup; --resume refuses a journal whose planned job
  // set does not match this sweep.
  std::unique_ptr<campaign::CampaignJournal> journal;
  std::map<usize, campaign::JobStats> restored;
  std::vector<bool> rerun(n_jobs, true);
  if (!resume_path.empty()) {
    const auto state = campaign::read_journal(resume_path);
    if (!state.has_value()) {
      std::cerr << "dse_explorer: cannot read journal '" << resume_path
                << "'\n";
      return 2;
    }
    if (state->campaign != "dse_explorer") {
      std::cerr << "dse_explorer: journal belongs to campaign '"
                << state->campaign << "', refusing to resume\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i) {
      const auto it = state->planned.find(i);
      if (it == state->planned.end() ||
          it->second.spec != point_spec(i)) {
        std::cerr << "dse_explorer: journal job " << i
                  << " does not match this sweep, refusing to resume\n";
        return 2;
      }
    }
    if (state->torn_lines > 0)
      std::cerr << "dse_explorer: dropped " << state->torn_lines
                << " torn journal line(s) (crash mid-append)\n";
    for (const auto& [idx, stats] : state->completed) {
      if (idx >= n_jobs) continue;
      restored.emplace(idx, stats);
      rerun[idx] = false;
    }
    journal = campaign::CampaignJournal::append_to(resume_path);
    if (journal == nullptr) {
      std::cerr << "dse_explorer: cannot append to journal '" << resume_path
                << "'\n";
      return 2;
    }
  } else if (!journal_path.empty()) {
    journal = campaign::CampaignJournal::create(journal_path, "dse_explorer");
    if (journal == nullptr) {
      std::cerr << "dse_explorer: cannot create journal '" << journal_path
                << "'\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i)
      journal->record_planned(i, point_spec(i), job_label(i));
  }

  // Digest-keyed cross-run cache: a planned job whose spec hash already has
  // a cleanly finished entry is served verbatim instead of re-simulated.
  std::unique_ptr<campaign::ResultCache> cache;
  std::map<usize, campaign::JobStats> cached_results;
  if (!cache_path.empty()) {
    cache = campaign::ResultCache::open(cache_path);
    if (cache == nullptr) {
      std::cerr << "dse_explorer: cannot open cache '" << cache_path << "'\n";
      return 2;
    }
    for (usize i = 0; i < n_jobs; ++i) {
      if (!rerun[i]) continue;
      auto hit = cache->lookup(point_spec(i));
      if (!hit.has_value()) continue;
      hit->index = i;
      hit->label = job_label(i);
      hit->from_cache = true;
      cached_results.emplace(i, std::move(*hit));
      rerun[i] = false;
      if (journal != nullptr) journal->record_cache_hit(point_spec(i));
    }
  }

  // Run every design point; `outcomes` ends up in submission order either
  // way, so all downstream output is byte-identical between modes, and both
  // modes record the JobStats that --report serialises.
  std::vector<SweepOutcome> outcomes(n_jobs);
  std::vector<campaign::JobStats> job_stats;
  usize threads_used = 1;
  bool interrupted = false;
  if (serial) {
    for (usize i = 0; i < configs.size(); ++i)
      outcomes[i] = campaign::run_inline(
          configs[i].label, job_stats, [&](campaign::JobContext& ctx) {
            return run_config(configs[i], candidates, kernel_gates, &ctx);
          });
    outcomes[hw_index] =
        campaign::run_inline("hardwired", job_stats,
                             [&](campaign::JobContext& ctx) {
                               return run_hardwired(hw_gates, timing,
                                                    quantum_ns, &ctx);
                             });
    outcomes[probe_index] =
        campaign::run_inline("migration_probe", job_stats,
                             [&](campaign::JobContext& ctx) {
                               return run_migration_probe(timing, quantum_ns,
                                                          &ctx);
                             });
  } else {
    campaign::CampaignRunner runner(
        jobs != 0 ? jobs : campaign::default_thread_count(),
        processes ? campaign::ExecutionMode::kProcesses
                  : campaign::ExecutionMode::kThreads);
    if (processes && runner.mode() != campaign::ExecutionMode::kProcesses)
      std::cerr << "dse_explorer: fork unavailable, degrading to thread "
                   "workers\n";
    threads_used = runner.thread_count();
    // SIGINT/SIGTERM wind the sweep down gracefully: running simulations
    // are stopped via their guards, pending jobs quarantine as
    // "interrupted", and the partial report stays valid.
    campaign::install_stop_signal_handlers();
    runner.enable_signal_stop();
    if (journal != nullptr) runner.set_journal(journal.get());
    std::vector<std::pair<usize, std::future<SweepOutcome>>> futures;
    for (usize i = 0; i < configs.size(); ++i) {
      if (!rerun[i]) continue;
      campaign::JobOptions o;
      o.stats_index = i;  // resumed jobs keep their original indices
      o.spec = point_spec(i);
      o.heartbeat_timeout_seconds = 10.0;
      const Config cfg = configs[i];
      futures.emplace_back(
          i, runner.submit(cfg.label, o, [&, cfg](campaign::JobContext& ctx) {
            return run_config(cfg, candidates, kernel_gates, &ctx);
          }));
    }
    if (rerun[hw_index]) {
      campaign::JobOptions o;
      o.stats_index = hw_index;
      o.spec = point_spec(hw_index);
      o.heartbeat_timeout_seconds = 10.0;
      futures.emplace_back(hw_index,
                           runner.submit("hardwired", o,
                                         [&](campaign::JobContext& ctx) {
                                           return run_hardwired(
                                               hw_gates, timing, quantum_ns,
                                               &ctx);
                                         }));
    }
    if (rerun[probe_index]) {
      campaign::JobOptions o;
      o.stats_index = probe_index;
      o.spec = point_spec(probe_index);
      o.heartbeat_timeout_seconds = 10.0;
      futures.emplace_back(probe_index,
                           runner.submit("migration_probe", o,
                                         [&](campaign::JobContext& ctx) {
                                           return run_migration_probe(
                                               timing, quantum_ns, &ctx);
                                         }));
    }
    for (auto& [i, f] : futures) {
      try {
        outcomes[i] = f.get();
      } catch (const std::exception& e) {
        outcomes[i].error = e.what();
      }
    }
    // A future resolves before its worker commits the job's record, so
    // wait_idle() is still required for a fully-populated stats() view.
    runner.wait_idle();
    if (journal != nullptr) journal->flush();
    interrupted = campaign::signal_stop_requested();

    // Merge: placeholders for every job, journal-restored records under
    // them, cache-served results beside them, fresh records (keyed by their
    // original indices) on top.
    job_stats.resize(n_jobs);
    for (usize i = 0; i < n_jobs; ++i) {
      job_stats[i].index = i;
      job_stats[i].label = job_label(i);
    }
    for (const auto& [idx, stats] : restored) job_stats[idx] = stats;
    for (const auto& [idx, stats] : cached_results) job_stats[idx] = stats;
    for (const auto& rec : runner.stats())
      if (rec.index < job_stats.size()) job_stats[rec.index] = rec;
    // Feed the cache with every cleanly finished fresh result (store()
    // itself ignores failed/quarantined/cache-served stats).
    if (cache != nullptr)
      for (usize i = 0; i < n_jobs; ++i)
        cache->store(point_spec(i), job_stats[i]);
    // Rebuild print-ready outcomes for jobs that did not run in this
    // address space: process-mode children, cache hits and journal
    // restores all carry their SweepOutcome packed in user_data.
    for (usize i = 0; i < n_jobs; ++i)
      if (!outcomes[i].ok) outcomes[i] = unpack_outcome(job_stats[i]);
  }

  Table t("DSE sweep: technology x slots x config-memory x scheduler policy (" +
          std::to_string(kFrames) + " frames)");
  t.header({"configuration", "time [us]", "switches", "cfg words",
            "hidden [us]", "hide %", "area [gate-eq]", "reconf energy [uJ]"});
  std::vector<dse::DesignPoint> points;
  usize missing = 0;
  for (usize i = 0; i < configs.size(); ++i) {
    const auto& out = outcomes[i];
    if (!out.ok) {
      if (restored.count(i) != 0) {
        ++missing;  // finished in a previous run; only its stats survive
      } else {
        std::cerr << configs[i].label << ": "
                  << (out.error.empty() ? "interrupted" : out.error) << '\n';
      }
      continue;
    }
    t.row(out.row);
    points.push_back(out.point);
  }
  t.print(std::cout);
  if (missing > 0)
    std::cout << missing
              << " design point(s) restored from the journal (metrics in "
                 "--report; not re-run)\n";
  if (!cached_results.empty())
    std::cout << cached_results.size()
              << " job(s) served from the result cache (not re-simulated)\n";

  const auto& hw = outcomes[hw_index];
  if (hw.ok) {
    std::cout << "\nhardwired reference: " << hw.row[0] << " us, " << hw_gates
              << " gates, 0 uJ reconfig\n";
    points.push_back(hw.point);
  }

  const auto& probe = outcomes[probe_index];
  if (probe.ok) {
    std::cout << "migration probe: " << probe.row[0] << " migration(s), "
              << probe.row[1] << " state words over the bus, " << probe.row[2]
              << " transfer fault(s) recovered\n";
  } else if (restored.count(probe_index) == 0) {
    std::cerr << "migration_probe: "
              << (probe.error.empty() ? "interrupted" : probe.error) << '\n';
  }

  // The Pareto front is only meaningful over the complete design space
  // (every design point plus the hardwired reference; the migration probe
  // contributes no point): skip it when points are missing (interrupted or
  // journal-restored runs).
  if (points.size() == configs.size() + 1) {
    const auto front = dse::pareto_front(points);
    std::cout
        << "\nPareto-optimal configurations (time, area, energy, "
           "inflexibility, cfg bytes):\n";
    for (const usize idx : front)
      std::cout << "  * " << points[idx].label << '\n';
  } else {
    std::cout << "\nPareto front skipped: only " << points.size() << " of "
              << n_jobs << " design points evaluated in this run\n";
  }

  if (interrupted)
    std::cerr << "dse_explorer: interrupted — report/journal hold partial "
                 "results; resume with --resume\n";
  if (!report_path.empty())
    campaign::write_report_file(report_path, "dse_explorer", threads_used,
                                job_stats);
  return interrupted ? 130 : 0;
}
