// WLAN baseband receiver — the ADRIATIC-style case study that motivates the
// paper: an OFDM receive chain (FFT -> Viterbi -> CRC) whose stages are
// never active simultaneously, making them textbook DRCF candidates
// (Sec. 5.1 rule 1). The example builds the same receiver twice:
//
//   A. hardwired:  three dedicated accelerators on the bus
//   B. DRCF:       the three kernels share one reconfigurable fabric
//
// and reports per-frame latency, bus traffic, and area for both, showing the
// area-vs-latency trade the methodology exists to expose.
//
// Build & run:  ./build/examples/wlan_receiver
#include <iostream>

#include "accel/accel_lib.hpp"
#include "estimate/area.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr bus::addr_t kFftBase = 0x100;
constexpr bus::addr_t kVitBase = 0x200;
constexpr bus::addr_t kCrcBase = 0x300;
constexpr bus::addr_t kRxBuf = 0x1000;    // raw OFDM symbols
constexpr bus::addr_t kEqBuf = 0x2000;    // FFT output
constexpr bus::addr_t kBitBuf = 0x3000;   // decoded bits
constexpr bus::addr_t kOutBuf = 0x4000;   // CRC-checked payload
constexpr int kFrames = 6;
constexpr u32 kSymbolWords = 64;   // one 64-point OFDM symbol per frame
constexpr u32 kCodedWords = 16;    // coded bits, packed

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_receiver() {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl fft;
  fft.base = kFftBase;
  fft.spec = accel::make_fft_spec(64);
  fft.slave_bus = fft.master_bus = "system_bus";
  d.add("fft", fft);

  netlist::HwAccelDecl vit;
  vit.base = kVitBase;
  vit.spec = accel::make_viterbi_spec();
  vit.slave_bus = vit.master_bus = "system_bus";
  d.add("viterbi", vit);

  netlist::HwAccelDecl crc;
  crc.base = kCrcBase;
  crc.spec = accel::make_crc_spec();
  crc.slave_bus = crc.master_bus = "system_bus";
  d.add("crc", crc);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(2026);
    for (int frame = 0; frame < kFrames; ++frame) {
      // Antenna samples arrive in memory.
      std::vector<bus::word> symbol(kSymbolWords);
      for (auto& s : symbol)
        s = accel::pack_cplx(static_cast<i16>(rng.next_range(-8000, 8000)),
                             static_cast<i16>(rng.next_range(-8000, 8000)));
      c.burst_write(kRxBuf, symbol);
      // Stage 1: FFT (channel demap).
      run_accelerator(c, kFftBase, kRxBuf, kEqBuf, kSymbolWords);
      // Stage 2: Viterbi decode of the demapped bits.
      run_accelerator(c, kVitBase, kEqBuf, kBitBuf, kCodedWords);
      // Stage 3: CRC over the decoded payload.
      run_accelerator(c, kCrcBase, kBitBuf, kOutBuf, kCodedWords / 2);
      // A short MAC-layer software phase between frames.
      c.compute(500);
    }
  };
  d.add("cpu", cpu);
  return d;
}

struct Result {
  kern::Time total_time;
  double per_frame_us;
  u64 bus_reads;
  u64 bus_writes;
  double bus_utilization;
  u64 switches = 0;
  u64 config_words = 0;
};

Result run(netlist::Design& d, bool has_drcf) {
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  Result r;
  r.total_time = sim.now();
  r.per_frame_us = sim.now().to_us() / kFrames;
  const auto& bstats = e.get_bus("system_bus").stats();
  r.bus_reads = bstats.reads;
  r.bus_writes = bstats.writes;
  r.bus_utilization = e.get_bus("system_bus").utilization();
  if (has_drcf) {
    r.switches = e.get_drcf("drcf1").stats().switches;
    r.config_words = e.get_drcf("drcf1").stats().config_words_fetched;
  }
  if (!e.get_processor("cpu").finished()) {
    std::cerr << "receiver did not finish!\n";
    std::exit(1);
  }
  return r;
}

}  // namespace

int main() {
  auto hardwired = make_receiver();
  auto reconf = make_receiver();

  transform::TransformOptions opt;
  // Coarse-grained fabric: word-level contexts keep reconfiguration traffic
  // in the kilobyte range (a fine-grained bitstream for the 45k-gate Viterbi
  // would exceed a megabit — try drcf::virtex2pro_like() to see it).
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"fft", "viterbi", "crc"};
  const auto report = transform::transform_to_drcf(reconf, candidates, opt);
  if (!report.ok) {
    for (const auto& diag : report.diagnostics) std::cerr << diag << '\n';
    return 1;
  }

  const Result hw = run(hardwired, false);
  const Result rc = run(reconf, true);

  // Area comparison (estimators, Sec. 5.5).
  const u64 gates[] = {accel::make_fft_spec(64).gate_count,
                       accel::make_viterbi_spec().gate_count,
                       accel::make_crc_spec().gate_count};
  const u64 hw_gates = estimate::hardwired_gates(gates);
  const auto drcf_area =
      estimate::drcf_area(gates, opt.drcf_config.technology, 1);

  Table t("WLAN receiver: hardwired vs DRCF (" + std::to_string(kFrames) +
          " frames)");
  t.header({"architecture", "frame latency [us]", "bus reads", "bus writes",
            "bus util", "ctx switches", "config words", "gate equivalents"});
  t.row({"3x dedicated accelerators", Table::num(hw.per_frame_us, 2),
         Table::integer(static_cast<long long>(hw.bus_reads)),
         Table::integer(static_cast<long long>(hw.bus_writes)),
         Table::num(hw.bus_utilization, 3), "-", "-",
         Table::integer(static_cast<long long>(hw_gates))});
  t.row({"1x DRCF (morphosys-like)", Table::num(rc.per_frame_us, 2),
         Table::integer(static_cast<long long>(rc.bus_reads)),
         Table::integer(static_cast<long long>(rc.bus_writes)),
         Table::num(rc.bus_utilization, 3),
         Table::integer(static_cast<long long>(rc.switches)),
         Table::integer(static_cast<long long>(rc.config_words)),
         Table::integer(
             static_cast<long long>(drcf_area.total_gate_equivalents()))});
  t.print(std::cout);

  const double area_ratio =
      static_cast<double>(drcf_area.total_gate_equivalents()) /
      static_cast<double>(hw_gates);
  std::cout << "\nDRCF latency overhead: "
            << Table::num((rc.per_frame_us / hw.per_frame_us - 1.0) * 100.0, 1)
            << "%   area ratio (DRCF / hardwired): "
            << Table::num(area_ratio, 2)
            << (area_ratio > 1.0
                    ? "  (these kernels differ 13x in size - the paper's "
                      "rule 1 wants similar-sized candidates; see "
                      "bench/sec51_partitioning for the crossover)"
                    : "  (fabric sharing wins)")
            << '\n';
  return 0;
}
