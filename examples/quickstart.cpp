// Quickstart: the paper's Sec. 5.2 flow end to end.
//
//   1. Describe a SoC (CPU + bus + memory + two hardware accelerators).
//   2. Run the automatic DRCF transformation (paper Fig. 4).
//   3. Simulate the transformed architecture.
//   4. Read the context scheduler's instrumentation.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "accel/accel_lib.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

int main() {
  // -- 1. Describe the original architecture --------------------------------
  netlist::Design design;

  netlist::BusDecl bus;
  bus.config.cycle_time = 10_ns;  // 100 MHz system bus
  design.add("system_bus", bus);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 4096;
  ram.bus = "system_bus";
  design.add("ram", ram);

  netlist::MemoryDecl cfg_mem;  // will hold configuration bitstreams
  cfg_mem.low = 0x100000;
  cfg_mem.words = 1u << 17;
  cfg_mem.bus = "system_bus";
  design.add("cfg_mem", cfg_mem);

  netlist::HwAccelDecl hwa;  // the paper's "HWA"
  hwa.base = 0x100;
  hwa.spec = accel::make_crc_spec();
  hwa.slave_bus = "system_bus";
  hwa.master_bus = "system_bus";
  design.add("hwa", hwa);

  netlist::HwAccelDecl hwb;
  hwb.base = 0x200;
  hwb.spec = accel::make_fft_spec(64);
  hwb.slave_bus = "system_bus";
  hwb.master_bus = "system_bus";
  design.add("hwb", hwb);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    // Alternate between the two accelerators, as two application phases
    // that never overlap — the classic DRCF-friendly pattern.
    for (int frame = 0; frame < 4; ++frame) {
      c.write(0x100 + soc::HwAccel::kSrc, 0x1000);
      c.write(0x100 + soc::HwAccel::kDst, 0x1100);
      c.write(0x100 + soc::HwAccel::kLen, 64);
      c.write(0x100 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x100 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   200_ns);
      c.write(0x100 + soc::HwAccel::kStatus, 0);

      c.write(0x200 + soc::HwAccel::kSrc, 0x1100);
      c.write(0x200 + soc::HwAccel::kDst, 0x1200);
      c.write(0x200 + soc::HwAccel::kLen, 64);
      c.write(0x200 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x200 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   200_ns);
      c.write(0x200 + soc::HwAccel::kStatus, 0);
    }
  };
  design.add("cpu", cpu);

  // -- 2. Transform: fold hwa + hwb into a DRCF ------------------------------
  transform::TransformOptions options;
  options.drcf_config.technology = drcf::varicore_like();
  options.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report = transform::transform_to_drcf(design, candidates, options);
  if (!report.ok) {
    for (const auto& d : report.diagnostics) std::cerr << d << '\n';
    return 1;
  }

  std::cout << "--- original top (paper-style listing) ---\n"
            << report.before_listing
            << "\n--- transformed top ---\n"
            << report.after_listing << '\n';

  // -- 3. Simulate ------------------------------------------------------------
  kern::Simulation sim;
  netlist::Elaborated system(sim, design);
  sim.run();

  // -- 4. Instrumentation ------------------------------------------------------
  auto& fabric = system.get_drcf("drcf1");
  Table table("DRCF context instrumentation (paper Sec. 5.3 step 5)");
  table.header({"context", "config addr", "size [words]", "activations",
                "accesses", "active time", "reconfig time", "blocked time"});
  for (usize i = 0; i < fabric.context_count(); ++i) {
    const auto& p = fabric.context_params(i);
    const auto s = fabric.context_stats(i);
    table.row({candidates[i], strfmt("0x%X", p.config_address),
               Table::integer(static_cast<long long>(p.size_words)),
               Table::integer(static_cast<long long>(s.activations)),
               Table::integer(static_cast<long long>(s.accesses)),
               s.active_time.str(), s.reconfig_time.str(),
               s.blocked_time.str()});
  }
  table.print(std::cout);

  const auto& st = fabric.stats();
  std::cout << "\ncontext switches: " << st.switches
            << "   configuration words fetched: " << st.config_words_fetched
            << "\nreconfiguration busy time: " << st.reconfig_busy_time.str()
            << "   reconfig energy: " << st.reconfig_energy_j * 1e6 << " uJ"
            << "\nsimulated time: " << sim.now().str() << '\n';
  return 0;
}
