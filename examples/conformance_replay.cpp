// Replays a fuzz-case replay file (as emitted by a failing fuzz_system_test
// or written by hand) and reports the result: violated invariant, scheduler
// trace digest, simulated time. The same file replays bit-identically in
// Release, sanitizer and ADRIATIC_CHECKED builds — that is the point.
//
//   ./build/examples/conformance_replay crash.fuzzcase
//   ./build/examples/conformance_replay --seed 7        # generate + run
//   ./build/examples/conformance_replay --seed 7 --dump # print, don't run
//   ./build/examples/conformance_replay --seed 7 --timeout 30
//
// Exit status: 0 = all invariants hold, 1 = a violation reproduced,
// 2 = usage / unreadable file, 3 = replay exceeded --timeout (hung).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "conformance/digest.hpp"
#include "conformance/fuzz_case.hpp"
#include "util/check.hpp"

using namespace adriatic;
using namespace adriatic::conformance;

namespace {
// Set by main() when the replay finishes; read by the watchdog thread.
std::atomic<bool> g_replay_done{false};
}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool dump = false;
  bool have_seed = false;
  u64 seed = 0;
  unsigned long timeout_sec = 0;
  const auto usage = [] {
    std::cerr << "usage: conformance_replay <file.fuzzcase> | --seed N "
                 "[--dump] [--timeout SEC]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      have_seed = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      timeout_sec = std::strtoul(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty() == !have_seed) return usage();  // exactly one source

  FuzzCase fc;
  if (have_seed) {
    fc = make_case(seed);
  } else {
    const auto loaded = read_replay_file(path);
    if (!loaded.has_value()) {
      std::cerr << "conformance_replay: cannot read '" << path
                << "' (missing, malformed or structurally invalid)\n";
      return 2;
    }
    fc = *loaded;
  }

  std::cout << serialize(fc);
  if (dump) return 0;

  std::cout << "build mode: " << (kCheckedBuild ? "checked" : "release")
            << "\n";
  if (timeout_sec > 0) {
    // Wall-clock hang guard: a replay wedged inside the kernel cannot be
    // stopped cooperatively, so a detached watchdog thread hard-exits the
    // process. _Exit skips atexit/destructors — the process is by
    // definition in an unknown state when this fires.
    std::thread([timeout_sec] {
      std::this_thread::sleep_for(std::chrono::seconds(timeout_sec));
      if (!g_replay_done.load(std::memory_order_acquire)) {
        std::fprintf(stderr,
                     "conformance_replay: replay still running after %lu s, "
                     "giving up (hang)\n",
                     timeout_sec);
        std::_Exit(3);
      }
    }).detach();
  }
  const auto res = run_case(fc);
  g_replay_done.store(true, std::memory_order_release);
  std::cout << "digest: " << digest_str(res.digest)
            << "\nsim time: " << res.sim_time_ps << " ps"
            << "\ncontext switches: " << res.context_switches << "\n";
  if (!res.ok) {
    std::cout << "FAIL: " << res.failure << "\n";
    return 1;
  }
  std::cout << "OK: all invariants hold\n";
  return 0;
}
