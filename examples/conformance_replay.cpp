// Replays a fuzz-case replay file (as emitted by a failing fuzz_system_test
// or written by hand) and reports the result: violated invariant, scheduler
// trace digest, simulated time. The same file replays bit-identically in
// Release, sanitizer and ADRIATIC_CHECKED builds — that is the point.
//
//   ./build/examples/conformance_replay crash.fuzzcase
//   ./build/examples/conformance_replay --seed 7        # generate + run
//   ./build/examples/conformance_replay --seed 7 --dump # print, don't run
//
// Exit status: 0 = all invariants hold, 1 = a violation reproduced,
// 2 = usage / unreadable file.
#include <cstring>
#include <iostream>
#include <string>

#include "conformance/digest.hpp"
#include "conformance/fuzz_case.hpp"
#include "util/check.hpp"

using namespace adriatic;
using namespace adriatic::conformance;

int main(int argc, char** argv) {
  std::string path;
  bool dump = false;
  bool have_seed = false;
  u64 seed = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
      have_seed = true;
    } else if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      std::cerr << "usage: conformance_replay <file.fuzzcase> | --seed N "
                   "[--dump]\n";
      return 2;
    }
  }
  if (path.empty() == !have_seed) {  // exactly one source required
    std::cerr << "usage: conformance_replay <file.fuzzcase> | --seed N "
                 "[--dump]\n";
    return 2;
  }

  FuzzCase fc;
  if (have_seed) {
    fc = make_case(seed);
  } else {
    const auto loaded = read_replay_file(path);
    if (!loaded.has_value()) {
      std::cerr << "conformance_replay: cannot read '" << path
                << "' (missing, malformed or structurally invalid)\n";
      return 2;
    }
    fc = *loaded;
  }

  std::cout << serialize(fc);
  if (dump) return 0;

  std::cout << "build mode: " << (kCheckedBuild ? "checked" : "release")
            << "\n";
  const auto res = run_case(fc);
  std::cout << "digest: " << digest_str(res.digest)
            << "\nsim time: " << res.sim_time_ps << " ps"
            << "\ncontext switches: " << res.context_switches << "\n";
  if (!res.ok) {
    std::cout << "FAIL: " << res.failure << "\n";
    return 1;
  }
  std::cout << "OK: all invariants hold\n";
  return 0;
}
