// Binary-software SoC: an instruction-set-simulated TinyRISC core runs an
// assembled program from memory (instruction fetches are real bus traffic),
// drives two DRCF-wrapped accelerators through their register windows, and
// synchronises on the interrupt controller instead of polling. The whole
// system — including the software — is declared in the netlist and the DRCF
// comes from the automatic transformation.
//
// Build & run:  ./build/examples/iss_system
#include <iostream>

#include "accel/accel_lib.hpp"
#include "morphosys/assembler.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "netlist/report.hpp"
#include "transform/transform.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

int main() {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl code;
  code.low = 0x8000;
  code.words = 2048;
  code.bus = "system_bus";
  d.add("code", code);

  netlist::MemoryDecl data;
  data.low = 0x1000;
  data.words = 4096;
  data.bus = "system_bus";
  d.add("data", data);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl crc;
  crc.base = 0x100;
  crc.spec = accel::make_crc_spec();
  crc.slave_bus = crc.master_bus = "system_bus";
  d.add("crc", crc);

  netlist::HwAccelDecl quant;
  quant.base = 0x200;
  quant.spec = accel::make_quant_spec(80);
  quant.slave_bus = quant.master_bus = "system_bus";
  d.add("quant", quant);

  netlist::IrqControllerDecl irq;
  irq.base = 0x400;
  irq.bus = "system_bus";
  irq.lines = {{0, "crc"}, {1, "quant"}};
  d.add("irq", irq);

  // The firmware: for 4 frames, run quant on the frame, then CRC its
  // output, waiting on interrupts each time.
  netlist::IssDecl iss;
  iss.master_bus = "system_bus";
  iss.code_memory = "code";
  iss.config.reset_pc = 0x8000;
  iss.config.icache_line_words = 16;
  iss.program = morphosys::assemble(R"(
    ADDI r5, r0, 0x400     ; IRQ controller
    ADDI r2, r0, 3
    STW  r5, 2, r2         ; enable lines 0 and 1
    ADDI r10, r0, 4        ; frame counter
    frame:
    ; --- quantiser pass: data[0x1000..0x103F] -> 0x1100 ---
    ADDI r1, r0, 0x200
    ADDI r2, r0, 0x1000
    STW  r1, 2, r2
    ADDI r2, r0, 0x1100
    STW  r1, 3, r2
    ADDI r2, r0, 64
    STW  r1, 4, r2
    ADDI r2, r0, 1
    STW  r1, 0, r2
    waitq:
    LDW  r4, r5, 0
    BEQ  r4, r0, waitq
    ADDI r2, r0, 2
    STW  r5, 3, r2         ; ack line 1
    ADDI r2, r0, 0
    STW  r1, 1, r2         ; clear accel status
    ; --- CRC pass: 0x1100 -> 0x1200 ---
    ADDI r1, r0, 0x100
    ADDI r2, r0, 0x1100
    STW  r1, 2, r2
    ADDI r2, r0, 0x1200
    STW  r1, 3, r2
    ADDI r2, r0, 64
    STW  r1, 4, r2
    ADDI r2, r0, 1
    STW  r1, 0, r2
    waitc:
    LDW  r4, r5, 0
    BEQ  r4, r0, waitc
    ADDI r2, r0, 1
    STW  r5, 3, r2         ; ack line 0
    ADDI r2, r0, 0
    STW  r1, 1, r2
    ADDI r10, r10, -1
    BNE  r10, r0, frame
    HALT
  )");
  d.add("cpu", iss);

  // Fold the two accelerators into a DRCF.
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();
  opt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"crc", "quant"};
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  if (!report.ok) {
    for (const auto& diag : report.diagnostics) std::cerr << diag << '\n';
    return 1;
  }

  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  // Seed frame data.
  std::vector<bus::word> frame(64);
  for (usize i = 0; i < frame.size(); ++i)
    frame[i] = static_cast<bus::word>(40 * (i % 9));
  e.get_memory("data").load(0x1000, frame);
  sim.run();

  const auto& cpu = e.get_iss("cpu");
  if (!cpu.stats().halted || cpu.stats().illegal_instruction) {
    std::cerr << "firmware did not halt cleanly\n";
    return 1;
  }

  // Check the final CRC against the functional kernels.
  const auto q = accel::make_quant_spec(80).fn(frame);
  const u32 expect = accel::crc32_words(q);
  const u32 got =
      static_cast<u32>(e.get_memory("data").peek(0x1200 + 64));
  std::cout << "firmware result check: "
            << (got == expect ? "CRC matches the functional model"
                              : "MISMATCH")
            << "\n\n";

  netlist::SystemReport sys_report(d, e);
  sys_report.print(std::cout);

  const auto& s = cpu.stats();
  std::cout << "\nfirmware: " << s.instructions << " instructions, "
            << s.ifetch_reads << " i-fetch bus reads ("
            << s.icache_hits << " line-buffer hits), " << s.data_reads
            << " data reads, " << s.data_writes << " data writes\n";
  return got == expect ? 0 : 1;
}
