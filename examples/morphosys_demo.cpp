// MorphoSys demo (paper Sec. 3c): assembles a TinyRISC program that streams
// data through the 8x8 RC array, demonstrating SIMD execution and the
// double-context-plane background reload ("while the RC array is executing
// one of the 16 contexts, the other 16 can be reloaded").
//
// The kernel: per-pixel brightness/contrast adjust, y = (x * gain) >> 4 + bias,
// as two contexts executed back to back over a 512-pixel tile.
//
// Build & run:  ./build/examples/morphosys_demo
#include <iostream>

#include "morphosys/morphosys_lib.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::morphosys;

int main() {
  Machine machine;

  // -- Contexts ---------------------------------------------------------------
  // Context 0: multiply by gain (reads the frame buffer, keeps in reg0).
  Context scale;
  for (auto& w : scale.rows) {
    w.op = RcOp::kMul;
    w.src_a = MuxSel::kFrameBuf;
    w.src_b = MuxSel::kImm;
    w.imm = 20;  // gain (x20/16 = 1.25 after the shift in context 1)
    w.dst_reg = 0;
  }
  // Context 1: shift + bias, write back to the frame buffer.
  Context bias;
  for (auto& w : bias.rows) {
    w.op = RcOp::kShr;
    w.src_a = MuxSel::kReg0;
    w.src_b = MuxSel::kImm;
    w.imm = 4;
    w.dst_reg = 1;
    w.write_fb = true;
  }
  machine.store_context_image(0x4000, scale);
  machine.store_context_image(0x4008, bias);

  // -- Input tile --------------------------------------------------------------
  constexpr usize kTile = 512;  // 8 array-fulls of 64 pixels
  std::vector<i32> pixels(kTile);
  for (usize i = 0; i < kTile; ++i) pixels[i] = static_cast<i32>(i % 200);
  machine.mem_load(0x100, pixels);

  // -- Program -----------------------------------------------------------------
  const auto program = assemble(R"(
    ADDI r1, r0, 0x100    ; tile source in main memory
    ADDI r2, r0, 0        ; frame buffer cursor
    ADDI r4, r0, 0x4000   ; context images
    DMACL 0, r4, 2        ; both contexts into plane 0
    DMALD r1, r2, 512     ; stream the tile into the frame buffer
    WAITDMA
    ; prefetch the next tile's contexts into plane 1 while the array runs
    DMACL 1, r4, 2
    RAMODE row
    ADDI r6, r0, 8        ; 8 chunks of 64 pixels
    chunk:
    RAEXEC 0, 0, r2, 1    ; context 0: scale this chunk
    RAEXEC 0, 1, r2, 1    ; context 1: shift+write back
    ADDI r2, r2, 64
    ADDI r6, r6, -1
    BNE r6, r0, chunk
    WAITDMA
    ADDI r2, r0, 0
    ADDI r5, r0, 0x800    ; results to main memory
    DMAST r2, r5, 512
    WAITDMA
    HALT
  )");

  if (!machine.run(program)) {
    std::cerr << "program did not halt\n";
    return 1;
  }

  // -- Verify -------------------------------------------------------------------
  usize errors = 0;
  for (usize i = 0; i < kTile; ++i) {
    const i32 expect = (pixels[i] * 20) >> 4;
    if (machine.mem_read(0x800 + i) != expect) ++errors;
  }
  std::cout << "functional check: " << (kTile - errors) << "/" << kTile
            << " pixels correct\n\n";

  const auto& s = machine.stats();
  Table t("MorphoSys run statistics");
  t.header({"metric", "value"});
  t.row({"total cycles", Table::integer(static_cast<long long>(s.cycles))});
  t.row({"TinyRISC instructions",
         Table::integer(static_cast<long long>(s.risc_instructions))});
  t.row({"RC-array cycles",
         Table::integer(static_cast<long long>(s.ra_cycles))});
  t.row({"array utilization",
         Table::num(machine.array_utilization() * 100.0, 1) + " %"});
  t.row({"contexts loaded",
         Table::integer(static_cast<long long>(s.contexts_loaded))});
  t.row({"DMA busy cycles",
         Table::integer(static_cast<long long>(s.dma_busy_cycles))});
  t.row({"cycles overlapped (array + DMA)",
         Table::integer(static_cast<long long>(s.overlapped_cycles))});
  t.row({"RA stall cycles (same-plane reload)",
         Table::integer(static_cast<long long>(s.ra_stall_cycles))});
  t.print(std::cout);

  std::cout << "\nThe plane-1 reload overlapped " << s.overlapped_cycles
            << " array cycles - the paper's background-reconfiguration "
               "property.\n";
  return errors == 0 ? 0 : 1;
}
