// Timing-mode smoke check (docs/timing_modes.md): runs every sec53 DSE sweep
// scenario twice — cycle-accurate (kTimed) and loosely timed (kLoose) — and
// verifies the loose fast path is both *correct* (identical functional output
// and fault-ledger content) and *doing something* (strictly fewer scheduler
// dispatches than the timed run). CI runs this after every build; a zero-gain
// or diverging loose mode fails the job.
//
//   ./build/examples/timing_smoke                  # default 1us quantum
//   ./build/examples/timing_smoke --quantum-ns 100 # sweep a tighter quantum
//   ./build/examples/timing_smoke --all            # every scenario, not
//                                                  # just the sec53 points
//
// Exit status: 0 = every scenario matched and sped up, 1 = divergence or a
// loose run that did not reduce dispatches, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "conformance/scenarios.hpp"
#include "kernel/time.hpp"

using namespace adriatic;
using namespace adriatic::conformance;

int main(int argc, char** argv) {
  u64 quantum_ns = 1000;
  bool all = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quantum-ns") == 0 && i + 1 < argc) {
      quantum_ns = std::strtoull(argv[++i], nullptr, 10);
      if (quantum_ns == 0) {
        std::fprintf(stderr, "timing_smoke: quantum must be nonzero\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--all") == 0) {
      all = true;
    } else {
      std::fprintf(stderr,
                   "usage: timing_smoke [--quantum-ns N] [--all]\n");
      return 2;
    }
  }

  ScenarioOptions timed;
  ScenarioOptions loose;
  loose.timing_mode = kern::TimingMode::kLoose;
  loose.quantum = kern::Time::ns(quantum_ns);

  std::printf("%-28s %12s %12s %8s  %s\n", "scenario", "timed disp",
              "loose disp", "ratio", "verdict");
  int failures = 0;
  u64 ran = 0;
  for (const std::string& name : scenario_names()) {
    if (!all && name.rfind("sec53_", 0) != 0) continue;
    const auto t = run_scenario(name, timed);
    const auto l = run_scenario(name, loose);
    if (!t.has_value() || !l.has_value()) {
      std::fprintf(stderr, "timing_smoke: scenario '%s' failed to run\n",
                   name.c_str());
      return 1;
    }
    ++ran;
    const char* verdict = "ok";
    if (l->output_digest != t->output_digest) {
      verdict = "OUTPUT DIVERGED";
      ++failures;
    } else if (l->fault_ledger_digest != t->fault_ledger_digest) {
      verdict = "FAULT LEDGER DIVERGED";
      ++failures;
    } else if (l->dispatches >= t->dispatches) {
      verdict = "NO DISPATCH REDUCTION";
      ++failures;
    } else if (l->loose_syncs == 0) {
      verdict = "NO LOOSE SYNCS";  // loose mode silently not engaged
      ++failures;
    }
    std::printf("%-28s %12llu %12llu %7.2fx  %s\n", name.c_str(),
                static_cast<unsigned long long>(t->dispatches),
                static_cast<unsigned long long>(l->dispatches),
                l->dispatches > 0
                    ? static_cast<double>(t->dispatches) /
                          static_cast<double>(l->dispatches)
                    : 0.0,
                verdict);
  }
  if (ran == 0) {
    std::fprintf(stderr, "timing_smoke: no scenarios matched\n");
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "timing_smoke: %d of %llu scenario(s) failed at quantum "
                 "%llu ns\n",
                 failures, static_cast<unsigned long long>(ran),
                 static_cast<unsigned long long>(quantum_ns));
    return 1;
  }
  std::printf("timing_smoke: %llu scenario(s) ok at quantum %llu ns\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(quantum_ns));
  return 0;
}
