// Fault-injection sweep: recovery policy x configuration-fetch error rate
// for a two-context DRCF, measuring availability (transactions that complete)
// and the recovery work each policy performs. Demonstrates the robustness
// story end to end: a seeded FaultPlan on the fabric's fetch path, the
// recovery policies reacting to it, and the fault ledger surfacing in the
// campaign report.
//
// The model is built by hand (no netlist CPU — the driver must observe bus
// errors rather than abort on them): a split-transaction bus, a configuration
// memory holding the synthetic bitstreams, and two small data memories
// wrapped as DRCF contexts. A driver thread ping-pongs between the contexts
// so every step forces a reconfiguration, maximising exposure to fetch
// faults.
//
// Build & run:  ./build/examples/fault_sweep [--seed N] [--serial]
//               [--jobs N] [--report FILE.json]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bus/bus_lib.hpp"
#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "drcf/drcf_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr int kSteps = 24;
constexpr u64 kConfigWords = 64;
constexpr bus::addr_t kCfgBase = 0x10000;
constexpr bus::addr_t kCtxBase[2] = {0x100, 0x200};
constexpr u32 kCtxWords = 16;

struct SweepConfig {
  std::string label;
  drcf::RecoveryPolicy policy;
  u32 rate_pct;
  u64 plan_seed;
};

struct SweepOutcome {
  bool ok = false;
  std::vector<std::string> row;
};

SweepOutcome run_point(const SweepConfig& cfg, campaign::JobContext* ctx) {
  SweepOutcome out;
  kern::Simulation sim;
  kern::Module top(sim, "top");

  bus::BusConfig bus_cfg;
  bus_cfg.cycle_time = 10_ns;
  bus_cfg.split_transactions = true;
  bus::Bus sys_bus(top, "bus", bus_cfg);
  mem::Memory cfg_mem(top, "cfg_mem", kCfgBase, 4096);
  mem::Memory ctx_mem0(top, "ctx_mem0", kCtxBase[0], kCtxWords);
  mem::Memory ctx_mem1(top, "ctx_mem1", kCtxBase[1], kCtxWords);

  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  dc.slots = 1;  // ping-pong => every step reconfigures
  dc.recovery.policy = cfg.policy;
  dc.recovery.max_attempts = 4;
  dc.recovery.backoff = 50_ns;
  if (cfg.policy == drcf::RecoveryPolicy::kFallbackContext)
    dc.recovery.fallback_context = 0;
  if (cfg.rate_pct > 0) {
    fault::FaultRule rule;
    rule.rate = cfg.rate_pct / 100.0;
    rule.kind = fault::FaultKind::kError;
    rule.reads_only = true;
    dc.fetch_faults.seed = cfg.plan_seed;
    dc.fetch_faults.rules.push_back(rule);
  }
  drcf::Drcf fabric(top, "drcf", dc);

  // Synthetic bitstreams + armed integrity check, as elaborate.cpp does it.
  for (usize c = 0; c < 2; ++c) {
    const bus::addr_t base = kCfgBase + static_cast<bus::addr_t>(c) * 0x400;
    const usize id = fabric.add_context(
        c == 0 ? static_cast<bus::BusSlaveIf&>(ctx_mem0) : ctx_mem1,
        {.config_address = base, .size_words = kConfigWords, .gates = 10'000});
    u64 digest = drcf::kConfigDigestSeed;
    for (u64 w = 0; w < kConfigWords; ++w) {
      const auto word = static_cast<bus::word>(0xC0DE0000u | c);
      cfg_mem.poke(base + static_cast<bus::addr_t>(w), word);
      digest = drcf::config_digest_step(digest, word);
    }
    fabric.set_expected_digest(id, digest);
  }
  fabric.mst_port.bind(sys_bus);
  sys_bus.bind_slave(cfg_mem);
  sys_bus.bind_slave(fabric);

  int ok_steps = 0;
  top.spawn_thread("driver", [&] {
    for (int i = 0; i < kSteps; ++i) {
      const bus::addr_t base = kCtxBase[i % 2];
      const auto off = static_cast<bus::addr_t>(i % kCtxWords);
      bus::word v = static_cast<bus::word>(0x5000 + i);
      bus::word r = 0;
      if (sys_bus.write(base + off, &v) == bus::BusStatus::kOk &&
          sys_bus.read(base + off, &r) == bus::BusStatus::kOk)
        ++ok_steps;
    }
  });
  sim.run();

  const auto& fs = fabric.stats();
  if (ctx != nullptr) {
    ctx->record(sim);
    ctx->record_faults(fs.fetch_errors, fabric.fault_ledger());
  }
  const double availability = static_cast<double>(ok_steps) / kSteps;
  out.row = {cfg.label,
             Table::integer(ok_steps),
             Table::integer(static_cast<long long>(fs.fetch_errors)),
             Table::integer(static_cast<long long>(fs.fetch_retries)),
             Table::integer(static_cast<long long>(fs.fallback_forwards)),
             Table::integer(
                 static_cast<long long>(fabric.fault_ledger().injected_count())),
             Table::num(availability, 3)};
  out.ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  usize jobs = 0;
  u64 seed = 1;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<usize>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else {
      std::cerr << "usage: fault_sweep [--seed N] [--serial] [--jobs N] "
                   "[--report FILE.json]\n";
      return 2;
    }
  }

  const std::pair<const char*, drcf::RecoveryPolicy> policies[] = {
      {"fail_fast", drcf::RecoveryPolicy::kFailFast},
      {"retry_backoff", drcf::RecoveryPolicy::kRetryBackoff},
      {"fallback", drcf::RecoveryPolicy::kFallbackContext},
  };
  const u32 rates[] = {0, 2, 5, 10};

  std::vector<SweepConfig> configs;
  for (const auto& [pname, policy] : policies)
    for (const u32 rate : rates)
      configs.push_back({std::string(pname) + "/r" + std::to_string(rate),
                         policy, rate,
                         seed * 1000 + configs.size()});

  // Each policy/rate point is one campaign job; jobs get a generous
  // wall-clock budget and one retry so a wedged run is quarantined instead
  // of hanging the sweep.
  campaign::JobOptions opt;
  opt.max_attempts = 2;
  opt.wall_timeout_seconds = 60.0;

  std::vector<SweepOutcome> outcomes;
  std::vector<campaign::JobStats> job_stats;
  usize threads_used = 1;
  if (serial) {
    for (const auto& cfg : configs)
      outcomes.push_back(campaign::run_inline(
          cfg.label, job_stats,
          [&](campaign::JobContext& ctx) { return run_point(cfg, &ctx); }));
  } else {
    campaign::CampaignRunner runner(
        jobs != 0 ? jobs : campaign::default_thread_count());
    threads_used = runner.thread_count();
    std::vector<std::future<SweepOutcome>> futures;
    for (const auto& cfg : configs)
      futures.push_back(
          runner.submit(cfg.label, opt, [&, cfg](campaign::JobContext& ctx) {
            return run_point(cfg, &ctx);
          }));
    for (auto& f : futures) outcomes.push_back(f.get());
    runner.wait_idle();
    job_stats = runner.stats();
  }

  Table t("Fault sweep: recovery policy x fetch error rate (" +
          std::to_string(kSteps) + " steps, seed " + std::to_string(seed) +
          ")");
  t.header({"policy/rate", "steps ok", "fetch errs", "retries", "fallbacks",
            "injected", "availability"});
  for (const auto& out : outcomes)
    if (out.ok) t.row(out.row);
  t.print(std::cout);

  if (!report_path.empty())
    campaign::write_report_file(report_path, "fault_sweep", threads_used,
                                job_stats);
  return 0;
}
