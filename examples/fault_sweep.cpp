// Fault-injection sweep: recovery policy x configuration-fetch error rate
// x context-scheduler policy (on-demand vs hybrid prefetch) for a
// two-context DRCF, measuring availability (transactions that complete)
// and the recovery work each policy performs. Demonstrates the robustness
// story end to end: a seeded FaultPlan on the fabric's fetch path, the
// recovery policies reacting to it, and the fault ledger surfacing in the
// campaign report.
//
// The model is built by hand (no netlist CPU — the driver must observe bus
// errors rather than abort on them): a split-transaction bus, a configuration
// memory holding the synthetic bitstreams, and two small data memories
// wrapped as DRCF contexts. A driver thread ping-pongs between the contexts
// so every step forces a reconfiguration, maximising exposure to fetch
// faults.
//
// Build & run:  ./build/examples/fault_sweep [--seed N] [--serial]
//               [--jobs N] [--report FILE.json] [--journal FILE.wal]
//               [--resume FILE.wal [--verify-resume]] [--throttle-ms N]
//               [--processes] [--cache FILE] [--inject-failures]
//               [--mem-budget-mb N] [--inject-oversized]
//               [--server SOCKET]
//
// With --journal every planned job, begun attempt and finished result is an
// fsync'd write-ahead record; a sweep killed mid-run (SIGKILL included)
// restarts with --resume, re-running only the jobs the journal does not show
// as done. SIGINT/SIGTERM stop the sweep gracefully: running simulations get
// request_stop(), the journal is flushed, and --report still emits a valid
// partial report (exit status 130). --verify-resume re-runs completed jobs
// too and checks their scheduler-trace digests against the journaled ones.
//
// --processes runs every job in a forked child (crash containment: a
// segfaulting or spinning job is quarantined with a structured reason, the
// sweep completes). --cache keeps a digest-keyed result cache across runs:
// jobs whose spec hash is already cached are served without re-simulating
// and flagged "cached" in the report. --inject-failures appends two
// deliberately broken jobs (a segfault and a CPU spin) to exercise the
// containment path — see docs/campaign.md.
//
// --mem-budget-mb caps the process-wide paged-store budget (also settable
// via ADRIATIC_MEM_BUDGET_MB); --inject-oversized appends a job whose model
// cannot fit that budget, demonstrating graceful degradation: the job is
// quarantined "budget-quarantined" while the rest of the sweep completes —
// see docs/memory.md. The two contexts' bitstreams land on page-aligned
// offsets, so every job attaches the same two interned images instead of
// materialising private configuration pages.
//
// --server SOCKET runs the sweep as a thin client of campaignd
// (docs/service.md): the same 24 job specs are submitted over the socket,
// the daemon schedules them on its own pool (consulting its result cache
// first) and streams back per-job results; the table and --report are
// byte-identical to a local run modulo timing fields.
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "campaign/result_cache.hpp"
#include "conformance/digest.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "service/client.hpp"
#include "service/jobs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace adriatic;

namespace {

constexpr int kSteps = 24;  // driver steps per point (see service/jobs.cpp)

/// One sweep point; the simulation body lives in service/jobs.cpp
/// (run_fault_point), shared verbatim with campaignd so a --server run is
/// the same code executing in another process.
using SweepConfig = service::FaultPointSpec;

/// Journal identity of one sweep point: the label plus every parameter that
/// shapes the simulation, so --resume refuses a journal written for a
/// different --seed or policy/rate grid.
u64 point_spec(const SweepConfig& cfg) {
  return service::fault_point_spec_hash(cfg);
}

/// Rebuilds a run_point() table row from a JobStats, whichever path the
/// stats took (fresh run, forked child, journal restore, cache hit).
std::vector<std::string> row_from_stats(const campaign::JobStats& s) {
  if (!s.done || s.user_data.empty()) return {};
  return split(s.user_data, '\t');
}

}  // namespace

int main(int argc, char** argv) {
  bool serial = false;
  bool verify_resume = false;
  bool processes = false;
  bool inject_failures = false;
  bool inject_oversized = false;
  u64 mem_budget_mb = 0;
  usize jobs = 0;
  u64 seed = 1;
  unsigned throttle_ms = 0;
  std::string report_path;
  std::string journal_path;
  std::string resume_path;
  std::string cache_path;
  std::string server_path;
  const auto usage = [] {
    std::cerr << "usage: fault_sweep [--seed N] [--serial] [--jobs N] "
                 "[--report FILE.json]\n"
                 "                   [--journal FILE.wal | --resume FILE.wal "
                 "[--verify-resume]]\n"
                 "                   [--throttle-ms N] [--processes] "
                 "[--cache FILE] [--inject-failures]\n"
                 "                   [--mem-budget-mb N] [--inject-oversized]\n"
                 "                   [--server SOCKET]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) {
      serial = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<usize>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0 && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verify-resume") == 0) {
      verify_resume = true;
    } else if (std::strcmp(argv[i], "--throttle-ms") == 0 && i + 1 < argc) {
      throttle_ms =
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--processes") == 0) {
      processes = true;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--inject-failures") == 0) {
      inject_failures = true;
    } else if (std::strcmp(argv[i], "--inject-oversized") == 0) {
      inject_oversized = true;
    } else if (std::strcmp(argv[i], "--mem-budget-mb") == 0 && i + 1 < argc) {
      mem_budget_mb = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!journal_path.empty() && !resume_path.empty()) return usage();
  if (!server_path.empty() &&
      (serial || processes || !journal_path.empty() || !resume_path.empty() ||
       !cache_path.empty() || inject_failures || inject_oversized)) {
    std::cerr << "fault_sweep: --server delegates execution to campaignd; "
                 "drop the local runner flags\n";
    return 2;
  }
  if (verify_resume && resume_path.empty()) return usage();
  if (serial && (!journal_path.empty() || !resume_path.empty())) {
    std::cerr << "fault_sweep: journaling requires the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if (serial && (processes || !cache_path.empty())) {
    std::cerr << "fault_sweep: --processes/--cache require the pool runner "
                 "(drop --serial)\n";
    return 2;
  }
  if ((inject_failures || inject_oversized) && !resume_path.empty()) {
    std::cerr << "fault_sweep: --inject-failures/--inject-oversized cannot "
                 "be combined with --resume\n";
    return 2;
  }
  if (mem_budget_mb > 0)
    mem::MemoryBudget::instance().set_limit_bytes(mem_budget_mb * 1024 *
                                                  1024);

  // Policy indices are drcf::RecoveryPolicy values (fail_fast=0,
  // retry_backoff=1, fallback=2); jobs.cpp casts them back.
  const std::pair<const char*, u32> policies[] = {
      {"fail_fast", 0},
      {"retry_backoff", 1},
      {"fallback", 2},
  };
  const u32 rates[] = {0, 2, 5, 10};

  std::vector<SweepConfig> configs;
  for (const auto& [pname, policy] : policies)
    for (const u32 rate : rates)
      for (const bool prefetch : {false, true})
        configs.push_back({std::string(pname) + "/r" + std::to_string(rate) +
                               (prefetch ? "/hybrid" : "/demand"),
                           policy, rate, seed * 1000 + configs.size(),
                           prefetch, throttle_ms});

  // --server: hand the whole grid to a running campaignd and stream results
  // back. The daemon runs the same run_fault_point() bodies, consults its
  // result cache before simulating anything, and dedups concurrent
  // submissions of the same spec — so a warm pass reports dedup_ratio 1.0.
  if (!server_path.empty()) {
    std::vector<service::ServiceJob> sjobs;
    for (usize i = 0; i < configs.size(); ++i)
      sjobs.push_back({i, point_spec(configs[i]), "fault_point",
                       configs[i].label,
                       service::fault_point_params(configs[i])});
    const auto run = service::run_jobs_over_service(server_path, sjobs);
    if (!run.ok && run.stats.empty()) {
      std::cerr << "fault_sweep: " << run.error << '\n';
      return 2;
    }
    if (!run.error.empty())
      std::cerr << "fault_sweep: " << run.error << '\n';
    std::vector<campaign::JobStats> remote_stats(configs.size());
    for (usize i = 0; i < configs.size(); ++i) {
      remote_stats[i].index = i;
      remote_stats[i].label = configs[i].label;
    }
    for (const auto& [idx, s] : run.stats)
      if (idx < remote_stats.size()) remote_stats[idx] = s;

    Table t("Fault sweep: recovery policy x fetch error rate x scheduler (" +
            std::to_string(kSteps) + " steps, seed " + std::to_string(seed) +
            ", via " + server_path + ")");
    t.header({"policy/rate/sched", "steps ok", "fetch errs", "retries",
              "fallbacks", "injected", "cache hits", "availability"});
    for (const auto& s : remote_stats) {
      const auto row = row_from_stats(s);
      if (!row.empty()) t.row(row);
    }
    t.print(std::cout);
    if (run.totals.dedup_hits > 0)
      std::cout << run.totals.dedup_hits
                << " job(s) served from the service cache (not "
                   "re-simulated)\n";
    if (run.interrupted)
      std::cerr << "fault_sweep: server interrupted — partial results\n";
    if (!report_path.empty())
      campaign::write_report_file(report_path, "fault_sweep", 0, remote_stats,
                                  &run.totals);
    if (run.interrupted) return 130;
    return run.ok ? 0 : 3;
  }

  // --inject-failures appends two deliberately broken jobs AFTER the sweep
  // grid, so the 24 real points stay comparable with a clean run: a child
  // that segfaults (quarantined "signal:SIGSEGV" after its retries) and one
  // that spins forever (the supervisor's wall deadline kills it, reason
  // "timeout"). In thread mode the hooks are inert no-op jobs.
  struct DebugJob {
    std::string label;
    campaign::DebugFailure failure;
  };
  std::vector<DebugJob> debug_jobs;
  if (inject_failures)
    debug_jobs = {{"debug/segv", campaign::DebugFailure::kSegv},
                  {"debug/hang-cpu", campaign::DebugFailure::kHangCpu}};
  // --inject-oversized appends one more: a job whose model cannot fit the
  // paged-store budget. Materialising its pages throws BudgetExceededError
  // on the plain call stack (no simulation is ever run), which the runner
  // turns into a "budget-quarantined" verdict in both thread and process
  // mode while every other job completes normally.
  const char* kOversizedLabel = "debug/oversized";
  const usize n_jobs =
      configs.size() + debug_jobs.size() + (inject_oversized ? 1 : 0);

  // Journal / resume setup. Resume validates the journal's identity first:
  // same campaign, same planned job set (spec hashes cover every simulation
  // parameter), otherwise it refuses rather than merge unrelated results.
  std::unique_ptr<campaign::CampaignJournal> journal;
  std::map<usize, campaign::JobStats> restored;
  std::vector<bool> rerun(n_jobs, true);
  if (!resume_path.empty()) {
    const auto state = campaign::read_journal(resume_path);
    if (!state.has_value()) {
      std::cerr << "fault_sweep: cannot read journal '" << resume_path
                << "'\n";
      return 2;
    }
    if (state->campaign != "fault_sweep") {
      std::cerr << "fault_sweep: journal belongs to campaign '"
                << state->campaign << "', refusing to resume\n";
      return 2;
    }
    for (usize i = 0; i < configs.size(); ++i) {
      const auto it = state->planned.find(i);
      if (it == state->planned.end() ||
          it->second.spec != point_spec(configs[i])) {
        std::cerr << "fault_sweep: journal job " << i
                  << " does not match this sweep (different --seed or "
                     "grid?), refusing to resume\n";
        return 2;
      }
    }
    if (state->torn_lines > 0)
      std::cerr << "fault_sweep: dropped " << state->torn_lines
                << " torn journal line(s) (crash mid-append)\n";
    for (const auto& [idx, stats] : state->completed) {
      if (idx >= configs.size()) continue;
      restored.emplace(idx, stats);
      // --verify-resume re-runs finished jobs too, to check their digests.
      if (!verify_resume) rerun[idx] = false;
    }
    journal = campaign::CampaignJournal::append_to(resume_path);
    if (journal == nullptr) {
      std::cerr << "fault_sweep: cannot append to journal '" << resume_path
                << "'\n";
      return 2;
    }
  } else if (!journal_path.empty()) {
    journal = campaign::CampaignJournal::create(journal_path, "fault_sweep");
    if (journal == nullptr) {
      std::cerr << "fault_sweep: cannot create journal '" << journal_path
                << "'\n";
      return 2;
    }
    for (usize i = 0; i < configs.size(); ++i)
      journal->record_planned(i, point_spec(configs[i]), configs[i].label);
    for (usize d = 0; d < debug_jobs.size(); ++d)
      journal->record_planned(configs.size() + d,
                              campaign::spec_hash(debug_jobs[d].label),
                              debug_jobs[d].label);
    if (inject_oversized)
      journal->record_planned(configs.size() + debug_jobs.size(),
                              campaign::spec_hash(kOversizedLabel),
                              kOversizedLabel);
  }

  // Digest-keyed cross-run cache: a planned job whose spec hash already has
  // a cleanly finished entry is served from the cache instead of
  // re-simulated; every fresh result is stored back after the sweep.
  std::unique_ptr<campaign::ResultCache> cache;
  std::map<usize, campaign::JobStats> cached_results;
  if (!cache_path.empty()) {
    cache = campaign::ResultCache::open(cache_path);
    if (cache == nullptr) {
      std::cerr << "fault_sweep: cannot open cache '" << cache_path << "'\n";
      return 2;
    }
    for (usize i = 0; !verify_resume && i < configs.size(); ++i) {
      if (!rerun[i]) continue;  // journal-restored already
      auto hit = cache->lookup(point_spec(configs[i]));
      if (!hit.has_value()) continue;
      hit->index = i;
      hit->label = configs[i].label;
      hit->from_cache = true;
      cached_results.emplace(i, std::move(*hit));
      rerun[i] = false;
      if (journal != nullptr) journal->record_cache_hit(point_spec(configs[i]));
    }
  }

  // Each policy/rate point is one campaign job; jobs get a generous
  // wall-clock budget and one retry so a wedged run is quarantined instead
  // of hanging the sweep. In process mode the heartbeat timeout also kills
  // children that die without exiting.
  campaign::JobOptions opt;
  opt.max_attempts = 2;
  opt.wall_timeout_seconds = 60.0;
  opt.heartbeat_timeout_seconds = 10.0;

  std::vector<campaign::JobStats> job_stats;
  usize threads_used = 1;
  bool interrupted = false;
  if (serial) {
    for (usize i = 0; i < configs.size(); ++i)
      campaign::run_inline(configs[i].label, job_stats,
                           [&](campaign::JobContext& ctx) {
                             return service::run_fault_point(configs[i], &ctx);
                           });
  } else {
    campaign::CampaignRunner runner(
        jobs != 0 ? jobs : campaign::default_thread_count(),
        processes ? campaign::ExecutionMode::kProcesses
                  : campaign::ExecutionMode::kThreads);
    threads_used = runner.thread_count();
    if (processes && runner.mode() != campaign::ExecutionMode::kProcesses)
      std::cerr << "fault_sweep: process isolation unavailable here, "
                   "running in thread mode\n";
    // SIGINT/SIGTERM land in an atomic flag; the runner's watchdog polls it
    // and broadcasts request_stop() to every guarded simulation, so the
    // sweep winds down with journaled, reportable partial results.
    campaign::install_stop_signal_handlers();
    runner.enable_signal_stop();
    if (journal != nullptr) runner.set_journal(journal.get());
    const auto job_label = [&](usize i) -> std::string {
      if (i < configs.size()) return configs[i].label;
      if (i < configs.size() + debug_jobs.size())
        return debug_jobs[i - configs.size()].label;
      return kOversizedLabel;
    };
    std::vector<std::pair<usize, std::future<service::FaultPointOutcome>>>
        futures;
    for (usize i = 0; i < n_jobs; ++i) {
      if (!rerun[i]) continue;
      campaign::JobOptions o = opt;
      o.stats_index = i;  // resumed jobs keep their original indices
      if (i < configs.size()) {
        o.spec = point_spec(configs[i]);
        const SweepConfig cfg = configs[i];
        futures.emplace_back(
            i, runner.submit(cfg.label, o, [cfg](campaign::JobContext& ctx) {
              return service::run_fault_point(cfg, &ctx);
            }));
      } else if (i < configs.size() + debug_jobs.size()) {
        const DebugJob& dbg = debug_jobs[i - configs.size()];
        o.spec = campaign::spec_hash(dbg.label);
        o.debug_failure = dbg.failure;
        if (dbg.failure == campaign::DebugFailure::kHangCpu) {
          // The spin never finishes; give the supervisor a short deadline
          // and do not retry what can only time out again.
          o.wall_timeout_seconds = 2.0;
          o.max_attempts = 1;
        }
        futures.emplace_back(
            i, runner.submit(dbg.label, o, [](campaign::JobContext&) {
              return service::FaultPointOutcome{};  // inert in thread mode
            }));
      } else {
        o.spec = campaign::spec_hash(kOversizedLabel);
        o.max_attempts = 1;  // a retry can only blow the budget again
        futures.emplace_back(
            i, runner.submit(kOversizedLabel, o, [](campaign::JobContext&) {
              kern::Simulation sim;
              kern::Module top(sim, "top");
              // 64 MiB of pages, far past any sensible sweep budget; touch
              // each page so the sparse store actually materialises them.
              constexpr usize kHugeWords = usize{16} << 20;
              mem::Memory big(top, "oversized_mem", 0, kHugeWords);
              for (usize w = 0; w < kHugeWords; w += mem::kPageWords)
                big.poke(static_cast<bus::addr_t>(w), 1);
              return service::FaultPointOutcome{};
            }));
      }
    }
    for (auto& [i, f] : futures) {
      try {
        (void)f.get();
      } catch (const std::exception& e) {
        std::cerr << job_label(i) << ": " << e.what() << '\n';
      }
    }
    runner.wait_idle();
    if (journal != nullptr) journal->flush();
    interrupted = campaign::signal_stop_requested();

    // Merge: placeholders for every point, journal-restored results under
    // them, cache-served results beside them, fresh results (keyed by their
    // original indices) on top.
    job_stats.resize(n_jobs);
    for (usize i = 0; i < n_jobs; ++i) {
      job_stats[i].index = i;
      job_stats[i].label = job_label(i);
    }
    for (const auto& [idx, stats] : restored) job_stats[idx] = stats;
    for (const auto& [idx, stats] : cached_results) job_stats[idx] = stats;
    for (const auto& rec : runner.stats())
      if (rec.index < job_stats.size() && rerun[rec.index])
        job_stats[rec.index] = rec;

    // Feed the cache with every cleanly finished fresh result (store()
    // ignores failed/quarantined/cache-served stats itself).
    if (cache != nullptr)
      for (usize i = 0; i < configs.size(); ++i)
        cache->store(point_spec(configs[i]), job_stats[i]);
  }

  Table t("Fault sweep: recovery policy x fetch error rate x scheduler (" +
          std::to_string(kSteps) + " steps, seed " + std::to_string(seed) +
          ")");
  t.header({"policy/rate/sched", "steps ok", "fetch errs", "retries",
            "fallbacks", "injected", "cache hits", "availability"});
  // Rows come from the stats' user_data payload, so journal-restored,
  // cache-served and process-mode jobs all print alongside fresh ones.
  for (const auto& s : job_stats) {
    const auto row = row_from_stats(s);
    if (!row.empty()) t.row(row);
  }
  t.print(std::cout);
  if (!resume_path.empty() && !verify_resume && !restored.empty())
    std::cout << restored.size()
              << " job(s) restored from the journal (not re-run)\n";
  if (!cached_results.empty())
    std::cout << cached_results.size()
              << " job(s) served from the result cache (not re-simulated)\n";
  if (interrupted)
    std::cerr << "fault_sweep: interrupted — report/journal hold partial "
                 "results; resume with --resume\n";

  int verify_failures = 0;
  if (verify_resume) {
    for (const auto& [idx, stats] : restored) {
      const campaign::JobStats& fresh = job_stats[idx];
      if (!fresh.done || fresh.digest != stats.digest) {
        std::cerr << "verify-resume: job " << idx << " (" << stats.label
                  << ") digest mismatch: journal "
                  << conformance::digest_str(stats.digest) << ", re-run "
                  << conformance::digest_str(fresh.digest) << '\n';
        ++verify_failures;
      }
    }
    if (verify_failures == 0 && !restored.empty())
      std::cout << restored.size()
                << " journaled digest(s) verified against re-runs\n";
  }

  if (!report_path.empty())
    campaign::write_report_file(report_path, "fault_sweep", threads_used,
                                job_stats);
  if (verify_failures > 0) return 4;
  if (interrupted) return 130;
  return 0;
}
