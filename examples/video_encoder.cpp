// Video encoder front-end: motion estimation (SAD), DCT and quantisation on
// 8x8 blocks. Demonstrates the partitioning advisor (paper Sec. 5.1 rules of
// thumb) driving the DRCF transformation: the advisor groups the blocks that
// should share a fabric, the transformation folds exactly that group, and
// the simulation verifies the encoded output is bit-identical to the
// hardwired architecture.
//
// Build & run:  ./build/examples/video_encoder
#include <iostream>

#include "accel/accel_lib.hpp"
#include "dse/advisor.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

constexpr bus::addr_t kDctBase = 0x100;
constexpr bus::addr_t kQuantBase = 0x200;
constexpr bus::addr_t kSadBase = 0x400;
constexpr bus::addr_t kRleBase = 0x300;
constexpr bus::addr_t kFrameBuf = 0x1000;
constexpr bus::addr_t kCoefBuf = 0x2000;
constexpr bus::addr_t kQuantBuf = 0x3000;
constexpr bus::addr_t kRleBuf = 0x4000;
constexpr int kBlocks = 8;

// Full-search motion estimation over a +-2 pixel window (the real kernel
// from the accelerator library).
constexpr int kSearchRange = 2;
constexpr usize kWindowWords = (8 + 2 * kSearchRange) * (8 + 2 * kSearchRange);

void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                     bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 100_ns);
  c.write(base + soc::HwAccel::kStatus, 0);
}

netlist::Design make_encoder() {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl dct;
  dct.base = kDctBase;
  dct.spec = accel::make_dct_spec();
  dct.slave_bus = dct.master_bus = "system_bus";
  d.add("dct", dct);

  netlist::HwAccelDecl quant;
  quant.base = kQuantBase;
  quant.spec = accel::make_quant_spec(75);
  quant.slave_bus = quant.master_bus = "system_bus";
  d.add("quant", quant);

  netlist::HwAccelDecl sad;
  sad.base = kSadBase;
  sad.spec = accel::make_motion_spec(kSearchRange);
  sad.slave_bus = sad.master_bus = "system_bus";
  d.add("sad", sad);

  netlist::HwAccelDecl rle;
  rle.base = kRleBase;
  rle.spec = accel::make_rle_spec();
  rle.slave_bus = rle.master_bus = "system_bus";
  d.add("rle", rle);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(7);
    for (int b = 0; b < kBlocks; ++b) {
      // Current block + reference search window.
      std::vector<bus::word> blocks(64 + kWindowWords);
      for (auto& px : blocks)
        px = static_cast<bus::word>(rng.next_range(0, 255));
      c.burst_write(kFrameBuf, blocks);
      // Full-search motion estimation for this block.
      run_accelerator(c, kSadBase, kFrameBuf, kFrameBuf + 400,
                      static_cast<u32>(64 + kWindowWords));
      // Transform + quantise the residual (here: the current block).
      run_accelerator(c, kDctBase, kFrameBuf, kCoefBuf, 64);
      run_accelerator(c, kQuantBase, kCoefBuf, kQuantBuf, 64);
      // Entropy coding: zigzag + RLE in hardware, bit packing in software.
      run_accelerator(c, kRleBase, kQuantBuf, kRleBuf, 64);
      c.compute(500);
    }
  };
  d.add("cpu", cpu);
  return d;
}

std::vector<bus::word> encoded_output(netlist::Design& d,
                                      kern::Time* elapsed) {
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  if (elapsed != nullptr) *elapsed = sim.now();
  std::vector<bus::word> out;
  // Quantised coefficients plus the RLE symbol stream of the last block.
  for (u32 i = 0; i < 64; ++i)
    out.push_back(e.get_memory("ram").peek(kQuantBuf + i));
  const auto symbols =
      static_cast<u32>(e.get_memory("ram").peek(kRleBuf));
  for (u32 i = 0; i <= symbols && i < 66; ++i)
    out.push_back(e.get_memory("ram").peek(kRleBuf + i));
  return out;
}

}  // namespace

int main() {
  // -- Ask the advisor which blocks should share a DRCF ----------------------
  std::vector<dse::BlockProfile> profile{
      {"dct", accel::make_dct_spec().gate_count, 0.25, {}, false, false},
      {"quant", accel::make_quant_spec(75).gate_count, 0.20, {}, false, false},
      {"rle", accel::make_rle_spec().gate_count, 0.20, {}, false, false},
      {"me", accel::make_motion_spec(kSearchRange).gate_count, 0.30, {}, false, false},
  };
  const auto advice = dse::advise_partitioning(profile);

  std::cout << "--- partitioning advisor (Sec. 5.1 rules of thumb) ---\n";
  for (const auto& r : advice.rationale) std::cout << "  " << r << '\n';

  std::vector<std::string> candidates;
  if (!advice.drcf_groups.empty())
    for (const usize idx : advice.drcf_groups[0])
      candidates.push_back(profile[idx].name);
  if (candidates.size() < 2) {
    std::cout << "advisor found no DRCF group; nothing to transform\n";
    return 0;
  }
  std::cout << "\nDRCF group: ";
  for (const auto& c : candidates) std::cout << c << ' ';
  std::cout << "\n\n";

  // -- Build both architectures and compare ----------------------------------
  auto hardwired = make_encoder();
  auto reconf = make_encoder();
  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::morphosys_like();  // coarse-grained fit
  opt.config_memory = "cfg_mem";
  const auto report = transform::transform_to_drcf(reconf, candidates, opt);
  if (!report.ok) {
    for (const auto& diag : report.diagnostics) std::cerr << diag << '\n';
    return 1;
  }

  kern::Time t_hw, t_rc;
  const auto out_hw = encoded_output(hardwired, &t_hw);
  const auto out_rc = encoded_output(reconf, &t_rc);

  if (out_hw != out_rc) {
    std::cerr << "MISMATCH: transformation changed functional behaviour!\n";
    return 1;
  }
  std::cout << "functional check: quantised + RLE streams identical across "
               "architectures\n\n";

  Table t("video encoder: " + std::to_string(kBlocks) + " macroblocks");
  t.header({"architecture", "total time", "per block [us]"});
  t.row({"dedicated me+dct+quant+rle", t_hw.str(),
         Table::num(t_hw.to_us() / kBlocks, 2)});
  t.row({"DRCF (" + opt.drcf_config.technology.name + ")", t_rc.str(),
         Table::num(t_rc.to_us() / kBlocks, 2)});
  t.print(std::cout);
  std::cout << "\nreconfiguration overhead per block: "
            << Table::num((t_rc - t_hw).to_us() / kBlocks, 2) << " us\n";
  return 0;
}
