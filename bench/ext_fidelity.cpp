// E11 — modeling-fidelity ablation. The paper's Sec. 4 criticises the
// OCAPI-XL-based related work because "the memory traffic associated to
// context switching is not modeled". This experiment quantifies what that
// omission costs: the same system is simulated with (a) the full DRCF model
// generating real configuration bus traffic and (b) an analytical-delay
// model with no bus traffic. Under increasing background bus load the
// analytical model's predicted switch time stays flat and its error grows —
// and it is blind to the bus slowdown the fetches inflict on OTHER masters.
#include <iostream>

#include "bench_common.hpp"
#include "soc/traffic_gen.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr int kSwitches = 16;
constexpr u64 kCtxWords = 2048;

struct Outcome {
  double mean_switch_us = 0.0;
  double traffic_latency_ns = 0.0;
};

Outcome run(bool model_traffic, kern::Time traffic_period) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  dc.model_config_traffic = model_traffic;
  // Calibrate the analytical model to the UNLOADED bus: a 2-cycle-per-16-word
  // chunk bus at 100 MHz moves ~94 words/us -> the analytical model is
  // exactly right when the bus is idle, and only wrong under contention.
  dc.assumed_fetch_words_per_us = 94.0;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  DrcfRig rig(2, kCtxWords, dc, bc);

  mem::Memory data_ram(rig.top, "data_ram", 0x8000, 4096);
  rig.sys_bus.bind_slave(data_ram);
  std::unique_ptr<soc::TrafficGen> traffic;
  if (!traffic_period.is_zero()) {
    soc::TrafficGenConfig tg;
    tg.base = 0x8000;
    tg.window_words = 4096;
    tg.burst_words = 16;
    tg.period = traffic_period;
    tg.seed = 5;
    traffic = std::make_unique<soc::TrafficGen>(rig.top, "traffic", tg);
    traffic->mst_port.bind(rig.sys_bus);
  }

  Outcome out;
  bool done = false;
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    const kern::Time t0 = rig.sim.now();
    for (int i = 0; i < kSwitches; ++i)
      rig.sys_bus.read(rig.ctx_addr(static_cast<usize>(i % 2)), &r, 10);
    out.mean_switch_us = (rig.sim.now() - t0).to_us() / kSwitches;
    done = true;
    rig.sim.stop();
  });
  rig.sim.run(kern::Time::ms(200));
  if (!done) {
    std::cerr << "fidelity run starved\n";
    std::exit(1);
  }
  if (traffic) out.traffic_latency_ns = traffic->mean_burst_latency_ns();
  return out;
}

}  // namespace

int main() {
  Table t("Fidelity ablation: full traffic model vs analytical delay "
          "(2048-word contexts, " +
          std::to_string(kSwitches) + " switches)");
  t.header({"background load", "full model switch [us]",
            "analytical switch [us]", "switch-time error [%]",
            "traffic latency, full [ns]", "traffic latency, blind [ns]"});

  const std::pair<const char*, kern::Time> loads[] = {
      {"none", kern::Time::zero()},
      {"light (burst/5us)", 5_us},
      {"medium (burst/2us)", 2_us},
      {"heavy (burst/500ns)", 500_ns},
  };

  bool error_grows = true;
  double last_err = -1.0;
  for (const auto& [label, period] : loads) {
    const auto full = run(true, period);
    const auto blind = run(false, period);
    const double err =
        (full.mean_switch_us - blind.mean_switch_us) / full.mean_switch_us *
        100.0;
    t.row({label, Table::num(full.mean_switch_us, 2),
           Table::num(blind.mean_switch_us, 2), Table::num(err, 1),
           period.is_zero() ? "-" : Table::num(full.traffic_latency_ns, 0),
           period.is_zero() ? "-" : Table::num(blind.traffic_latency_ns, 0)});
    if (!period.is_zero()) {
      if (err < last_err) error_grows = false;
      last_err = err;
    }
  }
  t.print(std::cout);

  std::cout
      << "\nshape checks: switch-time underestimation grows with bus load: "
      << (error_grows ? "YES" : "NO") << '\n'
      << "  * the analytical model also reports lower latency for OTHER\n"
      << "    masters, because the configuration fetches it fails to model\n"
      << "    would have stolen their bus cycles (paper Sec. 4's critique\n"
      << "    of the OCAPI-XL approach, made quantitative)\n";
  return error_grows ? 0 : 1;
}
