// E8 — extension study (the paper's Sec. 5.3 "other parameters, such as
// dealing with partial reconfiguration or power consumption, may be
// devised"): multi-slot DRCF (partial reconfiguration) under three access
// patterns, ablating slot count and replacement policy, with the energy
// accounting the paper also lists as future work.
#include <iostream>

#include "bench_common.hpp"
#include "util/random.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr usize kContexts = 6;
constexpr int kAccesses = 120;
constexpr u64 kCtxWords = 512;

enum class Pattern { kCyclic, kRandom, kSkewed };

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kCyclic:
      return "cyclic";
    case Pattern::kRandom:
      return "uniform random";
    case Pattern::kSkewed:
      return "skewed (80/20)";
  }
  return "?";
}

usize next_ctx(Pattern p, int i, Xoshiro256& rng) {
  switch (p) {
    case Pattern::kCyclic:
      return static_cast<usize>(i) % kContexts;
    case Pattern::kRandom:
      return static_cast<usize>(rng.next_below(kContexts));
    case Pattern::kSkewed:
      // 80% of accesses go to contexts 0-1.
      return rng.next_bool(0.8) ? rng.next_below(2)
                                : 2 + rng.next_below(kContexts - 2);
  }
  return 0;
}

struct Result {
  u64 switches;
  double hit_rate;
  kern::Time total;
  double energy_uj;
};

Result run(u32 slots, drcf::ReplacementPolicy policy, Pattern pattern) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.slots = slots;
  dc.replacement = policy;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  DrcfRig rig(kContexts, kCtxWords, dc, bc);
  rig.top.spawn_thread("driver", [&] {
    Xoshiro256 rng(42);
    bus::word r = 0;
    for (int i = 0; i < kAccesses; ++i) {
      rig.sys_bus.read(rig.ctx_addr(next_ctx(pattern, i, rng)), &r);
      kern::wait(1_us);
    }
  });
  rig.sim.run();
  const auto& s = rig.fabric.stats();
  Result res;
  res.switches = s.switches;
  res.hit_rate = static_cast<double>(s.hits) /
                 static_cast<double>(s.hits + s.misses);
  res.total = rig.sim.now();
  res.energy_uj = s.reconfig_energy_j * 1e6;
  return res;
}

}  // namespace

int main() {
  Table t("Extension - partial reconfiguration: slots x policy x pattern (" +
          std::to_string(kContexts) + " contexts, " +
          std::to_string(kAccesses) + " accesses)");
  t.header({"pattern", "slots", "policy", "switches", "hit rate",
            "total time [us]", "reconf energy [uJ]"});

  const std::pair<drcf::ReplacementPolicy, const char*> policies[] = {
      {drcf::ReplacementPolicy::kLru, "LRU"},
      {drcf::ReplacementPolicy::kFifo, "FIFO"},
      {drcf::ReplacementPolicy::kMru, "MRU"},
  };

  bool more_slots_help = true;
  for (const Pattern pattern :
       {Pattern::kCyclic, Pattern::kRandom, Pattern::kSkewed}) {
    u64 last_switches = ~0ULL;
    for (const u32 slots : {1u, 2u, 4u, 6u}) {
      for (const auto& [policy, pname] : policies) {
        if (slots == 1 && policy != drcf::ReplacementPolicy::kLru)
          continue;  // single slot: policy is irrelevant
        const auto r = run(slots, policy, pattern);
        t.row({pattern_name(pattern), Table::integer(slots), pname,
               Table::integer(static_cast<long long>(r.switches)),
               Table::num(r.hit_rate, 3), Table::num(r.total.to_us(), 1),
               Table::num(r.energy_uj, 2)});
        if (policy == drcf::ReplacementPolicy::kLru) {
          if (pattern == Pattern::kSkewed && slots > 1)
            more_slots_help &= r.switches <= last_switches;
          last_switches = r.switches;
        }
      }
    }
  }
  t.print(std::cout);

  std::cout
      << "\nshape checks:\n"
      << "  * slots == contexts -> switches == contexts (cold loads only)\n"
      << "  * cyclic + LRU thrashes when slots < contexts (classic LRU "
         "pathology; MRU wins there)\n"
      << "  * skewed pattern: more slots monotonically reduce switches: "
      << (more_slots_help ? "YES" : "NO") << '\n'
      << "  * energy tracks switch count x context size (power extension)\n";
  return more_slots_help ? 0 : 1;
}
