// E2 — Sec. 5.2 worked example: the automatic transformation of a top-level
// module with a hardware accelerator into one that instantiates a DRCF.
// Regenerates (i) the paper's before/after listings, (ii) a functional
// equivalence check of the two architectures, (iii) the cost of modeling:
// simulated time and event counts for the raw vs transformed model.
#include <iostream>

#include "accel/accel_lib.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

netlist::Design make_design() {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 4096;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 17;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl hwa;
  hwa.base = 0x100;
  hwa.spec = accel::make_crc_spec();
  hwa.slave_bus = hwa.master_bus = "system_bus";
  d.add("hwa", hwa);

  netlist::HwAccelDecl hwb;
  hwb.base = 0x200;
  hwb.spec = accel::make_quant_spec(75);
  hwb.slave_bus = hwb.master_bus = "system_bus";
  d.add("hwb", hwb);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    std::vector<bus::word> data(64);
    for (usize i = 0; i < data.size(); ++i)
      data[i] = static_cast<bus::word>(17 * i + 3);
    c.burst_write(0x1000, data);
    for (int round = 0; round < 3; ++round) {
      c.write(0x100 + soc::HwAccel::kSrc, 0x1000);
      c.write(0x100 + soc::HwAccel::kDst, 0x1100);
      c.write(0x100 + soc::HwAccel::kLen, 64);
      c.write(0x100 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x100 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   100_ns);
      c.write(0x100 + soc::HwAccel::kStatus, 0);
      c.write(0x200 + soc::HwAccel::kSrc, 0x1100);
      c.write(0x200 + soc::HwAccel::kDst, 0x1200);
      c.write(0x200 + soc::HwAccel::kLen, 64);
      c.write(0x200 + soc::HwAccel::kCtrl, 1);
      c.poll_until(0x200 + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                   100_ns);
      c.write(0x200 + soc::HwAccel::kStatus, 0);
    }
  };
  d.add("cpu", cpu);
  return d;
}

struct RunInfo {
  std::vector<bus::word> result;
  kern::Time sim_time;
  u64 activations;
  u64 deltas;
};

RunInfo run(netlist::Design& d) {
  kern::Simulation sim;
  netlist::Elaborated e(sim, d);
  sim.run();
  RunInfo r;
  for (u32 i = 0; i < 64; ++i)
    r.result.push_back(e.get_memory("ram").peek(0x1200 + i));
  r.sim_time = sim.now();
  r.activations = sim.activations();
  r.deltas = sim.delta_count();
  return r;
}

}  // namespace

int main() {
  auto original = make_design();
  auto transformed = make_design();

  transform::TransformOptions opt;
  opt.drcf_config.technology = drcf::varicore_like();
  opt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report =
      transform::transform_to_drcf(transformed, candidates, opt);
  if (!report.ok) {
    for (const auto& d : report.diagnostics) std::cerr << d << '\n';
    return 1;
  }

  std::cout << "=== phase 1+2: module & instance analysis ===\n";
  for (const auto& c : report.candidates) {
    std::cout << "  " << c.instance << ": interface " << c.interface
              << ", range [" << strfmt("0x%X", c.low) << ", "
              << strfmt("0x%X", c.high) << "], " << c.gates << " gates -> "
              << c.context_words << " config words @ "
              << strfmt("0x%X", c.config_address) << '\n';
    for (const auto& p : c.ports) std::cout << "      port    " << p << '\n';
    for (const auto& b : c.bindings)
      std::cout << "      binding " << b << '\n';
  }

  std::cout << "\n=== phase 3+4: listings (paper Sec. 5.2) ===\n";
  std::cout << "--- before ---\n" << report.before_listing;
  std::cout << "--- after ---\n" << report.after_listing << '\n';

  const auto r_orig = run(original);
  const auto r_drcf = run(transformed);

  const bool equivalent = r_orig.result == r_drcf.result;
  std::cout << "=== functional equivalence ===\n"
            << (equivalent ? "identical results across 3 rounds of "
                             "CRC+quantise on both architectures\n"
                           : "MISMATCH!\n");

  Table t("modeling cost: raw vs DRCF model");
  t.header({"model", "simulated time", "process activations", "delta cycles",
            "ctx switches"});
  t.row({"original (2 dedicated accelerators)", r_orig.sim_time.str(),
         Table::integer(static_cast<long long>(r_orig.activations)),
         Table::integer(static_cast<long long>(r_orig.deltas)), "-"});
  t.row({"transformed (1 DRCF)", r_drcf.sim_time.str(),
         Table::integer(static_cast<long long>(r_drcf.activations)),
         Table::integer(static_cast<long long>(r_drcf.deltas)), "6"});
  t.print(std::cout);

  std::cout << "\nDRCF adds "
            << Table::num(
                   (r_drcf.sim_time - r_orig.sim_time).to_us(), 1)
            << " us of reconfiguration to the application (6 switches)\n";
  return equivalent ? 0 : 1;
}
