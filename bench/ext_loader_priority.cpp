// E10 — extension ablation: bus priority of the DRCF's configuration
// fetches. On a shared, loaded bus the context-switch latency depends on who
// wins arbitration: a low-priority loader is starved by traffic, a
// high-priority loader starves the traffic. Sweeps loader priority against
// fixed-priority background masters under priority arbitration, and
// contrasts round-robin arbitration where priority is ignored.
#include <iostream>

#include "bench_common.hpp"
#include "soc/traffic_gen.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr int kSwitches = 16;
constexpr u64 kCtxWords = 1024;
constexpr u32 kTrafficPriority = 3;

struct Outcome {
  bool starved = false;  ///< Loader never won the bus within the time limit.
  kern::Time mean_switch;
  double traffic_latency_ns = 0.0;
};

Outcome run(bus::ArbPolicy policy, u32 loader_priority) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  dc.load_priority = loader_priority;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  bc.arbitration = policy;
  DrcfRig rig(2, kCtxWords, dc, bc);

  // Several background masters: priority arbitration only bites when more
  // than one requester is queued at once.
  mem::Memory data_ram(rig.top, "data_ram", 0x8000, 4096);
  rig.sys_bus.bind_slave(data_ram);
  std::vector<std::unique_ptr<soc::TrafficGen>> gens;
  for (int g = 0; g < 3; ++g) {
    soc::TrafficGenConfig tg;
    tg.base = 0x8000;
    tg.window_words = 4096;
    tg.burst_words = 16;
    tg.period = 150_ns;  // saturating
    tg.priority = kTrafficPriority;
    tg.seed = 7 + static_cast<u64>(g);
    gens.push_back(std::make_unique<soc::TrafficGen>(
        rig.top, "traffic" + std::to_string(g), tg));
    gens.back()->mst_port.bind(rig.sys_bus);
  }

  Outcome out{};
  bool driver_done = false;
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    const kern::Time t0 = rig.sim.now();
    // The driver's own register reads go at top priority; the measured
    // variable is purely the loader's priority.
    for (int i = 0; i < kSwitches; ++i)
      rig.sys_bus.read(rig.ctx_addr(static_cast<usize>(i % 2)), &r,
                       /*priority=*/10);
    out.mean_switch =
        kern::Time::ps((rig.sim.now() - t0).picoseconds() / kSwitches);
    driver_done = true;
    rig.sim.stop();
  });
  rig.sim.run(kern::Time::ms(100));
  out.starved = !driver_done;
  double lat = 0.0;
  for (const auto& g : gens) lat += g->mean_burst_latency_ns();
  out.traffic_latency_ns = lat / static_cast<double>(gens.size());
  return out;
}

}  // namespace

int main() {
  Table t("Extension - configuration-loader bus priority under heavy load "
          "(traffic priority " +
          std::to_string(kTrafficPriority) + ")");
  t.header({"arbitration", "loader priority", "mean switch [us]",
            "traffic burst latency [ns]"});

  std::vector<Outcome> prio_outcomes;
  for (const u32 prio : {0u, 3u, 7u}) {
    const auto o = run(bus::ArbPolicy::kPriority, prio);
    prio_outcomes.push_back(o);
    t.row({"priority", Table::integer(prio),
           o.starved ? "STARVED" : Table::num(o.mean_switch.to_us(), 2),
           Table::num(o.traffic_latency_ns, 0)});
  }
  for (const u32 prio : {0u, 7u}) {
    const auto o = run(bus::ArbPolicy::kRoundRobin, prio);
    t.row({"round-robin", Table::integer(prio),
           o.starved ? "STARVED" : Table::num(o.mean_switch.to_us(), 2),
           Table::num(o.traffic_latency_ns, 0)});
  }
  t.print(std::cout);

  const bool shape_ok =
      prio_outcomes[0].starved && !prio_outcomes[1].starved &&
      prio_outcomes[2].mean_switch < prio_outcomes[1].mean_switch &&
      prio_outcomes[2].traffic_latency_ns > prio_outcomes[1].traffic_latency_ns;
  std::cout << "\nshape checks: "
            << (shape_ok ? "YES" : "NO") << '\n'
            << "  * a loader below the traffic priority starves outright\n"
            << "  * raising the loader above the traffic shortens switches "
               "at the traffic's expense\n"
            << "  * under round-robin, the loader priority is ignored "
               "(rows match)\n";
  return shape_ok ? 0 : 1;
}
