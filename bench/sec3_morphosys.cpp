// E7 — Sec. 3c MorphoSys study: quantifies the double context plane.
// A tiled kernel alternates between two contexts per tile; the contexts for
// tile k+1 are DMA-loaded either into the inactive plane (background reload,
// the MorphoSys design point) or into the active plane (single-plane
// baseline). Reports stall cycles, overlap, and total cycles per tile count.
#include <iostream>

#include "morphosys/morphosys_lib.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::morphosys;

namespace {

struct RunStats {
  u64 cycles = 0;
  u64 stalls = 0;
  u64 overlapped = 0;
  double utilization = 0.0;
};

RunStats run_tiles(int tiles, bool background_reload) {
  Machine machine;
  // Two contexts: scale and accumulate, as in a separable filter.
  Context scale;
  for (auto& w : scale.rows) {
    w.op = RcOp::kMul;
    w.src_a = MuxSel::kFrameBuf;
    w.src_b = MuxSel::kImm;
    w.imm = 13;
    w.dst_reg = 0;
  }
  Context acc;
  for (auto& w : acc.rows) {
    w.op = RcOp::kAdd;
    w.src_a = MuxSel::kReg0;
    w.src_b = MuxSel::kReg2;
    w.dst_reg = 2;
    w.write_fb = true;
  }
  machine.store_context_image(0x4000, scale);
  machine.store_context_image(0x4008, acc);

  std::vector<i32> tile(64, 9);
  machine.mem_load(0x100, tile);

  // Per tile: load contexts into the chosen plane, stream data, execute.
  // With background_reload the load targets the plane NOT currently
  // executing, so RAEXEC never stalls on it.
  std::string src = R"(
    ADDI r1, r0, 0x100
    ADDI r2, r0, 0
    ADDI r4, r0, 0x4000
    DMACL 0, r4, 2
    WAITDMA
    DMALD r1, r2, 64
    WAITDMA
  )";
  for (int t = 0; t < tiles; ++t) {
    const int exec_plane = background_reload ? (t % 2) : 0;
    const int load_plane = background_reload ? ((t + 1) % 2) : 0;
    // Kick the next tile's context load, then execute this tile.
    src += "    DMACL " + std::to_string(load_plane) + ", r4, 2\n";
    src += "    RAEXEC " + std::to_string(exec_plane) + ", 0, r2, 8\n";
    src += "    RAEXEC " + std::to_string(exec_plane) + ", 1, r2, 8\n";
  }
  src += "    WAITDMA\n    HALT\n";

  const auto prog = assemble(src);
  if (!machine.run(prog, 10'000'000)) {
    std::cerr << "morphosys program did not halt\n";
    std::exit(1);
  }
  RunStats rs;
  rs.cycles = machine.stats().cycles;
  rs.stalls = machine.stats().ra_stall_cycles;
  rs.overlapped = machine.stats().overlapped_cycles;
  rs.utilization = machine.array_utilization();
  return rs;
}

}  // namespace

int main() {
  Table t("Sec. 3c - MorphoSys double context plane: background reload");
  t.header({"tiles", "plane policy", "total cycles", "RA stall cycles",
            "overlapped cycles", "array util [%]"});

  bool shape_ok = true;
  for (const int tiles : {2, 4, 8, 16}) {
    const auto bg = run_tiles(tiles, true);
    const auto single = run_tiles(tiles, false);
    t.row({Table::integer(tiles), "double plane (reload other)",
           Table::integer(static_cast<long long>(bg.cycles)),
           Table::integer(static_cast<long long>(bg.stalls)),
           Table::integer(static_cast<long long>(bg.overlapped)),
           Table::num(bg.utilization * 100.0, 1)});
    t.row({Table::integer(tiles), "single plane (reload same)",
           Table::integer(static_cast<long long>(single.cycles)),
           Table::integer(static_cast<long long>(single.stalls)),
           Table::integer(static_cast<long long>(single.overlapped)),
           Table::num(single.utilization * 100.0, 1)});
    shape_ok &= bg.stalls == 0;
    shape_ok &= single.stalls > 0;
    shape_ok &= bg.cycles < single.cycles;
  }
  t.print(std::cout);

  std::cout << "\nshape checks: double plane has zero stalls, single plane "
               "stalls on every reload, double plane is faster: "
            << (shape_ok ? "YES" : "NO")
            << "\n(paper: \"While the RC array is executing one of the 16 "
               "contexts, the other 16 contexts can be reloaded\")\n";
  return shape_ok ? 0 : 1;
}
