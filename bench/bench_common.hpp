// Shared scaffolding for the experiment harnesses: a minimal DRCF system
// builder and the register-poke helpers the drivers use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/bus_lib.hpp"
#include "drcf/drcf_lib.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "soc/soc_lib.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace adriatic::bench {

/// A minimal bus slave with a fixed address window; reads return the offset,
/// writes are accepted. Serves as a context body when the experiment only
/// cares about switching behaviour, not kernel functionality.
class StubSlave : public kern::Module, public bus::BusSlaveIf {
 public:
  StubSlave(kern::Object& parent, std::string name, bus::addr_t low,
            bus::addr_t high)
      : Module(parent, std::move(name)), low_(low), high_(high) {}

  [[nodiscard]] bus::addr_t get_low_add() const override { return low_; }
  [[nodiscard]] bus::addr_t get_high_add() const override { return high_; }
  bool read(bus::addr_t add, bus::word* data) override {
    if (add < low_ || add > high_) return false;
    *data = static_cast<bus::word>(add - low_);
    ++accesses;
    return true;
  }
  bool write(bus::addr_t add, bus::word*) override {
    if (add < low_ || add > high_) return false;
    ++accesses;
    return true;
  }

  u64 accesses = 0;

 private:
  bus::addr_t low_;
  bus::addr_t high_;
};

/// Bus + configuration memory + N stub contexts folded into one DRCF.
struct DrcfRig {
  DrcfRig(usize n_contexts, u64 context_words, drcf::DrcfConfig drcf_cfg,
          bus::BusConfig bus_cfg = {}, bool dedicated_cfg_link = false)
      : sys_bus(top, "bus", bus_cfg),
        cfg_mem(top, "cfg_mem", 0x100000,
                std::max<usize>(1024, n_contexts * context_words + 64)),
        fabric(top, "drcf1", drcf_cfg) {
    for (usize i = 0; i < n_contexts; ++i) {
      const auto base = static_cast<bus::addr_t>(0x100 + i * 0x100);
      slaves.push_back(std::make_unique<StubSlave>(
          top, "ctx" + std::to_string(i), base, base + 0xF));
      fabric.add_context(
          *slaves.back(),
          {.config_address =
               0x100000 + static_cast<bus::addr_t>(i * context_words),
           .size_words = context_words});
    }
    sys_bus.bind_slave(fabric);
    if (dedicated_cfg_link) {
      cfg_link = std::make_unique<bus::DirectLink>(top, "cfg_link",
                                                   bus_cfg.cycle_time);
      cfg_link->bind_slave(cfg_mem);
      fabric.mst_port.bind(*cfg_link);
    } else {
      sys_bus.bind_slave(cfg_mem);
      fabric.mst_port.bind(sys_bus);
    }
  }

  [[nodiscard]] bus::addr_t ctx_addr(usize i) const {
    return static_cast<bus::addr_t>(0x100 + i * 0x100);
  }

  kern::Simulation sim;
  kern::Module top{sim, "top"};
  bus::Bus sys_bus;
  mem::Memory cfg_mem;
  std::unique_ptr<bus::DirectLink> cfg_link;
  std::vector<std::unique_ptr<StubSlave>> slaves;
  drcf::Drcf fabric;
};

/// Drives one accelerator run through its register window and waits for
/// completion by polling STATUS.
inline void run_accelerator(soc::Cpu& c, bus::addr_t base, bus::addr_t src,
                            bus::addr_t dst, u32 len) {
  c.write(base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
  c.write(base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
  c.write(base + soc::HwAccel::kLen, static_cast<bus::word>(len));
  c.write(base + soc::HwAccel::kCtrl, 1);
  c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone,
               kern::Time::ns(100));
  c.write(base + soc::HwAccel::kStatus, 0);
}

}  // namespace adriatic::bench
