// E6 — Sec. 5.5 / Sec. 3 technology study: the same application mapped onto
// the three technology classes the paper surveys. For each: context size,
// reconfiguration latency and energy, fabric area, and total application
// time — "all these parameters are so technology dependent that there can
// not be a generalized way"; the table is exactly what the parameterised
// methodology produces instead.
#include <future>
#include <iostream>

#include "accel/accel_lib.hpp"
#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "estimate/area.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr int kPhases = 12;  // application phases, each using one of 3 blocks

struct TechResult {
  u64 ctx_words_small = 0;   // 6k-gate quantiser
  u64 ctx_words_large = 0;   // 45k-gate Viterbi
  kern::Time mean_switch;
  double energy_uj = 0.0;
  u64 fabric_gate_eq = 0;
  kern::Time app_time;
};

TechResult run(const drcf::ReconfigTechnology& tech) {
  TechResult r;
  const u64 small_gates = accel::make_quant_spec(75).gate_count;
  const u64 large_gates = accel::make_viterbi_spec().gate_count;
  r.ctx_words_small = tech.context_words(small_gates);
  r.ctx_words_large = tech.context_words(large_gates);

  const std::vector<u64> gates{small_gates, 22'000, large_gates};
  r.fabric_gate_eq =
      estimate::drcf_area(gates, tech, 1).total_gate_equivalents();

  drcf::DrcfConfig dc;
  dc.technology = tech;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  // Use the largest context size so the rig's config memory fits them all.
  const u64 ctx_words = std::max<u64>(1, tech.context_words(22'000));
  DrcfRig rig(3, ctx_words, dc, bc);

  rig.top.spawn_thread("driver", [&] {
    bus::word v = 0;
    const kern::Time t0 = rig.sim.now();
    for (int p = 0; p < kPhases; ++p) {
      rig.sys_bus.read(rig.ctx_addr(static_cast<usize>(p % 3)), &v);
      kern::wait(20_us);  // phase work
    }
    r.app_time = rig.sim.now() - t0;
  });
  rig.sim.run();
  const auto& fs = rig.fabric.stats();
  r.mean_switch =
      fs.switches == 0
          ? kern::Time::zero()
          : kern::Time::ps(fs.reconfig_busy_time.picoseconds() / fs.switches);
  r.energy_uj = fs.reconfig_energy_j * 1e6;
  return r;
}

}  // namespace

int main() {
  Table t("Sec. 5.5 - technology-dependent modeling parameters");
  t.header({"technology", "grain", "bits/gate", "ctx words (6k gates)",
            "ctx words (45k gates)", "mean switch [us]",
            "reconf energy [uJ]", "fabric area [gate-eq]",
            "app time [us] (12 phases)"});

  struct Named {
    drcf::ReconfigTechnology tech;
    const char* grain;
  };
  const Named techs[] = {
      {drcf::virtex2pro_like(), "fine (1-bit)"},
      {drcf::varicore_like(), "fine (embedded)"},
      {drcf::morphosys_like(), "coarse (16-bit)"},
  };

  // Each technology study is an independent simulation: run all three
  // concurrently through the campaign engine, print in submission order.
  campaign::CampaignRunner runner(campaign::default_thread_count());
  std::vector<std::future<TechResult>> futures;
  for (const auto& [tech, grain] : techs)
    futures.push_back(runner.submit(tech.name, [t = tech] { return run(t); }));

  std::vector<double> switch_us;
  for (usize i = 0; i < futures.size(); ++i) {
    const auto& [tech, grain] = techs[i];
    const auto r = futures[i].get();
    switch_us.push_back(r.mean_switch.to_us());
    t.row({tech.name, grain, Table::num(tech.bits_per_gate, 1),
           Table::integer(static_cast<long long>(r.ctx_words_small)),
           Table::integer(static_cast<long long>(r.ctx_words_large)),
           Table::num(r.mean_switch.to_us(), 2), Table::num(r.energy_uj, 2),
           Table::integer(static_cast<long long>(r.fabric_gate_eq)),
           Table::num(r.app_time.to_us(), 1)});
  }
  t.print(std::cout);

  const bool ordered =
      switch_us[0] > switch_us[1] && switch_us[1] > switch_us[2];
  std::cout << "\nshape checks:\n"
            << "  * switch cost: fine-grain >> embedded > coarse-grain: "
            << (ordered ? "YES" : "NO") << '\n'
            << "  * paper's VariCore power figure (0.075 uW/gate/MHz) is the "
               "middle column's energy driver\n"
            << "  * 'no generalized model is possible' (Sec. 5.5): the three "
               "rows differ by orders of magnitude from parameters alone\n";
  return ordered ? 0 : 1;
}
