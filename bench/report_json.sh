#!/usr/bin/env sh
# Runs the kernel/methodology microbenchmark suite with JSON output and
# writes BENCH_meth_sim_speed.json at the repo root, so the performance
# trajectory (items/sec per benchmark, campaign jobs/sec per thread count)
# is tracked from PR to PR. Also exposed as the `bench_report` CMake target.
#
# Usage: bench/report_json.sh [BUILD_DIR] [OUT_FILE]
set -eu

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(dirname -- "$SCRIPT_DIR")
BUILD_DIR=${1:-"$REPO_ROOT/build"}
OUT=${2:-"$REPO_ROOT/BENCH_meth_sim_speed.json"}

BIN="$BUILD_DIR/bench/meth_sim_speed"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target meth_sim_speed)" >&2
  exit 1
fi

"$BIN" --benchmark_out="$OUT" --benchmark_out_format=json \
       --benchmark_format=console
echo "wrote $OUT"
