#!/usr/bin/env sh
# Runs the kernel/methodology microbenchmark suite with JSON output and
# writes BENCH_meth_sim_speed.json at the repo root, so the performance
# trajectory (items/sec per benchmark, campaign jobs/sec per thread count)
# is tracked from PR to PR. Also exposed as the `bench_report` CMake target.
#
# The committed baseline is only meaningful from an optimized build: the
# script refuses a build directory that is not configured Release (or
# RelWithDebInfo), and refuses to overwrite the output with numbers from a
# binary compiled without NDEBUG (the "adriatic_build_type" context entry
# the benchmark embeds in its JSON).
#
# Usage: bench/report_json.sh [BUILD_DIR] [OUT_FILE]
set -eu

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(dirname -- "$SCRIPT_DIR")
BUILD_DIR=${1:-"$REPO_ROOT/build-release"}
OUT=${2:-"$REPO_ROOT/BENCH_meth_sim_speed.json"}

BUILD_TYPE=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)
case "$BUILD_TYPE" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *)
    echo "error: $BUILD_DIR is configured as '${BUILD_TYPE:-unknown}', not an optimized build." >&2
    echo "  cmake -B build-release -S $REPO_ROOT -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build build-release --target meth_sim_speed" >&2
    exit 1
    ;;
esac

BIN="$BUILD_DIR/bench/meth_sim_speed"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (cmake --build $BUILD_DIR --target meth_sim_speed)" >&2
  exit 1
fi

# Write to a temp file first: the tracked baseline must never be replaced by
# a run that turns out to come from a debug binary.
TMP="$OUT.tmp"
trap 'rm -f "$TMP"' EXIT
"$BIN" --benchmark_out="$TMP" --benchmark_out_format=json \
       --benchmark_format=console
if ! grep -q '"adriatic_build_type": "release"' "$TMP"; then
  echo "error: $BIN reports a debug build; refusing to overwrite $OUT" >&2
  exit 1
fi
mv "$TMP" "$OUT"
trap - EXIT
echo "wrote $OUT"
