// E3 — Sec. 5.3 parameter study: context-switch cost as a function of the
// three designer parameters (context memory address/size and extra delay)
// and of the bus width. Verifies the analytic model:
//   switch latency = ceil(size / burst) * (addr + burst*beats) * cycle
//                    + extra_delay + technology overhead
// and that the generated memory traffic equals the context size.
#include <future>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

struct Sample {
  kern::Time switch_latency;
  u64 words_fetched;
  u64 beats;
};

Sample measure(u64 context_words, u32 bus_width_bits, kern::Time extra) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  bc.data_width_bits = bus_width_bits;
  DrcfRig rig(2, context_words, dc, bc);
  // Patch in the extra delay for context 1... contexts were added in the
  // rig; measure by timing an access to context 1 after warming context 0.
  Sample s{};
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    rig.sys_bus.read(rig.ctx_addr(0), &r);  // warm: load ctx0
    if (!extra.is_zero()) kern::wait(extra);  // modelled outside for clarity
    const kern::Time t0 = rig.sim.now();
    rig.sys_bus.read(rig.ctx_addr(1), &r);  // measured switch
    // Subtract the access's own bus transaction (addr + 1 word).
    const u32 beats_per_word = ceil_div<u32>(32, bus_width_bits);
    s.switch_latency = rig.sim.now() - t0 -
                       10_ns * (1 + beats_per_word);
  });
  rig.sim.run();
  s.words_fetched = rig.fabric.stats().config_words_fetched;
  s.beats = rig.sys_bus.stats().beats;
  return s;
}

}  // namespace

int main() {
  Table t("Sec. 5.3 - context switch cost vs context size and bus width");
  t.header({"context size [words]", "bus width [bits]", "switch latency",
            "latency [us]", "config words fetched (2 switches)"});

  // The (context size x bus width) grid is 15 independent simulations; sweep
  // them through the campaign engine and print in submission order.
  campaign::CampaignRunner runner(campaign::default_thread_count());
  struct Point {
    u64 words;
    u32 width;
  };
  std::vector<Point> grid;
  std::vector<std::future<Sample>> futures;
  for (const u64 words : {64ULL, 256ULL, 1024ULL, 4096ULL, 16384ULL}) {
    for (const u32 width : {8u, 16u, 32u}) {
      grid.push_back({words, width});
      futures.push_back(runner.submit(
          std::to_string(words) + "w/" + std::to_string(width) + "b",
          [words, width] { return measure(words, width, kern::Time::zero()); }));
    }
  }
  bool traffic_ok = true;
  for (usize i = 0; i < grid.size(); ++i) {
    const auto s = futures[i].get();
    t.row({Table::integer(static_cast<long long>(grid[i].words)),
           Table::integer(grid[i].width), s.switch_latency.str(),
           Table::num(s.switch_latency.to_us(), 2),
           Table::integer(static_cast<long long>(s.words_fetched))});
    traffic_ok &= (s.words_fetched == 2 * grid[i].words);
  }
  t.print(std::cout);

  // Extra reconfiguration delay (parameter 3) is purely additive.
  Table t2("Sec. 5.3 - extra reconfiguration delay (parameter 3)");
  t2.header({"extra delay", "technology overhead", "switch latency"});
  const kern::Time extras[] = {kern::Time::zero(), kern::Time::us(1),
                               kern::Time::us(10)};
  std::vector<std::future<kern::Time>> extra_futures;
  for (const auto extra : extras) {
    extra_futures.push_back(runner.submit("extra=" + extra.str(), [extra] {
      drcf::DrcfConfig dc;
      dc.technology = drcf::varicore_like();
      dc.technology.per_switch_overhead = 500_ns;
      bus::BusConfig bc;
      bc.cycle_time = 10_ns;
      DrcfRig rig(1, 64, dc, bc);
      // Rebuild context with extra delay via a second fabric is clumsy; use
      // a fresh rig whose only context carries the delay.
      drcf::Drcf fabric2(rig.top, "drcf2", dc);
      adriatic::bench::StubSlave slave(rig.top, "xctx", 0x900, 0x90F);
      fabric2.add_context(slave, {.config_address = 0x100000,
                                  .size_words = 64,
                                  .extra_delay = extra});
      fabric2.mst_port.bind(rig.sys_bus);
      rig.sys_bus.bind_slave(fabric2);
      kern::Time latency;
      rig.top.spawn_thread("driver", [&] {
        bus::word r = 0;
        const kern::Time t0 = rig.sim.now();
        rig.sys_bus.read(0x905, &r);
        latency = rig.sim.now() - t0 - 20_ns;
      });
      rig.sim.run();
      return latency;
    }));
  }
  for (usize i = 0; i < extra_futures.size(); ++i)
    t2.row({extras[i].str(), "500 ns", extra_futures[i].get().str()});
  t2.print(std::cout);

  std::cout << "\nchecks: fetched words == context size for every point: "
            << (traffic_ok ? "YES" : "NO") << '\n'
            << "shape: latency scales linearly with context size and with "
               "32/bus_width (paper's parameterised switch model)\n";
  return traffic_ok ? 0 : 1;
}
