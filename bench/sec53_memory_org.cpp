// E4 — Sec. 5.3/5.4 memory-organisation study: "this methodology may be used
// to measure the effects of different memory organisations ... to the total
// system performance." Compares, under increasing background bus load:
//   A. shared split-transaction bus for data + configuration
//   B. dedicated configuration link
//   C. shared NON-split bus (the paper's limitation-3 deadlock, detected)
#include <iostream>

#include "bench_common.hpp"
#include "soc/traffic_gen.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr int kSwitches = 20;
constexpr u64 kContextWords = 1024;

struct Outcome {
  bool deadlocked = false;
  kern::Time total_time;
  kern::Time mean_switch;
  double traffic_latency_ns = 0.0;  // background traffic mean burst latency
};

Outcome run(bool split, bool dedicated_link, kern::Time traffic_period) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  bc.split_transactions = split;
  DrcfRig rig(2, kContextWords, dc, bc, dedicated_link);

  // Background masters working a data memory on the system bus; they fight
  // the context loader for bus bandwidth whenever configuration fetches
  // share that bus, and are untouched when fetches use a dedicated link.
  mem::Memory data_ram(rig.top, "data_ram", 0x8000, 4096);
  rig.sys_bus.bind_slave(data_ram);
  std::unique_ptr<soc::TrafficGen> traffic;
  if (!traffic_period.is_zero()) {
    soc::TrafficGenConfig tg;
    tg.base = 0x8000;
    tg.window_words = 4096;
    tg.burst_words = 16;
    tg.period = traffic_period;
    tg.seed = 99;
    traffic = std::make_unique<soc::TrafficGen>(rig.top, "traffic", tg);
    traffic->mst_port.bind(rig.sys_bus);
  }

  Outcome out;
  bool driver_done = false;
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    const kern::Time t0 = rig.sim.now();
    for (int i = 0; i < kSwitches; ++i)
      rig.sys_bus.read(rig.ctx_addr(static_cast<usize>(i % 2)), &r);
    out.total_time = rig.sim.now() - t0;
    driver_done = true;
    rig.sim.stop();
  });
  rig.sim.run(kern::Time::ms(50));
  if (!driver_done) {
    // Either the whole simulation starved, or the background traffic kept
    // time advancing while the DRCF call hung: both are the limitation-3
    // deadlock.
    out.deadlocked = true;
    return out;
  }
  out.mean_switch = kern::Time::ps(out.total_time.picoseconds() / kSwitches);
  if (traffic) out.traffic_latency_ns = traffic->mean_burst_latency_ns();
  return out;
}

}  // namespace

int main() {
  Table t("Sec. 5.3/5.4 - configuration-memory organisation (" +
          std::to_string(kSwitches) + " context switches, 1k-word contexts)");
  t.header({"organisation", "background load", "outcome", "mean switch [us]",
            "traffic burst latency [ns]"});

  struct Row {
    const char* org;
    bool split;
    bool link;
  };
  const Row orgs[] = {
      {"shared bus, split transactions", true, false},
      {"dedicated configuration link", true, true},
      {"shared bus, BLOCKING transactions", false, false},
      {"blocking bus + dedicated link", false, true},
  };
  const std::pair<const char*, kern::Time> loads[] = {
      {"none", kern::Time::zero()},
      {"light (burst/10us)", 10_us},
      {"heavy (burst/1us)", 1_us},
  };

  bool deadlock_seen = false;
  for (const auto& org : orgs) {
    for (const auto& [load_name, period] : loads) {
      const auto o = run(org.split, org.link, period);
      if (o.deadlocked) {
        deadlock_seen = true;
        t.row({org.org, load_name, "DEADLOCK (limitation 3)", "-", "-"});
      } else {
        t.row({org.org, load_name, "ok", Table::num(o.mean_switch.to_us(), 2),
               period.is_zero() ? "-" : Table::num(o.traffic_latency_ns, 0)});
      }
    }
  }
  t.print(std::cout);

  std::cout
      << "\nshape checks:\n"
      << "  * shared blocking bus deadlocks (paper limitation 3): "
      << (deadlock_seen ? "reproduced" : "NOT SEEN") << '\n'
      << "  * a dedicated link isolates switches from background load\n"
      << "  * on the shared bus, heavy load inflates both switch time and\n"
      << "    the background traffic's own latency (mutual interference)\n";
  return deadlock_seen ? 0 : 1;
}
