// E12 — link-level workload study: BER curves for the WLAN-style link built
// from the repository's kernels (K=7 convolutional code + Viterbi decoder,
// block interleaver) over the two channel models. Regenerates the classic
// shapes: coding gain below the hard-decision threshold, the coded/uncoded
// crossover above it, and interleaving gain on burst channels.
#include <cmath>
#include <iostream>

#include "comm/channel.hpp"
#include "comm/link.hpp"
#include "comm/ofdm.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace adriatic;
using namespace adriatic::comm;

int main() {
  constexpr usize kFrames = 25;

  Table t1("BER vs channel error rate (BSC, " + std::to_string(kFrames) +
           " frames x 960 bits)");
  t1.header({"channel BER", "uncoded BER", "coded BER (K=7)", "coded FER",
             "coding gain"});

  bool gain_at_low_p = true;
  bool crossover_seen = false;
  for (const double p :
       {0.001, 0.005, 0.01, 0.02, 0.04, 0.08, 0.12}) {
    LinkConfig uncoded;
    uncoded.coded = false;
    LinkConfig coded;
    BscChannel ch_u(p, 100);
    BscChannel ch_c(p, 100);
    const auto r_u = run_link(ch_u, uncoded, kFrames);
    const auto r_c = run_link(ch_c, coded, kFrames);
    const double gain =
        r_c.ber() > 0.0 ? r_u.ber() / r_c.ber()
                        : static_cast<double>(r_u.payload_bits);
    t1.row({Table::num(p, 3), Table::num(r_u.ber(), 5),
            Table::num(r_c.ber(), 5), Table::num(r_c.fer(), 2),
            r_c.ber() > 0.0 ? Table::num(gain, 1) + "x" : ">uncounted"});
    if (p <= 0.02 && r_c.ber() >= r_u.ber()) gain_at_low_p = false;
    if (p >= 0.08 && r_c.ber() > r_u.ber()) crossover_seen = true;
  }
  t1.print(std::cout);

  Table t2("Burst channel (Gilbert-Elliott): interleaving ablation");
  t2.header({"mean burst [bits]", "avg channel BER", "coded BER",
             "coded+interleaved BER", "interleaving gain"});
  bool interleave_helps = true;
  for (const double mean_burst : {4.0, 8.0, 16.0}) {
    GilbertElliottParams p;
    p.p_bad_to_good = 1.0 / mean_burst;
    p.p_good_to_bad = 0.02 / mean_burst;  // keep average rate comparable
    p.error_rate_good = 0.001;
    p.error_rate_bad = 0.45;
    LinkConfig plain;
    LinkConfig inter;
    inter.interleave = true;
    inter.interleave_rows = 32;
    inter.interleave_cols = 61;
    GilbertElliottChannel ch1(p, 5);
    GilbertElliottChannel ch2(p, 5);
    const auto r_plain = run_link(ch1, plain, kFrames);
    const auto r_inter = run_link(ch2, inter, kFrames);
    const double gain = r_inter.ber() > 0.0
                            ? r_plain.ber() / r_inter.ber()
                            : static_cast<double>(r_plain.payload_bits);
    t2.row({Table::num(mean_burst, 0),
            Table::num(ch1.average_error_rate(), 4),
            Table::num(r_plain.ber(), 5), Table::num(r_inter.ber(), 5),
            r_inter.ber() > 0.0 ? Table::num(gain, 1) + "x" : "inf"});
    if (r_inter.ber() >= r_plain.ber() && r_plain.ber() > 0.0)
      interleave_helps = false;
  }
  t2.print(std::cout);

  // OFDM physical layer: measured QPSK BER over AWGN vs the Q-function
  // prediction. With our DFT-scaled-by-1/N receiver, the per-bin decision
  // distance is A/N against noise sigma_t/sqrt(N), so
  // BER_theory = Q(A / (sigma_t * sqrt(N))).
  Table t3("OFDM/QPSK over AWGN: measured vs theoretical BER");
  t3.header({"time-domain sigma", "measured BER", "theoretical Q()",
             "ratio"});
  OfdmParams p;
  Xoshiro256 rng(2026);
  std::vector<u8> bits(64 * 1024);
  for (auto& b : bits) b = static_cast<u8>(rng.next() & 1);
  auto q_func = [](double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); };
  bool theory_matches = true;
  for (const double sigma : {600.0, 800.0, 1024.0, 1400.0}) {
    comm::AwgnChannel ch(sigma, 9);
    const double measured = bit_error_rate(bits, ofdm_link(bits, p, ch));
    const double arg = static_cast<double>(p.amplitude) /
                       (sigma * std::sqrt(static_cast<double>(
                                    p.n_subcarriers)));
    const double theory = q_func(arg);
    const double ratio = theory > 0.0 ? measured / theory : 0.0;
    t3.row({Table::num(sigma, 0), Table::num(measured, 5),
            Table::num(theory, 5), Table::num(ratio, 2)});
    if (theory > 1e-4 && (ratio < 0.5 || ratio > 2.0)) theory_matches = false;
  }
  t3.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  * coding gain below the hard-decision threshold (p <= 2%): "
            << (gain_at_low_p ? "YES" : "NO") << '\n'
            << "  * coded link degrades past the threshold (p >= 8%): "
            << (crossover_seen ? "YES" : "NO") << '\n'
            << "  * interleaving cuts residual BER on burst channels: "
            << (interleave_helps ? "YES" : "NO") << '\n'
            << "  * OFDM/QPSK BER tracks the Q-function within 2x: "
            << (theory_matches ? "YES" : "NO") << '\n';
  return gain_at_low_p && interleave_helps && theory_matches ? 0 : 1;
}
