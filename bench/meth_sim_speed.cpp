// E9 — methodology cost: the paper's pitch is "quick design space
// exploration", so the models must simulate fast. Google-benchmark
// microbenchmarks of the kernel primitives and of the DRCF wrapper's
// overhead versus a raw accelerator model.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "accel/accel_lib.hpp"
#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "conformance/digest.hpp"
#include "memory/memory.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;

namespace {

// -- Kernel primitives ---------------------------------------------------------

void BM_EventNotifyWait(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  kern::Event ping(sim, "ping"), pong(sim, "pong");
  u64 round_trips = 0;
  top.spawn_thread("a", [&] {
    for (;;) {
      ping.notify_delta();
      kern::wait(pong);
    }
  });
  top.spawn_thread("b", [&] {
    for (;;) {
      kern::wait(ping);
      ++round_trips;
      // The ping-pong lives entirely in delta cycles (time never advances);
      // punch out of run() every 1000 round trips.
      if (round_trips % 1000 == 0) sim.stop();
      pong.notify_delta();
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run();
  state.SetItemsProcessed(static_cast<i64>(round_trips));
}
BENCHMARK(BM_EventNotifyWait);

void BM_TimedEvents(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  u64 wakes = 0;
  top.spawn_thread("t", [&] {
    for (;;) {
      kern::wait(1_ns);
      ++wakes;
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(1));  // 1000 timed wakeups
  state.SetItemsProcessed(static_cast<i64>(wakes));
}
BENCHMARK(BM_TimedEvents);

// Cost of the scheduler-trace hook (docs/conformance.md): Arg(0) runs with no
// observer — the claimed one-predicted-branch-per-record configuration every
// simulation pays — and Arg(1) with a TraceDigest folding every record, the
// price of leaving conformance tracing on during a full run.
void BM_SchedTraceDigest(benchmark::State& state) {
  kern::Simulation sim;
  conformance::TraceDigest digest;
  if (state.range(0) != 0) sim.set_observer(&digest);
  kern::Module top(sim, "top");
  kern::Event ping(sim, "ping"), pong(sim, "pong");
  u64 wakes = 0;
  top.spawn_thread("a", [&] {
    for (;;) {
      ping.notify_delta();
      kern::wait(pong);
      kern::wait(1_ns);
    }
  });
  top.spawn_thread("b", [&] {
    for (;;) {
      kern::wait(ping);
      ++wakes;
      pong.notify_delta();
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(1));
  state.SetItemsProcessed(static_cast<i64>(wakes));
  if (state.range(0) != 0)
    state.counters["records"] = static_cast<double>(digest.records());
}
BENCHMARK(BM_SchedTraceDigest)->Arg(0)->Arg(1);

// Periodic cancel/renotify (clocks, DRCF prefetch timers): every loop leaves
// one stale entry in the timed queue, so this measures the stale-entry
// compaction path keeping the heap bounded instead of growing without limit.
void BM_TimedQueueCompaction(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  kern::Event deadline(sim, "deadline"), tick(sim, "tick");
  u64 wakes = 0;
  top.spawn_thread("t", [&] {
    for (;;) {
      deadline.notify(kern::Time::us(100));  // armed, then always superseded
      tick.notify(1_ns);
      kern::wait(tick);
      deadline.cancel();  // stale entry left behind in the timed queue
      ++wakes;
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(1));
  state.SetItemsProcessed(static_cast<i64>(wakes));
  state.counters["timed_queue"] =
      static_cast<double>(sim.timed_queue_size());
}
BENCHMARK(BM_TimedQueueCompaction);

// Campaign-parallel throughput: N identical self-contained simulations
// dispatched across a worker pool — jobs/sec as a function of thread count.
void BM_CampaignThroughput(benchmark::State& state) {
  const auto threads = static_cast<usize>(state.range(0));
  constexpr int kJobs = 16;
  for (auto _ : state) {
    campaign::CampaignRunner runner(threads);
    std::vector<std::future<u64>> futures;
    futures.reserve(kJobs);
    for (int j = 0; j < kJobs; ++j) {
      futures.push_back(runner.submit("job" + std::to_string(j), [] {
        kern::Simulation sim;
        kern::Module top(sim, "top");
        u64 wakes = 0;
        top.spawn_thread("t", [&] {
          for (;;) {
            kern::wait(1_ns);
            ++wakes;
          }
        });
        sim.run(kern::Time::us(50));
        return wakes;
      }));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kJobs);
}
BENCHMARK(BM_CampaignThroughput)->Arg(1)->Arg(2)->Arg(4);

void BM_SignalPropagation(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  kern::Signal<u32> sig(top, "sig");
  u64 observed = 0;
  kern::SpawnOptions opts;
  opts.sensitivity = {&sig.value_changed_event()};
  opts.dont_initialize = true;
  top.spawn_method("observer", [&] { ++observed; }, opts);
  top.spawn_thread("driver", [&] {
    u32 v = 0;
    for (;;) {
      sig.write(++v);
      kern::wait(1_ns);
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(1));
  state.SetItemsProcessed(static_cast<i64>(observed));
}
BENCHMARK(BM_SignalPropagation);

void BM_ClockEdges(benchmark::State& state) {
  kern::Simulation sim;
  kern::Clock clk(sim, "clk", 10_ns);
  kern::Module top(sim, "top");
  u64 edges = 0;
  kern::SpawnOptions opts;
  opts.sensitivity = {&clk.posedge_event()};
  opts.dont_initialize = true;
  top.spawn_method("counter", [&] { ++edges; }, opts);
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(10));  // 1000 periods
  state.SetItemsProcessed(static_cast<i64>(edges));
}
BENCHMARK(BM_ClockEdges);

// -- Bus and DRCF costs ---------------------------------------------------------

void BM_BusTransaction(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory m(top, "ram", 0, 4096);
  b.bind_slave(m);
  u64 xfers = 0;
  top.spawn_thread("master", [&] {
    bus::word w = 0;
    for (;;) {
      b.read(static_cast<bus::addr_t>(xfers % 4096), &w);
      ++xfers;
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::us(20));  // 1000 transactions
  state.SetItemsProcessed(static_cast<i64>(xfers));
}
BENCHMARK(BM_BusTransaction);

void BM_DrcfHitForwarding(benchmark::State& state) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  adriatic::bench::DrcfRig rig(2, 64, dc);
  u64 reads = 0;
  rig.top.spawn_thread("driver", [&] {
    bus::word w = 0;
    rig.sys_bus.read(rig.ctx_addr(0), &w);  // warm
    for (;;) {
      rig.sys_bus.read(rig.ctx_addr(0), &w);  // hit path
      ++reads;
    }
  });
  rig.sim.elaborate();
  for (auto _ : state) rig.sim.run(kern::Time::us(20));
  state.SetItemsProcessed(static_cast<i64>(reads));
}
BENCHMARK(BM_DrcfHitForwarding);

void BM_DrcfContextSwitch(benchmark::State& state) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  adriatic::bench::DrcfRig rig(2, static_cast<u64>(state.range(0)), dc);
  u64 switches = 0;
  rig.top.spawn_thread("driver", [&] {
    bus::word w = 0;
    for (;;) {
      rig.sys_bus.read(rig.ctx_addr(switches % 2), &w);
      ++switches;
    }
  });
  rig.sim.elaborate();
  for (auto _ : state) rig.sim.run(kern::Time::ms(1));
  state.SetItemsProcessed(static_cast<i64>(switches));
}
BENCHMARK(BM_DrcfContextSwitch)->Arg(64)->Arg(1024);

// Latency hiding of the context-prefetch layer: Arg(0) runs the ring driver
// on-demand (every step pays the full configuration fetch), Arg(1) under
// kHybrid with a 3-plane context cache (fills overlap the driver's compute
// gaps). The counters report the cache-hit rate over demand misses and the
// fraction of fetch latency kept off the demand path.
void BM_PrefetchHitRate(benchmark::State& state) {
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  dc.technology.per_switch_overhead = kern::Time::zero();
  if (state.range(0) != 0) {
    dc.prefetch.policy = drcf::PrefetchPolicy::kHybrid;
    dc.prefetch.cache_slots = 3;
    dc.prefetch.static_next = {1, 2, 0};
  }
  adriatic::bench::DrcfRig rig(3, 64, dc, {}, /*dedicated_cfg_link=*/true);
  u64 reads = 0;
  rig.top.spawn_thread("driver", [&] {
    bus::word w = 0;
    for (;;) {
      rig.sys_bus.read(rig.ctx_addr(reads % 3), &w);
      ++reads;
      kern::wait(kern::Time::us(2));  // the compute gap a fill can hide in
    }
  });
  rig.sim.elaborate();
  for (auto _ : state) rig.sim.run(kern::Time::ms(1));
  const auto& fs = rig.fabric.stats();
  state.SetItemsProcessed(static_cast<i64>(reads));
  state.counters["cache_hit_rate"] =
      fs.misses > 0
          ? static_cast<double>(fs.cache_hits) / static_cast<double>(fs.misses)
          : 0.0;
  const double hidden = fs.hidden_latency.to_ns();
  const double busy = fs.reconfig_busy_time.to_ns();
  state.counters["hidden_frac"] =
      hidden + busy > 0 ? hidden / (hidden + busy) : 0.0;
}
BENCHMARK(BM_PrefetchHitRate)->Arg(0)->Arg(1);

// Raw accelerator model vs DRCF-wrapped accelerator: wall-clock cost of the
// methodology itself (events simulated per second of host time).
void BM_RawAccelerator(benchmark::State& state) {
  kern::Simulation sim;
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory ram(top, "ram", 0x1000, 4096);
  b.bind_slave(ram);
  soc::HwAccel acc(top, "acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(b);
  b.bind_slave(acc);
  u64 runs = 0;
  top.spawn_thread("driver", [&] {
    bus::word w;
    for (;;) {
      w = 0x1000;
      b.write(0x100 + soc::HwAccel::kSrc, &w);
      w = 0x1100;
      b.write(0x100 + soc::HwAccel::kDst, &w);
      w = 16;
      b.write(0x100 + soc::HwAccel::kLen, &w);
      w = 1;
      b.write(0x100 + soc::HwAccel::kCtrl, &w);
      do {
        kern::wait(100_ns);
        b.read(0x100 + soc::HwAccel::kStatus, &w);
      } while (w != soc::HwAccel::kDone);
      w = 0;
      b.write(0x100 + soc::HwAccel::kStatus, &w);
      ++runs;
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::ms(1));
  state.SetItemsProcessed(static_cast<i64>(runs));
}
BENCHMARK(BM_RawAccelerator);

// The timing-mode flagship (docs/timing_modes.md): one frame-based job —
// stage a 1024-word frame into ram, program the wrapped accelerator, poll
// its status register until done (the paper's CPU software model, compare
// make_sec53_app's poll_until), read the result back — measured
// cycle-accurate and loosely timed. Frame staging and status polling are
// what a DSE software model actually does per step, and they are exactly
// the traffic the loose fast path elides: every burst beat and every poll
// pays an arbitrated timed wait in kTimed, and a local-offset accrual plus
// DMI copy (or direct register call) in kLoose.
void BM_DrcfWrappedAccelerator(benchmark::State& state, kern::TimingMode mode,
                               kern::Time quantum) {
  kern::Simulation sim;
  sim.set_timing_mode(mode);
  if (!quantum.is_zero()) sim.set_quantum(quantum);
  kern::Module top(sim, "top");
  bus::Bus b(top, "bus");
  mem::Memory ram(top, "ram", 0x1000, 4096);
  mem::Memory cfg(top, "cfg", 0x100000, 1024);
  b.bind_slave(ram);
  b.bind_slave(cfg);
  soc::HwAccel acc(top, "acc", 0x100, accel::make_crc_spec());
  acc.mst_port.bind(b);
  drcf::DrcfConfig dc;
  dc.technology = drcf::varicore_like();
  drcf::Drcf fabric(top, "drcf", dc);
  fabric.add_context(acc, {.config_address = 0x100000, .size_words = 64});
  fabric.mst_port.bind(b);
  b.bind_slave(fabric);
  u64 runs = 0;
  top.spawn_thread("driver", [&] {
    std::vector<bus::word> frame(1024), result(1024);
    bus::word w;
    for (;;) {
      for (usize i = 0; i < frame.size(); ++i)
        frame[i] = static_cast<bus::word>(runs + i);
      b.burst_write(0x1000, frame, 0);
      w = 0x1000;
      b.write(0x100 + soc::HwAccel::kSrc, &w);
      w = 0x1800;
      b.write(0x100 + soc::HwAccel::kDst, &w);
      w = 1024;
      b.write(0x100 + soc::HwAccel::kLen, &w);
      w = 1;
      b.write(0x100 + soc::HwAccel::kCtrl, &w);
      do {
        kern::wait(100_ns);
        b.read(0x100 + soc::HwAccel::kStatus, &w);
      } while (w != soc::HwAccel::kDone);
      w = 0;
      b.write(0x100 + soc::HwAccel::kStatus, &w);
      b.burst_read(0x1800, result, 0);
      benchmark::DoNotOptimize(result.data());
      ++runs;
    }
  });
  sim.elaborate();
  for (auto _ : state) sim.run(kern::Time::ms(1));
  state.SetItemsProcessed(static_cast<i64>(runs));
  state.counters["dispatches"] = static_cast<double>(sim.activations());
  state.counters["loose_syncs"] = static_cast<double>(sim.loose_syncs());
  state.counters["dmi_words"] = static_cast<double>(b.stats().dmi_words);
}
BENCHMARK_CAPTURE(BM_DrcfWrappedAccelerator, timed, kern::TimingMode::kTimed,
                  kern::Time::zero());
// 100 us quantum: large against the ~50 us of simulated time per frame, so
// the only sync points left are the frame's own event waits. The default
// 1 us quantum sits in BM_QuantumSweep's range for the full dial.
BENCHMARK_CAPTURE(BM_DrcfWrappedAccelerator, loose, kern::TimingMode::kLoose,
                  kern::Time::us(100));

// Speed/accuracy dial: the same frame job loosely timed, with the global
// quantum as the benchmark argument (in ns). Larger quanta fold more bus
// and compute waits into each local-time accrual — items/sec rises while
// timing fidelity inside the quantum falls (docs/timing_modes.md).
void BM_QuantumSweep(benchmark::State& state) {
  BM_DrcfWrappedAccelerator(
      state, kern::TimingMode::kLoose,
      kern::Time::ns(static_cast<u64>(state.range(0))));
}
BENCHMARK(BM_QuantumSweep)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// -- Paged memory costs ---------------------------------------------------------

// Word-path overhead of the sparse copy-on-write backing versus eager flat
// storage: the same write+read traffic against one word per page across a
// quarter of a 64-page store. The paged variant also reports how few pages
// it ended up materializing (docs/memory.md).
void BM_PagedVsFlat(benchmark::State& state, bool flat) {
  const bool prev = mem::PagedStore::debug_set_flat_backing(flat);
  mem::PagedStore store(64 * mem::kPageWords, "bench_store");
  mem::PagedStore::debug_set_flat_backing(prev);
  u64 words = 0;
  for (auto _ : state) {
    for (usize p = 0; p < 16; ++p) {
      const usize idx = p * mem::kPageWords + (words % mem::kPageWords);
      store.write(idx, static_cast<bus::word>(words));
      benchmark::DoNotOptimize(store.read(idx));
      ++words;
    }
  }
  state.SetItemsProcessed(static_cast<i64>(words));
  state.counters["resident_pages"] =
      static_cast<double>(store.resident_pages());
}
BENCHMARK_CAPTURE(BM_PagedVsFlat, paged, false);
BENCHMARK_CAPTURE(BM_PagedVsFlat, flat, true);

// Resident-set high-water of a campaign whose jobs replay the same 64 KiB
// configuration image: COW-attached from the process-wide registry versus
// privately loaded per job. The peak_resident_mb counter is the headline —
// sharing keeps one copy resident no matter how many jobs are in flight
// (EXPERIMENTS.md records the methodology).
void BM_CampaignResidentSet(benchmark::State& state, bool shared) {
  constexpr usize kJobs = 8;
  constexpr usize kImgWords = 16 * mem::kPageWords;
  std::vector<bus::word> bits(kImgWords);
  for (usize i = 0; i < bits.size(); ++i)
    bits[i] = static_cast<bus::word>(0x1A6E0000u + i);
  const auto img = mem::ImageRegistry::instance().intern(bits);
  auto& budget = mem::MemoryBudget::instance();
  u64 peak_over_base = 0;
  for (auto _ : state) {
    const u64 base = budget.resident_bytes();
    budget.reset_high_water();
    campaign::CampaignRunner runner(4);
    std::vector<std::future<u64>> futures;
    futures.reserve(kJobs);
    for (usize j = 0; j < kJobs; ++j) {
      futures.push_back(
          runner.submit("rs" + std::to_string(j), [&img, &bits, shared] {
            kern::Simulation sim;
            kern::Module top(sim, "top");
            mem::Memory m(top, "m", 0, kImgWords);
            if (shared) {
              m.attach_image(img, 0);
            } else {
              m.load(0, bits);
            }
            u64 sum = 0;
            for (usize w = 0; w < kImgWords; w += 64)
              sum += static_cast<u64>(m.peek(static_cast<bus::addr_t>(w)));
            return sum;
          }));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    peak_over_base =
        std::max(peak_over_base, budget.high_water_bytes() - base);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * kJobs);
  state.counters["peak_resident_mb"] =
      static_cast<double>(peak_over_base) / (1024.0 * 1024.0);
}
BENCHMARK_CAPTURE(BM_CampaignResidentSet, shared_image, true);
BENCHMARK_CAPTURE(BM_CampaignResidentSet, private_pages, false);

}  // namespace

// Plain BENCHMARK_MAIN(), plus a context entry recording how THIS binary was
// compiled: the system benchmark library's own "library_build_type" field
// does not track the repo build, and bench/report_json.sh refuses to refresh
// the committed baseline from a debug binary.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("adriatic_build_type",
#ifdef NDEBUG
                              "release"
#else
                              "debug"
#endif
  );
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
