// E5 — Sec. 5.1 rule-of-thumb study: "if the application has several roughly
// same-sized hardware accelerators that are not used at the same time ...
// a dynamically reconfigurable block may be a more optimized solution than
// hardwired logic." Sweeps the number of same-sized kernels and reports the
// area crossover and latency overhead for all three technology classes,
// plus the advisor's verdict on each configuration.
#include <iostream>

#include "bench_common.hpp"
#include "dse/advisor.hpp"
#include "estimate/area.hpp"

using namespace adriatic;
using namespace adriatic::kern::literals;
using adriatic::bench::DrcfRig;

namespace {

constexpr u64 kKernelGates = 20'000;
constexpr int kRounds = 3;  // sequential sweeps over all kernels

/// Simulated time for N kernels sharing one single-slot DRCF, accessed
/// strictly sequentially (the rule's "not used at the same time" pattern).
kern::Time drcf_time(usize n, const drcf::ReconfigTechnology& tech) {
  drcf::DrcfConfig dc;
  dc.technology = tech;
  bus::BusConfig bc;
  bc.cycle_time = 10_ns;
  const u64 ctx_words = std::max<u64>(1, tech.context_words(kKernelGates));
  DrcfRig rig(n, ctx_words, dc, bc);
  kern::Time total;
  rig.top.spawn_thread("driver", [&] {
    bus::word r = 0;
    const kern::Time t0 = rig.sim.now();
    for (int round = 0; round < kRounds; ++round)
      for (usize k = 0; k < n; ++k) {
        rig.sys_bus.read(rig.ctx_addr(k), &r);
        kern::wait(50_us);  // the kernel's useful work period
      }
    total = rig.sim.now() - t0;
  });
  rig.sim.run();
  return total;
}

}  // namespace

int main() {
  Table t("Sec. 5.1 - DRCF vs hardwired: area crossover over kernel count");
  t.header({"N kernels", "technology", "hardwired [gates]", "DRCF [gate-eq]",
            "area ratio", "latency overhead [%]", "DRCF wins area?"});

  struct Cross {
    std::string tech;
    usize n = 0;
  };
  std::vector<Cross> crossovers;

  for (const auto& tech : {drcf::virtex2pro_like(), drcf::varicore_like(),
                           drcf::morphosys_like()}) {
    bool crossed = false;
    for (usize n = 2; n <= 12; n += 2) {
      const std::vector<u64> gates(n, kKernelGates);
      const u64 hw_gates = estimate::hardwired_gates(gates);
      const auto area = estimate::drcf_area(gates, tech, 1);
      const double ratio =
          static_cast<double>(area.total_gate_equivalents()) /
          static_cast<double>(hw_gates);

      // Latency: N kernels x kRounds sequential activations, 50us of work
      // each; the hardwired version pays no switches.
      const kern::Time t_drcf = drcf_time(n, tech);
      const kern::Time t_hw = 50_us * static_cast<u64>(n * kRounds);
      const double overhead =
          (t_drcf.to_us() / t_hw.to_us() - 1.0) * 100.0;

      t.row({Table::integer(static_cast<long long>(n)), tech.name,
             Table::integer(static_cast<long long>(hw_gates)),
             Table::integer(
                 static_cast<long long>(area.total_gate_equivalents())),
             Table::num(ratio, 2), Table::num(overhead, 1),
             ratio < 1.0 ? "yes" : "no"});
      if (!crossed && ratio < 1.0) {
        crossed = true;
        crossovers.push_back({tech.name, n});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\narea crossover (first N where one DRCF is smaller than N "
               "dedicated blocks):\n";
  for (const auto& c : crossovers)
    std::cout << "  " << c.tech << ": N >= " << c.n << '\n';
  if (crossovers.empty())
    std::cout << "  none up to N=12 (fine-grain area factors dominate)\n";

  // The advisor reaches the same conclusion from profiles alone.
  std::cout << "\nadvisor check (6 same-sized kernels, sequential use):\n";
  std::vector<dse::BlockProfile> blocks;
  for (usize i = 0; i < 6; ++i)
    blocks.push_back({"k" + std::to_string(i), kKernelGates, 0.15, {},
                      false, false});
  const auto advice = dse::advise_partitioning(blocks);
  for (const auto& r : advice.rationale) std::cout << "  " << r << '\n';

  const bool ok = !crossovers.empty();
  std::cout << "\nshape check: coarse-grained technologies cross first "
               "(lower area factor): "
            << (ok ? "YES" : "NO") << '\n';
  return ok ? 0 : 1;
}
