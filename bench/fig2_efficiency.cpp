// E1 — Figure 2: flexibility vs implementation efficiency across
// architectural styles, measured from the kernel profiles rather than copied
// from the figure. Regenerates the figure's ladder (GPP -> DSP -> ASIP ->
// reconfigurable -> ASIC), its efficiency bands, and the quoted
// "factor of 100-1000" ASIC-vs-GPP gap.
#include <iostream>

#include "accel/accel_lib.hpp"
#include "estimate/efficiency.hpp"
#include "util/table.hpp"

using namespace adriatic;

int main() {
  const usize kWorkload = 4096;
  const auto tech = drcf::varicore_like();

  struct NamedSpec {
    const char* label;
    accel::KernelSpec spec;
  };
  const NamedSpec kernels[] = {
      {"fir32", accel::make_fir_spec(accel::fir_lowpass_taps(32))},
      {"fft64", accel::make_fft_spec(64)},
      {"dct8x8", accel::make_dct_spec()},
      {"viterbi", accel::make_viterbi_spec()},
      {"aes128", accel::make_aes_spec(accel::AesKey{1, 2, 3, 4})},
      {"crc32", accel::make_crc_spec()},
  };

  Table t("Figure 2 - flexibility vs implementation efficiency (MOPS/mW)");
  t.header({"kernel", "GPP (SW)", "DSP", "ASIP", "Reconfigurable", "ASIC",
            "ASIC/GPP gap"});
  double min_gap = 1e30;
  double max_gap = 0.0;
  bool order_ok = true;
  for (const auto& k : kernels) {
    const auto ladder = estimate::efficiency_ladder(k.spec, kWorkload, tech);
    std::vector<std::string> row{k.label};
    for (const auto& s : ladder) row.push_back(Table::num(s.mops_per_mw, 2));
    const double gap = ladder.back().mops_per_mw / ladder.front().mops_per_mw;
    row.push_back(Table::num(gap, 0) + "x");
    t.row(std::move(row));
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
    for (usize i = 1; i < ladder.size(); ++i)
      order_ok &= ladder[i].mops_per_mw > ladder[i - 1].mops_per_mw;
  }
  t.print(std::cout);

  Table f("Flexibility axis (qualitative, per the figure)");
  f.header({"style", "flexibility", "computation style"});
  const auto ladder = estimate::efficiency_ladder(kernels[0].spec, kWorkload,
                                                  tech);
  const char* styles[] = {"temporal (unlimited ISA)", "temporal (DSP ISA)",
                          "temporal (app-specific ISA)",
                          "spatial, post-fab programmable",
                          "spatial, fixed at fab"};
  for (usize i = 0; i < ladder.size(); ++i)
    f.row({ladder[i].name, Table::num(ladder[i].flexibility, 2), styles[i]});
  f.print(std::cout);

  std::cout << "\nfigure-2 checks: efficiency ladder strictly ordered: "
            << (order_ok ? "YES" : "NO") << "\nASIC vs GPP efficiency gap: "
            << Table::num(min_gap, 0) << "x - " << Table::num(max_gap, 0)
            << "x (paper: \"factor of 100-1000\")\n";
  return order_ok ? 0 : 1;
}
