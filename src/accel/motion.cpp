#include "accel/motion.hpp"

#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/types.hpp"

namespace adriatic::accel {

MotionVector full_search(std::span<const i32> block,
                         std::span<const i32> reference, int range) {
  if (range < 0) throw std::invalid_argument("full_search: negative range");
  const usize win = 8 + 2 * static_cast<usize>(range);
  if (block.size() < 64 || reference.size() < win * win)
    throw std::invalid_argument("full_search: operand too small");

  MotionVector best;
  best.sad = std::numeric_limits<u32>::max();
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      u32 sad = 0;
      const usize oy = static_cast<usize>(dy + range);
      const usize ox = static_cast<usize>(dx + range);
      for (usize r = 0; r < 8; ++r)
        for (usize c = 0; c < 8; ++c)
          sad += static_cast<u32>(
              std::abs(block[r * 8 + c] -
                       reference[(oy + r) * win + (ox + c)]));
      if (sad < best.sad) {
        best.sad = sad;
        best.dx = dx;
        best.dy = dy;
      }
    }
  }
  return best;
}

KernelSpec make_motion_spec(int range) {
  if (range < 1) throw std::invalid_argument("make_motion_spec: range < 1");
  KernelSpec spec;
  spec.name = "me_fs_r" + std::to_string(range);
  const usize win = 8 + 2 * static_cast<usize>(range);
  spec.fn = [range, win](std::span<const bus::word> in) {
    std::vector<i32> block(64, 0);
    std::vector<i32> ref(win * win, 0);
    for (usize i = 0; i < 64 && i < in.size(); ++i) block[i] = in[i];
    for (usize i = 0; i < ref.size() && 64 + i < in.size(); ++i)
      ref[i] = in[64 + i];
    const auto mv = full_search(block, ref, range);
    return std::vector<i32>{mv.dx, mv.dy, static_cast<i32>(mv.sad)};
  };
  const u64 positions = (2ULL * static_cast<u64>(range) + 1) *
                        (2ULL * static_cast<u64>(range) + 1);
  // A 64-PE SAD array evaluates one candidate position per cycle.
  spec.hw_cycles = [positions](usize /*len*/) { return positions + 12; };
  // SW: 64 abs-diffs x ~4 instructions per candidate.
  spec.sw_instructions = [positions](usize /*len*/) {
    return positions * 64 * 4 + 128;
  };
  spec.gate_count = 38'000;  // 64 PE SAD tree + window buffer + control
  return spec;
}

}  // namespace adriatic::accel
