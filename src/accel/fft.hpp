// Radix-2 decimation-in-time FFT over Q15 complex samples, as used by the
// OFDM (WLAN) receive chain that motivates the ADRIATIC case studies.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// A complex sample packed into one bus word: re in the low 16 bits,
/// im in the high 16 bits, both Q15.
[[nodiscard]] constexpr i32 pack_cplx(i16 re, i16 im) {
  return static_cast<i32>(static_cast<u32>(static_cast<u16>(re)) |
                          (static_cast<u32>(static_cast<u16>(im)) << 16));
}
[[nodiscard]] constexpr i16 unpack_re(i32 w) {
  return static_cast<i16>(static_cast<u32>(w) & 0xFFFFu);
}
[[nodiscard]] constexpr i16 unpack_im(i32 w) {
  return static_cast<i16>((static_cast<u32>(w) >> 16) & 0xFFFFu);
}

/// In-place-style FFT of packed samples; input length must be a power of 2.
/// Each butterfly stage scales by 1/2 to avoid overflow (total 1/N scaling).
[[nodiscard]] std::vector<i32> fft_q15(std::span<const i32> packed_in);

/// Reference double-precision FFT for accuracy checks.
[[nodiscard]] std::vector<std::complex<double>> fft_ref(
    std::span<const std::complex<double>> in);

/// Kernel spec: a pipelined butterfly datapath processing one butterfly per
/// cycle — N/2*log2(N) butterflies per transform.
[[nodiscard]] KernelSpec make_fft_spec(usize n_points);

}  // namespace adriatic::accel
