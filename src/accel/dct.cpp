#include "accel/dct.hpp"

#include <cmath>
#include <numbers>

#include "util/types.hpp"

namespace adriatic::accel {
namespace {

// Separable DCT basis, computed once.
const std::array<double, 64>& dct_basis() {
  static const std::array<double, 64> basis = [] {
    std::array<double, 64> b{};
    for (usize k = 0; k < 8; ++k) {
      const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (usize n = 0; n < 8; ++n)
        b[k * 8 + n] = scale * std::cos((2.0 * static_cast<double>(n) + 1.0) *
                                        static_cast<double>(k) *
                                        std::numbers::pi / 16.0);
    }
    return b;
  }();
  return basis;
}

// JPEG Annex K luminance table.
constexpr std::array<i32, 64> kJpegLuma = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

}  // namespace

std::array<i32, 64> dct8x8(std::span<const i32> block) {
  const auto& b = dct_basis();
  std::array<double, 64> tmp{};
  // Rows.
  for (usize r = 0; r < 8; ++r)
    for (usize k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (usize n = 0; n < 8; ++n)
        acc += b[k * 8 + n] *
               static_cast<double>(n + r * 8 < block.size() ? block[r * 8 + n]
                                                            : 0);
      tmp[r * 8 + k] = acc;
    }
  // Columns.
  std::array<i32, 64> out{};
  for (usize c = 0; c < 8; ++c)
    for (usize k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (usize n = 0; n < 8; ++n) acc += b[k * 8 + n] * tmp[n * 8 + c];
      out[k * 8 + c] = static_cast<i32>(std::lround(acc));
    }
  return out;
}

std::array<i32, 64> idct8x8(std::span<const i32> coeffs) {
  const auto& b = dct_basis();
  std::array<double, 64> tmp{};
  // Columns (inverse).
  for (usize c = 0; c < 8; ++c)
    for (usize n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (usize k = 0; k < 8; ++k)
        acc += b[k * 8 + n] *
               static_cast<double>(k * 8 + c < coeffs.size() ? coeffs[k * 8 + c]
                                                             : 0);
      tmp[n * 8 + c] = acc;
    }
  // Rows (inverse).
  std::array<i32, 64> out{};
  for (usize r = 0; r < 8; ++r)
    for (usize n = 0; n < 8; ++n) {
      double acc = 0.0;
      for (usize k = 0; k < 8; ++k) acc += b[k * 8 + n] * tmp[r * 8 + k];
      out[r * 8 + n] = static_cast<i32>(std::lround(acc));
    }
  return out;
}

std::array<i32, 64> quant_matrix(int quality) {
  if (quality < 1) quality = 1;
  if (quality > 100) quality = 100;
  const int scale =
      quality < 50 ? 5000 / quality : 200 - 2 * quality;  // libjpeg formula
  std::array<i32, 64> q{};
  for (usize i = 0; i < 64; ++i) {
    i32 v = (kJpegLuma[i] * scale + 50) / 100;
    if (v < 1) v = 1;
    if (v > 255) v = 255;
    q[i] = v;
  }
  return q;
}

std::array<i32, 64> quantise(std::span<const i32> coeffs,
                             std::span<const i32> matrix) {
  std::array<i32, 64> out{};
  for (usize i = 0; i < 64; ++i) {
    const i32 c = i < coeffs.size() ? coeffs[i] : 0;
    const i32 q = i < matrix.size() ? matrix[i] : 1;
    // Round-to-nearest division, preserving sign.
    out[i] = c >= 0 ? (c + q / 2) / q : -((-c + q / 2) / q);
  }
  return out;
}

KernelSpec make_dct_spec() {
  KernelSpec spec;
  spec.name = "dct8x8";
  spec.fn = [](std::span<const bus::word> in) {
    std::vector<i32> out;
    out.reserve(round_up<usize>(in.size(), 64));
    for (usize base = 0; base < in.size(); base += 64) {
      const usize n = std::min<usize>(64, in.size() - base);
      std::vector<i32> block(64, 0);
      for (usize i = 0; i < n; ++i) block[i] = in[base + i];
      const auto c = dct8x8(block);
      out.insert(out.end(), c.begin(), c.end());
    }
    return out;
  };
  // Row-column datapath: 16 inner products of 8 MACs each per block, one
  // inner product per cycle with 8-wide MAC array => 128 cycles/block.
  spec.hw_cycles = [](usize len) {
    return ceil_div<u64>(len, 64) * 128 + 10;
  };
  spec.sw_instructions = [](usize len) {
    return ceil_div<u64>(len, 64) * (2ULL * 8 * 8 * 8 * 2 + 256);
  };
  spec.gate_count = 22'000;  // 8-wide MAC array + transpose buffer + control
  return spec;
}

KernelSpec make_quant_spec(int quality) {
  KernelSpec spec;
  spec.name = "quant_q" + std::to_string(quality);
  const auto matrix = quant_matrix(quality);
  spec.fn = [matrix](std::span<const bus::word> in) {
    std::vector<i32> out;
    out.reserve(round_up<usize>(in.size(), 64));
    for (usize base = 0; base < in.size(); base += 64) {
      const usize n = std::min<usize>(64, in.size() - base);
      const auto q = quantise(in.subspan(base, n), matrix);
      out.insert(out.end(), q.begin(), q.end());
    }
    return out;
  };
  spec.hw_cycles = [](usize len) { return static_cast<u64>(len) + 4; };
  spec.sw_instructions = [](usize len) { return static_cast<u64>(len) * 8; };
  spec.gate_count = 6'000;  // divider pipeline + table
  return spec;
}

}  // namespace adriatic::accel
