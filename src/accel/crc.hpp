// CRC-32 (IEEE 802.3 polynomial) — frame-check kernel for the WLAN example.
#pragma once

#include <span>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// CRC-32 over a byte stream (reflected, init 0xFFFFFFFF, final xor).
[[nodiscard]] u32 crc32(std::span<const u8> data);

/// CRC-32 over bus words (little-endian byte order within each word).
[[nodiscard]] u32 crc32_words(std::span<const i32> words);

/// Kernel spec: consumes N payload words, emits [payload..., crc] (N+1
/// words) so a checker can verify frames in-stream.
[[nodiscard]] KernelSpec make_crc_spec();

}  // namespace adriatic::accel
