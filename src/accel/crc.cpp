#include "accel/crc.hpp"

#include <array>

namespace adriatic::accel {
namespace {

const std::array<u32, 256>& crc_table() {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

u32 crc32(std::span<const u8> data) {
  const auto& t = crc_table();
  u32 c = 0xFFFFFFFFu;
  for (const u8 b : data) c = t[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

u32 crc32_words(std::span<const i32> words) {
  const auto& t = crc_table();
  u32 c = 0xFFFFFFFFu;
  for (const i32 w : words) {
    const u32 v = static_cast<u32>(w);
    for (int i = 0; i < 4; ++i)
      c = t[(c ^ ((v >> (8 * i)) & 0xFFu)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

KernelSpec make_crc_spec() {
  KernelSpec spec;
  spec.name = "crc32";
  spec.fn = [](std::span<const bus::word> in) {
    std::vector<i32> out(in.begin(), in.end());
    out.push_back(static_cast<i32>(crc32_words(in)));
    return out;
  };
  // Parallel 32-bit CRC: one word per cycle.
  spec.hw_cycles = [](usize len) { return static_cast<u64>(len) + 2; };
  // SW table-driven: ~6 instructions per byte.
  spec.sw_instructions = [](usize len) { return static_cast<u64>(len) * 4 * 6; };
  spec.gate_count = 3'500;
  return spec;
}

}  // namespace adriatic::accel
