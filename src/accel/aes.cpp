#include "accel/aes.hpp"

#include <cstring>

#include "util/types.hpp"

namespace adriatic::accel {
namespace {

const std::array<u8, 256>& sbox() {
  static const std::array<u8, 256> box = [] {
    // Generate the S-box from the multiplicative inverse in GF(2^8)
    // followed by the affine transform — avoids a 256-entry literal.
    std::array<u8, 256> s{};
    auto mul = [](u8 a, u8 b) {
      u8 p = 0;
      for (int i = 0; i < 8; ++i) {
        if (b & 1) p ^= a;
        const bool hi = a & 0x80;
        a <<= 1;
        if (hi) a ^= 0x1B;
        b >>= 1;
      }
      return p;
    };
    // Inverses via brute force (fine at init time).
    std::array<u8, 256> inv{};
    for (int a = 1; a < 256; ++a)
      for (int b = 1; b < 256; ++b)
        if (mul(static_cast<u8>(a), static_cast<u8>(b)) == 1) {
          inv[static_cast<usize>(a)] = static_cast<u8>(b);
          break;
        }
    for (int i = 0; i < 256; ++i) {
      const u8 x = inv[static_cast<usize>(i)];
      u8 y = x;
      u8 r = 0x63;
      for (int k = 0; k < 4; ++k) {
        y = static_cast<u8>((y << 1) | (y >> 7));
        r ^= y;
      }
      s[static_cast<usize>(i)] = static_cast<u8>(r ^ x ^ 0);
    }
    return s;
  }();
  return box;
}

u8 xtime(u8 x) { return static_cast<u8>((x << 1) ^ ((x & 0x80) ? 0x1B : 0)); }

void sub_bytes(AesBlock& s) {
  for (auto& b : s) b = sbox()[b];
}

void shift_rows(AesBlock& s) {
  // Column-major state: s[c*4 + r].
  AesBlock t = s;
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      s[static_cast<usize>(c * 4 + r)] =
          t[static_cast<usize>(((c + r) % 4) * 4 + r)];
}

void mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    u8* col = &s[static_cast<usize>(c * 4)];
    const u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<u8>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<u8>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<u8>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<u8>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}

void add_round_key(AesBlock& s, const u8* rk) {
  for (usize i = 0; i < 16; ++i) s[i] ^= rk[i];
}

std::array<u8, 176> expand_key(const AesKey& key) {
  std::array<u8, 176> w{};
  std::memcpy(w.data(), key.data(), 16);
  u8 rcon = 1;
  for (usize i = 16; i < 176; i += 4) {
    u8 t[4];
    std::memcpy(t, &w[i - 4], 4);
    if (i % 16 == 0) {
      const u8 tmp = t[0];
      t[0] = static_cast<u8>(sbox()[t[1]] ^ rcon);
      t[1] = sbox()[t[2]];
      t[2] = sbox()[t[3]];
      t[3] = sbox()[tmp];
      rcon = xtime(rcon);
    }
    for (usize k = 0; k < 4; ++k) w[i + k] = static_cast<u8>(w[i - 16 + k] ^ t[k]);
  }
  return w;
}

}  // namespace

AesBlock aes128_encrypt(const AesBlock& plain, const AesKey& key) {
  const auto rk = expand_key(key);
  AesBlock s = plain;
  add_round_key(s, rk.data());
  for (int round = 1; round <= 9; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, rk.data() + round * 16);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, rk.data() + 160);
  return s;
}

KernelSpec make_aes_spec(const AesKey& key) {
  KernelSpec spec;
  spec.name = "aes128";
  spec.fn = [key](std::span<const bus::word> in) {
    std::vector<i32> out;
    out.reserve(round_up<usize>(in.size(), 4));
    for (usize base = 0; base < in.size(); base += 4) {
      AesBlock block{};
      for (usize w = 0; w < 4; ++w) {
        const u32 v = base + w < in.size() ? static_cast<u32>(in[base + w]) : 0;
        for (usize b = 0; b < 4; ++b)
          block[w * 4 + b] = static_cast<u8>((v >> (8 * b)) & 0xFF);
      }
      const AesBlock enc = aes128_encrypt(block, key);
      for (usize w = 0; w < 4; ++w) {
        u32 v = 0;
        for (usize b = 0; b < 4; ++b)
          v |= static_cast<u32>(enc[w * 4 + b]) << (8 * b);
        out.push_back(static_cast<i32>(v));
      }
    }
    return out;
  };
  // Iterative round datapath: ~1 cycle per round + key add => 11 cycles per
  // 4-word block.
  spec.hw_cycles = [](usize len) { return ceil_div<u64>(len, 4) * 11 + 4; };
  // SW: ~40 instructions per byte per round in table-less code.
  spec.sw_instructions = [](usize len) {
    return ceil_div<u64>(len, 4) * 16ULL * 10 * 40;
  };
  spec.gate_count = 28'000;  // round datapath + key schedule + sboxes
  return spec;
}

}  // namespace adriatic::accel
