// Zigzag scan + zero run-length encoding of quantised 8x8 coefficient
// blocks — the entropy-coding front half of the video encoder chain
// (the symbol stream a Huffman/arithmetic stage would consume).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// The JPEG zigzag order (index i of the scan -> position in the 8x8 block).
[[nodiscard]] const std::array<u8, 64>& zigzag_order();

/// Scans a 64-coefficient block in zigzag order.
[[nodiscard]] std::array<i32, 64> zigzag_scan(std::span<const i32> block);

/// RLE symbols: (run of zeros, value) pairs; (0,0) terminates a block early
/// (end-of-block). Encoded into words as (run << 16) | (value & 0xFFFF).
[[nodiscard]] std::vector<i32> rle_encode(std::span<const i32> scanned);

/// Inverse: expands RLE words back to the 64-coefficient zigzag sequence.
[[nodiscard]] std::array<i32, 64> rle_decode(std::span<const i32> symbols);

/// Undo the zigzag scan.
[[nodiscard]] std::array<i32, 64> zigzag_unscan(std::span<const i32> scanned);

/// Kernel spec: consumes whole 64-word quantised blocks, emits the
/// variable-length RLE stream prefixed per block with its symbol count.
[[nodiscard]] KernelSpec make_rle_spec();

}  // namespace adriatic::accel
