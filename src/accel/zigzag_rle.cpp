#include "accel/zigzag_rle.hpp"

#include "util/types.hpp"

namespace adriatic::accel {

const std::array<u8, 64>& zigzag_order() {
  static const std::array<u8, 64> order = [] {
    // Generate the canonical diagonal scan.
    std::array<u8, 64> o{};
    usize idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {
        // Up-right diagonals run bottom-left to top-right.
        for (int r = std::min(s, 7); r >= 0 && s - r <= 7; --r)
          o[idx++] = static_cast<u8>(r * 8 + (s - r));
      } else {
        for (int c = std::min(s, 7); c >= 0 && s - c <= 7; --c)
          o[idx++] = static_cast<u8>((s - c) * 8 + c);
      }
    }
    return o;
  }();
  return order;
}

std::array<i32, 64> zigzag_scan(std::span<const i32> block) {
  const auto& order = zigzag_order();
  std::array<i32, 64> out{};
  for (usize i = 0; i < 64; ++i)
    out[i] = order[i] < block.size() ? block[order[i]] : 0;
  return out;
}

std::array<i32, 64> zigzag_unscan(std::span<const i32> scanned) {
  const auto& order = zigzag_order();
  std::array<i32, 64> out{};
  for (usize i = 0; i < 64 && i < scanned.size(); ++i)
    out[order[i]] = scanned[i];
  return out;
}

std::vector<i32> rle_encode(std::span<const i32> scanned) {
  std::vector<i32> symbols;
  u32 run = 0;
  usize last_nonzero = 0;
  bool any = false;
  for (usize i = 0; i < scanned.size(); ++i)
    if (scanned[i] != 0) {
      last_nonzero = i;
      any = true;
    }
  if (!any) {
    symbols.push_back(0);  // immediate end-of-block
    return symbols;
  }
  for (usize i = 0; i <= last_nonzero; ++i) {
    if (scanned[i] == 0) {
      ++run;
      continue;
    }
    symbols.push_back(static_cast<i32>((run << 16) |
                                       (static_cast<u32>(scanned[i]) &
                                        0xFFFFu)));
    run = 0;
  }
  if (last_nonzero + 1 < scanned.size()) symbols.push_back(0);  // EOB
  return symbols;
}

std::array<i32, 64> rle_decode(std::span<const i32> symbols) {
  std::array<i32, 64> out{};
  usize pos = 0;
  for (const i32 sym : symbols) {
    if (sym == 0) break;  // end of block
    const u32 run = static_cast<u32>(sym) >> 16;
    const i32 value = static_cast<i16>(static_cast<u32>(sym) & 0xFFFFu);
    pos += run;
    if (pos >= 64) break;
    out[pos++] = value;
  }
  return out;
}

KernelSpec make_rle_spec() {
  KernelSpec spec;
  spec.name = "zigzag_rle";
  spec.fn = [](std::span<const bus::word> in) {
    std::vector<i32> out;
    for (usize base = 0; base < in.size(); base += 64) {
      const usize n = std::min<usize>(64, in.size() - base);
      const auto scanned = zigzag_scan(in.subspan(base, n));
      const auto symbols = rle_encode(scanned);
      out.push_back(static_cast<i32>(symbols.size()));
      out.insert(out.end(), symbols.begin(), symbols.end());
    }
    return out;
  };
  // Scan + RLE pipeline: one coefficient per cycle.
  spec.hw_cycles = [](usize len) { return static_cast<u64>(len) + 6; };
  spec.sw_instructions = [](usize len) { return static_cast<u64>(len) * 7; };
  spec.gate_count = 5'500;
  return spec;
}

}  // namespace adriatic::accel
