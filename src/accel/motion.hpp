// Full-search block motion estimation over an 8x8 block and a configurable
// search window — the dominant kernel of a video encoder front-end and the
// heaviest of the DRCF video contexts.
#pragma once

#include <span>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

struct MotionVector {
  int dx = 0;
  int dy = 0;
  u32 sad = 0;
};

/// Exhaustive search of the 8x8 `block` inside `reference` (a
/// (8+2*range) x (8+2*range) window, row-major); returns the displacement
/// with minimum sum-of-absolute-differences (ties: first in raster order).
[[nodiscard]] MotionVector full_search(std::span<const i32> block,
                                       std::span<const i32> reference,
                                       int range);

/// Kernel spec: input = 64 block words + window words (derived from range);
/// output = [dx, dy, sad].
[[nodiscard]] KernelSpec make_motion_spec(int range);

}  // namespace adriatic::accel
