#include "accel/matmul.hpp"

#include <stdexcept>

namespace adriatic::accel {

std::vector<i32> matmul(std::span<const i32> a, std::span<const i32> b,
                        usize n) {
  if (a.size() < n * n || b.size() < n * n)
    throw std::invalid_argument("matmul: operand too small");
  std::vector<i32> c(n * n, 0);
  for (usize i = 0; i < n; ++i)
    for (usize k = 0; k < n; ++k) {
      const i64 aik = a[i * n + k];
      for (usize j = 0; j < n; ++j)
        c[i * n + j] = static_cast<i32>(c[i * n + j] +
                                        aik * static_cast<i64>(b[k * n + j]));
    }
  return c;
}

KernelSpec make_matmul_spec(usize n) {
  if (n == 0) throw std::invalid_argument("make_matmul_spec: n == 0");
  KernelSpec spec;
  spec.name = "matmul" + std::to_string(n);
  spec.fn = [n](std::span<const bus::word> in) {
    std::vector<i32> a(n * n, 0), b(n * n, 0);
    for (usize i = 0; i < n * n && i < in.size(); ++i) a[i] = in[i];
    for (usize i = 0; i < n * n && n * n + i < in.size(); ++i)
      b[i] = in[n * n + i];
    return matmul(a, b, n);
  };
  const u64 nn = n;
  // Systolic row: n MACs working in parallel => n^2 cycles per product.
  spec.hw_cycles = [nn](usize /*len*/) { return nn * nn + 2 * nn; };
  spec.sw_instructions = [nn](usize /*len*/) { return nn * nn * nn * 3 + 32; };
  spec.gate_count = 1'200 * n + 4'000;  // MAC row + buffers
  return spec;
}

}  // namespace adriatic::accel
