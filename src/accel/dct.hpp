// 8x8 DCT-II and JPEG-style quantiser — the video-encoder kernels used by
// the DRCF video example (the paper's "HW accelerators not used at the same
// time" candidacy rule fits intra-frame pipelines like this).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// Forward 8x8 DCT-II on one block of 64 samples (row-major), output
/// rounded to integers. Input values are pixel-ish magnitudes (<= 12 bits).
[[nodiscard]] std::array<i32, 64> dct8x8(std::span<const i32> block);

/// Inverse of dct8x8 (for round-trip checks).
[[nodiscard]] std::array<i32, 64> idct8x8(std::span<const i32> coeffs);

/// JPEG luminance quantisation matrix scaled by `quality` in [1,100].
[[nodiscard]] std::array<i32, 64> quant_matrix(int quality);

/// Quantise one 64-coefficient block with the given matrix.
[[nodiscard]] std::array<i32, 64> quantise(std::span<const i32> coeffs,
                                           std::span<const i32> matrix);

/// DCT kernel: processes whole 64-word blocks; trailing partial blocks are
/// zero-padded.
[[nodiscard]] KernelSpec make_dct_spec();

/// Quantiser kernel at the given quality.
[[nodiscard]] KernelSpec make_quant_spec(int quality);

}  // namespace adriatic::accel
