#include "accel/viterbi.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "util/types.hpp"

namespace adriatic::accel {
namespace {

constexpr unsigned kK = 7;                   // constraint length
constexpr unsigned kStates = 1u << (kK - 1); // 64
// 133 octal = 0b1011011, 171 octal = 0b1111001, in the bit order
// (input bit at MSB of the 7-bit shift register).
constexpr u32 kGen0 = 0x5B;  // 133 octal
constexpr u32 kGen1 = 0x79;  // 171 octal

[[nodiscard]] u8 parity(u32 v) { return static_cast<u8>(__builtin_popcount(v) & 1); }

/// Output pair for (current 6-bit state, input bit).
[[nodiscard]] std::array<u8, 2> encode_step(u32 state, u8 bit) {
  const u32 reg = (static_cast<u32>(bit) << 6) | state;  // newest bit at MSB
  return {parity(reg & kGen0), parity(reg & kGen1)};
}

}  // namespace

std::vector<u8> conv_encode(std::span<const u8> bits) {
  std::vector<u8> out;
  out.reserve(2 * (bits.size() + kK - 1));
  u32 state = 0;
  auto push = [&](u8 bit) {
    const auto pair = encode_step(state, bit);
    out.push_back(pair[0]);
    out.push_back(pair[1]);
    state = ((static_cast<u32>(bit) << 6) | state) >> 1;
  };
  for (const u8 b : bits) push(b & 1);
  for (unsigned i = 0; i < kK - 1; ++i) push(0);  // flush
  return out;
}

std::vector<u8> viterbi_decode(std::span<const u8> coded) {
  const usize nsteps = coded.size() / 2;
  if (nsteps == 0) return {};
  constexpr u32 kInf = std::numeric_limits<u32>::max() / 2;

  std::vector<u32> metric(kStates, kInf);
  metric[0] = 0;  // encoder starts in state 0
  std::vector<std::vector<u8>> decisions(nsteps, std::vector<u8>(kStates, 0));

  for (usize t = 0; t < nsteps; ++t) {
    const u8 r0 = coded[2 * t] & 1;
    const u8 r1 = coded[2 * t + 1] & 1;
    std::vector<u32> next(kStates, kInf);
    for (u32 s = 0; s < kStates; ++s) {
      if (metric[s] >= kInf) continue;
      for (u8 bit = 0; bit < 2; ++bit) {
        const auto exp = encode_step(s, bit);
        const u32 ns = ((static_cast<u32>(bit) << 6) | s) >> 1;
        const u32 bm = static_cast<u32>((exp[0] != r0) + (exp[1] != r1));
        const u32 cand = metric[s] + bm;
        if (cand < next[ns]) {
          next[ns] = cand;
          // Record the predecessor's low bit to rebuild the path: store the
          // input bit and the predecessor state parity bit.
          decisions[t][ns] = static_cast<u8>((s & 1) | (bit << 1));
        }
      }
    }
    metric = std::move(next);
  }

  // Traceback from state 0 (the flush drives the encoder back to 0).
  u32 state = 0;
  std::vector<u8> rev;
  rev.reserve(nsteps);
  for (usize t = nsteps; t-- > 0;) {
    const u8 d = decisions[t][state];
    const u8 bit = (d >> 1) & 1;
    rev.push_back(bit);
    // Predecessor: state' such that ((bit<<6)|s')>>1 == state.
    state = ((state << 1) | (d & 1)) & (kStates - 1);
  }
  std::reverse(rev.begin(), rev.end());
  // Drop the K-1 flush bits.
  if (rev.size() >= kK - 1) rev.resize(rev.size() - (kK - 1));
  return rev;
}

std::vector<i32> pack_bits(std::span<const u8> bits) {
  std::vector<i32> words(ceil_div<usize>(bits.size(), 32), 0);
  for (usize i = 0; i < bits.size(); ++i)
    if (bits[i] & 1)
      words[i / 32] |= static_cast<i32>(1u << (i % 32));
  return words;
}

std::vector<u8> unpack_bits(std::span<const i32> words, usize nbits) {
  std::vector<u8> bits(nbits, 0);
  for (usize i = 0; i < nbits && i / 32 < words.size(); ++i)
    bits[i] = static_cast<u8>((static_cast<u32>(words[i / 32]) >> (i % 32)) & 1);
  return bits;
}

KernelSpec make_viterbi_spec() {
  KernelSpec spec;
  spec.name = "viterbi_k7";
  spec.fn = [](std::span<const bus::word> in) {
    // All input words are coded bits; the bit count is 32*words (the caller
    // pads with zero bits, which decode as trailing zeros and are dropped by
    // framing above this layer).
    const auto coded = unpack_bits(in, in.size() * 32);
    const auto bits = viterbi_decode(coded);
    return pack_bits(bits);
  };
  // Dedicated ACS array updates all 64 states per cycle: 1 cycle per coded
  // pair (= per 2 input bits), plus traceback at ~1 cycle per step.
  spec.hw_cycles = [](usize len) {
    const u64 steps = static_cast<u64>(len) * 32 / 2;
    return steps * 2 + 70;
  };
  // SW: 64 states x 2 branches x ~6 instructions per trellis step.
  spec.sw_instructions = [](usize len) {
    const u64 steps = static_cast<u64>(len) * 32 / 2;
    return steps * 64 * 2 * 6 + steps * 4;
  };
  spec.gate_count = 45'000;  // 64 ACS units + path memory control
  return spec;
}

}  // namespace adriatic::accel
