// A workload kernel as seen by the system model: a pure function over word
// buffers plus a timing/area profile. The same spec backs a hardwired
// accelerator, a DRCF context, or a software task — which is exactly the
// comparison the paper's design-space exploration needs (Fig. 2, Sec. 5.1).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "util/types.hpp"

namespace adriatic::accel {

struct KernelSpec {
  std::string name;
  /// Pure functional behaviour: input words -> output words.
  std::function<std::vector<bus::word>(std::span<const bus::word>)> fn;
  /// Hardware compute cycles for `len` input words (spatial implementation).
  std::function<u64(usize len)> hw_cycles;
  /// Software instruction count for `len` input words (temporal
  /// implementation on the processor model).
  std::function<u64(usize len)> sw_instructions;
  /// ASIC-equivalent gate count of a dedicated implementation.
  u64 gate_count = 0;

  [[nodiscard]] bool valid() const {
    return static_cast<bool>(fn) && static_cast<bool>(hw_cycles) &&
           static_cast<bool>(sw_instructions) && !name.empty();
  }
};

}  // namespace adriatic::accel
