// Dense integer matrix multiply — the canonical data-parallel kernel for the
// MorphoSys-style coarse-grained array comparison.
#pragma once

#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// C = A * B for row-major n x n matrices.
[[nodiscard]] std::vector<i32> matmul(std::span<const i32> a,
                                      std::span<const i32> b, usize n);

/// Kernel spec: input is 2*n*n words (A then B), output n*n words.
[[nodiscard]] KernelSpec make_matmul_spec(usize n);

}  // namespace adriatic::accel
