// Rate-1/2, constraint-length-7 convolutional code (the 802.11a/g code,
// generators 133/171 octal): encoder and hard-decision Viterbi decoder.
#pragma once

#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// Encodes bits (0/1 per entry) -> 2 coded bits per input bit. The encoder
/// is flushed with K-1 = 6 tail zeros, so output size is 2*(n+6).
[[nodiscard]] std::vector<u8> conv_encode(std::span<const u8> bits);

/// Hard-decision Viterbi decode of a coded stream produced by conv_encode
/// (including the tail); returns the original bits.
[[nodiscard]] std::vector<u8> viterbi_decode(std::span<const u8> coded);

/// Word-oriented wrapper used as a DRCF context: each input word carries 32
/// coded bits (LSB first); output words carry decoded bits packed the same
/// way. `payload_bits` is fixed per invocation block.
[[nodiscard]] KernelSpec make_viterbi_spec();

/// Bit packing helpers shared with the WLAN example.
[[nodiscard]] std::vector<i32> pack_bits(std::span<const u8> bits);
[[nodiscard]] std::vector<u8> unpack_bits(std::span<const i32> words,
                                          usize nbits);

}  // namespace adriatic::accel
