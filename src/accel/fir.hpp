// Integer FIR filter (Q15 coefficients), the classic streaming DSP kernel.
#pragma once

#include <span>
#include <vector>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

/// y[n] = (sum_k taps[k] * x[n-k]) >> 15, with zero initial state.
[[nodiscard]] std::vector<i32> fir_filter(std::span<const i32> taps,
                                          std::span<const i32> x);

/// Symmetric low-pass test taps (Q15), length `n`.
[[nodiscard]] std::vector<i32> fir_lowpass_taps(usize n);

/// Kernel spec for a `taps`-tap FIR. A dedicated datapath computes one
/// output per cycle after a pipeline fill of `taps` cycles.
[[nodiscard]] KernelSpec make_fir_spec(std::vector<i32> taps);

}  // namespace adriatic::accel
