#include "accel/fir.hpp"

#include <cmath>
#include <numbers>

namespace adriatic::accel {

std::vector<i32> fir_filter(std::span<const i32> taps,
                            std::span<const i32> x) {
  std::vector<i32> y(x.size(), 0);
  for (usize n = 0; n < x.size(); ++n) {
    i64 acc = 0;
    for (usize k = 0; k < taps.size() && k <= n; ++k)
      acc += static_cast<i64>(taps[k]) * static_cast<i64>(x[n - k]);
    y[n] = static_cast<i32>(acc >> 15);
  }
  return y;
}

std::vector<i32> fir_lowpass_taps(usize n) {
  // Hamming-windowed sinc, cutoff 0.25 of Nyquist, quantized to Q15.
  std::vector<i32> taps(n);
  const double fc = 0.25;
  const double mid = static_cast<double>(n - 1) / 2.0;
  for (usize i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double sinc =
        t == 0.0 ? 2.0 * fc
                 : std::sin(2.0 * std::numbers::pi * fc * t) /
                       (std::numbers::pi * t);
    const double w =
        0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                               static_cast<double>(n - 1));
    taps[i] = static_cast<i32>(std::lround(sinc * w * 32768.0));
  }
  return taps;
}

KernelSpec make_fir_spec(std::vector<i32> taps) {
  KernelSpec spec;
  spec.name = "fir" + std::to_string(taps.size());
  const usize ntaps = taps.size();
  spec.fn = [taps = std::move(taps)](std::span<const bus::word> in) {
    return fir_filter(taps, in);
  };
  // One MAC array: output per cycle after pipeline fill.
  spec.hw_cycles = [ntaps](usize len) {
    return static_cast<u64>(len) + static_cast<u64>(ntaps);
  };
  // Software: ~2 instructions per MAC plus loop overhead.
  spec.sw_instructions = [ntaps](usize len) {
    return static_cast<u64>(len) * (2 * static_cast<u64>(ntaps) + 6);
  };
  // ~1.1k gates per Q15 MAC stage (multiplier + adder + registers).
  spec.gate_count = static_cast<u64>(ntaps) * 1100;
  return spec;
}

}  // namespace adriatic::accel
