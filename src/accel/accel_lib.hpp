// Umbrella header for the workload kernels.
#pragma once

#include "accel/aes.hpp"
#include "accel/crc.hpp"
#include "accel/dct.hpp"
#include "accel/fft.hpp"
#include "accel/fir.hpp"
#include "accel/kernel_spec.hpp"
#include "accel/matmul.hpp"
#include "accel/motion.hpp"
#include "accel/viterbi.hpp"
#include "accel/zigzag_rle.hpp"
