// AES-128 block encryption — the link-layer security kernel; a good DRCF
// context because its gate cost rivals the DSP kernels but it is active in
// different runtime periods than the receive chain.
#pragma once

#include <array>
#include <span>

#include "accel/kernel_spec.hpp"

namespace adriatic::accel {

using AesKey = std::array<u8, 16>;
using AesBlock = std::array<u8, 16>;

/// Encrypts one 16-byte block with AES-128 (FIPS-197).
[[nodiscard]] AesBlock aes128_encrypt(const AesBlock& plain, const AesKey& key);

/// Kernel spec: processes input as 4-word (16-byte) blocks in ECB mode with
/// the given key; trailing partial blocks are zero-padded.
[[nodiscard]] KernelSpec make_aes_spec(const AesKey& key);

}  // namespace adriatic::accel
