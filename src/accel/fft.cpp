#include "accel/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/types.hpp"

namespace adriatic::accel {
namespace {

usize bit_reverse(usize x, unsigned bits) {
  usize r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (x & 1);
    x >>= 1;
  }
  return r;
}

i16 sat16(i32 v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<i16>(v);
}

}  // namespace

std::vector<std::complex<double>> fft_ref(
    std::span<const std::complex<double>> in) {
  const usize n = in.size();
  std::vector<std::complex<double>> out(n);
  for (usize k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (usize t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += in[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<i32> fft_q15(std::span<const i32> packed_in) {
  const usize n = packed_in.size();
  if (!is_pow2(n) || n < 2)
    throw std::invalid_argument("fft_q15: length must be a power of two >= 2");
  const unsigned bits = static_cast<unsigned>(__builtin_ctzll(n));

  // Unpack with bit-reversed reordering.
  std::vector<i32> re(n), im(n);
  for (usize i = 0; i < n; ++i) {
    const usize j = bit_reverse(i, bits);
    re[i] = unpack_re(packed_in[j]);
    im[i] = unpack_im(packed_in[j]);
  }

  for (usize len = 2; len <= n; len <<= 1) {
    const usize half = len / 2;
    for (usize base = 0; base < n; base += len) {
      for (usize k = 0; k < half; ++k) {
        const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(len);
        const i32 wr = static_cast<i32>(std::lround(std::cos(ang) * 32767.0));
        const i32 wi = static_cast<i32>(std::lround(std::sin(ang) * 32767.0));
        const usize a = base + k;
        const usize b = base + k + half;
        // t = w * x[b]  (Q15 multiply)
        const i32 tr = static_cast<i32>(
            (static_cast<i64>(wr) * re[b] - static_cast<i64>(wi) * im[b]) >>
            15);
        const i32 ti = static_cast<i32>(
            (static_cast<i64>(wr) * im[b] + static_cast<i64>(wi) * re[b]) >>
            15);
        // Butterfly with 1/2 scaling per stage.
        const i32 ar = re[a], ai = im[a];
        re[a] = (ar + tr) >> 1;
        im[a] = (ai + ti) >> 1;
        re[b] = (ar - tr) >> 1;
        im[b] = (ai - ti) >> 1;
      }
    }
  }

  std::vector<i32> out(n);
  for (usize i = 0; i < n; ++i) out[i] = pack_cplx(sat16(re[i]), sat16(im[i]));
  return out;
}

KernelSpec make_fft_spec(usize n_points) {
  if (!is_pow2(n_points))
    throw std::invalid_argument("make_fft_spec: N must be a power of two");
  KernelSpec spec;
  spec.name = "fft" + std::to_string(n_points);
  spec.fn = [](std::span<const bus::word> in) { return fft_q15(in); };
  const u64 n = n_points;
  const u64 log2n = static_cast<u64>(__builtin_ctzll(n_points));
  // One butterfly per cycle; transforms of ceil(len/N) blocks.
  spec.hw_cycles = [n, log2n](usize len) {
    const u64 blocks = ceil_div<u64>(len, n);
    return blocks * (n / 2) * log2n + 8;  // + pipeline latency
  };
  // SW: ~20 instructions per butterfly (complex MAC in scalar integer code).
  spec.sw_instructions = [n, log2n](usize len) {
    const u64 blocks = ceil_div<u64>(len, n);
    return blocks * (n / 2) * log2n * 20 + 64;
  };
  // Butterfly datapath (4 multipliers, 6 adders) + twiddle ROM + control.
  spec.gate_count = 18'000 + 40 * n;  // grows with transform buffer
  return spec;
}

}  // namespace adriatic::accel
