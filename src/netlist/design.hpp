// Declarative design description — the structural netlist the DRCF
// transformation (paper Fig. 4) operates on. C++ has no reflection over live
// object graphs, and the paper's own tooling transformed SystemC source; we
// transform this netlist instead and elaborate either the original or the
// transformed architecture into live modules. The four paper phases map to:
//   analyse module   -> inspect a ComponentDecl's interface/ports (typed)
//   analyse instance -> inspect its recorded bindings
//   create DRCF      -> insert a DrcfDecl wrapping the candidates
//   modify instance  -> rewrite the candidates' bus bindings
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "accel/kernel_spec.hpp"
#include "bus/bus.hpp"
#include "drcf/context.hpp"
#include "drcf/drcf.hpp"
#include "kernel/time.hpp"
#include "soc/irq.hpp"
#include "soc/iss.hpp"
#include "soc/processor.hpp"
#include "soc/traffic_gen.hpp"
#include "util/types.hpp"

namespace adriatic::netlist {

struct BusDecl {
  bus::BusConfig config;
};

/// Zero-contention point-to-point link to one slave component.
struct DirectLinkDecl {
  kern::Time word_time = kern::Time::ns(10);
  std::string slave;  ///< Component name the link connects to.
};

struct MemoryDecl {
  bus::addr_t low = 0;
  usize words = 0;
  kern::Time read_latency = kern::Time::zero();
  kern::Time write_latency = kern::Time::zero();
  std::string bus;  ///< Bus this memory is a slave of ("" = unbound).
};

struct HwAccelDecl {
  bus::addr_t base = 0;
  accel::KernelSpec spec;
  kern::Time cycle_time = kern::Time::ns(10);
  std::string slave_bus;   ///< Bus exposing the register window.
  std::string master_bus;  ///< Bus the accelerator fetches data over.
};

struct DmaDecl {
  bus::addr_t base = 0;
  usize chunk_words = 16;
  std::string slave_bus;
  std::string master_bus;
};

struct ProcessorDecl {
  soc::ProcessorConfig config;
  soc::Processor::Program program;
  std::string master_bus;
};

/// Binary-software core: executes `program` (assembled TinyRISC subset)
/// from the named code memory, fetching instructions over the bus.
struct IssDecl {
  soc::IssConfig config;
  morphosys::Program program;
  std::string master_bus;
  /// Memory holding the program image; the elaborator encodes and loads
  /// `program` at config.reset_pc inside this memory.
  std::string code_memory;
};

/// Bus-to-bus bridge: a slave window on the upstream bus forwarded to the
/// downstream bus at (address + offset).
struct BridgeDecl {
  bus::addr_t low = 0;
  bus::addr_t high = 0;
  i64 offset = 0;
  std::string upstream_bus;
  std::string downstream_bus;
};

struct IrqControllerDecl {
  bus::addr_t base = 0;
  std::string bus;
  /// line index -> accelerator component whose done_event drives it.
  std::vector<std::pair<u32, std::string>> lines;
};

struct TrafficGenDecl {
  soc::TrafficGenConfig config;
  std::string master_bus;
};

/// Produced by the transformation pass (a designer can also write it by
/// hand): wraps previously declared HwAccel components as DRCF contexts.
struct DrcfDecl {
  drcf::DrcfConfig config;
  std::vector<std::string> contexts;  ///< Names of wrapped components.
  std::vector<drcf::ContextParams> context_params;  ///< One per context.
  std::string slave_bus;   ///< Bus the DRCF serves.
  std::string config_bus;  ///< Bus/link for configuration fetches.
};

using Decl =
    std::variant<BusDecl, DirectLinkDecl, MemoryDecl, HwAccelDecl, DmaDecl,
                 ProcessorDecl, TrafficGenDecl, DrcfDecl, IssDecl,
                 IrqControllerDecl, BridgeDecl>;

class Design {
 public:
  /// Adds a component; throws on duplicate names.
  void add(const std::string& name, Decl decl);
  void remove(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const {
    return decls_.count(name) != 0;
  }
  [[nodiscard]] const Decl& at(const std::string& name) const;
  [[nodiscard]] Decl& at(const std::string& name);

  template <typename T>
  [[nodiscard]] const T* get_if(const std::string& name) const {
    auto it = decls_.find(name);
    return it == decls_.end() ? nullptr : std::get_if<T>(&it->second);
  }
  template <typename T>
  [[nodiscard]] T* get_if(const std::string& name) {
    auto it = decls_.find(name);
    return it == decls_.end() ? nullptr : std::get_if<T>(&it->second);
  }

  /// Names in insertion order (elaboration is deterministic).
  [[nodiscard]] const std::vector<std::string>& names() const {
    return order_;
  }

  /// Structural checks: dangling bus references, type mismatches.
  /// Returns human-readable problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  std::map<std::string, Decl> decls_;
  std::vector<std::string> order_;
};

/// Short type tag for reports ("bus", "hwacc", ...).
[[nodiscard]] const char* decl_kind(const Decl& d);

}  // namespace adriatic::netlist
