#include "netlist/report.hpp"

#include <ostream>

#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace adriatic::netlist {

SystemReport::SystemReport(const Design& design, const Elaborated& system)
    : design_(&design), system_(&system) {}

void SystemReport::print(std::ostream& os) const {
  const auto now = system_->top().sim().now();
  os << "=== system report @ " << now.str() << " ===\n";

  Table buses("buses");
  buses.header({"name", "reads", "writes", "beats", "bursts", "unmapped",
                "errors", "utilization", "arb waits"});
  Table mems("memories");
  mems.header({"name", "words", "reads", "writes", "errors"});
  Table accs("accelerators");
  accs.header({"name", "kernel", "invocations", "words in", "words out",
               "compute time"});
  Table cpus("processors");
  cpus.header({"name", "instructions", "bus reads", "bus writes",
               "compute time", "finished"});
  Table drcfs("DRCFs");
  drcfs.header({"name", "contexts", "switches", "hits", "misses",
                "config words", "fetch errors", "reconfig time",
                "reconfig energy [uJ]"});

  for (const auto& name : design_->names()) {
    const Decl& d = design_->at(name);
    if (std::holds_alternative<BusDecl>(d)) {
      const auto& b = system_->get_bus(name);
      const auto& s = b.stats();
      buses.row({name, Table::integer(static_cast<long long>(s.reads)),
                 Table::integer(static_cast<long long>(s.writes)),
                 Table::integer(static_cast<long long>(s.beats)),
                 Table::integer(static_cast<long long>(s.bursts)),
                 Table::integer(static_cast<long long>(s.unmapped)),
                 Table::integer(static_cast<long long>(s.slave_errors)),
                 Table::num(b.utilization(), 3),
                 Table::integer(
                     static_cast<long long>(b.arbiter().contended_grants()))});
    } else if (std::holds_alternative<MemoryDecl>(d)) {
      const auto& m = system_->get_memory(name);
      mems.row({name, Table::integer(static_cast<long long>(m.size_words())),
                Table::integer(static_cast<long long>(m.stats().reads)),
                Table::integer(static_cast<long long>(m.stats().writes)),
                Table::integer(static_cast<long long>(m.stats().errors))});
    } else if (std::holds_alternative<HwAccelDecl>(d)) {
      const auto& a = system_->get_hwacc(name);
      accs.row({name, a.spec().name,
                Table::integer(static_cast<long long>(a.stats().invocations)),
                Table::integer(static_cast<long long>(a.stats().words_in)),
                Table::integer(static_cast<long long>(a.stats().words_out)),
                a.stats().compute_time.str()});
    } else if (std::holds_alternative<ProcessorDecl>(d)) {
      const auto& p = system_->get_processor(name);
      cpus.row({name,
                Table::integer(static_cast<long long>(p.stats().instructions)),
                Table::integer(static_cast<long long>(p.stats().bus_reads)),
                Table::integer(static_cast<long long>(p.stats().bus_writes)),
                p.stats().compute_time.str(), p.finished() ? "yes" : "no"});
    } else if (std::holds_alternative<DrcfDecl>(d)) {
      const auto& f = system_->get_drcf(name);
      const auto& s = f.stats();
      drcfs.row(
          {name, Table::integer(static_cast<long long>(f.context_count())),
           Table::integer(static_cast<long long>(s.switches)),
           Table::integer(static_cast<long long>(s.hits)),
           Table::integer(static_cast<long long>(s.misses)),
           Table::integer(static_cast<long long>(s.config_words_fetched)),
           Table::integer(static_cast<long long>(s.fetch_errors)),
           s.reconfig_busy_time.str(),
           Table::num(s.reconfig_energy_j * 1e6, 2)});
    }
  }

  for (const Table* t : {&buses, &mems, &accs, &cpus, &drcfs})
    if (t->rows() > 0) t->print(os);
}

std::string SystemReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("sim_time_ns", system_->top().sim().now().to_ns());
  w.key("components");
  w.begin_array();
  for (const auto& name : design_->names()) {
    const Decl& d = design_->at(name);
    if (std::holds_alternative<BusDecl>(d)) {
      const auto& b = system_->get_bus(name);
      w.begin_object();
      w.field("name", name).field("kind", "bus");
      w.field("reads", b.stats().reads).field("writes", b.stats().writes);
      w.field("beats", b.stats().beats);
      w.field("utilization", b.utilization());
      w.end();
    } else if (std::holds_alternative<MemoryDecl>(d)) {
      const auto& m = system_->get_memory(name);
      w.begin_object();
      w.field("name", name).field("kind", "memory");
      w.field("reads", m.stats().reads).field("writes", m.stats().writes);
      w.end();
    } else if (std::holds_alternative<HwAccelDecl>(d)) {
      const auto& a = system_->get_hwacc(name);
      w.begin_object();
      w.field("name", name).field("kind", "hwacc");
      w.field("kernel", a.spec().name);
      w.field("invocations", a.stats().invocations);
      w.field("compute_time_ns", a.stats().compute_time.to_ns());
      w.end();
    } else if (std::holds_alternative<ProcessorDecl>(d)) {
      const auto& p = system_->get_processor(name);
      w.begin_object();
      w.field("name", name).field("kind", "processor");
      w.field("instructions", p.stats().instructions);
      w.field("finished", p.finished());
      w.end();
    } else if (std::holds_alternative<DrcfDecl>(d)) {
      const auto& f = system_->get_drcf(name);
      w.begin_object();
      w.field("name", name).field("kind", "drcf");
      w.field("switches", f.stats().switches);
      w.field("hits", f.stats().hits);
      w.field("misses", f.stats().misses);
      w.field("config_words_fetched", f.stats().config_words_fetched);
      w.field("reconfig_time_ns", f.stats().reconfig_busy_time.to_ns());
      w.field("reconfig_energy_j", f.stats().reconfig_energy_j);
      w.key("contexts");
      w.begin_array();
      for (usize i = 0; i < f.context_count(); ++i) {
        const auto cs = f.context_stats(i);
        w.begin_object();
        w.field("index", static_cast<u64>(i));
        w.field("activations", cs.activations);
        w.field("accesses", cs.accesses);
        w.field("active_time_ns", cs.active_time.to_ns());
        w.field("reconfig_time_ns", cs.reconfig_time.to_ns());
        w.end();
      }
      w.end();
      w.end();
    }
  }
  w.end();
  w.end();
  return w.str();
}

}  // namespace adriatic::netlist
