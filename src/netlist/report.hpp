// System-wide statistics report over an elaborated design: every bus,
// memory, accelerator, processor and DRCF contributes its counters, printed
// as aligned tables or exported as JSON for downstream DSE tooling.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"

namespace adriatic::netlist {

class SystemReport {
 public:
  SystemReport(const Design& design, const Elaborated& system);

  /// Aligned-table dump of all component statistics.
  void print(std::ostream& os) const;

  /// JSON export: {"sim_time_ns": ..., "components": [{...}, ...]}.
  [[nodiscard]] std::string to_json() const;

 private:
  const Design* design_;
  const Elaborated* system_;
};

}  // namespace adriatic::netlist
