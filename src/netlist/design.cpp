#include "netlist/design.hpp"

#include <algorithm>
#include <stdexcept>

namespace adriatic::netlist {

void Design::add(const std::string& name, Decl decl) {
  if (name.empty()) throw std::invalid_argument("Design: empty name");
  auto [it, inserted] = decls_.emplace(name, std::move(decl));
  if (!inserted)
    throw std::invalid_argument("Design: duplicate component " + name);
  order_.push_back(name);
}

void Design::remove(const std::string& name) {
  if (decls_.erase(name) == 0)
    throw std::out_of_range("Design: no component " + name);
  std::erase(order_, name);
}

const Decl& Design::at(const std::string& name) const {
  auto it = decls_.find(name);
  if (it == decls_.end())
    throw std::out_of_range("Design: no component " + name);
  return it->second;
}

Decl& Design::at(const std::string& name) {
  auto it = decls_.find(name);
  if (it == decls_.end())
    throw std::out_of_range("Design: no component " + name);
  return it->second;
}

const char* decl_kind(const Decl& d) {
  struct Visitor {
    const char* operator()(const BusDecl&) const { return "bus"; }
    const char* operator()(const DirectLinkDecl&) const { return "link"; }
    const char* operator()(const MemoryDecl&) const { return "memory"; }
    const char* operator()(const HwAccelDecl&) const { return "hwacc"; }
    const char* operator()(const DmaDecl&) const { return "dma"; }
    const char* operator()(const ProcessorDecl&) const { return "processor"; }
    const char* operator()(const TrafficGenDecl&) const { return "traffic"; }
    const char* operator()(const DrcfDecl&) const { return "drcf"; }
    const char* operator()(const IssDecl&) const { return "iss"; }
    const char* operator()(const IrqControllerDecl&) const { return "irq"; }
    const char* operator()(const BridgeDecl&) const { return "bridge"; }
  };
  return std::visit(Visitor{}, d);
}

std::vector<std::string> Design::validate() const {
  std::vector<std::string> problems;
  auto check_bus = [&](const std::string& owner, const std::string& ref,
                       bool allow_link, bool allow_empty) {
    if (ref.empty()) {
      if (!allow_empty) problems.push_back(owner + ": missing bus binding");
      return;
    }
    auto it = decls_.find(ref);
    if (it == decls_.end()) {
      problems.push_back(owner + ": binding to unknown component '" + ref +
                         "'");
      return;
    }
    const bool is_bus = std::holds_alternative<BusDecl>(it->second);
    const bool is_link = std::holds_alternative<DirectLinkDecl>(it->second);
    if (!is_bus && !(allow_link && is_link))
      problems.push_back(owner + ": '" + ref + "' is a " +
                         decl_kind(it->second) + ", expected a bus" +
                         (allow_link ? " or link" : ""));
  };

  for (const auto& name : order_) {
    const Decl& d = decls_.at(name);
    if (const auto* m = std::get_if<MemoryDecl>(&d)) {
      if (m->words == 0) problems.push_back(name + ": zero-size memory");
      check_bus(name, m->bus, false, true);
    } else if (const auto* h = std::get_if<HwAccelDecl>(&d)) {
      if (!h->spec.valid()) problems.push_back(name + ": invalid kernel spec");
      check_bus(name, h->slave_bus, false, true);
      check_bus(name, h->master_bus, true, false);
    } else if (const auto* dm = std::get_if<DmaDecl>(&d)) {
      check_bus(name, dm->slave_bus, false, false);
      check_bus(name, dm->master_bus, true, false);
    } else if (const auto* p = std::get_if<ProcessorDecl>(&d)) {
      if (!p->program) problems.push_back(name + ": null program");
      check_bus(name, p->master_bus, true, false);
    } else if (const auto* t = std::get_if<TrafficGenDecl>(&d)) {
      check_bus(name, t->master_bus, true, false);
    } else if (const auto* l = std::get_if<DirectLinkDecl>(&d)) {
      if (!contains(l->slave))
        problems.push_back(name + ": link to unknown component '" + l->slave +
                           "'");
    } else if (const auto* is = std::get_if<IssDecl>(&d)) {
      check_bus(name, is->master_bus, true, false);
      if (is->program.empty()) problems.push_back(name + ": empty program");
      if (!contains(is->code_memory)) {
        problems.push_back(name + ": unknown code memory '" +
                           is->code_memory + "'");
      } else if (!std::holds_alternative<MemoryDecl>(
                     decls_.at(is->code_memory))) {
        problems.push_back(name + ": code memory '" + is->code_memory +
                           "' is not a memory");
      }
    } else if (const auto* br = std::get_if<BridgeDecl>(&d)) {
      check_bus(name, br->upstream_bus, false, false);
      check_bus(name, br->downstream_bus, false, false);
      if (br->low > br->high)
        problems.push_back(name + ": inverted bridge window");
      if (br->upstream_bus == br->downstream_bus &&
          !br->upstream_bus.empty())
        problems.push_back(name + ": bridge loops back onto its own bus");
    } else if (const auto* ic = std::get_if<IrqControllerDecl>(&d)) {
      check_bus(name, ic->bus, false, false);
      for (const auto& [line, src] : ic->lines) {
        if (line >= 32)
          problems.push_back(name + ": IRQ line out of range");
        if (!contains(src) ||
            !std::holds_alternative<HwAccelDecl>(decls_.at(src)))
          problems.push_back(name + ": IRQ source '" + src +
                             "' is not a hwacc component");
      }
    } else if (const auto* dr = std::get_if<DrcfDecl>(&d)) {
      check_bus(name, dr->slave_bus, false, false);
      check_bus(name, dr->config_bus, true, false);
      if (dr->contexts.size() != dr->context_params.size())
        problems.push_back(name + ": context/params size mismatch");
      for (const auto& c : dr->contexts) {
        if (!contains(c)) {
          problems.push_back(name + ": wraps unknown component '" + c + "'");
        } else if (!std::holds_alternative<HwAccelDecl>(decls_.at(c))) {
          problems.push_back(name + ": wrapped component '" + c +
                             "' has no bus-slave address interface");
        }
      }
    }
  }
  return problems;
}

}  // namespace adriatic::netlist
