// Elaborator: instantiates a Design into live simulation modules under one
// top-level module, performing all port/slave bindings — the netlist
// counterpart of SystemC's construction + binding phase.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/bus_lib.hpp"
#include "drcf/drcf.hpp"
#include "kernel/kernel.hpp"
#include "memory/memory.hpp"
#include "netlist/design.hpp"
#include "soc/soc_lib.hpp"

namespace adriatic::netlist {

class Elaborated {
 public:
  /// Builds every component of `design` as children of a new module named
  /// `top_name`. Throws std::invalid_argument when validate() fails.
  Elaborated(kern::Simulation& sim, const Design& design,
             const std::string& top_name = "top");

  [[nodiscard]] kern::Module& top() noexcept { return *top_; }
  [[nodiscard]] const kern::Module& top() const noexcept { return *top_; }

  // Typed lookups; throw std::out_of_range on unknown name or wrong type.
  [[nodiscard]] bus::Bus& get_bus(const std::string& name) const;
  [[nodiscard]] bus::DirectLink& get_link(const std::string& name) const;
  [[nodiscard]] mem::Memory& get_memory(const std::string& name) const;
  [[nodiscard]] soc::HwAccel& get_hwacc(const std::string& name) const;
  [[nodiscard]] soc::Dma& get_dma(const std::string& name) const;
  [[nodiscard]] soc::Processor& get_processor(const std::string& name) const;
  [[nodiscard]] soc::TrafficGen& get_traffic(const std::string& name) const;
  [[nodiscard]] drcf::Drcf& get_drcf(const std::string& name) const;
  [[nodiscard]] soc::IssProcessor& get_iss(const std::string& name) const;
  [[nodiscard]] soc::InterruptController& get_irq(
      const std::string& name) const;

  [[nodiscard]] bool has(const std::string& name) const {
    return objects_.count(name) != 0;
  }

  /// Synthetic configuration bitstreams are written into config memories at
  /// elaboration (pattern 0xC0DE0000 | context-index) so fetches return
  /// recognisable data.
  static constexpr u32 kBitstreamPattern = 0xC0DE0000u;

 private:
  template <typename T>
  [[nodiscard]] T& get_as(const std::string& name) const;

  [[nodiscard]] bus::BusMasterIf& master_if(const std::string& name) const;

  std::unique_ptr<kern::Module> top_;
  std::vector<std::unique_ptr<kern::Object>> owned_;
  std::map<std::string, kern::Object*> objects_;
};

}  // namespace adriatic::netlist
