#include "netlist/elaborate.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace adriatic::netlist {

namespace {
[[noreturn]] void fail_validation(const std::vector<std::string>& problems) {
  std::string msg = "Design validation failed:";
  for (const auto& p : problems) msg += "\n  - " + p;
  throw std::invalid_argument(msg);
}
}  // namespace

Elaborated::Elaborated(kern::Simulation& sim, const Design& design,
                       const std::string& top_name) {
  const auto problems = design.validate();
  if (!problems.empty()) fail_validation(problems);

  top_ = std::make_unique<kern::Module>(sim, top_name);

  // Pass 1: construct buses and memories (binding targets).
  for (const auto& name : design.names()) {
    const Decl& d = design.at(name);
    if (const auto* b = std::get_if<BusDecl>(&d)) {
      auto obj = std::make_unique<bus::Bus>(*top_, name, b->config);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* m = std::get_if<MemoryDecl>(&d)) {
      auto obj = std::make_unique<mem::Memory>(
          *top_, name, m->low, m->words, m->read_latency, m->write_latency);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    }
  }

  // Pass 2: construct everything else.
  for (const auto& name : design.names()) {
    const Decl& d = design.at(name);
    if (const auto* h = std::get_if<HwAccelDecl>(&d)) {
      auto obj = std::make_unique<soc::HwAccel>(*top_, name, h->base, h->spec,
                                                h->cycle_time);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* dm = std::get_if<DmaDecl>(&d)) {
      auto obj =
          std::make_unique<soc::Dma>(*top_, name, dm->base, dm->chunk_words);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* p = std::get_if<ProcessorDecl>(&d)) {
      auto obj =
          std::make_unique<soc::Processor>(*top_, name, p->config, p->program);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* t = std::get_if<TrafficGenDecl>(&d)) {
      auto obj = std::make_unique<soc::TrafficGen>(*top_, name, t->config);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* l = std::get_if<DirectLinkDecl>(&d)) {
      auto obj = std::make_unique<bus::DirectLink>(*top_, name, l->word_time);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* dr = std::get_if<DrcfDecl>(&d)) {
      auto obj = std::make_unique<drcf::Drcf>(*top_, name, dr->config);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* is = std::get_if<IssDecl>(&d)) {
      auto obj = std::make_unique<soc::IssProcessor>(*top_, name, is->config);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* ic = std::get_if<IrqControllerDecl>(&d)) {
      auto obj =
          std::make_unique<soc::InterruptController>(*top_, name, ic->base);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    } else if (const auto* br = std::get_if<BridgeDecl>(&d)) {
      auto obj = std::make_unique<bus::Bridge>(*top_, name, br->low, br->high,
                                               br->offset);
      objects_[name] = obj.get();
      owned_.push_back(std::move(obj));
    }
  }

  // Pass 3: bindings.
  for (const auto& name : design.names()) {
    const Decl& d = design.at(name);
    if (const auto* m = std::get_if<MemoryDecl>(&d)) {
      if (!m->bus.empty()) get_bus(m->bus).bind_slave(get_memory(name));
    } else if (const auto* l = std::get_if<DirectLinkDecl>(&d)) {
      auto* slave = dynamic_cast<bus::BusSlaveIf*>(objects_.at(l->slave));
      if (slave == nullptr)
        throw std::invalid_argument(name + ": link target '" + l->slave +
                                    "' is not a bus slave");
      get_link(name).bind_slave(*slave);
    }
  }
  for (const auto& name : design.names()) {
    const Decl& d = design.at(name);
    if (const auto* h = std::get_if<HwAccelDecl>(&d)) {
      auto& acc = get_hwacc(name);
      if (!h->slave_bus.empty()) get_bus(h->slave_bus).bind_slave(acc);
      acc.mst_port.bind(master_if(h->master_bus));
    } else if (const auto* dm = std::get_if<DmaDecl>(&d)) {
      auto& dma = get_dma(name);
      get_bus(dm->slave_bus).bind_slave(dma);
      dma.mst_port.bind(master_if(dm->master_bus));
    } else if (const auto* p = std::get_if<ProcessorDecl>(&d)) {
      get_processor(name).mst_port.bind(master_if(p->master_bus));
    } else if (const auto* is = std::get_if<IssDecl>(&d)) {
      auto& core = get_iss(name);
      core.mst_port.bind(master_if(is->master_bus));
      // Encode and load the program image into the code memory.
      const auto image = soc::encode_program(is->program);
      get_memory(is->code_memory).load(is->config.reset_pc, image);
    } else if (const auto* ic = std::get_if<IrqControllerDecl>(&d)) {
      auto& ctrl = get_irq(name);
      get_bus(ic->bus).bind_slave(ctrl);
      for (const auto& [line, src] : ic->lines)
        ctrl.connect(line, get_hwacc(src).done_event());
    } else if (const auto* br = std::get_if<BridgeDecl>(&d)) {
      auto& bridge = get_as<bus::Bridge>(name);
      get_bus(br->upstream_bus).bind_slave(bridge);
      bridge.mst_port.bind(get_bus(br->downstream_bus));
    } else if (const auto* t = std::get_if<TrafficGenDecl>(&d)) {
      get_traffic(name).mst_port.bind(master_if(t->master_bus));
    } else if (const auto* dr = std::get_if<DrcfDecl>(&d)) {
      auto& fabric = get_drcf(name);
      for (usize i = 0; i < dr->contexts.size(); ++i) {
        auto& inner = get_hwacc(dr->contexts[i]);
        const usize ctx = fabric.add_context(inner, dr->context_params[i]);
        // Write a synthetic bitstream so configuration fetches return
        // recognisable words.
        const auto& params = fabric.context_params(ctx);
        for (const auto& mem_name : design.names()) {
          if (const auto* mm = design.get_if<MemoryDecl>(mem_name)) {
            auto& mem = get_memory(mem_name);
            if (params.config_address >= mem.get_low_add() &&
                params.config_address + params.size_words - 1 <=
                    mem.get_high_add()) {
              // Fold the words into the expected digest as they are placed,
              // arming the fabric's fetch integrity check for this context.
              const auto word = static_cast<bus::word>(
                  kBitstreamPattern | static_cast<u32>(ctx));
              const std::vector<bus::word> bits(params.size_words, word);
              u64 digest = drcf::kConfigDigestSeed;
              for (u64 w = 0; w < params.size_words; ++w)
                digest = drcf::config_digest_step(digest, bits[w]);
              // Bitstreams are shared read-mostly data: intern the image
              // process-wide and attach it page-for-page when the placement
              // allows, so identical contexts across campaign jobs alias one
              // golden copy instead of materialising private pages.
              const usize off = params.config_address - mem.get_low_add();
              if (off % mem::kPageWords == 0 &&
                  mem.backing().pages_untouched(off, params.size_words)) {
                mem.attach_image(mem::ImageRegistry::instance().intern(bits),
                                 params.config_address);
              } else {
                for (u64 w = 0; w < params.size_words; ++w)
                  mem.poke(
                      params.config_address + static_cast<bus::addr_t>(w),
                      bits[w]);
              }
              fabric.set_expected_digest(ctx, digest);
              break;
            }
            (void)mm;
          }
        }
      }
      get_bus(dr->slave_bus).bind_slave(fabric);
      fabric.mst_port.bind(master_if(dr->config_bus));
    }
  }
}

bus::BusMasterIf& Elaborated::master_if(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end())
    throw std::out_of_range("Elaborated: no component " + name);
  if (auto* b = dynamic_cast<bus::Bus*>(it->second)) return *b;
  if (auto* l = dynamic_cast<bus::DirectLink*>(it->second)) return *l;
  throw std::out_of_range("Elaborated: '" + name + "' is not a bus or link");
}

template <typename T>
T& Elaborated::get_as(const std::string& name) const {
  auto it = objects_.find(name);
  if (it == objects_.end())
    throw std::out_of_range("Elaborated: no component " + name);
  auto* p = dynamic_cast<T*>(it->second);
  if (p == nullptr)
    throw std::out_of_range("Elaborated: '" + name + "' has kind " +
                            it->second->kind());
  return *p;
}

bus::Bus& Elaborated::get_bus(const std::string& n) const {
  return get_as<bus::Bus>(n);
}
bus::DirectLink& Elaborated::get_link(const std::string& n) const {
  return get_as<bus::DirectLink>(n);
}
mem::Memory& Elaborated::get_memory(const std::string& n) const {
  return get_as<mem::Memory>(n);
}
soc::HwAccel& Elaborated::get_hwacc(const std::string& n) const {
  return get_as<soc::HwAccel>(n);
}
soc::Dma& Elaborated::get_dma(const std::string& n) const {
  return get_as<soc::Dma>(n);
}
soc::Processor& Elaborated::get_processor(const std::string& n) const {
  return get_as<soc::Processor>(n);
}
soc::TrafficGen& Elaborated::get_traffic(const std::string& n) const {
  return get_as<soc::TrafficGen>(n);
}
drcf::Drcf& Elaborated::get_drcf(const std::string& n) const {
  return get_as<drcf::Drcf>(n);
}
soc::IssProcessor& Elaborated::get_iss(const std::string& n) const {
  return get_as<soc::IssProcessor>(n);
}
soc::InterruptController& Elaborated::get_irq(const std::string& n) const {
  return get_as<soc::InterruptController>(n);
}

}  // namespace adriatic::netlist
