#include "campaign/report.hpp"

#include <fstream>

#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace adriatic::campaign {

std::string report_json(const std::string& name, usize threads,
                        const std::vector<JobStats>& stats,
                        const ServiceTotals* service) {
  JsonWriter w;
  w.begin_object();
  w.field("campaign", name);
  w.field("threads", static_cast<u64>(threads));
  w.key("jobs").begin_array();
  double total_wall = 0;
  u64 total_deltas = 0;
  u64 done = 0;
  u64 failed = 0;
  u64 quarantined = 0;
  u64 total_fetch_errors = 0;
  u64 total_injected = 0;
  u64 total_cache_hits = 0;
  u64 total_worker_deaths = 0;
  u64 peak_resident = 0;
  u64 total_cow_splits = 0;
  u64 total_ecc_corrected = 0;
  u64 total_ecc_uncorrectable = 0;
  u64 budget_quarantined = 0;
  for (const JobStats& s : stats) {
    // A record with done == false is a still-queued/running placeholder
    // (stats() taken before wait_idle()): its metrics are zeros, not
    // measurements, so flag it per job and keep it out of the totals.
    if (s.done) {
      ++done;
      total_wall += s.wall_seconds;
      total_deltas += s.delta_count;
    }
    if (s.failed) ++failed;
    if (s.quarantined) ++quarantined;
    total_fetch_errors += s.fetch_errors;
    total_injected += s.faults_injected;
    if (s.from_cache) ++total_cache_hits;
    total_worker_deaths += s.worker_deaths;
    if (s.has_memory) {
      if (s.mem_resident_peak_bytes > peak_resident)
        peak_resident = s.mem_resident_peak_bytes;
      total_cow_splits += s.mem_cow_splits;
      total_ecc_corrected += s.ecc_corrected;
      total_ecc_uncorrectable += s.ecc_uncorrectable;
    }
    if (s.quarantined && s.quarantine_reason == "budget-quarantined")
      ++budget_quarantined;
    w.begin_object();
    w.field("index", static_cast<u64>(s.index));
    w.field("label", s.label);
    w.field("done", s.done);
    w.field("wall_seconds", s.wall_seconds);
    w.field("sim_time_ns", s.sim_time.to_ns());
    w.field("delta_cycles", s.delta_count);
    w.field("activations", s.activations);
    if (s.digest != 0)
      w.field("digest",
              strfmt("%016llx", static_cast<unsigned long long>(s.digest)));
    w.field("failed", s.failed);
    if (s.failed) w.field("error", s.error);
    if (s.attempts > 1) w.field("attempts", static_cast<u64>(s.attempts));
    if (s.quarantined) {
      w.field("quarantined", true);
      w.field("quarantine_reason", s.quarantine_reason);
    }
    // Cross-run dedup / crash-containment markers (process mode + cache).
    if (s.from_cache) w.field("cached", true);
    if (s.worker_deaths > 0) w.field("worker_deaths", s.worker_deaths);
    // The fault summary: availability/degradation curves come from plotting
    // these per-job counters against the jobs' sweep parameters.
    if (s.has_faults) {
      w.key("faults").begin_object();
      w.field("fetch_errors", s.fetch_errors);
      w.field("injected", s.faults_injected);
      w.field("events", s.fault_events);
      w.field("ledger_digest",
              strfmt("%016llx",
                     static_cast<unsigned long long>(s.fault_digest)));
      w.end();
    }
    // The prefetch summary: latency-hiding curves come from plotting these
    // per-job counters against the jobs' scheduler-policy parameters.
    if (s.has_prefetch) {
      w.key("prefetch").begin_object();
      w.field("prefetch_hits", s.prefetch_hits);
      w.field("cache_hits", s.cache_hits);
      w.field("config_words_fetched", s.config_words_fetched);
      w.field("hidden_latency_ns", s.hidden_latency.to_ns());
      w.end();
    }
    // The timing summary: speed/accuracy curves come from plotting a job's
    // wall time and sync count against its mode and quantum.
    if (s.has_timing) {
      w.key("timing").begin_object();
      w.field("mode", s.loose ? "loose" : "timed");
      w.field("quantum_ns", s.quantum.to_ns());
      w.field("loose_syncs", s.loose_syncs);
      w.end();
    }
    // The memory summary: resident-set and degradation curves come from
    // plotting page/COW counters against sweep size and budget limits.
    if (s.has_memory) {
      w.key("memory").begin_object();
      w.field("resident_peak_bytes", s.mem_resident_peak_bytes);
      w.field("pages_resident", s.mem_pages_resident);
      w.field("cow_splits", s.mem_cow_splits);
      w.field("shared_pages", s.mem_shared_pages);
      w.field("ecc_corrected", s.ecc_corrected);
      w.field("ecc_uncorrectable", s.ecc_uncorrectable);
      w.end();
    }
    // The migration summary: state-transfer cost curves come from plotting
    // words moved and recovered transfer faults against the sweep knobs.
    if (s.has_migration) {
      w.key("migration").begin_object();
      w.field("migrations", s.migrations);
      w.field("state_words_moved", s.state_words_moved);
      w.field("transfer_faults_recovered", s.transfer_faults_recovered);
      w.end();
    }
    w.end();
  }
  w.end();
  if (done == 0) {
    // No job completed (e.g. every job quarantined, or the sweep was
    // interrupted at the start): aggregates would be all-zero placeholders
    // or NaN rates, so emit an explicit null with the reason instead.
    w.field("totals", nullptr);
    w.field("totals_reason",
            stats.empty() ? "no jobs submitted" : "no completed jobs");
  } else {
    w.key("totals").begin_object();
    w.field("jobs", static_cast<u64>(stats.size()));
    w.field("done", done);
    w.field("failed", failed);
    w.field("cpu_seconds", total_wall);
    w.field("delta_cycles", total_deltas);
    w.field("quarantined", quarantined);
    w.field("fetch_errors", total_fetch_errors);
    w.field("faults_injected", total_injected);
    w.field("cache_hits", total_cache_hits);
    w.field("worker_deaths", total_worker_deaths);
    if (peak_resident > 0) w.field("resident_peak_bytes", peak_resident);
    if (total_cow_splits > 0) w.field("cow_splits", total_cow_splits);
    if (total_ecc_corrected > 0)
      w.field("ecc_corrected", total_ecc_corrected);
    if (total_ecc_uncorrectable > 0)
      w.field("ecc_uncorrectable", total_ecc_uncorrectable);
    if (budget_quarantined > 0)
      w.field("budget_quarantined", budget_quarantined);
    if (service != nullptr) {
      w.field("service_requests", service->service_requests);
      w.field("dedup_hits", service->dedup_hits);
      w.field("dedup_ratio",
              service->service_requests > 0
                  ? static_cast<double>(service->dedup_hits) /
                        static_cast<double>(service->service_requests)
                  : 0.0);
    }
    if (total_wall > 0)
      w.field("jobs_per_cpu_second", static_cast<double>(done) / total_wall);
    w.end();
  }
  w.end();
  return w.str();
}

bool write_report_file(const std::string& path, const std::string& name,
                       usize threads, const std::vector<JobStats>& stats,
                       const ServiceTotals* service) {
  std::ofstream out(path);
  if (!out) {
    log::error() << "campaign report: cannot open " << path;
    return false;
  }
  out << report_json(name, threads, stats, service) << '\n';
  return static_cast<bool>(out);
}

}  // namespace adriatic::campaign
