#include "campaign/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <fstream>

#include "util/log.hpp"
#include "util/strings.hpp"

namespace adriatic::campaign {

namespace {

constexpr char kHeaderMagic[] = "J adriatic-campaign-journal v1";

[[nodiscard]] u64 parse_u64(const std::string& s, int base = 10) {
  return std::strtoull(s.c_str(), nullptr, base);
}

}  // namespace

u64 fnv1a(const std::string& s, u64 seed) {
  u64 h = seed;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Percent-encoding for string fields: keeps every token free of spaces and
// newlines so the line grammar stays splittable.
std::string encode_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F || c == '%') {
      out += strfmt("%%%02X", u);
    } else {
      out += c;
    }
  }
  return out;
}

std::string decode_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (usize i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const std::string hex = s.substr(i + 1, 2);
      out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string checksum_suffix(const std::string& content) {
  return strfmt(" cks=%016llx",
                static_cast<unsigned long long>(fnv1a(content)));
}

std::optional<std::string> strip_checksum(const std::string& line) {
  const usize pos = line.rfind(" cks=");
  if (pos == std::string::npos) return std::nullopt;
  const std::string content = line.substr(0, pos);
  if (line.substr(pos) != checksum_suffix(content)) return std::nullopt;
  return content;
}

u64 spec_hash(const std::string& label, u64 param_digest) {
  u64 h = fnv1a(label);
  for (u32 shift = 0; shift < 64; shift += 8) {
    h ^= (param_digest >> shift) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

std::unique_ptr<CampaignJournal> CampaignJournal::create(
    const std::string& path, const std::string& campaign) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    log::error() << "campaign journal: cannot create " << path;
    return nullptr;
  }
  auto journal =
      std::unique_ptr<CampaignJournal>(new CampaignJournal(fd, path));
  journal->append_line(std::string(kHeaderMagic) +
                       " name=" + encode_field(campaign));
  return journal;
}

std::unique_ptr<CampaignJournal> CampaignJournal::append_to(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    log::error() << "campaign journal: cannot open " << path;
    return nullptr;
  }
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(fd, path));
}

CampaignJournal::~CampaignJournal() {
  if (fd_ >= 0) ::close(fd_);
}

void CampaignJournal::append_line(const std::string& content) {
  const std::string line = content + checksum_suffix(content) + "\n";
  std::lock_guard<std::mutex> lk(mu_);
  usize off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      log::error() << "campaign journal: write failed on " << path_;
      return;
    }
    off += static_cast<usize>(n);
  }
  // The write-ahead guarantee: a record is on disk before the campaign acts
  // on it, so SIGKILL can lose at most the in-flight line (whose torn tail
  // the checksum rejects on read).
  ::fsync(fd_);
}

void CampaignJournal::record_planned(usize index, u64 spec,
                                     const std::string& label) {
  append_line(strfmt("P %zu %016llx ", index,
                     static_cast<unsigned long long>(spec)) +
              encode_field(label));
}

void CampaignJournal::record_begun(usize index, u32 attempt) {
  append_line(strfmt("B %zu %u", index, attempt));
}

std::string encode_job_stats(const JobStats& s) {
  std::string tail = "label=" + encode_field(s.label);
  tail += strfmt(" done=%d failed=%d quarantined=%d attempts=%u", s.done ? 1 : 0,
                 s.failed ? 1 : 0, s.quarantined ? 1 : 0, s.attempts);
  tail += strfmt(" wall=%.17g sim_ps=%llu deltas=%llu activations=%llu",
                 s.wall_seconds,
                 static_cast<unsigned long long>(s.sim_time.picoseconds()),
                 static_cast<unsigned long long>(s.delta_count),
                 static_cast<unsigned long long>(s.activations));
  tail += strfmt(" digest=%016llx", static_cast<unsigned long long>(s.digest));
  if (s.failed) tail += " error=" + encode_field(s.error);
  if (s.quarantined) tail += " qreason=" + encode_field(s.quarantine_reason);
  if (s.has_faults)
    tail += strfmt(
        " fetch_errors=%llu injected=%llu fault_events=%llu fault_digest=%016llx",
        static_cast<unsigned long long>(s.fetch_errors),
        static_cast<unsigned long long>(s.faults_injected),
        static_cast<unsigned long long>(s.fault_events),
        static_cast<unsigned long long>(s.fault_digest));
  if (s.has_prefetch)
    tail += strfmt(
        " prefetch_hits=%llu cache_hits=%llu cfg_words=%llu hidden_ps=%llu",
        static_cast<unsigned long long>(s.prefetch_hits),
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.config_words_fetched),
        static_cast<unsigned long long>(s.hidden_latency.picoseconds()));
  if (s.has_timing)
    tail += strfmt(" tmode=%s quantum_ps=%llu loose_syncs=%llu",
                   s.loose ? "loose" : "timed",
                   static_cast<unsigned long long>(s.quantum.picoseconds()),
                   static_cast<unsigned long long>(s.loose_syncs));
  if (s.has_migration)
    tail += strfmt(
        " migrations=%llu state_words=%llu mig_recovered=%llu",
        static_cast<unsigned long long>(s.migrations),
        static_cast<unsigned long long>(s.state_words_moved),
        static_cast<unsigned long long>(s.transfer_faults_recovered));
  // New-in-v9 memory/ECC fields, emitted only when recorded, so older
  // journals (and memory-silent jobs) keep their exact byte format.
  if (s.has_memory)
    tail += strfmt(
        " mem_peak=%llu mem_pages=%llu mem_splits=%llu mem_shared=%llu"
        " ecc_cor=%llu ecc_unc=%llu",
        static_cast<unsigned long long>(s.mem_resident_peak_bytes),
        static_cast<unsigned long long>(s.mem_pages_resident),
        static_cast<unsigned long long>(s.mem_cow_splits),
        static_cast<unsigned long long>(s.mem_shared_pages),
        static_cast<unsigned long long>(s.ecc_corrected),
        static_cast<unsigned long long>(s.ecc_uncorrectable));
  // New-in-v8 fields are emitted only when set, so records written by clean
  // thread-mode runs stay byte-identical to the pre-process-mode format.
  if (s.worker_deaths > 0)
    tail += strfmt(" deaths=%llu",
                   static_cast<unsigned long long>(s.worker_deaths));
  if (s.from_cache) tail += " cached=1";
  if (!s.user_data.empty()) tail += " udata=" + encode_field(s.user_data);
  return tail;
}

JobStats decode_job_stats(const std::string& tail) {
  JobStats s;
  for (const std::string& t : split(tail, ' ')) {
    const usize eq = t.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = t.substr(0, eq);
    const std::string val = t.substr(eq + 1);
    if (key == "label") s.label = decode_field(val);
    else if (key == "done") s.done = val == "1";
    else if (key == "failed") s.failed = val == "1";
    else if (key == "quarantined") s.quarantined = val == "1";
    else if (key == "attempts") s.attempts = static_cast<u32>(parse_u64(val));
    else if (key == "wall") s.wall_seconds = std::strtod(val.c_str(), nullptr);
    else if (key == "sim_ps") s.sim_time = kern::Time::ps(parse_u64(val));
    else if (key == "deltas") s.delta_count = parse_u64(val);
    else if (key == "activations") s.activations = parse_u64(val);
    else if (key == "digest") s.digest = parse_u64(val, 16);
    else if (key == "error") s.error = decode_field(val);
    else if (key == "qreason") s.quarantine_reason = decode_field(val);
    else if (key == "fetch_errors") { s.has_faults = true; s.fetch_errors = parse_u64(val); }
    else if (key == "injected") s.faults_injected = parse_u64(val);
    else if (key == "fault_events") s.fault_events = parse_u64(val);
    else if (key == "fault_digest") s.fault_digest = parse_u64(val, 16);
    else if (key == "prefetch_hits") { s.has_prefetch = true; s.prefetch_hits = parse_u64(val); }
    else if (key == "cache_hits") s.cache_hits = parse_u64(val);
    else if (key == "cfg_words") s.config_words_fetched = parse_u64(val);
    else if (key == "hidden_ps") s.hidden_latency = kern::Time::ps(parse_u64(val));
    else if (key == "tmode") { s.has_timing = true; s.loose = val == "loose"; }
    else if (key == "quantum_ps") s.quantum = kern::Time::ps(parse_u64(val));
    else if (key == "loose_syncs") s.loose_syncs = parse_u64(val);
    else if (key == "migrations") { s.has_migration = true; s.migrations = parse_u64(val); }
    else if (key == "state_words") s.state_words_moved = parse_u64(val);
    else if (key == "mig_recovered") s.transfer_faults_recovered = parse_u64(val);
    else if (key == "mem_peak") { s.has_memory = true; s.mem_resident_peak_bytes = parse_u64(val); }
    else if (key == "mem_pages") s.mem_pages_resident = parse_u64(val);
    else if (key == "mem_splits") s.mem_cow_splits = parse_u64(val);
    else if (key == "mem_shared") s.mem_shared_pages = parse_u64(val);
    else if (key == "ecc_cor") s.ecc_corrected = parse_u64(val);
    else if (key == "ecc_unc") s.ecc_uncorrectable = parse_u64(val);
    else if (key == "deaths") s.worker_deaths = parse_u64(val);
    else if (key == "cached") s.from_cache = val == "1";
    else if (key == "udata") s.user_data = decode_field(val);
  }
  return s;
}

void CampaignJournal::record_done(const JobStats& s) {
  append_line(strfmt("D %zu ", s.index) + encode_job_stats(s));
}

void CampaignJournal::record_worker_death(usize index,
                                          const std::string& reason) {
  append_line(strfmt("X %zu ", index) + encode_field(reason));
}

void CampaignJournal::record_cache_hit(u64 spec) {
  append_line(strfmt("C %016llx", static_cast<unsigned long long>(spec)));
}

void CampaignJournal::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  ::fsync(fd_);
}

std::optional<JournalState> read_journal(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  JournalState state;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto content = strip_checksum(line);
    if (!content.has_value()) {
      ++state.torn_lines;
      continue;
    }
    const std::vector<std::string> tok = split(*content, ' ');
    if (!have_header) {
      // The header must be the first intact line.
      if (tok.size() < 4 || tok[0] != "J" ||
          !starts_with(*content, kHeaderMagic) ||
          !starts_with(tok[3], "name="))
        return std::nullopt;
      state.campaign = decode_field(tok[3].substr(5));
      have_header = true;
      continue;
    }
    if (tok[0] == "P" && tok.size() >= 4) {
      JournalState::Planned p;
      p.spec = parse_u64(tok[2], 16);
      p.label = decode_field(tok[3]);
      state.planned[static_cast<usize>(parse_u64(tok[1]))] = std::move(p);
    } else if (tok[0] == "B" && tok.size() >= 3) {
      ++state.begun_records;
    } else if (tok[0] == "D" && tok.size() >= 2) {
      // The tail (everything after "D <index> ") round-trips through the
      // shared codec, the same one the worker pipe and result cache use.
      usize tail_at = content->find(' ');
      if (tail_at != std::string::npos)
        tail_at = content->find(' ', tail_at + 1);
      JobStats s = decode_job_stats(
          tail_at == std::string::npos ? "" : content->substr(tail_at + 1));
      s.index = static_cast<usize>(parse_u64(tok[1]));
      // Last record per index wins; only done results count as completed —
      // a quarantined/interrupted D leaves the job eligible for re-run.
      if (s.done) {
        state.completed[s.index] = std::move(s);
      } else {
        state.completed.erase(s.index);
      }
    } else if (tok[0] == "X" && tok.size() >= 3) {
      state.worker_deaths.push_back(
          {static_cast<usize>(parse_u64(tok[1])), decode_field(tok[2])});
    } else if (tok[0] == "C" && tok.size() >= 2) {
      state.cache_hits.push_back(parse_u64(tok[1], 16));
    }
  }
  if (!have_header) return std::nullopt;
  return state;
}

}  // namespace adriatic::campaign
