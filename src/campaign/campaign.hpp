// Parallel simulation campaign engine: runs N independent Simulation
// instances across a pool of worker threads. The kernel keeps all of its
// cross-cutting state (`t_running`, the fiber bookkeeping, the stack pool)
// in thread_local variables, so one simulation per worker thread needs no
// locking at all — the pool only synchronises on the job queue and on the
// per-job result records.
//
// Threading model (see docs/campaign.md):
//   * a job is a factory: it constructs, runs and tears down its own
//     Simulation entirely on the worker thread that picked it up;
//   * nothing simulation-related is shared between jobs — results travel
//     back through the returned std::future;
//   * job metrics (wall time, simulated time, delta cycles) are recorded in
//     submission order, so reports are deterministic for any thread count.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/ledger.hpp"
#include "kernel/simulation.hpp"
#include "kernel/time.hpp"
#include "memory/budget.hpp"
#include "util/types.hpp"

namespace adriatic::campaign {

class CampaignJournal;
class ProcessWorkerPool;

/// How the runner executes job bodies.
///
///  * kThreads — in-process, one job per worker thread (the historical
///    mode). A job that segfaults, exhausts memory or spins without ever
///    reaching a delta boundary takes the whole campaign with it.
///  * kProcesses — each attempt runs in a forked child; its JobStats come
///    back over a pipe (worker_pool.hpp) and the parent's supervisor
///    SIGKILLs hung or runaway children. Crashes become structured
///    quarantine reasons ("signal:SIGSEGV", "timeout", "exit:N") instead of
///    campaign deaths. Falls back to kThreads where fork is unusable
///    (ThreadSanitizer builds, ADRIATIC_NO_FORK=1) — check mode() after
///    construction.
enum class ExecutionMode { kThreads, kProcesses };

/// Deliberate failure injected into a forked job child *before* its body
/// runs, so crash containment is testable deterministically. Honoured only
/// in kProcesses mode (in kThreads mode a segfault would be the very
/// containment failure this exists to test for).
enum class DebugFailure {
  kNone,
  kSegv,      ///< Die by SIGSEGV (default disposition restored first).
  kAbort,     ///< Die by SIGABRT.
  kHangCpu,   ///< Spin forever burning CPU; heartbeats keep flowing, so
              ///< only the wall deadline catches it ("timeout").
  kHangSleep, ///< Block heartbeats and sleep forever; caught by the
              ///< heartbeat timeout ("heartbeat-lost") or wall deadline.
  kExitCode,  ///< _exit(JobOptions::debug_exit_code) without a result.
};

/// Structured decode of a worker child's death: what the supervisor or
/// waitpid() learned, normalised into the retry/quarantine machinery's
/// vocabulary. reason() is the string that lands in quarantine_reason and
/// the journal's X record.
struct WorkerFailure {
  enum class Kind {
    kNone,
    kSignal,         ///< Child died by signal `code` (crash class).
    kExitCode,       ///< Child exited with status `code` != 0 (crash class).
    kTimeout,        ///< Supervisor SIGKILLed it at the wall deadline.
    kHeartbeatLost,  ///< Supervisor SIGKILLed it after heartbeat silence.
    kInterrupted,    ///< Killed by a campaign-wide stop broadcast.
    kProtocol,       ///< Pipe closed mid-frame / bad checksum / fork error.
  };
  Kind kind = Kind::kNone;
  int code = 0;  ///< Signal number or exit status, by kind.
  /// "signal:SIGSEGV", "timeout", "exit:3", "heartbeat-lost",
  /// "interrupted", "protocol".
  [[nodiscard]] std::string reason() const;
};

/// Thrown inside the runner's attempt loop when a forked worker dies
/// without delivering a result; carries the structured failure so the
/// retry machinery can distinguish timeouts from crashes.
class WorkerDeathError : public std::runtime_error {
 public:
  explicit WorkerDeathError(WorkerFailure f)
      : std::runtime_error("worker died: " + f.reason()), failure(f) {}
  WorkerFailure failure;
};

// -- Process-wide graceful-stop signal plumbing ------------------------------
// install_stop_signal_handlers() routes SIGINT/SIGTERM into a lock-free
// atomic flag (the only async-signal-safe action taken); a runner with
// enable_signal_stop() polls the flag and broadcasts request_stop() to every
// guarded Simulation, so sweeps shut down gracefully with a valid partial
// report and a resumable journal.
void install_stop_signal_handlers();
[[nodiscard]] bool signal_stop_requested() noexcept;
void clear_signal_stop() noexcept;

/// Robustness knobs for one submitted job.
struct JobOptions {
  /// Total attempts before the job gives up (1 = no retries). A failed
  /// attempt is one that threw or was stopped by the wall-clock watchdog.
  u32 max_attempts = 1;
  /// Wall-clock budget per attempt, enforced while the job holds a
  /// JobContext::guard() on its Simulation: the runner's watchdog thread
  /// calls Simulation::request_stop() when the budget expires. Jobs that
  /// exceed the budget without recovering are quarantined. 0 disables it.
  double wall_timeout_seconds = 0;
  /// Index recorded in JobStats::index and in the campaign journal
  /// (defaults to the submission index). Resume paths set it so re-run jobs
  /// keep their original campaign indices.
  std::optional<usize> stats_index;
  /// Identity of the job's simulation parameters (spec_hash(label, params)),
  /// shared with the journal's P records and the result cache. Keys the
  /// runner's per-spec crash quarantine; 0 falls back to spec_hash(label).
  u64 spec = 0;
  /// Process mode: a spec whose children crashed (signal / nonzero exit /
  /// heartbeat loss) this many times is quarantined instead of retried —
  /// a deterministic segfault must not burn every retry of every resume.
  /// 0 disables crash quarantine.
  u32 crash_limit = 3;
  /// Base delay before retry attempt 2; doubles per further attempt
  /// (capped at 30 s). Sleeps in small interruptible slices so a stop
  /// broadcast still cancels a backing-off job promptly. 0 disables it.
  double retry_backoff_seconds = 0;
  /// Process mode: SIGKILL a child whose pipe has been silent (no result,
  /// no heartbeat frame) for this long — catches workers that die without
  /// exiting. Heartbeats tick ~10x per second while the child is alive,
  /// so legitimate long simulations never trip this. 0 disables it.
  double heartbeat_timeout_seconds = 0;
  /// Deliberate child failure for crash-containment tests (process mode
  /// only; see DebugFailure).
  DebugFailure debug_failure = DebugFailure::kNone;
  int debug_exit_code = 0;  ///< Exit status used by DebugFailure::kExitCode.
};

/// Per-job record, reported in submission order regardless of which worker
/// ran the job or when it finished.
struct JobStats {
  usize index = 0;          ///< Submission index (0-based).
  std::string label;
  double wall_seconds = 0;  ///< Host wall-clock time spent inside the job.
  kern::Time sim_time;      ///< Simulated time reached (via JobContext).
  u64 delta_count = 0;
  u64 activations = 0;
  u64 digest = 0;           ///< Scheduler-trace digest, if the job recorded
                            ///< one (0 = not recorded); lets campaign reports
                            ///< be diffed for determinism across runs.
  bool done = false;        ///< Job ran to completion (or failed) already.
  bool failed = false;      ///< Job body threw; `error` holds the message.
  std::string error;
  u32 attempts = 1;         ///< Attempts actually made (retries + 1).
  bool quarantined = false; ///< Gave up (timeout / retries exhausted); the
                            ///< record stays done == false with a reason.
  std::string quarantine_reason;
  bool has_faults = false;  ///< record_faults() was called.
  u64 fetch_errors = 0;       ///< Failed configuration fetches (DRCF).
  u64 faults_injected = 0;    ///< Injection-side ledger events.
  u64 fault_events = 0;       ///< Total ledger events.
  u64 fault_digest = 0;       ///< FaultLedger::digest() of the job's ledger.
  bool has_prefetch = false;  ///< record_prefetch() was called.
  u64 prefetch_hits = 0;      ///< Demand switches/calls covered by a prefetch.
  u64 cache_hits = 0;         ///< Switches installed from the context cache.
  u64 config_words_fetched = 0;  ///< Configuration words moved over the bus.
  kern::Time hidden_latency;  ///< Fetch latency kept off the demand path.
  bool has_timing = false;    ///< record_timing() was called.
  bool loose = false;         ///< Job ran under kern::TimingMode::kLoose.
  kern::Time quantum;         ///< Loose-mode quantum the job ran under.
  u64 loose_syncs = 0;        ///< Loose-mode synchronisation points.
  bool has_migration = false;  ///< record_migration() was called.
  u64 migrations = 0;          ///< Completed task migrations.
  u64 state_words_moved = 0;   ///< Transfer words moved over the bus.
  u64 transfer_faults_recovered = 0;  ///< Mid-transfer faults recovered from.
  bool has_memory = false;  ///< record_memory() was called (or the job was
                            ///< budget-quarantined with a high-water mark).
  u64 mem_resident_peak_bytes = 0;  ///< MemoryBudget high-water seen by the
                                    ///< job (process-wide in thread mode).
  u64 mem_pages_resident = 0;  ///< Resident pages in the job's stores.
  u64 mem_cow_splits = 0;      ///< Shared pages copied on first write.
  u64 mem_shared_pages = 0;    ///< Pages still shared with an image at end.
  u64 ecc_corrected = 0;       ///< Single-bit upsets silently corrected.
  u64 ecc_uncorrectable = 0;   ///< Detected-uncorrectable upsets.
  bool from_cache = false;  ///< Served from a ResultCache, not re-simulated.
  u64 worker_deaths = 0;    ///< Forked children lost while running this job
                            ///< (crash, timeout kill, heartbeat kill).
  std::string user_data;    ///< Opaque tool payload (record_user_data):
                            ///< rides the journal, the worker pipe and the
                            ///< result cache, so a cache-served job can
                            ///< reproduce its tool-side output (e.g. a
                            ///< table row) without re-simulating.
};

/// Message for the exception currently in flight; call only inside `catch`.
[[nodiscard]] std::string describe_current_exception();

class CampaignRunner;
class JobContext;

/// RAII registration of one Simulation with the runner's wall-clock
/// watchdog; created via JobContext::guard(). On destruction the watch is
/// removed, and if the watchdog fired during its lifetime the owning
/// attempt is flagged as timed out.
class WatchdogGuard {
 public:
  WatchdogGuard(const WatchdogGuard&) = delete;
  WatchdogGuard& operator=(const WatchdogGuard&) = delete;
  ~WatchdogGuard();

 private:
  friend class JobContext;
  WatchdogGuard(JobContext* ctx, u64 id) : ctx_(ctx), id_(id) {}
  JobContext* ctx_;
  u64 id_;  ///< 0 = no watch registered (timeouts disabled).
};

/// Handed to job bodies that want their kernel counters in the campaign
/// report; call record(sim) after sim.run().
class JobContext {
 public:
  void record(const kern::Simulation& sim) {
    stats_->sim_time = sim.now();
    stats_->delta_count = sim.delta_count();
    stats_->activations = sim.activations();
  }

  /// Stores a scheduler-trace digest (e.g. conformance::TraceDigest::value())
  /// in the job's stats; report_json() emits it so two campaign reports can
  /// be diffed for scheduling determinism, job by job.
  void record_digest(u64 digest) { stats_->digest = digest; }

  /// Stores fault counters and the ledger summary (counts + digest) in the
  /// job's stats; report_json() emits them as the job's "faults" object.
  void record_faults(u64 fetch_errors, const fault::FaultLedger& ledger) {
    stats_->has_faults = true;
    stats_->fetch_errors = fetch_errors;
    stats_->faults_injected = ledger.injected_count();
    stats_->fault_events = static_cast<u64>(ledger.records().size());
    stats_->fault_digest = ledger.digest();
  }

  /// Stores prefetch/cache effectiveness counters in the job's stats;
  /// report_json() emits them as the job's "prefetch" object. Scalars (not
  /// a DrcfStats reference) so the campaign layer stays DRCF-agnostic.
  void record_prefetch(u64 prefetch_hits, u64 cache_hits,
                       u64 config_words_fetched, kern::Time hidden_latency) {
    stats_->has_prefetch = true;
    stats_->prefetch_hits = prefetch_hits;
    stats_->cache_hits = cache_hits;
    stats_->config_words_fetched = config_words_fetched;
    stats_->hidden_latency = hidden_latency;
  }

  /// Stores task-migration counters in the job's stats; report_json() emits
  /// them as the job's "migration" object. Scalars (not a MigrationStats
  /// reference) so the campaign layer stays migration-controller-agnostic.
  void record_migration(u64 migrations, u64 state_words_moved,
                        u64 transfer_faults_recovered) {
    stats_->has_migration = true;
    stats_->migrations = migrations;
    stats_->state_words_moved = state_words_moved;
    stats_->transfer_faults_recovered = transfer_faults_recovered;
  }

  /// Stores an opaque tool payload in the job's stats. It travels with the
  /// JobStats through the journal, the process-worker pipe and the result
  /// cache, so tools can reconstruct per-job output (table rows, packed
  /// metrics) for jobs that ran in a child process or were served from
  /// cache without re-simulating.
  void record_user_data(std::string data) {
    stats_->user_data = std::move(data);
  }

  /// Stores resident-set and ECC counters in the job's stats; report_json()
  /// emits them as the job's "memory" object. Scalars (not PagedStore/
  /// EccModel references) so the campaign layer stays backing-agnostic;
  /// pass MemoryBudget::instance().high_water_bytes() as the peak.
  void record_memory(u64 resident_peak_bytes, u64 pages_resident,
                     u64 cow_splits, u64 shared_pages, u64 ecc_corrected = 0,
                     u64 ecc_uncorrectable = 0) {
    stats_->has_memory = true;
    stats_->mem_resident_peak_bytes = resident_peak_bytes;
    stats_->mem_pages_resident = pages_resident;
    stats_->mem_cow_splits = cow_splits;
    stats_->mem_shared_pages = shared_pages;
    stats_->ecc_corrected = ecc_corrected;
    stats_->ecc_uncorrectable = ecc_uncorrectable;
  }

  /// Converts a typed over-budget failure into the structured
  /// `budget-quarantined` verdict: reason + high-water mark in the record,
  /// never a bad_alloc crash. Called by the submit() attempt loop and by
  /// the forked child's top-level handler; idempotent.
  void mark_budget_quarantined(const mem::BudgetExceededError& over) {
    stats_->has_memory = true;
    stats_->mem_resident_peak_bytes =
        std::max(stats_->mem_resident_peak_bytes, over.high_water_bytes());
    stats_->failed = false;
    stats_->error.clear();
    mark_quarantined("budget-quarantined");
  }

  /// Stores the job's timing abstraction (mode, quantum, sync count) in its
  /// stats; report_json() emits them as the job's "timing" object. Call
  /// after sim.run() so loose_syncs() is final.
  void record_timing(const kern::Simulation& sim) {
    stats_->has_timing = true;
    stats_->loose = sim.loose();
    stats_->quantum = sim.quantum();
    stats_->loose_syncs = sim.loose_syncs();
  }

  /// 1-based attempt currently running (grows with JobOptions::max_attempts).
  [[nodiscard]] u32 attempt() const noexcept { return stats_->attempts; }
  /// True once the wall-clock watchdog stopped this attempt's Simulation.
  [[nodiscard]] bool attempt_timed_out() const noexcept { return timed_out_; }
  /// True once the runner broadcast a stop (SIGINT/SIGTERM or
  /// request_stop_all()): the job's result is partial and must not be
  /// recorded as done; the submit() wrapper quarantines it as "interrupted"
  /// so a journal resume re-runs it.
  [[nodiscard]] bool interrupted() const noexcept;

  /// Arms the job's wall-clock timeout against `sim` for the lifetime of
  /// the returned guard (typically wrapped around sim.run()). No-op when
  /// the job has no timeout or runs outside a pool — including inside a
  /// forked worker child, where the parent's supervisor (not an in-process
  /// watchdog) enforces the deadline by SIGKILL.
  [[nodiscard]] WatchdogGuard guard(kern::Simulation& sim);

  /// True when this job's attempts run in forked children (the runner was
  /// built with ExecutionMode::kProcesses and fork is usable).
  [[nodiscard]] bool process_mode() const noexcept;

  /// True once this job's spec has crashed JobOptions::crash_limit times
  /// (across submissions of the same runner): further attempts quarantine
  /// immediately instead of re-crashing.
  [[nodiscard]] bool crash_quarantined() const noexcept;

  /// Quarantine vocabulary differs by mode: the supervisor's verdict is
  /// "timeout"; the cooperative in-thread watchdog's is "wall-clock
  /// timeout" (kept for report/journal compatibility).
  [[nodiscard]] const char* timeout_reason() const noexcept {
    return process_mode() ? "timeout" : "wall-clock timeout";
  }

  /// Runs one attempt in a forked child: the body executes against a
  /// child-local JobContext, the resulting JobStats stream back over the
  /// worker pipe and replace this job's record. Throws WorkerDeathError if
  /// the child dies without a result (crash / timeout / lost heartbeat),
  /// or std::runtime_error carrying the child's error if its body threw.
  void run_attempt_in_child(const std::function<void(JobContext&)>& body);

  /// Exponential pre-retry backoff (JobOptions::retry_backoff_seconds),
  /// interruptible by a stop broadcast. No-op before the first attempt.
  void retry_backoff(u32 next_attempt);

 private:
  friend class CampaignRunner;
  friend class ProcessWorkerPool;
  friend class WatchdogGuard;
  template <typename F>
  friend auto run_inline(std::string label, std::vector<JobStats>& records,
                         F fn);
  explicit JobContext(JobStats* stats) : stats_(stats) {}
  void mark_failed(std::string msg) {
    stats_->failed = true;
    stats_->error = std::move(msg);
  }
  void mark_quarantined(std::string reason) {
    stats_->quarantined = true;
    stats_->quarantine_reason = std::move(reason);
  }
  /// Resets per-attempt state, journals the attempt, observes cancellation.
  void begin_attempt(u32 attempt);
  /// Crash-quarantine key: JobOptions::spec, else spec_hash(label).
  [[nodiscard]] u64 crash_key() const;
  JobStats* stats_;
  CampaignRunner* runner_ = nullptr;
  JobOptions opt_;
  bool timed_out_ = false;
  bool interrupted_ = false;
};

class CampaignRunner {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1). With
  /// ExecutionMode::kProcesses each worker thread forks one child per job
  /// attempt; where fork is unusable (ThreadSanitizer builds,
  /// ADRIATIC_NO_FORK=1) the runner logs a warning and degrades to
  /// kThreads — check mode() to see what it actually runs.
  explicit CampaignRunner(usize threads = 0,
                          ExecutionMode mode = ExecutionMode::kThreads);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  [[nodiscard]] usize thread_count() const noexcept {
    return workers_.size();
  }

  /// Effective execution mode (kProcesses only when fork is usable).
  [[nodiscard]] ExecutionMode mode() const noexcept { return mode_; }

  /// Submits a job. `fn` is either `R()` or `R(JobContext&)`; it runs on a
  /// worker thread and must build its own Simulation (never share kernel
  /// objects across jobs). An exception thrown by `fn` is delivered through
  /// the returned future and flagged in the job's stats; it does not affect
  /// the pool or other jobs.
  template <typename F>
  auto submit(std::string label, F fn) {
    return submit(std::move(label), JobOptions{}, std::move(fn));
  }

  /// submit() with robustness options: a failing attempt (exception or
  /// wall-clock timeout) is retried up to opt.max_attempts times; a job
  /// whose final attempt still fails on timeout — or that exhausts its
  /// retries on timeouts — is quarantined: its record keeps done == false
  /// with a reason, and the future carries a std::runtime_error.
  ///
  /// In kProcesses mode each attempt forks: the body runs in a child whose
  /// JobStats come back over a pipe and replace this job's record. The
  /// future then resolves with a value-initialised R (process boundaries
  /// can't carry arbitrary return values) — process-mode campaigns read
  /// runner.stats() / JobStats::user_data instead of futures, and a
  /// non-default-constructible R is a runtime error. Child deaths (signal,
  /// nonzero exit, heartbeat loss) feed the retry machinery as structured
  /// WorkerFailures and, after JobOptions::crash_limit crashes of the same
  /// spec, quarantine the job with the failure's reason().
  template <typename F>
  auto submit(std::string label, JobOptions opt, F fn) {
    constexpr bool kTakesCtx = std::is_invocable_v<F&, JobContext&>;
    using R = std::conditional_t<kTakesCtx,
                                 std::invoke_result<F&, JobContext&>,
                                 std::invoke_result<F&>>::type;
    const u32 max_attempts = std::max<u32>(1u, opt.max_attempts);
    auto task = std::make_shared<std::packaged_task<R(JobContext&)>>(
        [f = std::move(fn), max_attempts](JobContext& ctx) mutable -> R {
          for (u32 attempt = 1;; ++attempt) {
            ctx.begin_attempt(attempt);
            // A runner-wide stop (signal) cancels queued work up front: the
            // future resolves with an exception, the record is quarantined
            // as "interrupted", and a journal resume re-runs the job.
            if (ctx.interrupted()) {
              ctx.mark_quarantined("interrupted");
              throw std::runtime_error("job interrupted");
            }
            // A spec that already crashed crash_limit times never forks
            // again: resumes and repeat submissions fail fast instead of
            // burning retries on a deterministic segfault.
            if (ctx.process_mode() && ctx.crash_quarantined()) {
              ctx.mark_quarantined("crash-quarantined");
              throw std::runtime_error("job quarantined: " +
                                       ctx.stats_->quarantine_reason);
            }
            try {
              if (ctx.process_mode()) {
                ctx.run_attempt_in_child([&f](JobContext& child_ctx) {
                  if constexpr (kTakesCtx) {
                    (void)f(child_ctx);
                  } else {
                    (void)f();
                  }
                });
                if (ctx.interrupted()) {
                  ctx.mark_quarantined("interrupted");
                  throw std::runtime_error("job interrupted");
                }
                if (!ctx.attempt_timed_out()) {
                  if constexpr (std::is_void_v<R>) {
                    return;
                  } else if constexpr (std::is_default_constructible_v<R>) {
                    return R{};  // Real results live in runner.stats().
                  } else {
                    throw std::logic_error(
                        "process-mode jobs cannot return a "
                        "non-default-constructible value; read "
                        "CampaignRunner::stats() instead");
                  }
                }
              } else if constexpr (std::is_void_v<R>) {
                if constexpr (kTakesCtx) {
                  f(ctx);
                } else {
                  f();
                }
                if (ctx.interrupted()) {
                  ctx.mark_quarantined("interrupted");
                  throw std::runtime_error("job interrupted");
                }
                if (!ctx.attempt_timed_out()) return;
              } else {
                R result = [&]() -> R {
                  if constexpr (kTakesCtx) {
                    return f(ctx);
                  } else {
                    return f();
                  }
                }();
                if (ctx.interrupted()) {
                  ctx.mark_quarantined("interrupted");
                  throw std::runtime_error("job interrupted");
                }
                if (!ctx.attempt_timed_out()) return result;
              }
            } catch (const mem::BudgetExceededError& over) {
              if (ctx.interrupted()) {
                if (!ctx.stats_->quarantined)
                  ctx.mark_quarantined("interrupted");
                throw std::runtime_error("job interrupted");
              }
              // Over-budget is deterministic: retrying would allocate the
              // same pages again, so quarantine immediately — the rest of
              // the sweep keeps its budget headroom.
              ctx.mark_budget_quarantined(over);
              throw std::runtime_error("job quarantined: " +
                                       ctx.stats_->quarantine_reason);
            } catch (const WorkerDeathError& death) {
              using Kind = WorkerFailure::Kind;
              if (ctx.interrupted() ||
                  death.failure.kind == Kind::kInterrupted) {
                if (!ctx.stats_->quarantined)
                  ctx.mark_quarantined("interrupted");
                throw std::runtime_error("job interrupted");
              }
              if (death.failure.kind == Kind::kTimeout) {
                // Rides the shared timeout tail below, like a thread-mode
                // watchdog stop.
                ctx.timed_out_ = true;
              } else if (ctx.crash_quarantined() || attempt >= max_attempts) {
                ctx.mark_quarantined(death.failure.reason());
                throw std::runtime_error("job quarantined: " +
                                         ctx.stats_->quarantine_reason);
              }
            } catch (...) {
              // An interrupted attempt never retries: its simulation was
              // stopped mid-flight, so the result is partial by design.
              if (ctx.interrupted()) {
                if (!ctx.stats_->quarantined)
                  ctx.mark_quarantined("interrupted");
                throw;
              }
              // A timed-out attempt often surfaces as a secondary exception
              // (the stopped Simulation violates the job's expectations);
              // route it through the timeout/retry path below instead of
              // reporting the symptom.
              if (!ctx.attempt_timed_out() && attempt >= max_attempts) {
                ctx.mark_failed(describe_current_exception());
                throw;
              }
            }
            if (attempt >= max_attempts) {
              ctx.mark_quarantined(ctx.attempt_timed_out()
                                       ? ctx.timeout_reason()
                                       : "retries exhausted");
              throw std::runtime_error("job quarantined: " +
                                       ctx.stats_->quarantine_reason);
            }
            ctx.retry_backoff(attempt + 1);
          }
        });
    std::future<R> fut = task->get_future();
    enqueue(std::move(label), opt,
            [task](JobContext& ctx) { (*task)(ctx); });
    return fut;
  }

  /// Blocks until every submitted job has finished.
  void wait_idle();

  /// Attaches a write-ahead journal: every attempt logs a `B` record as it
  /// begins and every finished job a `D` record with its full JobStats (see
  /// campaign/journal.hpp). The journal must outlive all submitted jobs.
  void set_journal(CampaignJournal* journal) noexcept { journal_ = journal; }

  /// Registers a hook invoked on the worker thread right after a job's final
  /// record is committed (visible to stats()). Unlike the job's future —
  /// which resolves *before* the commit — the hook always sees the complete
  /// JobStats, so streaming consumers (the campaign service) can forward
  /// results as they land. Set it before the first submit(); it runs outside
  /// the runner's locks and must not call back into this runner.
  void set_completion_hook(std::function<void(const JobStats&)> hook) {
    completion_hook_ = std::move(hook);
  }

  /// Makes the watchdog thread poll the process-wide signal-stop flag (see
  /// install_stop_signal_handlers); when it fires, pending jobs are
  /// cancelled and every guarded Simulation gets request_stop().
  void enable_signal_stop() noexcept {
    signal_stop_enabled_.store(true, std::memory_order_relaxed);
    wcv_.notify_all();
  }
  [[nodiscard]] bool signal_stop_enabled() const noexcept {
    return signal_stop_enabled_.load(std::memory_order_relaxed);
  }

  /// Cancels jobs that have not started an attempt yet: they resolve their
  /// futures with "job interrupted" and are quarantined, never run.
  void cancel_pending() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Broadcast stop: cancels pending jobs and request_stop()s every
  /// currently guarded Simulation, marking those attempts interrupted (they
  /// quarantine instead of committing partial results). Thread-safe; also
  /// invoked by the watchdog when the signal-stop flag fires.
  void request_stop_all();

  /// Snapshot of per-job metrics in submission order. Call after wait_idle()
  /// for a complete view — a job's future resolves before its worker commits
  /// the record, so resolved futures alone do not guarantee completeness.
  /// Records of jobs still queued or running carry done == false and
  /// placeholder metrics (report_json() flags them and keeps them out of
  /// the totals).
  [[nodiscard]] std::vector<JobStats> stats() const;

 private:
  friend class JobContext;
  friend class WatchdogGuard;

  struct Job {
    usize index = 0;
    std::string label;
    JobOptions opt;
    std::function<void(JobContext&)> body;
  };

  /// One armed wall-clock watch; lives until its guard is destroyed.
  struct Watch {
    u64 id = 0;
    kern::Simulation* sim = nullptr;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;  ///< False: registered for broadcast stop only.
    bool fired = false;
    bool interrupted = false;  ///< A broadcast stop hit this watch.
  };
  struct WatchResult {
    bool fired = false;
    bool interrupted = false;
  };

  void enqueue(std::string label, JobOptions opt,
               std::function<void(JobContext&)> body);
  void worker_loop();
  void watchdog_loop();
  /// Registers `sim` with the watchdog (timeout <= 0: broadcast-stop only);
  /// returns the watch id.
  u64 watch(kern::Simulation& sim, double timeout_seconds);
  /// Removes a watch; reports what happened while it was armed.
  WatchResult unwatch(u64 id);
  /// Journal hooks (no-ops without a journal).
  void journal_begun(usize index, u32 attempt);
  void journal_done(const JobStats& stats);
  void journal_worker_death(usize index, const std::string& reason);

  /// Per-spec crash accounting (process mode), guarded by cmu_. Returns
  /// the new count.
  u32 note_crash(u64 spec);
  [[nodiscard]] u32 crash_count(u64 spec) const;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Job> queue_;
  // Touched only under mu_: workers fill a local JobStats while running and
  // commit it here when the job ends, keeping readers race-free.
  std::vector<JobStats> records_;
  usize inflight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  CampaignJournal* journal_ = nullptr;
  std::function<void(const JobStats&)> completion_hook_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> signal_stop_enabled_{false};
  ExecutionMode mode_ = ExecutionMode::kThreads;
  std::unique_ptr<ProcessWorkerPool> pool_;  ///< Non-null in kProcesses mode.
  mutable std::mutex cmu_;                   ///< Guards crash_counts_.
  std::map<u64, u32> crash_counts_;          ///< spec -> child crashes.

  // Watchdog state, guarded by wmu_ (separate from mu_: the watchdog must
  // never contend with the job queue).
  std::mutex wmu_;
  std::condition_variable wcv_;
  std::vector<Watch> watches_;
  u64 next_watch_id_ = 1;
  bool watchdog_shutdown_ = false;
  std::thread watchdog_;
};

/// Runs one job inline on the calling thread with the same bookkeeping a
/// pool worker applies — wall-clock timing, JobContext counters, done/failed
/// flags — and appends the record to `records`. Serial reference paths (e.g.
/// `dse_explorer --serial`) use this so `--report` carries the same data in
/// both modes. `fn` is `R()` or `R(JobContext&)`, as with submit(); a
/// throwing `fn` is recorded (failed = true) and the exception rethrown.
template <typename F>
auto run_inline(std::string label, std::vector<JobStats>& records, F fn) {
  constexpr bool kTakesCtx = std::is_invocable_v<F&, JobContext&>;
  using R = std::conditional_t<kTakesCtx,
                               std::invoke_result<F&, JobContext&>,
                               std::invoke_result<F&>>::type;
  JobStats local;
  local.index = records.size();
  local.label = std::move(label);
  JobContext ctx(&local);
  const auto t0 = std::chrono::steady_clock::now();
  const auto commit = [&] {
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    local.done = true;
    records.push_back(std::move(local));
  };
  try {
    if constexpr (std::is_void_v<R>) {
      if constexpr (kTakesCtx) {
        fn(ctx);
      } else {
        fn();
      }
      commit();
    } else {
      R result = [&] {
        if constexpr (kTakesCtx) {
          return fn(ctx);
        } else {
          return fn();
        }
      }();
      commit();
      return result;
    }
  } catch (...) {
    ctx.mark_failed(describe_current_exception());
    commit();
    throw;
  }
}

/// Worker count for tools: the ADRIATIC_CAMPAIGN_THREADS environment
/// variable if set (0 or unset => hardware concurrency).
[[nodiscard]] usize default_thread_count();

}  // namespace adriatic::campaign
