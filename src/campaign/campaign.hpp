// Parallel simulation campaign engine: runs N independent Simulation
// instances across a pool of worker threads. The kernel keeps all of its
// cross-cutting state (`t_running`, the fiber bookkeeping, the stack pool)
// in thread_local variables, so one simulation per worker thread needs no
// locking at all — the pool only synchronises on the job queue and on the
// per-job result records.
//
// Threading model (see docs/campaign.md):
//   * a job is a factory: it constructs, runs and tears down its own
//     Simulation entirely on the worker thread that picked it up;
//   * nothing simulation-related is shared between jobs — results travel
//     back through the returned std::future;
//   * job metrics (wall time, simulated time, delta cycles) are recorded in
//     submission order, so reports are deterministic for any thread count.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "kernel/simulation.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::campaign {

/// Per-job record, reported in submission order regardless of which worker
/// ran the job or when it finished.
struct JobStats {
  usize index = 0;          ///< Submission index (0-based).
  std::string label;
  double wall_seconds = 0;  ///< Host wall-clock time spent inside the job.
  kern::Time sim_time;      ///< Simulated time reached (via JobContext).
  u64 delta_count = 0;
  u64 activations = 0;
  u64 digest = 0;           ///< Scheduler-trace digest, if the job recorded
                            ///< one (0 = not recorded); lets campaign reports
                            ///< be diffed for determinism across runs.
  bool done = false;        ///< Job ran to completion (or failed) already.
  bool failed = false;      ///< Job body threw; `error` holds the message.
  std::string error;
};

/// Message for the exception currently in flight; call only inside `catch`.
[[nodiscard]] std::string describe_current_exception();

/// Handed to job bodies that want their kernel counters in the campaign
/// report; call record(sim) after sim.run().
class JobContext {
 public:
  void record(const kern::Simulation& sim) {
    stats_->sim_time = sim.now();
    stats_->delta_count = sim.delta_count();
    stats_->activations = sim.activations();
  }

  /// Stores a scheduler-trace digest (e.g. conformance::TraceDigest::value())
  /// in the job's stats; report_json() emits it so two campaign reports can
  /// be diffed for scheduling determinism, job by job.
  void record_digest(u64 digest) { stats_->digest = digest; }

 private:
  friend class CampaignRunner;
  template <typename F>
  friend auto run_inline(std::string label, std::vector<JobStats>& records,
                         F fn);
  explicit JobContext(JobStats* stats) : stats_(stats) {}
  void mark_failed(std::string msg) {
    stats_->failed = true;
    stats_->error = std::move(msg);
  }
  JobStats* stats_;
};

class CampaignRunner {
 public:
  /// threads == 0 picks the hardware concurrency (at least 1).
  explicit CampaignRunner(usize threads = 0);
  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  [[nodiscard]] usize thread_count() const noexcept {
    return workers_.size();
  }

  /// Submits a job. `fn` is either `R()` or `R(JobContext&)`; it runs on a
  /// worker thread and must build its own Simulation (never share kernel
  /// objects across jobs). An exception thrown by `fn` is delivered through
  /// the returned future and flagged in the job's stats; it does not affect
  /// the pool or other jobs.
  template <typename F>
  auto submit(std::string label, F fn) {
    constexpr bool kTakesCtx = std::is_invocable_v<F&, JobContext&>;
    using R = std::conditional_t<kTakesCtx,
                                 std::invoke_result<F&, JobContext&>,
                                 std::invoke_result<F&>>::type;
    auto task = std::make_shared<std::packaged_task<R(JobContext&)>>(
        [f = std::move(fn)](JobContext& ctx) mutable -> R {
          try {
            if constexpr (kTakesCtx) {
              return f(ctx);
            } else {
              return f();
            }
          } catch (...) {
            ctx.mark_failed(describe_current_exception());
            throw;
          }
        });
    std::future<R> fut = task->get_future();
    enqueue(std::move(label),
            [task](JobContext& ctx) { (*task)(ctx); });
    return fut;
  }

  /// Blocks until every submitted job has finished.
  void wait_idle();

  /// Snapshot of per-job metrics in submission order. Call after wait_idle()
  /// for a complete view — a job's future resolves before its worker commits
  /// the record, so resolved futures alone do not guarantee completeness.
  /// Records of jobs still queued or running carry done == false and
  /// placeholder metrics (report_json() flags them and keeps them out of
  /// the totals).
  [[nodiscard]] std::vector<JobStats> stats() const;

 private:
  struct Job {
    usize index = 0;
    std::string label;
    std::function<void(JobContext&)> body;
  };

  void enqueue(std::string label, std::function<void(JobContext&)> body);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<Job> queue_;
  // Touched only under mu_: workers fill a local JobStats while running and
  // commit it here when the job ends, keeping readers race-free.
  std::vector<JobStats> records_;
  usize inflight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs one job inline on the calling thread with the same bookkeeping a
/// pool worker applies — wall-clock timing, JobContext counters, done/failed
/// flags — and appends the record to `records`. Serial reference paths (e.g.
/// `dse_explorer --serial`) use this so `--report` carries the same data in
/// both modes. `fn` is `R()` or `R(JobContext&)`, as with submit(); a
/// throwing `fn` is recorded (failed = true) and the exception rethrown.
template <typename F>
auto run_inline(std::string label, std::vector<JobStats>& records, F fn) {
  constexpr bool kTakesCtx = std::is_invocable_v<F&, JobContext&>;
  using R = std::conditional_t<kTakesCtx,
                               std::invoke_result<F&, JobContext&>,
                               std::invoke_result<F&>>::type;
  JobStats local;
  local.index = records.size();
  local.label = std::move(label);
  JobContext ctx(&local);
  const auto t0 = std::chrono::steady_clock::now();
  const auto commit = [&] {
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    local.done = true;
    records.push_back(std::move(local));
  };
  try {
    if constexpr (std::is_void_v<R>) {
      if constexpr (kTakesCtx) {
        fn(ctx);
      } else {
        fn();
      }
      commit();
    } else {
      R result = [&] {
        if constexpr (kTakesCtx) {
          return fn(ctx);
        } else {
          return fn();
        }
      }();
      commit();
      return result;
    }
  } catch (...) {
    ctx.mark_failed(describe_current_exception());
    commit();
    throw;
  }
}

/// Worker count for tools: the ADRIATIC_CAMPAIGN_THREADS environment
/// variable if set (0 or unset => hardware concurrency).
[[nodiscard]] usize default_thread_count();

}  // namespace adriatic::campaign
