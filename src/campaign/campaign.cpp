#include "campaign/campaign.hpp"

#include <chrono>
#include <cstdlib>

namespace adriatic::campaign {

CampaignRunner::CampaignRunner(usize threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

CampaignRunner::~CampaignRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

void CampaignRunner::enqueue(std::string label,
                             std::function<void(JobContext&)> body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_)
      throw std::logic_error("CampaignRunner: submit after shutdown");
    Job job;
    job.index = records_.size();
    job.label = label;
    job.body = std::move(body);
    JobStats placeholder;
    placeholder.index = job.index;
    placeholder.label = std::move(label);
    records_.push_back(std::move(placeholder));
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void CampaignRunner::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }

    JobStats local;
    local.index = job.index;
    local.label = job.label;
    JobContext ctx(&local);
    const auto t0 = std::chrono::steady_clock::now();
    job.body(ctx);  // a packaged_task: exceptions land in the job's future
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    local.done = true;

    {
      std::lock_guard<std::mutex> lk(mu_);
      records_[job.index] = std::move(local);
      --inflight_;
      if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
    }
  }
}

void CampaignRunner::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

std::vector<JobStats> CampaignRunner::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

usize default_thread_count() {
  if (const char* env = std::getenv("ADRIATIC_CAMPAIGN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<usize>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace adriatic::campaign
