#include "campaign/campaign.hpp"

#include <chrono>
#include <cstdlib>

namespace adriatic::campaign {

CampaignRunner::CampaignRunner(usize threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

CampaignRunner::~CampaignRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(wmu_);
    watchdog_shutdown_ = true;
  }
  wcv_.notify_all();
  watchdog_.join();
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

void CampaignRunner::enqueue(std::string label, JobOptions opt,
                             std::function<void(JobContext&)> body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_)
      throw std::logic_error("CampaignRunner: submit after shutdown");
    Job job;
    job.index = records_.size();
    job.label = label;
    job.opt = opt;
    job.body = std::move(body);
    JobStats placeholder;
    placeholder.index = job.index;
    placeholder.label = std::move(label);
    records_.push_back(std::move(placeholder));
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void CampaignRunner::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }

    JobStats local;
    local.index = job.index;
    local.label = job.label;
    JobContext ctx(&local);
    ctx.runner_ = this;
    ctx.wall_timeout_seconds_ = job.opt.wall_timeout_seconds;
    const auto t0 = std::chrono::steady_clock::now();
    job.body(ctx);  // a packaged_task: exceptions land in the job's future
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // A job that ran past its whole wall budget (all attempts combined)
    // without the in-simulation watchdog catching it — e.g. it never armed a
    // guard — is still recorded truthfully as over budget.
    if (job.opt.wall_timeout_seconds > 0 && !local.quarantined &&
        local.wall_seconds > job.opt.wall_timeout_seconds *
                                 std::max<u32>(1u, job.opt.max_attempts)) {
      local.quarantined = true;
      local.quarantine_reason = "wall-clock budget exceeded";
    }
    local.done = !local.quarantined;

    {
      std::lock_guard<std::mutex> lk(mu_);
      records_[job.index] = std::move(local);
      --inflight_;
      if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
    }
  }
}

void CampaignRunner::watchdog_loop() {
  std::unique_lock<std::mutex> lk(wmu_);
  for (;;) {
    if (watchdog_shutdown_) return;
    // Sleep until the earliest armed deadline (or a new watch / shutdown).
    bool have_deadline = false;
    std::chrono::steady_clock::time_point next{};
    for (const Watch& w : watches_) {
      if (w.fired) continue;
      if (!have_deadline || w.deadline < next) {
        next = w.deadline;
        have_deadline = true;
      }
    }
    if (have_deadline) {
      wcv_.wait_until(lk, next);
    } else {
      wcv_.wait(lk);
    }
    if (watchdog_shutdown_) return;
    const auto now = std::chrono::steady_clock::now();
    for (Watch& w : watches_) {
      if (w.fired || now < w.deadline) continue;
      w.fired = true;
      // request_stop() is the one Simulation entry point that is safe from
      // another OS thread; the job observes kExplicitStop and its guard
      // reports the timeout.
      w.sim->request_stop();
    }
  }
}

u64 CampaignRunner::watch(kern::Simulation& sim, double timeout_seconds) {
  Watch w;
  w.sim = &sim;
  w.deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(timeout_seconds));
  {
    std::lock_guard<std::mutex> lk(wmu_);
    w.id = next_watch_id_++;
    watches_.push_back(w);
  }
  wcv_.notify_all();
  return w.id;
}

bool CampaignRunner::unwatch(u64 id) {
  std::lock_guard<std::mutex> lk(wmu_);
  for (usize i = 0; i < watches_.size(); ++i) {
    if (watches_[i].id != id) continue;
    const bool fired = watches_[i].fired;
    watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(i));
    return fired;
  }
  return false;
}

WatchdogGuard JobContext::guard(kern::Simulation& sim) {
  if (runner_ == nullptr || wall_timeout_seconds_ <= 0)
    return WatchdogGuard(this, 0);
  return WatchdogGuard(this, runner_->watch(sim, wall_timeout_seconds_));
}

WatchdogGuard::~WatchdogGuard() {
  if (id_ == 0) return;
  if (ctx_->runner_->unwatch(id_)) ctx_->timed_out_ = true;
}

void CampaignRunner::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

std::vector<JobStats> CampaignRunner::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

usize default_thread_count() {
  if (const char* env = std::getenv("ADRIATIC_CAMPAIGN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<usize>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace adriatic::campaign
