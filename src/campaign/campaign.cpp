#include "campaign/campaign.hpp"

#include <csignal>
#include <chrono>
#include <cstdlib>

#include "campaign/journal.hpp"

namespace adriatic::campaign {

namespace {
// Set from the signal handler; read by runner watchdog threads and tools.
std::atomic<bool> g_signal_stop{false};

// The handler body is a single lock-free atomic store — the only action
// that is async-signal-safe here. Everything else (journal flush, stop
// broadcast, report writing) happens on normal threads that poll the flag.
void stop_signal_handler(int) noexcept {
  g_signal_stop.store(true, std::memory_order_relaxed);
}
}  // namespace

void install_stop_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = stop_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool signal_stop_requested() noexcept {
  return g_signal_stop.load(std::memory_order_relaxed);
}

void clear_signal_stop() noexcept {
  g_signal_stop.store(false, std::memory_order_relaxed);
}

CampaignRunner::CampaignRunner(usize threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

CampaignRunner::~CampaignRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(wmu_);
    watchdog_shutdown_ = true;
  }
  wcv_.notify_all();
  watchdog_.join();
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

void CampaignRunner::enqueue(std::string label, JobOptions opt,
                             std::function<void(JobContext&)> body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_)
      throw std::logic_error("CampaignRunner: submit after shutdown");
    Job job;
    job.index = records_.size();
    job.label = label;
    job.opt = opt;
    job.body = std::move(body);
    JobStats placeholder;
    placeholder.index = opt.stats_index.value_or(job.index);
    placeholder.label = std::move(label);
    records_.push_back(std::move(placeholder));
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void CampaignRunner::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }

    JobStats local;
    local.index = job.opt.stats_index.value_or(job.index);
    local.label = job.label;
    JobContext ctx(&local);
    ctx.runner_ = this;
    ctx.wall_timeout_seconds_ = job.opt.wall_timeout_seconds;
    const auto t0 = std::chrono::steady_clock::now();
    job.body(ctx);  // a packaged_task: exceptions land in the job's future
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // A job that ran past its whole wall budget (all attempts combined)
    // without the in-simulation watchdog catching it — e.g. it never armed a
    // guard — is still recorded truthfully as over budget.
    if (job.opt.wall_timeout_seconds > 0 && !local.quarantined &&
        local.wall_seconds > job.opt.wall_timeout_seconds *
                                 std::max<u32>(1u, job.opt.max_attempts)) {
      local.quarantined = true;
      local.quarantine_reason = "wall-clock budget exceeded";
    }
    local.done = !local.quarantined;

    // Journal before commit: the fsync'd D record is on disk before the
    // result becomes visible to stats()/futures' consumers, so a crash
    // between the two at worst re-runs a finished job (idempotent), never
    // trusts an unjournaled one.
    journal_done(local);
    {
      std::lock_guard<std::mutex> lk(mu_);
      records_[job.index] = std::move(local);
      --inflight_;
      if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
    }
  }
}

void CampaignRunner::journal_begun(usize index, u32 attempt) {
  if (journal_ != nullptr) journal_->record_begun(index, attempt);
}

void CampaignRunner::journal_done(const JobStats& stats) {
  if (journal_ != nullptr) journal_->record_done(stats);
}

void CampaignRunner::watchdog_loop() {
  std::unique_lock<std::mutex> lk(wmu_);
  for (;;) {
    if (watchdog_shutdown_) return;
    // Sleep until the earliest armed deadline (or a new watch / shutdown).
    bool have_deadline = false;
    std::chrono::steady_clock::time_point next{};
    for (const Watch& w : watches_) {
      if (w.fired || !w.has_deadline) continue;
      if (!have_deadline || w.deadline < next) {
        next = w.deadline;
        have_deadline = true;
      }
    }
    // With signal-stop enabled the wait is capped so the signal flag is
    // observed within ~100ms even when no deadline is near.
    if (signal_stop_enabled()) {
      const auto cap =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
      wcv_.wait_until(lk, have_deadline && next < cap ? next : cap);
    } else if (have_deadline) {
      wcv_.wait_until(lk, next);
    } else {
      wcv_.wait(lk);
    }
    if (watchdog_shutdown_) return;
    if (signal_stop_enabled() && signal_stop_requested()) {
      // Broadcast every poll (not once): a job that armed its guard after
      // the first broadcast still has to be stopped.
      cancelled_.store(true, std::memory_order_relaxed);
      for (Watch& w : watches_) {
        w.interrupted = true;
        w.sim->request_stop();
      }
    }
    const auto now = std::chrono::steady_clock::now();
    for (Watch& w : watches_) {
      if (w.fired || !w.has_deadline || now < w.deadline) continue;
      w.fired = true;
      // request_stop() is the one Simulation entry point that is safe from
      // another OS thread; the job observes kExplicitStop and its guard
      // reports the timeout.
      w.sim->request_stop();
    }
  }
}

void CampaignRunner::request_stop_all() {
  cancelled_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(wmu_);
  for (Watch& w : watches_) {
    w.interrupted = true;
    w.sim->request_stop();
  }
}

u64 CampaignRunner::watch(kern::Simulation& sim, double timeout_seconds) {
  Watch w;
  w.sim = &sim;
  w.has_deadline = timeout_seconds > 0;
  if (w.has_deadline)
    w.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
  {
    std::lock_guard<std::mutex> lk(wmu_);
    w.id = next_watch_id_++;
    // A guard armed after a broadcast stop is stopped immediately — the
    // sweep is shutting down.
    if (cancelled_.load(std::memory_order_relaxed)) {
      w.interrupted = true;
      sim.request_stop();
    }
    watches_.push_back(w);
  }
  wcv_.notify_all();
  return w.id;
}

CampaignRunner::WatchResult CampaignRunner::unwatch(u64 id) {
  std::lock_guard<std::mutex> lk(wmu_);
  for (usize i = 0; i < watches_.size(); ++i) {
    if (watches_[i].id != id) continue;
    const WatchResult r{watches_[i].fired, watches_[i].interrupted};
    watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(i));
    return r;
  }
  return {};
}

WatchdogGuard JobContext::guard(kern::Simulation& sim) {
  if (runner_ == nullptr) return WatchdogGuard(this, 0);
  // Register even without a wall timeout: the watch is the only path by
  // which request_stop_all() or a SIGINT/SIGTERM broadcast can reach this
  // job's kernel while it simulates.
  return WatchdogGuard(this, runner_->watch(sim, wall_timeout_seconds_));
}

WatchdogGuard::~WatchdogGuard() {
  if (id_ == 0) return;
  const CampaignRunner::WatchResult r = ctx_->runner_->unwatch(id_);
  if (r.fired) ctx_->timed_out_ = true;
  if (r.interrupted) ctx_->interrupted_ = true;
}

void JobContext::begin_attempt(u32 attempt) {
  timed_out_ = false;
  stats_->attempts = attempt;
  if (runner_ != nullptr) {
    if (runner_->cancelled()) interrupted_ = true;
    runner_->journal_begun(stats_->index, attempt);
  }
}

bool JobContext::interrupted() const noexcept {
  return interrupted_ || (runner_ != nullptr && runner_->cancelled());
}

void CampaignRunner::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

std::vector<JobStats> CampaignRunner::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

usize default_thread_count() {
  if (const char* env = std::getenv("ADRIATIC_CAMPAIGN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<usize>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace adriatic::campaign
