#include "campaign/campaign.hpp"

#include <algorithm>
#include <csignal>
#include <chrono>
#include <cstdlib>

#include "campaign/journal.hpp"
#include "campaign/worker_pool.hpp"
#include "util/log.hpp"

namespace adriatic::campaign {

namespace {
// Set from the signal handler; read by runner watchdog threads and tools.
std::atomic<bool> g_signal_stop{false};

// The handler body is a single lock-free atomic store — the only action
// that is async-signal-safe here. Everything else (journal flush, stop
// broadcast, report writing) happens on normal threads that poll the flag.
void stop_signal_handler(int) noexcept {
  g_signal_stop.store(true, std::memory_order_relaxed);
}
}  // namespace

void install_stop_signal_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = stop_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool signal_stop_requested() noexcept {
  return g_signal_stop.load(std::memory_order_relaxed);
}

void clear_signal_stop() noexcept {
  g_signal_stop.store(false, std::memory_order_relaxed);
}

CampaignRunner::CampaignRunner(usize threads, ExecutionMode mode) {
  if (mode == ExecutionMode::kProcesses) {
    if (ProcessWorkerPool::fork_available()) {
      mode_ = ExecutionMode::kProcesses;
      pool_ = std::make_unique<ProcessWorkerPool>();
    } else {
      // Graceful degrade, not an error: the campaign still runs, it just
      // loses crash containment. mode() tells callers what they got.
      log::warn() << "campaign: fork unavailable (sanitizer build or "
                     "ADRIATIC_NO_FORK=1); degrading to thread mode";
    }
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (usize i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

CampaignRunner::~CampaignRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
  {
    std::lock_guard<std::mutex> lk(wmu_);
    watchdog_shutdown_ = true;
  }
  wcv_.notify_all();
  watchdog_.join();
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

void CampaignRunner::enqueue(std::string label, JobOptions opt,
                             std::function<void(JobContext&)> body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_)
      throw std::logic_error("CampaignRunner: submit after shutdown");
    Job job;
    job.index = records_.size();
    job.label = label;
    job.opt = opt;
    job.body = std::move(body);
    JobStats placeholder;
    placeholder.index = opt.stats_index.value_or(job.index);
    placeholder.label = std::move(label);
    records_.push_back(std::move(placeholder));
    queue_.push_back(std::move(job));
  }
  cv_work_.notify_one();
}

void CampaignRunner::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }

    JobStats local;
    local.index = job.opt.stats_index.value_or(job.index);
    local.label = job.label;
    JobContext ctx(&local);
    ctx.runner_ = this;
    ctx.opt_ = job.opt;
    const auto t0 = std::chrono::steady_clock::now();
    job.body(ctx);  // a packaged_task: exceptions land in the job's future
    local.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    // A job that ran past its whole wall budget (all attempts combined)
    // without the in-simulation watchdog catching it — e.g. it never armed a
    // guard — is still recorded truthfully as over budget.
    if (job.opt.wall_timeout_seconds > 0 && !local.quarantined &&
        local.wall_seconds > job.opt.wall_timeout_seconds *
                                 std::max<u32>(1u, job.opt.max_attempts)) {
      local.quarantined = true;
      local.quarantine_reason = "wall-clock budget exceeded";
    }
    local.done = !local.quarantined;

    // Journal before commit: the fsync'd D record is on disk before the
    // result becomes visible to stats()/futures' consumers, so a crash
    // between the two at worst re-runs a finished job (idempotent), never
    // trusts an unjournaled one.
    journal_done(local);
    {
      std::lock_guard<std::mutex> lk(mu_);
      records_[job.index] = local;
      --inflight_;
      if (queue_.empty() && inflight_ == 0) cv_idle_.notify_all();
    }
    // After the commit and outside the lock: the hook observes the same
    // record stats() now serves, and may block (socket writes) without
    // stalling other workers' commits.
    if (completion_hook_) completion_hook_(local);
  }
}

void CampaignRunner::journal_begun(usize index, u32 attempt) {
  if (journal_ != nullptr) journal_->record_begun(index, attempt);
}

void CampaignRunner::journal_done(const JobStats& stats) {
  if (journal_ != nullptr) journal_->record_done(stats);
}

void CampaignRunner::journal_worker_death(usize index,
                                          const std::string& reason) {
  if (journal_ != nullptr) journal_->record_worker_death(index, reason);
}

u32 CampaignRunner::note_crash(u64 spec) {
  std::lock_guard<std::mutex> lk(cmu_);
  return ++crash_counts_[spec];
}

u32 CampaignRunner::crash_count(u64 spec) const {
  std::lock_guard<std::mutex> lk(cmu_);
  const auto it = crash_counts_.find(spec);
  return it == crash_counts_.end() ? 0 : it->second;
}

void CampaignRunner::watchdog_loop() {
  std::unique_lock<std::mutex> lk(wmu_);
  for (;;) {
    if (watchdog_shutdown_) return;
    // Sleep until the earliest armed deadline (or a new watch / shutdown).
    bool have_deadline = false;
    std::chrono::steady_clock::time_point next{};
    for (const Watch& w : watches_) {
      if (w.fired || !w.has_deadline) continue;
      if (!have_deadline || w.deadline < next) {
        next = w.deadline;
        have_deadline = true;
      }
    }
    // With signal-stop enabled the wait is capped so the signal flag is
    // observed within ~100ms even when no deadline is near.
    if (signal_stop_enabled()) {
      const auto cap =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
      wcv_.wait_until(lk, have_deadline && next < cap ? next : cap);
    } else if (have_deadline) {
      wcv_.wait_until(lk, next);
    } else {
      wcv_.wait(lk);
    }
    if (watchdog_shutdown_) return;
    if (signal_stop_enabled() && signal_stop_requested()) {
      // Broadcast every poll (not once): a job that armed its guard after
      // the first broadcast still has to be stopped.
      cancelled_.store(true, std::memory_order_relaxed);
      for (Watch& w : watches_) {
        w.interrupted = true;
        w.sim->request_stop();
      }
      // Forked workers can't observe the stop flag — kill them; their
      // run_child calls return an "interrupted" verdict.
      if (pool_ != nullptr) pool_->kill_all();
    }
    const auto now = std::chrono::steady_clock::now();
    for (Watch& w : watches_) {
      if (w.fired || !w.has_deadline || now < w.deadline) continue;
      w.fired = true;
      // request_stop() is the one Simulation entry point that is safe from
      // another OS thread; the job observes kExplicitStop and its guard
      // reports the timeout.
      w.sim->request_stop();
    }
  }
}

void CampaignRunner::request_stop_all() {
  cancelled_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wmu_);
    for (Watch& w : watches_) {
      w.interrupted = true;
      w.sim->request_stop();
    }
  }
  if (pool_ != nullptr) pool_->kill_all();
}

u64 CampaignRunner::watch(kern::Simulation& sim, double timeout_seconds) {
  Watch w;
  w.sim = &sim;
  w.has_deadline = timeout_seconds > 0;
  if (w.has_deadline)
    w.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
  {
    std::lock_guard<std::mutex> lk(wmu_);
    w.id = next_watch_id_++;
    // A guard armed after a broadcast stop is stopped immediately — the
    // sweep is shutting down.
    if (cancelled_.load(std::memory_order_relaxed)) {
      w.interrupted = true;
      sim.request_stop();
    }
    watches_.push_back(w);
  }
  wcv_.notify_all();
  return w.id;
}

CampaignRunner::WatchResult CampaignRunner::unwatch(u64 id) {
  std::lock_guard<std::mutex> lk(wmu_);
  for (usize i = 0; i < watches_.size(); ++i) {
    if (watches_[i].id != id) continue;
    const WatchResult r{watches_[i].fired, watches_[i].interrupted};
    watches_.erase(watches_.begin() + static_cast<std::ptrdiff_t>(i));
    return r;
  }
  return {};
}

WatchdogGuard JobContext::guard(kern::Simulation& sim) {
  // runner_ == nullptr covers both out-of-pool contexts (run_inline) and
  // forked worker children: the child's deadline is the parent supervisor's
  // SIGKILL, not an in-process watchdog.
  if (runner_ == nullptr) return WatchdogGuard(this, 0);
  // Register even without a wall timeout: the watch is the only path by
  // which request_stop_all() or a SIGINT/SIGTERM broadcast can reach this
  // job's kernel while it simulates.
  return WatchdogGuard(this, runner_->watch(sim, opt_.wall_timeout_seconds));
}

WatchdogGuard::~WatchdogGuard() {
  if (id_ == 0) return;
  const CampaignRunner::WatchResult r = ctx_->runner_->unwatch(id_);
  if (r.fired) ctx_->timed_out_ = true;
  if (r.interrupted) ctx_->interrupted_ = true;
}

void JobContext::begin_attempt(u32 attempt) {
  timed_out_ = false;
  stats_->attempts = attempt;
  if (runner_ != nullptr) {
    if (runner_->cancelled()) interrupted_ = true;
    runner_->journal_begun(stats_->index, attempt);
  }
}

bool JobContext::interrupted() const noexcept {
  return interrupted_ || (runner_ != nullptr && runner_->cancelled());
}

bool JobContext::process_mode() const noexcept {
  return runner_ != nullptr && runner_->mode() == ExecutionMode::kProcesses;
}

u64 JobContext::crash_key() const {
  return opt_.spec != 0 ? opt_.spec : spec_hash(stats_->label);
}

bool JobContext::crash_quarantined() const noexcept {
  return opt_.crash_limit > 0 && runner_ != nullptr &&
         runner_->crash_count(crash_key()) >= opt_.crash_limit;
}

void JobContext::retry_backoff(u32 next_attempt) {
  if (opt_.retry_backoff_seconds <= 0 || next_attempt < 2) return;
  double delay = opt_.retry_backoff_seconds;
  for (u32 a = 2; a < next_attempt; ++a) delay = std::min(delay * 2, 30.0);
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(delay);
  // Small slices keep a backing-off job responsive to stop broadcasts.
  while (std::chrono::steady_clock::now() < until) {
    if (interrupted()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void JobContext::run_attempt_in_child(
    const std::function<void(JobContext&)>& body) {
  ChildRequest req;
  req.index = stats_->index;
  req.label = stats_->label;
  req.attempt = stats_->attempts;
  req.opt = opt_;
  req.body = body;
  const ChildResult r = runner_->pool_->run_child(req);

  if (r.has_stats) {
    JobStats fresh = r.stats;
    // Parent-side identity and attempt bookkeeping stay authoritative —
    // the child only knows about its own single attempt.
    fresh.index = stats_->index;
    fresh.label = stats_->label;
    fresh.attempts = stats_->attempts;
    fresh.worker_deaths = stats_->worker_deaths;
    const bool child_failed = fresh.failed;
    std::string child_error = fresh.error;
    if (child_failed) {
      fresh.failed = false;
      fresh.error.clear();
    }
    *stats_ = std::move(fresh);
    // A body that threw inside the child replays as an exception here, so
    // the retry loop treats thread-mode and process-mode failures alike.
    // Budget exhaustion keeps its type across the pipe: the child ships a
    // structured `budget-quarantined` verdict (not a crash), and the parent
    // re-raises it typed so the attempt loop's handler applies uniformly.
    if (stats_->quarantined && stats_->quarantine_reason == "budget-quarantined")
      throw mem::BudgetExceededError(
          0, 0, mem::MemoryBudget::instance().limit_bytes(),
          stats_->mem_resident_peak_bytes);
    if (child_failed) throw std::runtime_error(std::move(child_error));
    return;
  }

  ++stats_->worker_deaths;
  runner_->journal_worker_death(stats_->index, r.failure.reason());
  using Kind = WorkerFailure::Kind;
  const bool crash = r.failure.kind == Kind::kSignal ||
                     r.failure.kind == Kind::kExitCode ||
                     r.failure.kind == Kind::kHeartbeatLost ||
                     r.failure.kind == Kind::kProtocol;
  if (crash) runner_->note_crash(crash_key());
  throw WorkerDeathError(r.failure);
}

void CampaignRunner::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && inflight_ == 0; });
}

std::vector<JobStats> CampaignRunner::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

usize default_thread_count() {
  if (const char* env = std::getenv("ADRIATIC_CAMPAIGN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<usize>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace adriatic::campaign
