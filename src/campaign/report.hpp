// JSON report writer for campaign runs: one object per job (submission
// order) plus aggregate throughput figures, so sweeps and benches can drop
// `BENCH_*.json` trajectory points at the repo root and downstream tooling
// can track wall-clock/sim-time trends across PRs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace adriatic::campaign {

/// Serialises the per-job records as a JSON document:
/// {"campaign": name, "threads": N, "jobs": [...], "totals": {...}}.
[[nodiscard]] std::string report_json(const std::string& name, usize threads,
                                      const std::vector<JobStats>& stats);

/// Writes report_json() to `path`; returns false (and logs) on I/O failure.
bool write_report_file(const std::string& path, const std::string& name,
                       usize threads, const std::vector<JobStats>& stats);

}  // namespace adriatic::campaign
