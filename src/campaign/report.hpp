// JSON report writer for campaign runs: one object per job (submission
// order) plus aggregate throughput figures, so sweeps and benches can drop
// `BENCH_*.json` trajectory points at the repo root and downstream tooling
// can track wall-clock/sim-time trends across PRs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace adriatic::campaign {

/// Cross-run dedup counters for campaigns that ran through the socket
/// service (fault_sweep/dse_explorer --server): how many jobs were requested
/// over the wire and how many of those the server answered from its result
/// cache without simulating. report_json() emits them in "totals" as
/// service_requests / dedup_hits / dedup_ratio; a fully warm pass has
/// dedup_ratio == 1.0.
struct ServiceTotals {
  u64 service_requests = 0;
  u64 dedup_hits = 0;
};

/// Serialises the per-job records as a JSON document:
/// {"campaign": name, "threads": N, "jobs": [...], "totals": {...}}.
/// `service` (optional) adds the cross-run dedup totals.
[[nodiscard]] std::string report_json(const std::string& name, usize threads,
                                      const std::vector<JobStats>& stats,
                                      const ServiceTotals* service = nullptr);

/// Writes report_json() to `path`; returns false (and logs) on I/O failure.
bool write_report_file(const std::string& path, const std::string& name,
                       usize threads, const std::vector<JobStats>& stats,
                       const ServiceTotals* service = nullptr);

}  // namespace adriatic::campaign
