#include "campaign/worker_pool.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/journal.hpp"
#include "util/strings.hpp"

namespace adriatic::campaign {

namespace {

// fork() is serialised process-wide, and the parent closes its copy of the
// child's write fd before releasing the lock. Without this, a concurrently
// forked sibling would inherit the write end and keep the pipe open after
// the owning child died — the parent would never see EOF and a crashed
// child would look like a hang until its sibling exited too.
std::mutex g_fork_mu;

// Child-side heartbeat state for the async-signal-safe SIGALRM handler:
// a precomputed frame and the raw fd, nothing that allocates.
int g_heartbeat_fd = -1;
char g_heartbeat_frame[kFrameHeaderSize];

void heartbeat_handler(int) noexcept {
  if (g_heartbeat_fd < 0) return;
  // Best-effort: a full pipe just drops a beat (the parent reads eagerly).
  [[maybe_unused]] const ssize_t n =
      ::write(g_heartbeat_fd, g_heartbeat_frame, sizeof g_heartbeat_frame);
}

[[nodiscard]] const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return nullptr;
  }
}

void put_u32_le(std::string& out, u32 v) {
  for (int i = 0; i < 4; ++i)
    out += static_cast<char>((v >> (8 * i)) & 0xFFu);
}

[[nodiscard]] u32 get_u32_le(const std::string& s, usize at) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(s[at + static_cast<usize>(i)]))
         << (8 * i);
  return v;
}

/// Full write with EINTR retry; false on hard error (parent gone).
bool write_all(int fd, const char* data, usize n) {
  usize off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<usize>(w);
  }
  return true;
}

}  // namespace

std::string WorkerFailure::reason() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kSignal:
      if (const char* name = signal_name(code))
        return std::string("signal:") + name;
      return strfmt("signal:%d", code);
    case Kind::kExitCode:
      return strfmt("exit:%d", code);
    case Kind::kTimeout:
      return "timeout";
    case Kind::kHeartbeatLost:
      return "heartbeat-lost";
    case Kind::kInterrupted:
      return "interrupted";
    case Kind::kProtocol:
      return "protocol";
  }
  return "unknown";
}

// -- Frame codec -------------------------------------------------------------

std::string encode_frame(char type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out += kFrameMagic;
  out += type;
  put_u32_le(out, static_cast<u32>(payload.size()));
  put_u32_le(out, static_cast<u32>(fnv1a(payload)));
  out += payload;
  return out;
}

std::optional<Frame> FrameDecoder::next() {
  if (error_ || buf_.size() < kFrameHeaderSize) return std::nullopt;
  if (buf_[0] != kFrameMagic) {
    error_ = true;
    return std::nullopt;
  }
  const u32 len = get_u32_le(buf_, 2);
  if (len > kFrameMaxPayload) {
    error_ = true;
    return std::nullopt;
  }
  if (buf_.size() < kFrameHeaderSize + len) return std::nullopt;
  Frame f;
  f.type = buf_[1];
  f.payload = buf_.substr(kFrameHeaderSize, len);
  if (static_cast<u32>(fnv1a(f.payload)) != get_u32_le(buf_, 6)) {
    error_ = true;
    return std::nullopt;
  }
  buf_.erase(0, kFrameHeaderSize + len);
  return f;
}

// -- Pool --------------------------------------------------------------------

bool ProcessWorkerPool::fork_available() noexcept {
#if defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return false;
#endif
#endif
  const char* env = std::getenv("ADRIATIC_NO_FORK");
  if (env != nullptr && env[0] == '1') return false;
  return true;
}

ProcessWorkerPool::ProcessWorkerPool() {
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

ProcessWorkerPool::~ProcessWorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  supervisor_.join();
}

usize ProcessWorkerPool::live_children() const {
  std::lock_guard<std::mutex> lk(mu_);
  return children_.size();
}

u64 ProcessWorkerPool::register_child(int pid, const JobOptions& opt) {
  const auto now = std::chrono::steady_clock::now();
  ChildWatch w;
  w.pid = pid;
  w.has_deadline = opt.wall_timeout_seconds > 0;
  if (w.has_deadline)
    w.deadline =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(opt.wall_timeout_seconds));
  w.heartbeat_timeout = opt.heartbeat_timeout_seconds;
  w.last_heartbeat = now;
  u64 token = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    token = next_token_++;
    children_[token] = w;
  }
  cv_.notify_all();
  return token;
}

void ProcessWorkerPool::note_heartbeat(u64 token) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = children_.find(token);
  if (it != children_.end())
    it->second.last_heartbeat = std::chrono::steady_clock::now();
}

WorkerFailure ProcessWorkerPool::unregister_child(u64 token) {
  // Removing the entry *before* waitpid() guarantees the supervisor never
  // signals a pid that has been reaped (and possibly recycled).
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = children_.find(token);
  if (it == children_.end()) return {};
  const WorkerFailure verdict = it->second.verdict;
  children_.erase(it);
  return verdict;
}

void ProcessWorkerPool::kill_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [token, w] : children_) {
    if (w.verdict.kind != WorkerFailure::Kind::kNone) continue;
    w.verdict.kind = WorkerFailure::Kind::kInterrupted;
    ::kill(w.pid, SIGKILL);
  }
}

void ProcessWorkerPool::supervisor_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (shutdown_) return;
    cv_.wait_for(lk, std::chrono::milliseconds(50));
    if (shutdown_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [token, w] : children_) {
      if (w.verdict.kind != WorkerFailure::Kind::kNone) continue;
      if (w.has_deadline && now >= w.deadline) {
        w.verdict.kind = WorkerFailure::Kind::kTimeout;
        ::kill(w.pid, SIGKILL);
      } else if (w.heartbeat_timeout > 0 &&
                 std::chrono::duration<double>(now - w.last_heartbeat)
                         .count() > w.heartbeat_timeout) {
        w.verdict.kind = WorkerFailure::Kind::kHeartbeatLost;
        ::kill(w.pid, SIGKILL);
      }
    }
  }
}

void ProcessWorkerPool::child_main(const ChildRequest& req, int write_fd) {
  // The parent's SIGINT/SIGTERM dispositions (install_stop_signal_handlers)
  // must not leak into workers: a Ctrl-C would otherwise set the inherited
  // stop flag in every child instead of letting the parent's broadcast
  // SIGKILL them with a clean "interrupted" verdict.
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  sigemptyset(&dfl.sa_mask);
  ::sigaction(SIGINT, &dfl, nullptr);
  ::sigaction(SIGTERM, &dfl, nullptr);

  // Heartbeats: ~10/s via SIGALRM, written straight from the handler. The
  // child stays single-threaded on purpose — a helper thread after a
  // multithreaded fork is exactly what sanitizers (rightly) reject.
  g_heartbeat_fd = write_fd;
  {
    const std::string hb = encode_frame(kFrameHeartbeat, "");
    std::memcpy(g_heartbeat_frame, hb.data(), kFrameHeaderSize);
  }
  struct sigaction alarm_sa = {};
  alarm_sa.sa_handler = heartbeat_handler;
  sigemptyset(&alarm_sa.sa_mask);
  alarm_sa.sa_flags = SA_RESTART;
  ::sigaction(SIGALRM, &alarm_sa, nullptr);
  itimerval tv = {};
  tv.it_interval.tv_usec = 100 * 1000;
  tv.it_value.tv_usec = 100 * 1000;
  ::setitimer(ITIMER_REAL, &tv, nullptr);

  // Deliberate failures for crash-containment tests, injected before the
  // body so containment (not the simulation) is what gets exercised.
  switch (req.opt.debug_failure) {
    case DebugFailure::kNone:
      break;
    case DebugFailure::kSegv:
      // ASan intercepts SIGSEGV and turns it into exit(1); restoring the
      // default disposition first makes the child genuinely die by signal
      // in every build flavour.
      ::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      ::_exit(97);  // unreachable
    case DebugFailure::kAbort:
      ::signal(SIGABRT, SIG_DFL);
      ::abort();
    case DebugFailure::kHangCpu:
      // Heartbeats keep flowing while this spins, so only the wall
      // deadline catches it — the "runaway but alive" failure mode.
      for (volatile u64 spin = 0;;) {
        spin = spin + 1;
      }
    case DebugFailure::kHangSleep: {
      // Block SIGALRM so heartbeats stop too: the "wedged in the kernel /
      // swapped out" failure mode the heartbeat timeout exists for.
      sigset_t block;
      sigemptyset(&block);
      sigaddset(&block, SIGALRM);
      ::sigprocmask(SIG_BLOCK, &block, nullptr);
      for (;;) {
        timespec ts{3600, 0};
        ::nanosleep(&ts, nullptr);
      }
    }
    case DebugFailure::kExitCode:
      ::_exit(req.opt.debug_exit_code);
  }

  JobStats local;
  local.index = req.index;
  local.label = req.label;
  local.attempts = req.attempt;
  JobContext ctx(&local);  // runner_ stays null: guard() is a no-op here —
                           // the parent's supervisor is the watchdog.
  const auto t0 = std::chrono::steady_clock::now();
  try {
    req.body(ctx);
  } catch (const mem::BudgetExceededError& over) {
    // A structured verdict, not a crash: the child exits cleanly with a
    // `budget-quarantined` result frame instead of dying to the OOM killer.
    ctx.mark_budget_quarantined(over);
  } catch (...) {
    ctx.mark_failed(describe_current_exception());
  }
  local.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Quiesce the heartbeat before the result frame so the two writes cannot
  // interleave mid-frame.
  itimerval off = {};
  ::setitimer(ITIMER_REAL, &off, nullptr);
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGALRM);
  ::sigprocmask(SIG_BLOCK, &block, nullptr);

  const std::string frame =
      encode_frame(kFrameResult, encode_job_stats(local));
  write_all(write_fd, frame.data(), frame.size());
  ::close(write_fd);
  // _exit, not exit: atexit handlers and static destructors belong to the
  // parent image and must run exactly once, in the parent.
  ::_exit(0);
}

ChildResult ProcessWorkerPool::run_child(const ChildRequest& req) {
  int fds[2] = {-1, -1};
  int pid = -1;
  {
    std::lock_guard<std::mutex> fork_lk(g_fork_mu);
    if (::pipe(fds) != 0) {
      ChildResult r;
      r.failure.kind = WorkerFailure::Kind::kProtocol;
      return r;
    }
    pid = ::fork();
    if (pid == 0) {
      ::close(fds[0]);
      child_main(req, fds[1]);  // never returns
    }
    // Parent: drop the write end before any sibling can fork and inherit
    // it, so child death == EOF on the read end.
    ::close(fds[1]);
    if (pid < 0) {
      ::close(fds[0]);
      ChildResult r;
      r.failure.kind = WorkerFailure::Kind::kProtocol;
      return r;
    }
  }

  const u64 token = register_child(pid, req.opt);
  FrameDecoder decoder;
  std::optional<std::string> result_payload;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fds[0], chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: the child exited or was SIGKILLed.
    decoder.feed(chunk, static_cast<usize>(n));
    while (auto f = decoder.next()) {
      if (f->type == kFrameHeartbeat) {
        note_heartbeat(token);
      } else if (f->type == kFrameResult) {
        result_payload = std::move(f->payload);
      }
    }
    if (decoder.error()) break;
  }
  const WorkerFailure verdict = unregister_child(token);
  ::close(fds[0]);

  // Blocking reap — EOF means the child is gone or going; this cannot hang
  // and it keeps the process table zombie-free.
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  ChildResult r;
  if (result_payload.has_value()) {
    // A complete, checksummed result outranks everything else: even if the
    // supervisor's SIGKILL raced the child's _exit, the job itself finished.
    r.has_stats = true;
    r.stats = decode_job_stats(*result_payload);
    return r;
  }
  if (verdict.kind != WorkerFailure::Kind::kNone) {
    r.failure = verdict;
    return r;
  }
  if (WIFSIGNALED(status)) {
    r.failure.kind = WorkerFailure::Kind::kSignal;
    r.failure.code = WTERMSIG(status);
  } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    r.failure.kind = WorkerFailure::Kind::kExitCode;
    r.failure.code = WEXITSTATUS(status);
  } else {
    // Exited 0 without delivering a result (or corrupted the stream).
    r.failure.kind = WorkerFailure::Kind::kProtocol;
  }
  return r;
}

}  // namespace adriatic::campaign
