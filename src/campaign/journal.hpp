// Crash-safe campaign journaling: a write-ahead journal that survives
// SIGKILL mid-sweep. Every planned job, begun attempt, and completed result
// is an fsync'd append-only line with a per-line checksum (torn tail writes
// from a crash are detected and dropped on read). A killed campaign resumes
// with `--resume <journal>`: completed JobStats are restored verbatim from
// their `D` records, only unfinished/quarantined jobs re-run, and the
// journaled scheduler-trace digests let the resumed results be verified
// against the original run.
//
// Line grammar (space-separated tokens, strings percent-encoded):
//   J adriatic-campaign-journal v1 name=<campaign>
//   P <index> <spec_hash_hex> <label>       -- job planned
//   B <index> <attempt>                     -- attempt begun
//   D <index> key=value ...                 -- result (full JobStats)
//   X <index> <reason>                      -- worker child died (process
//                                              mode: crash/timeout kill)
//   C <spec_hash_hex>                       -- job served from result cache
// Every line ends with ` cks=<fnv1a_hex>` over the preceding content. The
// last D record per index wins; a D with done=0 (quarantined/interrupted)
// leaves the job eligible for re-run.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/types.hpp"

namespace adriatic::campaign {

/// Identity of one planned job: FNV-1a over the label folded with a
/// caller-supplied parameter digest. Resume refuses to reuse a journal whose
/// planned specs do not match the jobs the tool is about to run.
[[nodiscard]] u64 spec_hash(const std::string& label, u64 param_digest = 0);

// -- Wire helpers ------------------------------------------------------------
// Shared by the journal, the process-worker pipe frames (worker_pool.cpp)
// and the result cache (result_cache.cpp), so every JobStats restore path —
// journal resume, child-to-parent pipe, warm cache — deserialises the exact
// same byte layout.

[[nodiscard]] u64 fnv1a(const std::string& s,
                        u64 seed = 14695981039346656037ULL);
/// Percent-encodes control bytes, space, DEL and '%' so a string field stays
/// one splittable token.
[[nodiscard]] std::string encode_field(const std::string& s);
[[nodiscard]] std::string decode_field(const std::string& s);
/// " cks=<fnv1a_hex>" over `content`; appended to every journal/cache line.
[[nodiscard]] std::string checksum_suffix(const std::string& content);
/// Splits "content cks=hex" and verifies; nullopt on mismatch (torn line).
[[nodiscard]] std::optional<std::string> strip_checksum(
    const std::string& line);
/// Serialises every populated JobStats field as the `key=value ...` tail of
/// a D record (everything after "D <index>"). Field order is fixed and
/// optional blocks are emitted only when their has_* flag (or a non-default
/// value) is set, so encoding the same stats twice is byte-identical.
[[nodiscard]] std::string encode_job_stats(const JobStats& s);
/// Parses an encode_job_stats() tail; absent keys keep their defaults and
/// unknown keys are ignored (stale-schema tolerance). `index` is not part
/// of the tail — callers carry it beside the payload.
[[nodiscard]] JobStats decode_job_stats(const std::string& tail);

class CampaignJournal {
 public:
  /// Creates (truncates) `path` and writes the header. Null on I/O error.
  static std::unique_ptr<CampaignJournal> create(const std::string& path,
                                                 const std::string& campaign);
  /// Opens an existing journal for appending (resume). Null on I/O error.
  static std::unique_ptr<CampaignJournal> append_to(const std::string& path);
  ~CampaignJournal();

  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  void record_planned(usize index, u64 spec, const std::string& label);
  void record_begun(usize index, u32 attempt);
  void record_done(const JobStats& stats);
  /// Process mode: a forked worker child died without a result (crash,
  /// timeout kill, heartbeat kill); `reason` is WorkerFailure::reason().
  void record_worker_death(usize index, const std::string& reason);
  /// The job keyed by `spec` was served from the result cache.
  void record_cache_hit(u64 spec);
  /// fsync the journal fd (appends already sync per record; this is for
  /// explicit barriers, e.g. before a graceful signal-stop exit).
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  CampaignJournal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  /// Appends `content` + checksum + newline, then fsyncs.
  void append_line(const std::string& content);

  std::mutex mu_;  ///< Serialises worker-thread appends.
  int fd_ = -1;
  std::string path_;
};

/// Everything a resume needs from a journal read-back.
struct JournalState {
  std::string campaign;
  struct Planned {
    u64 spec = 0;
    std::string label;
  };
  std::map<usize, Planned> planned;
  /// Jobs whose latest D record has done == true, restored verbatim.
  std::map<usize, JobStats> completed;
  usize begun_records = 0;  ///< B lines seen (attempts started pre-crash).
  usize torn_lines = 0;     ///< Lines dropped by the checksum (torn writes).
  struct WorkerDeath {
    usize index = 0;
    std::string reason;
  };
  std::vector<WorkerDeath> worker_deaths;  ///< X lines, in journal order.
  std::vector<u64> cache_hits;             ///< C lines (spec hashes).
};

/// Reads a journal back; nullopt when the file is missing or its header is
/// unreadable. Checksum-failing lines are dropped (counted in torn_lines),
/// so a journal truncated mid-append by SIGKILL still loads.
[[nodiscard]] std::optional<JournalState> read_journal(
    const std::string& path);

}  // namespace adriatic::campaign
