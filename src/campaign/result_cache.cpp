#include "campaign/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "campaign/journal.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace adriatic::campaign {

namespace {

constexpr char kCacheHeader[] = "R adriatic-result-cache v1";
constexpr char kEntryVersion[] = "v1";

}  // namespace

std::unique_ptr<ResultCache> ResultCache::open(const std::string& path) {
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }
  }

  bool header_ok = false;
  if (!text.empty()) {
    const usize eol = text.find('\n');
    const std::string first = text.substr(0, eol);
    const auto content = strip_checksum(first);
    header_ok = content.has_value() && *content == kCacheHeader;
  }

  int fd = -1;
  if (header_ok) {
    fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  } else {
    // Missing or with an unreadable header: (re)create. A cache whose
    // header cannot be verified is worthless — every entry is suspect.
    if (!text.empty())
      log::warn() << "result cache: resetting " << path
                  << " (unreadable header)";
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    text.clear();
  }
  if (fd < 0) {
    log::error() << "result cache: cannot open " << path;
    return nullptr;
  }

  auto cache = std::unique_ptr<ResultCache>(new ResultCache(fd, path));
  if (header_ok) {
    cache->load(text);
  } else {
    const std::string line =
        std::string(kCacheHeader) + checksum_suffix(kCacheHeader) + "\n";
    if (::write(fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      log::error() << "result cache: cannot write header to " << path;
      return nullptr;
    }
    ::fsync(fd);
  }
  return cache;
}

ResultCache::~ResultCache() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultCache::load(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto content = strip_checksum(line);
    if (first) {
      first = false;
      continue;  // Header already verified by open().
    }
    if (!content.has_value()) {
      ++dropped_;  // Torn tail write or bit rot — a miss, not a hazard.
      continue;
    }
    // E <spec_hex> v1 <tail...>
    const std::vector<std::string> tok = split(*content, ' ');
    if (tok.size() < 4 || tok[0] != "E") {
      ++dropped_;
      continue;
    }
    if (tok[2] != kEntryVersion) {
      ++dropped_;  // Stale schema: never decode across entry versions.
      continue;
    }
    usize tail_at = content->find(' ');
    for (int skip = 0; skip < 2 && tail_at != std::string::npos; ++skip)
      tail_at = content->find(' ', tail_at + 1);
    if (tail_at == std::string::npos) {
      ++dropped_;
      continue;
    }
    const u64 spec = std::strtoull(tok[1].c_str(), nullptr, 16);
    entries_[spec] = content->substr(tail_at + 1);  // Last entry wins.
  }
}

std::optional<JobStats> ResultCache::lookup(u64 spec) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(spec);
  if (it == entries_.end()) return std::nullopt;
  return decode_job_stats(it->second);
}

void ResultCache::store(u64 spec, const JobStats& stats) {
  if (!stats.done || stats.failed || stats.quarantined || stats.from_cache)
    return;
  const std::string tail = encode_job_stats(stats);
  const std::string content =
      strfmt("E %016llx %s ", static_cast<unsigned long long>(spec),
             kEntryVersion) +
      tail;
  const std::string line = content + checksum_suffix(content) + "\n";
  std::lock_guard<std::mutex> lk(mu_);
  usize off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      log::error() << "result cache: write failed on " << path_;
      return;
    }
    off += static_cast<usize>(n);
  }
  ::fsync(fd_);
  entries_[spec] = tail;
}

usize ResultCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace adriatic::campaign
