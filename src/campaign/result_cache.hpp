// Digest-keyed cross-run result cache: spec_hash -> serialized JobStats.
//
// A campaign tool opens the cache next to its journal, looks every planned
// job up by its spec hash before submitting, and stores every cleanly
// finished result after the sweep. A warm rerun of the same sweep then
// re-simulates nothing — the cached JobStats (including the scheduler-trace
// digest and the tool's user_data payload) is installed verbatim and
// flagged from_cache so reports can surface cross-run dedup counts.
//
// File format (append-only, one fsync'd line per entry, torn-tolerant):
//   R adriatic-result-cache v1
//   E <spec_hash_hex> v1 <encode_job_stats() tail>
// Every line carries the journal's ` cks=<fnv1a_hex>` suffix. On load,
// lines that fail the checksum (torn tail writes), carry an unknown entry
// version (stale schema) or do not parse are dropped and counted — a
// damaged cache degrades to cache misses, never to wrong results. The last
// entry per spec wins, so re-storing a spec just appends.
//
// Reuse caveat: a cache hit is only as sound as the spec hash. The hash
// must fold *every* input that affects the simulation (label, seed,
// parameters, timing mode, quantum...); a tool that widens its parameter
// space must widen its spec_hash() call the same way, or stale results
// will be served for configurations that merely share a label.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "campaign/campaign.hpp"
#include "util/types.hpp"

namespace adriatic::campaign {

class ResultCache {
 public:
  /// Opens `path` for read + append, creating it (with a header) when
  /// missing and resetting it when the header is unreadable — it is a
  /// cache, so a damaged file is discarded, not trusted. Existing entries
  /// are loaded eagerly. Null only on hard I/O errors (unwritable path).
  static std::unique_ptr<ResultCache> open(const std::string& path);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The stats stored for `spec`, exactly as simulated (from_cache is NOT
  /// set — the caller decides how to flag served copies). nullopt on miss.
  [[nodiscard]] std::optional<JobStats> lookup(u64 spec) const;

  /// Persists a cleanly finished result (fsync'd append). Ignores stats
  /// that are not done, failed, quarantined, or themselves served from the
  /// cache — only genuine simulation outcomes are worth replaying.
  void store(u64 spec, const JobStats& stats);

  [[nodiscard]] usize size() const;
  /// Lines dropped on load: torn writes, checksum failures, stale entry
  /// versions.
  [[nodiscard]] usize dropped_lines() const noexcept { return dropped_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  ResultCache(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  void load(const std::string& text);

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::map<u64, std::string> entries_;  ///< spec -> encode_job_stats() tail.
  usize dropped_ = 0;
};

}  // namespace adriatic::campaign
