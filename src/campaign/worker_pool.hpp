// Fork-based process isolation for campaign jobs (ExecutionMode::kProcesses).
//
// Each job attempt runs in a forked child: the worker thread forks, the
// child executes the job body against a child-local JobContext and streams
// the resulting JobStats back over a pipe as a length-prefixed, checksummed
// frame, then _exit()s without running parent destructors. While the child
// runs, a SIGALRM-driven timer inside it writes heartbeat frames (~10/s) —
// the child stays single-threaded, which keeps fork()-from-a-threaded-parent
// on the well-trodden glibc path and works under sanitizers that veto
// threads after fork.
//
// A single supervisor thread in the parent scans every live child: a child
// past its wall deadline is SIGKILLed with verdict kTimeout; one whose pipe
// has been silent past the heartbeat timeout is SIGKILLed with verdict
// kHeartbeatLost; a campaign-wide stop broadcast (kill_all) SIGKILLs all of
// them with verdict kInterrupted. The worker thread that owns a child reads
// its pipe to EOF, takes the supervisor's verdict, then reaps the child with
// a blocking waitpid() — children are unregistered before the reap, so the
// supervisor can never signal a recycled pid, and no zombies accumulate.
//
// Wire format (pipe frames):
//   [0] magic 'A'   [1] type   [2..5] payload length (u32 LE)
//   [6..9] FNV-1a checksum of the payload (u32 LE)   [10..] payload
// Types: 'H' heartbeat (empty payload), 'R' result (payload is the
// journal's encode_job_stats() tail, so pipe, journal and result cache all
// share one JobStats serialisation).
#pragma once

#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "campaign/campaign.hpp"
#include "util/types.hpp"

namespace adriatic::campaign {

// -- Frame codec -------------------------------------------------------------

inline constexpr char kFrameMagic = 'A';
inline constexpr char kFrameHeartbeat = 'H';
inline constexpr char kFrameResult = 'R';
inline constexpr usize kFrameHeaderSize = 10;
/// Upper bound on one frame's payload; a length field beyond it means the
/// stream is corrupt, not that a 4 GB allocation is pending.
inline constexpr u32 kFrameMaxPayload = 16u << 20;

/// One wire frame: header + checksummed payload.
[[nodiscard]] std::string encode_frame(char type, const std::string& payload);

struct Frame {
  char type = 0;
  std::string payload;
};

/// Incremental frame parser fed from read() chunks. next() yields complete
/// frames; a magic/length/checksum violation latches error() — the stream
/// is unrecoverable past that point (treated as a protocol failure).
class FrameDecoder {
 public:
  void feed(const char* data, usize n) { buf_.append(data, n); }
  [[nodiscard]] std::optional<Frame> next();
  [[nodiscard]] bool error() const noexcept { return error_; }

 private:
  std::string buf_;
  bool error_ = false;
};

// -- Process worker pool -----------------------------------------------------

/// Everything one forked attempt needs, captured before the fork.
struct ChildRequest {
  usize index = 0;
  std::string label;
  u32 attempt = 1;  ///< Parent's attempt counter, so the child's
                    ///< JobContext::attempt() matches thread mode.
  JobOptions opt;
  std::function<void(JobContext&)> body;
};

/// What came back from one forked attempt: a decoded JobStats when the
/// child delivered a checksummed result frame and nothing killed it first,
/// otherwise the structured failure for the retry machinery.
struct ChildResult {
  bool has_stats = false;
  JobStats stats;
  WorkerFailure failure;
};

class ProcessWorkerPool {
 public:
  ProcessWorkerPool();
  ~ProcessWorkerPool();

  ProcessWorkerPool(const ProcessWorkerPool&) = delete;
  ProcessWorkerPool& operator=(const ProcessWorkerPool&) = delete;

  /// False where fork-based isolation cannot work: ThreadSanitizer builds
  /// (TSan forbids new threads after a multithreaded fork) and
  /// ADRIATIC_NO_FORK=1 (deterministic degrade-path test hook).
  /// CampaignRunner consults this and falls back to kThreads.
  [[nodiscard]] static bool fork_available() noexcept;

  /// Runs one attempt in a forked child, blocking the calling worker thread
  /// until the child delivers a result or dies. Thread-safe: one concurrent
  /// call per worker thread.
  [[nodiscard]] ChildResult run_child(const ChildRequest& req);

  /// SIGKILLs every live child (campaign-wide stop broadcast); their
  /// pending run_child() calls return WorkerFailure::Kind::kInterrupted.
  void kill_all();

  /// Live (registered, unreaped) children — 0 once the pool is idle.
  [[nodiscard]] usize live_children() const;

 private:
  struct ChildWatch {
    int pid = -1;
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    double heartbeat_timeout = 0;  ///< Seconds; 0 disables the check.
    std::chrono::steady_clock::time_point last_heartbeat;
    WorkerFailure verdict;  ///< kind != kNone once the supervisor acted.
  };

  /// Runs the job body in the forked child and never returns.
  [[noreturn]] static void child_main(const ChildRequest& req, int write_fd);

  void supervisor_loop();
  u64 register_child(int pid, const JobOptions& opt);
  void note_heartbeat(u64 token);
  WorkerFailure unregister_child(u64 token);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<u64, ChildWatch> children_;
  u64 next_token_ = 1;
  bool shutdown_ = false;
  std::thread supervisor_;
};

}  // namespace adriatic::campaign
