// Channel models for the WLAN-style link experiments: a memoryless binary
// symmetric channel and a two-state Gilbert-Elliott burst channel, plus a
// block interleaver that spreads burst errors across codewords.
#pragma once

#include <span>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace adriatic::comm {

/// Memoryless binary symmetric channel: each bit flips with probability p.
class BscChannel {
 public:
  explicit BscChannel(double error_rate, u64 seed = 1)
      : p_(error_rate), rng_(seed) {}

  [[nodiscard]] std::vector<u8> transmit(std::span<const u8> bits);
  [[nodiscard]] u64 errors_injected() const noexcept { return errors_; }

 private:
  double p_;
  Xoshiro256 rng_;
  u64 errors_ = 0;
};

/// Gilbert-Elliott burst channel: a two-state Markov chain alternating a
/// good state (low error rate) and a bad state (high error rate). Burst
/// length is geometric with mean 1/p_bad_to_good.
struct GilbertElliottParams {
  double p_good_to_bad = 0.01;
  double p_bad_to_good = 0.2;   ///< Mean burst length = 5 bits.
  double error_rate_good = 0.0005;
  double error_rate_bad = 0.3;
};

class GilbertElliottChannel {
 public:
  explicit GilbertElliottChannel(GilbertElliottParams params, u64 seed = 1)
      : params_(params), rng_(seed) {}

  [[nodiscard]] std::vector<u8> transmit(std::span<const u8> bits);
  [[nodiscard]] u64 errors_injected() const noexcept { return errors_; }
  /// Long-run average error rate of the chain (for matching a BSC).
  [[nodiscard]] double average_error_rate() const;

 private:
  GilbertElliottParams params_;
  Xoshiro256 rng_;
  bool bad_ = false;
  u64 errors_ = 0;
};

/// Block interleaver: writes row-major into a rows x cols matrix, reads
/// column-major. depth = rows; the input is zero-padded to a whole block.
[[nodiscard]] std::vector<u8> interleave(std::span<const u8> bits, usize rows,
                                         usize cols);
/// Exact inverse over the padded block; returns `original_size` bits.
[[nodiscard]] std::vector<u8> deinterleave(std::span<const u8> bits,
                                           usize rows, usize cols,
                                           usize original_size);

/// Bit-error-rate of `received` vs `sent` (compares min length).
[[nodiscard]] double bit_error_rate(std::span<const u8> sent,
                                    std::span<const u8> received);

}  // namespace adriatic::comm
