#include "comm/ofdm.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "accel/fft.hpp"

namespace adriatic::comm {

namespace {

[[nodiscard]] i16 sat16(i32 v) {
  if (v > 32767) return 32767;
  if (v < -32768) return -32768;
  return static_cast<i16>(v);
}

[[nodiscard]] std::vector<i32> conjugate(std::span<const i32> packed) {
  std::vector<i32> out(packed.size());
  for (usize i = 0; i < packed.size(); ++i)
    out[i] = accel::pack_cplx(accel::unpack_re(packed[i]),
                              static_cast<i16>(-accel::unpack_im(packed[i])));
  return out;
}

/// IDFT via the conjugation identity: idft(x) = conj(fft(conj(x))), given
/// that fft_q15 already folds in the 1/N scaling.
[[nodiscard]] std::vector<i32> ifft_q15(std::span<const i32> packed) {
  return conjugate(accel::fft_q15(conjugate(packed)));
}

void check_params(const OfdmParams& p) {
  if (!is_pow2(p.n_subcarriers) || p.n_subcarriers < 2)
    throw std::invalid_argument("OFDM: n_subcarriers must be a power of two");
  if (p.cyclic_prefix >= p.n_subcarriers)
    throw std::invalid_argument("OFDM: cyclic prefix >= symbol length");
}

}  // namespace

std::vector<i32> qpsk_map(std::span<const u8> bits, const OfdmParams& p) {
  check_params(p);
  std::vector<i32> freq(p.n_subcarriers);
  for (usize k = 0; k < p.n_subcarriers; ++k) {
    const u8 b0 = 2 * k < bits.size() ? bits[2 * k] & 1 : 0;
    const u8 b1 = 2 * k + 1 < bits.size() ? bits[2 * k + 1] & 1 : 0;
    // Gray-coded QPSK: bit0 -> I sign, bit1 -> Q sign.
    const i16 re = b0 ? static_cast<i16>(-p.amplitude) : p.amplitude;
    const i16 im = b1 ? static_cast<i16>(-p.amplitude) : p.amplitude;
    freq[k] = accel::pack_cplx(re, im);
  }
  return freq;
}

std::vector<u8> qpsk_demap(std::span<const i32> symbols, const OfdmParams& p) {
  check_params(p);
  std::vector<u8> bits;
  bits.reserve(symbols.size() * 2);
  for (const i32 s : symbols) {
    bits.push_back(accel::unpack_re(s) < 0 ? 1 : 0);
    bits.push_back(accel::unpack_im(s) < 0 ? 1 : 0);
  }
  return bits;
}

std::vector<i32> ofdm_modulate(std::span<const i32> freq,
                               const OfdmParams& p) {
  check_params(p);
  if (freq.size() != p.n_subcarriers)
    throw std::invalid_argument("ofdm_modulate: wrong symbol size");
  const auto time = ifft_q15(freq);
  std::vector<i32> out;
  out.reserve(p.cyclic_prefix + time.size());
  // Cyclic prefix: the tail of the symbol, repeated in front.
  out.insert(out.end(), time.end() - static_cast<std::ptrdiff_t>(p.cyclic_prefix),
             time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

std::vector<i32> ofdm_demodulate(std::span<const i32> time,
                                 const OfdmParams& p) {
  check_params(p);
  if (time.size() != p.n_subcarriers + p.cyclic_prefix)
    throw std::invalid_argument("ofdm_demodulate: wrong sample count");
  return accel::fft_q15(time.subspan(p.cyclic_prefix));
}

double AwgnChannel::gaussian() {
  // Box-Muller with a cached spare.
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = rng_.next_double();
  } while (u1 <= 1e-12);
  const double u2 = rng_.next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<i32> AwgnChannel::transmit(std::span<const i32> samples) {
  std::vector<i32> out(samples.size());
  for (usize i = 0; i < samples.size(); ++i) {
    const i32 re = accel::unpack_re(samples[i]) +
                   static_cast<i32>(std::lround(gaussian() * sigma_));
    const i32 im = accel::unpack_im(samples[i]) +
                   static_cast<i32>(std::lround(gaussian() * sigma_));
    out[i] = accel::pack_cplx(sat16(re), sat16(im));
  }
  return out;
}

double AwgnChannel::snr_db(i16 amplitude, double sigma) {
  if (sigma <= 0.0) return 1e9;
  const double signal = 2.0 * static_cast<double>(amplitude) *
                        static_cast<double>(amplitude);  // I^2 + Q^2
  const double noise = 2.0 * sigma * sigma;
  return 10.0 * std::log10(signal / noise);
}

std::vector<u8> ofdm_link(std::span<const u8> bits, const OfdmParams& p,
                          AwgnChannel& channel) {
  check_params(p);
  const usize bits_per_symbol = 2 * p.n_subcarriers;
  std::vector<u8> received;
  received.reserve(bits.size());
  for (usize base = 0; base < bits.size(); base += bits_per_symbol) {
    const usize n = std::min(bits_per_symbol, bits.size() - base);
    const auto freq = qpsk_map(bits.subspan(base, n), p);
    const auto tx = ofdm_modulate(freq, p);
    const auto rx = channel.transmit(tx);
    const auto demod = ofdm_demodulate(rx, p);
    const auto out_bits = qpsk_demap(demod, p);
    for (usize i = 0; i < n; ++i) received.push_back(out_bits[i]);
  }
  return received;
}

}  // namespace adriatic::comm
