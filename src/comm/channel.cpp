#include "comm/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace adriatic::comm {

std::vector<u8> BscChannel::transmit(std::span<const u8> bits) {
  std::vector<u8> out(bits.begin(), bits.end());
  for (auto& b : out) {
    if (rng_.next_bool(p_)) {
      b ^= 1;
      ++errors_;
    }
  }
  return out;
}

std::vector<u8> GilbertElliottChannel::transmit(std::span<const u8> bits) {
  std::vector<u8> out(bits.begin(), bits.end());
  for (auto& b : out) {
    // State transition first, then the state's error draw.
    if (bad_) {
      if (rng_.next_bool(params_.p_bad_to_good)) bad_ = false;
    } else {
      if (rng_.next_bool(params_.p_good_to_bad)) bad_ = true;
    }
    const double p = bad_ ? params_.error_rate_bad : params_.error_rate_good;
    if (rng_.next_bool(p)) {
      b ^= 1;
      ++errors_;
    }
  }
  return out;
}

double GilbertElliottChannel::average_error_rate() const {
  // Stationary distribution of the two-state chain.
  const double pi_bad = params_.p_good_to_bad /
                        (params_.p_good_to_bad + params_.p_bad_to_good);
  return pi_bad * params_.error_rate_bad +
         (1.0 - pi_bad) * params_.error_rate_good;
}

std::vector<u8> interleave(std::span<const u8> bits, usize rows, usize cols) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("interleave: zero dimension");
  const usize block = rows * cols;
  const usize blocks = ceil_div<usize>(bits.size(), block);
  std::vector<u8> out(blocks * block, 0);
  for (usize blk = 0; blk < blocks; ++blk) {
    for (usize r = 0; r < rows; ++r) {
      for (usize c = 0; c < cols; ++c) {
        const usize src = blk * block + r * cols + c;
        const usize dst = blk * block + c * rows + r;
        out[dst] = src < bits.size() ? bits[src] : 0;
      }
    }
  }
  return out;
}

std::vector<u8> deinterleave(std::span<const u8> bits, usize rows, usize cols,
                             usize original_size) {
  if (rows == 0 || cols == 0)
    throw std::invalid_argument("deinterleave: zero dimension");
  const usize block = rows * cols;
  const usize blocks = ceil_div<usize>(bits.size(), block);
  std::vector<u8> out(blocks * block, 0);
  for (usize blk = 0; blk < blocks; ++blk) {
    for (usize r = 0; r < rows; ++r) {
      for (usize c = 0; c < cols; ++c) {
        const usize dst = blk * block + r * cols + c;
        const usize src = blk * block + c * rows + r;
        out[dst] = src < bits.size() ? bits[src] : 0;
      }
    }
  }
  out.resize(std::min(original_size, out.size()));
  return out;
}

double bit_error_rate(std::span<const u8> sent, std::span<const u8> received) {
  const usize n = std::min(sent.size(), received.size());
  if (n == 0) return 0.0;
  usize errors = 0;
  for (usize i = 0; i < n; ++i)
    if ((sent[i] & 1) != (received[i] & 1)) ++errors;
  return static_cast<double>(errors) / static_cast<double>(n);
}

}  // namespace adriatic::comm
