#include "comm/link.hpp"

#include "accel/viterbi.hpp"
#include "util/random.hpp"

namespace adriatic::comm {

template <typename Channel>
LinkResult run_link(Channel& channel, const LinkConfig& cfg, usize frames,
                    u64 seed) {
  LinkResult result;
  Xoshiro256 rng(seed);
  for (usize f = 0; f < frames; ++f) {
    std::vector<u8> payload(cfg.frame_bits);
    for (auto& b : payload) b = static_cast<u8>(rng.next() & 1);

    std::vector<u8> tx;
    if (cfg.coded) {
      tx = accel::conv_encode(payload);
    } else {
      tx.assign(payload.begin(), payload.end());
    }
    const usize coded_size = tx.size();
    if (cfg.interleave)
      tx = interleave(tx, cfg.interleave_rows, cfg.interleave_cols);

    auto rx = channel.transmit(tx);

    if (cfg.interleave)
      rx = deinterleave(rx, cfg.interleave_rows, cfg.interleave_cols,
                        coded_size);
    std::vector<u8> decoded;
    if (cfg.coded) {
      decoded = accel::viterbi_decode(rx);
      decoded.resize(payload.size(), 0);
    } else {
      decoded = std::move(rx);
    }

    usize frame_bit_errors = 0;
    for (usize i = 0; i < payload.size(); ++i)
      if ((payload[i] & 1) != (decoded[i] & 1)) ++frame_bit_errors;

    ++result.frames;
    result.payload_bits += payload.size();
    result.bit_errors += frame_bit_errors;
    if (frame_bit_errors > 0) ++result.frame_errors;
  }
  result.channel_errors = channel.errors_injected();
  return result;
}

template LinkResult run_link<BscChannel>(BscChannel&, const LinkConfig&,
                                         usize, u64);
template LinkResult run_link<GilbertElliottChannel>(GilbertElliottChannel&,
                                                    const LinkConfig&, usize,
                                                    u64);

}  // namespace adriatic::comm
