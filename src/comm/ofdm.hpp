// OFDM modem over the Q15 FFT kernel: QPSK subcarrier mapping, IFFT with
// cyclic prefix on transmit, FFT demodulation and hard demapping on receive,
// plus an integer AWGN model — the 802.11a-flavoured physical layer that
// completes the WLAN receive chain the examples build.
#pragma once

#include <span>
#include <vector>

#include "util/random.hpp"
#include "util/types.hpp"

namespace adriatic::comm {

struct OfdmParams {
  usize n_subcarriers = 64;   ///< FFT size (power of two).
  usize cyclic_prefix = 16;   ///< CP samples per symbol.
  i16 amplitude = 8192;       ///< QPSK constellation amplitude (Q15 domain).
};

/// Maps bits (2 per subcarrier, Gray-coded QPSK) onto one OFDM symbol's
/// frequency-domain representation: packed Q15 complex words, LSB-first
/// bit order. Missing bits are zero.
[[nodiscard]] std::vector<i32> qpsk_map(std::span<const u8> bits,
                                        const OfdmParams& p);

/// Hard-decision demap back to bits (2 per subcarrier).
[[nodiscard]] std::vector<u8> qpsk_demap(std::span<const i32> symbols,
                                         const OfdmParams& p);

/// Frequency-domain symbol -> time-domain samples with cyclic prefix
/// (n_subcarriers + cyclic_prefix packed complex words).
[[nodiscard]] std::vector<i32> ofdm_modulate(std::span<const i32> freq,
                                             const OfdmParams& p);

/// Time-domain samples (with CP) -> frequency-domain symbol.
[[nodiscard]] std::vector<i32> ofdm_demodulate(std::span<const i32> time,
                                               const OfdmParams& p);

/// Adds zero-mean Gaussian noise (std deviation `sigma` in Q15 units) to
/// both components of every packed complex sample.
class AwgnChannel {
 public:
  AwgnChannel(double sigma, u64 seed = 1) : sigma_(sigma), rng_(seed) {}
  [[nodiscard]] std::vector<i32> transmit(std::span<const i32> samples);
  /// SNR for a QPSK constellation of the given amplitude.
  [[nodiscard]] static double snr_db(i16 amplitude, double sigma);

 private:
  [[nodiscard]] double gaussian();
  double sigma_;
  Xoshiro256 rng_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// End-to-end helper: bits -> OFDM symbols -> AWGN -> bits. Returns the
/// received bits (same count as input).
[[nodiscard]] std::vector<u8> ofdm_link(std::span<const u8> bits,
                                        const OfdmParams& p,
                                        AwgnChannel& channel);

}  // namespace adriatic::comm
