// End-to-end link simulation: convolutional coding (+ optional interleaving)
// over a channel model, with BER measurement. This is the workload the
// paper's WLAN context motivates, used by the Viterbi BER experiments.
#pragma once

#include <span>
#include <vector>

#include "comm/channel.hpp"
#include "util/types.hpp"

namespace adriatic::comm {

struct LinkConfig {
  bool coded = true;          ///< K=7 rate-1/2 convolutional code.
  bool interleave = false;    ///< Block interleaver over the coded bits.
  usize interleave_rows = 16;
  usize interleave_cols = 24;
  usize frame_bits = 960;     ///< Payload bits per frame.
};

struct LinkResult {
  u64 frames = 0;
  u64 payload_bits = 0;
  u64 bit_errors = 0;
  u64 frame_errors = 0;   ///< Frames with at least one residual bit error.
  u64 channel_errors = 0; ///< Raw errors the channel injected.
  [[nodiscard]] double ber() const {
    return payload_bits == 0
               ? 0.0
               : static_cast<double>(bit_errors) /
                     static_cast<double>(payload_bits);
  }
  [[nodiscard]] double fer() const {
    return frames == 0 ? 0.0
                       : static_cast<double>(frame_errors) /
                             static_cast<double>(frames);
  }
};

/// Runs `frames` random frames through encode -> channel -> decode.
/// `Channel` needs a `transmit(span<const u8>) -> vector<u8>` method and an
/// `errors_injected()` accessor (BscChannel, GilbertElliottChannel).
template <typename Channel>
LinkResult run_link(Channel& channel, const LinkConfig& cfg, usize frames,
                    u64 seed = 1);

}  // namespace adriatic::comm
