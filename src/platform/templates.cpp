#include "platform/templates.hpp"

#include <stdexcept>

namespace adriatic::platform {

netlist::Design make_soc_platform(const PlatformOptions& options) {
  netlist::Design d;

  netlist::BusDecl sys;
  sys.config.cycle_time = options.bus_cycle;
  sys.config.split_transactions = options.split_transactions;
  d.add(PlatformNames::kBus, sys);

  netlist::MemoryDecl ram;
  ram.low = PlatformMap::kRam;
  ram.words = 16 * 1024;
  ram.bus = PlatformNames::kBus;
  d.add(PlatformNames::kRam, ram);

  netlist::MemoryDecl code;
  code.low = PlatformMap::kCodeRom;
  code.words = 4 * 1024;
  code.bus = PlatformNames::kBus;
  d.add(PlatformNames::kCode, code);

  netlist::MemoryDecl cfg;
  cfg.low = PlatformMap::kCfgMem;
  cfg.words = 64 * 1024;
  if (!options.dedicated_config_link) cfg.bus = PlatformNames::kBus;
  d.add(PlatformNames::kCfg, cfg);
  if (options.dedicated_config_link) {
    netlist::DirectLinkDecl link;
    link.word_time = options.bus_cycle;
    link.slave = PlatformNames::kCfg;
    d.add(PlatformNames::kCfgLink, link);
  }

  if (options.irq) {
    netlist::IrqControllerDecl irq;
    irq.base = PlatformMap::kIrq;
    irq.bus = PlatformNames::kBus;
    d.add(PlatformNames::kIrq, irq);
  }

  if (options.dma) {
    netlist::DmaDecl dma;
    dma.base = PlatformMap::kDma;
    dma.slave_bus = dma.master_bus = PlatformNames::kBus;
    d.add(PlatformNames::kDma, dma);
  }

  if (options.peripheral_bus) {
    netlist::BusDecl periph;
    periph.config.cycle_time = options.bus_cycle * 4;  // slow peripheral bus
    d.add(PlatformNames::kPeriphBus, periph);
    netlist::BridgeDecl bridge;
    bridge.low = PlatformMap::kPeriphWindow;
    bridge.high = PlatformMap::kPeriphWindow + 0xFFF;
    bridge.offset = -static_cast<i64>(PlatformMap::kPeriphWindow);
    bridge.upstream_bus = PlatformNames::kBus;
    bridge.downstream_bus = PlatformNames::kPeriphBus;
    d.add(PlatformNames::kBridge, bridge);
  }

  return d;
}

bus::addr_t add_accelerator(netlist::Design& design, const std::string& name,
                            accel::KernelSpec spec) {
  // Next free accelerator slot: 0x100, 0x200, 0x300 (0x400+ is reserved
  // for the template's IRQ/DMA windows).
  for (bus::addr_t base = PlatformMap::kAccelBase; base < PlatformMap::kIrq;
       base += 0x100) {
    bool taken = false;
    for (const auto& existing : design.names()) {
      if (const auto* h = design.get_if<netlist::HwAccelDecl>(existing))
        if (h->base == base) taken = true;
    }
    if (taken) continue;
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = std::move(spec);
    acc.slave_bus = acc.master_bus = PlatformNames::kBus;
    design.add(name, acc);
    // Wire the accelerator's completion into the next free IRQ line.
    if (auto* irq =
            design.get_if<netlist::IrqControllerDecl>(PlatformNames::kIrq)) {
      irq->lines.emplace_back(static_cast<u32>(irq->lines.size()), name);
    }
    return base;
  }
  throw std::out_of_range("platform: accelerator slots exhausted");
}

void add_software(netlist::Design& design, soc::Processor::Program program) {
  netlist::ProcessorDecl cpu;
  cpu.master_bus = PlatformNames::kBus;
  cpu.program = std::move(program);
  design.add(PlatformNames::kCpu, cpu);
}

}  // namespace adriatic::platform
