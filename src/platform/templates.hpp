// Architecture templates (paper Fig. 3: "Architecture templates, system-
// level IP" feed the architecture-definition step; "The old models of an
// architecture are called architecture templates"). Each factory returns a
// ready netlist Design a project starts from, mirroring the three
// technology classes of Sec. 3.
#pragma once

#include "netlist/design.hpp"

namespace adriatic::platform {

/// Common address map shared by all templates, so application code and
/// drivers port across platforms unchanged.
struct PlatformMap {
  static constexpr bus::addr_t kRam = 0x1000;        // 16k words
  static constexpr bus::addr_t kAccelBase = 0x100;   // 0x100 per accelerator
  static constexpr bus::addr_t kIrq = 0x400;
  static constexpr bus::addr_t kDma = 0x500;
  static constexpr bus::addr_t kCodeRom = 0x8000;    // 4k words
  static constexpr bus::addr_t kCfgMem = 0x100000;   // 64k words
  static constexpr bus::addr_t kPeriphWindow = 0x20000;  // behind the bridge
};

struct PlatformOptions {
  kern::Time bus_cycle = kern::Time::ns(10);
  bool split_transactions = true;
  /// Dedicated configuration link for the (future) DRCF instead of sharing
  /// the system bus.
  bool dedicated_config_link = false;
  /// Add a slower peripheral bus behind a bridge.
  bool peripheral_bus = false;
  /// Add a DMA controller.
  bool dma = false;
  /// Add the interrupt controller.
  bool irq = true;
};

/// Virtex-II-Pro-class system template (paper Sec. 3a): processor-centric
/// single-chip platform — system bus, RAM, code memory, configuration
/// memory, optional peripheral bus/DMA/IRQ. Accelerators and the processor
/// program are added by the project.
[[nodiscard]] netlist::Design make_soc_platform(
    const PlatformOptions& options = {});

/// Adds an accelerator at the template's next free accelerator slot.
/// Returns the register base address.
bus::addr_t add_accelerator(netlist::Design& design, const std::string& name,
                            accel::KernelSpec spec);

/// Adds a task-programmed processor bound to the system bus.
void add_software(netlist::Design& design, soc::Processor::Program program);

/// Names used by the template (for Elaborated lookups).
struct PlatformNames {
  static constexpr const char* kBus = "system_bus";
  static constexpr const char* kPeriphBus = "periph_bus";
  static constexpr const char* kBridge = "bridge";
  static constexpr const char* kRam = "ram";
  static constexpr const char* kCode = "code_mem";
  static constexpr const char* kCfg = "cfg_mem";
  static constexpr const char* kCfgLink = "cfg_link";
  static constexpr const char* kIrq = "irq";
  static constexpr const char* kDma = "dma";
  static constexpr const char* kCpu = "cpu";
};

}  // namespace adriatic::platform
