// Pareto-front extraction for design-space exploration results. All
// objectives are minimised; flip signs for maximisation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace adriatic::dse {

struct DesignPoint {
  std::string label;
  std::vector<double> objectives;  ///< All minimised.
};

/// True if a dominates b: a is no worse in every objective and strictly
/// better in at least one. Points must have equal arity.
[[nodiscard]] bool dominates(const DesignPoint& a, const DesignPoint& b);

/// Returns the indices of the non-dominated points, in input order.
[[nodiscard]] std::vector<usize> pareto_front(
    std::span<const DesignPoint> points);

}  // namespace adriatic::dse
