#include "dse/pareto.hpp"

#include <stdexcept>

namespace adriatic::dse {

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  if (a.objectives.size() != b.objectives.size())
    throw std::invalid_argument("dominates: objective arity mismatch");
  bool strictly_better = false;
  for (usize i = 0; i < a.objectives.size(); ++i) {
    if (a.objectives[i] > b.objectives[i]) return false;
    if (a.objectives[i] < b.objectives[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<usize> pareto_front(std::span<const DesignPoint> points) {
  std::vector<usize> front;
  for (usize i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (usize j = 0; j < points.size() && !dominated; ++j)
      if (j != i && dominates(points[j], points[i])) dominated = true;
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace adriatic::dse
