// Partitioning advisor implementing the paper's Sec. 5.1 rules of thumb for
// choosing dynamically reconfigurable implementation:
//   1. Several roughly same-sized accelerators that are not used at the same
//      time (or at full capacity) -> fold them into a DRCF.
//   2. Parts with foreseeable specification changes -> reconfigurable.
//   3. Parts that will change in future product generations -> reconfigurable.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace adriatic::dse {

/// One candidate functional block as seen at partitioning time.
struct BlockProfile {
  std::string name;
  u64 gates = 0;              ///< Dedicated implementation size.
  double duty_cycle = 0.0;    ///< Fraction of runtime the block is active.
  /// Indices (into the same profile list) of blocks this one runs
  /// concurrently with; concurrent blocks cannot share a single-slot DRCF.
  std::vector<usize> concurrent_with;
  bool spec_volatile = false;     ///< Rule 2: standard still evolving.
  bool next_gen_changes = false;  ///< Rule 3: planned feature growth.
};

struct AdvisorOptions {
  /// "Roughly same size": max/min gate ratio within a DRCF group.
  double size_ratio_limit = 4.0;
  /// Blocks busier than this are poor DRCF candidates (always resident).
  double duty_cycle_limit = 0.6;
  /// Minimum group size for a DRCF to beat dedicated logic.
  usize min_group = 2;
};

struct Advice {
  /// Groups of block indices recommended to share one DRCF each.
  std::vector<std::vector<usize>> drcf_groups;
  /// Blocks recommended reconfigurable for rule 2/3 reasons even if alone.
  std::vector<usize> reconfigurable_singletons;
  /// Blocks recommended to stay dedicated, with the reason.
  std::vector<std::pair<usize, std::string>> dedicated;
  /// Per-decision explanations, in input order.
  std::vector<std::string> rationale;
};

[[nodiscard]] Advice advise_partitioning(std::span<const BlockProfile> blocks,
                                         const AdvisorOptions& opt = {});

}  // namespace adriatic::dse
