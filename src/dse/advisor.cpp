#include "dse/advisor.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace adriatic::dse {

namespace {

bool concurrent(const BlockProfile& a, usize a_idx, const BlockProfile& b,
                usize b_idx) {
  return std::find(a.concurrent_with.begin(), a.concurrent_with.end(),
                   b_idx) != a.concurrent_with.end() ||
         std::find(b.concurrent_with.begin(), b.concurrent_with.end(),
                   a_idx) != b.concurrent_with.end();
}

}  // namespace

Advice advise_partitioning(std::span<const BlockProfile> blocks,
                           const AdvisorOptions& opt) {
  Advice advice;
  std::vector<bool> assigned(blocks.size(), false);

  // Rule 1: greedily group compatible blocks — similar size, low duty cycle,
  // never active simultaneously.
  for (usize i = 0; i < blocks.size(); ++i) {
    if (assigned[i]) continue;
    if (blocks[i].duty_cycle > opt.duty_cycle_limit) continue;
    std::vector<usize> group{i};
    for (usize j = i + 1; j < blocks.size(); ++j) {
      if (assigned[j]) continue;
      if (blocks[j].duty_cycle > opt.duty_cycle_limit) continue;
      // Size compatibility with everyone already in the group.
      bool compatible = true;
      for (const usize g : group) {
        const u64 lo = std::min(blocks[g].gates, blocks[j].gates);
        const u64 hi = std::max(blocks[g].gates, blocks[j].gates);
        if (lo == 0 ||
            static_cast<double>(hi) / static_cast<double>(lo) >
                opt.size_ratio_limit) {
          compatible = false;
          break;
        }
        if (concurrent(blocks[g], g, blocks[j], j)) {
          compatible = false;
          break;
        }
      }
      if (compatible) group.push_back(j);
    }
    if (group.size() >= opt.min_group) {
      for (const usize g : group) assigned[g] = true;
      advice.rationale.push_back(strfmt(
          "rule 1: %zu similar-sized, non-concurrent blocks share one DRCF",
          group.size()));
      advice.drcf_groups.push_back(std::move(group));
    }
  }

  // Rules 2 and 3 for whatever is left.
  for (usize i = 0; i < blocks.size(); ++i) {
    if (assigned[i]) continue;
    const auto& b = blocks[i];
    if (b.spec_volatile || b.next_gen_changes) {
      advice.reconfigurable_singletons.push_back(i);
      advice.rationale.push_back(
          b.name + (b.spec_volatile
                        ? ": rule 2 — specification changes foreseeable"
                        : ": rule 3 — next-generation feature growth"));
    } else {
      std::string reason;
      if (b.duty_cycle > opt.duty_cycle_limit)
        reason = strfmt("duty cycle %.2f keeps it resident", b.duty_cycle);
      else
        reason = "no size-compatible, non-concurrent partner";
      advice.rationale.push_back(b.name + ": dedicated — " + reason);
      advice.dedicated.emplace_back(i, std::move(reason));
    }
  }
  return advice;
}

}  // namespace adriatic::dse
