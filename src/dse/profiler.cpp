#include "dse/profiler.hpp"

namespace adriatic::dse {

void ActivityProfiler::watch(kern::Object& owner, soc::HwAccel& acc) {
  auto w = std::make_unique<Watched>();
  Watched* wp = w.get();
  w->acc = &acc;
  w->on_start = std::make_unique<kern::MethodProcess>(
      owner, acc.basename() + "_prof_start", [this, wp] {
        wp->open = true;
        wp->open_start = sim_->now();
      });
  w->on_start->sensitive(acc.started_event());
  w->on_start->dont_initialize();
  w->on_done = std::make_unique<kern::MethodProcess>(
      owner, acc.basename() + "_prof_done", [this, wp] {
        if (!wp->open) return;
        wp->open = false;
        wp->intervals.push_back({wp->open_start, sim_->now()});
      });
  w->on_done->sensitive(acc.done_event());
  w->on_done->dont_initialize();
  watched_.push_back(std::move(w));
}

double ActivityProfiler::duty_cycle(usize i) const {
  const Watched& w = *watched_.at(i);
  const double total = static_cast<double>(sim_->now().picoseconds());
  if (total == 0.0) return 0.0;
  u64 busy = 0;
  for (const auto& iv : w.intervals)
    busy += (iv.end - iv.start).picoseconds();
  if (w.open) busy += (sim_->now() - w.open_start).picoseconds();
  return static_cast<double>(busy) / total;
}

bool ActivityProfiler::overlapped(usize a, usize b) const {
  const auto& ia = watched_.at(a)->intervals;
  const auto& ib = watched_.at(b)->intervals;
  for (const auto& x : ia)
    for (const auto& y : ib)
      if (x.start < y.end && y.start < x.end) return true;
  return false;
}

std::vector<BlockProfile> ActivityProfiler::profiles() const {
  std::vector<BlockProfile> out;
  for (usize i = 0; i < watched_.size(); ++i) {
    BlockProfile p;
    p.name = watched_[i]->acc->basename();
    p.gates = watched_[i]->acc->spec().gate_count;
    p.duty_cycle = duty_cycle(i);
    for (usize j = 0; j < watched_.size(); ++j)
      if (j != i && overlapped(i, j)) p.concurrent_with.push_back(j);
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace adriatic::dse
