// Activity profiler — the paper's Sec. 6 future work: "analysis methods of
// the system specification need to be investigated so that there could be
// tool-based input to the designer hinting which parts of the application
// are candidates to implementation in dynamically reconfigurable hardware."
//
// The profiler watches accelerators during a simulation of the *hardwired*
// architecture, records their busy intervals, and emits the BlockProfiles
// (duty cycle, pairwise concurrency, gate counts) the partitioning advisor
// consumes — closing the loop: simulate -> profile -> advise -> transform.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/advisor.hpp"
#include "kernel/process.hpp"
#include "kernel/simulation.hpp"
#include "kernel/time.hpp"
#include "soc/hwacc.hpp"

namespace adriatic::dse {

class ActivityProfiler {
 public:
  explicit ActivityProfiler(kern::Simulation& sim) : sim_(&sim) {}

  /// Watches an accelerator; `owner` hosts the profiling processes.
  void watch(kern::Object& owner, soc::HwAccel& acc);

  /// Busy intervals recorded for watched accelerator `i` (in watch order).
  struct Interval {
    kern::Time start;
    kern::Time end;
  };
  [[nodiscard]] const std::vector<Interval>& intervals(usize i) const {
    return watched_.at(i)->intervals;
  }

  /// Fraction of [window_start, now] the accelerator was busy.
  [[nodiscard]] double duty_cycle(usize i) const;

  /// True if the two accelerators' busy intervals ever overlapped.
  [[nodiscard]] bool overlapped(usize a, usize b) const;

  /// Emits advisor-ready profiles: name and gates from the accelerator's
  /// spec, duty cycle and concurrency from the recorded intervals.
  [[nodiscard]] std::vector<BlockProfile> profiles() const;

  [[nodiscard]] usize watched_count() const noexcept {
    return watched_.size();
  }

 private:
  struct Watched {
    soc::HwAccel* acc;
    std::vector<Interval> intervals;
    kern::Time open_start;
    bool open = false;
    std::unique_ptr<kern::MethodProcess> on_start;
    std::unique_ptr<kern::MethodProcess> on_done;
  };

  kern::Simulation* sim_;
  std::vector<std::unique_ptr<Watched>> watched_;
};

}  // namespace adriatic::dse
