// Randomized system-level test cases as first-class values: a FuzzCase fully
// determines a design (accelerator mix, DRCF candidate subset, technology,
// slot count, driver schedule), so it can be generated from a seed, shrunk
// to a minimal failing form, serialized to a replay file, and re-run
// bit-identically in any build mode. fuzz_system_test generates them; the
// shrinker minimizes them; the conformance_replay binary replays them.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "drcf/technology.hpp"
#include "netlist/design.hpp"
#include "util/types.hpp"

namespace adriatic::conformance {

struct FuzzCase {
  u64 seed = 0;  ///< Provenance only; the fields below are authoritative.
  usize n_accels = 2;
  usize n_candidates = 2;  ///< First n_candidates accelerators join the DRCF.
  u32 slots = 1;
  u32 tech_index = 0;  ///< 0 = morphosys, 1 = varicore, 2 = virtex2pro.
  std::vector<usize> schedule;  ///< Accelerator index driven per step.
  /// Rate (percent) of configuration-fetch transactions hit by an injected
  /// latency fault (timing-only, so all invariants must still hold). 0 = no
  /// fault plan at all.
  u32 fault_rate_pct = 0;
  u64 fault_seed = 0xF5EED;  ///< Seed of the fault plan (when rate > 0).
  u32 recovery = 0;  ///< drcf::RecoveryPolicy under the faults (0..3).
  u32 prefetch_policy = 0;  ///< drcf::PrefetchPolicy (0..3; 0 = on-demand).
  u32 cache_slots = 0;  ///< Configuration-cache planes (0 = no cache).
  /// Timing abstraction for the transformed run (the hardwired reference
  /// always runs timed, so every loose case is an implicit cross-mode
  /// differential): 0 = kTimed, 1 = kLoose.
  u32 timing_mode = 0;
  u32 quantum_ns = 0;  ///< Loose-mode quantum in ns (0 = kernel default).
  /// Task-migration knob: after this many completed schedule steps the
  /// driver checkpoints DRCF context 0 and moves it over the bus via a
  /// MigrationController. 0 = migration off (the historical behaviour).
  u32 migrate_at_step = 0;
  /// Where the checkpointed task lands: 0 = a bus-visible round trip back
  /// into the same fabric and context; 1 = a second DRCF ("drcf_dst")
  /// wrapping a twin of accelerator 0, added to the design only for this
  /// setting. Either way the restored state must not disturb the run, so
  /// the functional-equivalence invariant keeps holding.
  u32 dest_fabric = 0;

  bool operator==(const FuzzCase&) const = default;
};

/// The generator used by fuzz_system_test: a seed-deterministic random case.
[[nodiscard]] FuzzCase make_case(u64 seed);

/// Structural validity (field ranges and cross-field constraints); shrink
/// steps must keep cases valid.
[[nodiscard]] bool valid(const FuzzCase& fc);

/// The technology the case runs under (bits_per_gate capped so fine-grained
/// contexts stay small enough for quick runs).
[[nodiscard]] drcf::ReconfigTechnology tech_of(const FuzzCase& fc);

/// Lets the runner inject a mid-schedule action (the migration) into the
/// CPU program after elaboration: the program captures the hook at design
/// time, the runner fills `fire` once the live modules exist.
struct CaseHook {
  std::function<void()> fire = [] {};
};

/// Builds the (untransformed) design the case describes.
[[nodiscard]] netlist::Design build_design(const FuzzCase& fc);
/// As above, with a hook the CPU program fires after `migrate_at_step`
/// completed schedule steps (never fired when the knob is 0 or `hook` is
/// null — the design is behaviourally identical then).
[[nodiscard]] netlist::Design build_design(
    const FuzzCase& fc, const std::shared_ptr<CaseHook>& hook);

struct CaseResult {
  bool ok = false;
  std::string failure;  ///< First violated invariant, human-readable.
  u64 digest = 0;       ///< Scheduler-trace digest of the transformed run.
  u64 sim_time_ps = 0;  ///< Simulated end time of the transformed run.
  u64 context_switches = 0;  ///< DRCF switches in the transformed run.
  u64 fault_ledger_digest = 0;  ///< FaultLedger digest of the transformed run.
  /// Time-independent ledger fold — the cross-timing-mode comparable form.
  u64 fault_ledger_functional = 0;
  u64 dispatches = 0;   ///< Scheduler activations in the transformed run.
  u64 loose_syncs = 0;  ///< Loose-mode sync points (0 in timed runs).
  /// Output-region snapshot of the transformed run (the functional result
  /// the differential policy test compares across scheduler knobs).
  std::vector<bus::word> outputs;
};

/// Runs the case end to end — hardwired reference, DRCF transformation,
/// transformed simulation under a TraceDigest — and checks the system-level
/// invariants (no deadlock, functional equivalence, accounting closure).
[[nodiscard]] CaseResult run_case(const FuzzCase& fc);

/// Replay-file round trip: a stable `key value` text format.
[[nodiscard]] std::string serialize(const FuzzCase& fc);
[[nodiscard]] std::optional<FuzzCase> parse_case(const std::string& text);

/// Convenience wrappers over serialize/parse_case for replay files.
/// write_replay_file returns false on I/O failure.
[[nodiscard]] bool write_replay_file(const std::string& path,
                                     const FuzzCase& fc);
[[nodiscard]] std::optional<FuzzCase> read_replay_file(
    const std::string& path);

}  // namespace adriatic::conformance
