// Shared build-and-run harness for task-migration scenarios: a two-fabric
// design (both produced by the Fig. 4 transformation on one netlist) whose
// CPU program processes a block of data in chunks, optionally handing the
// task over from fabric A to fabric B mid-stream via a MigrationController.
//
// The harness exists so the golden migrate_* scenarios and the differential
// checkpoint-equivalence suite (tests/migration_test.cpp) exercise exactly
// the same model: a straight run (every chunk on fabric A) and a migrated
// run (checkpoint after `migrate_after` chunks, state transfer over the
// system bus, resume on fabric B) must produce identical ram contents and
// identical fabric fault-ledger functional digests.
#pragma once

#include "conformance/scenarios.hpp"
#include "drcf/drcf.hpp"
#include "fault/plan.hpp"
#include "soc/migration.hpp"

namespace adriatic::conformance {

struct MigrationSpec {
  /// False = straight run: every chunk executes on fabric A and the
  /// controller never fires — the differential baseline.
  bool migrate = true;
  u32 n_chunks = 4;
  /// Chunks completed on fabric A before the handover chunk.
  u32 migrate_after = 2;
  /// Take the state from fabric A's preemption-parked snapshot (a second
  /// A-context evicts the task under preempt_checkpoint) instead of a live
  /// checkpoint.
  bool preempt = false;
  drcf::PrefetchPolicy prefetch_policy = drcf::PrefetchPolicy::kOnDemand;
  u32 cache_slots = 0;
  /// Fault plan applied to the controller's transfer path only.
  fault::FaultPlan transfer_faults;
  /// Destination fabric's recovery ladder (applies to mid-transfer faults).
  drcf::RecoveryConfig dst_recovery;
};

struct MigrationRunResult {
  /// Digest folds shaped exactly like any other scenario's; the
  /// fault_ledger_digest combines both fabrics' and the controller's
  /// functional digests (each timing-mode invariant, so the combination is
  /// too).
  ScenarioResult scenario;
  soc::MigrationResult migration;
  soc::MigrationStats controller;
  drcf::DrcfStats src_stats;
  drcf::DrcfStats dst_stats;
  u64 src_ledger_digest = 0;         ///< Fabric A, functional_digest().
  u64 dst_ledger_digest = 0;         ///< Fabric B, functional_digest().
  u64 controller_ledger_digest = 0;  ///< Transfer path, functional_digest().
  bool cpu_finished = false;
};

/// Builds the two-fabric design and runs it under `opt`. Deterministic:
/// same spec + options -> bit-identical result.
[[nodiscard]] MigrationRunResult run_migration(const MigrationSpec& spec,
                                               const ScenarioOptions& opt = {});

}  // namespace adriatic::conformance
