// Delta-debugging shrinker for failing fuzz cases. Given a FuzzCase whose
// oracle reports failure, greedily removes schedule chunks (ddmin-style,
// halving chunk sizes) and minimizes scalar fields until no single step can
// make the case smaller while still failing. The result is the minimal
// reproducer written into replay files.
#pragma once

#include <functional>

#include "conformance/fuzz_case.hpp"

namespace adriatic::conformance {

/// Oracle: returns true when the case still exhibits the failure of
/// interest. The shrinker only keeps mutations the oracle accepts.
using ShrinkOracle = std::function<bool(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase minimal;
  usize oracle_calls = 0;  ///< Total oracle invocations (cost of the shrink).
  usize accepted = 0;      ///< Mutations that kept the failure alive.
};

/// Shrinks `start` to a locally-minimal failing case. `start` itself must
/// fail (the oracle is re-checked first; if it passes, `start` is returned
/// unchanged with accepted == 0).
[[nodiscard]] ShrinkResult shrink_case(const FuzzCase& start,
                                       const ShrinkOracle& still_fails);

}  // namespace adriatic::conformance
