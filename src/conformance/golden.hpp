// Golden digest files: the recorded scheduler-trace digests the conformance
// suite diffs against. Plain text, one `<scenario> <16-hex-digest>` line per
// scenario, stable ordering, `#` comments. Regenerate with
// `ADRIATIC_UPDATE_GOLDEN=1 ctest -R conformance` after an intentional
// scheduler-semantics change (see docs/conformance.md).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "util/types.hpp"

namespace adriatic::conformance {

/// Scenario name -> recorded digest, ordered so writes are stable.
using GoldenMap = std::map<std::string, u64>;

/// Parses golden text. Returns nullopt on any malformed line.
[[nodiscard]] std::optional<GoldenMap> parse_golden(const std::string& text);

/// Formats a golden map (header comment + one line per scenario).
[[nodiscard]] std::string format_golden(const GoldenMap& golden);

/// File round trip. read returns nullopt if missing or malformed; write
/// returns false on I/O failure.
[[nodiscard]] std::optional<GoldenMap> read_golden_file(
    const std::string& path);
[[nodiscard]] bool write_golden_file(const std::string& path,
                                     const GoldenMap& golden);

}  // namespace adriatic::conformance
