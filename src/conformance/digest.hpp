// Trace digest: folds the kernel's structured scheduler-trace records into
// one stable 64-bit value, so an entire simulation run collapses to a single
// comparable number. Two runs of the same model produce the same digest iff
// the scheduler dispatched the same processes, applied the same updates and
// fired the same notifications in the same order at the same times — which
// is exactly the determinism contract the conformance suite pins.
#pragma once

#include <string>

#include "kernel/sched_trace.hpp"
#include "util/types.hpp"

namespace adriatic::conformance {

class TraceDigest final : public kern::SchedulerObserver {
 public:
  void on_record(const kern::SchedRecord& r) override {
    // splitmix64-style avalanche of each field, chained through the state:
    // order-sensitive (a swap of two records changes the value) and cheap
    // enough to leave attached during full system runs.
    h_ = mix(h_ ^ static_cast<u64>(r.kind));
    h_ = mix(h_ ^ r.time_ps);
    h_ = mix(h_ ^ r.delta);
    h_ = mix(h_ ^ r.id);
    ++records_;
  }

  /// The digest of everything observed so far.
  [[nodiscard]] u64 value() const noexcept { return h_; }
  /// Number of records folded in.
  [[nodiscard]] u64 records() const noexcept { return records_; }

  void reset() noexcept {
    h_ = kSeed;
    records_ = 0;
  }

 private:
  static constexpr u64 kSeed = 0x9e3779b97f4a7c15ULL;

  [[nodiscard]] static constexpr u64 mix(u64 z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  u64 h_ = kSeed;
  u64 records_ = 0;
};

/// Formats a digest the way golden files and tools print it (16 hex digits).
[[nodiscard]] std::string digest_str(u64 digest);

}  // namespace adriatic::conformance
