// Canonical scenario registry for the conformance suite. Each scenario is a
// named, fully deterministic system build-and-run whose scheduler trace is
// folded into a digest; the golden file pins one digest per scenario. The
// registry covers the quickstart design, the Sec. 5.3 DSE sweep points
// (technology x slots x config-memory organisation) and targeted DRCF
// context-scheduler shapes (cold miss, steady hit, one-slot thrash,
// two-slot residency, non-candidate traffic during reconfiguration).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kernel/simulation.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::conformance {

struct ScenarioOptions {
  /// Mirrors Simulation::set_timed_compaction: digests must not depend on it.
  bool timed_compaction = true;
  /// Test-only scheduler-order perturbation (LIFO evaluation); digests MUST
  /// depend on it — that is how the suite proves the digest has teeth.
  bool lifo_perturbation = false;
  /// Timing abstraction for the run. Golden trace digests are only defined
  /// in kTimed; under kLoose the suite compares output_digest and
  /// fault_ledger_digest against the timed run instead.
  kern::TimingMode timing_mode = kern::TimingMode::kTimed;
  /// Loose-mode quantum; zero keeps the kernel default.
  kern::Time quantum;
};

struct ScenarioResult {
  u64 digest = 0;
  u64 records = 0;      ///< Scheduler-trace records folded into the digest.
  u64 sim_time_ps = 0;  ///< Simulated end time.
  u64 dispatches = 0;   ///< Process activations performed by the scheduler.
  u64 loose_syncs = 0;  ///< Loose-mode synchronisation points (0 in kTimed).
  /// Fold of the scenario's "ram" contents after the run — the functional
  /// result, comparable across timing modes.
  u64 output_digest = 0;
  /// Time-independent fold of the DRCF's fault ledger (0 when the scenario
  /// has no DRCF); comparable across timing modes.
  u64 fault_ledger_digest = 0;
};

/// All registered scenario names, in golden-file order.
[[nodiscard]] const std::vector<std::string>& scenario_names();

/// Builds and runs one scenario under the given kernel options. Returns
/// nullopt for an unknown name.
[[nodiscard]] std::optional<ScenarioResult> run_scenario(
    const std::string& name, const ScenarioOptions& opt = {});

}  // namespace adriatic::conformance
