#include "conformance/fuzz_case.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "accel/accel_lib.hpp"
#include "conformance/digest.hpp"
#include "fault/plan.hpp"
#include "kernel/simulation.hpp"
#include "netlist/elaborate.hpp"
#include "soc/hwacc.hpp"
#include "soc/migration.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"
#include "util/strings.hpp"

namespace adriatic::conformance {

using namespace kern::literals;

namespace {

accel::KernelSpec kernel_by_index(usize i) {
  switch (i % 5) {
    case 0:
      return accel::make_crc_spec();
    case 1:
      return accel::make_quant_spec(60);
    case 2:
      return accel::make_rle_spec();
    case 3:
      return accel::make_fir_spec(accel::fir_lowpass_taps(8));
    default:
      return accel::make_fft_spec(32);
  }
}

std::vector<bus::word> snapshot_outputs(netlist::Elaborated& e,
                                        const FuzzCase& fc) {
  std::vector<bus::word> snapshot;
  auto& ram = e.get_memory("ram");
  for (usize i = 0; i < fc.n_accels; ++i)
    for (u32 w = 0; w < 40; ++w)
      snapshot.push_back(
          ram.peek(static_cast<bus::addr_t>(0x1100 + i * 0x100 + w)));
  return snapshot;
}

}  // namespace

FuzzCase make_case(u64 seed) {
  Xoshiro256 rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  fc.n_accels = 2 + rng.next_below(3);  // 2..4
  fc.n_candidates = 2 + rng.next_below(fc.n_accels - 1);
  fc.slots = 1 + static_cast<u32>(rng.next_below(2));
  fc.tech_index = static_cast<u32>(rng.next_below(3));
  const usize steps = 6 + rng.next_below(10);
  for (usize s = 0; s < steps; ++s)
    fc.schedule.push_back(rng.next_below(fc.n_accels));
  // Fault-plan draws extend the stream strictly at the end, so the case a
  // historical seed generates keeps its original shape (plus, sometimes,
  // a timing-only fault plan on the configuration-fetch path).
  if (rng.next_below(4) == 0) {
    fc.fault_rate_pct = 5 + static_cast<u32>(rng.next_below(16));
    fc.fault_seed = rng.next();
    fc.recovery = static_cast<u32>(rng.next_below(4));
  }
  // Prefetch draws also extend strictly at the end (same reasoning): a
  // third of the cases explore the policy x cache space.
  if (rng.next_below(3) == 0) {
    fc.prefetch_policy = static_cast<u32>(rng.next_below(4));
    fc.cache_slots = static_cast<u32>(rng.next_below(4));
  }
  // Timing-mode draws extend the stream strictly at the end too: a quarter
  // of the cases run the transformed design loosely timed, under a quantum
  // swept from one bus cycle to well past the whole run.
  if (rng.next_below(4) == 0) {
    fc.timing_mode = 1;
    const u32 quanta[] = {10, 100, 1000, 100000};
    fc.quantum_ns = quanta[rng.next_below(4)];
  }
  // Migration draws extend the stream strictly at the end as well: a fifth
  // of the cases checkpoint context 0 mid-schedule and move it over the bus,
  // either round-tripping into the same fabric or landing on a twin fabric.
  if (rng.next_below(5) == 0 && !fc.schedule.empty()) {
    fc.migrate_at_step =
        1 + static_cast<u32>(rng.next_below(fc.schedule.size()));
    fc.dest_fabric = static_cast<u32>(rng.next_below(2));
  }
  return fc;
}

bool valid(const FuzzCase& fc) {
  if (fc.n_accels < 1 || fc.n_accels > 8) return false;
  if (fc.n_candidates < 1 || fc.n_candidates > fc.n_accels) return false;
  if (fc.slots < 1 || fc.slots > 4) return false;
  if (fc.tech_index > 2) return false;
  if (fc.fault_rate_pct > 100) return false;
  if (fc.recovery > 3) return false;
  if (fc.prefetch_policy > 3) return false;
  if (fc.cache_slots > 4) return false;
  if (fc.timing_mode > 1) return false;
  if (fc.timing_mode == 0 && fc.quantum_ns != 0) return false;
  if (fc.migrate_at_step > fc.schedule.size()) return false;
  if (fc.dest_fabric > 1) return false;
  if (fc.migrate_at_step == 0 && fc.dest_fabric != 0) return false;
  return std::all_of(fc.schedule.begin(), fc.schedule.end(),
                     [&](usize idx) { return idx < fc.n_accels; });
}

drcf::ReconfigTechnology tech_of(const FuzzCase& fc) {
  drcf::ReconfigTechnology tech =
      fc.tech_index == 0   ? drcf::morphosys_like()
      : fc.tech_index == 1 ? drcf::varicore_like()
                           : drcf::virtex2pro_like();
  // Keep fine-grain contexts small enough for quick runs.
  tech.bits_per_gate = std::min(tech.bits_per_gate, 2.0);
  return tech;
}

netlist::Design build_design(const FuzzCase& fc) {
  return build_design(fc, nullptr);
}

netlist::Design build_design(const FuzzCase& fc,
                             const std::shared_ptr<CaseHook>& hook) {
  netlist::Design d;
  d.add("system_bus", netlist::BusDecl{});
  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 2048;
  ram.bus = "system_bus";
  d.add("ram", ram);
  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 16;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  for (usize i = 0; i < fc.n_accels; ++i) {
    netlist::HwAccelDecl acc;
    acc.base = static_cast<bus::addr_t>(0x100 + i * 0x100);
    acc.spec = kernel_by_index(i);
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add("acc" + std::to_string(i), acc);
  }
  if (fc.migrate_at_step > 0 && fc.dest_fabric == 1) {
    // The twin fabric's accelerator: same kernel spec as accelerator 0, so
    // context 0 of both fabrics has identical geometry and an identical
    // elaboration-armed bitstream digest — the restore integrity check can
    // pass. It sits in the reference design too (idle there), so functional
    // equivalence still compares like with like.
    netlist::HwAccelDecl twin;
    twin.base = static_cast<bus::addr_t>(0x100 + fc.n_accels * 0x100);
    twin.spec = kernel_by_index(0);
    twin.slave_bus = twin.master_bus = "system_bus";
    d.add("acc_twin", twin);
  }
  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [schedule = fc.schedule, hook,
                 migrate_at = fc.migrate_at_step](soc::Cpu& c) {
    std::vector<bus::word> data(32);
    for (usize i = 0; i < data.size(); ++i)
      data[i] = static_cast<bus::word>(3 * i + 1);
    c.burst_write(0x1000, data);
    usize done = 0;
    for (const usize idx : schedule) {
      const auto base = static_cast<bus::addr_t>(0x100 + idx * 0x100);
      c.write(base + soc::HwAccel::kSrc, 0x1000);
      c.write(base + soc::HwAccel::kDst,
              static_cast<bus::word>(0x1100 + idx * 0x100));
      c.write(base + soc::HwAccel::kLen, 32);
      c.write(base + soc::HwAccel::kCtrl, 1);
      c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 200_ns);
      c.write(base + soc::HwAccel::kStatus, 0);
      ++done;
      if (hook && done == migrate_at) hook->fire();
    }
  };
  d.add("cpu", cpu);
  return d;
}

CaseResult run_case(const FuzzCase& fc) {
  CaseResult res;
  if (!valid(fc)) {
    res.failure = "structurally invalid case";
    return res;
  }

  // Hardwired reference.
  std::vector<bus::word> ref_out;
  {
    auto ref_design = build_design(fc);
    kern::Simulation ref_sim;
    netlist::Elaborated ref_e(ref_sim, ref_design);
    ref_sim.run();
    if (!ref_e.get_processor("cpu").finished()) {
      res.failure = "hardwired reference deadlocked";
      return res;
    }
    ref_out = snapshot_outputs(ref_e, fc);
  }

  // Transformed design: first n_candidates accelerators share a DRCF.
  auto hook = std::make_shared<CaseHook>();
  auto d = build_design(fc, hook);
  std::vector<std::string> candidates;
  for (usize i = 0; i < fc.n_candidates; ++i)
    candidates.push_back("acc" + std::to_string(i));
  transform::TransformOptions opt;
  opt.drcf_config.technology = tech_of(fc);
  opt.drcf_config.slots = fc.slots;
  opt.config_memory = "cfg_mem";
  if (fc.fault_rate_pct > 0) {
    // Timing-only faults on the fetch path: latency spikes perturb the
    // schedule without failing any transaction, so every invariant below
    // must survive them — under any recovery policy.
    fault::FaultRule rule;
    rule.rate = static_cast<double>(fc.fault_rate_pct) / 100.0;
    rule.kind = fault::FaultKind::kDelay;
    rule.delay = kern::Time::ns(40);
    rule.reads_only = true;
    opt.drcf_config.fetch_faults.seed = fc.fault_seed;
    opt.drcf_config.fetch_faults.rules.push_back(rule);
    opt.drcf_config.recovery.policy =
        static_cast<drcf::RecoveryPolicy>(fc.recovery);
    if (opt.drcf_config.recovery.policy ==
        drcf::RecoveryPolicy::kFallbackContext)
      opt.drcf_config.recovery.fallback_context = 0;
  }
  if (fc.prefetch_policy > 0 || fc.cache_slots > 0) {
    opt.drcf_config.prefetch.policy =
        static_cast<drcf::PrefetchPolicy>(fc.prefetch_policy);
    opt.drcf_config.prefetch.cache_slots = fc.cache_slots;
    // A natural successor annotation for the static policies: the next
    // candidate in ring order.
    for (usize i = 0; i < fc.n_candidates; ++i)
      opt.drcf_config.prefetch.static_next.push_back((i + 1) %
                                                     fc.n_candidates);
  }
  const auto report = transform::transform_to_drcf(d, candidates, opt);
  if (!report.ok) {
    res.failure = "transform failed: " + (report.diagnostics.empty()
                                              ? std::string("?")
                                              : report.diagnostics[0]);
    return res;
  }
  if (fc.migrate_at_step > 0 && fc.dest_fabric == 1) {
    // The twin fabric the migrated task lands on. Its contexts pack from an
    // explicit config_base so its bitstreams don't overlap the primary
    // fabric's, which packed from the memory base.
    transform::TransformOptions twin_opt;
    twin_opt.drcf_config.technology = tech_of(fc);
    twin_opt.drcf_name = "drcf_dst";
    twin_opt.config_memory = "cfg_mem";
    twin_opt.config_base = 0x100000 + 0x8000;
    const std::vector<std::string> twin_candidates = {"acc_twin"};
    const auto twin_report =
        transform::transform_to_drcf(d, twin_candidates, twin_opt);
    if (!twin_report.ok) {
      res.failure = "twin-fabric transform failed: " +
                    (twin_report.diagnostics.empty()
                         ? std::string("?")
                         : twin_report.diagnostics[0]);
      return res;
    }
  }

  TraceDigest td;
  kern::Simulation sim;
  sim.set_observer(&td);
  // The timing knob applies only to the transformed run; the hardwired
  // reference above always runs timed, so a loose case checks the loosely
  // timed schedule against a cycle-accurate functional baseline.
  if (fc.timing_mode == 1) {
    sim.set_timing_mode(kern::TimingMode::kLoose);
    if (fc.quantum_ns != 0) sim.set_quantum(kern::Time::ns(fc.quantum_ns));
  }
  netlist::Elaborated e(sim, d);
  std::unique_ptr<soc::MigrationController> ctrl;
  std::optional<soc::MigrationResult> mig;
  if (fc.migrate_at_step > 0) {
    soc::MigrationConfig mcfg;
    // Staging sits in the top words of cfg_mem, far above both fabrics'
    // packed bitstreams.
    mcfg.staging_base = 0x100000 + (1u << 16) - 64;
    ctrl = std::make_unique<soc::MigrationController>(e.top(), "migrator",
                                                      mcfg);
    ctrl->mst_port.bind(e.get_bus("system_bus"));
    auto& src = e.get_drcf(report.drcf_name);
    auto& dst = fc.dest_fabric == 1 ? e.get_drcf("drcf_dst") : src;
    hook->fire = [&ctrl, &src, &dst, &mig] {
      mig = ctrl->migrate(src, 0, dst, 0);
    };
  }
  sim.run();
  res.digest = td.value();
  res.sim_time_ps = sim.now().picoseconds();
  res.dispatches = sim.activations();
  res.loose_syncs = sim.loose_syncs();

  // Invariant 1: no deadlock on a split bus.
  if (!e.get_processor("cpu").finished()) {
    res.failure = "transformed design deadlocked (cpu did not finish)";
    return res;
  }
  if (!sim.starved_processes().empty()) {
    res.failure = "starved processes left at quiescence";
    return res;
  }

  // Invariant 2: functional equivalence with the hardwired reference.
  res.outputs = snapshot_outputs(e, fc);
  if (res.outputs != ref_out) {
    res.failure = "outputs diverge from the hardwired reference";
    return res;
  }

  // Invariants 3-5: accounting closes.
  auto& fabric = e.get_drcf(report.drcf_name);
  res.fault_ledger_digest = fabric.fault_ledger().digest();
  res.fault_ledger_functional = fabric.fault_ledger().functional_digest();
  const auto& s = fabric.stats();
  res.context_switches = s.switches;
  u64 accesses = 0;
  u64 activations = 0;
  u64 expected_words = 0;
  for (usize i = 0; i < fabric.context_count(); ++i) {
    const auto cs = fabric.context_stats(i);
    accesses += cs.accesses;
    activations += cs.activations;
    expected_words += cs.activations * fabric.context_params(i).size_words;
  }
  if (s.hits + s.misses != accesses) {
    res.failure = strfmt("hit/miss accounting open: %llu + %llu != %llu",
                         static_cast<unsigned long long>(s.hits),
                         static_cast<unsigned long long>(s.misses),
                         static_cast<unsigned long long>(accesses));
    return res;
  }
  if (activations != s.switches) {
    res.failure = strfmt("activations %llu != switches %llu",
                         static_cast<unsigned long long>(activations),
                         static_cast<unsigned long long>(s.switches));
    return res;
  }
  // Word accounting generalizes under the prefetcher: every activation's
  // words were either fetched on demand or skipped via a cache hit, and all
  // extra fetched words are attributed to background fills / aborted
  // prefetches. With prefetch off both new counters are zero and this
  // reduces to the strict fetched == expected equality.
  if (s.config_words_fetched + s.config_words_skipped !=
      expected_words + s.config_words_prefetched) {
    res.failure = strfmt(
        "config-word accounting open: fetched %llu + skipped %llu != "
        "expected %llu + prefetched %llu",
        static_cast<unsigned long long>(s.config_words_fetched),
        static_cast<unsigned long long>(s.config_words_skipped),
        static_cast<unsigned long long>(expected_words),
        static_cast<unsigned long long>(s.config_words_prefetched));
    return res;
  }
  if (s.fetch_errors != 0) {
    res.failure = strfmt("%llu configuration fetch errors",
                         static_cast<unsigned long long>(s.fetch_errors));
    return res;
  }

  // Invariant 6: when the migration knob is on, the hook must have run,
  // and the controller must report either a completed migration (with
  // closed accounting) or a typed checkpoint refusal — legal when context
  // 0 happens to be mid-prefetch at the handover step. Anything else is a
  // real failure: the transfer or restore path broke.
  if (fc.migrate_at_step > 0) {
    if (!mig.has_value()) {
      res.failure = "migration hook never fired";
      return res;
    }
    if (mig->ok()) {
      const auto& ms = ctrl->stats();
      if (ms.migrations != 1 || ms.restores != 1 ||
          ms.state_words_moved == 0) {
        res.failure = strfmt(
            "migration accounting open: %llu migrations, %llu restores, "
            "%llu words moved",
            static_cast<unsigned long long>(ms.migrations),
            static_cast<unsigned long long>(ms.restores),
            static_cast<unsigned long long>(ms.state_words_moved));
        return res;
      }
    } else if (mig->status != soc::MigrationStatus::kCheckpointRefused) {
      res.failure = strfmt("migration failed: %s (restore: %s)",
                           soc::to_string(mig->status),
                           drcf::to_string(mig->restore_error));
      return res;
    }
  }

  res.ok = true;
  return res;
}

// ---------------------------------------------------------------------------
// Replay-file format

namespace {
constexpr const char* kMagic = "adriatic-fuzz-case v1";
}

std::string serialize(const FuzzCase& fc) {
  std::string out = std::string(kMagic) + "\n";
  out += strfmt("seed %llu\n", static_cast<unsigned long long>(fc.seed));
  out += strfmt("accels %llu\n",
                static_cast<unsigned long long>(fc.n_accels));
  out += strfmt("candidates %llu\n",
                static_cast<unsigned long long>(fc.n_candidates));
  out += strfmt("slots %u\n", fc.slots);
  out += strfmt("tech %u\n", fc.tech_index);
  out += "schedule";
  for (const usize idx : fc.schedule)
    out += strfmt(" %llu", static_cast<unsigned long long>(idx));
  out += "\n";
  // Fault fields only appear when set, so pre-fault replay files and the
  // files this writes for fault-free cases stay byte-identical.
  if (fc.fault_rate_pct > 0) {
    out += strfmt("fault_rate_pct %u\n", fc.fault_rate_pct);
    out += strfmt("fault_seed %llu\n",
                  static_cast<unsigned long long>(fc.fault_seed));
  }
  if (fc.recovery != 0) out += strfmt("recovery %u\n", fc.recovery);
  if (fc.prefetch_policy != 0)
    out += strfmt("prefetch_policy %u\n", fc.prefetch_policy);
  if (fc.cache_slots != 0) out += strfmt("cache_slots %u\n", fc.cache_slots);
  if (fc.timing_mode != 0) out += strfmt("timing_mode %u\n", fc.timing_mode);
  if (fc.quantum_ns != 0) out += strfmt("quantum_ns %u\n", fc.quantum_ns);
  if (fc.migrate_at_step != 0)
    out += strfmt("migrate_at_step %u\n", fc.migrate_at_step);
  if (fc.dest_fabric != 0) out += strfmt("dest_fabric %u\n", fc.dest_fabric);
  return out;
}

std::optional<FuzzCase> parse_case(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;
  FuzzCase fc;
  fc.schedule.clear();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "seed") {
      ls >> fc.seed;
    } else if (key == "accels") {
      ls >> fc.n_accels;
    } else if (key == "candidates") {
      ls >> fc.n_candidates;
    } else if (key == "slots") {
      ls >> fc.slots;
    } else if (key == "tech") {
      ls >> fc.tech_index;
    } else if (key == "schedule") {
      usize idx;
      while (ls >> idx) fc.schedule.push_back(idx);
    } else if (key == "fault_rate_pct") {
      ls >> fc.fault_rate_pct;
    } else if (key == "fault_seed") {
      ls >> fc.fault_seed;
    } else if (key == "recovery") {
      ls >> fc.recovery;
    } else if (key == "prefetch_policy") {
      ls >> fc.prefetch_policy;
    } else if (key == "cache_slots") {
      ls >> fc.cache_slots;
    } else if (key == "timing_mode") {
      ls >> fc.timing_mode;
    } else if (key == "quantum_ns") {
      ls >> fc.quantum_ns;
    } else if (key == "migrate_at_step") {
      ls >> fc.migrate_at_step;
    } else if (key == "dest_fabric") {
      ls >> fc.dest_fabric;
    } else {
      return std::nullopt;  // unknown key: refuse to guess
    }
    if (ls.fail() && !ls.eof()) return std::nullopt;
  }
  if (!valid(fc)) return std::nullopt;
  return fc;
}

bool write_replay_file(const std::string& path, const FuzzCase& fc) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize(fc);
  return static_cast<bool>(out);
}

std::optional<FuzzCase> read_replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_case(buf.str());
}

}  // namespace adriatic::conformance
