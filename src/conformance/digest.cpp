#include "conformance/digest.hpp"

#include "util/strings.hpp"

namespace adriatic::conformance {

std::string digest_str(u64 digest) {
  return strfmt("%016llx", static_cast<unsigned long long>(digest));
}

}  // namespace adriatic::conformance
