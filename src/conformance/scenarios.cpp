#include "conformance/scenarios.hpp"

#include <functional>
#include <utility>

#include "accel/accel_lib.hpp"
#include "conformance/digest.hpp"
#include "conformance/fuzz_case.hpp"
#include "conformance/migration_harness.hpp"
#include "fault/plan.hpp"
#include "kernel/simulation.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"

namespace adriatic::conformance {

using namespace kern::literals;

namespace {

// splitmix64 avalanche, same shape as TraceDigest::mix.
constexpr u64 mix(u64 z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ScenarioResult run_design(netlist::Design& d, const ScenarioOptions& opt,
                          const std::string& drcf_name = {}) {
  TraceDigest td;
  kern::Simulation sim;
  sim.set_observer(&td);
  sim.set_timed_compaction(opt.timed_compaction);
  if (opt.lifo_perturbation) sim.debug_set_lifo_evaluation(true);
  sim.set_timing_mode(opt.timing_mode);
  if (!opt.quantum.is_zero()) sim.set_quantum(opt.quantum);
  netlist::Elaborated e(sim, d);
  sim.run();
  ScenarioResult r;
  r.digest = td.value();
  r.records = td.records();
  r.sim_time_ps = sim.now().picoseconds();
  r.dispatches = sim.activations();
  r.loose_syncs = sim.loose_syncs();
  // Every registered scenario places its working set in "ram"; folding the
  // whole memory pins the functional result independent of the schedule.
  if (e.has("ram")) {
    auto& ram = e.get_memory("ram");
    u64 h = 0x9e3779b97f4a7c15ULL;
    for (usize i = 0; i < ram.size_words(); ++i)
      h = mix(h ^ ram.peek(ram.get_low_add() + static_cast<bus::addr_t>(i)));
    r.output_digest = h;
  }
  if (!drcf_name.empty() && e.has(drcf_name))
    r.fault_ledger_digest =
        e.get_drcf(drcf_name).fault_ledger().functional_digest();
  return r;
}

// -- quickstart: the Sec. 5.2 flow (two accelerators folded into a DRCF) ----

ScenarioResult run_quickstart(const ScenarioOptions& opt) {
  netlist::Design design;
  netlist::BusDecl bus;
  bus.config.cycle_time = 10_ns;
  design.add("system_bus", bus);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 4096;
  ram.bus = "system_bus";
  design.add("ram", ram);

  netlist::MemoryDecl cfg_mem;
  cfg_mem.low = 0x100000;
  cfg_mem.words = 1u << 17;
  cfg_mem.bus = "system_bus";
  design.add("cfg_mem", cfg_mem);

  netlist::HwAccelDecl hwa;
  hwa.base = 0x100;
  hwa.spec = accel::make_crc_spec();
  hwa.slave_bus = hwa.master_bus = "system_bus";
  design.add("hwa", hwa);

  netlist::HwAccelDecl hwb;
  hwb.base = 0x200;
  hwb.spec = accel::make_fft_spec(64);
  hwb.slave_bus = hwb.master_bus = "system_bus";
  design.add("hwb", hwb);

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    for (int frame = 0; frame < 4; ++frame) {
      for (const bus::addr_t base : {bus::addr_t{0x100}, bus::addr_t{0x200}}) {
        c.write(base + soc::HwAccel::kSrc, 0x1000);
        c.write(base + soc::HwAccel::kDst,
                static_cast<bus::word>(0x1000 + base));
        c.write(base + soc::HwAccel::kLen, 64);
        c.write(base + soc::HwAccel::kCtrl, 1);
        c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                     200_ns);
        c.write(base + soc::HwAccel::kStatus, 0);
      }
    }
  };
  design.add("cpu", cpu);

  transform::TransformOptions options;
  options.drcf_config.technology = drcf::varicore_like();
  options.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"hwa", "hwb"};
  const auto report =
      transform::transform_to_drcf(design, candidates, options);
  if (!report.ok) return {};
  return run_design(design, opt, report.drcf_name);
}

// -- sec53: the DSE sweep points (technology x slots x cfg-memory org) ------

netlist::Design make_sec53_app(bool dedicated_cfg_link) {
  netlist::Design d;
  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = 0x1000;
  ram.words = 0x8000;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = 0x100000;
  cfg.words = 1u << 18;
  if (!dedicated_cfg_link) cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);
  if (dedicated_cfg_link) {
    netlist::DirectLinkDecl link;
    link.word_time = 10_ns;
    link.slave = "cfg_mem";
    d.add("cfg_link", link);
  }

  const std::pair<const char*, accel::KernelSpec> kernels[] = {
      {"fir", accel::make_fir_spec(accel::fir_lowpass_taps(24))},
      {"fft", accel::make_fft_spec(64)},
      {"aes", accel::make_aes_spec(accel::AesKey{1, 2, 3})},
  };
  bus::addr_t base = 0x100;
  for (const auto& [name, spec] : kernels) {
    netlist::HwAccelDecl acc;
    acc.base = base;
    acc.spec = spec;
    acc.slave_bus = acc.master_bus = "system_bus";
    d.add(name, acc);
    base += 0x100;
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [](soc::Cpu& c) {
    Xoshiro256 rng(11);
    for (int f = 0; f < 2; ++f) {  // two frames keep the suite quick
      std::vector<bus::word> data(64);
      for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 4095));
      c.burst_write(0x1000, data);
      for (const auto& [acc_base, src, dst] :
           {std::tuple{bus::addr_t{0x100}, 0x1000, 0x2000},
            std::tuple{bus::addr_t{0x200}, 0x2000, 0x3000},
            std::tuple{bus::addr_t{0x300}, 0x3000, 0x4000}}) {
        c.write(acc_base + soc::HwAccel::kSrc, static_cast<bus::word>(src));
        c.write(acc_base + soc::HwAccel::kDst, static_cast<bus::word>(dst));
        c.write(acc_base + soc::HwAccel::kLen, 64);
        c.write(acc_base + soc::HwAccel::kCtrl, 1);
        c.poll_until(acc_base + soc::HwAccel::kStatus, soc::HwAccel::kDone,
                     100_ns);
        c.write(acc_base + soc::HwAccel::kStatus, 0);
      }
      c.compute(300);
    }
  };
  d.add("cpu", cpu);
  return d;
}

ScenarioResult run_sec53(u32 tech_index, u32 slots, bool link,
                         const ScenarioOptions& opt) {
  auto d = make_sec53_app(link);
  transform::TransformOptions topt;
  topt.drcf_config.technology = tech_index == 0   ? drcf::morphosys_like()
                                : tech_index == 1 ? drcf::varicore_like()
                                                  : drcf::virtex2pro_like();
  topt.drcf_config.slots = slots;
  topt.config_memory = "cfg_mem";
  if (link) topt.config_bus = "cfg_link";
  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const auto report = transform::transform_to_drcf(d, candidates, topt);
  if (!report.ok) return {};
  return run_design(d, opt, report.drcf_name);
}

// -- prefetch: the sec53 shared-bus varicore point under a prefetch policy --
//
// prefetch_on_demand runs with the prefetch knobs explicitly set to their
// defaults (and a successor table the default policy must ignore); its
// digest must equal sec53_varicore_s1_shared's — the conformance suite
// asserts that equality. prefetch_hybrid runs the same app under the
// hybrid policy with a 2-plane configuration cache and pins the full
// prefetch/cache scheduler behaviour as a golden digest of its own.
ScenarioResult run_sec53_prefetch(drcf::PrefetchPolicy policy, u32 cache_slots,
                                  const ScenarioOptions& opt) {
  auto d = make_sec53_app(/*dedicated_cfg_link=*/false);
  transform::TransformOptions topt;
  topt.drcf_config.technology = drcf::varicore_like();
  topt.drcf_config.slots = 1;
  topt.drcf_config.prefetch.policy = policy;
  topt.drcf_config.prefetch.cache_slots = cache_slots;
  topt.drcf_config.prefetch.static_next = {1, 2, 0};
  topt.config_memory = "cfg_mem";
  const std::vector<std::string> candidates{"fir", "fft", "aes"};
  const auto report = transform::transform_to_drcf(d, candidates, topt);
  if (!report.ok) return {};
  return run_design(d, opt, report.drcf_name);
}

// -- drcf: targeted context-scheduler shapes (Sec. 5.3 five-step walk) ------

ScenarioResult run_drcf_shape(const FuzzCase& fc, const ScenarioOptions& opt) {
  auto d = build_design(fc);
  std::vector<std::string> candidates;
  for (usize i = 0; i < fc.n_candidates; ++i)
    candidates.push_back("acc" + std::to_string(i));
  transform::TransformOptions topt;
  topt.drcf_config.technology = tech_of(fc);
  topt.drcf_config.slots = fc.slots;
  topt.config_memory = "cfg_mem";
  const auto report = transform::transform_to_drcf(d, candidates, topt);
  if (!report.ok) return {};
  return run_design(d, opt, report.drcf_name);
}

FuzzCase drcf_shape(usize n_accels, usize n_candidates, u32 slots,
                    u32 tech_index, std::vector<usize> schedule) {
  FuzzCase fc;
  fc.n_accels = n_accels;
  fc.n_candidates = n_candidates;
  fc.slots = slots;
  fc.tech_index = tech_index;
  fc.schedule = std::move(schedule);
  return fc;
}

// -- fault: recovery-policy walks under scripted configuration-fetch faults --
//
// Each scenario injects a deterministic scripted fault into the DRCF's
// fetch path and runs the same two-context shape under a different
// RecoveryPolicy. The faults are arranged so the CPU never observes a bus
// error (retry recovers, fallback retargets, scrub re-fetches), keeping the
// runs deterministic end to end — their digests are golden like any other
// scenario's.
ScenarioResult run_fault_shape(drcf::RecoveryPolicy policy,
                               fault::FaultKind kind, u32 count,
                               const ScenarioOptions& opt) {
  const FuzzCase fc = drcf_shape(2, 2, 1, 1, {1, 0, 1});
  auto d = build_design(fc);
  transform::TransformOptions topt;
  topt.drcf_config.technology = tech_of(fc);
  topt.drcf_config.slots = fc.slots;
  topt.config_memory = "cfg_mem";
  fault::ScriptedFault shot;
  shot.kind = kind;
  shot.corrupt_bits = 2;
  shot.count = count;
  topt.drcf_config.fetch_faults.seed = 0xFA11;
  topt.drcf_config.fetch_faults.scripted.push_back(shot);
  topt.drcf_config.recovery.policy = policy;
  topt.drcf_config.recovery.max_attempts = 4;
  topt.drcf_config.recovery.backoff = 100_ns;
  topt.drcf_config.recovery.fallback_context = 0;
  topt.drcf_config.recovery.scrub_refetches = 2;
  const std::vector<std::string> candidates{"acc0", "acc1"};
  const auto report = transform::transform_to_drcf(d, candidates, topt);
  if (!report.ok) return {};
  return run_design(d, opt, report.drcf_name);
}

struct Scenario {
  std::string name;
  std::function<ScenarioResult(const ScenarioOptions&)> run;
};

const std::vector<Scenario>& registry() {
  static const std::vector<Scenario> scenarios = [] {
    std::vector<Scenario> v;
    v.push_back({"quickstart", run_quickstart});

    const char* tech_names[] = {"morphosys", "varicore", "virtex2pro"};
    for (u32 t = 0; t < 3; ++t) {
      for (const u32 slots : {1u, 2u}) {
        for (const bool link : {false, true}) {
          v.push_back({std::string("sec53_") + tech_names[t] + "_s" +
                           std::to_string(slots) +
                           (link ? "_link" : "_shared"),
                       [t, slots, link](const ScenarioOptions& opt) {
                         return run_sec53(t, slots, link, opt);
                       }});
        }
      }
    }

    // Context-scheduler shapes: each exercises a distinct path through the
    // five-step arb_and_instr walk.
    const std::pair<const char*, FuzzCase> shapes[] = {
        // one activation: miss -> fetch -> install -> execute
        {"drcf_cold_miss", drcf_shape(2, 2, 1, 0, {0})},
        // repeated activation: steady hits after the first miss
        {"drcf_steady_hit", drcf_shape(2, 2, 1, 1, {0, 0, 0, 0})},
        // alternating contexts on one slot: evict + drain every step
        {"drcf_thrash_one_slot", drcf_shape(2, 2, 1, 2, {0, 1, 0, 1, 0, 1})},
        // two slots: both contexts stay resident after their first miss
        {"drcf_two_slots", drcf_shape(2, 2, 2, 0, {0, 1, 0, 1})},
        // a non-candidate accelerator interleaved: bus traffic competes with
        // configuration fetches
        {"drcf_mixed_traffic", drcf_shape(3, 2, 1, 1, {0, 2, 1, 2, 0})},
    };
    for (const auto& [name, fc] : shapes) {
      v.push_back({name, [fc](const ScenarioOptions& opt) {
                     return run_drcf_shape(fc, opt);
                   }});
    }

    // Recovery-policy walks: deterministic scripted faults on the fetch
    // path, one scenario per non-default policy.
    v.push_back({"fault_retry_backoff", [](const ScenarioOptions& opt) {
                   return run_fault_shape(drcf::RecoveryPolicy::kRetryBackoff,
                                          fault::FaultKind::kError, 2, opt);
                 }});
    v.push_back(
        {"fault_fallback_context", [](const ScenarioOptions& opt) {
           return run_fault_shape(drcf::RecoveryPolicy::kFallbackContext,
                                  fault::FaultKind::kError, 1, opt);
         }});
    v.push_back({"fault_scrub", [](const ScenarioOptions& opt) {
                   return run_fault_shape(drcf::RecoveryPolicy::kScrub,
                                          fault::FaultKind::kCorrupt, 1, opt);
                 }});

    // Prefetch-policy scenarios (see run_sec53_prefetch above).
    v.push_back({"prefetch_on_demand", [](const ScenarioOptions& opt) {
                   return run_sec53_prefetch(drcf::PrefetchPolicy::kOnDemand,
                                             0, opt);
                 }});
    v.push_back({"prefetch_hybrid", [](const ScenarioOptions& opt) {
                   return run_sec53_prefetch(drcf::PrefetchPolicy::kHybrid, 2,
                                             opt);
                 }});

    // Task-migration scenarios (conformance/migration_harness.hpp): a
    // checkpointed task moves from fabric A to fabric B mid-stream over the
    // system bus. Appended after every pre-existing scenario so the golden
    // file's earlier lines are untouched.
    v.push_back({"migrate_clean", [](const ScenarioOptions& opt) {
                   MigrationSpec spec;
                   return run_migration(spec, opt).scenario;
                 }});
    v.push_back({"migrate_preempt", [](const ScenarioOptions& opt) {
                   MigrationSpec spec;
                   spec.preempt = true;
                   spec.cache_slots = 2;
                   return run_migration(spec, opt).scenario;
                 }});
    v.push_back({"migrate_faulted_transfer", [](const ScenarioOptions& opt) {
                   MigrationSpec spec;
                   fault::ScriptedFault shot;
                   shot.kind = fault::FaultKind::kError;
                   shot.count = 2;
                   spec.transfer_faults.seed = 0x516;
                   spec.transfer_faults.scripted.push_back(shot);
                   spec.dst_recovery.policy = drcf::RecoveryPolicy::kRetryBackoff;
                   spec.dst_recovery.max_attempts = 4;
                   spec.dst_recovery.backoff = 100_ns;
                   return run_migration(spec, opt).scenario;
                 }});
    return v;
  }();
  return scenarios;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const auto& s : registry()) v.push_back(s.name);
    return v;
  }();
  return names;
}

std::optional<ScenarioResult> run_scenario(const std::string& name,
                                           const ScenarioOptions& opt) {
  for (const auto& s : registry())
    if (s.name == name) return s.run(opt);
  return std::nullopt;
}

}  // namespace adriatic::conformance
