#include "conformance/shrink.hpp"

#include <algorithm>
#include <cstddef>

namespace adriatic::conformance {

namespace {

/// Tries one mutated candidate; accepts it into `current` when it is valid
/// and still fails.
bool try_accept(FuzzCase& current, const FuzzCase& mutated,
                const ShrinkOracle& still_fails, ShrinkResult& out) {
  if (mutated == current || !valid(mutated)) return false;
  ++out.oracle_calls;
  if (!still_fails(mutated)) return false;
  current = mutated;
  ++out.accepted;
  return true;
}

/// One ddmin sweep over the schedule: remove chunks of `chunk` consecutive
/// steps wherever the oracle allows. Returns true if anything was removed.
bool shrink_schedule_pass(FuzzCase& current, usize chunk,
                          const ShrinkOracle& still_fails, ShrinkResult& out) {
  bool progress = false;
  usize i = 0;
  while (i < current.schedule.size()) {
    FuzzCase mutated = current;
    const usize end = std::min(i + chunk, mutated.schedule.size());
    mutated.schedule.erase(
        mutated.schedule.begin() + static_cast<std::ptrdiff_t>(i),
        mutated.schedule.begin() + static_cast<std::ptrdiff_t>(end));
    if (try_accept(current, mutated, still_fails, out)) {
      progress = true;  // the chunk at i is gone; re-test the same position
    } else {
      i += chunk;
    }
  }
  return progress;
}

/// Minimizes one scalar field by stepping it down toward `floor` while the
/// oracle keeps failing. `apply` writes the candidate value into a copy.
template <typename T, typename Apply>
bool shrink_scalar(FuzzCase& current, T value, T floor, Apply apply,
                   const ShrinkOracle& still_fails, ShrinkResult& out) {
  bool progress = false;
  while (value > floor) {
    FuzzCase mutated = current;
    apply(mutated, value - 1);
    if (!try_accept(current, mutated, still_fails, out)) break;
    --value;
    progress = true;
  }
  return progress;
}

}  // namespace

ShrinkResult shrink_case(const FuzzCase& start,
                         const ShrinkOracle& still_fails) {
  ShrinkResult out;
  out.minimal = start;
  ++out.oracle_calls;
  if (!still_fails(start)) return out;  // nothing to shrink

  FuzzCase& cur = out.minimal;
  bool progress = true;
  while (progress) {
    progress = false;

    // Schedule chunks, large to small (ddmin).
    for (usize chunk = std::max<usize>(cur.schedule.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      if (cur.schedule.empty()) break;
      progress |= shrink_schedule_pass(cur, chunk, still_fails, out);
      if (chunk == 1) break;
    }

    // Remap schedule entries downward so unused high accelerator indices can
    // be dropped with n_accels below.
    for (usize i = 0; i < cur.schedule.size(); ++i) {
      while (cur.schedule[i] > 0) {
        FuzzCase mutated = cur;
        --mutated.schedule[i];
        if (!try_accept(cur, mutated, still_fails, out)) break;
        progress = true;
      }
    }

    // Scalar fields, most structurally significant first.
    const usize max_used =
        cur.schedule.empty()
            ? 0
            : *std::max_element(cur.schedule.begin(), cur.schedule.end()) + 1;
    progress |= shrink_scalar(
        cur, cur.n_accels, std::max<usize>(max_used, 1),
        [](FuzzCase& fc, usize v) {
          fc.n_accels = v;
          fc.n_candidates = std::min(fc.n_candidates, v);
        },
        still_fails, out);
    progress |= shrink_scalar(
        cur, cur.n_candidates, usize{1},
        [](FuzzCase& fc, usize v) { fc.n_candidates = v; }, still_fails, out);
    progress |= shrink_scalar(
        cur, cur.slots, u32{1}, [](FuzzCase& fc, u32 v) { fc.slots = v; },
        still_fails, out);
    progress |= shrink_scalar(
        cur, cur.tech_index, u32{0},
        [](FuzzCase& fc, u32 v) { fc.tech_index = v; }, still_fails, out);

    // Fault plan: first try dropping it outright (one oracle call instead of
    // rate-many), then walk the rate and the recovery policy down.
    if (cur.fault_rate_pct > 0) {
      FuzzCase mutated = cur;
      mutated.fault_rate_pct = 0;
      mutated.recovery = 0;
      progress |= try_accept(cur, mutated, still_fails, out);
    }
    progress |= shrink_scalar(
        cur, cur.fault_rate_pct, u32{0},
        [](FuzzCase& fc, u32 v) { fc.fault_rate_pct = v; }, still_fails, out);
    progress |= shrink_scalar(
        cur, cur.recovery, u32{0},
        [](FuzzCase& fc, u32 v) { fc.recovery = v; }, still_fails, out);

    // Prefetch knobs: drop outright first (back to the paper-faithful
    // on-demand scheduler), then walk each knob toward zero.
    if (cur.prefetch_policy > 0 || cur.cache_slots > 0) {
      FuzzCase mutated = cur;
      mutated.prefetch_policy = 0;
      mutated.cache_slots = 0;
      progress |= try_accept(cur, mutated, still_fails, out);
    }
    progress |= shrink_scalar(
        cur, cur.prefetch_policy, u32{0},
        [](FuzzCase& fc, u32 v) { fc.prefetch_policy = v; }, still_fails, out);
    progress |= shrink_scalar(
        cur, cur.cache_slots, u32{0},
        [](FuzzCase& fc, u32 v) { fc.cache_slots = v; }, still_fails, out);

    // Timing knob: back to the cycle-accurate baseline first (the failure
    // may not be loose-mode-specific), then widen the quantum toward the
    // kernel default — a larger quantum means fewer sync points, i.e. a
    // structurally simpler loose schedule.
    if (cur.timing_mode != 0) {
      FuzzCase mutated = cur;
      mutated.timing_mode = 0;
      mutated.quantum_ns = 0;
      progress |= try_accept(cur, mutated, still_fails, out);
    }
    if (cur.timing_mode != 0 && cur.quantum_ns != 0) {
      FuzzCase mutated = cur;
      mutated.quantum_ns = 0;
      progress |= try_accept(cur, mutated, still_fails, out);
    }

    // Migration knobs: drop the whole migration first (both fields together,
    // since dest_fabric alone is invalid), then land it back on the source
    // fabric, then walk the handover point earlier. Dropping also unblocks
    // further schedule ddmin, which migrate_at_step <= schedule.size() pins.
    if (cur.migrate_at_step > 0) {
      FuzzCase mutated = cur;
      mutated.migrate_at_step = 0;
      mutated.dest_fabric = 0;
      progress |= try_accept(cur, mutated, still_fails, out);
    }
    progress |= shrink_scalar(
        cur, cur.dest_fabric, u32{0},
        [](FuzzCase& fc, u32 v) { fc.dest_fabric = v; }, still_fails, out);
    if (cur.migrate_at_step > 1)
      progress |= shrink_scalar(
          cur, cur.migrate_at_step, u32{1},
          [](FuzzCase& fc, u32 v) { fc.migrate_at_step = v; }, still_fails,
          out);
  }
  return out;
}

}  // namespace adriatic::conformance
