#include "conformance/migration_harness.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/accel_lib.hpp"
#include "conformance/digest.hpp"
#include "kernel/simulation.hpp"
#include "netlist/design.hpp"
#include "netlist/elaborate.hpp"
#include "soc/hwacc.hpp"
#include "transform/transform.hpp"
#include "util/random.hpp"

namespace adriatic::conformance {

using namespace kern::literals;

namespace {

// splitmix64 avalanche, same shape as TraceDigest::mix.
constexpr u64 mix(u64 z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Fixed geometry. acc_a and acc_p sit adjacent so fabric A's address union
// [0x100, 0x117] stays clear of acc_b at 0x200 (the two fabrics must decode
// disjoint ranges on the shared bus).
constexpr bus::addr_t kAccA = 0x100;
constexpr bus::addr_t kAccP = 0x110;
constexpr bus::addr_t kAccB = 0x200;
constexpr bus::addr_t kRamBase = 0x1000;
constexpr bus::addr_t kDstBase = 0x1800;
constexpr bus::addr_t kSideDst = 0x1F00;
constexpr bus::addr_t kCfgBase = 0x100000;
constexpr u32 kCfgWords = 1u << 17;
// Fabric B's bitstreams pack into the upper half of cfg_mem; the staging
// buffer for state transfers sits at the very top, clear of both.
constexpr bus::addr_t kCfgBaseB = kCfgBase + 0x8000;
constexpr bus::addr_t kStaging = kCfgBase + kCfgWords - 0x200;
constexpr u32 kChunkWords = 16;

/// Filled in after elaboration; the CPU program calls fire() at the
/// handover point (so the migration runs on the CPU's simulation thread).
struct MigrationHook {
  std::function<void()> fire;
};

netlist::Design build_migration_design(
    const MigrationSpec& spec, const std::shared_ptr<MigrationHook>& hook) {
  netlist::Design d;

  netlist::BusDecl bus_decl;
  bus_decl.config.cycle_time = 10_ns;
  d.add("system_bus", bus_decl);

  netlist::MemoryDecl ram;
  ram.low = kRamBase;
  ram.words = 4096;
  ram.bus = "system_bus";
  d.add("ram", ram);

  netlist::MemoryDecl cfg;
  cfg.low = kCfgBase;
  cfg.words = kCfgWords;
  cfg.bus = "system_bus";
  d.add("cfg_mem", cfg);

  netlist::HwAccelDecl acc_a;
  acc_a.base = kAccA;
  acc_a.spec = accel::make_crc_spec();
  acc_a.slave_bus = acc_a.master_bus = "system_bus";
  d.add("acc_a", acc_a);

  netlist::HwAccelDecl acc_b;
  acc_b.base = kAccB;
  acc_b.spec = accel::make_crc_spec();
  acc_b.slave_bus = acc_b.master_bus = "system_bus";
  d.add("acc_b", acc_b);

  if (spec.preempt) {
    netlist::HwAccelDecl acc_p;
    acc_p.base = kAccP;
    acc_p.spec = accel::make_crc_spec();
    acc_p.slave_bus = acc_p.master_bus = "system_bus";
    d.add("acc_p", acc_p);
  }

  netlist::ProcessorDecl cpu;
  cpu.master_bus = "system_bus";
  cpu.program = [spec, hook](soc::Cpu& c) {
    // Deterministic input block, one 16-word chunk per processing step.
    Xoshiro256 rng(7);
    std::vector<bus::word> data(spec.n_chunks * kChunkWords);
    for (auto& v : data) v = static_cast<bus::word>(rng.next_range(0, 0xFFFF));
    c.burst_write(kRamBase, data);

    const auto program_chunk = [&c](bus::addr_t base, u32 i) {
      c.write(base + soc::HwAccel::kSrc,
              static_cast<bus::word>(kRamBase + i * kChunkWords));
      c.write(base + soc::HwAccel::kDst,
              static_cast<bus::word>(kDstBase + i * 0x40));
      c.write(base + soc::HwAccel::kLen, kChunkWords);
    };
    const auto start_wait = [&c](bus::addr_t base) {
      c.write(base + soc::HwAccel::kCtrl, 1);
      c.poll_until(base + soc::HwAccel::kStatus, soc::HwAccel::kDone, 200_ns);
      c.write(base + soc::HwAccel::kStatus, 0);
    };

    const u32 handover = std::min(spec.migrate_after, spec.n_chunks);
    u32 i = 0;
    for (; i < handover; ++i) {
      program_chunk(kAccA, i);
      start_wait(kAccA);
    }
    if (i < spec.n_chunks) {
      // The handover chunk: its registers are programmed into fabric A's
      // context 0 and travel with the checkpointed state.
      program_chunk(kAccA, i);
      if (spec.preempt) {
        // A side job on the other A-context evicts context 0 from its slot;
        // under preempt_checkpoint the scheduler parks its snapshot. The
        // straight run performs the same job so ram stays identical.
        c.write(kAccP + soc::HwAccel::kSrc, kRamBase);
        c.write(kAccP + soc::HwAccel::kDst, kSideDst);
        c.write(kAccP + soc::HwAccel::kLen, 4);
        start_wait(kAccP);
      }
      if (spec.migrate) {
        hook->fire();
        // CTRL only: the restored SRC/DST/LEN registers drive this chunk.
        start_wait(kAccB);
      } else {
        start_wait(kAccA);
      }
      ++i;
    }
    const bus::addr_t rest = spec.migrate ? kAccB : kAccA;
    for (; i < spec.n_chunks; ++i) {
      program_chunk(rest, i);
      start_wait(rest);
    }
  };
  d.add("cpu", cpu);
  return d;
}

}  // namespace

MigrationRunResult run_migration(const MigrationSpec& spec,
                                 const ScenarioOptions& opt) {
  auto hook = std::make_shared<MigrationHook>();
  hook->fire = [] {};
  auto d = build_migration_design(spec, hook);

  transform::TransformOptions topt_a;
  topt_a.drcf_config.technology = drcf::varicore_like();
  topt_a.drcf_config.slots = 1;
  topt_a.drcf_config.prefetch.policy = spec.prefetch_policy;
  topt_a.drcf_config.prefetch.cache_slots = spec.cache_slots;
  topt_a.drcf_config.preempt_checkpoint = spec.preempt;
  topt_a.drcf_name = "drcfA";
  topt_a.config_memory = "cfg_mem";
  std::vector<std::string> candidates_a{"acc_a"};
  if (spec.preempt) candidates_a.push_back("acc_p");
  const auto report_a =
      transform::transform_to_drcf(d, candidates_a, topt_a);
  if (!report_a.ok) return {};

  transform::TransformOptions topt_b;
  topt_b.drcf_config.technology = drcf::varicore_like();
  topt_b.drcf_config.slots = 1;
  topt_b.drcf_config.prefetch.policy = spec.prefetch_policy;
  topt_b.drcf_config.prefetch.cache_slots = spec.cache_slots;
  topt_b.drcf_config.recovery = spec.dst_recovery;
  topt_b.drcf_name = "drcfB";
  topt_b.config_memory = "cfg_mem";
  topt_b.config_base = kCfgBaseB;
  const std::vector<std::string> candidates_b{"acc_b"};
  const auto report_b =
      transform::transform_to_drcf(d, candidates_b, topt_b);
  if (!report_b.ok) return {};

  TraceDigest td;
  kern::Simulation sim;
  sim.set_observer(&td);
  sim.set_timed_compaction(opt.timed_compaction);
  if (opt.lifo_perturbation) sim.debug_set_lifo_evaluation(true);
  sim.set_timing_mode(opt.timing_mode);
  if (!opt.quantum.is_zero()) sim.set_quantum(opt.quantum);
  netlist::Elaborated e(sim, d);

  soc::MigrationConfig mcfg;
  mcfg.staging_base = kStaging;
  mcfg.transfer_faults = spec.transfer_faults;
  soc::MigrationController ctrl(e.top(), "migrator", mcfg);
  ctrl.mst_port.bind(e.get_bus("system_bus"));

  auto& fabric_a = e.get_drcf("drcfA");
  auto& fabric_b = e.get_drcf("drcfB");
  soc::MigrationResult mres;
  hook->fire = [&] {
    if (spec.preempt) {
      if (auto parked = fabric_a.take_parked_snapshot(0)) {
        mres = ctrl.migrate_state(*parked, fabric_b, 0);
      } else {
        mres.status = soc::MigrationStatus::kCheckpointRefused;
      }
    } else {
      mres = ctrl.migrate(fabric_a, 0, fabric_b, 0);
    }
  };

  sim.run();

  MigrationRunResult out;
  out.scenario.digest = td.value();
  out.scenario.records = td.records();
  out.scenario.sim_time_ps = sim.now().picoseconds();
  out.scenario.dispatches = sim.activations();
  out.scenario.loose_syncs = sim.loose_syncs();
  auto& ram = e.get_memory("ram");
  u64 h = 0x9e3779b97f4a7c15ULL;
  for (usize i = 0; i < ram.size_words(); ++i)
    h = mix(h ^ ram.peek(ram.get_low_add() + static_cast<bus::addr_t>(i)));
  out.scenario.output_digest = h;
  out.src_ledger_digest = fabric_a.fault_ledger().functional_digest();
  out.dst_ledger_digest = fabric_b.fault_ledger().functional_digest();
  out.controller_ledger_digest = ctrl.fault_ledger().functional_digest();
  out.scenario.fault_ledger_digest = mix(
      out.src_ledger_digest ^
      mix(out.dst_ledger_digest ^ mix(out.controller_ledger_digest)));
  out.migration = mres;
  out.controller = ctrl.stats();
  out.src_stats = fabric_a.stats();
  out.dst_stats = fabric_b.stats();
  out.cpu_finished = e.get_processor("cpu").finished();
  return out;
}

}  // namespace adriatic::conformance
