#include "conformance/golden.hpp"

#include <fstream>
#include <sstream>

#include "conformance/digest.hpp"

namespace adriatic::conformance {

std::optional<GoldenMap> parse_golden(const std::string& text) {
  GoldenMap golden;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name, hex;
    if (!(ls >> name >> hex) || hex.size() != 16) return std::nullopt;
    u64 value = 0;
    for (const char c : hex) {
      int digit;
      if (c >= '0' && c <= '9')
        digit = c - '0';
      else if (c >= 'a' && c <= 'f')
        digit = c - 'a' + 10;
      else
        return std::nullopt;
      value = (value << 4) | static_cast<u64>(digit);
    }
    if (!golden.emplace(name, value).second) return std::nullopt;  // dup
  }
  return golden;
}

std::string format_golden(const GoldenMap& golden) {
  std::string out =
      "# adriatic conformance golden digests v1\n"
      "# scenario <16-hex scheduler-trace digest>\n"
      "# regenerate: ADRIATIC_UPDATE_GOLDEN=1 ctest -R conformance\n";
  for (const auto& [name, digest] : golden)
    out += name + " " + digest_str(digest) + "\n";
  return out;
}

std::optional<GoldenMap> read_golden_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_golden(buf.str());
}

bool write_golden_file(const std::string& path, const GoldenMap& golden) {
  std::ofstream out(path);
  if (!out) return false;
  out << format_golden(golden);
  return static_cast<bool>(out);
}

}  // namespace adriatic::conformance
