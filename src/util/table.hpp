// ASCII/CSV table writer used by every benchmark harness so reproduced tables
// print in a uniform, diffable format.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace adriatic {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header_row() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

  /// Pretty-print with aligned columns and box rules.
  void print(std::ostream& os) const;
  /// Comma-separated form (no title line).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adriatic
