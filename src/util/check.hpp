// ADRIATIC_CHECK: kernel invariant checks compiled as hard asserts in
// ADRIATIC_CHECKED builds (cmake -DADRIATIC_CHECKED=ON) and compiled out
// everywhere else. Checked builds are the conformance layer's teeth: they
// turn "the scheduler quietly did something odd" into an immediate abort
// with the violated invariant named, which is what a fuzz shrinker needs as
// an oracle. See docs/conformance.md.
#pragma once

#ifdef ADRIATIC_CHECKED

#include <cstdio>
#include <cstdlib>

#define ADRIATIC_CHECK(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr,                                                \
                   "ADRIATIC_CHECK failed at %s:%d: %s [violated: %s]\n", \
                   __FILE__, __LINE__, msg, #cond);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#else

#define ADRIATIC_CHECK(cond, msg) ((void)0)

#endif

namespace adriatic {
/// True when the build compiles ADRIATIC_CHECK as a hard assert.
inline constexpr bool kCheckedBuild =
#ifdef ADRIATIC_CHECKED
    true;
#else
    false;
#endif
}  // namespace adriatic
