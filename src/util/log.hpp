// Minimal leveled logger. Simulation models report through this so tests can
// silence or capture output deterministically.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace adriatic::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_level(Level level);
[[nodiscard]] Level level();

/// Redirect log output (default writes to stderr). Pass nullptr to restore.
using Sink = std::function<void(Level, const std::string&)>;
void set_sink(Sink sink);

void emit(Level level, const std::string& msg);

namespace detail {
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LineBuilder debug() {
  return detail::LineBuilder(Level::kDebug);
}
[[nodiscard]] inline detail::LineBuilder info() {
  return detail::LineBuilder(Level::kInfo);
}
[[nodiscard]] inline detail::LineBuilder warn() {
  return detail::LineBuilder(Level::kWarn);
}
[[nodiscard]] inline detail::LineBuilder error() {
  return detail::LineBuilder(Level::kError);
}

}  // namespace adriatic::log
