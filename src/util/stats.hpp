// Lightweight statistics gadgets used by instrumentation throughout the
// library: counters, running mean/variance, and log2-bucketed histograms.
#pragma once

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace adriatic {

/// Running mean / variance / min / max over a stream of samples (Welford).
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] u64 count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : 0.0;
  }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with power-of-two buckets: bucket k counts samples in
/// [2^k, 2^(k+1)). Sample 0 lands in bucket 0.
class Log2Histogram {
 public:
  void add(u64 x) noexcept {
    const usize bucket = x == 0 ? 0 : static_cast<usize>(64 - __builtin_clzll(x));
    if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
    ++counts_[bucket];
    ++total_;
  }

  [[nodiscard]] u64 total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<u64>& buckets() const noexcept {
    return counts_;
  }

  /// Approximate p-quantile (q in [0,1]) from bucket boundaries.
  [[nodiscard]] u64 quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    const u64 target =
        static_cast<u64>(q * static_cast<double>(total_ - 1)) + 1;
    u64 seen = 0;
    for (usize k = 0; k < counts_.size(); ++k) {
      seen += counts_[k];
      if (seen >= target) return k == 0 ? 0 : (1ULL << k);
    }
    return counts_.empty() ? 0 : (1ULL << (counts_.size() - 1));
  }

 private:
  std::vector<u64> counts_;
  u64 total_ = 0;
};

/// Named monotonic counter.
class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void inc(u64 by = 1) noexcept { value_ += by; }
  void reset() noexcept { value_ = 0; }
  [[nodiscard]] u64 value() const noexcept { return value_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  u64 value_ = 0;
};

}  // namespace adriatic
