// Minimal JSON writer (objects, arrays, scalars) for exporting simulation
// statistics to downstream tooling. Write-only by design — the library never
// needs to parse JSON.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace adriatic {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    comma();
    out_ << '{';
    stack_.push_back('}');
    first_ = true;
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    out_ << '[';
    stack_.push_back(']');
    first_ = true;
    return *this;
  }
  JsonWriter& end() {
    out_ << stack_.back();
    stack_.pop_back();
    first_ = false;
    return *this;
  }

  JsonWriter& key(const std::string& k) {
    comma();
    write_string(k);
    out_ << ':';
    first_ = true;  // suppress comma before the value
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(u64 v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(i64 v) {
    comma();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::nullptr_t) {
    comma();
    out_ << "null";
    return *this;
  }

  /// key+value in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return out_.str(); }
  [[nodiscard]] bool balanced() const { return stack_.empty(); }

 private:
  void comma() {
    if (!first_) out_ << ',';
    first_ = false;
  }
  void write_string(const std::string& s) {
    out_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<char> stack_;
  bool first_ = true;
};

}  // namespace adriatic
