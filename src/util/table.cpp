#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace adriatic {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    line(header_);
    rule();
  }
  for (const auto& r : rows_) line(r);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace adriatic
