// printf-style string formatting (GCC 12 lacks std::format) and small string
// helpers used by the naming and reporting layers.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace adriatic {

[[gnu::format(printf, 1, 2)]] inline std::string strfmt(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

[[nodiscard]] inline bool starts_with(const std::string& s,
                                      const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

[[nodiscard]] inline std::vector<std::string> split(const std::string& s,
                                                    char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

[[nodiscard]] inline std::string join(const std::vector<std::string>& parts,
                                      const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace adriatic
