// Deterministic, fast PRNG (xoshiro256**) for workload generators. We avoid
// std::mt19937 so that seeds reproduce identically across standard libraries.
#pragma once

#include <array>

#include "util/types.hpp"

namespace adriatic {

class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // splitmix64 seeding, per Vigna's reference implementation.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  [[nodiscard]] u64 next() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  [[nodiscard]] u64 next_below(u64 bound) noexcept {
    if (bound == 0) return 0;
    // Lemire-style multiply-shift rejection-free approximation is overkill
    // for simulation workloads; modulo bias is negligible for bound << 2^64.
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] i64 next_range(i64 lo, i64 hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace adriatic
