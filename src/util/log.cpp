#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace adriatic::log {
namespace {

Level g_level = Level::kWarn;
Sink g_sink;
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_level(Level level) { g_level = level; }

Level level() { return g_level; }

void set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void emit(Level level, const std::string& msg) {
  if (level < g_level) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace adriatic::log
