// Fixed-width integer aliases and small helpers shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace adriatic {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;

/// Integer ceiling division for non-negative operands.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T num, T den) noexcept {
  return den == 0 ? T{0} : (num + den - 1) / den;
}

/// Round `v` up to the next multiple of `align` (align must be nonzero).
template <typename T>
[[nodiscard]] constexpr T round_up(T v, T align) noexcept {
  return ceil_div(v, align) * align;
}

/// True if `v` is a power of two (and nonzero).
template <typename T>
[[nodiscard]] constexpr bool is_pow2(T v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace adriatic
