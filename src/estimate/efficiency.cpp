#include "estimate/efficiency.hpp"

#include <stdexcept>

namespace adriatic::estimate {

const char* style_name(ArchStyle s) {
  switch (s) {
    case ArchStyle::kGpp:
      return "GPP (SW)";
    case ArchStyle::kDsp:
      return "DSP";
    case ArchStyle::kAsip:
      return "ASIP";
    case ArchStyle::kReconfigurable:
      return "Reconfigurable";
    case ArchStyle::kAsic:
      return "ASIC";
  }
  return "?";
}

StyleResult evaluate_style(ArchStyle style, const accel::KernelSpec& spec,
                           usize len,
                           const drcf::ReconfigTechnology& reconfig,
                           const EfficiencyParams& p) {
  if (!spec.valid()) throw std::invalid_argument("evaluate_style: bad spec");
  StyleResult r;
  r.style = style;
  r.name = style_name(style);

  // Common work unit across styles: primitive operations, approximated by
  // the scalar instruction count (one primitive op per instruction). A
  // spatial datapath retires many primitive ops per cycle — that ratio
  // (sw_instructions / hw_cycles) is exactly its parallelism.
  const double ops = static_cast<double>(spec.sw_instructions(len));
  const double sw_instr = ops;
  const double gates = static_cast<double>(spec.gate_count);

  switch (style) {
    case ArchStyle::kGpp: {
      const double cycles = sw_instr * p.gpp_cpi;
      r.exec_time_us = cycles / p.clock_mhz;
      r.power_mw = p.gpp_mw_per_mhz * p.clock_mhz;
      r.flexibility = 1.0;
      break;
    }
    case ArchStyle::kDsp: {
      const double cycles = sw_instr * p.gpp_cpi / p.dsp_speedup;
      r.exec_time_us = cycles / p.clock_mhz;
      r.power_mw = p.gpp_mw_per_mhz * p.clock_mhz * p.dsp_power_factor;
      r.flexibility = 0.8;
      break;
    }
    case ArchStyle::kAsip: {
      const double cycles = sw_instr * p.gpp_cpi / p.asip_speedup;
      r.exec_time_us = cycles / p.clock_mhz;
      r.power_mw = p.gpp_mw_per_mhz * p.clock_mhz * p.asip_power_factor;
      r.flexibility = 0.5;
      break;
    }
    case ArchStyle::kReconfigurable: {
      const double fabric_mhz = p.asic_clock_mhz * reconfig.clock_derating;
      r.exec_time_us = static_cast<double>(spec.hw_cycles(len)) / fabric_mhz;
      r.power_mw = gates * reconfig.uw_per_gate_mhz * fabric_mhz / 1000.0;
      r.flexibility = 0.35;
      break;
    }
    case ArchStyle::kAsic: {
      r.exec_time_us =
          static_cast<double>(spec.hw_cycles(len)) / p.asic_clock_mhz;
      r.power_mw = gates * p.asic_uw_per_gate_mhz * p.asic_clock_mhz / 1000.0;
      r.flexibility = 0.0;
      break;
    }
  }

  r.mops = r.exec_time_us > 0.0 ? ops / r.exec_time_us : 0.0;
  r.mops_per_mw = r.power_mw > 0.0 ? r.mops / r.power_mw : 0.0;
  return r;
}

std::vector<StyleResult> efficiency_ladder(
    const accel::KernelSpec& spec, usize len,
    const drcf::ReconfigTechnology& reconfig, const EfficiencyParams& p) {
  std::vector<StyleResult> out;
  for (const ArchStyle s :
       {ArchStyle::kGpp, ArchStyle::kDsp, ArchStyle::kAsip,
        ArchStyle::kReconfigurable, ArchStyle::kAsic})
    out.push_back(evaluate_style(s, spec, len, reconfig, p));
  return out;
}

}  // namespace adriatic::estimate
