// Implementation-efficiency models behind the paper's Fig. 2: the same
// kernel evaluated across architectural styles (general-purpose processor,
// DSP, ASIP, reconfigurable fabric, dedicated ASIC). The absolute numbers
// are calibrated to the figure's published bands (GPP 0.1-1 MIPS/mW, DSP
// 1-10, ASIP 10-100 MOPS/mW, reconfigurable/ASIC 100-1000 MOPS/mW with a
// 100-1000x ASIC-vs-GPP gap) and to the datasheet figures quoted in Sec. 3
// (PPC405: 0.9 mW/MHz; VariCore: 0.075 uW/gate/MHz).
#pragma once

#include <string>
#include <vector>

#include "accel/kernel_spec.hpp"
#include "drcf/technology.hpp"

namespace adriatic::estimate {

enum class ArchStyle : u8 {
  kGpp,            ///< Instruction-set processor (temporal computation).
  kDsp,            ///< MAC-oriented instruction set.
  kAsip,           ///< Application-specific instruction set.
  kReconfigurable, ///< DRCF-style fabric (spatial, post-fab programmable).
  kAsic,           ///< Dedicated mapped hardware.
};

struct StyleResult {
  ArchStyle style{};
  std::string name;
  double exec_time_us = 0.0;   ///< Kernel execution time on this style.
  double power_mw = 0.0;       ///< Active power while executing.
  double mops = 0.0;           ///< Throughput in ASIC-normalised Mops/s.
  double mops_per_mw = 0.0;    ///< The Fig. 2 efficiency axis.
  double flexibility = 0.0;    ///< Qualitative 0..1 (Fig. 2's other axis).
};

struct EfficiencyParams {
  double clock_mhz = 100.0;      ///< Common system clock.
  double asic_clock_mhz = 300.0; ///< Dedicated logic clocks higher.
  double gpp_cpi = 1.4;
  double gpp_mw_per_mhz = 0.9;   ///< Paper's PPC405 figure.
  double dsp_speedup = 4.0;      ///< Packed-MAC advantage over GPP.
  double dsp_power_factor = 0.8; ///< Relative to the GPP at same clock.
  double asip_speedup = 8.0;
  double asip_power_factor = 0.6;
  double asic_uw_per_gate_mhz = 0.008;
};

/// Evaluates one style for a kernel processing `len` input words. The
/// `reconfig` technology supplies the fabric's clock derating and power.
[[nodiscard]] StyleResult evaluate_style(
    ArchStyle style, const accel::KernelSpec& spec, usize len,
    const drcf::ReconfigTechnology& reconfig,
    const EfficiencyParams& params = {});

/// All five styles, GPP first (ascending efficiency in Fig. 2's layout).
[[nodiscard]] std::vector<StyleResult> efficiency_ladder(
    const accel::KernelSpec& spec, usize len,
    const drcf::ReconfigTechnology& reconfig,
    const EfficiencyParams& params = {});

[[nodiscard]] const char* style_name(ArchStyle s);

}  // namespace adriatic::estimate
