// Area and static-cost estimators (paper Sec. 5.5: processing speed,
// resources for the largest context, and reconfiguration cost are the three
// quantities a system-level model must expose per technology).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "drcf/context.hpp"
#include "drcf/technology.hpp"
#include "util/types.hpp"

namespace adriatic::estimate {

/// ASIC-equivalent gates of a set of dedicated accelerators: the sum.
[[nodiscard]] inline u64 hardwired_gates(std::span<const u64> kernel_gates) {
  u64 total = 0;
  for (const u64 g : kernel_gates) total += g;
  return total;
}

/// Fabric gates needed when the same kernels share a DRCF with `slots`
/// concurrent slots: the fabric must fit the largest `slots` contexts
/// simultaneously, inflated by the technology's area factor, plus the
/// context-store and controller overhead (paper Sec. 2: "memories storing
/// configurations, circuit required to control the reconfiguration").
struct DrcfArea {
  u64 fabric_gates = 0;       ///< Reconfigurable fabric (inflated).
  u64 controller_gates = 0;   ///< Scheduler + decode logic.
  u64 config_store_words = 0; ///< Context memory footprint (all contexts).
  [[nodiscard]] u64 total_gate_equivalents() const {
    // A 32-bit config word costs roughly 1.5 gate-equivalents of SRAM.
    return fabric_gates + controller_gates +
           static_cast<u64>(static_cast<double>(config_store_words) * 1.5);
  }
};

[[nodiscard]] inline DrcfArea drcf_area(std::span<const u64> kernel_gates,
                                        const drcf::ReconfigTechnology& tech,
                                        u32 slots = 1) {
  DrcfArea a;
  // The `slots` largest contexts must be resident at once.
  std::vector<u64> sorted(kernel_gates.begin(), kernel_gates.end());
  std::sort(sorted.rbegin(), sorted.rend());
  u64 resident = 0;
  for (usize i = 0; i < std::min<usize>(slots, sorted.size()); ++i)
    resident += sorted[i];
  a.fabric_gates =
      static_cast<u64>(static_cast<double>(resident) * tech.area_factor);
  a.controller_gates = 2'500 + 150 * static_cast<u64>(kernel_gates.size());
  for (const u64 g : kernel_gates) a.config_store_words += tech.context_words(g);
  return a;
}

}  // namespace adriatic::estimate
