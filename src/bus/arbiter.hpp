// Bus arbitration: serializes thread-process masters onto a shared resource
// under a pluggable policy, and accounts contention time.
#pragma once

#include <memory>
#include <vector>

#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::bus {

enum class ArbPolicy : u8 {
  kPriority,    ///< Highest numeric priority wins; FIFO among equals.
  kRoundRobin,  ///< Rotate grants across requesters (by arrival order ring).
  kFifo,        ///< Strict arrival order.
};

class Arbiter {
 public:
  Arbiter(kern::Object& owner, ArbPolicy policy);

  /// Blocks the calling thread until the resource is granted.
  /// Returns the simulated time spent waiting.
  kern::Time acquire(u32 priority);
  void release();

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  [[nodiscard]] u64 grants() const noexcept { return grants_; }
  [[nodiscard]] u64 contended_grants() const noexcept { return contended_; }
  [[nodiscard]] kern::Time total_wait() const noexcept { return total_wait_; }

 private:
  struct Request {
    u32 priority;
    u64 seq;
    std::unique_ptr<kern::Event> grant;
  };

  usize pick_next() const;

  kern::Object* owner_;
  ArbPolicy policy_;
  bool busy_ = false;
  u64 seq_ = 0;
  u64 grants_ = 0;
  u64 contended_ = 0;
  u64 rr_counter_ = 0;
  kern::Time total_wait_;
  std::vector<std::unique_ptr<Request>> waiters_;
};

}  // namespace adriatic::bus
