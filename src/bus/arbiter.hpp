// Bus arbitration: serializes thread-process masters onto a shared resource
// under a pluggable policy, and accounts contention time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/time.hpp"
#include "util/types.hpp"

namespace adriatic::kern {
class Simulation;
}

namespace adriatic::bus {

enum class ArbPolicy : u8 {
  kPriority,    ///< Highest numeric priority wins; FIFO among equals.
  kRoundRobin,  ///< Rotate grants across requesters (by arrival order ring).
  kFifo,        ///< Strict arrival order.
};

/// Per-master grant accounting, keyed by the requesting process. Grant gaps
/// (time between consecutive grants to the same master) are the starvation
/// signal: under kPriority a low-priority master's gap grows without bound
/// while high-priority traffic saturates the bus.
struct MasterGrantStats {
  std::string master;  ///< Requesting process name ("" if none).
  u64 master_id = 0;   ///< sched_name_hash(master); joins with sched traces.
  u64 grants = 0;
  u64 starved_grants = 0;  ///< Grants whose wait exceeded the threshold.
  kern::Time total_wait;
  kern::Time max_wait;       ///< Longest single arbitration wait.
  kern::Time last_grant;     ///< Sim time of the most recent grant.
  kern::Time max_grant_gap;  ///< Longest gap between consecutive grants.
};

class Arbiter {
 public:
  Arbiter(kern::Object& owner, ArbPolicy policy);

  /// Blocks the calling thread until the resource is granted.
  /// Returns the simulated time spent waiting.
  kern::Time acquire(u32 priority);
  void release();

  [[nodiscard]] bool busy() const noexcept { return busy_; }
  /// Free right now: no holder and no queued requests (release() keeps the
  /// resource busy while it hands over to a waiter).
  [[nodiscard]] bool idle() const noexcept {
    return !busy_ && waiters_.empty();
  }
  [[nodiscard]] u64 grants() const noexcept { return grants_; }
  [[nodiscard]] u64 contended_grants() const noexcept { return contended_; }
  [[nodiscard]] kern::Time total_wait() const noexcept { return total_wait_; }

  /// Arbitration waits longer than this flag the master as starved (counted
  /// in MasterGrantStats::starved_grants, warned once per master). Zero
  /// (the default) disables flagging; per-master accounting still runs.
  void set_starvation_threshold(kern::Time t) noexcept {
    starvation_threshold_ = t;
  }
  [[nodiscard]] kern::Time starvation_threshold() const noexcept {
    return starvation_threshold_;
  }

  /// Per-master accounting, sorted by master name for determinism.
  [[nodiscard]] std::vector<MasterGrantStats> master_stats() const;
  /// Masters with at least one starved grant.
  [[nodiscard]] std::vector<MasterGrantStats> starved_masters() const;

 private:
  struct Request {
    u32 priority;
    u64 seq;
    std::unique_ptr<kern::Event> grant;
  };

  usize pick_next() const;
  void record_grant(kern::Simulation& sim, kern::Time waited);

  kern::Object* owner_;
  ArbPolicy policy_;
  bool busy_ = false;
  u64 seq_ = 0;
  u64 grants_ = 0;
  u64 contended_ = 0;
  u64 rr_counter_ = 0;
  kern::Time total_wait_;
  kern::Time starvation_threshold_;
  std::vector<std::unique_ptr<Request>> waiters_;
  std::map<u64, MasterGrantStats> masters_;
};

}  // namespace adriatic::bus
