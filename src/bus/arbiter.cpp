#include "bus/arbiter.hpp"

#include <algorithm>

#include "kernel/process.hpp"
#include "kernel/sched_trace.hpp"
#include "kernel/simulation.hpp"
#include "util/log.hpp"

namespace adriatic::bus {

Arbiter::Arbiter(kern::Object& owner, ArbPolicy policy)
    : owner_(&owner), policy_(policy) {}

kern::Time Arbiter::acquire(u32 priority) {
  auto& sim = owner_->sim();
  if (!busy_ && waiters_.empty()) {
    busy_ = true;
    ++grants_;
    record_grant(sim, kern::Time::zero());
    return kern::Time::zero();
  }
  const kern::Time start = sim.now();
  auto req = std::make_unique<Request>();
  req->priority = priority;
  req->seq = seq_++;
  req->grant = std::make_unique<kern::Event>(sim);
  kern::Event& grant = *req->grant;
  waiters_.push_back(std::move(req));
  kern::wait(grant);  // release() notifies and removes the entry
  const kern::Time waited = sim.now() - start;
  total_wait_ += waited;
  ++grants_;
  ++contended_;
  record_grant(sim, waited);
  return waited;
}

void Arbiter::record_grant(kern::Simulation& sim, kern::Time waited) {
  const kern::Process* p = sim.current_process();
  const u64 id = p != nullptr ? kern::sched_name_hash(p->name()) : 0;
  auto [it, inserted] = masters_.try_emplace(id);
  MasterGrantStats& m = it->second;
  if (inserted) {
    if (p != nullptr) m.master = p->name();
    m.master_id = id;
  }
  const kern::Time now = sim.now();
  if (m.grants > 0 && now - m.last_grant > m.max_grant_gap)
    m.max_grant_gap = now - m.last_grant;
  ++m.grants;
  m.last_grant = now;
  m.total_wait += waited;
  if (waited > m.max_wait) m.max_wait = waited;
  if (!starvation_threshold_.is_zero() && waited > starvation_threshold_) {
    if (m.starved_grants == 0)
      log::warn() << owner_->name() << ": master " << m.master
                  << " starved: waited " << waited.str() << " (threshold "
                  << starvation_threshold_.str() << ")";
    ++m.starved_grants;
  }
}

std::vector<MasterGrantStats> Arbiter::master_stats() const {
  std::vector<MasterGrantStats> out;
  out.reserve(masters_.size());
  for (const auto& [id, m] : masters_) out.push_back(m);
  std::sort(out.begin(), out.end(),
            [](const MasterGrantStats& a, const MasterGrantStats& b) {
              return a.master < b.master;
            });
  return out;
}

std::vector<MasterGrantStats> Arbiter::starved_masters() const {
  std::vector<MasterGrantStats> out = master_stats();
  std::erase_if(out,
                [](const MasterGrantStats& m) { return m.starved_grants == 0; });
  return out;
}

void Arbiter::release() {
  if (waiters_.empty()) {
    busy_ = false;
    return;
  }
  const usize next = pick_next();
  // Resource stays busy; hand it to the winner in this same instant.
  waiters_[next]->grant->notify();
  waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(next));
  ++rr_counter_;
}

usize Arbiter::pick_next() const {
  switch (policy_) {
    case ArbPolicy::kPriority: {
      usize best = 0;
      for (usize i = 1; i < waiters_.size(); ++i) {
        const auto& a = *waiters_[i];
        const auto& b = *waiters_[best];
        if (a.priority > b.priority ||
            (a.priority == b.priority && a.seq < b.seq))
          best = i;
      }
      return best;
    }
    case ArbPolicy::kRoundRobin:
      return static_cast<usize>(rr_counter_ % waiters_.size());
    case ArbPolicy::kFifo:
    default: {
      usize best = 0;
      for (usize i = 1; i < waiters_.size(); ++i)
        if (waiters_[i]->seq < waiters_[best]->seq) best = i;
      return best;
    }
  }
}

}  // namespace adriatic::bus
