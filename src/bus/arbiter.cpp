#include "bus/arbiter.hpp"

#include "kernel/simulation.hpp"

namespace adriatic::bus {

Arbiter::Arbiter(kern::Object& owner, ArbPolicy policy)
    : owner_(&owner), policy_(policy) {}

kern::Time Arbiter::acquire(u32 priority) {
  auto& sim = owner_->sim();
  if (!busy_ && waiters_.empty()) {
    busy_ = true;
    ++grants_;
    return kern::Time::zero();
  }
  const kern::Time start = sim.now();
  auto req = std::make_unique<Request>();
  req->priority = priority;
  req->seq = seq_++;
  req->grant = std::make_unique<kern::Event>(sim);
  kern::Event& grant = *req->grant;
  waiters_.push_back(std::move(req));
  kern::wait(grant);  // release() notifies and removes the entry
  const kern::Time waited = sim.now() - start;
  total_wait_ += waited;
  ++grants_;
  ++contended_;
  return waited;
}

void Arbiter::release() {
  if (waiters_.empty()) {
    busy_ = false;
    return;
  }
  const usize next = pick_next();
  // Resource stays busy; hand it to the winner in this same instant.
  waiters_[next]->grant->notify();
  waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(next));
  ++rr_counter_;
}

usize Arbiter::pick_next() const {
  switch (policy_) {
    case ArbPolicy::kPriority: {
      usize best = 0;
      for (usize i = 1; i < waiters_.size(); ++i) {
        const auto& a = *waiters_[i];
        const auto& b = *waiters_[best];
        if (a.priority > b.priority ||
            (a.priority == b.priority && a.seq < b.seq))
          best = i;
      }
      return best;
    }
    case ArbPolicy::kRoundRobin:
      return static_cast<usize>(rr_counter_ % waiters_.size());
    case ArbPolicy::kFifo:
    default: {
      usize best = 0;
      for (usize i = 1; i < waiters_.size(); ++i)
        if (waiters_[i]->seq < waiters_[best]->seq) best = i;
      return best;
    }
  }
}

}  // namespace adriatic::bus
