// Zero-contention point-to-point connection implementing BusMasterIf.
// Models a dedicated port (e.g. a private configuration-memory bus for the
// DRCF — the memory-organisation alternative of paper Sec. 5.3/5.4 that
// avoids the shared-bus deadlock).
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/simulation.hpp"
#include "util/stats.hpp"

namespace adriatic::bus {

class DirectLink : public kern::Module, public BusMasterIf {
 public:
  DirectLink(kern::Object& parent, std::string name,
             kern::Time word_time = kern::Time::ns(10))
      : Module(parent, std::move(name)), word_time_(word_time) {}

  void bind_slave(BusSlaveIf& slave) {
    slave_ = &slave;
    dmi_probed_ = false;
    dmi_valid_ = false;
    dmi_provider_ = nullptr;
  }

  BusStatus read(addr_t add, word* data, u32 /*priority*/) override {
    return one(add, data, true);
  }
  BusStatus write(addr_t add, word* data, u32 /*priority*/) override {
    return one(add, data, false);
  }
  BusStatus burst_read(addr_t add, std::span<word> data,
                       u32 /*priority*/) override {
    if (dmi_burst(add, data.data(), data.size(), /*is_read=*/true, {}))
      return BusStatus::kOk;
    for (usize i = 0; i < data.size(); ++i) {
      const BusStatus st = one(add + static_cast<addr_t>(i), &data[i], true);
      if (st != BusStatus::kOk) return st;
    }
    return BusStatus::kOk;
  }
  BusStatus burst_write(addr_t add, std::span<const word> data,
                        u32 /*priority*/) override {
    if (dmi_burst(add, nullptr, data.size(), /*is_read=*/false, data))
      return BusStatus::kOk;
    for (usize i = 0; i < data.size(); ++i) {
      word w = data[i];
      const BusStatus st = one(add + static_cast<addr_t>(i), &w, false);
      if (st != BusStatus::kOk) return st;
    }
    return BusStatus::kOk;
  }

  [[nodiscard]] u64 transfers() const noexcept { return transfers_; }
  /// Words moved through a DMI pointer (loose mode only).
  [[nodiscard]] u64 dmi_words() const noexcept { return dmi_words_; }

 private:
  BusStatus one(addr_t add, word* data, bool is_read) {
    if (slave_ == nullptr || add < slave_->get_low_add() ||
        add > slave_->get_high_add())
      return BusStatus::kUnmapped;
    if (!word_time_.is_zero()) kern::wait(word_time_);
    ++transfers_;
    const bool ok = is_read ? slave_->read(add, data) : slave_->write(add, data);
    return ok ? BusStatus::kOk : BusStatus::kSlaveError;
  }

  /// Loose-mode DMI burst: moves the whole span through the slave's direct
  /// pointer, charging link word time plus the slave's per-word latency to
  /// the caller's local offset. Returns false (caller takes the per-word
  /// path) outside loose mode or without a covering grant.
  bool dmi_burst(addr_t add, word* out, usize len, bool is_read,
                 std::span<const word> wdata) {
    if (len == 0 || slave_ == nullptr || !sim().loose() ||
        sim().current_process() == nullptr)
      return false;
    if (!dmi_probed_) {
      dmi_probed_ = true;
      dmi_provider_ = dynamic_cast<DmiProvider*>(slave_);
      if (dmi_provider_ != nullptr)
        dmi_provider_->add_dmi_listener([this] { dmi_valid_ = false; });
    }
    if (dmi_provider_ == nullptr) return false;
    const auto usable = [&] {
      return dmi_valid_ && dmi_region_.covers(add, len) &&
             (is_read || dmi_region_.allow_write);
    };
    // Page-granular providers grant one page at a time: a cached region
    // that does not cover this access is re-requested, not treated as a
    // refusal.
    if (!usable()) dmi_valid_ = dmi_provider_->get_dmi(add, &dmi_region_);
    if (!usable()) return false;
    if (!word_time_.is_zero()) kern::wait(word_time_ * static_cast<u64>(len));
    const kern::Time lat =
        is_read ? dmi_region_.read_latency : dmi_region_.write_latency;
    if (!lat.is_zero()) kern::wait(lat * static_cast<u64>(len));
    if (is_read) {
      for (usize i = 0; i < len; ++i)
        out[i] = *dmi_region_.at(add + static_cast<addr_t>(i));
    } else {
      for (usize i = 0; i < len; ++i)
        *dmi_region_.at(add + static_cast<addr_t>(i)) = wdata[i];
    }
    transfers_ += len;
    dmi_words_ += len;
    return true;
  }

  kern::Time word_time_;
  BusSlaveIf* slave_ = nullptr;
  u64 transfers_ = 0;
  u64 dmi_words_ = 0;
  bool dmi_probed_ = false;
  bool dmi_valid_ = false;
  DmiProvider* dmi_provider_ = nullptr;
  DmiRegion dmi_region_;
};

}  // namespace adriatic::bus
