// Zero-contention point-to-point connection implementing BusMasterIf.
// Models a dedicated port (e.g. a private configuration-memory bus for the
// DRCF — the memory-organisation alternative of paper Sec. 5.3/5.4 that
// avoids the shared-bus deadlock).
#pragma once

#include <string>

#include "bus/interfaces.hpp"
#include "kernel/module.hpp"
#include "kernel/simulation.hpp"
#include "util/stats.hpp"

namespace adriatic::bus {

class DirectLink : public kern::Module, public BusMasterIf {
 public:
  DirectLink(kern::Object& parent, std::string name,
             kern::Time word_time = kern::Time::ns(10))
      : Module(parent, std::move(name)), word_time_(word_time) {}

  void bind_slave(BusSlaveIf& slave) { slave_ = &slave; }

  BusStatus read(addr_t add, word* data, u32 /*priority*/) override {
    return one(add, data, true);
  }
  BusStatus write(addr_t add, word* data, u32 /*priority*/) override {
    return one(add, data, false);
  }
  BusStatus burst_read(addr_t add, std::span<word> data,
                       u32 /*priority*/) override {
    for (usize i = 0; i < data.size(); ++i) {
      const BusStatus st = one(add + static_cast<addr_t>(i), &data[i], true);
      if (st != BusStatus::kOk) return st;
    }
    return BusStatus::kOk;
  }
  BusStatus burst_write(addr_t add, std::span<const word> data,
                        u32 /*priority*/) override {
    for (usize i = 0; i < data.size(); ++i) {
      word w = data[i];
      const BusStatus st = one(add + static_cast<addr_t>(i), &w, false);
      if (st != BusStatus::kOk) return st;
    }
    return BusStatus::kOk;
  }

  [[nodiscard]] u64 transfers() const noexcept { return transfers_; }

 private:
  BusStatus one(addr_t add, word* data, bool is_read) {
    if (slave_ == nullptr || add < slave_->get_low_add() ||
        add > slave_->get_high_add())
      return BusStatus::kUnmapped;
    if (!word_time_.is_zero()) kern::wait(word_time_);
    ++transfers_;
    const bool ok = is_read ? slave_->read(add, data) : slave_->write(add, data);
    return ok ? BusStatus::kOk : BusStatus::kSlaveError;
  }

  kern::Time word_time_;
  BusSlaveIf* slave_ = nullptr;
  u64 transfers_ = 0;
};

}  // namespace adriatic::bus
