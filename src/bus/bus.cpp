#include "bus/bus.hpp"

#include <stdexcept>

#include "kernel/simulation.hpp"
#include "util/types.hpp"

namespace adriatic::bus {

Bus::Bus(kern::Object& parent, std::string name, BusConfig cfg)
    : Module(parent, std::move(name)),
      cfg_(cfg),
      arbiter_(*this, cfg.arbitration) {
  arbiter_.set_starvation_threshold(cfg.starvation_threshold);
  sim().at_elaboration([this] { check_address_map(); });
}

Bus::Bus(kern::Simulation& sim_, std::string name, BusConfig cfg)
    : Module(sim_, std::move(name)),
      cfg_(cfg),
      arbiter_(*this, cfg.arbitration) {
  arbiter_.set_starvation_threshold(cfg.starvation_threshold);
  sim().at_elaboration([this] { check_address_map(); });
}

void Bus::bind_slave(BusSlaveIf& slave) { slaves_.push_back(&slave); }

void Bus::check_address_map() const {
  for (usize i = 0; i < slaves_.size(); ++i) {
    const addr_t lo_i = slaves_[i]->get_low_add();
    const addr_t hi_i = slaves_[i]->get_high_add();
    if (lo_i > hi_i)
      throw std::logic_error(name() + ": slave with inverted address range");
    for (usize j = i + 1; j < slaves_.size(); ++j) {
      const addr_t lo_j = slaves_[j]->get_low_add();
      const addr_t hi_j = slaves_[j]->get_high_add();
      if (lo_i <= hi_j && lo_j <= hi_i)
        throw std::logic_error(name() + ": overlapping slave address ranges");
    }
  }
}

BusSlaveIf* Bus::decode(addr_t add) const {
  for (BusSlaveIf* s : slaves_)
    if (add >= s->get_low_add() && add <= s->get_high_add()) return s;
  return nullptr;
}

BusStatus Bus::transfer(addr_t add, word* data, usize len, bool is_read,
                        u32 priority, std::span<const word> wdata) {
  BusSlaveIf* slave = decode(add);
  if (slave == nullptr || add + len - 1 > slave->get_high_add()) {
    ++stats_.unmapped;
    return BusStatus::kUnmapped;
  }

  const u32 beats_per_word = ceil_div<u32>(32, cfg_.data_width_bits);
  const kern::Time occupancy =
      cfg_.cycle_time *
      (cfg_.address_cycles +
       static_cast<u64>(len) * beats_per_word * cfg_.data_cycles);

  stats_.wait_time += arbiter_.acquire(priority);
  kern::wait(occupancy);
  stats_.busy_time += occupancy;
  stats_.beats += len * beats_per_word;
  if (is_read)
    ++stats_.reads;
  else
    ++stats_.writes;
  if (len > 1) ++stats_.bursts;

  bool ok = true;
  if (cfg_.split_transactions) {
    // Split: the bus is free again while the slave services the request.
    arbiter_.release();
    for (usize i = 0; i < len && ok; ++i) {
      if (is_read) {
        ok = slave->read(add + static_cast<addr_t>(i), data + i);
      } else {
        word w = wdata[i];
        ok = slave->write(add + static_cast<addr_t>(i), &w);
      }
    }
  } else {
    // Blocking: the bus is held for the entire slave call — if the slave
    // suspends (DRCF context switch), every other master is locked out.
    for (usize i = 0; i < len && ok; ++i) {
      if (is_read) {
        ok = slave->read(add + static_cast<addr_t>(i), data + i);
      } else {
        word w = wdata[i];
        ok = slave->write(add + static_cast<addr_t>(i), &w);
      }
    }
    arbiter_.release();
  }

  if (!ok) {
    ++stats_.slave_errors;
    return BusStatus::kSlaveError;
  }
  return BusStatus::kOk;
}

BusStatus Bus::read(addr_t add, word* data, u32 priority) {
  return transfer(add, data, 1, true, priority, {});
}

BusStatus Bus::write(addr_t add, word* data, u32 priority) {
  return transfer(add, nullptr, 1, false, priority, std::span<const word>(data, 1));
}

BusStatus Bus::burst_read(addr_t add, std::span<word> data, u32 priority) {
  usize done = 0;
  while (done < data.size()) {
    const usize chunk = std::min<usize>(cfg_.max_burst, data.size() - done);
    const BusStatus st = transfer(add + static_cast<addr_t>(done),
                                  data.data() + done, chunk, true, priority, {});
    if (st != BusStatus::kOk) return st;
    done += chunk;
  }
  return BusStatus::kOk;
}

BusStatus Bus::burst_write(addr_t add, std::span<const word> data,
                           u32 priority) {
  usize done = 0;
  while (done < data.size()) {
    const usize chunk = std::min<usize>(cfg_.max_burst, data.size() - done);
    const BusStatus st =
        transfer(add + static_cast<addr_t>(done), nullptr, chunk, false,
                 priority, data.subspan(done, chunk));
    if (st != BusStatus::kOk) return st;
    done += chunk;
  }
  return BusStatus::kOk;
}

double Bus::utilization() const {
  const auto elapsed = sim().now().picoseconds();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(stats_.busy_time.picoseconds()) /
         static_cast<double>(elapsed);
}

}  // namespace adriatic::bus
